package workload

import (
	"fmt"

	"asap/internal/sim"
)

// TPCC runs TPC-C transactions against persistent tables: one warehouse
// with 10 districts, an item/stock table, per-district customers, and
// per-district order chains with order lines. The default mix is 100%
// New Order (the paper's benchmark); PaymentPct adds the Payment
// transaction as an extension.
//
// New Order reads and bumps the district's next-order id, allocates an
// order record with 5–15 order lines, and updates the stock row of every
// line's item — the classic multi-table atomic region. Payment adds an
// amount to the warehouse and district year-to-date totals and debits the
// customer's balance.
//
// Layout:
//
//	warehouse row (one line): w_ytd(8)
//	district row (one line):  next_o_id(8) | ytd(8) | orderHead(8) | paym_ytd(8)
//	stock row   (one line):   qty(8) | ytd(8) | order_cnt(8)
//	customer row (one line):  balance(8) | ytd_payment(8) | payment_cnt(8)
//	order:  o_id(8) | d(8) | c_id(8) | ol_cnt(8) | next(8) | info[ValueBytes]
//	        followed by ol_cnt order lines: i_id(8) | qty(8) | amount(8) (one line each)
type TPCC struct {
	districtMu  [tpccDistricts]sim.Mutex
	warehouseMu sim.Mutex
	itemMu      []sim.Mutex

	warehouse uint64 // warehouse row
	districts uint64 // base of district rows
	stock     uint64 // base of stock rows
	customers uint64 // base of customer rows (tpccCustomers per district)
	items     int
	vbytes    int

	// PaymentPct is the percentage of operations that run the Payment
	// transaction instead of New Order (0 = the paper's pure mix).
	PaymentPct int
}

// NewTPCC returns a TPCC benchmark.
func NewTPCC() *TPCC { return &TPCC{} }

// Name implements Benchmark.
func (tp *TPCC) Name() string { return "TPCC" }

const (
	tpccDistricts = 10
	tpccCustomers = 64 // customers per district
	tpccMinLines  = 5
	tpccMaxLines  = 15
	tpccOrderHdr  = 40
)

func (tp *TPCC) districtRow(d int) uint64 { return tp.districts + uint64(d)*64 }
func (tp *TPCC) stockRow(i int) uint64    { return tp.stock + uint64(i)*64 }
func (tp *TPCC) customerRow(d, c int) uint64 {
	return tp.customers + uint64(d*tpccCustomers+c)*64
}

// Setup implements Benchmark.
func (tp *TPCC) Setup(c *Ctx, cfg Config) {
	tp.vbytes = cfg.ValueBytes
	tp.items = cfg.InitialItems
	if tp.items < 100 {
		tp.items = 100
	}
	tp.warehouse = c.Alloc(64)
	tp.districts = c.Alloc(tpccDistricts * 64)
	tp.stock = c.Alloc(tp.items * 64)
	tp.customers = c.Alloc(tpccDistricts * tpccCustomers * 64)
	tp.itemMu = make([]sim.Mutex, 64)
	for d := 0; d < tpccDistricts; d++ {
		c.StoreU64(tp.districtRow(d), 1) // next_o_id starts at 1
	}
	for i := 0; i < tp.items; i++ {
		c.StoreU64(tp.stockRow(i), 100) // initial quantity
	}
}

// Op implements Benchmark: one New Order transaction. Strict two-phase
// locking: the district lock and every needed item-stripe lock are taken
// in a global order before the atomic region opens and held until it
// ends, so conflicting regions serialize fully — atomic regions nested
// inside critical sections, as §4.2 requires. (Acquiring item locks
// mid-region in arbitrary order would let two open regions depend on each
// other in a cycle, which no commit order could satisfy.)
func (tp *TPCC) Op(c *Ctx, i int) {
	if tp.PaymentPct > 0 && c.Rng.Intn(100) < tp.PaymentPct {
		tp.payment(c)
		return
	}
	d := c.Rng.Intn(tpccDistricts)
	nLines := tpccMinLines + c.Rng.Intn(tpccMaxLines-tpccMinLines+1)
	cid := c.Rng.Uint64() % 3000
	items := make([]int, nLines)
	for l := range items {
		items[l] = c.Rng.Intn(tp.items)
	}
	stripes := tp.stripesFor(items)

	mu := &tp.districtMu[d]
	mu.Lock(c.T)
	for _, s := range stripes {
		tp.itemMu[s].Lock(c.T)
	}
	c.Begin()

	row := tp.districtRow(d)
	oid := c.LoadU64(row)
	c.StoreU64(row, oid+1)

	order := c.Alloc(tpccOrderHdr + tp.vbytes + nLines*64)
	c.StoreU64(order, oid)
	c.StoreU64(order+8, uint64(d))
	c.StoreU64(order+16, cid)
	c.StoreU64(order+24, uint64(nLines))
	c.StoreU64(order+32, c.LoadU64(row+16)) // link previous order
	c.StoreU64(row+16, order)
	c.FillValue(order+tpccOrderHdr, tp.vbytes, uint64(i))

	total := uint64(0)
	olBase := order + tpccOrderHdr + uint64(tp.vbytes)
	for l := 0; l < nLines; l++ {
		item := items[l]
		qty := uint64(1 + c.Rng.Intn(10))

		srow := tp.stockRow(item)
		sq := c.LoadU64(srow)
		if sq >= qty+10 {
			sq -= qty
		} else {
			sq = sq - qty + 91
		}
		c.StoreU64(srow, sq)
		c.StoreU64(srow+8, c.LoadU64(srow+8)+qty)
		c.StoreU64(srow+16, c.LoadU64(srow+16)+1)

		ol := olBase + uint64(l)*64
		c.StoreU64(ol, uint64(item))
		c.StoreU64(ol+8, qty)
		amount := qty * uint64(10+item%90)
		c.StoreU64(ol+16, amount)
		total += amount
	}
	c.StoreU64(row+8, c.LoadU64(row+8)+total) // district ytd

	c.End()
	for l := len(stripes) - 1; l >= 0; l-- {
		tp.itemMu[stripes[l]].Unlock(c.T)
	}
	mu.Unlock(c.T)
}

// payment runs the TPC-C Payment transaction: warehouse and district
// year-to-date totals grow by the amount, the customer's balance falls
// and their payment counters grow — one atomic region. Lock order is
// district then warehouse (the warehouse row is shared across districts,
// so it needs its own lock).
func (tp *TPCC) payment(c *Ctx) {
	d := c.Rng.Intn(tpccDistricts)
	cust := c.Rng.Intn(tpccCustomers)
	amount := uint64(1 + c.Rng.Intn(5000))

	mu := &tp.districtMu[d]
	mu.Lock(c.T)
	tp.warehouseMu.Lock(c.T)
	c.Begin()

	c.StoreU64(tp.warehouse, c.LoadU64(tp.warehouse)+amount)
	row := tp.districtRow(d)
	c.StoreU64(row+24, c.LoadU64(row+24)+amount)
	crow := tp.customerRow(d, cust)
	c.StoreU64(crow, c.LoadU64(crow)-amount) // balance (wraps; fine)
	c.StoreU64(crow+8, c.LoadU64(crow+8)+amount)
	c.StoreU64(crow+16, c.LoadU64(crow+16)+1)

	c.End()
	tp.warehouseMu.Unlock(c.T)
	mu.Unlock(c.T)
}

// stripesFor returns the sorted, deduplicated item-stripe indices for the
// transaction's items: the global lock acquisition order.
func (tp *TPCC) stripesFor(items []int) []int {
	seen := make(map[int]bool, len(items))
	var out []int
	for _, it := range items {
		s := it % len(tp.itemMu)
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Check implements Benchmark: each district's order chain length equals
// next_o_id - 1, order ids are dense descending, and every order's line
// count and amounts reconcile with the district ytd total.
func (tp *TPCC) Check(c *Ctx) string {
	for d := 0; d < tpccDistricts; d++ {
		row := tp.districtRow(d)
		next := c.LoadU64(row)
		ytd := c.LoadU64(row + 8)
		want := next - 1
		var sum uint64
		n := uint64(0)
		expect := want
		for cur := c.LoadU64(row + 16); cur != 0; cur = c.LoadU64(cur + 32) {
			n++
			oid := c.LoadU64(cur)
			if oid != expect {
				return fmt.Sprintf("TPCC: district %d order id %d, want %d", d, oid, expect)
			}
			expect--
			nl := c.LoadU64(cur + 24)
			if nl < tpccMinLines || nl > tpccMaxLines {
				return fmt.Sprintf("TPCC: order %d has %d lines", oid, nl)
			}
			olBase := cur + tpccOrderHdr + uint64(tp.vbytes)
			for l := uint64(0); l < nl; l++ {
				sum += c.LoadU64(olBase + l*64 + 16)
			}
		}
		if n != want {
			return fmt.Sprintf("TPCC: district %d has %d orders, want %d", d, n, want)
		}
		if sum != ytd {
			return fmt.Sprintf("TPCC: district %d ytd %d != line total %d", d, ytd, sum)
		}
	}
	// Payment reconciliation: customer payment totals roll up to the
	// district paym_ytd, and districts roll up to the warehouse.
	var wsum uint64
	for d := 0; d < tpccDistricts; d++ {
		var dsum uint64
		for cust := 0; cust < tpccCustomers; cust++ {
			crow := tp.customerRow(d, cust)
			dsum += c.LoadU64(crow + 8)
			if c.LoadU64(crow)+c.LoadU64(crow+8) != 0 {
				return fmt.Sprintf("TPCC: customer %d.%d balance %d + payments %d != 0",
					d, cust, c.LoadU64(crow), c.LoadU64(crow+8))
			}
		}
		if got := c.LoadU64(tp.districtRow(d) + 24); got != dsum {
			return fmt.Sprintf("TPCC: district %d paym_ytd %d != customer sum %d", d, got, dsum)
		}
		wsum += dsum
	}
	if got := c.LoadU64(tp.warehouse); got != wsum {
		return fmt.Sprintf("TPCC: warehouse ytd %d != district sum %d", got, wsum)
	}
	return ""
}
