package area

import (
	"strings"
	"testing"
)

func TestCLListEntryMatchesPaper(t *testing.T) {
	// §6.2: the CL List "size is 49B (8 CLPtrs/entry, 1 B/CLPtrs,
	// 2 bits/State, 4 B/RID)" — i.e. 4 entries x 12.25 B = 49 B per core.
	cfg := Default()
	b := Compute(cfg)
	if b.CLListPerCore != 49 {
		t.Fatalf("CL List per core = %d B, paper says 49 B", b.CLListPerCore)
	}
}

func TestLHWPQEntryMatchesPaper(t *testing.T) {
	// §6.2: "The LH-WPQ has 70B/entry (6B LogHeaderAddr, 64B/LogHeader)".
	if LHWPQEntryBytes != 70 {
		t.Fatalf("LH-WPQ entry = %d B, paper says 70 B", LHWPQEntryBytes)
	}
}

func TestDepEntryMatchesPaper(t *testing.T) {
	// §6.2: 4 Dep/entry x 4B + 2 bits State + 4B RID = 20.25 B -> the
	// 128-entry channel list rounds to 2592 B.
	b := Compute(Default())
	if b.DepListPerChannel != 2592 {
		t.Fatalf("Dep List per channel = %d B, want 2592", b.DepListPerChannel)
	}
}

func TestAreaFractionUnderThreePercent(t *testing.T) {
	frac := AreaFraction(Default())
	if frac <= 0 || frac >= 0.03 {
		t.Fatalf("area fraction = %.4f, paper says < 3%%", frac)
	}
}

func TestReportMentionsEveryStructure(t *testing.T) {
	r := Report(Default())
	for _, want := range []string{"CL List", "Dependence List", "LH-WPQ", "Bloom", "Tag extensions", "Total"} {
		if !strings.Contains(r, want) {
			t.Fatalf("report missing %q:\n%s", want, r)
		}
	}
}

func TestTotalScalesWithCores(t *testing.T) {
	small := Default()
	small.Cores = 2
	big := Default()
	big.Cores = 64
	if Compute(small).Total >= Compute(big).Total {
		t.Fatal("total must grow with core count")
	}
}
