package runner

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"asap/internal/stats"
)

// TestCollectCtxStopsAfterFirstFailure: with a one-worker pool (serial,
// submission order), a panic in job k must prevent every later job from
// running; skipped indices hold the zero value, and the batch error is
// the failing job's PanicError.
func TestCollectCtxStopsAfterFirstFailure(t *testing.T) {
	const n, boom = 16, 5
	var ran atomic.Int32
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Label: fmt.Sprintf("j%d", i),
			Run: func() int {
				ran.Add(1)
				if i == boom {
					panic("boom")
				}
				return i + 1
			},
		}
	}
	out, err := CollectCtx(context.Background(), New(1), jobs)
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Label != fmt.Sprintf("j%d", boom) {
		t.Fatalf("want PanicError for j%d, got %v", boom, err)
	}
	if got := int(ran.Load()); got != boom+1 {
		t.Fatalf("jobs run after failure: ran %d want %d", got, boom+1)
	}
	for i := boom; i < n; i++ {
		if out[i] != 0 {
			t.Fatalf("skipped/failed index %d holds %d, want zero", i, out[i])
		}
	}
}

// TestCollectCtxCancelStopsDispatch: cancelling the context between jobs
// must stop dispatch and surface ctx.Err() as the batch error.
func TestCollectCtxCancelStopsDispatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 12
	var ran atomic.Int32
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Label: fmt.Sprintf("j%d", i),
			Run: func() int {
				ran.Add(1)
				if i == 2 {
					cancel()
				}
				return i
			},
		}
	}
	_, err := CollectCtx(ctx, New(1), jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if got := int(ran.Load()); got != 3 {
		t.Fatalf("jobs run after cancel: ran %d want 3", got)
	}
}

// TestCollectCtxNilErrorWhenClean: an uncancelled context and clean jobs
// behave exactly like Collect.
func TestCollectCtxNilErrorWhenClean(t *testing.T) {
	jobs := []Job[int]{
		{Label: "a", Run: func() int { return 1 }},
		{Label: "b", Run: func() int { return 2 }},
	}
	out, err := CollectCtx(context.Background(), New(2), jobs)
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if out[0] != 1 || out[1] != 2 {
		t.Fatalf("wrong results: %v", out)
	}
}

// wrappedStall stands in for *sim.StallError: a concrete error type a
// job panics with, which callers must recover through the PanicError
// wrapper by errors.As even when the batch was cut short.
type wrappedStall struct{ kind string }

func (e *wrappedStall) Error() string { return "stall: " + e.kind }

// TestPanicErrorUnwrapThroughCollectCtx: the unwrap chain
// CollectCtx error -> *PanicError -> panic value must survive the
// cancellation path, so a daemon worker draining mid-sweep can still
// errors.As its way to the structured stall diagnosis.
func TestPanicErrorUnwrapThroughCollectCtx(t *testing.T) {
	stall := &wrappedStall{kind: "lock-wait"}
	jobs := []Job[int]{
		{Label: "pre", Run: func() int { return 0 }},
		{Label: "stall", Run: func() int { panic(stall) }},
		{Label: "post", Run: func() int { t.Error("post ran after failure"); return 0 }},
	}
	_, err := CollectCtx(context.Background(), New(1), jobs)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("no PanicError in chain: %v", err)
	}
	var ws *wrappedStall
	if !errors.As(err, &ws) || ws != stall {
		t.Fatalf("unwrap chain lost the stall value: %v", err)
	}
	if !errors.Is(err, stall) {
		t.Fatalf("errors.Is lost the stall value: %v", err)
	}
}

// TestCollectCtxMetricsOnlyForRanJobs: skipped jobs must not appear in
// the metrics log — a partial batch's job log reflects work actually
// done, which is what a flushed partial report records.
func TestCollectCtxMetricsOnlyForRanJobs(t *testing.T) {
	p := New(1)
	log := &stats.JobLog{}
	p.SetMetrics(log)
	jobs := []Job[int]{
		{Label: "ok", Run: func() int { return 1 }},
		{Label: "bad", Run: func() int { panic("x") }},
		{Label: "never", Run: func() int { return 3 }},
	}
	if _, err := CollectCtx(context.Background(), p, jobs); err == nil {
		t.Fatal("want error")
	}
	snap := log.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("metrics for %d jobs, want 2 (ok+bad): %+v", len(snap), snap)
	}
	if snap[0].Label != "ok" || snap[1].Label != "bad" {
		t.Fatalf("wrong labels: %+v", snap)
	}
}

// TestCollectCtxSkippedReporter: the reporter must only see jobs that
// ran, so progress lines stay truthful for cut-short batches.
func TestCollectCtxSkippedReporter(t *testing.T) {
	p := New(1)
	rep := &countingReporter{}
	p.SetReporter(rep)
	jobs := []Job[int]{
		{Label: "a", Run: func() int { return 1 }},
		{Label: "bad", Run: func() int { panic("x") }},
		{Label: "skipped", Run: func() int { return 3 }},
	}
	_, _ = CollectCtx(context.Background(), p, jobs)
	if rep.started != 3 {
		t.Fatalf("Start saw %d, want 3", rep.started)
	}
	if rep.done != 2 {
		t.Fatalf("Done saw %d jobs, want 2", rep.done)
	}
}
