// Package crashtest is a systematic crash-consistency checker: it runs
// real workloads on the simulated machine, injects a power failure at a
// chosen cycle with a seeded mixture of persistence-domain faults (torn
// persists, dropped WPQ entries, reordered flushes, log-media bit flips),
// recovers through the public crash path — serialized crash state,
// LoadCrashState, Recover, NewSystemFromCrash — and verifies workload
// invariants against the recovered image and the rebooted machine.
//
// The possible verdicts form the checker's contract. With no faults, a
// case must come back clean. With faults, recovery may either repair the
// damage (recovered: every invariant still holds) or refuse with a
// corruption error (detected: fail-stop is correct when undo material is
// gone). What it must never do is claim success over a broken image —
// that is a violation, and a failing case shrinks to a minimal fault set
// by deterministic replay.
package crashtest

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"

	"asap"
	"asap/internal/core"
	"asap/internal/faults"
	"asap/internal/machine"
	"asap/internal/recovery"
	"asap/internal/snapshot"
	"asap/internal/workload"
)

// Case is one crash-consistency experiment.
type Case struct {
	// Workload names the structure under test (see Workloads).
	Workload string `json:"workload"`
	// CrashAt is the power-failure cycle, measured from the start of the
	// workload's measured phase.
	CrashAt uint64 `json:"crash_at"`
	// Seed drives both the workload schedule and the fault decisions.
	Seed int64 `json:"seed"`
	// Mix is the fault mixture injected at the crash flush.
	Mix faults.Mix `json:"mix"`
	// SkipValidation recovers without the integrity pass — the deliberate
	// negative control proving the checker notices when validation is off.
	SkipValidation bool `json:"skip_validation,omitempty"`
	// Replay, when non-nil, inflicts exactly these fault events instead of
	// drawing from Mix: the shrinking mode.
	Replay []faults.Event `json:"replay,omitempty"`
	// SnapshotEvery, when non-zero, moves the power failure to the first
	// checkpoint boundary at or after CrashAt: the machine digests its
	// state every SnapshotEvery cycles and the kill lands exactly on a
	// boundary — the moment a checkpointer would be publishing a snapshot.
	// Recovery still goes through the same public path; the family proves
	// a boundary is not a privileged instant.
	SnapshotEvery uint64 `json:"snapshot_every,omitempty"`
}

func (c Case) String() string {
	s := fmt.Sprintf("%s crash@%d seed %d mix %s", c.Workload, c.CrashAt, c.Seed, c.Mix)
	if c.SnapshotEvery > 0 {
		s += fmt.Sprintf(" snap@%d", c.SnapshotEvery)
	}
	return s
}

// Verdict classifies a case's outcome.
type Verdict string

// The verdicts.
const (
	// VerdictClean: no fault fired, recovery succeeded, invariants hold.
	VerdictClean Verdict = "clean"
	// VerdictRecovered: faults fired, recovery succeeded, invariants hold.
	VerdictRecovered Verdict = "recovered"
	// VerdictDetected: faults fired and recovery refused with a corruption
	// error, leaving the image untouched — the correct fail-stop outcome
	// when undo material is damaged.
	VerdictDetected Verdict = "detected"
	// VerdictViolation: recovery claimed success but an invariant is
	// broken, or it reported corruption in an undamaged image.
	VerdictViolation Verdict = "violation"
	// VerdictError: the harness itself failed (simulator panic, unloadable
	// state) — neither a pass nor a crash-consistency finding.
	VerdictError Verdict = "error"
)

// Outcome is the result of one case.
type Outcome struct {
	Case    Case    `json:"case"`
	Verdict Verdict `json:"verdict"`
	// Faults is every injected event, in decision order.
	Faults []faults.Event `json:"faults,omitempty"`
	// Detail carries the invariant violation or the recovery/harness error.
	Detail string `json:"detail,omitempty"`
	// Report is the recovery summary when recovery ran to completion.
	Report *asap.RecoveryReport `json:"report,omitempty"`
	// Shrunk is the minimal fault subset still producing the violation,
	// filled by Shrink for violation outcomes.
	Shrunk []faults.Event `json:"shrunk,omitempty"`
}

// machineConfig is the fixed machine for every case: small enough to run
// hundreds of cases quickly, slow enough PM that crash points land inside
// long uncommitted windows.
func machineConfig() machine.Config {
	cfg := machine.DefaultConfig()
	cfg.Cores = 4
	cfg.Mem.Controllers, cfg.Mem.ChannelsPerMC = 1, 2
	cfg.Mem.WPQEntries = 8
	cfg.Mem.PMWriteCycles = 900
	return cfg
}

// workloadConfig is the fixed pre-crash workload shape.
func workloadConfig(seed int64, crashed func(start uint64)) workload.Config {
	return workload.Config{
		ValueBytes:     64,
		InitialItems:   16,
		Threads:        3,
		OpsPerThread:   40,
		Seed:           seed,
		SetupInRegions: true,
		MeasureStarted: crashed,
	}
}

// RunCase executes one crash-consistency experiment end to end.
func RunCase(c Case) Outcome {
	out := Outcome{Case: c}

	run, err := newWorkloadRun(c.Workload)
	if err != nil {
		out.Verdict, out.Detail = VerdictError, err.Error()
		return out
	}

	var inj *faults.Injector
	if c.Replay != nil {
		inj = faults.Replay(c.Replay)
	} else {
		inj = faults.New(c.Seed, c.Mix)
	}

	m := machine.New(machineConfig())
	e := core.NewEngine(m, core.DefaultOptions())
	m.Fabric.SetFaultInjector(inj)

	env := &workload.Env{M: m, S: e}
	var cs *core.CrashState
	crash := func() {
		// Scope damage to the uncommitted regions: recovery owes nothing
		// for committed data (that is the media's durability problem, not
		// crash consistency), and an unscoped fault there would fail every
		// mix against an invariant no log can protect.
		inj.SetScope(e.UncommittedRIDs())
		cs = e.Crash()
	}
	var wcfg workload.Config
	if c.SnapshotEvery > 0 {
		// Boundary-kill family: the crash fires from the checkpointer's
		// own boundary callback, after the state digest is taken — the
		// worst-case instant for a checkpoint publisher.
		var measuredStart uint64
		started := false
		ck := &machine.Checkpointer{
			M: m, Scheme: e,
			Identity: c.String(), Seed: c.Seed,
			Every: c.SnapshotEvery,
			OnBoundary: func(s snapshot.Snap) bool {
				if !started || s.Cycle < measuredStart+c.CrashAt {
					return true
				}
				crash()
				return false
			},
		}
		ck.Arm()
		wcfg = workloadConfig(c.Seed, func(start uint64) {
			measuredStart, started = start, true
		})
	} else {
		wcfg = workloadConfig(c.Seed, func(start uint64) {
			m.K.Schedule(start+c.CrashAt, crash)
		})
	}
	func() {
		defer func() { _ = recover() }() // a halt mid-run may strand the driver
		workload.Run(env, run.bench(), wcfg)
	}()
	if cs == nil {
		// The run drained before the crash point: crash the idle machine.
		crash()
	}

	// Bit-flip media errors hit the log region after the flush, modelling
	// decay the header and payload checksums exist to catch.
	var ranges []faults.Range
	for _, ext := range cs.Logs {
		ranges = append(ranges, faults.Range{Base: ext.Base, Size: ext.Size})
	}
	inj.FlipBits(cs.Image, ranges)
	out.Faults = inj.Events()

	// From here on, only the public API touches the state — exactly what a
	// real post-crash process gets.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(cs); err != nil {
		out.Verdict, out.Detail = VerdictError, "encoding crash state: "+err.Error()
		return out
	}
	pub, err := asap.LoadCrashState(&buf)
	if err != nil {
		out.Verdict, out.Detail = VerdictError, err.Error()
		return out
	}

	rep, err := pub.RecoverWithOptions(asap.RecoverOptions{SkipValidation: c.SkipValidation})
	if err != nil {
		var ce *recovery.CorruptionError
		if errors.As(err, &ce) {
			if len(out.Faults) > 0 {
				out.Verdict, out.Detail = VerdictDetected, err.Error()
			} else {
				out.Verdict, out.Detail = VerdictViolation, "corruption reported without any injected fault: "+err.Error()
			}
			return out
		}
		out.Verdict, out.Detail = VerdictError, err.Error()
		return out
	}
	out.Report = rep

	if problem := run.verify(pub.ReadUint64); problem != "" {
		out.Verdict, out.Detail = VerdictViolation, problem
		return out
	}

	// Reboot on the recovered image and keep going: recovery must leave a
	// machine the workload can actually continue on.
	sysCfg := asap.DefaultConfig()
	sysCfg.Cores = 2
	sysCfg.MemoryControllers, sysCfg.ChannelsPerMC = 1, 1
	sys2, err := asap.NewSystemFromCrash(sysCfg, pub)
	if err != nil {
		out.Verdict, out.Detail = VerdictError, "reboot: "+err.Error()
		return out
	}
	if problem := run.post(sys2, c.Seed+1); problem != "" {
		out.Verdict, out.Detail = VerdictViolation, "after reboot: "+problem
		return out
	}

	if len(out.Faults) > 0 {
		out.Verdict = VerdictRecovered
	} else {
		out.Verdict = VerdictClean
	}
	return out
}

// Shrink minimizes the fault set behind a violation by ddmin: it replays
// deterministic subsets of events (injection acts only at the crash flush,
// so the pre-crash execution is identical) and returns the smallest subset
// still producing a violation. budget bounds the number of replays.
func Shrink(c Case, events []faults.Event, budget int) []faults.Event {
	return DDMin(events, func(sub []faults.Event) bool {
		if budget <= 0 {
			return false
		}
		budget--
		cc := c
		cc.Replay = sub
		return RunCase(cc).Verdict == VerdictViolation
	})
}
