package schemes

import (
	"sort"

	"asap/internal/arch"
	"asap/internal/cache"
	"asap/internal/machine"
	"asap/internal/memdev"
	"asap/internal/obs"
	"asap/internal/sim"
	"asap/internal/wal"
)

// swThread is one thread's software-logging state.
type swThread struct {
	log     *wal.ThreadLog
	nest    int
	beginAt uint64
	logged  map[arch.LineAddr]arch.LineAddr // data line -> log line (this region)
	dirty   map[arch.LineAddr]bool          // lines to flush at region end
	pending int                             // outstanding synchronous persists
	local   uint64                          // per-thread region counter
	logEnd  uint64
	rec     arch.LineAddr // current record header
	recUsed int
}

// SW is the software undo-logging baseline of §6.3: distributed per-thread
// logs, persist instructions (clwb + fence) on the critical path, persist
// operations hand-coalesced per cache line within a region and overlapped
// where possible (all DPO flushes issued before one final fence).
//
// DPOOnly drops the logging half, leaving only the data flushes: the
// Figure 1 "DPO Only" configuration.
type SW struct {
	m       *machine.Machine
	threads map[int]*swThread

	// DPOOnly disables LPOs (no WAL): Figure 1's middle bar.
	DPOOnly bool
	// InstrOverhead models the extra instructions of software logging per
	// persist operation (bookkeeping, address computation).
	InstrOverhead uint64

	prof *obs.Profiler
}

// SetProfiler attaches a stall-attribution profiler (nil detaches).
func (s *SW) SetProfiler(p *obs.Profiler) {
	s.prof = p
	s.m.Caches.SetProfiler(p)
}

var _ machine.Scheme = (*SW)(nil)

// NewSW builds the software-logging baseline on m.
func NewSW(m *machine.Machine) *SW {
	s := &SW{m: m, threads: make(map[int]*swThread), InstrOverhead: 12}
	m.Caches.SetEvictHook(func(info cache.EvictInfo) { evictWriteback(m, info) })
	return s
}

// NewSWDPOOnly builds the Figure 1 "DPO Only" variant.
func NewSWDPOOnly(m *machine.Machine) *SW {
	s := NewSW(m)
	s.DPOOnly = true
	return s
}

// Name implements machine.Scheme.
func (s *SW) Name() string {
	if s.DPOOnly {
		return "SW-DPOOnly"
	}
	return "SW"
}

// InitThread implements machine.Scheme.
func (s *SW) InitThread(t *sim.Thread) {
	ts := &swThread{
		logged: make(map[arch.LineAddr]arch.LineAddr),
		dirty:  make(map[arch.LineAddr]bool),
	}
	if !s.DPOOnly {
		ts.log = wal.NewThreadLog(s.m.Heap, 256<<10)
	}
	s.threads[t.ID()] = ts
	t.Advance(200)
}

func (s *SW) state(t *sim.Thread) *swThread { return s.threads[t.ID()] }

// Begin implements machine.Scheme.
func (s *SW) Begin(t *sim.Thread) {
	ts := s.state(t)
	ts.nest++
	if ts.nest > 1 {
		t.Advance(1)
		return
	}
	ts.beginAt = t.Now()
	ts.local++
	ts.logged = make(map[arch.LineAddr]arch.LineAddr)
	ts.dirty = make(map[arch.LineAddr]bool)
	*s.m.Cells.RegionsBegun++
	t.Advance(s.InstrOverhead)
}

// End implements machine.Scheme: flush every dirty line (overlapped), wait
// for all the flushes, persist the commit record, free the log. All of it
// on the critical path — the cost Figure 1 quantifies.
func (s *SW) End(t *sim.Thread) {
	ts := s.state(t)
	ts.nest--
	if ts.nest > 0 {
		t.Advance(1)
		return
	}
	// clwb every dirty line, then a single fence (hand-overlapped).
	for _, line := range sortedLines(ts.dirty) {
		line := line
		ts.pending++
		*s.m.Cells.DPOsIssued++
		e := s.m.Fabric.NewEntry(memdev.KindDPO, arch.NoRID, line, line)
		s.m.Heap.ReadLineInto(line, e.Payload)
		s.m.Fabric.SubmitPersist(e, func(uint64) { ts.pending--; s.m.Caches.MarkClean(line) })
		t.Advance(s.InstrOverhead)
	}
	s.prof.Enter(t, obs.FenceWait)
	t.WaitUntil(func() bool { return ts.pending == 0 })
	s.prof.Exit(t)

	if !s.DPOOnly && len(ts.logged) > 0 {
		// Persist the commit record (log truncation point) and wait.
		ts.pending++
		hdr := s.m.Fabric.NewEntry(memdev.KindLogHeader, arch.NoRID, ts.rec, ts.rec)
		hdr.SetPayload(wal.EncodeHeader(arch.MakeRID(t.ID(), ts.local), keys(ts.logged)))
		s.m.Fabric.SubmitPersist(hdr, func(uint64) { ts.pending-- })
		s.prof.Enter(t, obs.FenceWait)
		t.WaitUntil(func() bool { return ts.pending == 0 })
		s.prof.Exit(t)
		ts.log.FreeUpTo(ts.logEnd)
		ts.rec, ts.recUsed = 0, 0
	}
	t.Advance(s.InstrOverhead)
	*s.m.Cells.RegionCycles += int64(t.Now() - ts.beginAt)
	s.m.Cells.RegionLatency.Observe(t.Now() - ts.beginAt)
	*s.m.Cells.RegionsCommitted++
}

// keys returns at most one record's worth of logged data lines for the
// commit header payload, in address order.
func keys(m map[arch.LineAddr]arch.LineAddr) []arch.LineAddr {
	out := make([]arch.LineAddr, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	if len(out) > wal.RecordEntries {
		out = out[:wal.RecordEntries]
	}
	return out
}

// Fence implements machine.Scheme: SW regions are already synchronous.
func (s *SW) Fence(t *sim.Thread) { *s.m.Cells.Fences++ }

// Load implements machine.Scheme.
func (s *SW) Load(t *sim.Thread, addr uint64, buf []byte) {
	s.m.Access(t, addr, len(buf), false, nil)
	s.m.Heap.Read(addr, buf)
}

// Store implements machine.Scheme: on the first write to a line in a
// region, write the undo entry and clwb+fence it before the store may
// proceed — the write-ahead rule enforced in software.
func (s *SW) Store(t *sim.Thread, addr uint64, data []byte) {
	ts := s.state(t)
	machine.VisitLines(addr, len(data), func(line arch.LineAddr) {
		lat, _ := s.m.Caches.AccessBlocking(t, s.m.CoreOf(t), line, true)
		t.Advance(lat)
		if !s.m.Heap.IsPersistentLine(line) || ts.nest == 0 {
			return
		}
		ts.dirty[line] = true
		if s.DPOOnly {
			return
		}
		if _, done := ts.logged[line]; done {
			return // hand-coalesced: one undo entry per line per region
		}
		logLine := s.appendUndo(t, ts, line)
		ts.logged[line] = logLine
	})
	s.m.Heap.Write(addr, data)
}

// appendUndo writes one undo entry through the cache, then clwb+fence: the
// old value must be durable before the data write lands (WAL).
func (s *SW) appendUndo(t *sim.Thread, ts *swThread, line arch.LineAddr) arch.LineAddr {
	if ts.recUsed == wal.RecordEntries || ts.rec == 0 {
		hdr, end, ok := ts.log.AllocRecord()
		if !ok {
			*s.m.Cells.LogOverflows++
			s.prof.Enter(t, obs.LogOverflow)
			t.Advance(2000)
			s.prof.Exit(t)
			ts.log.Grow()
			hdr, end, _ = ts.log.AllocRecord()
		}
		ts.rec, ts.recUsed, ts.logEnd = hdr, 0, end
	}
	logLine := wal.EntryLine(ts.rec, ts.recUsed)
	ts.recUsed++

	e := s.m.Fabric.NewEntry(memdev.KindLPO, arch.NoRID, logLine, line)
	s.m.Heap.ReadLineInto(line, e.Payload) // old value, read before the log store can yield
	// The software store of the log entry goes through the cache.
	lat, _ := s.m.Caches.AccessBlocking(t, s.m.CoreOf(t), logLine, true)
	t.Advance(lat + s.InstrOverhead)
	// clwb + mfence: wait for WPQ acceptance before continuing.
	ts.pending++
	*s.m.Cells.LPOsIssued++
	s.m.Fabric.SubmitPersist(e, func(uint64) { ts.pending--; s.m.Caches.MarkClean(logLine) })
	s.prof.Enter(t, obs.FenceWait)
	t.WaitUntil(func() bool { return ts.pending == 0 })
	s.prof.Exit(t)
	return logLine
}

// DrainBarrier implements machine.Scheme.
func (s *SW) DrainBarrier(t *sim.Thread) {
	s.prof.Enter(t, obs.Drain)
	t.WaitUntil(s.m.Fabric.Quiesced)
	s.prof.Exit(t)
}

// evictWriteback is the shared dirty-line LLC eviction path for schemes
// without special eviction handling.
func evictWriteback(m *machine.Machine, info cache.EvictInfo) {
	if !info.Dirty {
		return
	}
	e := m.Fabric.NewEntry(memdev.KindEvict, arch.NoRID, info.Line, info.Line)
	m.Heap.ReadLineInto(info.Line, e.Payload)
	m.Fabric.SubmitPersist(e, nil)
}
