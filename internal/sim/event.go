package sim

// event is one scheduled callback in the kernel's time-ordered queue.
type event struct {
	at  uint64
	seq uint64 // insertion order, breaks ties deterministically
	fn  func()
}

// eventQueue is a min-heap of events ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
