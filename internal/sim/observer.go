package sim

// Observer receives passive callbacks from the kernel and its threads: it
// is the attachment point for profilers and time-series recorders. An
// observer must never mutate simulation state or schedule events — the
// kernel guarantees that attaching one changes no simulated outcome, only
// what is recorded about it. All callbacks run with at most one simulated
// thread executing, so observers need no locking.
//
// A nil observer (the default) costs one pointer comparison per clock
// movement and nothing else.
type Observer interface {
	// ThreadStart fires when a thread is spawned, at the thread's initial
	// virtual time.
	ThreadStart(t *Thread)
	// ClockAdvance fires whenever t's virtual clock moves forward: after
	// an explicit Advance, or when the kernel pulls a lagging or blocked
	// thread up to the kernel clock. t.Now() is the post-advance time;
	// delta is how far the clock moved. Summed per thread, the deltas
	// cover the thread's lifetime exactly.
	ClockAdvance(t *Thread, delta uint64)
	// LockBegin/LockEnd bracket a contended Mutex.Lock: the wait between
	// them is lock-contention time, not compute.
	LockBegin(t *Thread)
	LockEnd(t *Thread)
	// Tick fires whenever the kernel clock advances (to a fired event's
	// time or a running thread's time). Recorders use it to sample gauges
	// without injecting events into the queue — the event stream, and with
	// it the simulation, stays byte-identical.
	Tick(now uint64)
}

// SetObserver attaches o to the kernel (nil detaches). Attach before Run;
// threads spawned earlier are reported to the observer on their first
// clock movement rather than at spawn.
func (k *Kernel) SetObserver(o Observer) { k.obs = o }

// Observer returns the attached observer, if any.
func (k *Kernel) Observer() Observer { return k.obs }
