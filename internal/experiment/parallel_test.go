package experiment

import (
	"strings"
	"testing"

	"asap/internal/runner"
	"asap/internal/stats"
)

// TestFigureOutputIdenticalAcrossPoolWidths is the determinism gate's
// in-tree twin: the rendered tables must be byte-identical between the
// serial pool and a wide one, because results are assembled in
// submission order and every run builds a private machine.
func TestFigureOutputIdenticalAcrossPoolWidths(t *testing.T) {
	defer SetPool(nil)
	sc := tinyScale("BN", "Q")

	SetPool(runner.New(1))
	serial := Fig1(sc).String() + Fig9b(sc).String() + Sec74(sc).String()

	SetPool(runner.New(8))
	wide := Fig1(sc).String() + Fig9b(sc).String() + Sec74(sc).String()

	if serial != wide {
		t.Fatalf("tables differ between pool widths:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, wide)
	}
}

// TestRunAllPanicPropagates preserves Run's serial failure semantics:
// a job that panics inside the pool (an inconsistent benchmark, an
// unknown scheme) must surface as a panic from runAll.
func TestRunAllPanicPropagates(t *testing.T) {
	defer SetPool(nil)
	SetPool(runner.New(4))
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("runAll must re-raise job panics")
		}
		if !strings.Contains((r.(error)).Error(), "unknown scheme") {
			t.Fatalf("panic lost its cause: %v", r)
		}
	}()
	runAll("bad", []runSpec{{v: Variant{Scheme: "NoSuchScheme"}, bench: "Q", scale: tinyScale("Q"), valueBytes: 64}})
}

// TestPoolMetricsCarrySimulatedCycles: the job log wired through the
// pool must see the simulator's cycle and op counts for real runs.
func TestPoolMetricsCarrySimulatedCycles(t *testing.T) {
	defer SetPool(nil)
	p := runner.New(2)
	log := &stats.JobLog{}
	p.SetMetrics(log)
	SetPool(p)

	sc := tinyScale("Q")
	Fig1(Scale{Threads: sc.Threads, OpsPerThread: sc.OpsPerThread, InitialItems: sc.InitialItems, Benchmarks: []string{"Q"}})

	snap := log.Snapshot()
	if len(snap) != 3 { // NP, SW-DPOOnly, SW on one benchmark
		t.Fatalf("want 3 job metrics, got %d", len(snap))
	}
	if snap[0].Label != "fig1/Q/NP" {
		t.Fatalf("labels must follow submission order: %q", snap[0].Label)
	}
	for _, m := range snap {
		if m.Cycles == 0 || m.Ops == 0 {
			t.Fatalf("simulated metrics missing from %+v", m)
		}
	}
}
