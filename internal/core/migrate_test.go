package core

import (
	"testing"

	"asap/internal/machine"
	"asap/internal/sim"
	"asap/internal/stats"
)

func TestMigrateMidRegion(t *testing.T) {
	m, e := testRig(DefaultOptions(), nil)
	base := m.Heap.Alloc(64*8, true)
	var coreAfter int
	run(m, e, func(th *sim.Thread) {
		e.Begin(th)
		storeU64(e, th, base, 1)
		storeU64(e, th, base+64, 2)
		e.Migrate(th, 2) // context switch with the region in progress
		storeU64(e, th, base+128, 3)
		e.End(th)
		coreAfter = m.CoreOf(th)
	})
	if m.St.Get(stats.RegionsCommitted) != 1 {
		t.Fatal("migrated region did not commit")
	}
	for i, want := range []uint64{1, 2, 3} {
		if got := m.Heap.ReadU64(base + uint64(64*i)); got != want {
			t.Fatalf("value[%d] = %d, want %d", i, got, want)
		}
	}
	if coreAfter != 2 {
		t.Fatalf("thread core = %d after migrate, want 2", coreAfter)
	}
}

func TestMigrateCommitsPendingDPOs(t *testing.T) {
	// The CL List entry must be drained before the switch: after Migrate
	// returns, no slot of the in-progress region remains on the old core.
	m, e := testRig(DefaultOptions(), func(c *machine.Config) {
		c.Mem.PMWriteCycles = 2000
	})
	base := m.Heap.Alloc(64*8, true)
	run(m, e, func(th *sim.Thread) {
		e.Begin(th)
		for i := 0; i < 5; i++ {
			storeU64(e, th, base+uint64(64*i), uint64(i))
		}
		oldList := e.cl[e.state(th).core]
		e.Migrate(th, 3)
		if oldList.Len() != 0 {
			t.Errorf("old core still holds %d CL entries after migrate", oldList.Len())
		}
		storeU64(e, th, base+64*6, 9)
		e.End(th)
	})
	if m.St.Get(stats.RegionsCommitted) != 1 {
		t.Fatal("region did not commit after migration")
	}
}

func TestMigrateNoRegionIsCheap(t *testing.T) {
	m, e := testRig(DefaultOptions(), nil)
	var before, after uint64
	run(m, e, func(th *sim.Thread) {
		before = th.Now()
		e.Migrate(th, 1)
		after = th.Now()
	})
	if after-before > 5000 {
		t.Fatalf("idle migrate cost %d cycles", after-before)
	}
	_ = m
}

func TestMigrateSameCoreNoop(t *testing.T) {
	m, e := testRig(DefaultOptions(), nil)
	run(m, e, func(th *sim.Thread) {
		start := th.Now()
		e.Migrate(th, e.state(th).core)
		if th.Now() != start {
			t.Error("same-core migrate should be free")
		}
	})
	_ = m
}

func TestMigratePreservesDependences(t *testing.T) {
	// A region that captured a dependence before migrating must still
	// commit after its dependence, from the new core.
	m, e := testRig(DefaultOptions(), func(c *machine.Config) {
		c.Mem.Controllers, c.Mem.ChannelsPerMC = 1, 1
		c.Mem.WPQEntries = 1
		c.Mem.PMWriteCycles = 3000
	})
	x := m.Heap.Alloc(64, true)
	var mu sim.Mutex
	producer := func(th *sim.Thread) {
		mu.Lock(th)
		e.Begin(th)
		storeU64(e, th, x, 7)
		e.End(th)
		mu.Unlock(th)
	}
	consumer := func(th *sim.Thread) {
		th.Advance(500)
		mu.Lock(th)
		e.Begin(th)
		v := loadU64(e, th, x)
		e.Migrate(th, 3)
		storeU64(e, th, x, v+1)
		e.End(th)
		mu.Unlock(th)
	}
	run(m, e, producer, consumer)
	for _, edge := range e.Edges {
		if e.CommittedAt[edge[1]] < e.CommittedAt[edge[0]] {
			t.Fatalf("dependence violated across migration: %v", edge)
		}
	}
	if m.Heap.ReadU64(x) != 8 {
		t.Fatalf("x = %d", m.Heap.ReadU64(x))
	}
}
