package queue

import (
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic lease and
// backoff testing.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func testPolicy() Policy {
	return Policy{
		MaxDeliveries: 3,
		LeaseTimeout:  time.Minute,
		BackoffBase:   time.Second,
		BackoffCap:    4 * time.Second,
	}
}

func mustLease(t *testing.T, q *Queue, worker string) *Lease {
	t.Helper()
	l, _, err := q.TryLease(worker)
	if err != nil {
		t.Fatalf("TryLease(%s): %v", worker, err)
	}
	if l == nil {
		t.Fatalf("TryLease(%s): nothing leasable", worker)
	}
	return l
}

func TestQueueLifecycle(t *testing.T) {
	clk := newFakeClock()
	q := New(testPolicy(), Options{Clock: clk.Now})
	id, err := q.Enqueue(json.RawMessage(`{"n":1}`))
	if err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	l := mustLease(t, q, "w0")
	if l.ID != id || l.Delivery != 1 {
		t.Fatalf("lease = %+v", l)
	}
	if info, _ := q.Get(id); info.State != StateLeased {
		t.Fatalf("state %s after lease", info.State)
	}
	if err := q.Ack(l, "sha256-x", ""); err != nil {
		t.Fatalf("ack: %v", err)
	}
	info, _ := q.Get(id)
	if info.State != StateDone || info.Hash != "sha256-x" {
		t.Fatalf("after ack: %+v", info)
	}
	if !q.Idle() {
		t.Fatal("queue not idle after its only job finished")
	}
}

func TestQueueFailBackoffRedeliver(t *testing.T) {
	clk := newFakeClock()
	q := New(testPolicy(), Options{Clock: clk.Now})
	id, _ := q.Enqueue(json.RawMessage(`{}`))
	l := mustLease(t, q, "w0")

	dead, err := q.Fail(l, "boom")
	if err != nil || dead {
		t.Fatalf("fail #1: dead=%v err=%v", dead, err)
	}
	// Backoff gates the retry: nothing leasable until base elapses.
	l2, wait, err := q.TryLease("w1")
	if err != nil || l2 != nil {
		t.Fatalf("leased through backoff gate: %+v, %v", l2, err)
	}
	if wait != time.Second {
		t.Fatalf("gate wait %v, want 1s", wait)
	}
	clk.Advance(time.Second)
	l2 = mustLease(t, q, "w1")
	if l2.ID != id || l2.Delivery != 2 {
		t.Fatalf("redelivery = %+v", l2)
	}
	if got := q.Counters()[CtrRedelivered]; got != 1 {
		t.Fatalf("redelivered counter %d", got)
	}
}

func TestQueueDeadLetterAtMaxDeliveries(t *testing.T) {
	clk := newFakeClock()
	q := New(testPolicy(), Options{Clock: clk.Now}) // MaxDeliveries 3
	id, _ := q.Enqueue(json.RawMessage(`{}`))
	for i := 1; i <= 3; i++ {
		clk.Advance(10 * time.Second) // clear any backoff gate
		l := mustLease(t, q, "w0")
		if l.Delivery != i {
			t.Fatalf("delivery %d on attempt %d", l.Delivery, i)
		}
		dead, err := q.Fail(l, "poison")
		if err != nil {
			t.Fatalf("fail #%d: %v", i, err)
		}
		if want := i == 3; dead != want {
			t.Fatalf("fail #%d: dead=%v, want %v", i, dead, want)
		}
	}
	info, _ := q.Get(id)
	if info.State != StateDead || info.LastError != "poison" {
		t.Fatalf("dead-letter state: %+v", info)
	}
	if l, _, _ := q.TryLease("w0"); l != nil {
		t.Fatalf("dead job leased: %+v", l)
	}
}

func TestQueueBackoffDoublesAndCaps(t *testing.T) {
	p := testPolicy().withDefaults()
	want := []time.Duration{time.Second, 2 * time.Second, 4 * time.Second, 4 * time.Second, 4 * time.Second}
	for i, w := range want {
		if got := p.Backoff(i + 1); got != w {
			t.Errorf("Backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestQueueReleaseIsUncharged(t *testing.T) {
	clk := newFakeClock()
	q := New(testPolicy(), Options{Clock: clk.Now})
	id, _ := q.Enqueue(json.RawMessage(`{}`))
	l := mustLease(t, q, "w0")
	if err := q.Release(l); err != nil {
		t.Fatalf("release: %v", err)
	}
	info, _ := q.Get(id)
	if info.State != StatePending || info.Deliveries != 0 {
		t.Fatalf("after release: %+v", info)
	}
	// Immediately leasable again — no backoff gate, and still delivery 1.
	l2 := mustLease(t, q, "w1")
	if l2.Delivery != 1 {
		t.Fatalf("post-release delivery %d, want 1", l2.Delivery)
	}
}

func TestQueueLeaseLostGuardsDoubleCompletion(t *testing.T) {
	clk := newFakeClock()
	q := New(testPolicy(), Options{Clock: clk.Now})
	q.Enqueue(json.RawMessage(`{}`))
	l := mustLease(t, q, "w0")

	// The lease expires; the job is redelivered to another worker.
	clk.Advance(2 * time.Minute)
	expired, err := q.ExpireLeases()
	if err != nil || len(expired) != 1 {
		t.Fatalf("expire: %v %v", expired, err)
	}
	clk.Advance(10 * time.Second)
	l2 := mustLease(t, q, "w1")

	// The original worker wakes up: all of its verbs must bounce.
	if err := q.Ack(l, "sha256-stale", ""); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale ack: %v", err)
	}
	if _, err := q.Fail(l, "stale"); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale fail: %v", err)
	}
	if err := q.Release(l); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale release: %v", err)
	}
	// The live lease still works, exactly once.
	if err := q.Ack(l2, "sha256-good", ""); err != nil {
		t.Fatalf("live ack: %v", err)
	}
	if err := q.Ack(l2, "sha256-good", ""); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("double ack: %v", err)
	}
	if got := q.Counters()[CtrLeaseLost]; got != 4 {
		t.Fatalf("lease_lost counter %d, want 4", got)
	}
}

func TestQueueExtendPushesDeadline(t *testing.T) {
	clk := newFakeClock()
	q := New(testPolicy(), Options{Clock: clk.Now})
	q.Enqueue(json.RawMessage(`{}`))
	l := mustLease(t, q, "w0")

	// Heartbeats keep a progressing job alive past the lease timeout...
	for i := 0; i < 3; i++ {
		clk.Advance(45 * time.Second)
		if err := q.Extend(l); err != nil {
			t.Fatalf("extend #%d: %v", i, err)
		}
		if ex, _ := q.ExpireLeases(); len(ex) != 0 {
			t.Fatalf("lease expired despite heartbeat: %+v", ex)
		}
	}
	// ...but a stall (no heartbeat) still expires.
	clk.Advance(2 * time.Minute)
	ex, _ := q.ExpireLeases()
	if len(ex) != 1 {
		t.Fatalf("stalled lease not expired: %+v", ex)
	}
	if err := q.Extend(l); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("extend after expiry: %v", err)
	}
}

func TestQueueTryLeaseOldestFirst(t *testing.T) {
	clk := newFakeClock()
	q := New(testPolicy(), Options{Clock: clk.Now})
	var ids []uint64
	for i := 0; i < 3; i++ {
		id, _ := q.Enqueue(json.RawMessage(`{}`))
		ids = append(ids, id)
	}
	for _, want := range ids {
		l := mustLease(t, q, "w0")
		if l.ID != want {
			t.Fatalf("leased %d, want %d (oldest first)", l.ID, want)
		}
		q.Ack(l, "sha256-x", "")
	}
}

func TestQueueRestoreReplaysAndOrphans(t *testing.T) {
	clk := newFakeClock()
	m := newMemMedium(nil)
	j, _, _, err := OpenMediumJournal(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	q := New(testPolicy(), Options{Journal: j, Clock: clk.Now})
	idDone, _ := q.Enqueue(json.RawMessage(`{"j":"done"}`))
	idOrphan, _ := q.Enqueue(json.RawMessage(`{"j":"orphan"}`))
	idPending, _ := q.Enqueue(json.RawMessage(`{"j":"pending"}`))
	l := mustLease(t, q, "w0") // idDone
	q.Ack(l, "sha256-done", "")
	mustLease(t, q, "w1") // idOrphan — never acked: the "daemon dies here" point

	// Restart: replay the journal into a fresh queue.
	recs, _, err := Replay(m.Durable())
	if err != nil {
		t.Fatal(err)
	}
	m2 := newMemMedium(m.Durable())
	j2, _, _, err := OpenMediumJournal(m2, m2.Durable())
	if err != nil {
		t.Fatal(err)
	}
	q2, recov, err := Restore(testPolicy(), Options{Journal: j2, Clock: clk.Now}, recs)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if recov.Jobs != 3 || recov.Done != 1 || recov.Orphaned != 1 || recov.Pending != 2 {
		t.Fatalf("recover result: %+v", recov)
	}
	if info, _ := q2.Get(idDone); info.State != StateDone || info.Hash != "sha256-done" {
		t.Fatalf("done job after restore: %+v", info)
	}
	// The orphaned job was charged a delivery and gated for retry.
	info, _ := q2.Get(idOrphan)
	if info.State != StatePending || info.Deliveries != 1 {
		t.Fatalf("orphan after restore: %+v", info)
	}
	if info, _ := q2.Get(idPending); info.State != StatePending || info.Deliveries != 0 {
		t.Fatalf("pending job after restore: %+v", info)
	}
	// The orphan expiry was itself journaled: a second restore agrees.
	recs2, _, err := Replay(m2.Durable())
	if err != nil {
		t.Fatal(err)
	}
	q3, recov3, err := Restore(testPolicy(), Options{Clock: clk.Now}, recs2)
	if err != nil {
		t.Fatalf("second restore: %v", err)
	}
	if recov3.Orphaned != 0 {
		t.Fatalf("orphan expiry not durable: %+v", recov3)
	}
	if info, _ := q3.Get(idOrphan); info.Deliveries != 1 {
		t.Fatalf("orphan charge not durable: %+v", info)
	}
}

func TestQueueRestoreRejectsCorruptHistory(t *testing.T) {
	histories := [][]Record{
		{{Type: RecEnqueue, ID: 1}, {Type: RecEnqueue, ID: 1}},
		{{Type: RecLease, ID: 1, Delivery: 1}},
		{{Type: RecEnqueue, ID: 1}, {Type: RecAck, ID: 1, Delivery: 1}},
		{{Type: RecEnqueue, ID: 1}, {Type: RecLease, ID: 1, Delivery: 2}},
		{
			{Type: RecEnqueue, ID: 1},
			{Type: RecLease, ID: 1, Delivery: 1},
			{Type: RecAck, ID: 1, Delivery: 1},
			{Type: RecAck, ID: 1, Delivery: 1},
		},
	}
	for i, recs := range histories {
		if _, _, err := Restore(testPolicy(), Options{}, recs); !errors.Is(err, ErrCorrupt) {
			t.Errorf("history %d: got %v, want ErrCorrupt", i, err)
		}
	}
}

func TestQueueVolatileModeWorksWithoutJournal(t *testing.T) {
	q := New(testPolicy(), Options{})
	id, err := q.Enqueue(json.RawMessage(`{}`))
	if err != nil {
		t.Fatalf("volatile enqueue: %v", err)
	}
	l := mustLease(t, q, "w0")
	if err := q.Ack(l, "sha256-x", ""); err != nil {
		t.Fatalf("volatile ack: %v", err)
	}
	if info, _ := q.Get(id); info.State != StateDone {
		t.Fatalf("volatile state: %+v", info)
	}
}

func TestQueueClosedOperationsFail(t *testing.T) {
	q := New(testPolicy(), Options{})
	q.Close()
	if _, err := q.Enqueue(json.RawMessage(`{}`)); !errors.Is(err, ErrClosed) {
		t.Fatalf("enqueue after close: %v", err)
	}
	if _, _, err := q.TryLease("w"); !errors.Is(err, ErrClosed) {
		t.Fatalf("lease after close: %v", err)
	}
}
