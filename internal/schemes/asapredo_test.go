package schemes

import (
	"testing"

	"asap/internal/machine"
	"asap/internal/sim"
	"asap/internal/stats"
)

func buildRedoA(mutate func(*machine.Config)) (*machine.Machine, *ASAPRedo) {
	cfg := machine.DefaultConfig()
	cfg.Cores = 4
	if mutate != nil {
		mutate(&cfg)
	}
	m := machine.New(cfg)
	return m, NewASAPRedo(m)
}

func TestASAPRedoBasicCommit(t *testing.T) {
	m, s := buildRedoA(nil)
	cycles := miniWorkload(m, s, 30, 3)
	if cycles == 0 {
		t.Fatal("no cycles")
	}
	if got := m.St.Get(stats.RegionsCommitted); got != 30 {
		t.Fatalf("committed = %d, want 30", got)
	}
}

func TestASAPRedoEndIsAsynchronous(t *testing.T) {
	m, s := buildRedoA(func(c *machine.Config) {
		c.Mem.Controllers, c.Mem.ChannelsPerMC = 1, 1
		c.Mem.WPQEntries = 1
		c.Mem.PMWriteCycles = 3000
	})
	base := m.Heap.Alloc(64*4, true)
	var endAt uint64
	m.K.Spawn("w", func(th *sim.Thread) {
		s.InitThread(th)
		s.Begin(th)
		for j := 0; j < 3; j++ {
			var b [8]byte
			s.Store(th, base+uint64(64*j), b[:])
		}
		s.End(th)
		endAt = th.Now()
		s.DrainBarrier(th)
	})
	m.K.Run()
	if endAt > 3000 {
		t.Fatalf("End stalled until %d: asynchronous redo commit broken", endAt)
	}
}

func TestASAPRedoDependenceOrder(t *testing.T) {
	// Figure 2c: a consumer's commit (and thus its DPOs) must wait for the
	// producer. With a throttled WPQ the producer's log writes crawl; the
	// consumer must still commit after it.
	m, s := buildRedoA(func(c *machine.Config) {
		c.Mem.Controllers, c.Mem.ChannelsPerMC = 1, 1
		c.Mem.WPQEntries = 1
		c.Mem.PMWriteCycles = 3000
	})
	x := m.Heap.Alloc(64, true)
	var mu sim.Mutex
	var commits []int
	track := func(id int) func() bool {
		return func() bool {
			commits = append(commits, id)
			return true
		}
	}
	_ = track
	producer := func(th *sim.Thread) {
		mu.Lock(th)
		s.Begin(th)
		var b [8]byte
		b[0] = 7
		s.Store(th, x, b[:])
		s.End(th)
		mu.Unlock(th)
	}
	consumer := func(th *sim.Thread) {
		th.Advance(500)
		mu.Lock(th)
		s.Begin(th)
		var b [8]byte
		s.Load(th, x, b[:])
		b[0]++
		s.Store(th, x, b[:])
		s.End(th)
		mu.Unlock(th)
		// The consumer region must have captured the dependence.
		if len(s.state(th).last.deps) == 0 && !s.state(th).last.committed {
			t.Error("consumer captured no dependence while producer uncommitted")
		}
	}
	for _, fn := range []func(*sim.Thread){producer, consumer} {
		fn := fn
		m.K.Spawn("w", func(th *sim.Thread) {
			s.InitThread(th)
			fn(th)
			s.DrainBarrier(th)
		})
	}
	m.K.Run()
	if got := m.Heap.ReadU64(x); got != 8 {
		t.Fatalf("x = %d, want 8", got)
	}
	if m.St.Get(stats.RegionsCommitted) != 2 {
		t.Fatal("not everything committed")
	}
}

func TestASAPRedoAllBenchmarksConsistent(t *testing.T) {
	// The scheme integrates with every Table 3 benchmark via the shared
	// interface; spot-check a representative mix end to end.
	for _, name := range []string{"BN", "Q", "HM", "TPCC"} {
		m, s := buildRedoA(nil)
		env := envFor(m, s)
		res := runBench(env, name)
		if res != "" {
			t.Fatalf("%s: %s", name, res)
		}
	}
}

func TestASAPRedoFenceWaits(t *testing.T) {
	m, s := buildRedoA(func(c *machine.Config) {
		c.Mem.Controllers, c.Mem.ChannelsPerMC = 1, 1
		c.Mem.WPQEntries = 1
		c.Mem.PMWriteCycles = 4000
	})
	base := m.Heap.Alloc(64*4, true)
	var endAt, fenceAt uint64
	m.K.Spawn("w", func(th *sim.Thread) {
		s.InitThread(th)
		s.Begin(th)
		for j := 0; j < 3; j++ {
			var b [8]byte
			s.Store(th, base+uint64(64*j), b[:])
		}
		s.End(th)
		endAt = th.Now()
		s.Fence(th)
		fenceAt = th.Now()
		s.DrainBarrier(th)
	})
	m.K.Run()
	if fenceAt <= endAt {
		t.Fatalf("fence (%d) should wait beyond End (%d)", fenceAt, endAt)
	}
}
