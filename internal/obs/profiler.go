package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"asap/internal/sim"
)

// Span is one bracketed wait: thread tid spent [From, To) in bucket B.
// Spans nest strictly (Enter/Exit is a stack), so a child span's cycles
// are charged to the child, not the parent.
type Span struct {
	TID    int
	Name   string
	Bucket Bucket
	From   uint64
	To     uint64
}

// frame is one live Enter on a thread's bucket stack.
type frame struct {
	b  Bucket
	at uint64
}

// ThreadProfile is one simulated thread's cycle accounting.
type ThreadProfile struct {
	ID    int
	Name  string
	Start uint64 // virtual time at spawn (or first observation)
	End   uint64 // virtual time last observed

	// Cycles[b] is the number of cycles charged to bucket b. The buckets
	// sum exactly to End-Start: every clock movement is charged somewhere.
	Cycles [NumBuckets]uint64

	stack []frame
}

// Total returns the thread's observed lifetime in cycles.
func (tp *ThreadProfile) Total() uint64 { return tp.End - tp.Start }

// current returns the bucket new cycles are charged to.
func (tp *ThreadProfile) current() Bucket {
	if n := len(tp.stack); n > 0 {
		return tp.stack[n-1].b
	}
	return Compute
}

// Profiler charges every simulated thread-cycle to a Bucket. It implements
// the clock half of sim.Observer; protocol code brackets structure waits
// with Enter/Exit. All methods are nil-safe, so components hold a plain
// *Profiler field that defaults to nil for zero-cost disabled operation
// (the same pattern as memdev.FaultInjector).
type Profiler struct {
	byID  map[int]*ThreadProfile
	order []int

	spanCap int
	spans   []Span
	dropped int
}

// NewProfiler returns an empty profiler. Span recording is off until
// EnableSpans.
func NewProfiler() *Profiler {
	return &Profiler{byID: make(map[int]*ThreadProfile)}
}

// EnableSpans turns on wait-span recording for timeline export, keeping at
// most max spans (<=0 selects 1<<16). Spans beyond the cap are counted but
// not stored.
func (p *Profiler) EnableSpans(max int) {
	if p == nil {
		return
	}
	if max <= 0 {
		max = 1 << 16
	}
	p.spanCap = max
}

func (p *Profiler) profile(t *sim.Thread) *ThreadProfile {
	tp := p.byID[t.ID()]
	if tp == nil {
		tp = &ThreadProfile{ID: t.ID(), Name: t.Name(), Start: t.Now(), End: t.Now()}
		p.byID[t.ID()] = tp
		p.order = append(p.order, t.ID())
	}
	return tp
}

// ThreadStart implements sim.Observer.
func (p *Profiler) ThreadStart(t *sim.Thread) {
	if p == nil {
		return
	}
	p.profile(t)
}

// ClockAdvance implements sim.Observer: delta cycles are charged to the
// thread's current bucket.
func (p *Profiler) ClockAdvance(t *sim.Thread, delta uint64) {
	if p == nil {
		return
	}
	tp := p.profile(t)
	tp.Cycles[tp.current()] += delta
	tp.End += delta
}

// Enter pushes bucket b: until the matching Exit, the thread's cycles are
// charged to b (or to a more deeply nested bucket).
func (p *Profiler) Enter(t *sim.Thread, b Bucket) {
	if p == nil {
		return
	}
	tp := p.profile(t)
	tp.stack = append(tp.stack, frame{b: b, at: t.Now()})
}

// Exit pops the innermost bucket, recording its span when span recording
// is enabled and the wait took nonzero time.
func (p *Profiler) Exit(t *sim.Thread) {
	if p == nil {
		return
	}
	tp := p.byID[t.ID()]
	if tp == nil || len(tp.stack) == 0 {
		panic("obs: Exit without Enter on " + t.Name())
	}
	f := tp.stack[len(tp.stack)-1]
	tp.stack = tp.stack[:len(tp.stack)-1]
	if p.spanCap > 0 && t.Now() > f.at {
		if len(p.spans) < p.spanCap {
			p.spans = append(p.spans, Span{TID: tp.ID, Name: tp.Name, Bucket: f.b, From: f.at, To: t.Now()})
		} else {
			p.dropped++
		}
	}
}

// LockBegin implements sim.Observer: mutex contention is LockWait time.
func (p *Profiler) LockBegin(t *sim.Thread) { p.Enter(t, LockWait) }

// LockEnd implements sim.Observer.
func (p *Profiler) LockEnd(t *sim.Thread) { p.Exit(t) }

// Tick implements sim.Observer; the profiler ignores kernel-clock ticks.
func (p *Profiler) Tick(uint64) {}

// Threads returns the per-thread profiles in spawn order.
func (p *Profiler) Threads() []*ThreadProfile {
	if p == nil {
		return nil
	}
	out := make([]*ThreadProfile, 0, len(p.order))
	for _, id := range p.order {
		out = append(out, p.byID[id])
	}
	return out
}

// Spans returns the recorded wait spans in completion order, and how many
// were dropped at the cap.
func (p *Profiler) Spans() (spans []Span, dropped int) {
	if p == nil {
		return nil, 0
	}
	return p.spans, p.dropped
}

// Totals sums the per-thread accounting: cycles per bucket across all
// threads, and the all-bucket total.
func (p *Profiler) Totals() (perBucket [NumBuckets]uint64, total uint64) {
	if p == nil {
		return
	}
	for _, tp := range p.byID {
		for b, c := range tp.Cycles {
			perBucket[b] += c
			total += c
		}
	}
	return
}

// Check verifies the profiler's core invariant: for every thread, the
// bucket cycles sum exactly to the thread's observed lifetime, and no
// Enter is left unmatched. It returns the first violation found (threads
// visited in spawn order), or nil.
func (p *Profiler) Check() error {
	if p == nil {
		return nil
	}
	for _, id := range p.order {
		tp := p.byID[id]
		var sum uint64
		for _, c := range tp.Cycles {
			sum += c
		}
		if sum != tp.Total() {
			return fmt.Errorf("obs: thread %d (%s): bucket cycles %d != lifetime %d",
				tp.ID, tp.Name, sum, tp.Total())
		}
		if len(tp.stack) != 0 {
			return fmt.Errorf("obs: thread %d (%s): %d unmatched Enter(s), innermost %s",
				tp.ID, tp.Name, len(tp.stack), tp.stack[len(tp.stack)-1].b)
		}
	}
	return nil
}

// String renders the per-thread accounting, threads in spawn order,
// buckets in index order, zero buckets omitted.
func (p *Profiler) String() string {
	if p == nil {
		return ""
	}
	var b []byte
	for _, tp := range p.Threads() {
		b = append(b, fmt.Sprintf("%s#%d: %d cycles\n", tp.Name, tp.ID, tp.Total())...)
		for bk, c := range tp.Cycles {
			if c == 0 {
				continue
			}
			b = append(b, fmt.Sprintf("  %-12s %12d (%5.1f%%)\n",
				Bucket(bk), c, 100*float64(c)/float64(tp.Total()))...)
		}
	}
	return string(b)
}

// SortedBucketIdx returns bucket indices ordered by descending cycles in
// per, for largest-first presentation. Ties keep index order.
func SortedBucketIdx(per [NumBuckets]uint64) []int {
	idx := make([]int, NumBuckets)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return per[idx[a]] > per[idx[b]] })
	return idx
}

// threadJSON is one thread's entry in the WriteJSON dump.
type threadJSON struct {
	ID     int               `json:"id"`
	Name   string            `json:"name"`
	Start  uint64            `json:"start"`
	End    uint64            `json:"end"`
	Total  uint64            `json:"total"`
	Cycles map[string]uint64 `json:"cycles"` // nonzero buckets only
}

// profileJSON is the WriteJSON document.
type profileJSON struct {
	Threads []threadJSON      `json:"threads"`
	Totals  map[string]uint64 `json:"totals"`
	Total   uint64            `json:"total"`
}

// WriteJSON dumps the accounting as JSON: per-thread nonzero bucket
// cycles (which sum to each thread's total), the all-thread per-bucket
// totals, and the grand total. Map keys marshal sorted, so the output is
// deterministic.
func (p *Profiler) WriteJSON(w io.Writer) error {
	doc := profileJSON{Threads: []threadJSON{}, Totals: map[string]uint64{}}
	for _, tp := range p.Threads() {
		tj := threadJSON{
			ID: tp.ID, Name: tp.Name, Start: tp.Start, End: tp.End,
			Total: tp.Total(), Cycles: map[string]uint64{},
		}
		for b, c := range tp.Cycles {
			if c != 0 {
				tj.Cycles[Bucket(b).String()] = c
			}
		}
		doc.Threads = append(doc.Threads, tj)
	}
	per, total := p.Totals()
	for b, c := range per {
		if c != 0 {
			doc.Totals[Bucket(b).String()] = c
		}
	}
	doc.Total = total
	return json.NewEncoder(w).Encode(doc)
}
