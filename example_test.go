package asap_test

import (
	"fmt"

	"asap"
)

// The smallest complete program: one thread, one atomically durable
// region, counters afterwards.
func Example() {
	sys, _ := asap.NewSystem(asap.DefaultConfig())
	cell := sys.Malloc(64)
	sys.Spawn("app", func(t *asap.Thread) {
		t.Begin()
		t.StoreUint64(cell, 42)
		t.End() // returns immediately; the commit is asynchronous
		t.Drain()
	})
	sys.Run()
	fmt.Println("committed regions:", sys.Stats()["region.committed"])
	// Output: committed regions: 1
}

// Fence makes everything the thread has done durable before an external
// action — the §5.2 pattern.
func ExampleThread_Fence() {
	sys, _ := asap.NewSystem(asap.DefaultConfig())
	cell := sys.Malloc(64)
	sys.Spawn("app", func(t *asap.Thread) {
		for i := uint64(1); i <= 3; i++ {
			t.Begin()
			t.StoreUint64(cell, i)
			t.End()
		}
		t.Fence() // all three regions are durable past this point
		fmt.Println("durable value:", t.LoadUint64(cell))
	})
	sys.Run()
	// Output: durable value: 3
}

// Crash freezes the machine mid-run; Recover rolls uncommitted regions
// back so the persisted image is a consistent prefix.
func ExampleSystem_Crash() {
	cfg := asap.DefaultConfig()
	cfg.Cores = 2
	sys, _ := asap.NewSystem(cfg)
	cell := sys.Malloc(64)
	var crash *asap.CrashState
	sys.Spawn("app", func(t *asap.Thread) {
		t.Begin()
		t.StoreUint64(cell, 7)
		t.End()
		t.Drain() // let the region commit before the failure
		crash, _ = sys.Crash()
	})
	sys.Run()
	crash.Recover()
	fmt.Println("persisted:", crash.ReadUint64(cell))
	// Output: persisted: 7
}

// Mutex provides the isolation the paper leaves to software (§2.1):
// conflicting atomic regions nest inside critical sections.
func ExampleMutex() {
	sys, _ := asap.NewSystem(asap.DefaultConfig())
	counter := sys.Malloc(64)
	var mu asap.Mutex
	for i := 0; i < 3; i++ {
		sys.Spawn("worker", func(t *asap.Thread) {
			for j := 0; j < 5; j++ {
				mu.Lock(t)
				t.Begin()
				t.StoreUint64(counter, t.LoadUint64(counter)+1)
				t.End()
				mu.Unlock(t)
			}
			t.Drain()
		})
	}
	sys.Run()
	crash, _ := sys.Crash()
	fmt.Println("persisted counter:", crash.ReadUint64(counter))
	// Output: persisted counter: 15
}

// Schemes can be swapped without touching program code: here the same
// region runs under the synchronous-commit hardware undo baseline.
func ExampleConfig_scheme() {
	cfg := asap.DefaultConfig()
	cfg.Scheme = asap.SchemeHWUndo
	sys, _ := asap.NewSystem(cfg)
	cell := sys.Malloc(64)
	sys.Spawn("app", func(t *asap.Thread) {
		t.Begin()
		t.StoreUint64(cell, 1)
		t.End() // HWUndo waits here for LPOs and DPOs (synchronous commit)
		t.Drain()
	})
	sys.Run()
	fmt.Println(sys.SchemeImpl().Name())
	// Output: HWUndo
}
