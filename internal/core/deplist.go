package core

import "asap/internal/arch"

// DepEntry is one Dependence List entry (Figure 3 ❹): an uncommitted
// atomic region, its StateMC (Done once all its modified lines have
// persisted), and up to DepSlots regions it still depends on.
type DepEntry struct {
	RID  arch.RID
	Done bool
	Deps map[arch.RID]struct{}
}

// HasDep reports whether r is among the entry's unresolved dependencies.
func (e *DepEntry) HasDep(r arch.RID) bool {
	_, ok := e.Deps[r]
	return ok
}

// DependenceList is one memory channel's slice of the Dependence List:
// part of the memory controller and of the persistence domain (§4.3), so
// its contents survive a crash and drive recovery ordering (§5.5).
type DependenceList struct {
	cap     int
	slotCap int
	entries map[arch.RID]*DepEntry
}

// NewDependenceList builds a list with the given entry capacity and Dep
// slots per entry (Table 2: 128 entries/channel, 4 Dep slots).
func NewDependenceList(capacity, slots int) *DependenceList {
	return &DependenceList{cap: capacity, slotCap: slots, entries: make(map[arch.RID]*DepEntry)}
}

// HasSpace reports whether a new region entry can be created.
func (l *DependenceList) HasSpace() bool { return len(l.entries) < l.cap }

// Add creates the entry for region r; it panics on overflow (callers gate
// on HasSpace, stalling in simulated time) or duplicates.
func (l *DependenceList) Add(r arch.RID) *DepEntry {
	if !l.HasSpace() {
		panic("core: Dependence List overflow")
	}
	if _, ok := l.entries[r]; ok {
		panic("core: duplicate Dependence List entry " + r.String())
	}
	e := &DepEntry{RID: r, Deps: make(map[arch.RID]struct{})}
	l.entries[r] = e
	return e
}

// Get returns region r's entry, or nil once r has committed.
func (l *DependenceList) Get(r arch.RID) *DepEntry { return l.entries[r] }

// Remove deletes region r's entry (commit step ④).
func (l *DependenceList) Remove(r arch.RID) { delete(l.entries, r) }

// Len returns the number of occupied entries.
func (l *DependenceList) Len() int { return len(l.entries) }

// Cap returns the entry capacity.
func (l *DependenceList) Cap() int { return l.cap }

// SlotCap returns the Dep slots per entry.
func (l *DependenceList) SlotCap() int { return l.slotCap }

// CanAddDep reports whether entry e can record a dependence on dep right
// now: either it already has it, or a Dep slot is free.
func (l *DependenceList) CanAddDep(e *DepEntry, dep arch.RID) bool {
	if e.HasDep(dep) {
		return true
	}
	return len(e.Deps) < l.slotCap
}

// AddDep records that e's region depends on dep. Panics when full.
func (l *DependenceList) AddDep(e *DepEntry, dep arch.RID) {
	if e.HasDep(dep) {
		return
	}
	if len(e.Deps) >= l.slotCap {
		panic("core: Dep slots overflow for " + e.RID.String())
	}
	e.Deps[dep] = struct{}{}
}

// ClearDep removes dep from e's slots (commit broadcast).
func (e *DepEntry) ClearDep(dep arch.RID) { delete(e.Deps, dep) }

// Entries returns the live entries (iteration order unspecified).
func (l *DependenceList) Entries() []*DepEntry {
	out := make([]*DepEntry, 0, len(l.entries))
	for _, e := range l.entries {
		out = append(out, e)
	}
	return out
}
