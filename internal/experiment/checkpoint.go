// Checkpoint/resume at the experiment layer (DESIGN.md §15). A snapshot
// here is a consistent cut (identity, seed, cycle, per-section digests) —
// not a byte image — and resume means replaying the deterministic run to
// the boundary, verifying every section digest bit-for-bit, then
// continuing. The digests turn determinism from an assumption into an
// audited property: any divergence halts at the first boundary with the
// diverging sections named.
package experiment

import (
	"fmt"
	"strings"

	"asap/internal/snapshot"
	"asap/internal/workload"
)

// checkpointEvery, when non-zero, attaches an audit-mode checkpointer to
// every Run: boundary digests are taken and recorded but never acted on,
// so output is unchanged. Set it once before any sweep starts (asapbench
// -checkpoint-every does), not concurrently with runs.
var checkpointEvery uint64

// SetCheckpointEvery arms (n > 0) or disarms (0) audit-mode checkpointing
// for subsequent Runs.
func SetCheckpointEvery(n uint64) { checkpointEvery = n }

// runIdentity names a run for snapshot stamping: the canonical cache-key
// encoding when the variant has one, a best-effort scheme/bench tag
// otherwise (trace- or obs-attached variants).
func runIdentity(v Variant, bench string, scale Scale, valueBytes int) string {
	if k := standardKey(v, bench, scale, valueBytes); k != nil {
		return k.Canonical()
	}
	return fmt.Sprintf("custom/%s/%s", v.Scheme, bench)
}

// RunCheckpointed is Run plus a recorded snapshot every `every` cycles.
// The result is byte-identical to Run's (boundary events are
// scheduling-neutral); the snapshots are the resume anchors.
func RunCheckpointed(v Variant, bench string, scale Scale, valueBytes int, every uint64) (workload.Result, []snapshot.Snap) {
	res, ck := runWithCheckpointer(v, bench, scale, valueBytes, every, nil)
	if ck == nil {
		return res, nil
	}
	return res, ck.Snaps
}

// ResumeError reports a replay that reached the checkpoint cycle with
// different state: a determinism bug, a code change since the snapshot was
// taken, or a corrupted snapshot.
type ResumeError struct {
	Want, Got snapshot.Snap
	Diffs     []string
}

func (e *ResumeError) Error() string {
	return fmt.Sprintf("experiment: resume diverged from checkpoint at cycle %d: %s",
		e.Want.Cycle, strings.Join(e.Diffs, "; "))
}

// RunResumed resumes the run that produced `from`: it replays from scratch
// with the same checkpoint schedule (`every` must match the schedule that
// produced `from` — boundary events consume scheduler sequence numbers, so
// digests only compare between identical schedules), verifies the digest
// bit-for-bit at from.Cycle, and continues to completion. On divergence the
// run halts at the boundary and a *ResumeError names the diverging
// sections.
func RunResumed(v Variant, bench string, scale Scale, valueBytes int, every uint64, from snapshot.Snap) (workload.Result, error) {
	if every == 0 || from.Cycle%every != 0 {
		return workload.Result{}, fmt.Errorf("experiment: checkpoint cycle %d is not on an every=%d boundary", from.Cycle, every)
	}
	var rerr *ResumeError
	verified := false
	res, _ := runWithCheckpointer(v, bench, scale, valueBytes, every, func(s snapshot.Snap) bool {
		if s.Cycle != from.Cycle {
			return true
		}
		verified = true
		if diffs := from.Diff(s); len(diffs) > 0 {
			rerr = &ResumeError{Want: from, Got: s, Diffs: diffs}
			return false
		}
		return true
	})
	if rerr != nil {
		return res, rerr
	}
	if !verified {
		return res, fmt.Errorf("experiment: replay finished at a different point; never hit checkpoint cycle %d", from.Cycle)
	}
	return res, nil
}
