// Package wal implements the log organization of §5.5 and Figure 5: a
// distributed (per-thread) circular log buffer in persistent memory whose
// space is carved into records of one LogHeader line plus seven contiguous
// 64 B data-entry lines, and the binary header encoding crash recovery
// decodes out of the persisted image.
package wal

import (
	"asap/internal/arch"
	"asap/internal/heap"
)

// RecordLines is the size of one log record in lines: the header plus
// seven data entries (Figure 5a).
const RecordLines = 1 + RecordEntries

// RecordEntries is the number of data entries per record.
const RecordEntries = 7

// RecordBytes is the byte size of one record.
const RecordBytes = RecordLines * arch.LineSize

// ThreadLog is one thread's circular log buffer (Thread State Registers
// LogAddress/LogSize/LogHead/LogTail, §4.4). Records are allocated
// contiguously; if the tail would wrap mid-record the remainder of the
// buffer is skipped so a record never straddles the wrap point.
type ThreadLog struct {
	h *heap.Heap

	base uint64 // LogAddress
	size uint64 // LogSize (bytes)
	head uint64 // LogHead: absolute offset of oldest live byte
	tail uint64 // LogTail: absolute offset one past newest allocation

	overflows int
}

// NewThreadLog allocates a log buffer of size bytes in persistent memory
// (asap_init). size is rounded up to whole records.
func NewThreadLog(h *heap.Heap, size uint64) *ThreadLog {
	if size < RecordBytes {
		size = RecordBytes
	}
	size = (size + RecordBytes - 1) / RecordBytes * RecordBytes
	return &ThreadLog{h: h, base: h.Alloc(size, true), size: size}
}

// Base returns the buffer's base address (LogAddress).
func (l *ThreadLog) Base() uint64 { return l.base }

// Size returns the buffer size in bytes (LogSize).
func (l *ThreadLog) Size() uint64 { return l.size }

// Head returns the LogHead offset (absolute, monotonically increasing).
func (l *ThreadLog) Head() uint64 { return l.head }

// Tail returns the LogTail offset (absolute, monotonically increasing).
func (l *ThreadLog) Tail() uint64 { return l.tail }

// Overflows returns how many times the buffer overflowed and was grown.
func (l *ThreadLog) Overflows() int { return l.overflows }

// Live returns the number of live (allocated, not yet freed) bytes.
func (l *ThreadLog) Live() uint64 { return l.tail - l.head }

// live returns the number of live bytes.
func (l *ThreadLog) live() uint64 { return l.tail - l.head }

// AllocRecord reserves one record and returns the header line address and
// the absolute tail offset after the record; ok is false when the buffer
// is full, in which case the caller raises the log-overflow exception and
// calls Grow.
func (l *ThreadLog) AllocRecord() (header arch.LineAddr, end uint64, ok bool) {
	// Skip the wrap remainder if the record would straddle it.
	if rem := l.size - l.tail%l.size; rem < RecordBytes {
		if l.live()+rem > l.size {
			return 0, 0, false
		}
		l.tail += rem
	}
	if l.live()+RecordBytes > l.size {
		return 0, 0, false
	}
	addr := l.base + l.tail%l.size
	l.tail += RecordBytes
	return arch.LineAddr(addr), l.tail, true
}

// EntryLine returns the i-th data-entry line of the record at header.
func EntryLine(header arch.LineAddr, i int) arch.LineAddr {
	return header + arch.LineAddr((i+1)*arch.LineSize)
}

// FreeUpTo releases every record allocated before the absolute offset end
// (the committed region's last record end): the §5.5 "Freeing the Log on
// Commit" LogHead update. Frees are idempotent and monotone.
func (l *ThreadLog) FreeUpTo(end uint64) {
	if end > l.head {
		l.head = end
	}
	if l.head > l.tail {
		l.head = l.tail
	}
}

// Grow handles the log-overflow exception (§4.4): a fresh buffer of twice
// the size is allocated and the head/tail reset. Records already allocated
// in the old buffer keep their addresses; the old buffer is left in place
// (its live records may still be needed for recovery).
func (l *ThreadLog) Grow() {
	l.overflows++
	l.size *= 2
	l.base = l.h.Alloc(l.size, true)
	l.head, l.tail = 0, 0
}
