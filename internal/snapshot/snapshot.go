// Package snapshot is the versioned, deterministic state-serialization
// layer behind checkpoint/resume (DESIGN.md §15). A snapshot is not a
// byte image of the simulator — Go goroutine continuations cannot be
// serialized — but a consistent cut taken at a cycle boundary: the run's
// identity (config, seed) plus a per-section sha256 digest of every
// explicit-state structure (kernel clock/run-queue/waiters, cache
// tags/meta/line table, WPQ/LH-WPQ, PM image, heap, scheme state, stats
// counters). Because the kernel is bit-deterministic, (identity, seed,
// cycle) uniquely determines machine state; resuming = replaying to the
// boundary, verifying every section digest bit-for-bit, and continuing.
// The digests turn "trust the replay" into "audit the replay": any
// divergence — code change, nondeterminism bug, corrupted snapshot — is
// caught at the first boundary, named by section.
package snapshot

import (
	"asap/internal/iofault"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"hash/crc32"
	"path/filepath"
)

// FormatVersion identifies the snapshot encoding. Bump it whenever a
// section's byte layout changes: digests across versions never compare.
const FormatVersion = 1

// Section is one named state component's digest.
type Section struct {
	Name   string `json:"name"`
	SHA256 string `json:"sha256"`
}

// Enc is the sectioned deterministic encoder every AppendState method
// writes into. All integers are encoded little-endian fixed-width and
// variable-length data is length-prefixed, so encodings never alias
// across field boundaries.
type Enc struct {
	h        hash.Hash
	name     string
	sections []Section
	scratch  [8]byte
}

// NewEnc returns an encoder with no open section. Callers must open a
// Section before writing values.
func NewEnc() *Enc { return &Enc{} }

// Section closes the current section (if any) and opens a new one.
func (e *Enc) Section(name string) {
	e.closeSection()
	e.name = name
	e.h = sha256.New()
}

func (e *Enc) closeSection() {
	if e.h == nil {
		return
	}
	e.sections = append(e.sections, Section{
		Name:   e.name,
		SHA256: hex.EncodeToString(e.h.Sum(nil)),
	})
	e.h = nil
}

// U64 appends a fixed-width unsigned integer.
func (e *Enc) U64(v uint64) {
	binary.LittleEndian.PutUint64(e.scratch[:], v)
	e.h.Write(e.scratch[:])
}

// I64 appends a fixed-width signed integer.
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// Bool appends a boolean.
func (e *Enc) Bool(v bool) {
	if v {
		e.U64(1)
	} else {
		e.U64(0)
	}
}

// Bytes appends length-prefixed raw bytes.
func (e *Enc) Bytes(b []byte) {
	e.U64(uint64(len(b)))
	e.h.Write(b)
}

// Str appends a length-prefixed string.
func (e *Enc) Str(s string) {
	e.U64(uint64(len(s)))
	e.h.Write([]byte(s))
}

// Sections closes the current section and returns all digests in the
// order the sections were opened.
func (e *Enc) Sections() []Section {
	e.closeSection()
	return e.sections
}

// Snap is one checkpoint: where the run is (cycle), what the run is
// (identity, seed), and the digests proving what the state was.
type Snap struct {
	Version  int       `json:"version"`
	Identity string    `json:"identity"`
	Seed     int64     `json:"seed"`
	Cycle    uint64    `json:"cycle"`
	Sections []Section `json:"sections"`
}

// Digest returns the snapshot's overall sha256: version, identity, seed,
// cycle and every section digest, in order.
func (s Snap) Digest() string {
	e := NewEnc()
	e.Section("snap")
	e.I64(int64(s.Version))
	e.Str(s.Identity)
	e.I64(s.Seed)
	e.U64(s.Cycle)
	for _, sec := range s.Sections {
		e.Str(sec.Name)
		e.Str(sec.SHA256)
	}
	return e.Sections()[0].SHA256
}

// Diff compares two snapshots and returns a human-readable description
// of every difference (empty = bit-identical). Section digests are
// compared by name so a diverging component is called out directly.
func (s Snap) Diff(o Snap) []string {
	var out []string
	if s.Version != o.Version {
		out = append(out, fmt.Sprintf("version %d != %d", s.Version, o.Version))
	}
	if s.Identity != o.Identity {
		out = append(out, fmt.Sprintf("identity %q != %q", s.Identity, o.Identity))
	}
	if s.Seed != o.Seed {
		out = append(out, fmt.Sprintf("seed %d != %d", s.Seed, o.Seed))
	}
	if s.Cycle != o.Cycle {
		out = append(out, fmt.Sprintf("cycle %d != %d", s.Cycle, o.Cycle))
	}
	theirs := make(map[string]string, len(o.Sections))
	for _, sec := range o.Sections {
		theirs[sec.Name] = sec.SHA256
	}
	seen := make(map[string]bool, len(s.Sections))
	for _, sec := range s.Sections {
		seen[sec.Name] = true
		d, ok := theirs[sec.Name]
		if !ok {
			out = append(out, fmt.Sprintf("section %q missing from other", sec.Name))
			continue
		}
		if d != sec.SHA256 {
			out = append(out, fmt.Sprintf("section %q state diverged (%s != %s)", sec.Name, sec.SHA256[:12], d[:12]))
		}
	}
	for _, sec := range o.Sections {
		if !seen[sec.Name] {
			out = append(out, fmt.Sprintf("section %q only in other", sec.Name))
		}
	}
	return out
}

// File format: magic + version + CRC32 of the JSON payload + length +
// payload, written via temp + fsync + rename + parent-directory fsync —
// the same corruption and crash discipline as the result cache.
const fileMagic = "ASSN"

// WriteFile durably writes snap to path on the real filesystem.
func WriteFile(path string, snap Snap) error {
	return WriteFileFS(iofault.OS{}, path, snap)
}

// WriteFileFS durably writes snap to path through an explicit
// filesystem — the seam the hostile-I/O campaign injects faults
// through. On any failure path holds its previous content (or remains
// absent), never a torn mix.
func WriteFileFS(fsys iofault.FS, path string, snap Snap) error {
	payload, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	buf := make([]byte, 16+len(payload))
	copy(buf[0:4], fileMagic)
	binary.LittleEndian.PutUint32(buf[4:8], FormatVersion)
	binary.LittleEndian.PutUint32(buf[8:12], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint32(buf[12:16], uint32(len(payload)))
	copy(buf[16:], payload)
	return iofault.WriteDurable(fsys, filepath.Dir(path), path, buf)
}

// ReadFile reads and validates a snapshot written by WriteFile.
func ReadFile(path string) (Snap, error) {
	return ReadFileFS(iofault.OS{}, path)
}

// ReadFileFS reads and validates a snapshot through an explicit
// filesystem. Validation is fail-closed: any framing or checksum damage
// is an error, never a silently partial snapshot.
func ReadFileFS(fsys iofault.FS, path string) (Snap, error) {
	raw, err := fsys.ReadFile(path)
	if err != nil {
		return Snap{}, err
	}
	if len(raw) < 16 || string(raw[0:4]) != fileMagic {
		return Snap{}, fmt.Errorf("snapshot: %s: bad magic", path)
	}
	if v := binary.LittleEndian.Uint32(raw[4:8]); v != FormatVersion {
		return Snap{}, fmt.Errorf("snapshot: %s: format version %d (want %d)", path, v, FormatVersion)
	}
	payload := raw[16:]
	if n := binary.LittleEndian.Uint32(raw[12:16]); uint32(len(payload)) != n {
		return Snap{}, fmt.Errorf("snapshot: %s: truncated (%d of %d payload bytes)", path, len(payload), n)
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(raw[8:12]) {
		return Snap{}, fmt.Errorf("snapshot: %s: CRC mismatch", path)
	}
	var snap Snap
	if err := json.Unmarshal(payload, &snap); err != nil {
		return Snap{}, fmt.Errorf("snapshot: %s: %w", path, err)
	}
	return snap, nil
}
