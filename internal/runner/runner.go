// Package runner fans independent experiment jobs across a fixed-size
// worker pool and assembles their results in deterministic submission
// order. Every figure in the paper's evaluation is a (variant ×
// benchmark) matrix of runs that build private machines and share no
// state, so the sweep is embarrassingly parallel — but tables and
// EXPERIMENTS.md diffs must stay byte-stable regardless of scheduling,
// which is why results are returned by submission index, never by
// completion order.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"asap/internal/stats"
)

// Job is one schedulable unit of work: a labelled closure. Jobs must be
// independent of each other; the pool guarantees nothing about execution
// order, only about result order.
type Job[R any] struct {
	Label string
	Run   func() R
	// Cached, when non-nil, is consulted on a worker before Run is
	// dispatched: returning (r, true) short-circuits the job and r lands
	// at the job's index as if computed. This is how the result cache
	// turns a warm sweep into O(diff) — hits never build a machine.
	Cached func() (R, bool)
	// Store, when non-nil, receives the computed result after a cache
	// miss ran to completion (never after a panic, and never for cache
	// hits), so the next sweep finds it.
	Store func(R)
}

// Measurable lets the pool lift simulator metrics out of a job result
// without knowing its concrete type. workload.Result and
// workload.MultiResult implement it.
type Measurable interface {
	SimCycles() uint64
	SimOps() int64
}

// Reporter receives progress callbacks from the pool. Calls are
// serialized (never concurrent), but Done arrives in completion order,
// not submission order.
type Reporter interface {
	// Start announces one batch of jobs about to run; a pool used for
	// several batches calls Start once per batch, so totals accumulate.
	Start(total int)
	// Done reports one finished job: its label, host wall time, and
	// whether it completed without panicking.
	Done(label string, wall time.Duration, ok bool)
}

// CacheReporter is the optional Reporter extension for pools running
// memoized jobs: a reporter that implements it has cache hits reported
// through CachedDone instead of Done, so progress lines and daemon
// snapshots can show the cached-vs-computed split. Reporters without it
// see hits as ordinary (instant, successful) Done calls.
type CacheReporter interface {
	Reporter
	// CachedDone reports one job satisfied from the result cache.
	CachedDone(label string)
}

// PanicError carries a panic out of a worker goroutine to the caller of
// Collect, preserving the job label and the recovered value.
type PanicError struct {
	Label string
	Value any
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: job %q panicked: %v", e.Label, e.Value)
}

// Unwrap exposes a panic value that is itself an error (a job panicking
// with a *sim.StallError, say), so errors.Is/As see through the wrapper.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Pool is a fixed set of workers for Collect batches. The zero value is
// not usable; create one with New. A Pool may run any number of batches,
// one at a time or from a single goroutine.
type Pool struct {
	workers  int
	reporter Reporter
	metrics  *stats.JobLog
}

// New returns a pool of the given width. Zero or negative means
// GOMAXPROCS; one gives serial execution in submission order.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool width.
func (p *Pool) Workers() int { return p.workers }

// SetReporter installs a progress reporter (nil disables reporting).
func (p *Pool) SetReporter(r Reporter) { p.reporter = r }

// SetMetrics installs a job log that receives one stats.JobMetrics per
// job, appended in submission order after each batch completes.
func (p *Pool) SetMetrics(l *stats.JobLog) { p.metrics = l }

// ErrSkipped marks jobs that were never dispatched because the batch was
// cut short — the context was cancelled, or an earlier job failed under
// CollectCtx. It is the per-index error, not the batch error; the batch
// error is the cancellation cause or the earliest real failure.
var ErrSkipped = fmt.Errorf("runner: job skipped (batch cut short)")

// Collect runs every job on p's workers and returns their results
// indexed by submission order. A panicking job is captured as a
// *PanicError; the remaining jobs still run, and the error returned is
// the panic of the earliest-submitted failing job, so error reporting is
// as deterministic as the results. Results at failed indices are the
// zero value of R.
func Collect[R any](p *Pool, jobs []Job[R]) ([]R, error) {
	return collect(context.Background(), p, jobs, false)
}

// CollectCtx is Collect with a kill switch: once ctx is cancelled or any
// job fails, no further jobs are dispatched. Jobs already running finish
// (simulation runs are not preemptible; closures that honor ctx stop
// sooner), their results land at their indices, and skipped indices hold
// the zero value of R. The returned error is the earliest-submitted
// failing job's error if any job failed, else ctx.Err() if the batch was
// cut short by cancellation, else nil. Drain paths and signal handlers
// use this so one failure or an interrupt stops a sweep instead of
// running the rest of the matrix.
func CollectCtx[R any](ctx context.Context, p *Pool, jobs []Job[R]) ([]R, error) {
	return collect(ctx, p, jobs, true)
}

func collect[R any](ctx context.Context, p *Pool, jobs []Job[R], cut bool) ([]R, error) {
	n := len(jobs)
	results := make([]R, n)
	walls := make([]time.Duration, n)
	errs := make([]error, n)
	ran := make([]bool, n)

	if p.reporter != nil {
		p.reporter.Start(n)
	}

	workers := p.workers
	if workers > n {
		workers = n
	}
	var failed atomic.Bool
	var repMu sync.Mutex
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if cut && (failed.Load() || ctx.Err() != nil) {
					errs[i] = ErrSkipped
					continue
				}
				if jobs[i].Cached != nil && cachedOne(&results[i], jobs[i]) {
					ran[i] = true
					if p.reporter != nil {
						repMu.Lock()
						if cr, ok := p.reporter.(CacheReporter); ok {
							cr.CachedDone(jobs[i].Label)
						} else {
							p.reporter.Done(jobs[i].Label, 0, true)
						}
						repMu.Unlock()
					}
					continue
				}
				start := time.Now()
				errs[i] = runOne(&results[i], jobs[i])
				walls[i] = time.Since(start)
				ran[i] = true
				if errs[i] != nil {
					failed.Store(true)
				} else if jobs[i].Store != nil {
					jobs[i].Store(results[i])
				}
				if p.reporter != nil {
					repMu.Lock()
					p.reporter.Done(jobs[i].Label, walls[i], errs[i] == nil)
					repMu.Unlock()
				}
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()

	if p.metrics != nil {
		for i := range jobs {
			if ran[i] {
				p.metrics.Record(jobMetrics(jobs[i].Label, walls[i], results[i]))
			}
		}
	}
	for _, err := range errs {
		if err != nil && err != ErrSkipped {
			return results, err
		}
	}
	if cut {
		if err := ctx.Err(); err != nil {
			return results, err
		}
	}
	return results, nil
}

// cachedOne consults a job's cache probe with panic capture: a probe
// that panics (a corrupt decode slipping past CRC, say) is a miss — the
// job simply runs — never a batch failure.
func cachedOne[R any](dst *R, j Job[R]) (hit bool) {
	defer func() {
		if recover() != nil {
			hit = false
		}
	}()
	r, ok := j.Cached()
	if ok {
		*dst = r
	}
	return ok
}

// runOne executes one job with panic capture.
func runOne[R any](dst *R, j Job[R]) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Label: j.Label, Value: r}
		}
	}()
	*dst = j.Run()
	return nil
}

// jobMetrics summarizes one finished job, lifting simulated cycles and
// operation counts when the result type exposes them.
func jobMetrics[R any](label string, wall time.Duration, res R) stats.JobMetrics {
	m := stats.JobMetrics{Label: label, WallNS: wall.Nanoseconds()}
	if meas, ok := any(res).(Measurable); ok {
		m.Cycles = meas.SimCycles()
		m.Ops = meas.SimOps()
		if s := wall.Seconds(); s > 0 {
			m.OpsPerSec = float64(m.Ops) / s
		}
	}
	return m
}
