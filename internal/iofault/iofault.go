// Package iofault is the filesystem seam under every durable path in
// the service layer (queue journal, artifact store, result cache,
// snapshot files). It exists for the same reason internal/faults exists
// under the simulated persist path: the only way to trust recovery code
// is to run it against the failures it claims to survive. FS is a small
// interface covering exactly the operations the durable writers use; OS
// is the passthrough; FaultFS (faultfs.go) is a seeded, deterministic
// adversary injecting ENOSPC, EIO, short writes, torn-at-byte-N syncs
// and failed renames at chosen operations.
//
// The package also owns the POSIX durability idioms the writers share:
// SyncDir (temp+fsync+rename is not durable until the parent directory
// is fsynced — the rename itself lives in directory metadata) and
// Classify (mapping I/O errors onto the stable fault-class taxonomy the
// asapd_io_errors_total metric and the hostile-I/O campaign report on).
package iofault

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"syscall"
)

// File is the writable-file surface a durable writer needs: append
// bytes, force them to stable storage, close. *os.File satisfies it.
type File interface {
	io.Writer
	Sync() error
	Close() error
	Name() string
}

// FS abstracts the filesystem operations of the durable paths. Every
// method matches the corresponding os function's contract; the fault
// wrapper only changes *whether* a call succeeds, never what success
// means.
type FS interface {
	// OpenFile opens name with the given flag and permissions.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// CreateTemp creates a new temporary file in dir (see os.CreateTemp).
	CreateTemp(dir, pattern string) (File, error)
	// ReadFile reads the whole named file.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// MkdirAll creates a directory tree.
	MkdirAll(path string, perm os.FileMode) error
	// Stat stats a path.
	Stat(name string) (os.FileInfo, error)
	// ReadDir lists a directory, sorted by filename.
	ReadDir(name string) ([]os.DirEntry, error)
	// Truncate changes the size of the named file.
	Truncate(name string, size int64) error
	// SyncDir fsyncs a directory, making renames/creates/removes inside
	// it durable. Required after every temp+fsync+rename commit.
	SyncDir(dir string) error
}

// OS is the passthrough FS: the real filesystem, no faults.
type OS struct{}

func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (OS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}

func (OS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (OS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (OS) Remove(name string) error                     { return os.Remove(name) }
func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (OS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }
func (OS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }
func (OS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }

// SyncDir fsyncs dir. Filesystems that cannot fsync directories
// (returning EINVAL or ENOTSUP) are tolerated: on those, the rename
// barrier does not exist to enforce, and failing the commit would turn
// a portability quirk into data loss.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) {
		return nil
	}
	return err
}

// Fault classes, the stable taxonomy errors are classified into for
// metrics and campaign reporting.
const (
	ClassENOSPC     = "enospc"
	ClassEIO        = "eio"
	ClassShortWrite = "short_write"
	ClassTornSync   = "torn_sync"
	ClassRenameFail = "rename_fail"
	ClassNotExist   = "not_exist"
	ClassOther      = "other"
)

// Classify maps an I/O error onto the fault-class taxonomy. Injected
// faults carry their class explicitly; real OS errors map by errno.
func Classify(err error) string {
	if err == nil {
		return ""
	}
	var inj *InjectedError
	if errors.As(err, &inj) {
		return inj.Class
	}
	switch {
	case errors.Is(err, syscall.ENOSPC):
		return ClassENOSPC
	case errors.Is(err, syscall.EIO):
		return ClassEIO
	case errors.Is(err, io.ErrShortWrite):
		return ClassShortWrite
	case errors.Is(err, fs.ErrNotExist):
		return ClassNotExist
	}
	return ClassOther
}

// SweepTmp removes .tmp-* debris under root — the half-written temp
// files a crash mid-commit strands. They are invisible to every reader
// (never renamed into place) and would otherwise accumulate forever.
// Returns the number of files reaped. A missing root is not an error.
func SweepTmp(fsys FS, root string) (int, error) {
	reaped := 0
	var walk func(dir string) error
	walk = func(dir string) error {
		ents, err := fsys.ReadDir(dir)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				return nil
			}
			return err
		}
		for _, e := range ents {
			p := filepath.Join(dir, e.Name())
			if e.IsDir() {
				if err := walk(p); err != nil {
					return err
				}
				continue
			}
			if len(e.Name()) >= 5 && e.Name()[:5] == ".tmp-" {
				if err := fsys.Remove(p); err != nil && !errors.Is(err, fs.ErrNotExist) {
					return err
				}
				reaped++
			}
		}
		return nil
	}
	if err := walk(root); err != nil {
		return reaped, err
	}
	return reaped, nil
}

// DirBytes sums the sizes of regular files under root. A missing root
// counts as zero. Used to seed the per-store byte accounting watermark
// checks run against.
func DirBytes(fsys FS, root string) (int64, error) {
	var total int64
	var walk func(dir string) error
	walk = func(dir string) error {
		ents, err := fsys.ReadDir(dir)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				return nil
			}
			return err
		}
		for _, e := range ents {
			p := filepath.Join(dir, e.Name())
			if e.IsDir() {
				if err := walk(p); err != nil {
					return err
				}
				continue
			}
			if info, err := e.Info(); err == nil {
				total += info.Size()
			}
		}
		return nil
	}
	if err := walk(root); err != nil {
		return total, err
	}
	return total, nil
}

// WriteDurable writes data to path via the full commit discipline:
// temp file in path's directory, write, fsync, close, rename over
// path, fsync the directory. On any error the temp file is removed and
// the previous content of path (if any) is untouched — the caller sees
// either the old version or the new one, never a mix.
func WriteDurable(fsys FS, dir, path string, data []byte) error {
	tmp, err := fsys.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	defer fsys.Remove(name)
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(name, path); err != nil {
		return err
	}
	return fsys.SyncDir(dir)
}
