package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestRecorderSampling: gauges are read at every interval boundary the
// clock reaches, in registration order.
func TestRecorderSampling(t *testing.T) {
	r := NewRecorder(10, 0)
	v := 0.0
	r.AddGauge("g", func() float64 { return v })
	for now := uint64(0); now <= 100; now++ {
		v = float64(now)
		r.Tick(now)
	}
	s := r.Samples()
	if len(s) != 11 {
		t.Fatalf("got %d samples, want 11 (cycles 0..100 every 10)", len(s))
	}
	if s[3].At != 30 || s[3].Values[0] != 30 {
		t.Fatalf("sample[3] = %+v, want At=30 value=30", s[3])
	}
	if got := r.Names(); len(got) != 1 || got[0] != "g" {
		t.Fatalf("Names = %v", got)
	}
}

// TestRecorderSkipsToNextBoundary: a coarse clock that jumps over several
// intervals yields one sample per Tick, then resynchronizes.
func TestRecorderSkipsToNextBoundary(t *testing.T) {
	r := NewRecorder(10, 0)
	r.AddGauge("g", func() float64 { return 1 })
	r.Tick(0)
	r.Tick(47) // jumped over 10..40: one sample at 47, next at 50
	r.Tick(50)
	at := []uint64{}
	for _, s := range r.Samples() {
		at = append(at, s.At)
	}
	want := []uint64{0, 47, 50}
	for i := range want {
		if i >= len(at) || at[i] != want[i] {
			t.Fatalf("sample times %v, want %v", at, want)
		}
	}
}

// TestRecorderDecimation: hitting the sample budget halves the retained
// samples and doubles the interval, so memory stays bounded while the
// series keeps covering the whole run.
func TestRecorderDecimation(t *testing.T) {
	r := NewRecorder(1, 4)
	r.AddGauge("g", func() float64 { return 0 })
	for now := uint64(0); now <= 8; now++ {
		r.Tick(now)
		if len(r.Samples()) > 4 {
			t.Fatalf("budget exceeded at cycle %d: %d samples", now, len(r.Samples()))
		}
	}
	if r.Interval() != 4 {
		t.Fatalf("interval = %d, want 4 after two decimations", r.Interval())
	}
	at := []uint64{}
	for _, s := range r.Samples() {
		at = append(at, s.At)
	}
	want := []uint64{0, 4, 8}
	if len(at) != len(want) {
		t.Fatalf("sample times %v, want %v", at, want)
	}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("sample times %v, want %v", at, want)
		}
	}
}

// TestRecorderCSV checks the header and row layout.
func TestRecorderCSV(t *testing.T) {
	r := NewRecorder(5, 0)
	r.AddGauge("a", func() float64 { return 1.5 })
	r.AddGauge("b", func() float64 { return 2 })
	r.Tick(0)
	r.Tick(5)
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines: %q", len(lines), buf.String())
	}
	if lines[0] != "cycle,a,b" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "0,1.5,2" || lines[2] != "5,1.5,2" {
		t.Fatalf("rows = %q, %q", lines[1], lines[2])
	}
}

// TestRecorderJSON: the dump round-trips with names, interval and samples.
func TestRecorderJSON(t *testing.T) {
	r := NewRecorder(5, 0)
	r.AddGauge("a", func() float64 { return 3 })
	r.Tick(0)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Interval uint64   `json:"interval"`
		Names    []string `json:"names"`
		Samples  []struct {
			At     uint64    `json:"at"`
			Values []float64 `json:"values"`
		} `json:"samples"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("WriteJSON output does not parse: %v", err)
	}
	if doc.Interval != 5 || len(doc.Names) != 1 || doc.Names[0] != "a" {
		t.Fatalf("doc = %+v", doc)
	}
	if len(doc.Samples) != 1 || doc.Samples[0].Values[0] != 3 {
		t.Fatalf("samples = %+v", doc.Samples)
	}
}

// TestRecorderJSONEmpty: an empty recorder serializes empty arrays, not
// nulls, so downstream parsers need no special case.
func TestRecorderJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewRecorder(0, 0).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if strings.Contains(s, "null") {
		t.Fatalf("empty recorder serialized null: %q", s)
	}
}

// TestNilRecorderSafe: the disabled path must cost nothing and crash
// nothing.
func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.AddGauge("g", func() float64 { return 0 })
	r.Tick(100)
	if r.Names() != nil || r.Samples() != nil || r.Interval() != 0 {
		t.Fatal("nil recorder leaked state")
	}
}

// TestRecorderDefaults: zero arguments select the documented defaults.
func TestRecorderDefaults(t *testing.T) {
	r := NewRecorder(0, 0)
	if r.Interval() != 1000 {
		t.Fatalf("default interval = %d, want 1000", r.Interval())
	}
	if r.max != 4096 {
		t.Fatalf("default max = %d, want 4096", r.max)
	}
}
