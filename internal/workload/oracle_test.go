package workload

import (
	"testing"
	"testing/quick"

	"asap/internal/sim"
)

// oracleRun drives a benchmark's insert path with a known key sequence
// under NP (fast), then calls verify while the simulation is still live
// (Ctx accessors only work from inside a running simulated thread).
func oracleRun(t *testing.T, b Benchmark, cfg Config, insert func(c *Ctx, key, tag uint64), keys []uint64, verify func(ctx *Ctx, distinct map[uint64]bool) bool) bool {
	t.Helper()
	env := newEnv("NP", nil)
	distinct := map[uint64]bool{}
	ok := false
	env.M.K.Spawn("driver", func(th *sim.Thread) {
		env.S.InitThread(th)
		ctx := NewCtx(env, th, 1)
		b.Setup(ctx, cfg)
		for i, k := range keys {
			insert(ctx, k, uint64(i))
			distinct[k] = true
		}
		ok = verify(ctx, distinct)
	})
	env.M.K.Run()
	return ok
}

// setupOnlyCfg keeps the initial structure empty so the oracle owns every
// key.
func setupOnlyCfg() Config {
	return Config{ValueBytes: 64, InitialItems: 0, Threads: 1, OpsPerThread: 0, Seed: 3}
}

func boundKeys(raw []uint16) []uint64 {
	keys := make([]uint64, 0, len(raw)+1)
	for _, r := range raw {
		keys = append(keys, uint64(r%512))
	}
	if len(keys) == 0 {
		keys = []uint64{7}
	}
	return keys
}

func TestBinaryTreeMatchesOracle(t *testing.T) {
	f := func(raw []uint16) bool {
		b := NewBinaryTree()
		keys := boundKeys(raw)
		return oracleRun(t, b, setupOnlyCfg(), func(c *Ctx, k, tag uint64) { b.insert(c, k, tag) }, keys,
			func(ctx *Ctx, distinct map[uint64]bool) bool {
				if msg := b.Check(ctx); msg != "" {
					t.Log(msg)
					return false
				}
				return ctx.LoadU64(b.cntCell) == uint64(len(distinct))
			})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeMatchesOracle(t *testing.T) {
	f := func(raw []uint16) bool {
		b := NewBTree()
		keys := boundKeys(raw)
		return oracleRun(t, b, setupOnlyCfg(), func(c *Ctx, k, tag uint64) { b.insert(c, k, tag) }, keys,
			func(ctx *Ctx, distinct map[uint64]bool) bool {
				if msg := b.Check(ctx); msg != "" {
					t.Log(msg)
					return false
				}
				return ctx.LoadU64(b.cntCell) == uint64(len(distinct))
			})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCTreeMatchesOracleWithLookups(t *testing.T) {
	f := func(raw []uint16) bool {
		ct := NewCTree()
		keys := boundKeys(raw)
		return oracleRun(t, ct, setupOnlyCfg(), func(c *Ctx, k, tag uint64) { ct.insert(c, k, tag) }, keys,
			func(ctx *Ctx, distinct map[uint64]bool) bool {
				if msg := ct.Check(ctx); msg != "" {
					t.Log(msg)
					return false
				}
				if ctx.LoadU64(ct.cntCell) != uint64(len(distinct)) {
					return false
				}
				// Every inserted key must be findable; absent keys must not.
				for k := range distinct {
					if ct.lookup(ctx, k) == 0 {
						return false
					}
				}
				for probe := uint64(600); probe < 610; probe++ {
					if !distinct[probe] && ct.lookup(ctx, probe) != 0 {
						return false
					}
				}
				return true
			})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRBTreeMatchesOracle(t *testing.T) {
	f := func(raw []uint16) bool {
		r := NewRBTree()
		keys := boundKeys(raw)
		return oracleRun(t, r, setupOnlyCfg(), func(c *Ctx, k, tag uint64) { r.insert(c, k, tag) }, keys,
			func(ctx *Ctx, distinct map[uint64]bool) bool {
				if msg := r.Check(ctx); msg != "" {
					t.Log(msg)
					return false
				}
				return ctx.LoadU64(r.cntCell) == uint64(len(distinct))
			})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRBTreeSequentialAndReverseInserts(t *testing.T) {
	// Adversarial orders force the full rotation/recolor repertoire.
	for name, gen := range map[string]func(i int) uint64{
		"ascending":  func(i int) uint64 { return uint64(i) },
		"descending": func(i int) uint64 { return uint64(500 - i) },
		"zigzag":     func(i int) uint64 { return uint64((i*7919 + 13) % 501) },
	} {
		r := NewRBTree()
		keys := make([]uint64, 300)
		for i := range keys {
			keys[i] = gen(i)
		}
		ok := oracleRun(t, r, setupOnlyCfg(), func(c *Ctx, k, tag uint64) { r.insert(c, k, tag) }, keys,
			func(ctx *Ctx, distinct map[uint64]bool) bool {
				if msg := r.Check(ctx); msg != "" {
					t.Errorf("%s: %s", name, msg)
					return false
				}
				if got := ctx.LoadU64(r.cntCell); got != uint64(len(distinct)) {
					t.Errorf("%s: count %d != %d", name, got, len(distinct))
					return false
				}
				return true
			})
		if !ok {
			t.Fatalf("%s: oracle run failed", name)
		}
	}
}

func TestHashMapMatchesOracle(t *testing.T) {
	f := func(raw []uint16) bool {
		h := NewHashMap()
		cfg := setupOnlyCfg()
		cfg.InitialItems = 16 // keyspace must be nonzero for put's modulo
		keys := boundKeys(raw)
		return oracleRun(t, h, cfg, func(c *Ctx, k, tag uint64) { h.put(c, k%h.keyspace, tag) }, keys,
			func(ctx *Ctx, distinct map[uint64]bool) bool {
				if msg := h.Check(ctx); msg != "" {
					t.Log(msg)
					return false
				}
				return true
			})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEchoVersionsAreDense(t *testing.T) {
	e := NewEcho()
	cfg := setupOnlyCfg()
	cfg.InitialItems = 32 // nonzero keyspace; Setup's seed puts are counted
	keys := make([]uint64, 200)
	for i := range keys {
		keys[i] = uint64(i % 20) // heavy key reuse -> deep version chains
	}
	ok := oracleRun(t, e, cfg, func(c *Ctx, k, tag uint64) { e.put(c, k, tag) }, keys,
		func(ctx *Ctx, distinct map[uint64]bool) bool {
			if msg := e.Check(ctx); msg != "" {
				t.Error(msg)
				return false
			}
			// A reused key's version grows by one per put.
			if got := e.get(ctx, 0); got < 10 {
				t.Errorf("key 0 version = %d, want >= 10", got)
				return false
			}
			return true
		})
	if !ok {
		t.Fatal("echo oracle failed")
	}
}

func TestQueueFIFOOrder(t *testing.T) {
	q := NewQueue()
	env := newEnv("NP", nil)
	env.M.K.Spawn("driver", func(th *sim.Thread) {
		env.S.InitThread(th)
		ctx := NewCtx(env, th, 1)
		q.Setup(ctx, setupOnlyCfg())
		for i := uint64(0); i < 10; i++ {
			q.enqueue(ctx, 100+i)
		}
		// Dequeue half and verify FIFO by reading the head's value tag.
		for i := uint64(0); i < 5; i++ {
			head := ctx.LoadU64(q.headCell)
			tag := ctx.LoadU64(head + qNodeHdr)
			if tag != 100+i {
				t.Errorf("dequeue %d: head tag = %d, want %d", i, tag, 100+i)
			}
			q.dequeue(ctx)
		}
		if msg := q.Check(ctx); msg != "" {
			t.Error(msg)
		}
	})
	env.M.K.Run()
}
