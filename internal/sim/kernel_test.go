package sim

import (
	"reflect"
	"strings"
	"testing"
)

func TestSingleThreadAdvances(t *testing.T) {
	k := NewKernel()
	var end uint64
	k.Spawn("a", func(th *Thread) {
		th.Advance(10)
		th.Advance(5)
		end = th.Now()
	})
	k.Run()
	if end != 15 {
		t.Fatalf("thread clock = %d, want 15", end)
	}
	if k.Now() != 15 {
		t.Fatalf("kernel clock = %d, want 15", k.Now())
	}
}

func TestThreadsInterleaveByClock(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Spawn("slow", func(th *Thread) {
		for i := 0; i < 3; i++ {
			th.Advance(10)
			order = append(order, "slow")
		}
	})
	k.Spawn("fast", func(th *Thread) {
		for i := 0; i < 3; i++ {
			th.Advance(4)
			order = append(order, "fast")
		}
	})
	k.Run()
	want := []string{"fast", "fast", "slow", "fast", "slow", "slow"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	k := NewKernel()
	var fired []uint64
	k.Schedule(30, func() { fired = append(fired, 30) })
	k.Schedule(10, func() { fired = append(fired, 10) })
	k.Schedule(20, func() { fired = append(fired, 20) })
	k.Spawn("t", func(th *Thread) { th.Advance(100) })
	k.Run()
	want := []uint64{10, 20, 30}
	if !reflect.DeepEqual(fired, want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
}

func TestEventBeforeThreadAtSameInstant(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Schedule(10, func() { order = append(order, "event") })
	k.Spawn("t", func(th *Thread) {
		th.Advance(10)
		order = append(order, "thread")
	})
	k.Run()
	// An event at cycle 10 must be visible to a thread step beginning at 10.
	want := []string{"event", "thread"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestEventTieBreakIsInsertionOrder(t *testing.T) {
	k := NewKernel()
	var fired []int
	for i := 0; i < 5; i++ {
		i := i
		k.Schedule(7, func() { fired = append(fired, i) })
	}
	k.Spawn("t", func(th *Thread) { th.Advance(8) })
	k.Run()
	if !reflect.DeepEqual(fired, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("fired = %v, want insertion order", fired)
	}
}

func TestWaitUntilUnblocksOnEvent(t *testing.T) {
	k := NewKernel()
	ready := false
	var woke uint64
	k.Schedule(50, func() { ready = true })
	k.Spawn("waiter", func(th *Thread) {
		th.Advance(1)
		th.WaitUntil(func() bool { return ready })
		woke = th.Now()
	})
	k.Run()
	if woke != 50 {
		t.Fatalf("woke at %d, want 50", woke)
	}
}

func TestWaitUntilImmediateWhenTrue(t *testing.T) {
	k := NewKernel()
	var woke uint64
	k.Spawn("w", func(th *Thread) {
		th.Advance(3)
		th.WaitUntil(func() bool { return true })
		woke = th.Now()
	})
	k.Run()
	if woke != 3 {
		t.Fatalf("woke at %d, want 3 (no block)", woke)
	}
}

func TestSleepUntil(t *testing.T) {
	k := NewKernel()
	var woke uint64
	k.Spawn("s", func(th *Thread) {
		th.SleepUntil(123)
		woke = th.Now()
	})
	k.Run()
	if woke != 123 {
		t.Fatalf("woke at %d, want 123", woke)
	}
}

func TestDeadlockPanics(t *testing.T) {
	// MustRun is the compatibility shim preserving the historical
	// panic-on-deadlock contract; the panic value is the *StallError.
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("expected deadlock panic")
		}
		if _, ok := v.(*StallError); !ok {
			t.Fatalf("panic value = %T, want *StallError", v)
		}
	}()
	k := NewKernel()
	k.Spawn("stuck", func(th *Thread) {
		th.WaitUntil(func() bool { return false })
	})
	k.MustRun()
}

func TestDeadlockReturnsStallError(t *testing.T) {
	k := NewKernel()
	k.Spawn("stuck-a", func(th *Thread) {
		th.Advance(7)
		th.WaitUntil(func() bool { return false })
	})
	k.Spawn("stuck-b", func(th *Thread) {
		th.Advance(3)
		th.WaitUntil(func() bool { return false })
	})
	err := k.Run()
	se, ok := err.(*StallError)
	if !ok {
		t.Fatalf("Run() = %v (%T), want *StallError", err, err)
	}
	if se.Kind != StallDeadlock {
		t.Fatalf("Kind = %q, want %q", se.Kind, StallDeadlock)
	}
	if len(se.Blocked) != 2 {
		t.Fatalf("Blocked = %v, want 2 entries", se.Blocked)
	}
	// Blocked report is in spawn order with each thread's own clock.
	if se.Blocked[0].Name != "stuck-a" || se.Blocked[0].Clock != 7 {
		t.Fatalf("Blocked[0] = %+v, want stuck-a@7", se.Blocked[0])
	}
	if se.Blocked[1].Name != "stuck-b" || se.Blocked[1].Clock != 3 {
		t.Fatalf("Blocked[1] = %+v, want stuck-b@3", se.Blocked[1])
	}
}

func TestWatchdogDiagnosesLivelock(t *testing.T) {
	k := NewKernel()
	// A spinner that advances time forever without ever making progress,
	// plus a thread blocked on a predicate that never holds: without the
	// watchdog this runs unbounded (no deadlock — the spinner is runnable).
	k.Spawn("spinner", func(th *Thread) {
		for {
			th.Advance(10)
			if th.Now() > 1_000_000 {
				t.Error("watchdog never fired")
				return
			}
		}
	})
	k.Spawn("blocked", func(th *Thread) {
		th.WaitUntil(func() bool { return false })
	})
	k.SetWatchdog(&Watchdog{
		Window:   1000,
		Progress: func() uint64 { return 0 }, // never advances
		Backlog:  func() int { return 1 },    // work outstanding
		Gauges:   func() map[string]int { return map[string]int{"wpq0": 3} },
		Snapshot: func() string { return "dep-graph: r1 -> r2" },
	})
	err := k.Run()
	se, ok := err.(*StallError)
	if !ok {
		t.Fatalf("Run() = %v (%T), want *StallError", err, err)
	}
	if se.Kind != StallLivelock {
		t.Fatalf("Kind = %q, want %q", se.Kind, StallLivelock)
	}
	if se.At < 1000 || se.At > 2000 {
		t.Fatalf("diagnosed at cycle %d, want within ~one window of 1000", se.At)
	}
	if se.Window != 1000 {
		t.Fatalf("Window = %d, want 1000", se.Window)
	}
	if se.Gauges["wpq0"] != 3 {
		t.Fatalf("Gauges = %v, want wpq0=3", se.Gauges)
	}
	if se.Snapshot == "" || se.Blocked[0].Name != "blocked" {
		t.Fatalf("missing snapshot/blocked report: %+v", se)
	}
}

func TestWatchdogRearmsOnProgress(t *testing.T) {
	k := NewKernel()
	var progress uint64
	k.Spawn("worker", func(th *Thread) {
		for i := 0; i < 100; i++ {
			th.Advance(100)
			progress++ // one unit of progress per 100 cycles
		}
	})
	k.SetWatchdog(&Watchdog{
		Window:   1000,
		Progress: func() uint64 { return progress },
		Backlog:  func() int { return 1 },
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run() = %v, want nil (progress should rearm watchdog)", err)
	}
	if progress != 100 {
		t.Fatalf("worker completed %d steps, want 100", progress)
	}
}

func TestWatchdogIdleTailNotAStall(t *testing.T) {
	k := NewKernel()
	k.Spawn("slow", func(th *Thread) {
		th.SleepUntil(50_000) // long quiet stretch, zero progress
	})
	k.SetWatchdog(&Watchdog{
		Window:   1000,
		Progress: func() uint64 { return 0 },
		Backlog:  func() int { return 0 }, // nothing outstanding
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run() = %v, want nil (zero backlog is not a livelock)", err)
	}
}

func TestStallErrorMessage(t *testing.T) {
	e := &StallError{
		Kind:    StallDeadlock,
		At:      42,
		Blocked: []BlockedThread{{Name: "a", ID: 0, Clock: 40}},
		Gauges:  map[string]int{"wpq0": 2, "lhwpq0": 1},
	}
	msg := e.Error()
	for _, want := range []string{"deadlock", "cycle 42", "a@40", "lhwpq0=1", "wpq0=2"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("Error() = %q, missing %q", msg, want)
		}
	}
}

func TestScheduleAfter(t *testing.T) {
	k := NewKernel()
	var at uint64
	k.Spawn("t", func(th *Thread) {
		th.Advance(10)
		th.Kernel().ScheduleAfter(5, func() { at = th.Kernel().Now() })
		th.Advance(100)
	})
	k.Run()
	if at != 15 {
		t.Fatalf("event fired at %d, want 15", at)
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	k := NewKernel()
	var m Mutex
	inside := 0
	maxInside := 0
	for i := 0; i < 4; i++ {
		k.Spawn("worker", func(th *Thread) {
			for j := 0; j < 10; j++ {
				m.Lock(th)
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				th.Advance(7)
				inside--
				m.Unlock(th)
				th.Advance(3)
			}
		})
	}
	k.Run()
	if maxInside != 1 {
		t.Fatalf("max threads inside critical section = %d, want 1", maxInside)
	}
}

func TestMutexContentionCostsTime(t *testing.T) {
	k := NewKernel()
	var m Mutex
	var second uint64
	k.Spawn("first", func(th *Thread) {
		m.Lock(th)
		th.Advance(100)
		m.Unlock(th)
	})
	k.Spawn("second", func(th *Thread) {
		th.Advance(1) // ensure first grabs the lock
		m.Lock(th)
		second = th.Now()
		m.Unlock(th)
	})
	k.Run()
	if second < 104 {
		t.Fatalf("contended acquire completed at %d, want >= 104", second)
	}
}

func TestMutexUnlockByNonHolderPanics(t *testing.T) {
	k := NewKernel()
	var m Mutex
	k.Spawn("a", func(th *Thread) { m.Lock(th) })
	k.Spawn("b", func(th *Thread) {
		th.Advance(10)
		defer func() {
			if recover() == nil {
				t.Error("expected panic on foreign unlock")
			}
		}()
		m.Unlock(th)
	})
	k.Run()
}

func TestTryLock(t *testing.T) {
	k := NewKernel()
	var m Mutex
	k.Spawn("a", func(th *Thread) {
		if !m.TryLock(th) {
			t.Error("first TryLock should succeed")
		}
		if m.TryLock(th) {
			t.Error("second TryLock should fail while held")
		}
	})
	k.Run()
}

func TestDeterminism(t *testing.T) {
	run := func() []string {
		k := NewKernel()
		var trace []string
		var m Mutex
		for i, d := range []uint64{3, 5, 7} {
			name := string(rune('a' + i))
			d := d
			k.Spawn(name, func(th *Thread) {
				for j := 0; j < 5; j++ {
					m.Lock(th)
					th.Advance(d)
					trace = append(trace, name)
					m.Unlock(th)
				}
			})
		}
		return append(trace[:0:0], trace...)
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical runs diverged:\n%v\n%v", a, b)
	}
}

func TestSpawnFromRunningThread(t *testing.T) {
	k := NewKernel()
	var childEnd uint64
	k.Spawn("parent", func(th *Thread) {
		th.Advance(10)
		k.Spawn("child", func(c *Thread) {
			c.Advance(5)
			childEnd = c.Now()
		})
		th.Advance(1)
	})
	k.Run()
	if childEnd != 15 {
		t.Fatalf("child finished at %d, want 15 (spawned at 10, ran 5)", childEnd)
	}
}

func TestKernelClockMonotone(t *testing.T) {
	k := NewKernel()
	var samples []uint64
	k.Schedule(5, func() { samples = append(samples, k.Now()) })
	k.Spawn("a", func(th *Thread) {
		th.Advance(3)
		samples = append(samples, k.Now())
		th.Advance(10)
		samples = append(samples, k.Now())
	})
	k.Run()
	for i := 1; i < len(samples); i++ {
		if samples[i] < samples[i-1] {
			t.Fatalf("kernel clock went backwards: %v", samples)
		}
	}
}

func TestHaltStopsRun(t *testing.T) {
	k := NewKernel()
	steps := 0
	k.Schedule(50, func() { k.Halt() })
	k.Spawn("w", func(th *Thread) {
		for i := 0; i < 1000; i++ {
			th.Advance(10)
			steps++
		}
	})
	k.Run()
	if !k.Halted() {
		t.Fatal("kernel not halted")
	}
	if steps >= 1000 {
		t.Fatal("thread ran to completion despite halt")
	}
	if k.Now() > 100 {
		t.Fatalf("kernel advanced to %d after halt at 50", k.Now())
	}
}

func TestHaltFromThread(t *testing.T) {
	k := NewKernel()
	var after bool
	k.Spawn("a", func(th *Thread) {
		th.Advance(10)
		k.Halt()
		th.Advance(10) // still runs to its next yield...
	})
	k.Spawn("b", func(th *Thread) {
		th.Advance(1000)
		after = true // ...but no one else is scheduled afterwards
	})
	k.Run()
	if after {
		t.Fatal("another thread ran after Halt")
	}
}
