package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Sample is one row of the time series: every gauge read at cycle At.
type Sample struct {
	At     uint64    `json:"at"`
	Values []float64 `json:"values"`
}

// Recorder samples a set of gauges — closures reading live hardware state
// — at a fixed cycle interval, driven by the kernel's Tick callback so no
// events are injected into the simulation. Memory is bounded: when the
// sample budget fills, every other retained sample is dropped and the
// interval doubles, so a run of any length keeps full-time-span coverage
// at progressively coarser resolution.
type Recorder struct {
	interval uint64
	next     uint64
	max      int

	names  []string
	gauges []func() float64

	samples []Sample
}

// NewRecorder returns a recorder sampling every interval cycles (<=0
// selects 1000), keeping at most maxSamples rows (<=0 selects 4096).
func NewRecorder(interval uint64, maxSamples int) *Recorder {
	if interval == 0 {
		interval = 1000
	}
	if maxSamples <= 0 {
		maxSamples = 4096
	}
	if maxSamples < 2 {
		maxSamples = 2
	}
	return &Recorder{interval: interval, max: maxSamples}
}

// AddGauge registers a named gauge. Gauges are read in registration order
// at every sample point; fn runs in kernel context and must not mutate
// simulation state.
func (r *Recorder) AddGauge(name string, fn func() float64) {
	if r == nil {
		return
	}
	r.names = append(r.names, name)
	r.gauges = append(r.gauges, fn)
}

// Tick implements the sampling half of sim.Observer: when the kernel
// clock has reached the next sample point, read every gauge.
func (r *Recorder) Tick(now uint64) {
	if r == nil || now < r.next {
		return
	}
	vals := make([]float64, len(r.gauges))
	for i, g := range r.gauges {
		vals[i] = g()
	}
	r.samples = append(r.samples, Sample{At: now, Values: vals})
	if len(r.samples) >= r.max {
		r.decimate()
	}
	r.next = (now/r.interval + 1) * r.interval
}

// decimate halves the retained samples and doubles the interval.
func (r *Recorder) decimate() {
	kept := r.samples[:0]
	for i := 0; i < len(r.samples); i += 2 {
		kept = append(kept, r.samples[i])
	}
	r.samples = kept
	r.interval *= 2
}

// Interval returns the current sampling interval in cycles (it grows when
// the sample budget fills).
func (r *Recorder) Interval() uint64 {
	if r == nil {
		return 0
	}
	return r.interval
}

// Names returns the gauge names in column order.
func (r *Recorder) Names() []string {
	if r == nil {
		return nil
	}
	return r.names
}

// Samples returns the retained samples, oldest first.
func (r *Recorder) Samples() []Sample {
	if r == nil {
		return nil
	}
	return r.samples
}

// WriteCSV writes the series as CSV: a "cycle,<gauge>,..." header then one
// row per sample.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "cycle,%s\n", strings.Join(r.Names(), ",")); err != nil {
		return err
	}
	for _, s := range r.Samples() {
		cols := make([]string, 0, len(s.Values)+1)
		cols = append(cols, fmt.Sprintf("%d", s.At))
		for _, v := range s.Values {
			cols = append(cols, fmt.Sprintf("%g", v))
		}
		if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
			return err
		}
	}
	return nil
}

// seriesJSON is the JSON dump layout.
type seriesJSON struct {
	Interval uint64   `json:"interval"`
	Names    []string `json:"names"`
	Samples  []Sample `json:"samples"`
}

// WriteJSON writes the series as one JSON object with the gauge names,
// final interval, and all samples.
func (r *Recorder) WriteJSON(w io.Writer) error {
	doc := seriesJSON{Interval: r.Interval(), Names: r.Names(), Samples: r.Samples()}
	if doc.Names == nil {
		doc.Names = []string{}
	}
	if doc.Samples == nil {
		doc.Samples = []Sample{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
