package workload

import "testing"

// Determinism stress: every scheme, multithreaded Q runs twice must agree
// bit-for-bit on cycles and traffic.
func TestDeterminismEverywhere(t *testing.T) {
	for _, scheme := range []string{"NP", "SW", "HWUndo", "HWRedo", "ASAP"} {
		run := func() (uint64, int64) {
			env := newEnv(scheme, nil)
			res := Run(env, NewQueue(), smallCfg())
			return res.Cycles, res.Stats["pm.writes"]
		}
		c1, w1 := run()
		c2, w2 := run()
		if c1 != c2 || w1 != w2 {
			t.Fatalf("%s diverged: cycles %d/%d writes %d/%d", scheme, c1, c2, w1, w2)
		}
	}
}
