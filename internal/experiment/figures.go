package experiment

import (
	"fmt"

	"asap/internal/core"
	"asap/internal/stats"
)

// Every figure in this file fans its (variant × benchmark) matrix across
// the package pool with runAll and assembles rows from the ordered
// results, so the tables are byte-identical at any pool width.

// Fig1 reproduces Figure 1: throughput of the software approach with
// DPO-only and LPO&DPO persist operations, normalized to NP, on the eight
// non-TPCC benchmarks.
func Fig1(scale Scale) *Table {
	t := &Table{
		Title:   "Figure 1: overhead of LPOs and DPOs in a software approach",
		Note:    "normalized throughput, higher is better; paper geomeans: DPO-only 0.58x, LPO&DPO 0.31x",
		Columns: []string{"NP", "DPO Only", "LPO & DPO"},
	}
	schemesOrder := []string{"NP", "SW-DPOOnly", "SW"}
	var benches []string
	var specs []runSpec
	for _, b := range scale.Benchmarks {
		if b == "TPCC" {
			continue // Figure 1 runs the eight original benchmarks
		}
		benches = append(benches, b)
		for _, s := range schemesOrder {
			specs = append(specs, runSpec{v: Variant{Scheme: s}, bench: b, scale: scale, valueBytes: 64})
		}
	}
	res := runAll("fig1", specs)
	for i, b := range benches {
		np, dpo, sw := res[3*i], res[3*i+1], res[3*i+2]
		base := np.Throughput()
		t.AddRow(b, 1.0, dpo.Throughput()/base, sw.Throughput()/base)
	}
	t.AddGeoMean()
	return t
}

// fig7Schemes is the comparison order of Figures 7, 8.
var fig7Schemes = []string{"SW", "HWRedo", "HWUndo", "ASAP", "NP"}

// Fig7 reproduces Figure 7: speedup over SW for both 64 B and 2 KB data
// sizes per atomic region.
func Fig7(scale Scale, valueBytes int) *Table {
	t := &Table{
		Title:   "Figure 7: performance comparison (speedup over SW, higher is better)",
		Note:    "paper geomeans at both sizes: HWRedo 1.49x, HWUndo 1.60x, ASAP 2.25x, NP 2.34x",
		Columns: fig7Schemes,
	}
	var specs []runSpec
	for _, b := range scale.Benchmarks {
		for _, s := range fig7Schemes {
			specs = append(specs, runSpec{v: Variant{Scheme: s}, bench: b, scale: scale, valueBytes: valueBytes})
		}
	}
	res := runAll(fmt.Sprintf("fig7-%dB", valueBytes), specs)
	ns := len(fig7Schemes)
	for i, b := range scale.Benchmarks {
		swCycles := float64(res[i*ns].Cycles) // fig7Schemes[0] == "SW"
		var vals []float64
		for j := range fig7Schemes {
			vals = append(vals, swCycles/float64(res[i*ns+j].Cycles))
		}
		t.AddRow(b, vals...)
	}
	t.AddGeoMean()
	return t
}

// Fig8 reproduces Figure 8: average cycles per atomic region normalized
// to NP (lower is better).
func Fig8(scale Scale, valueBytes int) *Table {
	t := &Table{
		Title:   "Figure 8: normalized average cycles per atomic region (lower is better)",
		Note:    "paper geomeans: HWRedo 1.69x, HWUndo 1.61x, ASAP 1.08x",
		Columns: fig7Schemes,
	}
	var specs []runSpec
	for _, b := range scale.Benchmarks {
		for _, s := range fig7Schemes {
			specs = append(specs, runSpec{v: Variant{Scheme: s}, bench: b, scale: scale, valueBytes: valueBytes})
		}
	}
	res := runAll("fig8", specs)
	ns := len(fig7Schemes)
	for i, b := range scale.Benchmarks {
		np := res[i*ns+ns-1].CyclesPerRegion() // fig7Schemes[len-1] == "NP"
		var vals []float64
		for j, s := range fig7Schemes {
			if s == "NP" {
				vals = append(vals, 1)
				continue
			}
			vals = append(vals, res[i*ns+j].CyclesPerRegion()/np)
		}
		t.AddRow(b, vals...)
	}
	t.AddGeoMean()
	return t
}

// fig9aVariants builds the incremental optimization ladder of Figure 9a.
func fig9aVariants() []struct {
	Name string
	Opts core.Options
} {
	noOpt := core.DefaultOptions()
	noOpt.Coalescing, noOpt.LPODropping, noOpt.DPODropping = false, false, false
	c := noOpt
	c.Coalescing = true
	clp := c
	clp.LPODropping = true
	full := core.DefaultOptions()
	return []struct {
		Name string
		Opts core.Options
	}{
		{"ASAP-No-Opt", noOpt},
		{"ASAP+C", c},
		{"ASAP+C+LP", clp},
		{"ASAP", full},
	}
}

// Fig9a reproduces Figure 9a: the incremental PM write-traffic effect of
// DPO coalescing, LPO dropping and DPO dropping, normalized to full ASAP.
func Fig9a(scale Scale) *Table {
	variants := fig9aVariants()
	t := &Table{
		Title:   "Figure 9a: incremental improvement of ASAP's traffic optimizations (lower is better)",
		Note:    "PM write traffic normalized to ASAP; paper: +C saves ~8%, +LP ~33%, +DP ~31%",
		Columns: []string{variants[0].Name, variants[1].Name, variants[2].Name, variants[3].Name},
	}
	var specs []runSpec
	for _, b := range scale.Benchmarks {
		for _, v := range variants {
			opts := v.Opts
			specs = append(specs, runSpec{
				v: Variant{Scheme: "ASAP", ASAPOpts: &opts}, bench: b, scale: scale,
				valueBytes: 64, label: b + "/" + v.Name,
			})
		}
	}
	res := runAll("fig9a", specs)
	nv := len(variants)
	for i, b := range scale.Benchmarks {
		var raw []float64
		for j := range variants {
			raw = append(raw, float64(res[i*nv+j].Stats[stats.PMWrites]))
		}
		base := raw[len(raw)-1]
		var vals []float64
		for _, x := range raw {
			vals = append(vals, x/base)
		}
		t.AddRow(b, vals...)
	}
	t.AddGeoMean()
	return t
}

// Fig9b reproduces Figure 9b: PM write traffic of SW, HWRedo, HWUndo and
// ASAP, normalized to ASAP.
func Fig9b(scale Scale) *Table {
	order := []string{"SW", "HWRedo", "HWUndo", "ASAP"}
	t := &Table{
		Title:   "Figure 9b: persistent memory write traffic (normalized to ASAP, lower is better)",
		Note:    "paper: ASAP = 0.62x HWRedo, 0.52x HWUndo, 0.39x SW; Q benefits most vs HWUndo",
		Columns: order,
	}
	var specs []runSpec
	for _, b := range scale.Benchmarks {
		for _, s := range order {
			specs = append(specs, runSpec{v: Variant{Scheme: s}, bench: b, scale: scale, valueBytes: 64})
		}
	}
	res := runAll("fig9b", specs)
	ns := len(order)
	for i, b := range scale.Benchmarks {
		var raw []float64
		for j := range order {
			raw = append(raw, float64(res[i*ns+j].Stats[stats.PMWrites]))
		}
		base := raw[len(raw)-1]
		var vals []float64
		for _, x := range raw {
			vals = append(vals, x/base)
		}
		t.AddRow(b, vals...)
	}
	t.AddGeoMean()
	return t
}

// Fig10 reproduces Figure 10: throughput normalized to NP at each PM
// latency multiplier, per scheme. One table per scheme keeps the paper's
// series readable; the returned tables are NP-relative.
func Fig10(scale Scale) []*Table {
	// The sensitivity mechanism is WPQ saturation, which needs the offered
	// load of a well-populated machine (the paper ran 18 cores): raise the
	// worker count if the scale is small.
	if scale.Threads < 8 {
		scale.Threads = 8
	}
	mults := []int{1, 2, 4, 16}
	schemesOrder := []string{"NP", "ASAP", "HWUndo", "HWRedo"}
	ns := len(schemesOrder)
	var specs []runSpec
	for _, b := range scale.Benchmarks {
		for _, m := range mults {
			for _, s := range schemesOrder {
				specs = append(specs, runSpec{
					v: Variant{Scheme: s, PMMult: m}, bench: b, scale: scale,
					valueBytes: 64, label: fmt.Sprintf("%s/%s@%dx", b, s, m),
				})
			}
		}
	}
	res := runAll("fig10", specs)
	var tables []*Table
	for i, b := range scale.Benchmarks {
		t := &Table{
			Title:   "Figure 10 [" + b + "]: throughput vs PM latency (normalized to NP at same latency)",
			Note:    "paper: ASAP stays near NP across 1x-16x; HWUndo degrades fastest",
			Columns: []string{"1x", "2x", "4x", "16x"},
		}
		perScheme := map[string][]float64{}
		for mi := range mults {
			base := i*len(mults)*ns + mi*ns
			np := res[base].Throughput() // schemesOrder[0] == "NP"
			for j, s := range schemesOrder {
				var v float64
				if s == "NP" {
					v = 1
				} else {
					v = res[base+j].Throughput() / np
				}
				perScheme[s] = append(perScheme[s], v)
			}
		}
		for _, s := range schemesOrder {
			t.AddRow(s, perScheme[s]...)
		}
		tables = append(tables, t)
	}
	return tables
}

// Sec74 reproduces the §7.4 sensitivity: ASAP with a 16-entry LH-WPQ
// against ASAP/HWUndo/HWRedo at the default 128 entries.
func Sec74(scale Scale) *Table {
	t := &Table{
		Title:   "Section 7.4: sensitivity to LH-WPQ size (speedup over SW)",
		Note:    "paper: ASAP@16 runs 0.78x of ASAP@128, still 1.18x/1.10x over HWRedo/HWUndo@128",
		Columns: []string{"ASAP@128", "ASAP@16", "HWRedo@128", "HWUndo@128"},
	}
	variants := []struct {
		label string
		v     Variant
	}{
		{"SW", Variant{Scheme: "SW"}},
		{"ASAP@128", Variant{Scheme: "ASAP"}},
		{"ASAP@16", Variant{Scheme: "ASAP", LHWPQ: 16}},
		{"HWRedo@128", Variant{Scheme: "HWRedo"}},
		{"HWUndo@128", Variant{Scheme: "HWUndo"}},
	}
	var specs []runSpec
	for _, b := range scale.Benchmarks {
		for _, v := range variants {
			specs = append(specs, runSpec{
				v: v.v, bench: b, scale: scale, valueBytes: 64, label: b + "/" + v.label,
			})
		}
	}
	res := runAll("sec74", specs)
	nv := len(variants)
	for i, b := range scale.Benchmarks {
		sw := float64(res[i*nv].Cycles)
		var vals []float64
		for j := 1; j < nv; j++ {
			vals = append(vals, sw/float64(res[i*nv+j].Cycles))
		}
		t.AddRow(b, vals...)
	}
	t.AddGeoMean()
	return t
}
