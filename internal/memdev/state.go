package memdev

import (
	"sort"

	"asap/internal/arch"
	"asap/internal/snapshot"
)

// appendEntry digests one persist operation in flight or queued.
func appendEntry(e *snapshot.Enc, en *Entry) {
	e.U64(uint64(en.Kind))
	e.U64(uint64(en.RID))
	e.U64(uint64(en.Dst))
	e.U64(uint64(en.Subject))
	e.Bytes(en.Payload)
	e.Bool(en.dropped)
	e.Bool(en.draining)
	e.U64(en.acceptedAt)
}

// appendHeader digests one LH-WPQ log record.
func appendHeader(e *snapshot.Enc, h *LogHeader, closing bool) {
	e.U64(uint64(h.RID))
	e.U64(uint64(h.HeaderAddr))
	e.Bool(closing)
	e.I64(int64(len(h.DataLines)))
	for i := range h.DataLines {
		e.U64(uint64(h.DataLines[i]))
		e.U64(uint64(h.LogLines[i]))
		e.U64(uint64(h.EntryCRCs[i]))
	}
	e.U64(uint64(h.PayloadCRC))
}

// AppendState digests the memory system: per-channel WPQ contents
// (queued, in-flight, arrival backlog), the LH-WPQ resident set (in its
// deterministic sorted order), and the persisted PM image sorted by line
// address — the image's map iteration order must never reach a digest.
func (f *Fabric) AppendState(e *snapshot.Enc) {
	e.Section("mem.wpq")
	e.I64(int64(len(f.channels)))
	for _, c := range f.channels {
		e.I64(int64(c.id))
		e.I64(int64(len(c.queue)))
		for _, en := range c.queue {
			appendEntry(e, en)
		}
		e.Bool(c.inflight != nil)
		if c.inflight != nil {
			appendEntry(e, c.inflight)
		}
		e.Bool(c.pickupPending)
		e.I64(int64(len(c.arrivals)))
		for _, a := range c.arrivals {
			appendEntry(e, a.e)
		}
		e.I64(int64(c.lh.Len()))
		e.I64(int64(c.lh.peak))
		c.lh.VisitResident(func(h *LogHeader, closing bool) {
			appendHeader(e, h, closing)
		})
	}

	e.Section("mem.pm")
	f.pm.AppendState(e)
}

// AppendState digests the persisted image in ascending line order.
func (im *Image) AppendState(e *snapshot.Enc) {
	lines := make([]arch.LineAddr, 0, len(im.lines))
	for l := range im.lines {
		lines = append(lines, l)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	e.I64(int64(len(lines)))
	for _, l := range lines {
		e.U64(uint64(l))
		e.Bytes(im.lines[l])
	}
}
