package workload

import (
	"testing"
	"testing/quick"

	"asap/internal/sim"
)

// mixedOracle runs an interleaved insert/delete sequence against a Go map
// oracle and verifies via the benchmark's own Check plus the live count.
type mixedOps struct {
	insert func(c *Ctx, key, tag uint64)
	del    func(c *Ctx, key uint64) bool
	check  func(c *Ctx) string
	count  func(c *Ctx) uint64
	// preload seeds the oracle with keys Setup already inserted.
	preload func(c *Ctx, oracle map[uint64]bool)
}

func runMixedOracle(t *testing.T, b Benchmark, cfg Config, ops mixedOps, keys []uint64, delMask []bool) bool {
	t.Helper()
	env := newEnv("NP", nil)
	oracle := map[uint64]bool{}
	ok := false
	env.M.K.Spawn("driver", func(th *sim.Thread) {
		env.S.InitThread(th)
		ctx := NewCtx(env, th, 1)
		b.Setup(ctx, cfg)
		if ops.preload != nil {
			ops.preload(ctx, oracle)
		}
		for i, k := range keys {
			if delMask[i%len(delMask)] {
				got := ops.del(ctx, k)
				want := oracle[k]
				if got != want {
					t.Errorf("delete(%d) = %v, oracle says %v", k, got, want)
					return
				}
				delete(oracle, k)
			} else {
				ops.insert(ctx, k, uint64(i))
				oracle[k] = true
			}
			if i%16 == 15 { // keep checks frequent but affordable
				if msg := ops.check(ctx); msg != "" {
					t.Error(msg)
					return
				}
			}
		}
		if msg := ops.check(ctx); msg != "" {
			t.Error(msg)
			return
		}
		ok = ops.count(ctx) == uint64(len(oracle))
		if !ok {
			t.Errorf("count %d != oracle %d", ops.count(ctx), len(oracle))
		}
	})
	env.M.K.Run()
	return ok
}

func TestRBTreeDeleteMatchesOracle(t *testing.T) {
	f := func(raw []uint16, mask []bool) bool {
		if len(mask) == 0 {
			mask = []bool{false, true}
		}
		r := NewRBTree()
		keys := boundKeys(raw)
		return runMixedOracle(t, r, setupOnlyCfg(), mixedOps{
			insert: func(c *Ctx, k, tag uint64) { r.insert(c, k, tag) },
			del:    func(c *Ctx, k uint64) bool { return r.delete(c, k) },
			check:  r.Check,
			count:  func(c *Ctx) uint64 { return c.LoadU64(r.cntCell) },
		}, keys, mask)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRBTreeDeleteDrainsCompletely(t *testing.T) {
	// Insert 200 keys then delete all of them; the tree must be empty and
	// valid after every step (exercises every fixup case).
	r := NewRBTree()
	env := newEnv("NP", nil)
	env.M.K.Spawn("driver", func(th *sim.Thread) {
		env.S.InitThread(th)
		ctx := NewCtx(env, th, 1)
		r.Setup(ctx, setupOnlyCfg())
		for i := 0; i < 200; i++ {
			r.insert(ctx, uint64(i*7%211), uint64(i))
		}
		for i := 0; i < 211; i++ {
			r.delete(ctx, uint64(i))
			if msg := r.Check(ctx); msg != "" {
				t.Errorf("after deleting %d: %s", i, msg)
				return
			}
		}
		if got := ctx.LoadU64(r.cntCell); got != 0 {
			t.Errorf("tree not empty: %d nodes", got)
		}
	})
	env.M.K.Run()
}

func TestBinaryTreeDeleteMatchesOracle(t *testing.T) {
	f := func(raw []uint16, mask []bool) bool {
		if len(mask) == 0 {
			mask = []bool{false, false, true}
		}
		b := NewBinaryTree()
		keys := boundKeys(raw)
		return runMixedOracle(t, b, setupOnlyCfg(), mixedOps{
			insert: func(c *Ctx, k, tag uint64) { b.insert(c, k, tag) },
			del:    func(c *Ctx, k uint64) bool { return b.delete(c, k) },
			check:  b.Check,
			count:  func(c *Ctx) uint64 { return c.LoadU64(b.cntCell) },
		}, keys, mask)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestHashMapDeleteMatchesOracle(t *testing.T) {
	f := func(raw []uint16, mask []bool) bool {
		if len(mask) == 0 {
			mask = []bool{true, false}
		}
		h := NewHashMap()
		cfg := setupOnlyCfg()
		cfg.InitialItems = 16
		keys := boundKeys(raw)
		for i := range keys {
			keys[i] %= h.keyspaceOrDefault()
		}
		return runMixedOracle(t, h, cfg, mixedOps{
			insert: func(c *Ctx, k, tag uint64) { h.put(c, k, tag) },
			del:    func(c *Ctx, k uint64) bool { return h.delete(c, k) },
			check:  h.Check,
			count: func(c *Ctx) uint64 {
				var n uint64
				for s := 0; s < len(h.stripes); s++ {
					n += c.LoadU64(h.cntCells + 64*uint64(s))
				}
				return n
			},
			// Setup pre-populated the table: teach the oracle its keys.
			preload: func(c *Ctx, oracle map[uint64]bool) {
				for bkt := uint64(0); bkt < h.nbuckets; bkt++ {
					for cur := c.LoadU64(h.buckets + 8*bkt); cur != 0; cur = c.LoadU64(cur + 8) {
						oracle[c.LoadU64(cur)] = true
					}
				}
			},
		}, keys, mask)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// keyspaceOrDefault guards the test against Setup not having run yet.
func (h *HashMap) keyspaceOrDefault() uint64 {
	if h.keyspace == 0 {
		return 32
	}
	return h.keyspace
}

func TestDeleteEveryEndToEnd(t *testing.T) {
	// The DeleteEvery knob composes with the full multi-threaded driver
	// under ASAP, and the structures stay consistent.
	for _, name := range []string{"BN", "BT", "CT", "HM", "RB"} {
		env := newEnv("ASAP", nil)
		cfg := smallCfg()
		cfg.DeleteEvery = 3
		res := Run(env, ByName(name), cfg)
		if res.CheckErr != "" {
			t.Fatalf("%s with deletions: %s", name, res.CheckErr)
		}
	}
}

func TestBTreeDeleteMatchesOracle(t *testing.T) {
	f := func(raw []uint16, mask []bool) bool {
		if len(mask) == 0 {
			mask = []bool{false, true}
		}
		b := NewBTree()
		keys := boundKeys(raw)
		return runMixedOracle(t, b, setupOnlyCfg(), mixedOps{
			insert: func(c *Ctx, k, tag uint64) { b.insert(c, k, tag) },
			del:    func(c *Ctx, k uint64) bool { return b.delete(c, k) },
			check:  b.Check,
			count:  func(c *Ctx) uint64 { return c.LoadU64(b.cntCell) },
		}, keys, mask)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeDeleteDrainsCompletely(t *testing.T) {
	// Insert then delete every key: exercises both borrow directions,
	// merges and root shrinking.
	b := NewBTree()
	env := newEnv("NP", nil)
	env.M.K.Spawn("driver", func(th *sim.Thread) {
		env.S.InitThread(th)
		ctx := NewCtx(env, th, 1)
		b.Setup(ctx, setupOnlyCfg())
		for i := 0; i < 300; i++ {
			b.insert(ctx, uint64(i*13%307), uint64(i))
		}
		for i := 0; i < 307; i++ {
			b.delete(ctx, uint64(i))
			if msg := b.Check(ctx); msg != "" {
				t.Errorf("after deleting %d: %s", i, msg)
				return
			}
		}
		if got := ctx.LoadU64(b.cntCell); got != 0 {
			t.Errorf("tree not empty: %d keys", got)
		}
	})
	env.M.K.Run()
}

func TestBTreeLookup(t *testing.T) {
	b := NewBTree()
	env := newEnv("NP", nil)
	env.M.K.Spawn("driver", func(th *sim.Thread) {
		env.S.InitThread(th)
		ctx := NewCtx(env, th, 1)
		b.Setup(ctx, setupOnlyCfg())
		for i := uint64(0); i < 50; i++ {
			b.insert(ctx, i*3, i)
		}
		for i := uint64(0); i < 50; i++ {
			if b.lookup(ctx, i*3) == 0 {
				t.Errorf("key %d missing", i*3)
			}
			if b.lookup(ctx, i*3+1) != 0 {
				t.Errorf("absent key %d found", i*3+1)
			}
		}
	})
	env.M.K.Run()
}

func TestCTreeDeleteMatchesOracle(t *testing.T) {
	f := func(raw []uint16, mask []bool) bool {
		if len(mask) == 0 {
			mask = []bool{false, true}
		}
		ct := NewCTree()
		keys := boundKeys(raw)
		return runMixedOracle(t, ct, setupOnlyCfg(), mixedOps{
			insert: func(c *Ctx, k, tag uint64) { ct.insert(c, k, tag) },
			del:    func(c *Ctx, k uint64) bool { return ct.delete(c, k) },
			check:  ct.Check,
			count:  func(c *Ctx) uint64 { return c.LoadU64(ct.cntCell) },
		}, keys, mask)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCTreeDeleteDrainsCompletely(t *testing.T) {
	ct := NewCTree()
	env := newEnv("NP", nil)
	env.M.K.Spawn("driver", func(th *sim.Thread) {
		env.S.InitThread(th)
		ctx := NewCtx(env, th, 1)
		ct.Setup(ctx, setupOnlyCfg())
		for i := 0; i < 200; i++ {
			ct.insert(ctx, uint64(i*11%223), uint64(i))
		}
		for i := 0; i < 223; i++ {
			ct.delete(ctx, uint64(i))
			if msg := ct.Check(ctx); msg != "" {
				t.Errorf("after deleting %d: %s", i, msg)
				return
			}
		}
		if got := ctx.LoadU64(ct.cntCell); got != 0 {
			t.Errorf("trie not empty: %d leaves", got)
		}
		// And lookups on the empty trie behave.
		if ct.lookup(ctx, 5) != 0 {
			t.Error("lookup on empty trie found something")
		}
	})
	env.M.K.Run()
}
