package sim

// Equivalence property test: replay identical randomized workloads on the
// optimized kernel and the pre-optimization reference kernel
// (refkernel_test.go) and require bit-for-bit identical step traces —
// same (thread, op, thread clock, kernel clock) at every step and the
// same event firing order. Programs are fully generated up front from a
// seed, so both replays execute the same program and any trace divergence
// is a scheduling difference, not workload noise.

import (
	"fmt"
	"math/rand"
	"testing"
)

// simAPI abstracts the two kernels behind one surface so a single
// workload program can drive both.
type simAPI interface {
	spawn(name string, fn func(threadAPI))
	schedule(at uint64, fn func())
	now() uint64
	halt()
	run()
}

type threadAPI interface {
	advance(uint64)
	yieldStep()
	waitUntil(func() bool)
	sleepUntil(uint64)
	now() uint64
}

// Optimized-kernel adapter.

type newSim struct{ k *Kernel }

type newThread struct{ t *Thread }

func (s newSim) spawn(name string, fn func(threadAPI)) {
	s.k.Spawn(name, func(t *Thread) { fn(newThread{t}) })
}
func (s newSim) schedule(at uint64, fn func()) { s.k.Schedule(at, fn) }
func (s newSim) now() uint64                   { return s.k.Now() }
func (s newSim) halt()                         { s.k.Halt() }
func (s newSim) run()                          { s.k.Run() }

func (t newThread) advance(c uint64)        { t.t.Advance(c) }
func (t newThread) yieldStep()              { t.t.Yield() }
func (t newThread) waitUntil(p func() bool) { t.t.WaitUntil(p) }
func (t newThread) sleepUntil(at uint64)    { t.t.SleepUntil(at) }
func (t newThread) now() uint64             { return t.t.Now() }

// Reference-kernel adapter.

type refSim struct{ k *refKernel }

type refAPIThread struct{ t *refThread }

func (s refSim) spawn(name string, fn func(threadAPI)) {
	s.k.Spawn(name, func(t *refThread) { fn(refAPIThread{t}) })
}
func (s refSim) schedule(at uint64, fn func()) { s.k.Schedule(at, fn) }
func (s refSim) now() uint64                   { return s.k.Now() }
func (s refSim) halt()                         { s.k.Halt() }
func (s refSim) run()                          { s.k.Run() }

func (t refAPIThread) advance(c uint64)        { t.t.Advance(c) }
func (t refAPIThread) yieldStep()              { t.t.Yield() }
func (t refAPIThread) waitUntil(p func() bool) { t.t.WaitUntil(p) }
func (t refAPIThread) sleepUntil(at uint64)    { t.t.SleepUntil(at) }
func (t refAPIThread) now() uint64             { return t.t.now }

// Workload program, generated entirely before execution.

type opKind uint8

const (
	opAdvance  opKind = iota // advance a cycles
	opYield                  // bare yield
	opLockCS                 // emulated critical section: a inside, b after
	opWaitFlag               // block until flag a is set by an event
	opSleep                  // sleep a cycles past the thread clock
	opSpawn                  // fork child program a mid-run
)

type op struct {
	kind opKind
	a, b uint64
}

type program struct {
	threads  [][]op // spawned before run
	children [][]op // spawned by opSpawn, in index order
	// events: at flagEvents[i], flag i becomes set.
	flagEvents []uint64
	haltAt     uint64 // 0 = never
}

const numFlags = 6

// genProgram draws a complete randomized program from seed. All
// randomness is consumed here; execution is deterministic replay.
func genProgram(seed int64) program {
	r := rand.New(rand.NewSource(seed))
	var p program
	p.flagEvents = make([]uint64, numFlags)
	for i := range p.flagEvents {
		p.flagEvents[i] = uint64(5 + r.Intn(900))
	}
	if r.Intn(4) == 0 {
		p.haltAt = uint64(100 + r.Intn(800))
	}
	nChildren := r.Intn(3)
	for i := 0; i < nChildren; i++ {
		p.children = append(p.children, genOps(r, 0))
	}
	nThreads := 2 + r.Intn(5)
	for i := 0; i < nThreads; i++ {
		p.threads = append(p.threads, genOps(r, len(p.children)))
	}
	return p
}

func genOps(r *rand.Rand, nChildren int) []op {
	spawned := 0
	n := 20 + r.Intn(40)
	ops := make([]op, 0, n)
	for i := 0; i < n; i++ {
		switch r.Intn(12) {
		case 0, 1, 2, 3:
			ops = append(ops, op{kind: opAdvance, a: uint64(1 + r.Intn(40))})
		case 4, 5:
			ops = append(ops, op{kind: opYield})
		case 6, 7, 8:
			ops = append(ops, op{kind: opLockCS, a: uint64(1 + r.Intn(15)), b: uint64(r.Intn(10))})
		case 9:
			ops = append(ops, op{kind: opWaitFlag, a: uint64(r.Intn(numFlags))})
		case 10:
			ops = append(ops, op{kind: opSleep, a: uint64(1 + r.Intn(60))})
		case 11:
			if spawned < nChildren {
				ops = append(ops, op{kind: opSpawn, a: uint64(spawned)})
				spawned++
			} else {
				ops = append(ops, op{kind: opAdvance, a: uint64(1 + r.Intn(5))})
			}
		}
	}
	return ops
}

// replay executes p on s and returns the step trace.
func replay(p program, s simAPI) []string {
	var trace []string
	flags := make([]bool, numFlags)
	owner := -1 // emulated lock

	for i, at := range p.flagEvents {
		i, at := i, at
		s.schedule(at, func() {
			flags[i] = true
			trace = append(trace, fmt.Sprintf("ev flag%d k=%d", i, s.now()))
		})
	}
	if p.haltAt > 0 {
		s.schedule(p.haltAt, func() {
			trace = append(trace, fmt.Sprintf("ev halt k=%d", s.now()))
			s.halt()
		})
	}

	var runOps func(name string, ops []op, th threadAPI)
	runOps = func(name string, ops []op, th threadAPI) {
		step := func(i int, what string) {
			trace = append(trace, fmt.Sprintf("%s#%d %s t=%d k=%d", name, i, what, th.now(), s.now()))
		}
		for i, o := range ops {
			switch o.kind {
			case opAdvance:
				th.advance(o.a)
				step(i, "adv")
			case opYield:
				th.yieldStep()
				step(i, "yield")
			case opLockCS:
				th.waitUntil(func() bool { return owner == -1 })
				owner = 1 // claimed; identity is implied by the trace
				step(i, "lock")
				th.advance(o.a)
				owner = -1
				step(i, "unlock")
				th.advance(o.b)
			case opWaitFlag:
				f := int(o.a)
				th.waitUntil(func() bool { return flags[f] })
				step(i, "flag")
			case opSleep:
				th.sleepUntil(th.now() + o.a)
				step(i, "sleep")
			case opSpawn:
				child := p.children[o.a]
				cname := fmt.Sprintf("%s.c%d", name, o.a)
				s.spawn(cname, func(ct threadAPI) { runOps(cname, child, ct) })
				step(i, "spawn")
			}
		}
		step(len(ops), "done")
	}

	for i, ops := range p.threads {
		i, ops := i, ops
		name := fmt.Sprintf("w%d", i)
		s.spawn(name, func(th threadAPI) { runOps(name, ops, th) })
	}
	s.run()
	trace = append(trace, fmt.Sprintf("end k=%d", s.now()))
	return trace
}

func TestOptimizedKernelMatchesReference(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			p := genProgram(seed)
			got := replay(p, newSim{NewKernel()})
			want := replay(p, refSim{newRefKernel()})
			if len(got) != len(want) {
				t.Fatalf("trace length %d != reference %d\nlast new: %v\nlast ref: %v",
					len(got), len(want), tail(got), tail(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("step %d diverged:\n  new: %s\n  ref: %s", i, got[i], want[i])
				}
			}
		})
	}
}

// TestOptimizedKernelSelfDeterministic replays the same program twice on
// the optimized kernel: the trace must be identical run to run.
func TestOptimizedKernelSelfDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		p := genProgram(seed)
		a := replay(p, newSim{NewKernel()})
		b := replay(p, newSim{NewKernel()})
		for i := range a {
			if i >= len(b) || a[i] != b[i] {
				t.Fatalf("seed %d: two runs diverged at step %d", seed, i)
			}
		}
	}
}

func tail(s []string) []string {
	if len(s) <= 3 {
		return s
	}
	return s[len(s)-3:]
}
