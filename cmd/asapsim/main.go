// Command asapsim runs one Table 3 benchmark under one persistence scheme
// and prints throughput, region latency and the hardware counters.
//
// Usage:
//
//	asapsim -bench Q -scheme ASAP -threads 4 -ops 500 -value 64 -pmmult 1
//
// Observability (all zero-cost when off):
//
//	asapsim -bench Q -scheme ASAP -profile               # cycle accounting table
//	asapsim -bench Q -scheme ASAP -profile-json p.json   # machine-readable buckets
//	asapsim -bench Q -scheme ASAP -timeline trace.json   # Perfetto/chrome://tracing
//	asapsim -bench Q -scheme ASAP -series occ.csv        # occupancy time series
//
// Performance profiling of the simulator itself (go tool pprof):
//
//	asapsim -bench Q -scheme ASAP -cpuprofile cpu.pb.gz -memprofile mem.pb.gz
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"asap/internal/experiment"
	"asap/internal/obs"
	"asap/internal/snapshot"
	"asap/internal/trace"
	"asap/internal/workload"
)

func main() { os.Exit(run()) }

func run() int {
	bench := flag.String("bench", "Q", "benchmark: BN BT CT EO HM Q RB SS TPCC")
	scheme := flag.String("scheme", "ASAP", "scheme: NP SW SW-DPOOnly HWUndo HWRedo ASAP ASAP-Redo")
	threads := flag.Int("threads", 4, "worker threads")
	ops := flag.Int("ops", 500, "operations per thread")
	items := flag.Int("items", 512, "initial items")
	value := flag.Int("value", 64, "value bytes per operation (paper: 64 or 2048)")
	pmmult := flag.Int("pmmult", 1, "PM latency multiplier (1, 2, 4, 16)")
	lhwpq := flag.Int("lhwpq", 0, "LH-WPQ entries per channel (0 = default 128)")
	verbose := flag.Bool("v", false, "dump all hardware counters")
	traceN := flag.Int("trace", 0, "print the last N protocol events (ASAP only)")
	profile := flag.Bool("profile", false, "print the per-thread cycle-accounting table")
	profileJSON := flag.String("profile-json", "", "write the cycle accounting as JSON to this path")
	timeline := flag.String("timeline", "", "write a Perfetto/Chrome trace.json timeline to this path")
	series := flag.String("series", "", "write the occupancy time series to this path (.json for JSON, else CSV)")
	seriesInterval := flag.Uint64("series-interval", 1000, "time-series sampling interval in cycles")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile (runtime/pprof) to this path")
	memProfile := flag.String("memprofile", "", "write a heap profile taken at exit to this path")
	seed := flag.Int64("seed", 0, "workload RNG seed (0 = default 42)")
	checkpointEvery := flag.Uint64("checkpoint-every", 0, "take a state snapshot every N cycles (0 = off)")
	checkpointFile := flag.String("checkpoint-file", "", "write the last snapshot to this path (requires -checkpoint-every)")
	resumeFrom := flag.String("resume-from", "", "resume: replay to the snapshot at this path, verify digests, continue (requires -checkpoint-every matching the original run)")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "asapsim: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "asapsim: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			if err := writeTo(*memProfile, func(w io.Writer) error {
				runtime.GC()
				return pprof.WriteHeapProfile(w)
			}); err != nil {
				fmt.Fprintf(os.Stderr, "asapsim: %v\n", err)
			}
		}()
	}

	if workload.ByName(*bench) == nil {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", *bench)
		return 2
	}
	scale := experiment.Scale{
		Threads:      *threads,
		OpsPerThread: *ops,
		InitialItems: *items,
	}

	var buf *trace.Buffer
	printTrace := *traceN > 0
	if printTrace {
		buf = trace.NewBuffer(*traceN)
	} else if *timeline != "" {
		// The timeline wants protocol events even when none are printed.
		buf = trace.NewBuffer(1 << 16)
	}

	// Attach the observability session only when asked: the disabled path
	// must leave the run byte-identical.
	var sess *obs.Session
	var prof *obs.Profiler
	var rec *obs.Recorder
	if *profile || *profileJSON != "" || *timeline != "" {
		prof = obs.NewProfiler()
		if *timeline != "" {
			prof.EnableSpans(0)
		}
	}
	if *series != "" || *timeline != "" {
		rec = obs.NewRecorder(*seriesInterval, 0)
	}
	if prof != nil || rec != nil {
		sess = &obs.Session{Prof: prof, Rec: rec}
	}

	v := experiment.Variant{
		Scheme: *scheme,
		PMMult: *pmmult,
		LHWPQ:  *lhwpq,
		Seed:   *seed,
		Trace:  buf,
		Obs:    sess,
	}

	var res workload.Result
	switch {
	case *resumeFrom != "":
		from, err := snapshot.ReadFile(*resumeFrom)
		if err != nil {
			fmt.Fprintf(os.Stderr, "asapsim: %v\n", err)
			return 1
		}
		res, err = experiment.RunResumed(v, *bench, scale, *value, *checkpointEvery, from)
		if err != nil {
			fmt.Fprintf(os.Stderr, "asapsim: %v\n", err)
			return 1
		}
		fmt.Printf("resumed     from cycle %d (digests verified)\n", from.Cycle)
	case *checkpointEvery > 0:
		var snaps []snapshot.Snap
		res, snaps = experiment.RunCheckpointed(v, *bench, scale, *value, *checkpointEvery)
		fmt.Printf("checkpoints %d (every %d cycles)\n", len(snaps), *checkpointEvery)
		if *checkpointFile != "" {
			if len(snaps) == 0 {
				fmt.Fprintf(os.Stderr, "asapsim: run too short for a checkpoint every %d cycles\n", *checkpointEvery)
				return 1
			}
			last := snaps[len(snaps)-1]
			if err := snapshot.WriteFile(*checkpointFile, last); err != nil {
				fmt.Fprintf(os.Stderr, "asapsim: %v\n", err)
				return 1
			}
			fmt.Printf("snapshot    cycle %d -> %s\n", last.Cycle, *checkpointFile)
		}
	default:
		if *checkpointFile != "" {
			fmt.Fprintln(os.Stderr, "asapsim: -checkpoint-file requires -checkpoint-every")
			return 2
		}
		res = experiment.Run(v, *bench, scale, *value)
	}

	fmt.Printf("benchmark   %s\n", res.Benchmark)
	fmt.Printf("scheme      %s\n", res.Scheme)
	fmt.Printf("ops         %d\n", res.Ops)
	fmt.Printf("cycles      %d\n", res.Cycles)
	fmt.Printf("throughput  %.4f ops/kcycle\n", res.Throughput())
	fmt.Printf("cyc/region  %.1f\n", res.CyclesPerRegion())
	fmt.Printf("consistency %s\n", orOK(res.CheckErr))
	fmt.Printf("region lat  p50=%d p95=%d p99=%d cycles\n", res.RegionP50, res.RegionP95, res.RegionP99)
	if printTrace {
		fmt.Println(strings.Repeat("-", 40))
		fmt.Print(buf.String())
	}
	if *verbose {
		names := make([]string, 0, len(res.Stats))
		for k := range res.Stats {
			names = append(names, k)
		}
		sort.Strings(names)
		fmt.Println(strings.Repeat("-", 40))
		for _, k := range names {
			fmt.Printf("%-24s %12d\n", k, res.Stats[k])
		}
	}

	if prof != nil {
		// The exactness invariant is part of the tool's contract: every
		// thread's buckets must sum to its lifetime.
		if err := prof.Check(); err != nil {
			fmt.Fprintf(os.Stderr, "asapsim: profile self-check failed: %v\n", err)
			return 1
		}
	}
	if *profile {
		fmt.Println(strings.Repeat("-", 40))
		fmt.Print(prof.String())
	}
	if *profileJSON != "" {
		if err := writeTo(*profileJSON, prof.WriteJSON); err != nil {
			fmt.Fprintf(os.Stderr, "asapsim: %v\n", err)
			return 1
		}
	}
	if *series != "" {
		write := rec.WriteCSV
		if strings.HasSuffix(*series, ".json") {
			write = rec.WriteJSON
		}
		if err := writeTo(*series, write); err != nil {
			fmt.Fprintf(os.Stderr, "asapsim: %v\n", err)
			return 1
		}
	}
	if *timeline != "" {
		var events []trace.Event
		if buf != nil {
			events = buf.Events()
		}
		err := writeTo(*timeline, func(w io.Writer) error {
			return obs.WriteTimeline(w, events, prof, rec)
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "asapsim: %v\n", err)
			return 1
		}
	}
	return 0
}

// writeTo creates path and streams fn into it.
func writeTo(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func orOK(s string) string {
	if s == "" {
		return "OK"
	}
	return s
}
