package core

import (
	"sort"

	"asap/internal/arch"
	"asap/internal/memdev"
)

// DepSnapshot is one persisted Dependence List entry as recovery sees it
// after the crash flush (§5.5).
type DepSnapshot struct {
	RID  arch.RID
	Done bool
	Deps []arch.RID
}

// LogExtent describes one thread's log buffer so recovery can scan it for
// persisted record headers.
type LogExtent struct {
	Thread int
	Base   uint64
	Size   uint64
}

// CrashState is everything that survives a power failure: the flushed PM
// image, the flushed LH-WPQ headers, the persistence-domain Dependence
// List entries, and the log directory.
type CrashState struct {
	Image   *memdev.Image
	Headers []*memdev.LogHeader
	Deps    []DepSnapshot
	Logs    []LogExtent
}

// Crash models a power failure at the current instant: ADR flushes the
// WPQs to the PM image, the LH-WPQ and Dependence List contents are
// captured, and the simulation halts. The returned state is what recovery
// gets to work with — caches, arrival queues and thread registers are
// gone.
func (e *Engine) Crash() *CrashState {
	cs := &CrashState{
		Image:   e.m.Fabric.FlushAll().Clone(),
		Headers: e.m.Fabric.LHSnapshot(),
	}
	for _, dl := range e.dep {
		for _, entry := range dl.Entries() {
			snap := DepSnapshot{RID: entry.RID, Done: entry.Done}
			for d := range entry.Deps {
				snap.Deps = append(snap.Deps, d)
			}
			sort.Slice(snap.Deps, func(i, j int) bool { return snap.Deps[i] < snap.Deps[j] })
			cs.Deps = append(cs.Deps, snap)
		}
	}
	sort.Slice(cs.Deps, func(i, j int) bool { return cs.Deps[i].RID < cs.Deps[j].RID })
	for tid, ts := range e.threads {
		cs.Logs = append(cs.Logs, LogExtent{Thread: tid, Base: ts.log.Base(), Size: ts.log.Size()})
	}
	sort.Slice(cs.Logs, func(i, j int) bool { return cs.Logs[i].Thread < cs.Logs[j].Thread })
	e.m.K.Halt()
	return cs
}
