package experiment

import "testing"

func TestAblationCoalesceKnee(t *testing.T) {
	tab := AblationCoalesce(tinyScale(), "Q")
	// Traffic at distance 4 is no worse than at distance 1, and going to
	// 16 buys little (the paper's "no benefit beyond four").
	d1 := tab.Col("dist=1", "pm.writes")
	d4 := tab.Col("dist=4", "pm.writes")
	d16 := tab.Col("dist=16", "pm.writes")
	if d4 > d1+1e-9 {
		t.Fatalf("distance 4 should not write more than distance 1:\n%s", tab)
	}
	if d16 < d4*0.85 {
		t.Fatalf("distance 16 should not be much better than 4 (paper's knee):\n%s", tab)
	}
}

func TestAblationStructuresBiggerIsFasterOrEqual(t *testing.T) {
	tab := AblationStructures(tinyScale(), "Q")
	small := tab.Col("CL2x4,Dep2", "cycles")
	base := tab.Col("CL4x8,Dep4", "cycles")
	big := tab.Col("CL8x16,Dep8", "cycles")
	if base != 1 {
		t.Fatalf("base row must normalize to 1:\n%s", tab)
	}
	if small < base*0.98 {
		t.Fatalf("halving the structures should not speed ASAP up:\n%s", tab)
	}
	if big > base*1.05 {
		t.Fatalf("doubling the structures should not slow ASAP down:\n%s", tab)
	}
}

func TestCoRunningOrdering(t *testing.T) {
	scale := Scale{Threads: 2, OpsPerThread: 60, InitialItems: 96}
	tab := CoRunning(scale)
	asap := tab.Col("ASAP", "ops/kcycle")
	sw := tab.Col("SW", "ops/kcycle")
	np := tab.Col("NP", "ops/kcycle")
	if !(asap > sw) {
		t.Fatalf("ASAP must beat SW when co-running:\n%s", tab)
	}
	if np < asap*0.95 {
		t.Fatalf("NP bounds ASAP:\n%s", tab)
	}
	// Traffic optimizations reduce co-run PM writes.
	if tab.Col("ASAP", "pm.writes") >= tab.Col("ASAP-No-Opt", "pm.writes") {
		t.Fatalf("optimizations must cut co-run traffic:\n%s", tab)
	}
}

func TestFenceSweepWaits(t *testing.T) {
	scale := Scale{Threads: 3, OpsPerThread: 80, InitialItems: 96}
	tab := FenceSweep(scale)
	free := tab.Col("no fence", "ops/kcycle")
	every1 := tab.Col("every 1", "ops/kcycle")
	if every1 > free+1e-9 {
		t.Fatalf("fencing cannot raise throughput here:\n%s", tab)
	}
	if tab.Col("every 1", "wait/fence") <= 0 {
		t.Fatalf("per-op fences must absorb some wait:\n%s", tab)
	}
}

func TestLifetimeASAPBest(t *testing.T) {
	tab := Lifetime(tinyScale("BN", "Q"))
	g := func(c string) float64 { return tab.Col("GeoMean", c) }
	if !(g("ASAP") > g("HWUndo") && g("ASAP") > g("HWRedo") && g("ASAP") > 1) {
		t.Fatalf("ASAP must project the longest lifetime:\n%s", tab)
	}
}

func TestDesignChoiceShape(t *testing.T) {
	tab := DesignChoice(tinyScale("Q", "HM"))
	g := func(c string) float64 { return tab.Col("GeoMean", c) }
	// Both asynchronous-commit designs beat SW comfortably.
	if !(g("ASAP xSW") > 1.5 && g("ASAP-Redo xSW") > 1.5) {
		t.Fatalf("both async designs must beat SW:\n%s", tab)
	}
}

func TestNUMAShape(t *testing.T) {
	scale := Scale{Threads: 3, OpsPerThread: 80, InitialItems: 96}
	tab := NUMA(scale)
	// ASAP must tolerate remote channels at least as well as HWUndo.
	asap := tab.Col("ASAP", "remote+800")
	undo := tab.Col("HWUndo", "remote+800")
	if asap < undo-1e-9 {
		t.Fatalf("ASAP should be at least as NUMA-robust as HWUndo:\n%s", tab)
	}
	for _, s := range []string{"NP", "ASAP", "HWUndo", "HWRedo"} {
		if tab.Col(s, "UMA") != 1 {
			t.Fatalf("UMA column must normalize to 1:\n%s", tab)
		}
	}
}

func TestTailLatencyShape(t *testing.T) {
	scale := Scale{Threads: 4, OpsPerThread: 100, InitialItems: 96}
	tab := TailLatency(scale)
	// ASAP removes the fixed region-end wait: its p50/p95 track NP while
	// the synchronous baselines sit a bucket higher across the whole
	// distribution. (The extreme tail can show rare CL-List backpressure
	// stalls instead — reported, not asserted.)
	for _, q := range []string{"p50", "p95"} {
		asap := tab.Col("ASAP", q)
		np := tab.Col("NP", q)
		undo := tab.Col("HWUndo", q)
		sw := tab.Col("SW", q)
		if asap > np*1.05 {
			t.Fatalf("ASAP %s (%v) should track NP (%v):\n%s", q, asap, np, tab)
		}
		if !(sw > undo && undo > asap) {
			t.Fatalf("%s ordering SW > HWUndo > ASAP violated:\n%s", q, tab)
		}
	}
}

func TestScalingShape(t *testing.T) {
	scale := Scale{Threads: 4, OpsPerThread: 80, InitialItems: 96}
	tab := Scaling(scale)
	// At every thread count ASAP out-throughputs the synchronous schemes
	// on the lock-bound workload.
	for _, col := range []string{"1", "4", "8"} {
		if !(tab.Col("ASAP", col) > tab.Col("HWUndo", col) &&
			tab.Col("HWUndo", col) > tab.Col("SW", col)) {
			t.Fatalf("scaling ordering violated at %s threads:\n%s", col, tab)
		}
	}
}
