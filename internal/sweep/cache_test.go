package sweep

import (
	"bytes"
	"context"
	"testing"

	"asap/internal/resultcache"
)

// TestWarmSweepIsByteIdentical is the cache's contract: a sweep run twice
// against the same store emits byte-identical output, the second run is
// served from cache (every cell a hit), and a run with no cache matches
// both. fig1 covers the standard variant matrix; fences covers a custom
// (explicit-key) spec.
func TestWarmSweepIsByteIdentical(t *testing.T) {
	t.Setenv(resultcache.CodeVersionEnv, "test-code-version")
	version, ok := resultcache.CodeVersion()
	if !ok || version != "test-code-version" {
		t.Fatalf("CodeVersion() = %q, %v", version, ok)
	}
	store, err := resultcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	spec := Spec{Experiments: []string{"fig1", "fences"}, Parallel: 2}
	runIt := func(cache *resultcache.Store) string {
		var buf bytes.Buffer
		opt := Options{}
		if cache != nil {
			opt.Cache = cache
			opt.CodeVersion = version
		}
		if _, err := Execute(context.Background(), spec, &buf, opt); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	uncached := runIt(nil)
	cold := runIt(store)
	hits, misses, puts := store.Stats()
	if hits != 0 || misses == 0 || puts != misses {
		t.Fatalf("cold run: hits=%d misses=%d puts=%d (want 0 hits, puts == misses)", hits, misses, puts)
	}
	warm := runIt(store)
	hits2, misses2, _ := store.Stats()
	if hits2 == 0 || misses2 != misses {
		t.Fatalf("warm run: hits=%d (want >0), misses %d -> %d (want no new misses)", hits2, misses, misses2)
	}
	if hits2 != misses {
		t.Errorf("warm run hit %d cells but cold run computed %d: cache keys unstable across runs", hits2, misses)
	}

	if cold != uncached {
		t.Errorf("cold cached output differs from uncached output")
	}
	if warm != cold {
		t.Errorf("warm output differs from cold output")
	}
}

// TestSweepWithEmptyCodeVersionDisablesCache covers the Options contract:
// a non-nil Cache with an empty CodeVersion must not be consulted.
func TestSweepWithEmptyCodeVersionDisablesCache(t *testing.T) {
	store, err := resultcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	spec := Spec{Experiments: []string{"fig1"}, Parallel: 2}
	if _, err := Execute(context.Background(), spec, &buf, Options{Cache: store}); err != nil {
		t.Fatal(err)
	}
	if hits, misses, puts := store.Stats(); hits != 0 || misses != 0 || puts != 0 {
		t.Fatalf("store touched without a code version: hits=%d misses=%d puts=%d", hits, misses, puts)
	}
}
