package cache

// Randomized trace equivalence between the fast-path cache model
// (level.go, meta.go, hierarchy.go) and the preserved pre-fast-path model
// (refmodel_test.go): on every seed, both models must produce identical
// per-access latencies, identical stall (fully-pinned-set) decisions,
// identical LLC-eviction and memory-fill hook sequences, identical final
// tag-extension state, and identical hardware counters. This is the same
// proof structure the kernel fast path used (refkernel_test.go): the
// optimization is only allowed to change how fast the answer arrives,
// never the answer.

import (
	"fmt"
	"math/rand"
	"testing"

	"asap/internal/arch"
	"asap/internal/memdev"
	"asap/internal/sim"
	"asap/internal/stats"
)

// equivConfig keeps the arrays tiny so evictions, coherence invalidations
// and fully-pinned stalls all happen constantly.
var equivConfigs = []Config{
	{
		L1: LevelConfig{Sets: 2, Ways: 2, Latency: 4},
		L2: LevelConfig{Sets: 4, Ways: 2, Latency: 14},
		L3: LevelConfig{Sets: 8, Ways: 2, Latency: 42},
	},
	{
		L1: LevelConfig{Sets: 1, Ways: 1, Latency: 4},
		L2: LevelConfig{Sets: 1, Ways: 2, Latency: 14},
		L3: LevelConfig{Sets: 2, Ways: 2, Latency: 42},
	},
	{
		L1: LevelConfig{Sets: 4, Ways: 8, Latency: 4},
		L2: LevelConfig{Sets: 8, Ways: 8, Latency: 14},
		L3: LevelConfig{Sets: 16, Ways: 8, Latency: 42},
	},
}

// equivPair is the new model and the reference model built over identical
// (but independent) fabrics and stat sets, with hook probes attached.
type equivPair struct {
	newH  *Hierarchy
	refH  *refHierarchy
	newSt *stats.Set
	refSt *stats.Set

	newTrace []string
	refTrace []string
}

func newEquivPair(cores int, cfg Config, persistent func(arch.LineAddr) bool) *equivPair {
	p := &equivPair{newSt: stats.New(), refSt: stats.New()}
	fNew := memdev.NewFabric(sim.NewKernel(), p.newSt, memdev.DefaultConfig())
	fRef := memdev.NewFabric(sim.NewKernel(), p.refSt, memdev.DefaultConfig())
	p.newH = NewHierarchy(p.newSt, fNew, cores, cfg, persistent)
	p.refH = newRefHierarchy(p.refSt, fRef, cores, cfg, persistent)
	p.newH.SetEvictHook(func(e EvictInfo) {
		p.newTrace = append(p.newTrace, fmt.Sprintf("evict %d dirty=%v locks=%d", e.Line, e.Dirty, e.Meta.Locks))
	})
	p.refH.onLLCEvict = func(e refEvictInfo) {
		p.refTrace = append(p.refTrace, fmt.Sprintf("evict %d dirty=%v locks=%d", e.Line, e.Dirty, e.Meta.Locks))
	}
	p.newH.SetFillHook(func(l arch.LineAddr, m *Meta) {
		p.newTrace = append(p.newTrace, fmt.Sprintf("fill %d", l))
	})
	p.refH.onFill = func(l arch.LineAddr, m *refMeta) {
		p.refTrace = append(p.refTrace, fmt.Sprintf("fill %d", l))
	}
	return p
}

func (p *equivPair) checkTraces(t *testing.T, ctx string) {
	t.Helper()
	if len(p.newTrace) != len(p.refTrace) {
		t.Fatalf("%s: trace length %d vs reference %d\nnew: %v\nref: %v",
			ctx, len(p.newTrace), len(p.refTrace), tail(p.newTrace), tail(p.refTrace))
	}
	for i := range p.newTrace {
		if p.newTrace[i] != p.refTrace[i] {
			t.Fatalf("%s: trace[%d] = %q, reference %q", ctx, i, p.newTrace[i], p.refTrace[i])
		}
	}
}

func tail(s []string) []string {
	if len(s) > 6 {
		return s[len(s)-6:]
	}
	return s
}

func TestHierarchyEquivalenceRandomized(t *testing.T) {
	const seeds = 48
	const opsPerSeed = 4000
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(seed)))
			cores := 1 + rng.Intn(3)
			cfg := equivConfigs[rng.Intn(len(equivConfigs))]
			// Half the address space persistent, so both PM and DRAM
			// eviction paths run.
			persistent := func(l arch.LineAddr) bool { return (uint64(l)>>arch.LineShift)&1 == 0 }
			p := newEquivPair(cores, cfg, persistent)

			// Lines are drawn from a pool a few times larger than the L3,
			// guaranteeing heavy conflict misses.
			pool := cfg.L3.Sets * cfg.L3.Ways * 3
			var locked []arch.LineAddr

			for op := 0; op < opsPerSeed; op++ {
				ctx := fmt.Sprintf("seed %d op %d", seed, op)
				switch r := rng.Intn(100); {
				case r < 70: // access
					core := rng.Intn(cores)
					line := arch.LineAddr(rng.Intn(pool) * arch.LineSize)
					write := rng.Intn(2) == 0
					latN, _, okN := p.newH.Access(core, line, write)
					latR, okR := p.refH.Access(core, line, write)
					if okN != okR || latN != latR {
						t.Fatalf("%s: Access(%d, %d, %v) = (%d, %v), reference (%d, %v)",
							ctx, core, line, write, latN, okN, latR, okR)
					}
				case r < 80: // lock a line (pin it resident first, as the engine does)
					core := rng.Intn(cores)
					line := arch.LineAddr(rng.Intn(pool) * arch.LineSize)
					_, _, okN := p.newH.Access(core, line, false)
					_, okR := p.refH.Access(core, line, false)
					if okN != okR {
						t.Fatalf("%s: pre-lock access ok %v vs %v", ctx, okN, okR)
					}
					if okN {
						p.newH.Table().Get(line).Lock()
						p.refH.table.Get(line).Lock()
						locked = append(locked, line)
					}
				case r < 90: // unlock the oldest lock
					if len(locked) > 0 {
						line := locked[0]
						locked = locked[1:]
						p.newH.Table().Get(line).Unlock()
						p.refH.table.Get(line).Unlock()
					}
				case r < 95: // MarkClean (the DPO-completion path)
					line := arch.LineAddr(rng.Intn(pool) * arch.LineSize)
					p.newH.MarkClean(line)
					p.refH.MarkClean(line)
				default: // observers must agree too
					core := rng.Intn(cores)
					line := arch.LineAddr(rng.Intn(pool) * arch.LineSize)
					if cn, cr := p.newH.CanAccess(core, line), p.refH.CanAccess(core, line); cn != cr {
						t.Fatalf("%s: CanAccess(%d, %d) = %v, reference %v", ctx, core, line, cn, cr)
					}
					if pn, pr := p.newH.Present(line), p.refH.Present(line); pn != pr {
						t.Fatalf("%s: Present(%d) = %v, reference %v", ctx, line, pn, pr)
					}
				}
				p.checkTraces(t, ctx)
			}

			// Final tag-extension state must match line for line.
			for i := 0; i < pool; i++ {
				line := arch.LineAddr(i * arch.LineSize)
				mr := p.refH.table.Peek(line)
				mn := p.newH.Table().Peek(line)
				if (mr == nil) != (mn == nil) {
					t.Fatalf("seed %d: line %d allocated=%v, reference %v", seed, line, mn != nil, mr != nil)
				}
				if mr == nil {
					continue
				}
				if mn.PBit != mr.PBit || mn.Locks != mr.Locks || mn.Owner != mr.Owner || mn.holders != mr.holders {
					t.Fatalf("seed %d: line %d meta {PBit:%v Locks:%d Owner:%v holders:%b}, reference {%v %d %v %b}",
						seed, line, mn.PBit, mn.Locks, mn.Owner, mn.holders, mr.PBit, mr.Locks, mr.Owner, mr.holders)
				}
			}

			// And the counters: the models were fed identical operations, so
			// every hardware event total must agree.
			sn, sr := p.newSt.Snapshot(), p.refSt.Snapshot()
			for name, v := range sr {
				if sn[name] != v {
					t.Fatalf("seed %d: counter %s = %d, reference %d", seed, name, sn[name], v)
				}
			}
			for name, v := range sn {
				if sr[name] != v {
					t.Fatalf("seed %d: counter %s = %d, reference %d", seed, name, v, sr[name])
				}
			}
		})
	}
}
