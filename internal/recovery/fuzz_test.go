package recovery

import (
	"encoding/binary"
	"math"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"asap/internal/arch"
	"asap/internal/core"
	"asap/internal/machine"
	"asap/internal/memdev"
	"asap/internal/sim"
	"asap/internal/workload"
)

// fuzzSeed returns the crash-fuzz seed: ASAP_FUZZ_SEED when set (so a CI
// failure can be reproduced locally with the exact same crash schedule),
// otherwise a fixed default. The seed is always logged so any failure
// message can be paired with it.
func fuzzSeed(t *testing.T) int64 {
	seed := int64(1)
	if env := os.Getenv("ASAP_FUZZ_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("ASAP_FUZZ_SEED=%q is not an integer: %v", env, err)
		}
		seed = v
	}
	t.Logf("fuzz seed %d (override with ASAP_FUZZ_SEED)", seed)
	return seed
}

// fuzzCrashPoints derives n crash cycles from the seed, log-uniformly
// spread over [lo, hi) so both early (dense WPQ traffic) and late (deep
// dependence chains) windows are hit.
func fuzzCrashPoints(seed int64, n int, lo, hi uint64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]uint64, n)
	for i := range out {
		span := float64(hi) / float64(lo)
		out[i] = uint64(float64(lo) * math.Pow(span, rng.Float64()))
	}
	return out
}

// readU64 reads a little-endian uint64 from the persisted image.
func readU64(img *memdev.Image, addr uint64) uint64 {
	line := img.Read(arch.LineOf(addr))
	off := addr % arch.LineSize
	return binary.LittleEndian.Uint64(line[off : off+8])
}

// checkPersistedQueue walks the Q benchmark's structure in the recovered
// image and validates the same invariants its live Check does: chain
// length equals the count cell, the tail points at the last node, and the
// enqueue/dequeue totals reconcile. Every Q operation updates all these
// cells in one atomic region, so any torn region shows up here.
func checkPersistedQueue(t *testing.T, img *memdev.Image, q *workload.Queue) {
	t.Helper()
	head := readU64(img, q.HeadCellAddr())
	count := readU64(img, q.CountCellAddr())
	enq := readU64(img, q.EnqCellAddr())
	deq := readU64(img, q.DeqCellAddr())
	tail := readU64(img, q.TailCellAddr())

	n := uint64(0)
	last := uint64(0)
	for cur := head; cur != 0; cur = readU64(img, cur) {
		last = cur
		n++
		if n > 1<<20 {
			t.Fatal("cycle in persisted queue")
		}
	}
	if n != count {
		t.Fatalf("persisted chain length %d != count cell %d", n, count)
	}
	if tail != last {
		t.Fatalf("persisted tail %#x != last node %#x", tail, last)
	}
	if enq-deq != n {
		t.Fatalf("persisted enq %d - deq %d != %d", enq, deq, n)
	}
}

// TestCrashRecoveryFuzzQueue runs the real Q benchmark multi-threaded,
// crashes at pseudo-random points, recovers, and validates the persisted
// structure — end-to-end over workload, engine, WAL, WPQ and recovery.
func TestCrashRecoveryFuzzQueue(t *testing.T) {
	seed := fuzzSeed(t)
	crashPoints := fuzzCrashPoints(seed, 12, 900, 91_000)
	caught := 0
	for _, at := range crashPoints {
		cfg := machine.DefaultConfig()
		cfg.Cores = 4
		cfg.Mem.Controllers, cfg.Mem.ChannelsPerMC = 1, 2
		cfg.Mem.WPQEntries = 8
		cfg.Mem.PMWriteCycles = 900 // slow device: long uncommitted windows
		m := machine.New(cfg)
		e := core.NewEngine(m, core.DefaultOptions())

		q := workload.NewQueue()
		env := &workload.Env{M: m, S: e}
		var cs *core.CrashState
		wcfg := workload.Config{
			ValueBytes: 64, InitialItems: 24, Threads: 3, OpsPerThread: 40, Seed: int64(at),
			// The initial structure must itself be durable for the image
			// walk to make sense, and crashes arm only once measurement
			// begins (setup is not part of any paper experiment).
			SetupInRegions: true,
			MeasureStarted: func(start uint64) {
				m.K.Schedule(start+at, func() { cs = e.Crash() })
			},
		}
		func() {
			defer func() {
				// Run panics if the kernel halts mid-run leave goroutines
				// parked; Halt returns cleanly, so nothing to recover,
				// but keep the barrier for safety.
				_ = recover()
			}()
			workload.Run(env, q, wcfg)
		}()
		if cs == nil {
			cs = e.Crash()
		}
		if e.ActiveRegions() > 0 {
			caught++
		}
		if _, err := Recover(cs); err != nil {
			t.Fatalf("seed %d crash@%d: recovery failed: %v", seed, at, err)
		}
		t.Logf("seed %d crash@%d", seed, at)
		checkPersistedQueue(t, cs.Image, q)
	}
	if caught < 3 {
		t.Fatalf("seed %d: only %d/%d crash points caught in-flight regions; fuzz too weak", seed, caught, len(crashPoints))
	}
}

// TestCrashRecoveryFuzzHashMap does the same for HM: after recovery every
// bucket chain must be intact (nodes hash to their bucket, no duplicates)
// and the stripe counters must equal the reachable nodes.
func TestCrashRecoveryFuzzHashMap(t *testing.T) {
	seed := fuzzSeed(t)
	for _, at := range fuzzCrashPoints(seed+1, 4, 1_500, 55_000) {
		cfg := machine.DefaultConfig()
		cfg.Cores = 4
		cfg.Mem.Controllers, cfg.Mem.ChannelsPerMC = 1, 2
		cfg.Mem.WPQEntries = 8
		cfg.Mem.PMWriteCycles = 900
		m := machine.New(cfg)
		e := core.NewEngine(m, core.DefaultOptions())

		h := workload.NewHashMap()
		env := &workload.Env{M: m, S: e}
		var cs *core.CrashState
		wcfg := workload.Config{
			ValueBytes: 64, InitialItems: 32, Threads: 3, OpsPerThread: 30, Seed: int64(at),
			SetupInRegions: true,
			MeasureStarted: func(start uint64) {
				m.K.Schedule(start+at, func() { cs = e.Crash() })
			},
		}
		workload.Run(env, h, wcfg)
		if cs == nil {
			cs = e.Crash()
		}
		if _, err := Recover(cs); err != nil {
			t.Fatalf("seed %d crash@%d: %v", seed, at, err)
		}
		t.Logf("seed %d crash@%d", seed, at)
		checkPersistedHashMap(t, cs.Image, h)
	}
}

func checkPersistedHashMap(t *testing.T, img *memdev.Image, h *workload.HashMap) {
	t.Helper()
	reachable := uint64(0)
	for b := uint64(0); b < h.BucketCount(); b++ {
		seen := map[uint64]bool{}
		for cur := readU64(img, h.BucketHeadAddr(b)); cur != 0; cur = readU64(img, cur+8) {
			key := readU64(img, cur)
			if key%h.BucketCount() != b {
				t.Fatalf("persisted key %d in wrong bucket %d", key, b)
			}
			if seen[key] {
				t.Fatalf("persisted duplicate key %d in bucket %d", key, b)
			}
			seen[key] = true
			reachable++
		}
	}
	var counted uint64
	for s := 0; s < h.StripeCount(); s++ {
		counted += readU64(img, h.CountCellAddr(s))
	}
	if counted != reachable {
		t.Fatalf("persisted counters %d != reachable nodes %d", counted, reachable)
	}
}

// Guard: the fuzz relies on Run returning cleanly after Halt; verify the
// kernel indeed stops without deadlock panics.
func TestHaltDuringWorkloadReturns(t *testing.T) {
	m := machine.New(machine.Config{Cores: 2})
	e := core.NewEngine(m, core.DefaultOptions())
	m.K.Schedule(100, func() { m.K.Halt() })
	m.K.Spawn("w", func(th *sim.Thread) {
		e.InitThread(th)
		for i := 0; i < 1000; i++ {
			e.Begin(th)
			var b [8]byte
			e.Store(th, 0x1000_0000, b[:])
			e.End(th)
		}
	})
	m.K.Run()
	if !m.K.Halted() {
		t.Fatal("kernel did not halt")
	}
}
