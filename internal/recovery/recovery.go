// Package recovery implements ASAP's crash recovery (§5.5): from the
// flushed persistence-domain state (PM image, LH-WPQ headers, Dependence
// List entries) it reconstructs the set of uncommitted atomic regions,
// orders them by the dependence DAG, and undoes them newest-first so the
// persisted image returns to a consistent prefix of the execution.
//
// Recovery validates the image before repairing it. Every live log record
// — allocated but not freed at the crash, bounded by the LogHead/LogTail
// registers — must contribute intact undo material: a header line that
// parses with a good CRC (or LH-WPQ coverage for still-open records), and
// data entries matching the CRCs captured at WPQ acceptance. Damage to
// live undo material is fatal (the image cannot be proven repairable) and
// is reported as a CorruptionError; corrupt bytes outside the live window
// are provably stale leftovers of committed regions and are discarded.
package recovery

import (
	"errors"
	"fmt"
	"sort"

	"asap/internal/arch"
	"asap/internal/core"
	"asap/internal/memdev"
	"asap/internal/wal"
)

// Class names one kind of corruption recovery can diagnose.
type Class string

// The corruption classes.
const (
	// ClassTornHeader: a live record's header line is present but fails
	// validation — a torn header persist or a media error.
	ClassTornHeader Class = "torn-header"
	// ClassMissingHeader: a live record slot has no usable header — the
	// header write never reached media (or a committed region's stale
	// header sits where the live record's header must be).
	ClassMissingHeader Class = "missing-header"
	// ClassTornEntry: a record's data entries fail their checksum.
	ClassTornEntry Class = "torn-entry"
	// ClassMissingEntry: a log entry listed by a header (or accepted into
	// the LH-WPQ) is absent from the image.
	ClassMissingEntry Class = "missing-entry"
	// ClassStaleCorrupt: a corrupt header-like line outside the live
	// window — provably freed, safely discarded.
	ClassStaleCorrupt Class = "stale-corrupt"
)

// Severity says whether a corruption blocks recovery.
type Severity int

// The severities.
const (
	// SeverityDiscardable: the damaged bytes belong to a provably
	// committed (freed) region; recovery ignores them.
	SeverityDiscardable Severity = iota
	// SeverityFatal: undo material for an uncommitted region is damaged
	// or lost; the image cannot be proven repairable.
	SeverityFatal
)

func (s Severity) String() string {
	if s == SeverityFatal {
		return "fatal"
	}
	return "discardable"
}

// Corruption is one diagnosed defect in the crash image.
type Corruption struct {
	Class    Class
	Severity Severity
	// Line is the damaged PM line (a header line or log entry line).
	Line arch.LineAddr
	// RID is the owning region when it could be determined.
	RID arch.RID
	// Reason is a human-readable diagnosis.
	Reason string
}

func (c Corruption) String() string {
	s := fmt.Sprintf("%s (%s) at line %#x", c.Class, c.Severity, uint64(c.Line))
	if c.RID != arch.NoRID {
		s += " region " + c.RID.String()
	}
	if c.Reason != "" {
		s += ": " + c.Reason
	}
	return s
}

// CorruptionError reports fatal corruption: recovery refused to repair the
// image because undo material for uncommitted regions is damaged or lost.
type CorruptionError struct {
	Fatal []Corruption
}

func (e *CorruptionError) Error() string {
	if len(e.Fatal) == 1 {
		return "recovery: unrecoverable corruption: " + e.Fatal[0].String()
	}
	return fmt.Sprintf("recovery: unrecoverable corruption (%d findings, first: %s)",
		len(e.Fatal), e.Fatal[0].String())
}

// Options tunes a recovery run.
type Options struct {
	// SkipValidation disables the integrity pass: headers are decoded
	// with the pre-checksum legacy rules and damaged or missing material
	// is silently skipped. This deliberately resurrects the unhardened
	// recovery so the crash-consistency checker can demonstrate that it
	// catches the resulting inconsistencies. Never set it in real use.
	SkipValidation bool
}

// regionLog is the undo material collected for one uncommitted region.
type regionLog struct {
	rid     arch.RID
	entries []undoEntry
}

type undoEntry struct {
	dataLine arch.LineAddr
	logLine  arch.LineAddr
}

// debugRestore, when set by tests/tools, observes every undo application.
var debugRestore func(rid arch.RID, dataLine, logLine arch.LineAddr, old []byte)

// Report summarizes a completed recovery.
type Report struct {
	// Uncommitted is the set of regions found in the Dependence List,
	// in the order they were undone (reverse happens-before).
	Uncommitted []arch.RID
	// EntriesRestored counts undo entries applied to the image.
	EntriesRestored int
	// RecordsScanned counts valid log record headers found in the image.
	RecordsScanned int
	// LiveRecords counts record slots allocated but not freed at the
	// crash — the slots validation holds to the intact-undo obligation.
	LiveRecords int
	// Discarded lists corrupt lines classified as stale leftovers of
	// committed regions and ignored.
	Discarded []Corruption
}

// Recover repairs the crash state in place with full validation: cs.Image
// is modified so that every uncommitted region's writes are rolled back.
func Recover(cs *core.CrashState) (*Report, error) {
	return RecoverWithOptions(cs, Options{})
}

// RecoverWithOptions is Recover with explicit Options. It never panics: a
// malformed crash state yields an error, and fatal image corruption yields
// a *CorruptionError, in both cases before the image has been modified.
func RecoverWithOptions(cs *core.CrashState, opt Options) (rep *Report, err error) {
	defer func() {
		if p := recover(); p != nil {
			rep, err = nil, fmt.Errorf("recovery: internal error: %v", p)
		}
	}()
	if verr := cs.Validate(); verr != nil {
		return nil, fmt.Errorf("recovery: malformed crash state: %w", verr)
	}

	rep = &Report{}
	uncommitted := make(map[arch.RID]bool, len(cs.Deps))
	for _, d := range cs.Deps {
		uncommitted[d.RID] = true
	}

	var logs map[arch.RID]*regionLog
	if opt.SkipValidation {
		logs = collectLegacy(cs, uncommitted, rep)
	} else {
		var cerr *CorruptionError
		logs, cerr = collectValidated(cs, uncommitted, rep)
		if cerr != nil {
			return nil, cerr
		}
	}
	if len(uncommitted) == 0 {
		return rep, nil
	}

	order, err := happensBefore(cs.Deps)
	if err != nil {
		return nil, err
	}

	// Undo in reverse happens-before order: the newest region first, so a
	// line written by several uncommitted regions ends at the oldest
	// region's logged old value.
	for i := len(order) - 1; i >= 0; i-- {
		rid := order[i]
		rep.Uncommitted = append(rep.Uncommitted, rid)
		rl, ok := logs[rid]
		if !ok {
			continue // region logged nothing (read-only or no accepted LPOs)
		}
		for _, ent := range rl.entries {
			old := cs.Image.Read(ent.logLine)
			if debugRestore != nil {
				debugRestore(rid, ent.dataLine, ent.logLine, old)
			}
			cs.Image.Write(ent.dataLine, old)
			rep.EntriesRestored++
		}
	}
	return rep, nil
}

// collectValidated gathers undo material and validates the image in one
// pass, before anything is written back. Undo comes from two sources: full
// records persisted in the image (header lines at record-aligned slots in
// the log buffers) and partial records flushed from the LH-WPQ. Validation
// holds every live record slot to the intact-undo obligation and verifies
// the checksums captured at WPQ acceptance.
func collectValidated(cs *core.CrashState, uncommitted map[arch.RID]bool, rep *Report) (map[arch.RID]*regionLog, *CorruptionError) {
	logs := make(map[arch.RID]*regionLog)
	var fatal []Corruption
	add := func(rid arch.RID, data, log arch.LineAddr) {
		rl := logs[rid]
		if rl == nil {
			rl = &regionLog{rid: rid}
			logs[rid] = rl
		}
		rl.entries = append(rl.entries, undoEntry{dataLine: data, logLine: log})
	}

	// Partial records flushed from the LH-WPQ: only accepted entries are
	// listed, so each listed log line must have reached the image and
	// must match the CRC captured at acceptance. A committed region's
	// leftover closing header covers nothing — its slot may already have
	// been reallocated to a record that must restore from the image.
	covered := make(map[arch.LineAddr]*memdev.LogHeader, len(cs.Headers))
	for _, h := range cs.Headers {
		if !uncommitted[h.RID] {
			continue
		}
		covered[h.HeaderAddr] = h
		for i, dl := range h.DataLines {
			ll := h.LogLines[i]
			if !cs.Image.Has(ll) {
				fatal = append(fatal, Corruption{
					Class: ClassMissingEntry, Severity: SeverityFatal, Line: ll, RID: h.RID,
					Reason: "accepted log entry never reached media",
				})
				continue
			}
			if i < len(h.EntryCRCs) && wal.Checksum(cs.Image.Read(ll)) != h.EntryCRCs[i] {
				fatal = append(fatal, Corruption{
					Class: ClassTornEntry, Severity: SeverityFatal, Line: ll, RID: h.RID,
					Reason: "log entry does not match the checksum captured at WPQ acceptance",
				})
				continue
			}
			add(h.RID, dl, ll)
		}
	}

	// Scan every thread's log buffer at record granularity. Live slots
	// (allocated, not freed) must hold intact undo material; corruption
	// anywhere else is provably stale.
	for _, ext := range cs.Logs {
		live := make(map[arch.LineAddr]bool)
		for _, slot := range wal.LiveRecordSlots(ext.Base, ext.Size, ext.Head, ext.Tail) {
			live[slot] = true
		}
		rep.LiveRecords += len(live)
		for off := uint64(0); off+wal.RecordBytes <= ext.Size; off += wal.RecordBytes {
			slot := arch.LineAddr(ext.Base + off)
			if covered[slot] != nil {
				// The record is still open (or closing) in the LH-WPQ:
				// undo comes from there; any header bytes at the slot
				// are a stale leftover.
				continue
			}
			isLive := live[slot]
			if !cs.Image.Has(slot) {
				if isLive {
					fatal = append(fatal, Corruption{
						Class: ClassMissingHeader, Severity: SeverityFatal, Line: slot,
						RID: arch.NoRID, Reason: "live record slot holds no header",
					})
				}
				continue
			}
			h, perr := wal.ParseHeader(cs.Image.Read(slot))
			if perr != nil {
				switch {
				case isLive:
					fatal = append(fatal, Corruption{
						Class: ClassTornHeader, Severity: SeverityFatal, Line: slot,
						RID: arch.NoRID, Reason: "live record header invalid: " + perr.Error(),
					})
				case !errors.Is(perr, wal.ErrNotHeader):
					// Header-like garbage in freed space: note and move on.
					rep.Discarded = append(rep.Discarded, Corruption{
						Class: ClassStaleCorrupt, Severity: SeverityDiscardable, Line: slot,
						RID: arch.NoRID, Reason: "corrupt header bytes in freed log space: " + perr.Error(),
					})
				}
				continue
			}
			rep.RecordsScanned++
			if !uncommitted[h.RID] {
				if isLive {
					// A freed region's stale header sits where a live
					// record's header must be: the live header write was
					// lost.
					fatal = append(fatal, Corruption{
						Class: ClassMissingHeader, Severity: SeverityFatal, Line: slot, RID: h.RID,
						Reason: "live record slot holds a committed region's stale header",
					})
				}
				continue
			}
			// Valid header of an uncommitted region: its entries must be
			// present and match the record's combined payload checksum.
			damaged := false
			crc := uint32(0)
			for i := range h.DataLines {
				ll := wal.EntryLine(slot, i)
				if !cs.Image.Has(ll) {
					fatal = append(fatal, Corruption{
						Class: ClassMissingEntry, Severity: SeverityFatal, Line: ll, RID: h.RID,
						Reason: "log entry listed by a persisted header never reached media",
					})
					damaged = true
					break
				}
				crc = wal.ChecksumUpdate(crc, cs.Image.Read(ll))
			}
			if !damaged && h.HasPayloadCRC && crc != h.PayloadCRC {
				fatal = append(fatal, Corruption{
					Class: ClassTornEntry, Severity: SeverityFatal, Line: slot, RID: h.RID,
					Reason: "record payload does not match the header's checksum",
				})
				damaged = true
			}
			if damaged {
				continue
			}
			for i, dl := range h.DataLines {
				add(h.RID, dl, wal.EntryLine(slot, i))
			}
		}
	}

	if len(fatal) > 0 {
		sort.Slice(fatal, func(i, j int) bool { return fatal[i].Line < fatal[j].Line })
		return nil, &CorruptionError{Fatal: fatal}
	}
	return logs, nil
}

// collectLegacy is the unhardened collector (pre-checksum decode, silent
// skips) kept behind Options.SkipValidation for the checker's
// broken-recovery demonstration.
func collectLegacy(cs *core.CrashState, uncommitted map[arch.RID]bool, rep *Report) map[arch.RID]*regionLog {
	logs := make(map[arch.RID]*regionLog)
	add := func(rid arch.RID, data, log arch.LineAddr) {
		rl := logs[rid]
		if rl == nil {
			rl = &regionLog{rid: rid}
			logs[rid] = rl
		}
		rl.entries = append(rl.entries, undoEntry{dataLine: data, logLine: log})
	}

	for _, ext := range cs.Logs {
		for off := uint64(0); off+arch.LineSize <= ext.Size; off += arch.LineSize {
			line := arch.LineAddr(ext.Base + off)
			if !cs.Image.Has(line) {
				continue
			}
			rid, dataLines, ok := wal.DecodeHeaderLegacy(cs.Image.Read(line))
			if !ok {
				continue
			}
			rep.RecordsScanned++
			if !uncommitted[rid] {
				continue // stale header of a committed region
			}
			for i, dl := range dataLines {
				logLine := wal.EntryLine(line, i)
				if cs.Image.Has(logLine) {
					add(rid, dl, logLine)
				}
			}
		}
	}

	for _, h := range cs.Headers {
		if !uncommitted[h.RID] {
			continue
		}
		for i, dl := range h.DataLines {
			if cs.Image.Has(h.LogLines[i]) {
				add(h.RID, dl, h.LogLines[i])
			}
		}
	}
	return logs
}

// happensBefore topologically sorts the uncommitted regions so that for
// every dependence edge A -> B (B depends on A), A precedes B. Edges to
// committed regions are ignored (their data is durable).
func happensBefore(deps []core.DepSnapshot) ([]arch.RID, error) {
	present := make(map[arch.RID]bool, len(deps))
	for _, d := range deps {
		present[d.RID] = true
	}
	indeg := make(map[arch.RID]int, len(deps))
	succ := make(map[arch.RID][]arch.RID)
	for _, d := range deps {
		if _, ok := indeg[d.RID]; !ok {
			indeg[d.RID] = 0
		}
		for _, dep := range d.Deps {
			if !present[dep] {
				continue
			}
			succ[dep] = append(succ[dep], d.RID)
			indeg[d.RID]++
		}
	}

	ready := make([]arch.RID, 0, len(indeg))
	for rid, n := range indeg {
		if n == 0 {
			ready = append(ready, rid)
		}
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })

	var order []arch.RID
	for len(ready) > 0 {
		rid := ready[0]
		ready = ready[1:]
		order = append(order, rid)
		next := succ[rid]
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		for _, s := range next {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(order) != len(indeg) {
		return nil, fmt.Errorf("recovery: dependence cycle among %d uncommitted regions", len(indeg)-len(order))
	}
	return order, nil
}

// DebugRestore installs an observer over undo applications (nil to clear);
// used by debugging tools.
func DebugRestore(fn func(rid arch.RID, dataLine, logLine arch.LineAddr, old []byte)) {
	debugRestore = fn
}
