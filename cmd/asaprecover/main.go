// Command asaprecover demonstrates ASAP's crash recovery (§5.5): it runs
// a multi-threaded counter-and-marker workload, injects a power failure at
// the requested cycle, recovers the persisted image, and verifies that the
// result is an exact prefix of the execution — every committed region's
// writes present, every uncommitted region's writes rolled back, in
// dependence order.
package main

import (
	"flag"
	"fmt"
	"os"

	"asap"
)

func main() {
	crashAt := flag.Uint64("crash", 8000, "crash injection cycle")
	threads := flag.Int("threads", 3, "worker threads")
	incs := flag.Int("incs", 10, "increments per thread")
	save := flag.String("save", "", "write the crash state to this file instead of recovering")
	load := flag.String("load", "", "recover a crash state previously written with -save")
	flag.Parse()

	if *load != "" {
		recoverFromFile(*load)
		return
	}

	cfg := asap.DefaultConfig()
	cfg.Cores = 4
	cfg.MemoryControllers, cfg.ChannelsPerMC = 1, 2
	cfg.WPQEntries = 4
	cfg.PMLatencyMultiplier = 16 // slow PM keeps regions in flight
	sys, err := asap.NewSystem(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	counter := sys.Malloc(64)
	maxInc := *threads * *incs
	markers := sys.Malloc(64 * (maxInc + 1))
	var mu asap.Mutex
	var crash *asap.CrashState

	for w := 0; w < *threads; w++ {
		sys.Spawn("worker", func(t *asap.Thread) {
			for i := 0; i < *incs; i++ {
				if crash != nil {
					return
				}
				mu.Lock(t)
				t.Begin()
				v := t.LoadUint64(counter) + 1
				t.StoreUint64(counter, v)
				t.StoreUint64(markers+64*v, v)
				t.End()
				mu.Unlock(t)
				t.Compute(25)
				if t.Now() >= *crashAt && crash == nil {
					crash, _ = sys.Crash()
					return
				}
			}
			t.Drain()
		})
	}
	sys.Run()

	if crash == nil {
		fmt.Println("run completed before the crash point; re-run with a smaller -crash")
		crash, _ = sys.Crash()
	}

	fmt.Printf("crashed at cycle %d\n", sys.Now())
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := crash.Save(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("crash state saved to %s; recover with -load %s\n", *save, *save)
		return
	}
	rep, err := crash.Recover()
	if err != nil {
		fmt.Fprintln(os.Stderr, "recovery failed:", err)
		os.Exit(1)
	}
	fmt.Printf("recovery: %d uncommitted regions rolled back, %d undo entries applied\n",
		rep.Uncommitted, rep.EntriesRestored)

	c := crash.ReadUint64(counter)
	fmt.Printf("recovered counter = %d of %d increments\n", c, maxInc)
	ok := true
	for v := uint64(1); v <= uint64(maxInc); v++ {
		got := crash.ReadUint64(markers + 64*v)
		if v <= c && got != v {
			fmt.Printf("  VIOLATION: marker[%d] = %d, want %d\n", v, got, v)
			ok = false
		}
		if v > c && got != 0 {
			fmt.Printf("  VIOLATION: marker[%d] = %d should be rolled back\n", v, got)
			ok = false
		}
	}
	if ok {
		fmt.Println("state is an exact consistent prefix: atomic durability held")
	} else {
		os.Exit(1)
	}
}

// recoverFromFile loads a saved crash state — as a fresh process after the
// power failure would — and repairs it.
func recoverFromFile(path string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	crash, err := asap.LoadCrashState(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep, err := crash.Recover()
	if err != nil {
		fmt.Fprintln(os.Stderr, "recovery failed:", err)
		os.Exit(1)
	}
	fmt.Printf("recovered from %s: %d uncommitted regions rolled back, %d undo entries applied\n",
		path, rep.Uncommitted, rep.EntriesRestored)
}
