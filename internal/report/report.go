// Package report renders experiment tables as horizontal ASCII bar charts,
// the closest text equivalent of the paper's grouped-bar figures. It is
// pure presentation: it consumes the experiment package's Table values.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Chartable is the slice of experiment.Table that rendering needs,
// declared structurally so report does not import experiment.
type Chartable interface {
	ChartTitle() string
	ChartColumns() []string
	ChartRows() []ChartRow
}

// ChartRow is one group of bars.
type ChartRow struct {
	Name   string
	Values []float64
}

// Options tunes rendering.
type Options struct {
	// Width is the maximum bar length in characters (default 40).
	Width int
	// Baseline draws a reference tick at this value when > 0 (e.g. 1.0
	// for normalized figures).
	Baseline float64
}

// Render draws grouped horizontal bars, one group per row, one bar per
// column, scaled to the table's maximum value.
func Render(t Chartable, opt Options) string {
	if opt.Width <= 0 {
		opt.Width = 40
	}
	cols := t.ChartColumns()
	rows := t.ChartRows()

	maxVal := 0.0
	for _, r := range rows {
		for _, v := range r.Values {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && v > maxVal {
				maxVal = v
			}
		}
	}
	if maxVal == 0 {
		maxVal = 1
	}
	labelWidth := 0
	for _, c := range cols {
		if len(c) > labelWidth {
			labelWidth = len(c)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.ChartTitle())
	for _, r := range rows {
		fmt.Fprintf(&b, "%s\n", r.Name)
		for i, v := range r.Values {
			name := ""
			if i < len(cols) {
				name = cols[i]
			}
			fmt.Fprintf(&b, "  %-*s %s %.3f\n", labelWidth, name, bar(v, maxVal, opt), v)
		}
	}
	if opt.Baseline > 0 && opt.Baseline <= maxVal {
		pos := int(opt.Baseline / maxVal * float64(opt.Width))
		fmt.Fprintf(&b, "  %-*s %s^ %.1f\n", labelWidth, "", strings.Repeat(" ", pos), opt.Baseline)
	}
	return b.String()
}

// bar renders one value as a filled bar with a baseline tick.
func bar(v, maxVal float64, opt Options) string {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		v = 0
	}
	n := int(math.Round(v / maxVal * float64(opt.Width)))
	if n > opt.Width {
		n = opt.Width
	}
	cells := make([]byte, opt.Width)
	for i := range cells {
		switch {
		case i < n:
			cells[i] = '#'
		default:
			cells[i] = ' '
		}
	}
	if opt.Baseline > 0 && opt.Baseline <= maxVal {
		pos := int(opt.Baseline / maxVal * float64(opt.Width))
		if pos >= 0 && pos < opt.Width && cells[pos] == ' ' {
			cells[pos] = '|'
		}
	}
	return string(cells)
}
