package report

import (
	"fmt"
	"strings"
)

// CycleData is the cycle-accounting table: for each column (one scheme or
// one configuration) the share of all simulated thread-cycles charged to
// each bucket. Declared here structurally — like Chartable — so report
// stays a pure presentation layer.
type CycleData struct {
	Title   string
	Cols    []string // one per scheme/configuration
	Buckets []string // bucket names, row order
	// Share[b][c] is the fraction (0..1) of column c's cycles in bucket b.
	Share [][]float64
	// TotalCycles[c] is column c's all-thread cycle total.
	TotalCycles []uint64
}

// CycleAccounting renders the percent-of-cycles table: buckets down,
// schemes across. Buckets that are zero in every column are omitted; the
// per-column totals appear in the footer.
func CycleAccounting(d CycleData) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", d.Title)

	nameW := len("total cycles")
	for _, bk := range d.Buckets {
		if len(bk) > nameW {
			nameW = len(bk)
		}
	}
	colW := 9
	for _, c := range d.Cols {
		if len(c) > colW {
			colW = len(c)
		}
	}

	fmt.Fprintf(&b, "%-*s", nameW, "")
	for _, c := range d.Cols {
		fmt.Fprintf(&b, " %*s", colW, c)
	}
	b.WriteByte('\n')

	for bi, bk := range d.Buckets {
		all := 0.0
		for ci := range d.Cols {
			all += d.Share[bi][ci]
		}
		if all == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-*s", nameW, bk)
		for ci := range d.Cols {
			fmt.Fprintf(&b, " %*.1f%%", colW-1, 100*d.Share[bi][ci])
		}
		b.WriteByte('\n')
	}

	fmt.Fprintf(&b, "%-*s", nameW, "total cycles")
	for _, tc := range d.TotalCycles {
		fmt.Fprintf(&b, " %*d", colW, tc)
	}
	b.WriteByte('\n')
	return b.String()
}
