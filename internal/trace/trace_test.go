package trace

import (
	"strings"
	"testing"

	"asap/internal/arch"
)

func TestRingRetainsMostRecent(t *testing.T) {
	b := NewBuffer(4)
	for i := 0; i < 10; i++ {
		b.Emit(Event{At: uint64(i), Kind: LPOIssue})
	}
	evs := b.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d, want 4", len(evs))
	}
	for i, e := range evs {
		if e.At != uint64(6+i) {
			t.Fatalf("event %d at %d, want %d (oldest-first)", i, e.At, 6+i)
		}
	}
	if b.Total() != 10 {
		t.Fatalf("total = %d", b.Total())
	}
}

func TestFilterAndOfRegion(t *testing.T) {
	b := NewBuffer(16)
	r1 := arch.MakeRID(0, 1)
	r2 := arch.MakeRID(0, 2)
	b.Emit(Event{At: 1, Kind: RegionBegin, RID: r1})
	b.Emit(Event{At: 2, Kind: LPOIssue, RID: r1, Line: 64})
	b.Emit(Event{At: 3, Kind: RegionBegin, RID: r2})
	b.Emit(Event{At: 4, Kind: DepAdd, RID: r2, Aux: uint64(r1)})
	if got := b.Filter(RegionBegin); len(got) != 2 {
		t.Fatalf("Filter(RegionBegin) = %d events", len(got))
	}
	// OfRegion matches both direct RID and Aux references.
	if got := b.OfRegion(r1); len(got) != 3 {
		t.Fatalf("OfRegion(r1) = %d events, want 3", len(got))
	}
}

func TestKindStrings(t *testing.T) {
	for k := RegionBegin; k <= LogOverflow; k++ {
		if strings.HasPrefix(k.String(), "kind(") {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if Kind(200).String() != "kind(200)" {
		t.Fatal("unknown kind should fall back")
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: 42, Kind: LPOAccept, RID: arch.MakeRID(1, 3), Line: 128, Aux: 7}
	s := e.String()
	for _, want := range []string{"42", "lpo.accept", "T1.R3", "0x80", "0x7"} {
		if !strings.Contains(s, want) {
			t.Fatalf("event string %q missing %q", s, want)
		}
	}
}

func TestZeroCapacityDefaults(t *testing.T) {
	b := NewBuffer(0)
	b.Emit(Event{At: 1})
	if len(b.Events()) != 1 {
		t.Fatal("default-capacity buffer unusable")
	}
}
