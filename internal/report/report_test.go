package report

import (
	"math"
	"strings"
	"testing"
)

type fakeTable struct {
	title string
	cols  []string
	rows  []ChartRow
}

func (f fakeTable) ChartTitle() string     { return f.title }
func (f fakeTable) ChartColumns() []string { return f.cols }
func (f fakeTable) ChartRows() []ChartRow  { return f.rows }

func sample() fakeTable {
	return fakeTable{
		title: "demo",
		cols:  []string{"ASAP", "HWUndo"},
		rows: []ChartRow{
			{Name: "Q", Values: []float64{2.0, 1.0}},
			{Name: "HM", Values: []float64{4.0, 2.0}},
		},
	}
}

func TestRenderContainsEverything(t *testing.T) {
	out := Render(sample(), Options{Width: 20})
	for _, want := range []string{"demo", "Q", "HM", "ASAP", "HWUndo", "2.000", "4.000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestBarsScaleToMax(t *testing.T) {
	out := Render(sample(), Options{Width: 20})
	lines := strings.Split(out, "\n")
	var maxBar, halfBar int
	for _, l := range lines {
		n := strings.Count(l, "#")
		if strings.Contains(l, "4.000") {
			maxBar = n
		}
		if strings.Contains(l, "2.000") && halfBar == 0 {
			halfBar = n
		}
	}
	if maxBar != 20 {
		t.Fatalf("max bar = %d, want full width 20", maxBar)
	}
	if halfBar != 10 {
		t.Fatalf("half bar = %d, want 10", halfBar)
	}
}

func TestBaselineTick(t *testing.T) {
	out := Render(sample(), Options{Width: 20, Baseline: 1.0})
	if !strings.Contains(out, "|") {
		t.Fatalf("baseline tick missing:\n%s", out)
	}
	if !strings.Contains(out, "^ 1.0") {
		t.Fatalf("baseline legend missing:\n%s", out)
	}
}

func TestRenderHandlesDegenerateValues(t *testing.T) {
	f := fakeTable{
		title: "bad",
		cols:  []string{"x"},
		rows: []ChartRow{
			{Name: "nan", Values: []float64{math.NaN()}},
			{Name: "inf", Values: []float64{math.Inf(1)}},
			{Name: "neg", Values: []float64{-3}},
			{Name: "zero", Values: []float64{0}},
		},
	}
	out := Render(f, Options{})
	if out == "" || strings.Count(out, "\n") < 5 {
		t.Fatalf("degenerate table not rendered:\n%s", out)
	}
}

func TestDefaultWidth(t *testing.T) {
	out := Render(sample(), Options{})
	if !strings.Contains(out, strings.Repeat("#", 40)) {
		t.Fatal("default width 40 not applied to the max bar")
	}
}
