package metrics

import (
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return b.String()
}

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a test counter")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("value = %v, want 3.5", got)
	}
	c.Add(-1) // ignored: counters are monotonic
	if got := c.Value(); got != 3.5 {
		t.Fatalf("value after negative add = %v, want 3.5", got)
	}
	out := render(t, r)
	want := "# HELP test_total a test counter\n# TYPE test_total counter\ntest_total 3.5\n"
	if out != want {
		t.Fatalf("render = %q, want %q", out, want)
	}
}

func TestCounterReregisterReturnsSame(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "h")
	b := r.Counter("x_total", "h")
	if a != b {
		t.Fatal("re-registration should return the same counter")
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind conflict")
		}
	}()
	r.Gauge("x_total", "h")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid name")
		}
	}()
	r.Counter("bad-name", "h")
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "queue depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %v, want 5", got)
	}
	if !strings.Contains(render(t, r), "depth 5\n") {
		t.Fatalf("render missing gauge sample: %q", render(t, r))
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := 3.0
	r.GaugeFunc("live", "scrape-time value", func() float64 { return v })
	if !strings.Contains(render(t, r), "live 3\n") {
		t.Fatal("gauge func not rendered")
	}
	v = 9
	if !strings.Contains(render(t, r), "live 9\n") {
		t.Fatal("gauge func should be read at scrape time")
	}
}

func TestCounterVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("req_total", "requests", "route", "code")
	v.With("/api/v1/jobs", "200").Add(3)
	v.With("/metrics", "200").Inc()
	v.With("/api/v1/jobs", "404").Inc()
	out := render(t, r)
	for _, want := range []string{
		`req_total{route="/api/v1/jobs",code="200"} 3`,
		`req_total{route="/api/v1/jobs",code="404"} 1`,
		`req_total{route="/metrics",code="200"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Same label values → same child.
	if v.With("/metrics", "200").Value() != 1 {
		t.Fatal("label lookup not stable")
	}
}

func TestLabelArityPanics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("x_total", "h", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong label arity")
		}
	}()
	v.With("only-one")
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("esc_total", "h", "l").With(`quo"te\slash` + "\nnl").Inc()
	out := render(t, r)
	want := `esc_total{l="quo\"te\\slash\nnl"} 1`
	if !strings.Contains(out, want+"\n") {
		t.Fatalf("escaping wrong:\n%s", out)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if h.Sum() != 105 {
		t.Fatalf("sum = %v, want 105", h.Sum())
	}
	out := render(t, r)
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="1"} 1`,
		`lat_seconds_bucket{le="2"} 2`,
		`lat_seconds_bucket{le="4"} 3`,
		`lat_seconds_bucket{le="+Inf"} 4`,
		"lat_seconds_sum 105",
		"lat_seconds_count 4",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBoundaryValueGoesInLowerBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("b_seconds", "h", []float64{1, 2})
	h.Observe(1) // le="1" is inclusive
	out := render(t, r)
	if !strings.Contains(out, `b_seconds_bucket{le="1"} 1`+"\n") {
		t.Fatalf("v == bound must land in that bucket:\n%s", out)
	}
}

func TestHistogramVec(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("hv_seconds", "h", []float64{1}, "route")
	v.With("/a").Observe(0.5)
	v.With("/b").Observe(2)
	out := render(t, r)
	for _, want := range []string{
		`hv_seconds_bucket{route="/a",le="1"} 1`,
		`hv_seconds_bucket{route="/b",le="1"} 0`,
		`hv_seconds_bucket{route="/b",le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestPow2Buckets(t *testing.T) {
	got := Pow2Buckets(0.25, 5)
	want := []float64{0.25, 0.5, 1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestFamiliesSortedByName(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz_total", "z")
	r.Counter("aaa_total", "a")
	out := render(t, r)
	if strings.Index(out, "aaa_total") > strings.Index(out, "zzz_total") {
		t.Fatalf("families not sorted:\n%s", out)
	}
}

func TestNilInstrumentsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(1)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
}

func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "h")
	v := r.CounterVec("concv_total", "h", "i")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				v.With(strconv.Itoa(i % 4)).Inc()
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %v, want 8000", c.Value())
	}
	var total float64
	for i := 0; i < 4; i++ {
		total += v.With(strconv.Itoa(i)).Value()
	}
	if total != 8000 {
		t.Fatalf("vec total = %v, want 8000", total)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total", "h").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "h_total 1\n") {
		t.Fatalf("handler body missing sample: %q", buf[:n])
	}
}
