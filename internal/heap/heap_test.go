package heap

import (
	"bytes"
	"testing"
	"testing/quick"

	"asap/internal/arch"
)

func TestAllocAlignmentAndWindows(t *testing.T) {
	h := New()
	p := h.Alloc(10, true)
	if p%arch.LineSize != 0 {
		t.Fatalf("persistent alloc %#x not line-aligned", p)
	}
	if !h.IsPersistentAddr(p) {
		t.Fatal("persistent alloc outside persistent window")
	}
	v := h.Alloc(10, false)
	if h.IsPersistentAddr(v) {
		t.Fatal("volatile alloc inside persistent window")
	}
}

func TestAllocDistinct(t *testing.T) {
	h := New()
	a := h.Alloc(64, true)
	b := h.Alloc(64, true)
	if a == b {
		t.Fatal("overlapping allocations")
	}
	if b-a < 64 {
		t.Fatalf("allocations too close: %#x %#x", a, b)
	}
}

func TestFreeRecyclesPersistent(t *testing.T) {
	h := New()
	a := h.Alloc(100, true)
	h.Write(a, []byte{1, 2, 3})
	h.Free(a)
	b := h.Alloc(100, true)
	if a != b {
		t.Fatalf("free list not recycled: %#x then %#x", a, b)
	}
	// Recycled memory keeps its old contents (malloc semantics): zeroing
	// would be an unlogged persistent write, invisible to the WAL.
	buf := make([]byte, 3)
	h.Read(b, buf)
	if !bytes.Equal(buf, []byte{1, 2, 3}) {
		t.Fatal("recycled allocation unexpectedly scrubbed")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	h := New()
	f := func(off uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		addr := PersistentBase + uint64(off)
		h.Write(addr, data)
		got := make([]byte, len(data))
		h.Read(addr, got)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCrossPageWrite(t *testing.T) {
	h := New()
	addr := PersistentBase + pageSize - 4
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	h.Write(addr, data)
	got := make([]byte, 8)
	h.Read(addr, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("cross-page round trip: got %v", got)
	}
}

func TestU64Helpers(t *testing.T) {
	h := New()
	addr := h.Alloc(8, true)
	h.WriteU64(addr, 0xdeadbeefcafe)
	if got := h.ReadU64(addr); got != 0xdeadbeefcafe {
		t.Fatalf("ReadU64 = %#x", got)
	}
}

func TestReadLine(t *testing.T) {
	h := New()
	addr := h.Alloc(64, true)
	h.WriteU64(addr+8, 42)
	lineBuf := h.ReadLine(arch.LineOf(addr + 8))
	if got := lineBuf[8]; got != 42 {
		t.Fatalf("ReadLine byte 8 = %d, want 42", got)
	}
	if len(lineBuf) != arch.LineSize {
		t.Fatalf("ReadLine len = %d", len(lineBuf))
	}
}

func TestIsPersistentLine(t *testing.T) {
	h := New()
	if h.IsPersistentLine(arch.LineAddr(PersistentBase - 64)) {
		t.Fatal("line below window marked persistent")
	}
	if !h.IsPersistentLine(arch.LineAddr(PersistentBase)) {
		t.Fatal("first persistent line not marked")
	}
	if h.IsPersistentLine(arch.LineAddr(VolatileBase)) {
		t.Fatal("volatile base marked persistent")
	}
}

func TestSizeOf(t *testing.T) {
	h := New()
	a := h.Alloc(100, true)
	if h.SizeOf(a) != 128 {
		t.Fatalf("SizeOf = %d, want 128 (rounded to lines)", h.SizeOf(a))
	}
	h.Free(a)
	if h.SizeOf(a) != 0 {
		t.Fatal("SizeOf after free should be 0")
	}
}

func TestZeroSizeAlloc(t *testing.T) {
	h := New()
	a := h.Alloc(0, true)
	b := h.Alloc(0, true)
	if a == b {
		t.Fatal("zero-size allocations must still be distinct")
	}
}
