// Package obs is the simulator's observability layer: a stall-attribution
// profiler that charges every simulated thread-cycle to the hardware
// structure responsible for it, a sampled time-series recorder for the
// occupancy gauges those structures expose, and exporters (Perfetto
// timeline, CSV/JSON series, cycle-accounting tables) that turn both into
// artifacts.
//
// Everything here is passive and nil-safe: an unattached profiler or
// recorder costs a pointer comparison at most, never perturbs simulated
// time, and never injects events into the kernel queue — a run with
// observability attached is cycle-for-cycle identical to one without.
package obs

// Bucket classifies what a simulated thread's cycles were spent on. Every
// cycle of every thread is charged to exactly one bucket: Compute unless
// the protocol brackets the time as a wait on a specific structure.
type Bucket uint8

const (
	// Compute is the default: cache-access latency, instruction work, and
	// any time not bracketed as a wait.
	Compute Bucket = iota
	// FenceWait is time blocked in asap_fence (§5.2) — or, for the
	// synchronous baselines, in the end-of-region persist drain that plays
	// the same role on their critical path.
	FenceWait
	// WPQFull is back-pressure from the persist window: the baselines'
	// bounded outstanding-persist tracking (§6.3) stalling a store.
	WPQFull
	// LHWPQFull is a first-write stalled because the region's home LH-WPQ
	// has no free header entry (§5.5).
	LHWPQFull
	// DepSlot is a read/write stalled because the region's Dep slots are
	// full and the depended-on region has not committed (§4.6.3).
	DepSlot
	// CLPtr is a write stalled because all CLPtr slots of the region's CL
	// List entry are busy, waiting for a forced DPO to complete (§4.6.2).
	CLPtr
	// LogOverflow is the log-overflow exception penalty and buffer regrow
	// (§4.4).
	LogOverflow
	// BeginWait is asap_begin stalled for a free CL List or Dependence
	// List entry (§4.5) — entry exhaustion, as opposed to slot exhaustion.
	BeginWait
	// LockWait is contention on a simulated mutex (workload-level
	// critical sections, §4.2).
	LockWait
	// LockedSet is a cache access stalled because every way of a needed
	// set is pinned by LockBits (undo material still in flight, §4.6.1).
	LockedSet
	// Drain is time blocked in a drain barrier waiting for outstanding
	// regions to commit and the fabric to quiesce.
	Drain

	// NumBuckets is the bucket count; arrays indexed by Bucket use it.
	NumBuckets
)

var bucketNames = [NumBuckets]string{
	Compute:     "compute",
	FenceWait:   "fence-wait",
	WPQFull:     "wpq-full",
	LHWPQFull:   "lhwpq-full",
	DepSlot:     "dep-slot",
	CLPtr:       "clptr",
	LogOverflow: "log-overflow",
	BeginWait:   "begin-wait",
	LockWait:    "lock-wait",
	LockedSet:   "locked-set",
	Drain:       "drain",
}

// String names the bucket.
func (b Bucket) String() string {
	if int(b) < len(bucketNames) {
		return bucketNames[b]
	}
	return "bucket(?)"
}

// BucketNames returns the bucket names in index order.
func BucketNames() []string {
	out := make([]string, NumBuckets)
	copy(out, bucketNames[:])
	return out
}
