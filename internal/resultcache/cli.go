package resultcache

import (
	"fmt"
	"io"
)

// OpenCLI is the shared command-line wiring: resolve the code version,
// open dir, and return (store, version). A disabled cache (empty dir,
// explicit bypass, or an unstamped/dirty build with no env override)
// returns (nil, "") after explaining itself on w; only an actual open
// failure is an error.
func OpenCLI(w io.Writer, tool, dir string, bypass bool) (*Store, string, error) {
	if dir == "" || bypass {
		return nil, "", nil
	}
	ver, ok := CodeVersion()
	if !ok {
		fmt.Fprintf(w, "%s: result cache disabled: no VCS stamp or dirty worktree (set %s to override)\n",
			tool, CodeVersionEnv)
		return nil, "", nil
	}
	s, err := Open(dir)
	if err != nil {
		return nil, "", err
	}
	return s, ver, nil
}
