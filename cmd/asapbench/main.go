// Command asapbench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	asapbench -experiment fig7           # one figure, quick scale
//	asapbench -experiment all -full      # everything, paper scale
//
// Experiments: fig1 fig7 fig8 fig9a fig9b fig10 lhwpq area config all.
package main

import (
	"flag"
	"fmt"
	"os"

	"asap/internal/area"
	"asap/internal/experiment"
	"asap/internal/machine"
	"asap/internal/report"
)

func main() {
	which := flag.String("experiment", "all", "fig1|fig7|fig8|fig9a|fig9b|fig10|lhwpq|area|config|ablation-coalesce|ablation-structs|corun|design|fences|lifetime|numa|scaling|tail|all")
	full := flag.Bool("full", false, "paper-scale runs (slower)")
	chart := flag.Bool("chart", false, "render tables as ASCII bar charts")
	flag.Parse()

	scale := experiment.QuickScale()
	if *full {
		scale = experiment.FullScale()
	}
	show := func(t *experiment.Table) {
		if *chart {
			fmt.Println(report.Render(t, report.Options{Baseline: 1}))
			return
		}
		fmt.Println(t)
	}

	run := map[string]func(){
		"fig1": func() { show(experiment.Fig1(scale)) },
		"fig7": func() {
			show(experiment.Fig7(scale, 64))
			show(experiment.Fig7(scale, 2048))
		},
		"fig8":  func() { show(experiment.Fig8(scale, 64)) },
		"fig9a": func() { show(experiment.Fig9a(scale)) },
		"fig9b": func() { show(experiment.Fig9b(scale)) },
		"fig10": func() {
			for _, t := range experiment.Fig10(scale) {
				show(t)
			}
		},
		"lhwpq":  func() { show(experiment.Sec74(scale)) },
		"area":   func() { fmt.Println(area.Report(area.Default())) },
		"config": func() { printConfig() },
		"ablation-coalesce": func() {
			show(experiment.AblationCoalesce(scale, "Q"))
		},
		"ablation-structs": func() {
			show(experiment.AblationStructures(scale, "Q"))
		},
		"corun":    func() { show(experiment.CoRunning(scale)) },
		"design":   func() { show(experiment.DesignChoice(scale)) },
		"fences":   func() { show(experiment.FenceSweep(scale)) },
		"lifetime": func() { show(experiment.Lifetime(scale)) },
		"numa":     func() { show(experiment.NUMA(scale)) },
		"tail":     func() { show(experiment.TailLatency(scale)) },
		"scaling":  func() { show(experiment.Scaling(scale)) },
	}

	if *which == "all" {
		for _, name := range []string{"config", "area", "fig1", "fig7", "fig8", "fig9a", "fig9b", "fig10", "lhwpq",
			"ablation-coalesce", "ablation-structs", "corun", "design", "fences", "lifetime", "numa", "tail", "scaling"} {
			fmt.Printf("==== %s ====\n", name)
			run[name]()
		}
		return
	}
	fn, ok := run[*which]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *which)
		os.Exit(2)
	}
	fn()
}

func printConfig() {
	cfg := machine.DefaultConfig()
	fmt.Println("Table 2: system configuration")
	fmt.Printf("  Cores                 %d\n", cfg.Cores)
	fmt.Printf("  L1                    %d sets x %d ways, %d cycles\n", cfg.Caches.L1.Sets, cfg.Caches.L1.Ways, cfg.Caches.L1.Latency)
	fmt.Printf("  L2                    %d sets x %d ways, %d cycles\n", cfg.Caches.L2.Sets, cfg.Caches.L2.Ways, cfg.Caches.L2.Latency)
	fmt.Printf("  L3                    %d sets x %d ways, %d cycles\n", cfg.Caches.L3.Sets, cfg.Caches.L3.Ways, cfg.Caches.L3.Latency)
	fmt.Printf("  Memory controllers    %d x %d channels\n", cfg.Mem.Controllers, cfg.Mem.ChannelsPerMC)
	fmt.Printf("  WPQ                   %d entries/channel\n", cfg.Mem.WPQEntries)
	fmt.Printf("  LH-WPQ                %d entries/channel\n", cfg.Mem.LHWPQEntries)
	fmt.Printf("  DRAM read/write       %d/%d cycles\n", cfg.Mem.DRAMReadCycles, cfg.Mem.DRAMWriteCycles)
	fmt.Printf("  PM read/write         %d/%d cycles (battery-backed DRAM) x %d\n", cfg.Mem.PMReadCycles, cfg.Mem.PMWriteCycles, cfg.Mem.PMLatencyMult)
	fmt.Println()
}
