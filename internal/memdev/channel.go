package memdev

import (
	"asap/internal/arch"
	"asap/internal/sim"
	"asap/internal/stats"
)

// Channel is one memory channel: a WPQ (persistence domain), an arrival
// queue for operations waiting on a free WPQ slot, a drain engine writing
// accepted entries to the PM device, and the channel's slice of the LH-WPQ.
type Channel struct {
	id  int
	cfg *Config
	k   *sim.Kernel
	st  *stats.Set
	pm  *Image

	queue         []*Entry // accepted, in FIFO drain order (droppable)
	inflight      *Entry   // entry whose device write has issued
	pickupPending bool     // a scheduled issue awaits its IssueDelay
	arrivals      []arrival
	pool          *entryPool // fabric-wide recycler for drained/dropped entries

	lh *LHWPQ
	fi FaultInjector // consulted at ADR flush; nil = ideal ADR

	// cells are the set's pre-resolved hot counters and histograms:
	// accept/drain/drop fire per persist operation.
	cells *stats.Cells

	// pickupFn and finishFn are the drain engine's event callbacks,
	// created once per channel: persists are the event hot loop, and
	// per-op closures would otherwise dominate steady-state allocation.
	// A single cached finishFn is sound because at most one device
	// write is in flight per channel.
	pickupFn func()
	finishFn func()
}

type arrival struct {
	e        *Entry
	onAccept func(at uint64)
}

func newChannel(id int, cfg *Config, k *sim.Kernel, st *stats.Set, pm *Image, pool *entryPool) *Channel {
	c := &Channel{
		id:   id,
		cfg:  cfg,
		k:    k,
		st:   st,
		pm:   pm,
		pool: pool,
		lh:   newLHWPQ(cfg.LHWPQEntries),
	}
	c.cells = st.Cells()
	c.pickupFn = func() {
		c.pickupPending = false
		c.startDrain()
	}
	c.finishFn = c.finishDrain
	return c
}

// ID returns the channel index within the fabric.
func (c *Channel) ID() int { return c.id }

// LH returns this channel's LH-WPQ.
func (c *Channel) LH() *LHWPQ { return c.lh }

// Occupancy returns the number of WPQ slots in use (queued plus in flight).
func (c *Channel) Occupancy() int {
	n := len(c.queue)
	if c.inflight != nil {
		n++
	}
	return n
}

// HasSpace reports whether the WPQ can accept another entry right now.
func (c *Channel) HasSpace() bool { return c.Occupancy() < c.cfg.WPQEntries }

// Waiters returns the number of arrivals stalled waiting for a WPQ slot.
func (c *Channel) Waiters() int { return len(c.arrivals) }

// Arrive presents e to the channel at the current kernel time. If a WPQ
// slot is free the entry is accepted immediately (the persist operation is
// then complete per §4.1) and onAccept fires; otherwise the entry waits in
// the arrival queue and is accepted FIFO as drains free slots. onAccept may
// be nil.
func (c *Channel) Arrive(e *Entry, onAccept func(at uint64)) {
	if len(c.arrivals) == 0 && c.HasSpace() {
		c.accept(e, onAccept)
		return
	}
	*c.cells.WPQStalls++
	c.arrivals = append(c.arrivals, arrival{e: e, onAccept: onAccept})
}

func (c *Channel) accept(e *Entry, onAccept func(at uint64)) {
	e.acceptedAt = c.k.Now()
	c.queue = append(c.queue, e)
	c.cells.WPQDepth.Observe(uint64(c.Occupancy()))
	c.cells.LHWPQDepth.Observe(uint64(c.lh.Len()))
	if onAccept != nil {
		onAccept(c.k.Now())
	}
	c.startDrain()
}

// startDrain schedules the head entry's device write if the device is
// idle. The write command issues no earlier than IssueDelayCycles after
// acceptance; until then the entry stays droppable in the queue.
func (c *Channel) startDrain() {
	if c.inflight != nil || c.pickupPending || len(c.queue) == 0 {
		return
	}
	e := c.queue[0]
	ready := e.acceptedAt + c.cfg.IssueDelayCycles
	if now := c.k.Now(); ready <= now {
		c.issue(e)
		return
	}
	c.pickupPending = true
	c.k.Schedule(ready, c.pickupFn)
}

// issue commits the head entry to the device (no longer droppable).
func (c *Channel) issue(e *Entry) {
	if len(c.queue) == 0 || c.queue[0] != e {
		// The entry was dropped (removed) while awaiting issue; pick the
		// new head instead.
		c.startDrain()
		return
	}
	c.queue = c.queue[1:]
	e.draining = true
	c.inflight = e
	c.k.ScheduleAfter(c.cfg.PMWrite(), c.finishFn)
}

// finishDrain completes the in-flight device write. The entry is read
// from c.inflight (there is at most one) so the scheduled callback needs
// no per-op capture.
func (c *Channel) finishDrain() {
	e := c.inflight
	c.pm.Write(e.Dst, e.Payload)
	*c.cells.PMWrites++
	c.inflight = nil
	c.pool.put(e) // the image holds the bytes now; the entry recycles
	c.admitWaiters()
	c.startDrain()
}

// admitWaiters moves arrivals into freed WPQ slots, FIFO.
func (c *Channel) admitWaiters() {
	for len(c.arrivals) > 0 && c.HasSpace() {
		a := c.arrivals[0]
		c.arrivals[0] = arrival{}
		c.arrivals = c.arrivals[1:]
		c.accept(a.e, a.onAccept)
	}
}

// DropRegionOps removes every still-queued LPO and log-header write
// belonging to region r (LPO dropping, §5.1: a committed region's log will
// never be read, so its pending log writes need not reach PM). Returns the
// number of entries dropped.
func (c *Channel) DropRegionOps(r arch.RID) int {
	return c.dropWhere(func(e *Entry) bool {
		return e.RID == r && (e.Kind == KindLPO || e.Kind == KindLogHeader)
	}, c.cells.LPOsDropped)
}

// DropDPOFor removes one still-queued DPO targeting line (DPO dropping,
// §5.1: a later region's LPO for the line carries the same bytes). Reports
// whether a DPO was found and dropped.
func (c *Channel) DropDPOFor(line arch.LineAddr) bool {
	n := c.dropWhere(func(e *Entry) bool {
		return e.Kind == KindDPO && e.Dst == line && !e.dropped
	}, c.cells.DPOsDropped)
	return n > 0
}

// SupersedeDPO removes any still-queued DPO to line that is about to be
// replaced by a newer write of the same line (used by the redo-logging
// baseline, which filters stale DPOs on commit). Returns dropped count.
func (c *Channel) SupersedeDPO(line arch.LineAddr) int {
	return c.dropWhere(func(e *Entry) bool {
		return e.Kind == KindDPO && e.Dst == line
	}, c.cells.DPOsDropped)
}

// dropWhere removes matching queue-resident entries: the §5.1 dropping
// window. Entries whose device write has issued (inflight) are no longer
// droppable.
func (c *Channel) dropWhere(match func(*Entry) bool, counter *int64) int {
	dropped := 0
	kept := c.queue[:0]
	for _, e := range c.queue {
		if match(e) {
			e.dropped = true
			dropped++
			*counter++
			c.pool.put(e) // never reaches the device; recycle now
			continue
		}
		kept = append(kept, e)
	}
	c.queue = kept
	if dropped > 0 {
		c.admitWaiters()
	}
	return dropped
}

// FlushToImage models ADR on power failure: every accepted entry (queued or
// in flight) is written to the PM image. Arrival-queue entries were never
// accepted by the WPQ, so they are lost — exactly the §4.1 completion rule.
// An installed FaultInjector may reorder, tear, or drop the flushed writes.
func (c *Channel) FlushToImage() {
	entries := c.QueuedEntries()
	if c.fi == nil {
		for _, e := range entries {
			c.pm.Write(e.Dst, e.Payload)
		}
		return
	}
	order := c.fi.FlushOrder(c.id, entries)
	if order == nil {
		order = make([]int, len(entries))
		for i := range order {
			order[i] = i
		}
	}
	for _, i := range order {
		e := entries[i]
		if payload, persist := c.fi.FlushPayload(c.id, e, c.pm.Read(e.Dst)); persist {
			c.pm.Write(e.Dst, payload)
		}
	}
}

// QueuedEntries returns the accepted-but-undrained entries, head first, for
// tests and debugging.
func (c *Channel) QueuedEntries() []*Entry {
	out := make([]*Entry, 0, len(c.queue)+1)
	if c.inflight != nil {
		out = append(out, c.inflight)
	}
	return append(out, c.queue...)
}
