package asap

import (
	"bytes"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 4
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cell := sys.Malloc(64)
	sys.Spawn("w", func(th *Thread) {
		th.Begin()
		th.StoreUint64(cell, 7)
		th.End()
		th.Fence()
		th.Drain()
	})
	sys.Run()
	st := sys.Stats()
	if st["region.committed"] != 1 {
		t.Fatalf("committed = %d", st["region.committed"])
	}
	if st["pm.writes"] == 0 {
		t.Fatal("nothing persisted")
	}
}

func TestEverySchemeConstructs(t *testing.T) {
	for _, s := range append(Schemes(), SchemeSWDPOOnly) {
		cfg := DefaultConfig()
		cfg.Scheme = s
		cfg.Cores = 2
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		cell := sys.Malloc(64)
		sys.Spawn("w", func(th *Thread) {
			th.Begin()
			th.StoreUint64(cell, 1)
			th.End()
			th.Drain()
		})
		sys.Run()
		if sys.SchemeImpl().Name() != string(s) {
			t.Fatalf("scheme name %q != %q", sys.SchemeImpl().Name(), s)
		}
	}
}

func TestUnknownSchemeErrors(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scheme = "bogus"
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("expected error")
	}
}

func TestMutexAndMultiThread(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 4
	sys, _ := NewSystem(cfg)
	counter := sys.Malloc(64)
	var mu Mutex
	for i := 0; i < 4; i++ {
		sys.Spawn("w", func(th *Thread) {
			for j := 0; j < 10; j++ {
				mu.Lock(th)
				th.Begin()
				th.StoreUint64(counter, th.LoadUint64(counter)+1)
				th.End()
				mu.Unlock(th)
			}
			th.Drain()
		})
	}
	sys.Run()
	// Verify through a fresh crash image: everything committed and
	// persisted.
	cs, err := sys.Crash()
	if err != nil {
		t.Fatal(err)
	}
	if got := cs.ReadUint64(counter); got != 40 {
		t.Fatalf("persisted counter = %d, want 40", got)
	}
}

func TestCrashAndRecoverThroughPublicAPI(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 2
	cfg.MemoryControllers, cfg.ChannelsPerMC = 1, 1
	cfg.WPQEntries = 1
	sys, _ := NewSystem(cfg)
	// Slow PM via the public multiplier.
	cfg2 := cfg
	cfg2.PMLatencyMultiplier = 16
	sys, _ = NewSystem(cfg2)

	a := sys.Malloc(64)
	b := sys.Malloc(64)
	var crash *CrashState
	sys.Spawn("w", func(th *Thread) {
		th.Begin()
		th.StoreUint64(a, 1)
		th.End()
		th.Begin()
		th.StoreUint64(b, 2)
		th.End()
		var err error
		crash, err = sys.Crash()
		if err != nil {
			t.Error(err)
		}
	})
	sys.Run()
	rep, err := crash.Recover()
	if err != nil {
		t.Fatal(err)
	}
	av, bv := crash.ReadUint64(a), crash.ReadUint64(b)
	// Atomic durability with ordering: b may only be present if a is.
	if bv == 2 && av != 1 {
		t.Fatalf("ordering violated after recovery: a=%d b=%d (report %+v)", av, bv, rep)
	}
}

func TestCrashRequiresASAP(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scheme = SchemeNP
	cfg.Cores = 2
	sys, _ := NewSystem(cfg)
	sys.Spawn("w", func(th *Thread) {})
	sys.Run()
	if _, err := sys.Crash(); err == nil {
		t.Fatal("Crash should fail for non-ASAP schemes")
	}
}

func TestMallocFreeRoundTrip(t *testing.T) {
	sys, _ := NewSystem(DefaultConfig())
	sys.Spawn("w", func(th *Thread) {
		p := th.Malloc(128)
		th.StoreUint64(p, 9)
		if th.LoadUint64(p) != 9 {
			t.Error("round trip failed")
		}
		th.Free(p)
		th.Begin() // frees inside regions recycle at commit
		th.Free(th.Malloc(128))
		th.End()
		th.Drain()
		q := th.Malloc(128)
		if th.LoadUint64(q) != 9 {
			t.Error("recycled allocation should keep old contents (no unlogged zeroing)")
		}
	})
	sys.Run()
}

func TestReadBytesSpansLines(t *testing.T) {
	sys, _ := NewSystem(DefaultConfig())
	base := sys.Malloc(256)
	payload := make([]byte, 200)
	for i := range payload {
		payload[i] = byte(i)
	}
	sys.Spawn("w", func(th *Thread) {
		th.Begin()
		th.Store(base+30, payload)
		th.End()
		th.Drain()
	})
	sys.Run()
	cs, _ := sys.Crash()
	got := cs.ReadBytes(base+30, 200)
	for i := range got {
		if got[i] != byte(i) {
			t.Fatalf("byte %d = %d, want %d", i, got[i], byte(i))
		}
	}
}

func TestCrashStateSaveLoadRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 2
	cfg.MemoryControllers, cfg.ChannelsPerMC = 1, 1
	cfg.WPQEntries = 1
	cfg.PMLatencyMultiplier = 16
	sys, _ := NewSystem(cfg)
	a := sys.Malloc(64)
	b := sys.Malloc(64)
	var crash *CrashState
	sys.Spawn("w", func(th *Thread) {
		th.Begin()
		th.StoreUint64(a, 1)
		th.End()
		th.Begin()
		th.StoreUint64(b, 2)
		th.End()
		crash, _ = sys.Crash()
	})
	sys.Run()

	var buf bytes.Buffer
	if err := crash.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCrashState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Recover the LOADED copy (as a fresh process would) and check the
	// same ordering invariant the live path guarantees.
	if _, err := loaded.Recover(); err != nil {
		t.Fatal(err)
	}
	av, bv := loaded.ReadUint64(a), loaded.ReadUint64(b)
	if bv == 2 && av != 1 {
		t.Fatalf("ordering violated after save/load recovery: a=%d b=%d", av, bv)
	}
}

func TestPublicMigrateAndVolatile(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 4
	sys, _ := NewSystem(cfg)
	vol := sys.MallocVolatile(64)
	cell := sys.Malloc(64)
	sys.Spawn("w", func(th *Thread) {
		th.Begin()
		th.StoreUint64(cell, 1)
		th.StoreUint64(vol, 2) // volatile store: no logging
		th.Migrate(2)          // §5.7 context switch mid-region under ASAP
		th.StoreUint64(cell, 3)
		th.End()
		th.Compute(10)
		th.Drain()
		if th.LoadUint64(vol) != 2 || th.LoadUint64(cell) != 3 {
			t.Error("values lost across migration")
		}
	})
	sys.Run()
	if sys.Stats()["region.committed"] != 1 {
		t.Fatal("migrated region did not commit")
	}
	// Migrate under a non-ASAP scheme takes the generic path.
	cfg.Scheme = SchemeNP
	sys2, _ := NewSystem(cfg)
	sys2.Spawn("w", func(th *Thread) { th.Migrate(1) })
	sys2.Run()
}

func TestPublicAccessors(t *testing.T) {
	sys, _ := NewSystem(DefaultConfig())
	if sys.Config().Scheme != SchemeASAP {
		t.Fatal("config not retained")
	}
	if sys.Engine() == nil || sys.Machine() == nil {
		t.Fatal("accessors nil under ASAP")
	}
	if len(Schemes()) != 5 {
		t.Fatalf("Schemes() = %v", Schemes())
	}
	if sys.Now() != 0 {
		t.Fatal("fresh system clock nonzero")
	}
}

func TestASAPRedoThroughPublicAPI(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scheme = SchemeASAPRedo
	cfg.Cores = 2
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cell := sys.Malloc(64)
	sys.Spawn("w", func(th *Thread) {
		th.Begin()
		th.StoreUint64(cell, 5)
		th.End()
		th.Fence()
		th.Drain()
	})
	sys.Run()
	if sys.Engine() != nil {
		t.Fatal("Engine() must be nil for non-undo schemes")
	}
	if _, err := sys.Crash(); err == nil {
		t.Fatal("Crash must refuse non-ASAP schemes")
	}
}

func TestCrashRecoverRestartContinue(t *testing.T) {
	// The full lifecycle: run, power failure, recovery, RESTART on the
	// recovered image, continue working — and the combined history is
	// consistent.
	cfg := DefaultConfig()
	cfg.Cores = 4
	cfg.MemoryControllers, cfg.ChannelsPerMC = 1, 2
	cfg.WPQEntries = 4
	cfg.PMLatencyMultiplier = 8
	sys, _ := NewSystem(cfg)

	counter := sys.Malloc(64)
	const maxInc = 40
	markers := sys.Malloc(64 * (maxInc + 1))
	var mu Mutex
	var crash *CrashState
	inc := func(th *Thread) {
		mu.Lock(th)
		th.Begin()
		v := th.LoadUint64(counter) + 1
		th.StoreUint64(counter, v)
		th.StoreUint64(markers+64*v, v)
		th.End()
		mu.Unlock(th)
		th.Compute(25)
	}
	for w := 0; w < 2; w++ {
		sys.Spawn("w", func(th *Thread) {
			for i := 0; i < 10; i++ {
				if crash != nil {
					return
				}
				inc(th)
				if th.Now() > 5_000 && crash == nil {
					crash, _ = sys.Crash()
					return
				}
			}
			th.Drain()
		})
	}
	sys.Run()
	if crash == nil {
		crash, _ = sys.Crash()
	}
	if _, err := crash.Recover(); err != nil {
		t.Fatal(err)
	}
	recovered := crash.ReadUint64(counter)

	// Restart: a new machine with the recovered image as its PM contents.
	cfg2 := DefaultConfig()
	cfg2.Cores = 4
	sys2, err := NewSystemFromCrash(cfg2, crash)
	if err != nil {
		t.Fatal(err)
	}
	var mu2 Mutex
	for w := 0; w < 2; w++ {
		sys2.Spawn("w", func(th *Thread) {
			for i := 0; i < 5; i++ {
				mu2.Lock(th)
				th.Begin()
				v := th.LoadUint64(counter) + 1
				th.StoreUint64(counter, v)
				th.StoreUint64(markers+64*v, v)
				th.End()
				mu2.Unlock(th)
			}
			th.Drain()
		})
	}
	sys2.Run()

	final, _ := sys2.Crash()
	got := final.ReadUint64(counter)
	if got != recovered+10 {
		t.Fatalf("final counter %d, want recovered %d + 10 new increments", got, recovered)
	}
	// The whole history — pre-crash survivors and post-restart work — must
	// form one dense marker sequence.
	for v := uint64(1); v <= got; v++ {
		if final.ReadUint64(markers+64*v) != v {
			t.Fatalf("marker[%d] missing after restart-continue", v)
		}
	}
}
