package queue

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"asap/internal/report"
)

// expoSample is one parsed sample line from the /metrics exposition.
type expoSample struct {
	name   string // full series: name plus label set, verbatim
	metric string // metric name only
	value  float64
}

// parseExposition parses Prometheus text exposition strictly: every line
// must be a HELP comment, a TYPE comment, or a well-formed sample whose
// metric name was announced by a TYPE line. It returns the samples and
// the metric->type table.
func parseExposition(t *testing.T, body string) ([]expoSample, map[string]string) {
	t.Helper()
	types := make(map[string]string)
	var samples []expoSample
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			if !strings.Contains(rest, " ") {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			parts := strings.Fields(rest)
			if len(parts) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown metric type %q", ln+1, parts[1])
			}
			types[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unrecognized comment: %q", ln+1, line)
		}
		// Sample: name[{labels}] value — split on the last space so
		// label values containing spaces stay intact.
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: malformed sample: %q", ln+1, line)
		}
		series, valStr := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad sample value %q: %v", ln+1, valStr, err)
		}
		metric := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("line %d: unterminated label set: %q", ln+1, line)
			}
			metric = series[:i]
		}
		base := metric
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(metric, suf); ok && types[b] == "histogram" {
				base = b
				break
			}
		}
		if _, ok := types[base]; !ok {
			t.Fatalf("line %d: sample %q has no preceding TYPE", ln+1, series)
		}
		samples = append(samples, expoSample{name: series, metric: base, value: v})
	}
	return samples, types
}

func scrapeMetrics(t *testing.T, url string) ([]expoSample, map[string]string) {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return parseExposition(t, string(body))
}

// TestMetricsExpositionContract pins the /metrics surface: every line
// parses, expected families exist with the right types, counters never
// go backwards across scrapes, and histogram buckets are cumulative.
func TestMetricsExpositionContract(t *testing.T) {
	d, srv := startTestServer(t)

	submit := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			spec := fmt.Sprintf(`{"work":%d,"spin":3}`, 100+i)
			if _, err := d.Submit(json.RawMessage(spec)); err != nil {
				t.Fatal(err)
			}
		}
	}
	submit(3)
	waitIdle(t, d)

	// Vec families render only once populated; one completed request
	// ensures the HTTP families exist before the first scrape.
	if resp, err := http.Get(srv.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	first, types := scrapeMetrics(t, srv.URL)
	for metric, wantType := range map[string]string{
		"asapd_journal_appends_total":     "counter",
		"asapd_journal_syncs_total":       "counter",
		"asapd_journal_size_bytes":        "gauge",
		"asapd_queue_transitions_total":   "counter",
		"asapd_queue_depth":               "gauge",
		"asapd_store_puts_total":          "counter",
		"asapd_store_put_bytes_total":     "counter",
		"asapd_exec_busy_workers":         "gauge",
		"asapd_exec_job_seconds":          "histogram",
		"asapd_http_requests_total":       "counter",
		"asapd_http_request_seconds":      "histogram",
		"asapd_uptime_seconds":            "gauge",
		"asapd_draining":                  "gauge",
		"asapd_journal_replay_records":    "gauge",
		"asapd_journal_replay_torn_bytes": "gauge",
		"asapd_journal_segments":          "gauge",
		"asapd_journal_compactions_total": "counter",
		"asapd_store_bytes":               "gauge",
		"asapd_degraded":                  "gauge",
	} {
		if got := types[metric]; got != wantType {
			t.Errorf("metric %s: type %q, want %q", metric, got, wantType)
		}
	}

	byName := func(samples []expoSample) map[string]float64 {
		m := make(map[string]float64, len(samples))
		for _, s := range samples {
			m[s.name] = s.value
		}
		return m
	}
	v1 := byName(first)
	if v1["asapd_journal_appends_total"] <= 0 {
		t.Error("journal appends not counted")
	}
	if v1["asapd_store_puts_total"] < 3 {
		t.Errorf("store puts %v after 3 jobs", v1["asapd_store_puts_total"])
	}
	if v1[`asapd_queue_transitions_total{type="acked"}`] != 3 {
		t.Errorf("acked transitions %v, want 3", v1[`asapd_queue_transitions_total{type="acked"}`])
	}
	if v1[`asapd_exec_job_seconds_count`] != 3 {
		t.Errorf("job histogram count %v, want 3", v1["asapd_exec_job_seconds_count"])
	}
	if v1[`asapd_store_bytes{store="artifacts"}`] <= 0 {
		t.Errorf("artifact store bytes %v after 3 jobs, want > 0",
			v1[`asapd_store_bytes{store="artifacts"}`])
	}
	if v1["asapd_journal_segments"] < 1 {
		t.Errorf("journal segments %v, want >= 1", v1["asapd_journal_segments"])
	}
	if v1["asapd_degraded"] != 0 {
		t.Errorf("degraded level %v on a healthy daemon", v1["asapd_degraded"])
	}

	// Histogram buckets must be cumulative and end at the total count.
	var prev float64 = -1
	var buckets int
	for _, s := range first {
		if !strings.HasPrefix(s.name, "asapd_exec_job_seconds_bucket") {
			continue
		}
		buckets++
		if s.value < prev {
			t.Fatalf("bucket %s = %v below previous %v", s.name, s.value, prev)
		}
		prev = s.value
	}
	if buckets == 0 {
		t.Fatal("no asapd_exec_job_seconds buckets rendered")
	}
	if prev != v1["asapd_exec_job_seconds_count"] {
		t.Errorf("+Inf bucket %v != histogram count %v", prev, v1["asapd_exec_job_seconds_count"])
	}

	// More work, second scrape: counters are monotone.
	submit(2)
	waitIdle(t, d)
	second, _ := scrapeMetrics(t, srv.URL)
	v2 := byName(second)
	for _, s := range first {
		if types[s.metric] != "counter" && !strings.HasSuffix(s.name, "_count") {
			continue
		}
		if after, ok := v2[s.name]; ok && after < s.value {
			t.Errorf("counter %s went backwards: %v -> %v", s.name, s.value, after)
		}
	}
	for _, name := range []string{
		"asapd_journal_appends_total",
		"asapd_store_puts_total",
		`asapd_http_requests_total{route="/metrics",code="200"}`,
	} {
		if v2[name] <= v1[name] {
			t.Errorf("%s did not advance: %v -> %v", name, v1[name], v2[name])
		}
	}
}

// readSSE reads one "event:"/"data:" frame pair from an SSE stream.
func readSSE(t *testing.T, r *bufio.Reader) ProgressEvent {
	t.Helper()
	var data string
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("SSE stream ended early: %v (data %q)", err, data)
		}
		line = strings.TrimRight(line, "\n")
		if rest, ok := strings.CutPrefix(line, "data: "); ok {
			data = rest
			continue
		}
		if line == "" && data != "" {
			var ev ProgressEvent
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				t.Fatalf("SSE data %q: %v", data, err)
			}
			return ev
		}
	}
}

// TestSSEProgressOrderedTerminal live-tails a job over /events and
// demands ordered progress frames ending in exactly one terminal "done"
// event carrying the result hash.
func TestSSEProgressOrderedTerminal(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	cfg := testDaemonConfig(t.TempDir(), func(ctx context.Context, spec json.RawMessage) ([]byte, error) {
		close(started)
		<-release
		PublishProgress(ctx, report.Snapshot{Done: 1, Total: 2, Current: "a", Rate: 4})
		PublishProgress(ctx, report.Snapshot{Done: 2, Total: 2, Current: "b", Rate: 4})
		return []byte("sse result"), nil
	})
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(func() {
		srv.Close()
		d.Kill()
	})

	id, err := d.Submit(json.RawMessage(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("job never started")
	}

	resp, err := http.Get(fmt.Sprintf("%s/api/v1/jobs/%d/events", srv.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}
	br := bufio.NewReader(resp.Body)

	// First frame arrives from the pre-subscribe state (running, or the
	// state-derived snapshot); only then let the executor publish.
	ev := readSSE(t, br)
	if ev.Terminal {
		t.Fatalf("first frame already terminal: %+v", ev)
	}
	close(release)

	var frames []ProgressEvent
	frames = append(frames, ev)
	for !frames[len(frames)-1].Terminal {
		if len(frames) > 16 {
			t.Fatalf("no terminal frame after %d events", len(frames))
		}
		frames = append(frames, readSSE(t, br))
	}
	for i := 1; i < len(frames); i++ {
		if frames[i].Seq <= frames[i-1].Seq && frames[i-1].Seq != 0 {
			t.Fatalf("frames out of order: %+v then %+v", frames[i-1], frames[i])
		}
		if frames[i].Done < frames[i-1].Done {
			t.Fatalf("done went backwards: %+v then %+v", frames[i-1], frames[i])
		}
	}
	last := frames[len(frames)-1]
	if last.State != string(StateDone) || last.Hash == "" {
		t.Fatalf("terminal frame: %+v", last)
	}
	var sawProgress bool
	for _, f := range frames {
		if f.State == "running" && f.Done == 2 && f.Total == 2 {
			sawProgress = true
		}
	}
	if !sawProgress {
		t.Fatalf("never saw the done=2/2 running frame: %+v", frames)
	}
	// The stream closed after the terminal event.
	if _, err := br.ReadByte(); err != io.EOF {
		t.Fatalf("stream still open after terminal event (err %v)", err)
	}
}

// TestManifestRoundTripAndRedeliveryIdempotence forces a redelivery
// (delivery 1 stalls after producing its artifacts, the lease expires,
// delivery 2 completes) and demands both deliveries computed identical
// artifact hashes — then round-trips the stored manifest, checks every
// artifact, and verifies content types survive a restart via the
// manifest-driven cache rebuild.
func TestManifestRoundTripAndRedeliveryIdempotence(t *testing.T) {
	dir := t.TempDir()
	cfg := testDaemonConfig(dir, nil)
	cfg.Policy.LeaseTimeout = 50 * time.Millisecond
	cfg.Policy.MaxDeliveries = 2
	cfg.Workers = 1
	cfg.ResultContentType = "text/plain; charset=utf-8"

	arts := []RawArtifact{
		{Name: "profile.json", Kind: KindProfile, ContentType: "application/json", Data: []byte(`{"cycles":12}`)},
		{Name: "series.csv", Kind: KindSeries, ContentType: "text/csv; charset=utf-8", Data: []byte("t,v\n0,1\n")},
	}
	var calls atomic.Int64
	var mu sync.Mutex
	var perDelivery [][]string
	cfg.Exec = func(ctx context.Context, spec json.RawMessage) ([]byte, error) {
		n := calls.Add(1)
		var hashes []string
		for _, a := range arts {
			AddArtifact(ctx, a)
			hashes = append(hashes, HashBytes(a.Data))
		}
		mu.Lock()
		perDelivery = append(perDelivery, hashes)
		mu.Unlock()
		if n == 1 {
			<-ctx.Done() // the ack never lands; the lease expires and the job redelivers
			return nil, ctx.Err()
		}
		return []byte("manifest result"), nil
	}
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	id, err := d.Submit(json.RawMessage(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	waitIdle(t, d)

	info, _ := d.Q.Get(id)
	if info.State != StateDone || info.Deliveries != 2 {
		t.Fatalf("redelivered job: %+v", info)
	}
	if d.Q.Counters()[CtrExpired] == 0 {
		t.Fatal("no lease expiry recorded")
	}
	if info.Manifest == "" {
		t.Fatal("done job has no manifest")
	}

	mu.Lock()
	if len(perDelivery) != 2 {
		t.Fatalf("expected 2 deliveries, saw %d", len(perDelivery))
	}
	for i := range perDelivery[0] {
		if perDelivery[0][i] != perDelivery[1][i] {
			t.Fatalf("delivery hashes diverged: %v vs %v", perDelivery[0], perDelivery[1])
		}
	}
	wantHashes := perDelivery[0]
	mu.Unlock()

	// Round-trip the manifest object.
	raw, err := d.St.Get(info.Manifest)
	if err != nil {
		t.Fatalf("manifest fetch: %v", err)
	}
	m, err := DecodeManifest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if m.Result != info.Hash {
		t.Fatalf("manifest result %s != job hash %s", m.Result, info.Hash)
	}
	if len(m.Artifacts) != 3 {
		t.Fatalf("manifest artifacts: %+v", m.Artifacts)
	}
	if m.Artifacts[0].Kind != KindResult || m.Artifacts[0].Hash != info.Hash ||
		m.Artifacts[0].ContentType != "text/plain; charset=utf-8" {
		t.Fatalf("result artifact: %+v", m.Artifacts[0])
	}
	for i, a := range m.Artifacts[1:] {
		if a.Hash != wantHashes[i] || a.Name != arts[i].Name || a.Kind != arts[i].Kind ||
			a.ContentType != arts[i].ContentType || a.Bytes != int64(len(arts[i].Data)) {
			t.Fatalf("artifact %d: %+v", i, a)
		}
		got, err := d.St.Get(a.Hash)
		if err != nil || string(got) != string(arts[i].Data) {
			t.Fatalf("artifact %d round-trip: %v", i, err)
		}
	}
	// Re-encoding what we decoded lands on the same content address:
	// the manifest hash is deterministic.
	re, err := EncodeManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	if HashBytes(re) != info.Manifest {
		t.Fatal("manifest re-encode changed its content address")
	}

	// Restart: the content-type cache is empty until contentTypeFor
	// rebuilds it from the stored manifests; the HTTP layer must serve
	// every artifact with its manifest-declared type.
	d.Q.j.Close()
	d.Kill()
	d2, err := Open(testDaemonConfig(dir, cfg.Exec))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	srv := httptest.NewServer(d2.Handler())
	t.Cleanup(func() {
		srv.Close()
		d2.Kill()
	})
	for path, wantCT := range map[string]string{
		fmt.Sprintf("/api/v1/jobs/%d/manifest", id): "application/json",
		fmt.Sprintf("/api/v1/jobs/%d/result", id):   "text/plain; charset=utf-8",
		"/api/v1/artifacts/" + m.Artifacts[1].Hash:  "application/json",
		"/api/v1/artifacts/" + m.Artifacts[2].Hash:  "text/csv; charset=utf-8",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != wantCT {
			t.Errorf("GET %s: content type %q, want %q", path, ct, wantCT)
		}
	}

	// The poll endpoint answers for a pre-restart job with its terminal
	// verdict even though this process never ran it.
	resp, err := http.Get(fmt.Sprintf("%s/api/v1/jobs/%d/progress", srv.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	var ev ProgressEvent
	if err := json.NewDecoder(resp.Body).Decode(&ev); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !ev.Terminal || ev.State != string(StateDone) || ev.Hash != info.Hash || ev.Manifest != info.Manifest {
		t.Fatalf("post-restart progress: %+v", ev)
	}
}

// TestReadyzLifecycle splits liveness from readiness: /healthz is always
// 200 while the process serves, /readyz is 503 before Start and again
// once a drain begins.
func TestReadyzLifecycle(t *testing.T) {
	d, err := Open(testDaemonConfig(t.TempDir(), CampaignExec))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(func() {
		srv.Close()
		d.Kill()
	})

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}

	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "starting") {
		t.Fatalf("pre-start readyz: %d %q", code, body)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("pre-start healthz: %d", code)
	}

	d.Start()
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("started readyz: %d", code)
	}

	if err := d.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("draining readyz: %d %q", code, body)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("draining healthz: %d", code)
	}
}

// TestSeriesFormatNegotiation pins /api/v1/series content negotiation:
// CSV by default, JSON on ?format=json or an Accept header.
func TestSeriesFormatNegotiation(t *testing.T) {
	cfg := testDaemonConfig(t.TempDir(), CampaignExec)
	cfg.SeriesEvery = 5 * time.Millisecond
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(func() {
		srv.Close()
		d.Kill()
	})

	get := func(path, accept string) (string, string) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, srv.URL+path, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		return resp.Header.Get("Content-Type"), string(body)
	}

	if ct, _ := get("/api/v1/series", ""); ct != "text/csv; charset=utf-8" {
		t.Errorf("default series content type %q", ct)
	}
	ct, body := get("/api/v1/series?format=json", "")
	if ct != "application/json" || !json.Valid([]byte(body)) {
		t.Errorf("format=json: content type %q, valid JSON %v", ct, json.Valid([]byte(body)))
	}
	if ct, _ := get("/api/v1/series", "application/json"); ct != "application/json" {
		t.Errorf("Accept json: content type %q", ct)
	}
	if ct, _ := get("/api/v1/series?format=csv", "application/json"); ct != "text/csv; charset=utf-8" {
		t.Errorf("format=csv overrides Accept: content type %q", ct)
	}
}
