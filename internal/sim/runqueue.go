package sim

// runQueue is a min-heap of runnable (not running, not blocked) threads
// keyed by (virtual clock, spawn order). A queued thread's clock is
// immutable — clocks only move while a thread runs or at dispatch, and a
// dispatched thread is popped first — so keys never change in place and
// the heap needs no fix-up operations.
type runQueue struct {
	heap []*Thread
}

// threadBefore orders the queue: earliest clock first, spawn order as the
// tiebreak. This is exactly the scan order the pre-index kernel used, so
// the dispatch sequence is bit-for-bit unchanged.
func threadBefore(a, b *Thread) bool {
	if a.now != b.now {
		return a.now < b.now
	}
	return a.id < b.id
}

func (q *runQueue) len() int { return len(q.heap) }

// peek returns the earliest runnable thread without removing it, or nil.
func (q *runQueue) peek() *Thread {
	if len(q.heap) == 0 {
		return nil
	}
	return q.heap[0]
}

func (q *runQueue) push(t *Thread) {
	q.heap = append(q.heap, t)
	h := q.heap
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !threadBefore(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// pop removes and returns the earliest runnable thread.
func (q *runQueue) pop() *Thread {
	h := q.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	q.heap = h[:n]
	h = q.heap
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && threadBefore(h[l], h[min]) {
			min = l
		}
		if r < n && threadBefore(h[r], h[min]) {
			min = r
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return top
}
