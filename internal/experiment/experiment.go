// Package experiment regenerates every table and figure of the paper's
// evaluation (§7): each runner builds fresh machines, executes the Table 3
// benchmarks under the relevant schemes, and reduces the counters to the
// series the paper plots. Output tables mirror the paper's axes so shapes
// can be compared directly; EXPERIMENTS.md records paper-vs-measured.
package experiment

import (
	"fmt"
	"math"
	"strings"

	"asap/internal/core"
	"asap/internal/machine"
	"asap/internal/obs"
	"asap/internal/report"
	"asap/internal/schemes"
	"asap/internal/snapshot"
	"asap/internal/trace"
	"asap/internal/workload"
)

// Scale sizes the benchmark runs. Figures' shapes are stable from Quick
// upward; Full uses the kind of run a paper evaluation would.
type Scale struct {
	Threads      int
	OpsPerThread int
	InitialItems int
	Benchmarks   []string
}

// QuickScale is used by tests and the default CLI run.
func QuickScale() Scale {
	return Scale{Threads: 4, OpsPerThread: 120, InitialItems: 128, Benchmarks: BenchNames()}
}

// FullScale is the paper-style run (minutes, not seconds).
func FullScale() Scale {
	return Scale{Threads: 8, OpsPerThread: 1500, InitialItems: 2048, Benchmarks: BenchNames()}
}

// BenchNames returns the Table 3 benchmark abbreviations in paper order.
func BenchNames() []string {
	return []string{"BN", "BT", "CT", "EO", "HM", "Q", "RB", "SS", "TPCC"}
}

// Variant selects a system build for one run.
type Variant struct {
	Scheme string // NP, SW, SW-DPOOnly, HWUndo, HWRedo, ASAP, ASAP-Redo
	PMMult int    // PM latency multiplier (0 -> 1)
	LHWPQ  int    // LH-WPQ entries per channel (0 -> default 128)
	// Seed overrides the workload RNG seed (0 -> the standard 42). It is
	// a cache-key axis; the snapshot equivalence tests randomize it.
	Seed     int64
	ASAPOpts *core.Options
	// Trace, when non-nil, attaches a protocol event buffer (ASAP only).
	Trace *trace.Buffer
	// Obs, when non-nil, attaches the observability session: its profiler
	// hooks the kernel clock and the scheme's stall sites, its recorder
	// samples the occupancy gauges wired by WireGauges. Works under every
	// scheme.
	Obs *obs.Session
}

// seed resolves the variant's workload seed.
func (v Variant) seed() int64 {
	if v.Seed != 0 {
		return v.Seed
	}
	return 42
}

// issueDelayOverride lets calibration tests sweep the WPQ issue delay.
var issueDelayOverride uint64

// truncOverride lets calibration tests sweep HWUndo's truncation delay.
var truncOverride uint64

// Run executes one benchmark under one variant at the given scale and
// value size, on a fresh machine. When SetCheckpointEvery has armed audit
// mode, the run carries a checkpointer whose boundary digests are recorded
// and discarded — scheduling-neutral, so output is unchanged (enforced by
// TestCheckpointingIsOutputNeutral).
func Run(v Variant, bench string, scale Scale, valueBytes int) workload.Result {
	res, _ := runWithCheckpointer(v, bench, scale, valueBytes, checkpointEvery, nil)
	return res
}

// runWithCheckpointer is Run's full-control form: a non-zero every attaches
// a machine.Checkpointer (returned so callers can read its Snaps), and
// onBoundary, when non-nil, decides at each boundary whether to continue
// (false halts the kernel at the boundary — partial state, no Check run).
func runWithCheckpointer(v Variant, bench string, scale Scale, valueBytes int,
	every uint64, onBoundary func(snapshot.Snap) bool) (workload.Result, *machine.Checkpointer) {
	mc := machine.DefaultConfig()
	if issueDelayOverride > 0 {
		mc.Mem.IssueDelayCycles = issueDelayOverride
	}
	if v.PMMult > 1 {
		mc.Mem.PMLatencyMult = v.PMMult
	}
	if v.LHWPQ > 0 {
		mc.Mem.LHWPQEntries = v.LHWPQ
	}
	m := machine.New(mc)

	var s machine.Scheme
	switch v.Scheme {
	case "NP":
		s = schemes.NewNP(m)
	case "SW":
		s = schemes.NewSW(m)
	case "SW-DPOOnly":
		s = schemes.NewSWDPOOnly(m)
	case "HWUndo":
		u := schemes.NewHWUndo(m)
		if truncOverride > 0 {
			u.TruncateDelay = truncOverride
		}
		s = u
	case "HWRedo":
		s = schemes.NewHWRedo(m)
	case "ASAP-Redo":
		s = schemes.NewASAPRedo(m)
	case "ASAP":
		opt := core.DefaultOptions()
		if v.ASAPOpts != nil {
			opt = *v.ASAPOpts
		}
		eng := core.NewEngine(m, opt)
		if v.Trace != nil {
			eng.SetTrace(v.Trace)
		}
		s = eng
	default:
		panic("experiment: unknown scheme " + v.Scheme)
	}

	if v.Obs != nil {
		m.K.SetObserver(v.Obs)
		if v.Obs.Prof != nil {
			if sp, ok := s.(interface{ SetProfiler(*obs.Profiler) }); ok {
				sp.SetProfiler(v.Obs.Prof)
			}
		}
		if v.Obs.Rec != nil {
			WireGauges(v.Obs.Rec, m, s)
		}
	}

	b := workload.ByName(bench)
	if b == nil {
		panic("experiment: unknown benchmark " + bench)
	}
	cfg := workload.Config{
		ValueBytes:   valueBytes,
		InitialItems: scale.InitialItems,
		Threads:      scale.Threads,
		OpsPerThread: scale.OpsPerThread,
		Seed:         v.seed(),
	}

	var ck *machine.Checkpointer
	if every > 0 {
		ck = &machine.Checkpointer{
			M:          m,
			Identity:   runIdentity(v, bench, scale, valueBytes),
			Seed:       v.seed(),
			Every:      every,
			OnBoundary: onBoundary,
		}
		if sa, ok := s.(machine.StateAppender); ok {
			ck.Scheme = sa
		}
		ck.Arm()
	}

	res := workload.Run(&workload.Env{M: m, S: s}, b, cfg)
	if m.K.Halted() {
		// A boundary callback stopped the run (resume replay or crash
		// injection): the result is intentionally partial, and the
		// benchmark's Check never ran.
		return res, ck
	}
	if res.Stall != nil {
		// Panic with the error value itself: runner.Collect wraps worker
		// panics in a *PanicError whose Unwrap exposes it, so callers can
		// still errors.As their way to the *sim.StallError diagnosis.
		panic(res.Stall)
	}
	if res.CheckErr != "" {
		panic(fmt.Sprintf("experiment: %s under %s left inconsistent state: %s",
			bench, v.Scheme, res.CheckErr))
	}
	return res, ck
}

// Table is a figure's data: one row per benchmark (plus GeoMean), one
// column per series.
type Table struct {
	Title   string
	Note    string
	Columns []string
	Rows    []Row
}

// Row is one benchmark's values across the series.
type Row struct {
	Name   string
	Values []float64
}

// AddRow appends a row.
func (t *Table) AddRow(name string, values ...float64) {
	t.Rows = append(t.Rows, Row{Name: name, Values: values})
}

// AddGeoMean appends a geometric-mean summary row over the current rows.
func (t *Table) AddGeoMean() {
	if len(t.Rows) == 0 {
		return
	}
	means := make([]float64, len(t.Columns))
	for c := range t.Columns {
		logSum, n := 0.0, 0
		for _, r := range t.Rows {
			if c < len(r.Values) && r.Values[c] > 0 {
				logSum += math.Log(r.Values[c])
				n++
			}
		}
		if n > 0 {
			means[c] = math.Exp(logSum / float64(n))
		}
	}
	t.Rows = append(t.Rows, Row{Name: "GeoMean", Values: means})
}

// Col returns the value at (rowName, colName), or NaN.
func (t *Table) Col(rowName, colName string) float64 {
	ci := -1
	for i, c := range t.Columns {
		if c == colName {
			ci = i
		}
	}
	if ci < 0 {
		return math.NaN()
	}
	for _, r := range t.Rows {
		if r.Name == rowName && ci < len(r.Values) {
			return r.Values[ci]
		}
	}
	return math.NaN()
}

// ChartTitle implements report.Chartable.
func (t *Table) ChartTitle() string { return t.Title }

// ChartColumns implements report.Chartable.
func (t *Table) ChartColumns() []string { return t.Columns }

// ChartRows implements report.Chartable.
func (t *Table) ChartRows() []report.ChartRow {
	out := make([]report.ChartRow, 0, len(t.Rows))
	for _, r := range t.Rows {
		out = append(out, report.ChartRow{Name: r.Name, Values: r.Values})
	}
	return out
}

// String renders the table in aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "  (%s)\n", t.Note)
	}
	fmt.Fprintf(&b, "%-10s", "")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%12s", c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-10s", r.Name)
		for _, v := range r.Values {
			fmt.Fprintf(&b, "%12.3f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
