package core

import "asap/internal/arch"

// bloom is the non-counting Bloom filter of §5.3 (Table 2: 1 KB/channel):
// it answers "might this line have a spilled OwnerRID in the DRAM buffer?"
// so that not every PM fill costs a DRAM buffer probe. It is cleared
// whenever the Dependence Lists empty out, which is the only way a
// non-counting filter can forget.
type bloom struct {
	bits []uint64
	mask uint64
}

// newBloom builds a filter with the given number of bits (rounded up to a
// power of two, minimum 64).
func newBloom(nbits int) *bloom {
	n := uint64(64)
	for n < uint64(nbits) {
		n <<= 1
	}
	return &bloom{bits: make([]uint64, n/64), mask: n - 1}
}

// two cheap independent hashes of the line number.
func (b *bloom) hashes(line arch.LineAddr) (uint64, uint64) {
	x := uint64(line) >> arch.LineShift
	h1 := x * 0x9e3779b97f4a7c15
	h2 := (x ^ 0xdeadbeefcafef00d) * 0xc2b2ae3d27d4eb4f
	return h1 & b.mask, (h2 >> 7) & b.mask
}

// Add records line in the filter.
func (b *bloom) Add(line arch.LineAddr) {
	h1, h2 := b.hashes(line)
	b.bits[h1/64] |= 1 << (h1 % 64)
	b.bits[h2/64] |= 1 << (h2 % 64)
}

// MayContain reports whether line could have been added (false positives
// possible, false negatives impossible).
func (b *bloom) MayContain(line arch.LineAddr) bool {
	h1, h2 := b.hashes(line)
	return b.bits[h1/64]&(1<<(h1%64)) != 0 && b.bits[h2/64]&(1<<(h2%64)) != 0
}

// Clear empties the filter (safe whenever no uncommitted regions exist).
func (b *bloom) Clear() {
	for i := range b.bits {
		b.bits[i] = 0
	}
}
