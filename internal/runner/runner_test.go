package runner

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"asap/internal/stats"
)

// TestCollectOrderStableUnderJitter: results must land at their
// submission index even when jobs finish wildly out of order.
func TestCollectOrderStableUnderJitter(t *testing.T) {
	const n = 64
	rng := rand.New(rand.NewSource(1))
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		d := time.Duration(rng.Intn(4)) * time.Millisecond
		jobs[i] = Job[int]{
			Label: fmt.Sprintf("j%02d", i),
			Run: func() int {
				time.Sleep(d)
				return i * i
			},
		}
	}
	out, err := Collect(New(8), jobs)
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("result %d landed at the wrong index: got %d want %d", i, v, i*i)
		}
	}
}

// TestOneWorkerMatchesSerialBaseline: a one-worker pool must execute the
// jobs in submission order, one at a time, exactly like the plain loop
// the figure runners used before the pool existed.
func TestOneWorkerMatchesSerialBaseline(t *testing.T) {
	const n = 32
	var execOrder []int
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Label: fmt.Sprintf("j%d", i),
			Run: func() int {
				execOrder = append(execOrder, i) // safe: one worker
				return 3 * i
			},
		}
	}
	out, err := Collect(New(1), jobs)
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	serial := make([]int, n)
	for i := range serial {
		serial[i] = 3 * i
	}
	for i := range out {
		if out[i] != serial[i] {
			t.Fatalf("result %d: got %d want %d", i, out[i], serial[i])
		}
		if execOrder[i] != i {
			t.Fatalf("one-worker pool ran job %d at position %d", execOrder[i], i)
		}
	}
}

// TestCollectPropagatesPanic: a panicking job becomes a *PanicError
// carrying its label; the other jobs still run to completion.
func TestCollectPropagatesPanic(t *testing.T) {
	const n = 8
	var ran atomic.Int64
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Label: fmt.Sprintf("j%d", i),
			Run: func() int {
				ran.Add(1)
				if i == 5 {
					panic("inconsistent state")
				}
				return i
			},
		}
	}
	out, err := Collect(New(4), jobs)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %v", err)
	}
	if pe.Label != "j5" || pe.Value != "inconsistent state" {
		t.Fatalf("panic not preserved: %+v", pe)
	}
	if ran.Load() != n {
		t.Fatalf("remaining jobs should still run: %d of %d ran", ran.Load(), n)
	}
	if out[0] != 0 || out[7] != 7 {
		t.Fatalf("successful results must still be assembled: %v", out)
	}
	if out[5] != 0 {
		t.Fatalf("failed index must hold the zero value, got %d", out[5])
	}
}

// TestPanicErrorUnwrapsErrorValues: a job panicking with an error value
// (the experiment layer re-panics *sim.StallError this way) is reachable
// through errors.As on the Collect error; non-error panics unwrap to nil.
func TestPanicErrorUnwrapsErrorValues(t *testing.T) {
	sentinel := errors.New("stalled at cycle 9")
	_, err := Collect(New(2), []Job[int]{
		{Label: "stall", Run: func() int { panic(sentinel) }},
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("errors.Is cannot see through PanicError: %v", err)
	}
	if (&PanicError{Value: "plain string"}).Unwrap() != nil {
		t.Fatal("non-error panic value must unwrap to nil")
	}
}

// TestCollectFirstErrorDeterministic: with several panicking jobs, the
// returned error is the earliest-submitted one regardless of scheduling.
func TestCollectFirstErrorDeterministic(t *testing.T) {
	jobs := make([]Job[int], 10)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Label: fmt.Sprintf("j%d", i),
			Run: func() int {
				if i == 3 || i == 7 {
					panic(i)
				}
				return i
			},
		}
	}
	for trial := 0; trial < 4; trial++ {
		_, err := Collect(New(8), jobs)
		var pe *PanicError
		if !errors.As(err, &pe) || pe.Label != "j3" {
			t.Fatalf("trial %d: want earliest panic j3, got %v", trial, err)
		}
	}
}

// measResult exercises the Measurable lift into stats.JobMetrics.
type measResult struct {
	cycles uint64
	ops    int64
}

func (m measResult) SimCycles() uint64 { return m.cycles }
func (m measResult) SimOps() int64     { return m.ops }

func TestMetricsRecordedInSubmissionOrder(t *testing.T) {
	log := &stats.JobLog{}
	p := New(4)
	p.SetMetrics(log)
	const n = 12
	jobs := make([]Job[measResult], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[measResult]{
			Label: fmt.Sprintf("m%d", i),
			Run: func() measResult {
				return measResult{cycles: uint64(1000 + i), ops: int64(10 * (i + 1))}
			},
		}
	}
	if _, err := Collect(p, jobs); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	snap := log.Snapshot()
	if len(snap) != n {
		t.Fatalf("want %d metrics, got %d", n, len(snap))
	}
	for i, m := range snap {
		if m.Label != fmt.Sprintf("m%d", i) {
			t.Fatalf("metrics out of submission order at %d: %q", i, m.Label)
		}
		if m.Cycles != uint64(1000+i) || m.Ops != int64(10*(i+1)) {
			t.Fatalf("simulated metrics not lifted: %+v", m)
		}
		if m.WallNS < 0 {
			t.Fatalf("negative wall time: %+v", m)
		}
		if m.Ops > 0 && m.WallNS > 0 && m.OpsPerSec <= 0 {
			t.Fatalf("ops/sec not derived: %+v", m)
		}
	}
	if slow, ok := log.Slowest(); !ok || slow.Label == "" {
		t.Fatalf("Slowest should report a job: %+v ok=%v", slow, ok)
	}
	if log.TotalWall() < 0 {
		t.Fatalf("TotalWall negative")
	}
}

// countingReporter verifies the pool's progress callbacks.
type countingReporter struct {
	started int
	done    int
	failed  int
}

func (r *countingReporter) Start(total int) { r.started += total }
func (r *countingReporter) Done(label string, wall time.Duration, ok bool) {
	r.done++
	if !ok {
		r.failed++
	}
}

func TestReporterSeesEveryJob(t *testing.T) {
	rep := &countingReporter{}
	p := New(3)
	p.SetReporter(rep)
	jobs := make([]Job[int], 9)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{Label: fmt.Sprintf("r%d", i), Run: func() int {
			if i == 4 {
				panic("boom")
			}
			return i
		}}
	}
	_, err := Collect(p, jobs)
	if err == nil {
		t.Fatalf("want error from panicking job")
	}
	if rep.started != 9 || rep.done != 9 || rep.failed != 1 {
		t.Fatalf("reporter missed callbacks: %+v", rep)
	}
}

// TestWorkersClampedToJobs: a wide pool on a short batch must not
// deadlock or leak goroutines waiting on the index channel.
func TestWorkersClampedToJobs(t *testing.T) {
	out, err := Collect(New(16), []Job[string]{{Label: "only", Run: func() string { return "x" }}})
	if err != nil || len(out) != 1 || out[0] != "x" {
		t.Fatalf("got %v, %v", out, err)
	}
	if out, err := Collect[string](New(4), nil); err != nil || len(out) != 0 {
		t.Fatalf("empty batch: got %v, %v", out, err)
	}
}

func TestNewDefaultsToGOMAXPROCS(t *testing.T) {
	if New(0).Workers() < 1 {
		t.Fatalf("zero width must default to at least one worker")
	}
	if w := New(7).Workers(); w != 7 {
		t.Fatalf("explicit width not kept: %d", w)
	}
}
