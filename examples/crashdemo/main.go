// crashdemo reproduces the Figure 2 failure scenario and shows how ASAP's
// dependence tracking repairs it: a chain of control-dependent regions is
// interrupted by a power failure, and recovery rolls the suffix back so
// the persisted state is a consistent prefix — never a region committed
// ahead of one it depends on.
package main

import (
	"fmt"

	"asap"
)

func main() {
	cfg := asap.DefaultConfig()
	cfg.Cores = 2
	// A narrow memory path keeps persists in flight so the crash lands in
	// the interesting window (several regions ended but uncommitted).
	cfg.MemoryControllers, cfg.ChannelsPerMC = 1, 1
	cfg.WPQEntries = 2
	cfg.PMLatencyMultiplier = 16
	sys, err := asap.NewSystem(cfg)
	if err != nil {
		panic(err)
	}

	// An append-only ledger: entry i+1 is control dependent on entry i
	// (same thread, program order). Figure 2a's bug would be entry 5
	// persisting while entry 4 is lost; ASAP's Dependence List forbids it.
	const entries = 12
	ledger := sys.Malloc(64 * entries)
	tail := sys.Malloc(64)

	var crash *asap.CrashState
	sys.Spawn("appender", func(t *asap.Thread) {
		for i := uint64(0); i < entries; i++ {
			t.Begin()
			t.StoreUint64(ledger+64*i, 1000+i) // the record
			t.StoreUint64(tail, i+1)           // publish the new tail
			t.End()
			t.Compute(40)
			if i == entries/2 {
				// Power failure mid-stream, with persists outstanding.
				crash, _ = sys.Crash()
				return
			}
		}
	})
	sys.Run()

	fmt.Printf("crash at cycle %d with ledger half-written\n", sys.Now())
	rep, err := crash.Recover()
	if err != nil {
		panic(err)
	}
	fmt.Printf("recovery rolled back %d uncommitted regions (%d undo entries)\n",
		rep.Uncommitted, rep.EntriesRestored)

	// Verify the prefix property: tail == n implies entries 0..n-1 are all
	// present, and nothing beyond the tail survived.
	n := crash.ReadUint64(tail)
	fmt.Printf("recovered tail = %d\n", n)
	for i := uint64(0); i < entries; i++ {
		v := crash.ReadUint64(ledger + 64*i)
		switch {
		case i < n && v != 1000+i:
			panic(fmt.Sprintf("entry %d missing below the tail: %d", i, v))
		case i >= n && v != 0:
			panic(fmt.Sprintf("entry %d survived beyond the tail: %d", i, v))
		}
	}
	fmt.Println("ledger is a consistent prefix: no entry committed ahead of its dependence")
}
