package cache

import (
	"sort"

	"asap/internal/arch"
)

// Meta is the tag-extension state of one cache line (§4.6, Figure 3 ❷).
// Hardware replicates these bits next to every cached copy and keeps them
// coherent; the simulator keeps the single post-coherence value per line.
type Meta struct {
	line arch.LineAddr

	// PBit marks the line as persistent-memory data; set from the page
	// table bit when the line is brought into the cache.
	PBit bool
	// Locks counts LPOs in flight for the line. The paper describes a
	// single LockBit set between initiating a line's LPO and the LPO's
	// completion (§4.6.1), which suffices when one region at a time logs
	// a line; with regions on different threads first-writing the same
	// line concurrently, each in-flight LPO must keep the line pinned —
	// otherwise the first acceptance would unlock the line and let a
	// newer region's DPO persist a value whose undo entry is still in
	// flight (and lost at a crash). The hardware analogue is a small
	// saturating counter in place of the bit. While Locks > 0 the line
	// may be neither written back (DPO) nor evicted.
	Locks int
	// Owner is the atomic region that last wrote the line, or NoRID.
	Owner arch.RID

	// holders is a bitmask of cores whose private (L1/L2) caches hold the
	// line; used for write invalidations.
	holders uint64
}

// Line returns the line address this metadata describes.
func (m *Meta) Line() arch.LineAddr { return m.line }

// Locked reports whether any LPO for the line is still in flight.
func (m *Meta) Locked() bool { return m.Locks > 0 }

// Lock pins the line for one more in-flight LPO.
func (m *Meta) Lock() { m.Locks++ }

// Unlock releases one in-flight LPO's pin.
func (m *Meta) Unlock() {
	if m.Locks <= 0 {
		panic("cache: unlock of a line with no LPO in flight")
	}
	m.Locks--
}

// Table is the line-metadata registry for the whole hierarchy.
type Table struct {
	meta         map[arch.LineAddr]*Meta
	isPersistent func(arch.LineAddr) bool
}

// NewTable builds a metadata table. isPersistent is the page-table lookup
// that seeds the PBit on first touch.
func NewTable(isPersistent func(arch.LineAddr) bool) *Table {
	return &Table{meta: make(map[arch.LineAddr]*Meta), isPersistent: isPersistent}
}

// Get returns the metadata for line, creating it (with the PBit seeded from
// the page table) on first touch.
func (t *Table) Get(line arch.LineAddr) *Meta {
	m, ok := t.meta[line]
	if !ok {
		m = &Meta{line: line, PBit: t.isPersistent(line)}
		t.meta[line] = m
	}
	return m
}

// Peek returns the metadata for line without creating it.
func (t *Table) Peek(line arch.LineAddr) *Meta { return t.meta[line] }

// LockedCount returns how many lines are currently pinned by in-flight
// LPOs (diagnostics and invariant tests).
func (t *Table) LockedCount() int {
	n := 0
	for _, m := range t.meta {
		if m.Locked() {
			n++
		}
	}
	return n
}

// LocksTotal returns the sum of in-flight-LPO pins across all lines. The
// invariant engine checks it against the engine's own in-flight counter.
func (t *Table) LocksTotal() int {
	n := 0
	for _, m := range t.meta {
		n += m.Locks
	}
	return n
}

// VisitLocked calls fn for every line currently pinned by an in-flight
// LPO, in ascending line order (deterministic violation reports).
func (t *Table) VisitLocked(fn func(m *Meta)) {
	lines := make([]arch.LineAddr, 0, 8)
	for line, m := range t.meta {
		if m.Locked() {
			lines = append(lines, line)
		}
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, line := range lines {
		fn(t.meta[line])
	}
}
