package core

import (
	"sort"

	"asap/internal/arch"
	"asap/internal/cache"
	"asap/internal/machine"
	"asap/internal/memdev"
	"asap/internal/obs"
	"asap/internal/sim"
	"asap/internal/trace"
	"asap/internal/wal"
)

// Load implements a program load: cache timing plus data-dependence
// capture on persistent lines (§4.6.3).
func (e *Engine) Load(t *sim.Thread, addr uint64, buf []byte) {
	ts := e.state(t)
	machine.VisitLines(addr, len(buf), func(line arch.LineAddr) {
		lat, meta := e.m.Caches.AccessBlocking(t, ts.core, line, false)
		t.Advance(lat)
		if e.m.Heap.IsPersistentLine(line) {
			e.onPersistentAccess(t, ts, line, meta, false)
		}
	})
	e.m.Heap.Read(addr, buf)
}

// Store implements a program store: cache timing, dependence capture,
// first-write LPO initiation (§4.6.1) and CLPtr tracking (§4.6.2). The
// heap is updated after the old line values have been snapshotted for the
// undo log.
func (e *Engine) Store(t *sim.Thread, addr uint64, data []byte) {
	ts := e.state(t)
	machine.VisitLines(addr, len(data), func(line arch.LineAddr) {
		lat, meta := e.m.Caches.AccessBlocking(t, ts.core, line, true)
		t.Advance(lat)
		if e.m.Heap.IsPersistentLine(line) {
			e.onPersistentAccess(t, ts, line, meta, true)
		}
	})
	e.m.Heap.Write(addr, data)
}

// onPersistentAccess performs the §4.6 per-access hardware work. meta is
// the line's tag-extension metadata, threaded through from the cache
// access so the hot path never re-probes the table.
func (e *Engine) onPersistentAccess(t *sim.Thread, ts *threadState, line arch.LineAddr, meta *cache.Meta, isWrite bool) {
	r := ts.cur
	if r == nil {
		// Access outside any atomic region: not logged, not tracked. A
		// write makes the previous owner's RID meaningless for recovery
		// purposes, so clear it.
		if isWrite {
			meta.Owner = arch.NoRID
		}
		return
	}

	// Dependence capture on every read and write (§4.6.3).
	if owner := meta.Owner; owner != arch.NoRID && owner != r.rid {
		if e.depOf(owner) != nil {
			e.addDep(t, r, owner)
		} else {
			meta.Owner = arch.NoRID // owner already committed; lazy clear
		}
	}
	if !isWrite {
		return
	}

	if meta.Owner != r.rid {
		// First write to this line by this region (§4.6.1).
		e.initiateLPO(t, ts, r, line, meta)
		meta.Owner = r.rid
	}
	e.noteWrite(t, r, line, meta)
}

// initiateLPO allocates a log entry, pins the line, and sends the old
// line value toward the WPQ. All of a record's persist operations are
// routed via the record's header line so they are accepted in allocation
// order, keeping the record contiguous for recovery.
func (e *Engine) initiateLPO(t *sim.Thread, ts *threadState, r *regionState, line arch.LineAddr, meta *cache.Meta) {
	if r.rec == nil {
		lh := e.homeLH(r.rid)
		if !lh.HasSpaceFor(r.rid) {
			*e.m.Cells.LHWPQStalls++
			e.prof.Enter(t, obs.LHWPQFull)
			t.WaitUntil(func() bool { return lh.HasSpaceFor(r.rid) })
			e.prof.Exit(t)
		}
		header, end, ok := ts.log.AllocRecord()
		if !ok {
			// Log overflow exception (§4.4): grow the buffer.
			*e.m.Cells.LogOverflows++
			e.prof.Enter(t, obs.LogOverflow)
			t.Advance(e.opt.OverflowPenalty)
			e.prof.Exit(t)
			ts.log.Grow()
			header, end, ok = ts.log.AllocRecord()
			if !ok {
				panic("core: log allocation failed after grow")
			}
		}
		r.rec = &record{header: header, h: lh.Open(r.rid, header)}
		r.logEnd = end
		r.logEpoch = ts.log.Overflows()
	}

	rec := r.rec
	idx := rec.allocated
	rec.allocated++
	logLine := wal.EntryLine(rec.header, idx)
	if rec.allocated == wal.RecordEntries {
		// Last entry allocated: move the record to the LH-WPQ's closing
		// side so the next first-write opens a fresh record immediately.
		// The header line travels to the WPQ once all the record's LPOs
		// are accepted — an intra-persistence-domain move, never on the
		// thread's critical path.
		e.homeLH(r.rid).BeginClose(r.rid)
		r.rec = nil
	}

	// The record-allocation paths above can yield the thread (LH-WPQ
	// stall, log-overflow penalty), as can dependence capture before this
	// call — and while it is parked the line is resident but not yet
	// pinned, so another core's fills may evict it. Hardware sets the
	// LockBit in the same cycle the store completes; restore that
	// atomicity by re-fetching the line before pinning it. The refetch
	// latency is charged only after the pin so the line cannot slip out
	// again while the clock advances.
	var refetch uint64
	if !e.m.Caches.Present(line) {
		refetch, _ = e.m.Caches.AccessBlocking(t, ts.core, line, true)
	}
	meta.Lock()
	e.lpoInFlight++
	if refetch != 0 {
		t.Advance(refetch)
	}
	entry := e.m.Fabric.NewEntry(memdev.KindLPO, r.rid, logLine, line)
	e.m.Heap.ReadLineInto(line, entry.Payload) // old value, pre-store
	payload := entry.Payload                   // read again at acceptance, before any recycle
	*e.m.Cells.LPOsIssued++
	e.emit(trace.LPOIssue, r.rid, line, 0)
	e.m.Fabric.SubmitPersistOn(e.m.Fabric.ChannelFor(rec.header), entry, func(uint64) {
		e.lpoAccepted(r, rec, line, logLine, meta, payload)
	})
}

// lpoAccepted runs at WPQ acceptance: the LPO is complete (§4.1). The
// line's lock count drops, the LH-WPQ header gains the entry (with the
// entry's CRC, so recovery can detect a torn persist), DPO dropping
// fires, and — once no LPO for the line remains in flight — waiting DPOs
// for the line become eligible.
func (e *Engine) lpoAccepted(r *regionState, rec *record, line, logLine arch.LineAddr, meta *cache.Meta, payload []byte) {
	meta.Unlock()
	e.lpoInFlight--
	e.emit(trace.LPOAccept, r.rid, line, 0)
	if e.opt.DPODropping {
		e.m.Fabric.DropDPOFor(line)
	}

	rec.h.DataLines = append(rec.h.DataLines, line)
	rec.h.LogLines = append(rec.h.LogLines, logLine)
	rec.h.EntryCRCs = append(rec.h.EntryCRCs, wal.Checksum(payload))
	rec.h.PayloadCRC = wal.ChecksumUpdate(rec.h.PayloadCRC, payload)
	rec.accepted++
	if rec.accepted == wal.RecordEntries {
		// Every entry of the closing record is persistence-domain
		// resident: the header line moves to the WPQ (Figure 5b). The
		// LH-WPQ slot frees once the WPQ has accepted the header, so the
		// header contents never leave the persistence domain.
		lh := e.homeLH(r.rid)
		hdr := e.m.Fabric.NewEntry(memdev.KindLogHeader, r.rid, rec.header, rec.header)
		hdr.SetPayload(wal.EncodeHeaderChecked(r.rid, rec.h.DataLines, rec.h.PayloadCRC))
		headerAddr := rec.header
		e.m.Fabric.SubmitPersistOn(e.m.Fabric.ChannelFor(rec.header), hdr, func(uint64) {
			lh.FinishClose(headerAddr)
		})
	}

	e.lineUnlocked(line)
}

// lineUnlocked re-checks DPO eligibility for every region holding a CLPtr
// to line, now that an LPO for it completed. Regions are visited in RID order
// so that same-line DPO submissions — and therefore the PM image — stay
// deterministic (map iteration order is not).
func (e *Engine) lineUnlocked(line arch.LineAddr) {
	rids := make([]arch.RID, 0, len(e.regions))
	for rid, r := range e.regions {
		if r.cl != nil && r.cl.Slot(line) != nil {
			rids = append(rids, rid)
		}
	}
	sort.Slice(rids, func(i, j int) bool { return rids[i] < rids[j] })
	for _, rid := range rids {
		r := e.regions[rid]
		if r == nil || r.cl == nil {
			continue
		}
		if s := r.cl.Slot(line); s != nil {
			e.maybeIssueDPO(r, s)
		}
	}
}

// noteWrite tracks the write in the region's CL List entry (§4.6.2),
// stalling if all CLPtr slots are busy, and re-evaluates DPO initiation
// for every slot (the coalescing distance counter advanced). meta is the
// written line's metadata; it is cached in the CLPtr slot so DPO
// eligibility checks read the lock count directly.
func (e *Engine) noteWrite(t *sim.Thread, r *regionState, line arch.LineAddr, meta *cache.Meta) {
	cl := r.cl
	if cl.Slot(line) == nil && !r.clList.CanAddSlot(cl, line) {
		// All CLPtr slots busy: force the pending DPOs out (ignoring the
		// coalescing distance) and stall until one completes (§4.6.2).
		*e.m.Cells.CLStalls++
		for _, s := range append([]*CLSlot(nil), cl.Slots...) {
			s.Forced = true
			e.maybeIssueDPO(r, s)
		}
		e.prof.Enter(t, obs.CLPtr)
		t.WaitUntil(func() bool { return r.clList.CanAddSlot(r.cl, line) })
		e.prof.Exit(t)
	}
	for _, s := range cl.Slots {
		if s.Line != line {
			s.Age++
		}
	}
	s := r.clList.AddSlot(cl, line)
	s.Meta = meta
	if s.NeedIssue || s.Outstanding > 0 {
		// This write rides an already-pending DPO: a coalescing win.
		*e.m.Cells.DPOsCoalesce++
	}
	s.NeedIssue = true
	s.Age = 0
	for _, s := range append([]*CLSlot(nil), cl.Slots...) {
		e.maybeIssueDPO(r, s)
	}
}

// maybeIssueDPO initiates the DPO for slot s when permitted: every LPO
// logging the line has completed (lock count zero — the undo material
// for each value the DPO may persist is persistence-domain resident),
// no DPO is in flight, and either the coalescing distance has been
// reached or the region has ended (§4.6.2).
func (e *Engine) maybeIssueDPO(r *regionState, s *CLSlot) {
	if !s.NeedIssue || s.Outstanding > 0 {
		return
	}
	if s.Meta.Locked() {
		return
	}
	done := r.cl != nil && r.cl.Done
	if e.opt.Coalescing && !done && !s.Forced && s.Age < e.opt.CoalesceDistance {
		return
	}
	s.NeedIssue = false
	s.Outstanding++
	*e.m.Cells.DPOsIssued++
	e.emit(trace.DPOIssue, r.rid, s.Line, 0)
	entry := e.m.Fabric.NewEntry(memdev.KindDPO, r.rid, s.Line, s.Line)
	e.m.Heap.ReadLineInto(s.Line, entry.Payload)
	e.m.Fabric.SubmitPersist(entry, func(uint64) { e.dpoAccepted(r, s) })
}

// dpoAccepted runs at WPQ acceptance of a DPO: the slot clears — unless
// newer writes arrived while the DPO was in flight, in which case another
// DPO is due (the hardware would have re-added the pointer).
func (e *Engine) dpoAccepted(r *regionState, s *CLSlot) {
	s.Outstanding--
	e.emit(trace.DPOAccept, r.rid, s.Line, 0)
	if s.NeedIssue {
		e.maybeIssueDPO(r, s)
		return
	}
	e.m.Caches.MarkClean(s.Line)
	if r.cl == nil {
		return
	}
	r.cl.removeSlot(s.Line)
	if r.cl.Done && len(r.cl.Slots) == 0 {
		e.l1Done(r)
	}
}

// onLLCEvict handles a persistent line leaving the LLC (§5.3): spill an
// active OwnerRID to the DRAM buffer (noting it in the Bloom filter) and
// write dirty data back to PM.
func (e *Engine) onLLCEvict(info cache.EvictInfo) {
	meta := info.Meta
	if meta.Owner != arch.NoRID {
		if e.depOf(meta.Owner) != nil {
			e.ownerBuf[info.Line] = meta.Owner
			e.bloom.Add(info.Line)
			*e.m.Cells.OwnerIDSpills++
			e.emit(trace.OwnerSpill, meta.Owner, info.Line, 0)
		}
		meta.Owner = arch.NoRID // the tag leaves the chip with the line
	}
	if info.Dirty {
		entry := e.m.Fabric.NewEntry(memdev.KindEvict, arch.NoRID, info.Line, info.Line)
		e.m.Heap.ReadLineInto(info.Line, entry.Payload)
		e.m.Fabric.SubmitPersist(entry, nil)
	}
}

// onFill handles a persistent line entering the LLC from memory: if the
// Bloom filter says it might have a spilled OwnerRID, probe the DRAM
// buffer and reload the RID if its region is still uncommitted (§5.3).
func (e *Engine) onFill(line arch.LineAddr, meta *cache.Meta) {
	if !e.bloom.MayContain(line) {
		return
	}
	*e.m.Cells.BloomHits++
	rid, ok := e.ownerBuf[line]
	if !ok {
		return
	}
	delete(e.ownerBuf, line)
	if e.depOf(rid) != nil {
		meta.Owner = rid
		*e.m.Cells.OwnerIDReloads++
		e.emit(trace.OwnerReload, rid, line, 0)
	}
}
