package heap

import (
	"sort"

	"asap/internal/snapshot"
)

// AppendState digests the heap: allocator cursors, both page windows
// (lazily-allocated pages encode presence explicitly so a touched-but-zero
// page differs from an untouched one), and the allocation bookkeeping maps
// in sorted key order — map iteration order must never reach a digest.
func (h *Heap) AppendState(e *snapshot.Enc) {
	e.Section("heap")
	e.U64(h.nextPersistent)
	e.U64(h.nextVolatile)
	e.I64(int64(h.npages))
	for _, window := range [][][]byte{h.persistentPages, h.volatilePages} {
		e.I64(int64(len(window)))
		for _, pg := range window {
			e.Bool(pg != nil)
			if pg != nil {
				e.Bytes(pg)
			}
		}
	}

	addrs := make([]uint64, 0, len(h.sizes))
	for a := range h.sizes {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	e.I64(int64(len(addrs)))
	for _, a := range addrs {
		e.U64(a)
		e.U64(h.sizes[a])
	}

	classes := make([]uint64, 0, len(h.freeLists))
	for c := range h.freeLists {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	e.I64(int64(len(classes)))
	for _, c := range classes {
		e.U64(c)
		fl := h.freeLists[c]
		e.I64(int64(len(fl)))
		for _, a := range fl {
			e.U64(a)
		}
	}
}
