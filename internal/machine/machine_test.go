package machine

import (
	"testing"
	"testing/quick"

	"asap/internal/arch"
	"asap/internal/sim"
)

func TestLinesOfSingleLine(t *testing.T) {
	lines := LinesOf(100, 8)
	if len(lines) != 1 || lines[0] != 64 {
		t.Fatalf("LinesOf(100,8) = %v", lines)
	}
}

func TestLinesOfSpansBoundary(t *testing.T) {
	lines := LinesOf(60, 8) // bytes 60..67 cross line 0 into line 1
	if len(lines) != 2 || lines[0] != 0 || lines[1] != 64 {
		t.Fatalf("LinesOf(60,8) = %v", lines)
	}
}

func TestLinesOfLargeSpan(t *testing.T) {
	lines := LinesOf(64, 2048)
	if len(lines) != 32 {
		t.Fatalf("2KB from line start should touch 32 lines, got %d", len(lines))
	}
}

func TestLinesOfZeroSize(t *testing.T) {
	lines := LinesOf(128, 0)
	if len(lines) != 1 {
		t.Fatalf("zero-size access still touches one line, got %v", lines)
	}
}

func TestLinesOfCoversEveryByte(t *testing.T) {
	f := func(off uint16, size uint8) bool {
		addr := uint64(off)
		n := int(size)
		if n == 0 {
			n = 1
		}
		lines := LinesOf(addr, n)
		set := map[arch.LineAddr]bool{}
		for _, l := range lines {
			set[l] = true
		}
		for i := 0; i < n; i++ {
			if !set[arch.LineOf(addr+uint64(i))] {
				return false
			}
		}
		// And no extra lines.
		return len(lines) == len(set) && len(set) <= n/arch.LineSize+2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCoreOfDefaultsAndMigration(t *testing.T) {
	m := New(Config{Cores: 4})
	var got [3]int
	m.K.Spawn("a", func(th *sim.Thread) {
		got[0] = m.CoreOf(th)
		m.SetCore(th, 3)
		got[1] = m.CoreOf(th)
	})
	m.K.Spawn("b", func(th *sim.Thread) {
		th.Advance(10)
		got[2] = m.CoreOf(th)
	})
	m.K.Run()
	if got[0] != 0 || got[1] != 3 || got[2] != 1 {
		t.Fatalf("cores = %v, want [0 3 1]", got)
	}
}

func TestSetCoreOutOfRangePanics(t *testing.T) {
	m := New(Config{Cores: 2})
	m.K.Spawn("a", func(th *sim.Thread) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		m.SetCore(th, 7)
	})
	m.K.Run()
}

func TestDefaultsFilledIn(t *testing.T) {
	m := New(Config{})
	if m.Cfg.Cores != 18 {
		t.Fatalf("default cores = %d", m.Cfg.Cores)
	}
	if m.Cfg.Mem.WPQEntries != 128 {
		t.Fatalf("default WPQ = %d", m.Cfg.Mem.WPQEntries)
	}
	if m.Caches == nil || m.Fabric == nil || m.Heap == nil {
		t.Fatal("machine not fully assembled")
	}
}

func TestAccessChargesLatencyAndTouches(t *testing.T) {
	m := New(Config{Cores: 2})
	addr := m.Heap.Alloc(128, true)
	var touched []arch.LineAddr
	var elapsed uint64
	m.K.Spawn("a", func(th *sim.Thread) {
		start := th.Now()
		m.Access(th, addr, 128, true, func(l arch.LineAddr) { touched = append(touched, l) })
		elapsed = th.Now() - start
	})
	m.K.Run()
	if len(touched) != 2 {
		t.Fatalf("touched %d lines, want 2", len(touched))
	}
	if elapsed == 0 {
		t.Fatal("no latency charged")
	}
}
