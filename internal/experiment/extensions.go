package experiment

import (
	"fmt"
	"strings"

	"asap/internal/core"
	"asap/internal/machine"
	"asap/internal/resultcache"
	"asap/internal/runner"
	"asap/internal/schemes"
	"asap/internal/stats"
	"asap/internal/workload"
)

// The experiments in this file go beyond the paper's figures: ablations of
// ASAP's design constants (the choices §4.6.2 and Table 2 fix
// empirically), the co-running throughput claim of §1, the asap_fence
// degeneration noted in §6.4, and the PM-lifetime framing of §5.1.
// Like the figures, each fans its run matrix across the package pool.

// AblationCoalesce sweeps the DPO coalescing distance. The paper picks 4:
// "no benefit has been observed [at] a distance larger than four"
// (§4.6.2). Values are PM writes and cycles normalized to distance 4.
func AblationCoalesce(scale Scale, bench string) *Table {
	distances := []int{1, 2, 4, 8, 16}
	t := &Table{
		Title:   "Ablation: DPO coalescing distance on " + bench,
		Note:    "normalized to the paper's distance 4; §4.6.2 predicts a knee at 4",
		Columns: []string{"pm.writes", "cycles", "dpo.coalesced"},
	}
	var specs []runSpec
	for _, d := range distances {
		opt := core.DefaultOptions()
		opt.CoalesceDistance = d
		specs = append(specs, runSpec{
			v: Variant{Scheme: "ASAP", ASAPOpts: &opt}, bench: bench, scale: scale,
			valueBytes: 64, label: fmt.Sprintf("%s/dist=%d", bench, d),
		})
	}
	res := runAll("ablation-coalesce", specs)
	type point struct{ writes, cycles, coal float64 }
	pts := map[int]point{}
	for i, d := range distances {
		r := res[i]
		pts[d] = point{
			writes: float64(r.Stats[stats.PMWrites]),
			cycles: float64(r.Cycles),
			coal:   float64(r.Stats[stats.DPOsCoalesce]),
		}
	}
	base := pts[4]
	for _, d := range distances {
		p := pts[d]
		coal := p.coal
		if base.coal > 0 {
			coal = p.coal / base.coal
		}
		t.AddRow(fmt.Sprintf("dist=%d", d), p.writes/base.writes, p.cycles/base.cycles, coal)
	}
	return t
}

// AblationStructures sweeps the CL List and Dep slot sizing (Table 2 fixes
// 4 entries x 8 CLPtrs and 4 Dep slots) and reports the stall counts and
// run time each choice produces.
func AblationStructures(scale Scale, bench string) *Table {
	t := &Table{
		Title:   "Ablation: hardware structure sizing on " + bench,
		Note:    "cycles normalized to the Table 2 configuration; stalls are absolute counts",
		Columns: []string{"cycles", "stall.clptr", "stall.depslots", "stall.lhwpq"},
	}
	configs := []struct {
		name             string
		clEntries, slots int
		depSlots         int
	}{
		{"CL2x4,Dep2", 2, 4, 2},
		{"CL4x8,Dep4", 4, 8, 4}, // Table 2
		{"CL8x16,Dep8", 8, 16, 8},
	}
	var specs []runSpec
	for _, c := range configs {
		opt := core.DefaultOptions()
		opt.CLListEntries, opt.CLPtrSlots, opt.DepSlots = c.clEntries, c.slots, c.depSlots
		specs = append(specs, runSpec{
			v: Variant{Scheme: "ASAP", ASAPOpts: &opt}, bench: bench, scale: scale,
			valueBytes: 64, label: bench + "/" + c.name,
		})
	}
	res := runAll("ablation-structs", specs)
	var base float64
	for i, c := range configs {
		r := res[i]
		if c.name == "CL4x8,Dep4" {
			base = float64(r.Cycles)
		}
		t.AddRow(c.name, float64(r.Cycles),
			float64(r.Stats[stats.CLStalls]),
			float64(r.Stats[stats.DepStalls]),
			float64(r.Stats[stats.LHWPQStalls]))
	}
	// Normalize the cycles column after the base is known.
	for i := range t.Rows {
		t.Rows[i].Values[0] /= base
	}
	return t
}

// CoRunning measures combined throughput when several memory-intensive
// benchmarks share the machine — where §1 argues ASAP's traffic reduction
// pays off. Values are combined ops/kcycle.
func CoRunning(scale Scale) *Table {
	mix := []string{"Q", "HM", "SS"}
	t := &Table{
		Title:   "Extension: co-running throughput (Q + HM + SS sharing the machine)",
		Note:    "combined ops/kcycle; ASAP's traffic optimizations free PM bandwidth for the mix",
		Columns: []string{"ops/kcycle", "pm.writes"},
	}
	noOpt := core.DefaultOptions()
	noOpt.Coalescing, noOpt.LPODropping, noOpt.DPODropping = false, false, false
	variants := []struct {
		name string
		v    Variant
	}{
		{"SW", Variant{Scheme: "SW"}},
		{"HWUndo", Variant{Scheme: "HWUndo"}},
		{"HWRedo", Variant{Scheme: "HWRedo"}},
		{"ASAP-No-Opt", Variant{Scheme: "ASAP", ASAPOpts: &noOpt}},
		{"ASAP", Variant{Scheme: "ASAP"}},
		{"NP", Variant{Scheme: "NP"}},
	}
	jobs := make([]runner.Job[workload.MultiResult], len(variants))
	for i, v := range variants {
		v := v
		jobs[i] = runner.Job[workload.MultiResult]{
			Label: "corun/" + v.name,
			Run:   func() workload.MultiResult { return runMulti(v.v, mix, scale) },
		}
		if c := cellCache; c != nil {
			key := resultcache.NewKey().
				Field("kind", "corun.v1").
				Field("variant", v.name).
				Field("mix", strings.Join(mix, ",")).
				Fieldf("threads", "%d", scale.Threads).
				Fieldf("ops", "%d", scale.OpsPerThread).
				Fieldf("items", "%d", scale.InitialItems).
				Field("codeversion", cacheCodeVersion).
				Sum()
			jobs[i].Cached = func() (workload.MultiResult, bool) {
				blob, ok := c.Get(key)
				if !ok {
					return workload.MultiResult{}, false
				}
				return decodeMulti(blob)
			}
			jobs[i].Store = func(r workload.MultiResult) {
				if blob, ok := encodeMulti(r); ok {
					c.Put(key, blob)
				}
			}
		}
	}
	res, err := runner.Collect(pool, jobs)
	if err != nil {
		panic(err)
	}
	for i, v := range variants {
		t.AddRow(v.name, res[i].Throughput(), float64(res[i].Stats[stats.PMWrites]))
	}
	return t
}

// runMulti is Run's co-running sibling.
func runMulti(v Variant, mix []string, scale Scale) workload.MultiResult {
	mc := machine.DefaultConfig()
	if v.PMMult > 1 {
		mc.Mem.PMLatencyMult = v.PMMult
	}
	m := machine.New(mc)
	var s machine.Scheme
	switch v.Scheme {
	case "NP":
		s = schemes.NewNP(m)
	case "SW":
		s = schemes.NewSW(m)
	case "HWUndo":
		s = schemes.NewHWUndo(m)
	case "HWRedo":
		s = schemes.NewHWRedo(m)
	case "ASAP":
		opt := core.DefaultOptions()
		if v.ASAPOpts != nil {
			opt = *v.ASAPOpts
		}
		s = core.NewEngine(m, opt)
	default:
		panic("experiment: unknown scheme " + v.Scheme)
	}
	var benches []workload.Benchmark
	for _, name := range mix {
		benches = append(benches, workload.ByName(name))
	}
	cfg := workload.Config{
		ValueBytes:   64,
		InitialItems: scale.InitialItems,
		Threads:      scale.Threads,
		OpsPerThread: scale.OpsPerThread,
		Seed:         42,
	}
	res := workload.RunMulti(&workload.Env{M: m, S: s}, benches, cfg)
	if len(res.CheckErrs) > 0 {
		panic(fmt.Sprintf("experiment: co-run inconsistency: %v", res.CheckErrs))
	}
	return res
}

// FenceSweep quantifies §5.2/§6.4: with an asap_fence after every N
// regions ASAP trades back toward synchronous behaviour. Two metrics on
// Q: throughput, and the mean time a fence actually blocks. In the
// ADR/WPQ-accept persistence model commits usually complete before the
// next fence arrives, so the throughput cost only materializes when the
// memory system is pressured — the wait column shows the latency that
// fences do absorb.
func FenceSweep(scale Scale) *Table {
	t := &Table{
		Title:   "Extension: asap_fence frequency on Q",
		Note:    "§6.4: 'if asap_fence is used, then ASAP degenerates to HWUndo'",
		Columns: []string{"ops/kcycle", "wait/fence"},
	}
	periods := []int{0, 16, 4, 1}
	var specs []runSpec
	for _, p := range periods {
		p := p
		specs = append(specs, runSpec{
			label: fmt.Sprintf("Q/period=%d", p),
			// The closure's only inputs beyond the fixed fences.v1 recipe
			// are the fence period, the scale, and the seed.
			cacheKey: resultcache.NewKey().
				Field("kind", "fences.v1").
				Fieldf("period", "%d", p).
				Fieldf("threads", "%d", scale.Threads).
				Fieldf("ops", "%d", scale.OpsPerThread).
				Fieldf("items", "%d", scale.InitialItems),
			custom: func() workload.Result {
				// Moderate PM pressure (4x) so commits lag region ends and a fence
				// genuinely waits, without saturating the WPQ outright. (Under a
				// fully saturated WPQ fencing can even help, by pacing submissions
				// so the §5.1 drops keep firing — an emergent effect worth knowing
				// about, but not this table's.)
				mc := machine.DefaultConfig()
				mc.Mem.Controllers, mc.Mem.ChannelsPerMC = 1, 2
				mc.Mem.PMLatencyMult = 4
				m := machine.New(mc)
				s := core.NewEngine(m, core.DefaultOptions())
				cfg := workload.Config{
					ValueBytes:   64,
					InitialItems: scale.InitialItems,
					Threads:      scale.Threads,
					OpsPerThread: scale.OpsPerThread,
					Seed:         42,
					FencePeriod:  p,
				}
				return workload.Run(&workload.Env{M: m, S: s}, workload.NewQueue(), cfg)
			},
		})
	}
	res := runAll("fences", specs)
	for i, p := range periods {
		r := res[i]
		name := "no fence"
		if p > 0 {
			name = fmt.Sprintf("every %d", p)
		}
		wait := 0.0
		if n := r.Stats[stats.Fences]; n > 0 {
			wait = float64(r.Stats[stats.FenceCycles]) / float64(n)
		}
		t.AddRow(name, r.Throughput(), wait)
	}
	return t
}

// DesignChoice compares the two asynchronous-commit designs the paper
// weighs in §3: undo-based ASAP (chosen — more eager DPOs, no read
// redirection) against redo-based ASAP-Redo (sketched in Figure 2c).
// Values are speedup over SW and PM write traffic normalized to ASAP.
func DesignChoice(scale Scale) *Table {
	t := &Table{
		Title:   "Extension: undo vs redo asynchronous commit (the §3 design choice)",
		Note:    "ASAP (undo) chosen by the paper for eager DPOs and direct reads",
		Columns: []string{"ASAP xSW", "ASAP-Redo xSW", "ASAP traffic", "ASAP-Redo traffic"},
	}
	order := []string{"SW", "ASAP", "ASAP-Redo"}
	var specs []runSpec
	for _, b := range scale.Benchmarks {
		for _, s := range order {
			specs = append(specs, runSpec{v: Variant{Scheme: s}, bench: b, scale: scale, valueBytes: 64})
		}
	}
	res := runAll("design", specs)
	ns := len(order)
	for i, b := range scale.Benchmarks {
		sw, undo, redo := res[i*ns], res[i*ns+1], res[i*ns+2]
		ut := float64(undo.Stats[stats.PMWrites])
		t.AddRow(b,
			float64(sw.Cycles)/float64(undo.Cycles),
			float64(sw.Cycles)/float64(redo.Cycles),
			1,
			float64(redo.Stats[stats.PMWrites])/ut)
	}
	t.AddGeoMean()
	return t
}

// Lifetime derives the §5.1 framing: PM endurance improves in proportion
// to the write-traffic reduction. Values are the projected lifetime factor
// relative to SW for one run of every benchmark.
func Lifetime(scale Scale) *Table {
	t := &Table{
		Title:   "Extension: projected PM lifetime factor (writes relative to SW, inverted)",
		Note:    "wear-leveled endurance scales with 1/write-traffic (§5.1, §1)",
		Columns: []string{"SW", "HWRedo", "HWUndo", "ASAP"},
	}
	order := []string{"SW", "HWRedo", "HWUndo", "ASAP"}
	var specs []runSpec
	for _, b := range scale.Benchmarks {
		for _, s := range order {
			specs = append(specs, runSpec{v: Variant{Scheme: s}, bench: b, scale: scale, valueBytes: 64})
		}
	}
	res := runAll("lifetime", specs)
	ns := len(order)
	for i, b := range scale.Benchmarks {
		sw := float64(res[i*ns].Stats[stats.PMWrites])
		redo := float64(res[i*ns+1].Stats[stats.PMWrites])
		undo := float64(res[i*ns+2].Stats[stats.PMWrites])
		asap := float64(res[i*ns+3].Stats[stats.PMWrites])
		t.AddRow(b, 1, sw/redo, sw/undo, sw/asap)
	}
	t.AddGeoMean()
	return t
}

// TailLatency measures region-latency percentiles on Q — the datacenter
// tail-latency concern the paper's introduction leads with (§1): a
// synchronous commit puts every persist wait on some region's critical
// path, and the occasional slow one lands in the tail. Values are cycles
// (power-of-two bucket upper bounds).
func TailLatency(scale Scale) *Table {
	t := &Table{
		Title:   "Extension: atomic-region latency percentiles on Q (cycles)",
		Note:    "§1: tail latency motivates asynchronous commit; ASAP's tail tracks NP's",
		Columns: []string{"p50", "p95", "p99"},
	}
	order := []string{"NP", "ASAP", "HWUndo", "HWRedo", "SW"}
	var specs []runSpec
	for _, s := range order {
		specs = append(specs, runSpec{v: Variant{Scheme: s}, bench: "Q", scale: scale, valueBytes: 64})
	}
	res := runAll("tail", specs)
	for i, s := range order {
		r := res[i]
		t.AddRow(s, float64(r.RegionP50), float64(r.RegionP95), float64(r.RegionP99))
	}
	return t
}

// NUMA quantifies the §7.3 remark that ASAP's insensitivity to persist
// latency also suits NUMA systems, where reaching a remote node's memory
// controller costs an interconnect hop. Values are throughput on Q,
// normalized per scheme to its own UMA run — lower means the scheme pays
// for the remote channels.
func NUMA(scale Scale) *Table {
	t := &Table{
		Title:   "Extension: NUMA sensitivity on Q (throughput vs own UMA run)",
		Note:    "§7.3: ASAP's persist latency is off the critical path, so remote channels barely hurt",
		Columns: []string{"UMA", "remote+200", "remote+800"},
	}
	order := []string{"NP", "ASAP", "HWUndo", "HWRedo"}
	penalties := []uint64{0, 200, 800}
	var specs []runSpec
	for _, s := range order {
		for _, penalty := range penalties {
			s, penalty := s, penalty
			specs = append(specs, runSpec{
				label: fmt.Sprintf("Q/%s+%d", s, penalty),
				cacheKey: resultcache.NewKey().
					Field("kind", "numa.v1").
					Field("scheme", s).
					Fieldf("penalty", "%d", penalty).
					Fieldf("threads", "%d", scale.Threads).
					Fieldf("ops", "%d", scale.OpsPerThread).
					Fieldf("items", "%d", scale.InitialItems),
				custom: func() workload.Result {
					mc := machine.DefaultConfig()
					mc.Mem.NUMARemotePenalty = penalty
					m := machine.New(mc)
					var sch machine.Scheme
					switch s {
					case "NP":
						sch = schemes.NewNP(m)
					case "ASAP":
						sch = core.NewEngine(m, core.DefaultOptions())
					case "HWUndo":
						sch = schemes.NewHWUndo(m)
					case "HWRedo":
						sch = schemes.NewHWRedo(m)
					}
					cfg := workload.Config{
						ValueBytes: 64, InitialItems: scale.InitialItems,
						Threads: scale.Threads, OpsPerThread: scale.OpsPerThread, Seed: 42,
					}
					return workload.Run(&workload.Env{M: m, S: sch}, workload.NewQueue(), cfg)
				},
			})
		}
	}
	res := runAll("numa", specs)
	np := len(penalties)
	for i, s := range order {
		base := res[i*np].Throughput()
		var vals []float64
		for j := range penalties {
			vals = append(vals, res[i*np+j].Throughput()/base)
		}
		t.AddRow(s, vals...)
	}
	return t
}

// Scaling measures throughput versus worker count on Q, whose single
// global lock makes every region a critical section — quantifying §2.1:
// "high latency atomic regions translate into high latency critical
// sections and consequently more lock contention". Values are combined
// ops/kcycle; the synchronous schemes' region-end waits serialize inside
// the lock, so their curves flatten first.
func Scaling(scale Scale) *Table {
	threads := []int{1, 2, 4, 8}
	t := &Table{
		Title:   "Extension: lock-contention scaling on Q (ops/kcycle)",
		Note:    "§2.1: persist latency inside critical sections throttles concurrency",
		Columns: []string{"1", "2", "4", "8"},
	}
	order := []string{"NP", "ASAP", "HWUndo", "SW"}
	var specs []runSpec
	for _, s := range order {
		for _, n := range threads {
			sc := scale
			sc.Threads = n
			specs = append(specs, runSpec{
				v: Variant{Scheme: s, PMMult: 4}, bench: "Q", scale: sc,
				valueBytes: 64, label: fmt.Sprintf("Q/%s/t%d", s, n),
			})
		}
	}
	res := runAll("scaling", specs)
	nt := len(threads)
	for i, s := range order {
		var vals []float64
		for j := range threads {
			vals = append(vals, res[i*nt+j].Throughput())
		}
		t.AddRow(s, vals...)
	}
	return t
}
