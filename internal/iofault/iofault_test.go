package iofault

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func TestOSPassthroughDurableWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "obj")
	if err := WriteDurable(OS{}, dir, path, []byte("hello")); err != nil {
		t.Fatalf("WriteDurable: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read back: %q, %v", got, err)
	}
	// Overwrite is atomic: either version, never a mix (here: success).
	if err := WriteDurable(OS{}, dir, path, []byte("world")); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "world" {
		t.Fatalf("after overwrite: %q", got)
	}
	// No temp debris left behind.
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("dir has %d entries after commits, want 1", len(ents))
	}
}

func TestTripFiresAtExactCount(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS{}, 1)
	ffs.Arm(Trip{Op: OpWrite, Class: ClassENOSPC, N: 3})

	f, err := ffs.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if _, err := f.Write([]byte("abcd")); err != nil {
			t.Fatalf("write %d should pass: %v", i, err)
		}
	}
	_, err = f.Write([]byte("abcd"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("3rd write: got %v, want ENOSPC", err)
	}
	var inj *InjectedError
	if !errors.As(err, &inj) || inj.Class != ClassENOSPC {
		t.Fatalf("error not an InjectedError with class: %v", err)
	}
	if Classify(err) != ClassENOSPC {
		t.Fatalf("Classify = %q", Classify(err))
	}
	// One-shot: the 4th write passes again.
	if _, err := f.Write([]byte("abcd")); err != nil {
		t.Fatalf("4th write after one-shot: %v", err)
	}
	if n := len(ffs.Log()); n != 1 {
		t.Fatalf("fault log has %d entries, want 1", n)
	}
}

func TestShortWriteLeavesPrefix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	ffs := NewFaultFS(OS{}, 7)
	ffs.Arm(Trip{Op: OpWrite, Class: ClassShortWrite, N: 1})
	f, err := ffs.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 1000)
	n, err := f.Write(payload)
	if !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("short write error: %v", err)
	}
	if n < 0 || n >= len(payload) {
		t.Fatalf("short write wrote %d of %d", n, len(payload))
	}
	f.Close()
	st, _ := os.Stat(path)
	if st.Size() != int64(n) {
		t.Fatalf("file holds %d bytes, write reported %d", st.Size(), n)
	}
}

func TestTornSyncTruncatesUnsyncedSuffix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	ffs := NewFaultFS(OS{}, 42)
	f, err := ffs.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// First batch becomes durable.
	if _, err := f.Write(make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	// Second batch is torn mid-sync.
	ffs.Arm(Trip{Op: OpSync, Class: ClassTornSync, N: 1})
	if _, err := f.Write(make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	err = f.Sync()
	if !errors.Is(err, syscall.EIO) || Classify(err) != ClassTornSync {
		t.Fatalf("torn sync: %v (class %s)", err, Classify(err))
	}
	st, _ := os.Stat(path)
	if st.Size() < 100 || st.Size() >= 200 {
		t.Fatalf("torn file is %d bytes; want [100,200): synced prefix kept, suffix torn", st.Size())
	}
	// The file is dead from here on.
	if _, err := f.Write([]byte("x")); err == nil {
		t.Fatal("write to torn file succeeded")
	}
	if err := f.Sync(); err == nil {
		t.Fatal("sync of torn file succeeded")
	}
}

func TestRenameAndDirSyncFaults(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src")
	dst := filepath.Join(dir, "dst")
	os.WriteFile(src, []byte("x"), 0o644)

	ffs := NewFaultFS(OS{}, 3)
	ffs.Arm(Trip{Op: OpRename, Class: ClassRenameFail, N: 1})
	if err := ffs.Rename(src, dst); Classify(err) != ClassRenameFail {
		t.Fatalf("rename fault: %v", err)
	}
	if _, err := os.Stat(dst); err == nil {
		t.Fatal("dst exists after failed rename")
	}
	if err := ffs.Rename(src, dst); err != nil {
		t.Fatalf("rename after one-shot: %v", err)
	}
	ffs.Arm(Trip{Op: OpSyncDir, Class: ClassEIO, N: 1})
	if err := ffs.SyncDir(dir); !errors.Is(err, syscall.EIO) {
		t.Fatalf("syncdir fault: %v", err)
	}
	if err := ffs.SyncDir(dir); err != nil {
		t.Fatalf("syncdir after one-shot: %v", err)
	}
}

func TestTripSubstrTargeting(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS{}, 5)
	ffs.Arm(Trip{Op: OpOpen, Class: ClassEIO, N: 1, Substr: "journal"})
	if _, err := ffs.OpenFile(filepath.Join(dir, "other"), os.O_CREATE|os.O_WRONLY, 0o644); err != nil {
		t.Fatalf("non-matching path faulted: %v", err)
	}
	if _, err := ffs.OpenFile(filepath.Join(dir, "journal-1"), os.O_CREATE|os.O_WRONLY, 0o644); err == nil {
		t.Fatal("matching path did not fault")
	}
}

func TestDeterministicSequence(t *testing.T) {
	run := func() []Injected {
		dir := t.TempDir()
		ffs := NewFaultFS(OS{}, 99)
		ffs.SetProb(OpWrite, 0.3)
		ffs.SetClasses(ClassENOSPC, ClassEIO, ClassShortWrite)
		f, _ := ffs.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_WRONLY, 0o644)
		for i := 0; i < 50; i++ {
			f.Write([]byte("0123456789"))
		}
		log := ffs.Log()
		// Strip paths (temp dirs differ) for comparison.
		for i := range log {
			log[i].Path = ""
		}
		return log
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("probability mode injected nothing in 50 ops at p=0.3")
	}
	if len(a) != len(b) {
		t.Fatalf("runs injected %d vs %d faults", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
