package stats

import (
	"sync"
	"time"
)

// JobMetrics is the machine-readable summary of one pooled experiment
// job: host wall time plus the simulated-cycle and operation counts the
// run produced. Cycles/Ops are zero for jobs whose result type exposes
// no simulator metrics.
type JobMetrics struct {
	Label     string  `json:"label"`
	WallNS    int64   `json:"wall_ns"`
	Cycles    uint64  `json:"cycles,omitempty"`
	Ops       int64   `json:"ops,omitempty"`
	OpsPerSec float64 `json:"ops_per_sec,omitempty"`
}

// Wall returns the job's host wall time.
func (m JobMetrics) Wall() time.Duration { return time.Duration(m.WallNS) }

// JobLog accumulates JobMetrics across pool batches. It is safe for
// concurrent use, though the runner appends in submission order from a
// single goroutine so the log order is deterministic.
type JobLog struct {
	mu   sync.Mutex
	jobs []JobMetrics
}

// Record appends one job's metrics.
func (l *JobLog) Record(m JobMetrics) {
	l.mu.Lock()
	l.jobs = append(l.jobs, m)
	l.mu.Unlock()
}

// Snapshot returns a copy of the recorded metrics in record order.
func (l *JobLog) Snapshot() []JobMetrics {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]JobMetrics, len(l.jobs))
	copy(out, l.jobs)
	return out
}

// Len returns the number of recorded jobs.
func (l *JobLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.jobs)
}

// TotalWall sums every job's wall time: the serial cost of the work,
// which divided by the batch's real elapsed time gives the achieved
// parallel speedup.
func (l *JobLog) TotalWall() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	var sum time.Duration
	for _, j := range l.jobs {
		sum += j.Wall()
	}
	return sum
}

// Slowest returns the longest-running job, or false when empty.
func (l *JobLog) Slowest() (JobMetrics, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.jobs) == 0 {
		return JobMetrics{}, false
	}
	max := l.jobs[0]
	for _, j := range l.jobs[1:] {
		if j.WallNS > max.WallNS {
			max = j
		}
	}
	return max, true
}
