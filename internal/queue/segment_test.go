package queue

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"asap/internal/iofault"
)

// writeSegment hand-builds one segment file: header plus frames. Tests
// use it to construct the exact on-disk layouts a crash can leave.
func writeSegment(t *testing.T, dir string, seq uint64, recs []Record) string {
	t.Helper()
	buf := encodeFileHeader()
	for _, rec := range recs {
		frame, err := encodeRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		buf = append(buf, frame...)
	}
	path := filepath.Join(dir, segName(seq))
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func segPolicy() Policy {
	return Policy{
		MaxDeliveries: 3,
		LeaseTimeout:  time.Minute,
		BackoffBase:   time.Second,
		BackoffCap:    4 * time.Second,
	}
}

// listJSON renders a queue's job table for byte-identical comparison.
func listJSON(t *testing.T, q *Queue) string {
	t.Helper()
	b, err := json.Marshal(q.List())
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestQueueRotationCompactsToOneSegment drives a queue over a tiny
// segment threshold and checks the steady state: rotations happened,
// exactly one live segment remains, and a restart recovers the same
// job table from just the checkpoint-seeded segment.
func TestQueueRotationCompactsToOneSegment(t *testing.T) {
	dir := t.TempDir()
	clock := func() time.Time { return time.Unix(1_700_000_000, 0) }
	j, recs, _, err := OpenDirJournal(iofault.OS{}, dir, JournalOptions{SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	q, _, err := Restore(segPolicy(), Options{Journal: j, Clock: clock}, recs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		spec, _ := json.Marshal(map[string]any{"i": i, "pad": string(make([]byte, 100))})
		id, err := q.Enqueue(spec)
		if err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
		l, _, err := q.TryLease("w0")
		if err != nil || l == nil || l.ID != id {
			t.Fatalf("lease %d: %+v, %v", i, l, err)
		}
		if err := q.Ack(l, fmt.Sprintf("sha256-%064d", i), ""); err != nil {
			t.Fatalf("ack %d: %v", i, err)
		}
	}
	if j.Compactions() == 0 {
		t.Fatal("no compaction after 40 jobs over a 1KiB threshold")
	}
	if j.Segments() != 1 {
		t.Fatalf("%d live segments, want 1", j.Segments())
	}
	live := listJSON(t, q)
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	j2, recs2, rep2, err := OpenDirJournal(iofault.OS{}, dir, JournalOptions{SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if rep2.TornBytes != 0 || rep2.Segments != 1 {
		t.Fatalf("reopen report %+v, want clean single segment", rep2)
	}
	if recs2[0].Type != RecCheckpoint {
		t.Fatalf("compacted journal does not start with a checkpoint: %s", recs2[0].Type)
	}
	q2, _, err := Restore(segPolicy(), Options{Journal: j2, Clock: clock}, recs2)
	if err != nil {
		t.Fatal(err)
	}
	if got := listJSON(t, q2); got != live {
		t.Fatalf("recovered table differs from live table\nlive: %s\ngot:  %s", live, got)
	}
}

// TestCheckpointShedsTerminalJobs: under Policy.RetainTerminal the
// checkpoint drops the oldest done jobs, the live table drops them at
// the same instant (single-interpreter discipline), and the shed count
// survives restart.
func TestCheckpointShedsTerminalJobs(t *testing.T) {
	dir := t.TempDir()
	clock := func() time.Time { return time.Unix(1_700_000_000, 0) }
	pol := segPolicy()
	pol.RetainTerminal = 5
	j, recs, _, err := OpenDirJournal(iofault.OS{}, dir, JournalOptions{SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	q, _, err := Restore(pol, Options{Journal: j, Clock: clock}, recs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		spec, _ := json.Marshal(map[string]any{"i": i, "pad": string(make([]byte, 100))})
		id, _ := q.Enqueue(spec)
		l, _, err := q.TryLease("w0")
		if err != nil || l == nil || l.ID != id {
			t.Fatalf("lease %d: %v", i, err)
		}
		if err := q.Ack(l, fmt.Sprintf("sha256-%064d", i), ""); err != nil {
			t.Fatal(err)
		}
	}
	if q.Shed() == 0 {
		t.Fatal("no terminal jobs shed with RetainTerminal=5 over 40 done jobs")
	}
	if n := len(q.List()); n > 6 {
		// Retained terminal jobs plus at most the one enqueued since the
		// last rotation.
		t.Fatalf("live table holds %d jobs, want <= 6 under RetainTerminal=5", n)
	}
	live := listJSON(t, q)
	shed := q.Shed()
	q.Close()

	j2, recs2, _, err := OpenDirJournal(iofault.OS{}, dir, JournalOptions{SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	q2, _, err := Restore(pol, Options{Journal: j2, Clock: clock}, recs2)
	if err != nil {
		t.Fatal(err)
	}
	if q2.Shed() != shed {
		t.Fatalf("shed count %d after restart, want %d", q2.Shed(), shed)
	}
	if got := listJSON(t, q2); got != live {
		t.Fatalf("recovered table differs\nlive: %s\ngot:  %s", live, got)
	}
}

// segOp is one scripted queue operation for the replay property test.
type segOp struct {
	kind byte // 'e' enqueue, 'l' lease, 'a' ack, 'f' fail, 'r' release
	pad  int  // spec padding for enqueues
	pick int  // live-lease selector for ack/fail/release
}

// runSegOps applies a scripted op sequence to a queue. Both the
// segmented and the single-segment control run the identical script, so
// their state machines evolve in lockstep.
func runSegOps(t *testing.T, q *Queue, ops []segOp) {
	t.Helper()
	var live []*Lease
	for i, op := range ops {
		switch op.kind {
		case 'e':
			spec, _ := json.Marshal(map[string]any{"op": i, "pad": string(make([]byte, op.pad))})
			if _, err := q.Enqueue(spec); err != nil {
				t.Fatalf("op %d enqueue: %v", i, err)
			}
		case 'l':
			l, _, err := q.TryLease(fmt.Sprintf("w%d", i%3))
			if err != nil {
				t.Fatalf("op %d lease: %v", i, err)
			}
			if l != nil {
				live = append(live, l)
			}
		case 'a', 'f', 'r':
			if len(live) == 0 {
				continue
			}
			k := op.pick % len(live)
			l := live[k]
			live = append(live[:k], live[k+1:]...)
			var err error
			switch op.kind {
			case 'a':
				err = q.Ack(l, fmt.Sprintf("sha256-%064d", i), "")
			case 'f':
				_, err = q.Fail(l, "scripted failure")
			case 'r':
				err = q.Release(l)
			}
			if err != nil {
				t.Fatalf("op %d %c lease %d: %v", i, op.kind, l.ID, err)
			}
			_ = err
		}
	}
}

// TestSegmentedReplayMatchesSingleSegment is the replay equivalence
// property: the same operation history run through a journal that
// rotates every 512 bytes and through one that never rotates — then
// both damaged with the same torn tail — must recover byte-identical
// job tables. Compaction must be invisible to recovery.
func TestSegmentedReplayMatchesSingleSegment(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1234} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			ops := make([]segOp, 300)
			for i := range ops {
				ops[i] = segOp{
					kind: []byte("eelllaafr")[rng.Intn(9)],
					pad:  rng.Intn(200),
					pick: rng.Intn(1 << 16),
				}
			}
			// A fixed clock keeps deadlines and backoff gates identical
			// across both runs regardless of how many times each journal
			// consults it (rotation stamps checkpoints with the clock too).
			clock := func() time.Time { return time.Unix(1_700_000_000, 0) }

			type run struct {
				dir      string
				segBytes int64
			}
			runs := []run{
				{t.TempDir(), 512}, // rotates constantly
				{t.TempDir(), -1},  // never rotates: the single-segment control
			}
			var tables []string
			for _, r := range runs {
				j, recs, _, err := OpenDirJournal(iofault.OS{}, r.dir, JournalOptions{SegmentBytes: r.segBytes})
				if err != nil {
					t.Fatal(err)
				}
				q, _, err := Restore(segPolicy(), Options{Journal: j, Clock: clock}, recs)
				if err != nil {
					t.Fatal(err)
				}
				runSegOps(t, q, ops)
				if err := q.Close(); err != nil {
					t.Fatal(err)
				}

				// Damage the final segment of each with the same torn tail: a
				// partial frame, the signature of an append cut by a crash.
				seqs, err := listSegments(iofault.OS{}, r.dir)
				if err != nil || len(seqs) == 0 {
					t.Fatalf("segments: %v %v", seqs, err)
				}
				last := filepath.Join(r.dir, segName(seqs[len(seqs)-1]))
				frame, _ := encodeRecord(Record{Type: RecEnqueue, ID: 9999, Spec: json.RawMessage(`{"torn":true}`)})
				f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
				if err != nil {
					t.Fatal(err)
				}
				f.Write(frame[:len(frame)-5])
				f.Close()

				j2, recs2, rep2, err := OpenDirJournal(iofault.OS{}, r.dir, JournalOptions{SegmentBytes: r.segBytes})
				if err != nil {
					t.Fatalf("reopen over torn tail: %v", err)
				}
				if rep2.TornBytes != int64(len(frame)-5) {
					t.Fatalf("torn bytes %d, want %d", rep2.TornBytes, len(frame)-5)
				}
				q2, _, err := Restore(segPolicy(), Options{Journal: j2, Clock: clock}, recs2)
				if err != nil {
					t.Fatal(err)
				}
				tables = append(tables, listJSON(t, q2))
				q2.Close()
			}
			if tables[0] != tables[1] {
				t.Fatalf("segmented replay diverged from single-segment replay\nsegmented: %s\nsingle:    %s",
					tables[0], tables[1])
			}
		})
	}
}

// TestCorruptMiddleSegmentRefused: damage anywhere but the final
// segment's tail is mid-file corruption — replay must refuse, never
// silently truncate committed history.
func TestCorruptMiddleSegmentRefused(t *testing.T) {
	mkRecs := func(ids ...uint64) []Record {
		var recs []Record
		for _, id := range ids {
			recs = append(recs, Record{Type: RecEnqueue, ID: id, Spec: json.RawMessage(`{"x":1}`)})
		}
		return recs
	}
	t.Run("bitflip", func(t *testing.T) {
		dir := t.TempDir()
		writeSegment(t, dir, 1, mkRecs(1, 2))
		mid := writeSegment(t, dir, 2, mkRecs(3, 4))
		writeSegment(t, dir, 3, mkRecs(5))
		data, _ := os.ReadFile(mid)
		data[fileHdrSize+8] ^= 0xFF
		os.WriteFile(mid, data, 0o644)
		if _, _, _, err := OpenDirJournal(iofault.OS{}, dir, JournalOptions{}); !errors.Is(err, ErrCorruptJournal) {
			t.Fatalf("open over corrupt middle segment: %v, want ErrCorruptJournal", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		dir := t.TempDir()
		writeSegment(t, dir, 1, mkRecs(1, 2))
		mid := writeSegment(t, dir, 2, mkRecs(3, 4))
		writeSegment(t, dir, 3, mkRecs(5))
		data, _ := os.ReadFile(mid)
		os.WriteFile(mid, data[:len(data)-3], 0o644)
		if _, _, _, err := OpenDirJournal(iofault.OS{}, dir, JournalOptions{}); !errors.Is(err, ErrCorruptJournal) {
			t.Fatalf("open over truncated middle segment: %v, want ErrCorruptJournal", err)
		}
	})
	t.Run("damage-in-final-with-records-beyond", func(t *testing.T) {
		dir := t.TempDir()
		path := writeSegment(t, dir, 1, mkRecs(1, 2, 3))
		data, _ := os.ReadFile(path)
		// Flip a byte inside the SECOND record: record 3 stays valid
		// beyond the damage, so truncating would delete committed history.
		frame1, _ := encodeRecord(mkRecs(1)[0])
		data[fileHdrSize+int64(len(frame1))+8] ^= 0xFF
		os.WriteFile(path, data, 0o644)
		if _, _, _, err := OpenDirJournal(iofault.OS{}, dir, JournalOptions{}); !errors.Is(err, ErrCorruptJournal) {
			t.Fatalf("open over mid-file damage: %v, want ErrCorruptJournal", err)
		}
	})
}

// TestFailedRotationDebrisDropped: a crash between creating segment N+1
// and its checkpoint fsync leaves a trailing segment with no complete
// record. Open must recognize it as a failed rotation, delete it, and
// recover entirely from the older segments.
func TestFailedRotationDebrisDropped(t *testing.T) {
	recs := []Record{
		{Type: RecEnqueue, ID: 1, Spec: json.RawMessage(`{"k":1}`)},
		{Type: RecEnqueue, ID: 2, Spec: json.RawMessage(`{"k":2}`)},
	}
	cases := map[string][]byte{
		"empty":          {},
		"partial-header": encodeFileHeader()[:7],
		"torn-first-record": func() []byte {
			frame, _ := encodeRecord(Record{Type: RecCheckpoint, Checkpoint: &CheckpointState{NextID: 3}})
			return append(encodeFileHeader(), frame[:len(frame)-9]...)
		}(),
	}
	for name, debris := range cases {
		name, debris := name, debris
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			writeSegment(t, dir, 1, recs)
			debrisPath := filepath.Join(dir, segName(2))
			if err := os.WriteFile(debrisPath, debris, 0o644); err != nil {
				t.Fatal(err)
			}
			j, got, rep, err := OpenDirJournal(iofault.OS{}, dir, JournalOptions{})
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			defer j.Close()
			if rep.DroppedSegments != 1 {
				t.Fatalf("dropped %d segments, want 1 (%+v)", rep.DroppedSegments, rep)
			}
			if len(got) != len(recs) {
				t.Fatalf("replayed %d records, want %d", len(got), len(recs))
			}
			if _, err := os.Stat(debrisPath); !os.IsNotExist(err) {
				t.Fatalf("failed-rotation debris survived open: %v", err)
			}
			if j.Segments() != 1 {
				t.Fatalf("%d live segments, want 1", j.Segments())
			}
		})
	}

	// The conservative counterpart: a full-size trailing segment of
	// garbage is NOT explainable as a torn creation — refuse it.
	t.Run("garbage-header-refused", func(t *testing.T) {
		dir := t.TempDir()
		writeSegment(t, dir, 1, recs)
		garbage := make([]byte, 64)
		for i := range garbage {
			garbage[i] = byte(i*37 + 11)
		}
		if err := os.WriteFile(filepath.Join(dir, segName(2)), garbage, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := OpenDirJournal(iofault.OS{}, dir, JournalOptions{}); !errors.Is(err, ErrBadFileHeader) {
			t.Fatalf("open over garbage trailing segment: %v, want ErrBadFileHeader", err)
		}
	})
}

// TestInterruptedCompactionResumed: a crash after the checkpoint
// fsynced but before the old segments were deleted leaves both on
// disk. The checkpoint at the head of the newest segment makes the old
// history inert; open must finish the deletions.
func TestInterruptedCompactionResumed(t *testing.T) {
	dir := t.TempDir()
	old := writeSegment(t, dir, 1, []Record{
		{Type: RecEnqueue, ID: 1, Spec: json.RawMessage(`{"k":1}`)},
		{Type: RecEnqueue, ID: 2, Spec: json.RawMessage(`{"k":2}`)},
		{Type: RecLease, ID: 1, Delivery: 1, Worker: "w0", Deadline: 99},
	})
	cp := Record{Type: RecCheckpoint, Checkpoint: &CheckpointState{
		NextID: 3,
		Jobs: []CheckpointJob{
			{ID: 1, Spec: json.RawMessage(`{"k":1}`), State: StateDone, Deliveries: 1, Hash: "sha256-aaa"},
			{ID: 2, Spec: json.RawMessage(`{"k":2}`), State: StatePending},
		},
		Shed: 4,
	}}
	writeSegment(t, dir, 2, []Record{cp})

	j, recs, rep, err := OpenDirJournal(iofault.OS{}, dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if !rep.ResumedCompaction {
		t.Fatalf("interrupted compaction not resumed: %+v", rep)
	}
	if _, err := os.Stat(old); !os.IsNotExist(err) {
		t.Fatalf("superseded segment survived open: %v", err)
	}
	if j.Segments() != 1 || rep.Segments != 1 {
		t.Fatalf("segments %d/%d, want 1", j.Segments(), rep.Segments)
	}
	q, _, err := Restore(segPolicy(), Options{Journal: j}, recs)
	if err != nil {
		t.Fatal(err)
	}
	if q.Shed() != 4 {
		t.Fatalf("shed %d, want 4 from checkpoint", q.Shed())
	}
	info, ok := q.Get(1)
	if !ok || info.State != StateDone || info.Hash != "sha256-aaa" {
		t.Fatalf("job 1 after resume: %+v", info)
	}
	if info2, ok := q.Get(2); !ok || info2.State != StatePending {
		t.Fatalf("job 2 after resume: %+v", info2)
	}
}

// TestLegacySingleFileJournalMigrates: a PR-7 journal.asapq becomes
// segment 1 on first directory open, history intact.
func TestLegacySingleFileJournalMigrates(t *testing.T) {
	dir := t.TempDir()
	legacy := filepath.Join(dir, legacySegName)
	j, _, _, err := OpenFileJournal(legacy)
	if err != nil {
		t.Fatal(err)
	}
	want := testRecords()
	for _, rec := range want {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	j2, got, rep, err := OpenDirJournal(iofault.OS{}, dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if _, err := os.Stat(legacy); !os.IsNotExist(err) {
		t.Fatalf("legacy file survived migration: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, segName(1))); err != nil {
		t.Fatalf("segment 1 missing after migration: %v", err)
	}
	if len(got) != len(want) || rep.Records != len(want) {
		t.Fatalf("migrated replay: %d records, want %d", len(got), len(want))
	}
}

// TestRotationFailureAbsorbed: a rotation that dies mid-flight (torn
// sync on the new segment, then a failed cleanup Remove — the worst
// case, leaving debris) must not lose anything: the old segment keeps
// appending, and the next open drops the debris and recovers a state
// identical to the live one.
func TestRotationFailureAbsorbed(t *testing.T) {
	dir := t.TempDir()
	ffs := iofault.NewFaultFS(iofault.OS{}, 7)
	// The new segment's very first sync tears; the abort path's Remove
	// fails too, so the partial segment 2 stays on disk as debris.
	ffs.Arm(iofault.Trip{Op: iofault.OpSync, Class: iofault.ClassTornSync, N: 1, Substr: segName(2)})
	ffs.Arm(iofault.Trip{Op: iofault.OpRemove, Class: iofault.ClassEIO, N: 1, Substr: segName(2)})

	clock := func() time.Time { return time.Unix(1_700_000_000, 0) }
	j, recs, _, err := OpenDirJournal(ffs, dir, JournalOptions{SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	q, _, err := Restore(segPolicy(), Options{Journal: j, Clock: clock}, recs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		spec, _ := json.Marshal(map[string]any{"i": i, "pad": string(make([]byte, 100))})
		id, err := q.Enqueue(spec)
		if err != nil {
			t.Fatalf("enqueue %d after failed rotation: %v", i, err)
		}
		l, _, err := q.TryLease("w0")
		if err != nil || l == nil || l.ID != id {
			t.Fatalf("lease %d: %v", i, err)
		}
		if err := q.Ack(l, fmt.Sprintf("sha256-%064d", i), ""); err != nil {
			t.Fatalf("ack %d: %v", i, err)
		}
	}
	if j.Failed() {
		t.Fatal("journal entered failed state from an absorbed rotation failure")
	}
	// The debris blocks further rotations this process (segment 2 exists),
	// but appends continued — nothing was lost.
	if _, err := os.Stat(filepath.Join(dir, segName(2))); err != nil {
		t.Fatalf("expected torn segment-2 debris on disk: %v", err)
	}
	live := listJSON(t, q)
	q.Close()

	// Next open (clean fs) drops the debris and recovers the live state.
	j2, recs2, rep2, err := OpenDirJournal(iofault.OS{}, dir, JournalOptions{SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatalf("reopen after torn rotation: %v", err)
	}
	defer j2.Close()
	if rep2.DroppedSegments != 1 {
		t.Fatalf("dropped %d segments, want the torn rotation debris (%+v)", rep2.DroppedSegments, rep2)
	}
	q2, _, err := Restore(segPolicy(), Options{Journal: j2, Clock: clock}, recs2)
	if err != nil {
		t.Fatal(err)
	}
	if got := listJSON(t, q2); got != live {
		t.Fatalf("state after torn rotation differs\nlive: %s\ngot:  %s", live, got)
	}
}

// TestAppendRollbackKeepsJournalProvable: a failed append (partial
// write) rolls the file back to the last record boundary, so the next
// append lands clean and a reopen sees no damage at all.
func TestAppendRollbackKeepsJournalProvable(t *testing.T) {
	dir := t.TempDir()
	ffs := iofault.NewFaultFS(iofault.OS{}, 11)
	j, _, _, err := OpenDirJournal(ffs, dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Type: RecEnqueue, ID: 1, Spec: json.RawMessage(`{"k":1}`)}); err != nil {
		t.Fatal(err)
	}
	ffs.Arm(iofault.Trip{Op: iofault.OpWrite, Class: iofault.ClassENOSPC, N: 1, Substr: segName(1)})
	err = j.Append(Record{Type: RecEnqueue, ID: 2, Spec: json.RawMessage(`{"k":2}`)})
	if err == nil {
		t.Fatal("append under ENOSPC succeeded")
	}
	if j.Failed() {
		t.Fatal("rollback should have kept the journal alive")
	}
	// The failed frame must be gone: the next append is contiguous.
	if err := j.Append(Record{Type: RecEnqueue, ID: 3, Spec: json.RawMessage(`{"k":3}`)}); err != nil {
		t.Fatalf("append after rollback: %v", err)
	}
	j.Close()

	j2, recs, rep, err := OpenDirJournal(iofault.OS{}, dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if rep.TornBytes != 0 {
		t.Fatalf("reopen found %d torn bytes after a rolled-back append", rep.TornBytes)
	}
	if len(recs) != 2 || recs[0].ID != 1 || recs[1].ID != 3 {
		t.Fatalf("replayed %+v, want records 1 and 3", recs)
	}
}
