package queue

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
)

// Artifact kinds. Kind is the semantic tag a client filters on; the
// ContentType is what the HTTP layer serves the bytes as. The kinds
// mirror what an instrumented sweep produces: the rendered result
// tables, the cycle-attribution profile, a Perfetto timeline, and the
// occupancy series CSV.
const (
	KindResult   = "result"
	KindProfile  = "profile"
	KindTimeline = "timeline"
	KindSeries   = "series"
)

// Artifact is one named object in a job's manifest.
type Artifact struct {
	Name        string `json:"name"`
	Kind        string `json:"kind"`
	ContentType string `json:"content_type"`
	Hash        string `json:"hash"`
	Bytes       int64  `json:"bytes"`
}

// Manifest is a job's full output: the primary result plus every
// observer-produced extra, each content-addressed. The manifest itself
// is stored as an object, so it shares the store's idempotence: a
// redelivered job that produces the same artifact bytes produces the
// same manifest bytes and therefore the same manifest hash — which is
// what the redelivery-idempotence test pins down.
type Manifest struct {
	Result    string     `json:"result"` // hash of the primary result artifact
	Artifacts []Artifact `json:"artifacts"`
}

// EncodeManifest renders m deterministically (struct field order is
// fixed; artifact order is the executor's emission order, which for a
// deterministic executor is itself deterministic).
func EncodeManifest(m Manifest) ([]byte, error) {
	return json.MarshalIndent(m, "", "  ")
}

// DecodeManifest parses manifest bytes.
func DecodeManifest(b []byte) (Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return Manifest{}, fmt.Errorf("queue: decoding manifest: %w", err)
	}
	return m, nil
}

// RawArtifact is an extra output an executor hands the daemon while a
// job runs: the daemon Puts the data and records the address in the
// job's manifest.
type RawArtifact struct {
	Name        string
	Kind        string
	ContentType string
	Data        []byte
}

// artifactSinkKey carries the per-job artifact collector into executor
// contexts, mirroring the heartbeat plumbing: executors stay plain
// (ctx, spec) -> (bytes, error) functions and opt into richer output by
// calling AddArtifact.
type artifactSinkKey struct{}

// WithArtifactSink attaches an artifact collector to ctx.
func WithArtifactSink(ctx context.Context, fn func(RawArtifact)) context.Context {
	return context.WithValue(ctx, artifactSinkKey{}, fn)
}

// AddArtifact hands one extra artifact to the daemon running this job.
// Outside a daemon (direct executor invocation, one-shot CLI) it is a
// no-op, which is what keeps executors output-neutral by construction.
func AddArtifact(ctx context.Context, a RawArtifact) {
	if fn, ok := ctx.Value(artifactSinkKey{}).(func(RawArtifact)); ok {
		fn(a)
	}
}

// WantsArtifacts reports whether ctx carries an artifact sink — i.e.
// extra outputs would actually land in a manifest. Executors use it to
// skip producing expensive optional artifacts when nobody collects them.
func WantsArtifacts(ctx context.Context) bool {
	_, ok := ctx.Value(artifactSinkKey{}).(func(RawArtifact))
	return ok
}

// artifactCollector accumulates RawArtifacts for one job. The executor
// runs in one goroutine, but sweeps may emit from pooled workers, so
// appends are locked.
type artifactCollector struct {
	mu  sync.Mutex
	out []RawArtifact
}

func (c *artifactCollector) add(a RawArtifact) {
	c.mu.Lock()
	c.out = append(c.out, a)
	c.mu.Unlock()
}

func (c *artifactCollector) list() []RawArtifact {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.out
}

// indexManifest records every artifact's content type (and the
// manifest's own, application/json) in the daemon's serve-time cache.
func (d *Daemon) indexManifest(manifestHash string, m Manifest) {
	d.ctMu.Lock()
	defer d.ctMu.Unlock()
	d.ctypes[manifestHash] = "application/json"
	for _, a := range m.Artifacts {
		d.ctypes[a.Hash] = a.ContentType
	}
}

// contentTypeFor resolves the Content-Type an artifact should be served
// as. The cache is fed by putManifest as jobs complete; on a miss — an
// artifact produced before the last restart — the cache is rebuilt once
// from every done job's manifest, so content types survive restarts
// without a sidecar database (the manifests ARE the database).
func (d *Daemon) contentTypeFor(hash string) string {
	d.ctMu.Lock()
	ct, ok := d.ctypes[hash]
	rebuilt := d.ctRebuilt
	d.ctMu.Unlock()
	if ok {
		return ct
	}
	if !rebuilt {
		for _, info := range d.Q.List() {
			if info.State != StateDone || info.Manifest == "" {
				continue
			}
			b, err := d.St.Get(info.Manifest)
			if err != nil {
				continue
			}
			m, err := DecodeManifest(b)
			if err != nil {
				continue
			}
			d.indexManifest(info.Manifest, m)
		}
		d.ctMu.Lock()
		d.ctRebuilt = true
		ct, ok = d.ctypes[hash]
		d.ctMu.Unlock()
		if ok {
			return ct
		}
	}
	return "application/octet-stream"
}

// putManifest stores every extra artifact plus the manifest object
// itself, returning the manifest hash. resultHash/resultLen describe
// the already-stored primary result.
func (d *Daemon) putManifest(resultHash string, resultLen int, extras []RawArtifact) (string, error) {
	rct := d.cfg.ResultContentType
	if rct == "" {
		rct = "application/octet-stream"
	}
	m := Manifest{
		Result: resultHash,
		Artifacts: []Artifact{{
			Name:        "result",
			Kind:        KindResult,
			ContentType: rct,
			Hash:        resultHash,
			Bytes:       int64(resultLen),
		}},
	}
	for _, a := range extras {
		h, err := d.St.Put(a.Data)
		if err != nil {
			return "", fmt.Errorf("persisting artifact %q: %w", a.Name, err)
		}
		ct := a.ContentType
		if ct == "" {
			ct = "application/octet-stream"
		}
		m.Artifacts = append(m.Artifacts, Artifact{
			Name:        a.Name,
			Kind:        a.Kind,
			ContentType: ct,
			Hash:        h,
			Bytes:       int64(len(a.Data)),
		})
	}
	b, err := EncodeManifest(m)
	if err != nil {
		return "", err
	}
	h, err := d.St.Put(b)
	if err != nil {
		return "", fmt.Errorf("persisting manifest: %w", err)
	}
	d.indexManifest(h, m)
	return h, nil
}
