package core

import (
	"testing"
	"testing/quick"

	"asap/internal/arch"
	"asap/internal/cache"
)

func tinyCaches() cache.Config {
	return cache.Config{
		L1: cache.LevelConfig{Sets: 2, Ways: 2, Latency: 4},
		L2: cache.LevelConfig{Sets: 2, Ways: 2, Latency: 14},
		L3: cache.LevelConfig{Sets: 4, Ways: 2, Latency: 42},
	}
}

func TestBloomNoFalseNegatives(t *testing.T) {
	b := newBloom(8192)
	f := func(lines []uint32) bool {
		b.Clear()
		for _, l := range lines {
			b.Add(arch.LineAddr(uint64(l) * arch.LineSize))
		}
		for _, l := range lines {
			if !b.MayContain(arch.LineAddr(uint64(l) * arch.LineSize)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBloomClear(t *testing.T) {
	b := newBloom(1024)
	b.Add(64)
	if !b.MayContain(64) {
		t.Fatal("added line missing")
	}
	b.Clear()
	if b.MayContain(64) {
		t.Fatal("line survived Clear")
	}
}

func TestBloomFalsePositiveRateReasonable(t *testing.T) {
	b := newBloom(8192)
	for i := 0; i < 200; i++ {
		b.Add(arch.LineAddr(i * arch.LineSize))
	}
	fp := 0
	probes := 2000
	for i := 10_000; i < 10_000+probes; i++ {
		if b.MayContain(arch.LineAddr(i * arch.LineSize)) {
			fp++
		}
	}
	if fp > probes/5 {
		t.Fatalf("false positive rate too high: %d/%d", fp, probes)
	}
}

func TestDependenceListCapacity(t *testing.T) {
	l := NewDependenceList(2, 4)
	l.Add(arch.MakeRID(0, 1))
	l.Add(arch.MakeRID(0, 2))
	if l.HasSpace() {
		t.Fatal("full list reports space")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected overflow panic")
		}
	}()
	l.Add(arch.MakeRID(0, 3))
}

func TestDependenceListDepSlots(t *testing.T) {
	l := NewDependenceList(8, 2)
	e := l.Add(arch.MakeRID(0, 1))
	l.AddDep(e, arch.MakeRID(1, 1))
	l.AddDep(e, arch.MakeRID(2, 1))
	if l.CanAddDep(e, arch.MakeRID(3, 1)) {
		t.Fatal("full Dep slots report space")
	}
	if !l.CanAddDep(e, arch.MakeRID(1, 1)) {
		t.Fatal("existing dep must always be addable")
	}
	e.ClearDep(arch.MakeRID(1, 1))
	if !l.CanAddDep(e, arch.MakeRID(3, 1)) {
		t.Fatal("cleared slot not reusable")
	}
}

func TestDependenceListAddDepIdempotent(t *testing.T) {
	l := NewDependenceList(8, 2)
	e := l.Add(arch.MakeRID(0, 1))
	dep := arch.MakeRID(1, 1)
	l.AddDep(e, dep)
	l.AddDep(e, dep)
	if len(e.Deps) != 1 {
		t.Fatalf("deps = %d, want 1", len(e.Deps))
	}
}

func TestCLListSlots(t *testing.T) {
	l := NewCLList(4, 2)
	e := l.Add(arch.MakeRID(0, 1))
	l.AddSlot(e, 64)
	l.AddSlot(e, 128)
	if l.CanAddSlot(e, 192) {
		t.Fatal("full slots report space")
	}
	if !l.CanAddSlot(e, 64) {
		t.Fatal("existing line must be addable")
	}
	if s := l.AddSlot(e, 64); s != e.Slot(64) {
		t.Fatal("AddSlot must return existing slot")
	}
	e.removeSlot(64)
	if e.Slot(64) != nil {
		t.Fatal("slot not removed")
	}
	if !l.CanAddSlot(e, 192) {
		t.Fatal("freed slot not reusable")
	}
}

func TestCLListEntryLifecycle(t *testing.T) {
	l := NewCLList(1, 8)
	r := arch.MakeRID(0, 1)
	l.Add(r)
	if l.HasSpace() {
		t.Fatal("full CL list reports space")
	}
	l.Remove(r)
	if !l.HasSpace() {
		t.Fatal("removed entry did not free space")
	}
	l.Remove(r) // idempotent
}

func TestCLSlotIdle(t *testing.T) {
	s := &CLSlot{}
	if !s.idle() {
		t.Fatal("zero slot should be idle")
	}
	s.NeedIssue = true
	if s.idle() {
		t.Fatal("NeedIssue slot is not idle")
	}
	s.NeedIssue = false
	s.Outstanding = 1
	if s.idle() {
		t.Fatal("in-flight slot is not idle")
	}
}
