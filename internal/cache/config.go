// Package cache models the three-level cache hierarchy of Table 2 with the
// tag extensions ASAP adds (§4.6): a PBit marking persistent lines, a
// LockBit pinning a line until its LPO completes, and an OwnerRID naming
// the atomic region that last wrote the line.
//
// L1 and L2 are private per core; L3 is shared and inclusive. Tag-extension
// metadata is kept in a single coherent table (hardware keeps it coherent
// alongside the line; we model the post-coherence state directly).
package cache

// LevelConfig sizes one cache level.
//
// Sets is rounded up to the next power of two when the level is built, so
// the set index is a mask of the line address rather than a modulo; a
// non-power-of-two value therefore yields a slightly larger cache. Every
// Table 2 configuration is already a power of two, for which the rounding
// is the identity.
type LevelConfig struct {
	Sets    int
	Ways    int
	Latency uint64 // total hit latency seen by the core, in cycles
}

// Config describes the hierarchy. Defaults mirror Table 2.
type Config struct {
	L1 LevelConfig // 32 KB/core, 8-way, 4 cycles
	L2 LevelConfig // 1 MB/core, 16-way, 14 cycles
	L3 LevelConfig // 8 MB shared, 16-way, 42 cycles
}

// DefaultConfig returns the Table 2 cache hierarchy.
func DefaultConfig() Config {
	return Config{
		L1: LevelConfig{Sets: 64, Ways: 8, Latency: 4},     // 64*8*64B = 32 KB
		L2: LevelConfig{Sets: 1024, Ways: 16, Latency: 14}, // 1 MB
		L3: LevelConfig{Sets: 8192, Ways: 16, Latency: 42}, // 8 MB
	}
}
