// Package resultcache is the content-addressed on-disk cache behind warm
// sweeps: every experiment cell (one benchmark run under one variant) is
// keyed by a sha256 over a canonical encoding of everything that could
// change its bytes — config, seed, and the code version — and its
// rendered result is stored under that key with the same temp + fsync +
// rename discipline as the queue's artifact store. A warm sweep
// re-renders figures from cached bytes; because cells are cached below
// the reduction layer and the reducers are pure, warm output is
// byte-identical to cold output by construction (and enforced by test
// and the CI determinism gate).
package resultcache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"runtime/debug"
	"sort"
	"strings"
)

// Key accumulates the fields that determine one cell's result and
// reduces them to a stable digest. Canonicalization is order-insensitive:
// fields are sorted by name before hashing, so two call sites that
// assemble the same logical configuration in different orders produce
// the same key.
type Key struct {
	fields []string
}

// NewKey returns an empty key builder.
func NewKey() *Key { return &Key{} }

// Field records one name=value pair. Names must be unique per key;
// values are arbitrary strings (newlines are escaped so field boundaries
// stay unambiguous).
func (k *Key) Field(name, value string) *Key {
	value = strings.ReplaceAll(value, "\\", `\\`)
	value = strings.ReplaceAll(value, "\n", `\n`)
	k.fields = append(k.fields, name+"="+value)
	return k
}

// Fieldf is Field with Sprintf formatting of the value.
func (k *Key) Fieldf(name, format string, args ...any) *Key {
	return k.Field(name, fmt.Sprintf(format, args...))
}

// Canonical returns the sorted, newline-joined field encoding the digest
// is computed over — exposed so tests can assert canonicalization rules.
func (k *Key) Canonical() string {
	lines := append([]string(nil), k.fields...)
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// Sum returns the hex sha256 of the canonical encoding.
func (k *Key) Sum() string {
	sum := sha256.Sum256([]byte(k.Canonical()))
	return hex.EncodeToString(sum[:])
}

// CodeVersionEnv overrides the build-info code version, for dev trees
// (no VCS stamping, or a dirty working copy) that still want caching.
const CodeVersionEnv = "ASAP_CACHE_CODEVERSION"

// CodeVersion returns the identifier that invalidates the cache across
// code changes, and whether caching is safe at all. It is the VCS
// revision from debug/buildinfo; a dirty working copy or an unstamped
// binary (go test, plain go build without VCS) yields ok=false — stale
// hits are worse than cold runs — unless ASAP_CACHE_CODEVERSION supplies
// an explicit version, which dev trees and tests use to opt back in.
func CodeVersion() (version string, ok bool) {
	if env := os.Getenv(CodeVersionEnv); env != "" {
		return env, true
	}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "", false
	}
	var rev, modified string
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			modified = s.Value
		}
	}
	if rev == "" || modified == "true" {
		return "", false
	}
	return rev, true
}
