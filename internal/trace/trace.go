// Package trace records the persistence protocol's events — region
// lifecycle, persist operations, drops, dependence captures — into a
// bounded ring buffer for debugging and for tests that assert on event
// ordering. Tracing is off unless a buffer is attached, and costs nothing
// in simulated time.
package trace

import (
	"fmt"
	"strings"

	"asap/internal/arch"
)

// Kind classifies a protocol event.
type Kind uint8

// The protocol events.
const (
	RegionBegin Kind = iota
	RegionEnd
	RegionCommit
	LPOIssue
	LPOAccept
	LPODrop
	DPOIssue
	DPOAccept
	DPODrop
	DepAdd
	OwnerSpill
	OwnerReload
	Migrate
	LogOverflow
)

var kindNames = map[Kind]string{
	RegionBegin:  "region.begin",
	RegionEnd:    "region.end",
	RegionCommit: "region.commit",
	LPOIssue:     "lpo.issue",
	LPOAccept:    "lpo.accept",
	LPODrop:      "lpo.drop",
	DPOIssue:     "dpo.issue",
	DPOAccept:    "dpo.accept",
	DPODrop:      "dpo.drop",
	DepAdd:       "dep.add",
	OwnerSpill:   "owner.spill",
	OwnerReload:  "owner.reload",
	Migrate:      "migrate",
	LogOverflow:  "log.overflow",
}

// String names the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", k)
}

// Event is one protocol occurrence.
type Event struct {
	// At is the simulated cycle.
	At uint64
	// Kind classifies the event.
	Kind Kind
	// RID is the atomic region involved (NoRID when not applicable).
	RID arch.RID
	// Line is the cache line involved (0 when not applicable).
	Line arch.LineAddr
	// Aux carries kind-specific detail: the dependence RID for DepAdd,
	// the target core for Migrate.
	Aux uint64
}

// String formats the event one-per-line style.
func (e Event) String() string {
	s := fmt.Sprintf("%10d %-14s %s", e.At, e.Kind, e.RID)
	if e.Line != 0 {
		s += fmt.Sprintf(" line=%#x", uint64(e.Line))
	}
	if e.Aux != 0 {
		s += fmt.Sprintf(" aux=%#x", e.Aux)
	}
	return s
}

// Buffer is a bounded event ring. The zero value is unusable; create with
// NewBuffer.
type Buffer struct {
	ring  []Event
	next  int
	count int
	total uint64
}

// NewBuffer returns a ring holding the most recent capacity events.
func NewBuffer(capacity int) *Buffer {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Buffer{ring: make([]Event, capacity)}
}

// Emit appends an event, evicting the oldest when full.
func (b *Buffer) Emit(e Event) {
	b.ring[b.next] = e
	b.next = (b.next + 1) % len(b.ring)
	if b.count < len(b.ring) {
		b.count++
	}
	b.total++
}

// Events returns the retained events, oldest first.
func (b *Buffer) Events() []Event {
	out := make([]Event, 0, b.count)
	start := b.next - b.count
	if start < 0 {
		start += len(b.ring)
	}
	for i := 0; i < b.count; i++ {
		out = append(out, b.ring[(start+i)%len(b.ring)])
	}
	return out
}

// Total returns how many events were ever emitted (including evicted).
func (b *Buffer) Total() uint64 { return b.total }

// Filter returns the retained events of the given kinds, oldest first.
func (b *Buffer) Filter(kinds ...Kind) []Event {
	want := map[Kind]bool{}
	for _, k := range kinds {
		want[k] = true
	}
	var out []Event
	for _, e := range b.Events() {
		if want[e.Kind] {
			out = append(out, e)
		}
	}
	return out
}

// OfRegion returns the retained events touching rid, oldest first.
func (b *Buffer) OfRegion(rid arch.RID) []Event {
	var out []Event
	for _, e := range b.Events() {
		if e.RID == rid || arch.RID(e.Aux) == rid {
			out = append(out, e)
		}
	}
	return out
}

// Regions returns the distinct RIDs appearing in the retained events (as
// subject or dependence aux), in order of first appearance. NoRID is
// skipped.
func (b *Buffer) Regions() []arch.RID {
	seen := map[arch.RID]bool{}
	var out []arch.RID
	note := func(rid arch.RID) {
		if rid != arch.NoRID && !seen[rid] {
			seen[rid] = true
			out = append(out, rid)
		}
	}
	for _, e := range b.Events() {
		note(e.RID)
		if e.Kind == DepAdd {
			note(arch.RID(e.Aux))
		}
	}
	return out
}

// ByRegion splits the retained events by region, preserving event order
// within each region (DepAdd events appear under both endpoints). The
// returned RIDs follow Regions() order.
func (b *Buffer) ByRegion() (rids []arch.RID, events map[arch.RID][]Event) {
	rids = b.Regions()
	events = make(map[arch.RID][]Event, len(rids))
	for _, rid := range rids {
		events[rid] = b.OfRegion(rid)
	}
	return rids, events
}

// String dumps the retained events.
func (b *Buffer) String() string {
	var sb strings.Builder
	for _, e := range b.Events() {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
