package crashtest

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"asap/internal/faults"
	"asap/internal/resultcache"
	"asap/internal/runner"
)

// SweepConfig shapes a systematic sweep: the cross product of workloads,
// fault mixes and derived crash points.
type SweepConfig struct {
	// Workloads to sweep; empty means all of Workloads().
	Workloads []string
	// Mixes to sweep; empty means DefaultMixes().
	Mixes []faults.Mix
	// Seed derives every crash point and per-case fault seed.
	Seed int64
	// Points is the number of crash points per (workload, mix) pair.
	Points int
	// CrashLo/CrashHi bound the crash cycle, measured from the start of
	// the measured phase; points spread log-uniformly between them.
	CrashLo, CrashHi uint64
	// Workers sizes the runner pool (0 = GOMAXPROCS).
	Workers int
	// Reporter, when non-nil, receives per-case progress callbacks from
	// the pool (the CLIs wire a live progress line through this).
	Reporter runner.Reporter
	// SkipValidation runs every case without recovery's integrity pass.
	SkipValidation bool
	// SnapshotEvery, when non-zero, makes every case a boundary-kill: the
	// crash lands on the first checkpoint boundary at or after the drawn
	// crash point (see Case.SnapshotEvery).
	SnapshotEvery uint64
	// ShrinkBudget, when > 0, bounds the replays spent minimizing each
	// violation's fault set.
	ShrinkBudget int
	// Cache, when non-nil (and CodeVersion non-empty), memoizes case
	// outcomes across sweeps keyed by the case's canonical encoding and
	// the code version. Shrunk fault sets are never cached — shrinking
	// reruns post-cache so the budget always applies to this sweep.
	Cache       *resultcache.Store
	CodeVersion string
	// Context, when non-nil, lets the caller cancel the sweep: cases
	// already dispatched finish, nothing further starts, and Sweep
	// returns the partial summary alongside the context's error. Signal
	// handlers use this to flush partial reports on SIGINT/SIGTERM.
	Context context.Context
}

// DefaultMixes is the standard sweep mixture set: the no-fault control,
// each fault class alone, and a combined load.
func DefaultMixes() []faults.Mix {
	return []faults.Mix{
		{},
		{TornPct: 0.3},
		{DropPct: 0.3},
		{ReorderPct: 0.5},
		{BitFlips: 1},
		{LHDropPct: 0.5},
		{TornPct: 0.2, DropPct: 0.2, ReorderPct: 0.3, BitFlips: 1},
	}
}

// Summary aggregates a sweep.
type Summary struct {
	Total    int             `json:"total"`
	Counts   map[Verdict]int `json:"counts"`
	Outcomes []Outcome       `json:"outcomes"`
}

// Bad counts the outcomes that must fail a CI gate: invariant violations
// and harness errors.
func (s *Summary) Bad() int {
	return s.Counts[VerdictViolation] + s.Counts[VerdictError]
}

// Violations returns the violation outcomes.
func (s *Summary) Violations() []Outcome {
	var out []Outcome
	for _, o := range s.Outcomes {
		if o.Verdict == VerdictViolation {
			out = append(out, o)
		}
	}
	return out
}

// Cases materializes the sweep's case list deterministically from the
// configuration: same config, same cases, regardless of worker count.
func (cfg SweepConfig) Cases() ([]Case, error) {
	workloads := cfg.Workloads
	if len(workloads) == 0 {
		workloads = Workloads()
	}
	for _, w := range workloads {
		if _, err := newWorkloadRun(w); err != nil {
			return nil, err
		}
	}
	mixes := cfg.Mixes
	if len(mixes) == 0 {
		mixes = DefaultMixes()
	}
	points := cfg.Points
	if points <= 0 {
		points = 8
	}
	lo, hi := cfg.CrashLo, cfg.CrashHi
	if lo == 0 {
		lo = 900
	}
	if hi <= lo {
		hi = 91_000
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	span := float64(hi) / float64(lo)
	var cases []Case
	for _, w := range workloads {
		for _, mix := range mixes {
			for p := 0; p < points; p++ {
				at := uint64(float64(lo) * math.Pow(span, rng.Float64()))
				cases = append(cases, Case{
					Workload:       w,
					CrashAt:        at,
					Seed:           cfg.Seed + int64(len(cases))*7919,
					Mix:            mix,
					SkipValidation: cfg.SkipValidation,
					SnapshotEvery:  cfg.SnapshotEvery,
				})
			}
		}
	}
	return cases, nil
}

// Sweep runs the whole case matrix on a worker pool and aggregates the
// outcomes, shrinking each violation's fault set when a budget is given.
// Outcomes keep the submission order of Cases. A cancelled cfg.Context
// stops dispatching: the summary covers only the cases that actually
// ran, and the context's error is returned alongside it so callers can
// flush the partial result and still report the interruption.
func Sweep(cfg SweepConfig) (*Summary, error) {
	cases, err := cfg.Cases()
	if err != nil {
		return nil, err
	}
	ctx := cfg.Context
	if ctx == nil {
		ctx = context.Background()
	}
	jobs := make([]runner.Job[Outcome], len(cases))
	for i, c := range cases {
		c := c
		jobs[i] = runner.Job[Outcome]{Label: c.String(), Run: func() Outcome { return RunCase(c) }}
		if cfg.Cache != nil && cfg.CodeVersion != "" {
			if key, err := resultcache.CaseKey("crashcase.v1", c, cfg.CodeVersion); err == nil {
				jobs[i].Cached, jobs[i].Store = resultcache.MemoJSON[Outcome](cfg.Cache, key)
			}
		}
	}
	pool := runner.New(cfg.Workers)
	if cfg.Reporter != nil {
		pool.SetReporter(cfg.Reporter)
	}
	outcomes, err := runner.CollectCtx(ctx, pool, jobs)
	if err != nil && ctx.Err() == nil {
		return nil, fmt.Errorf("crashtest: sweep: %w", err)
	}

	// Skipped cases hold zero outcomes (empty verdict); keep only what ran.
	sum := &Summary{Counts: make(map[Verdict]int)}
	for i := range outcomes {
		if outcomes[i].Verdict == "" {
			continue
		}
		sum.Outcomes = append(sum.Outcomes, outcomes[i])
		o := &sum.Outcomes[len(sum.Outcomes)-1]
		if o.Verdict == VerdictViolation && cfg.ShrinkBudget > 0 && len(o.Faults) > 1 {
			o.Shrunk = Shrink(o.Case, o.Faults, cfg.ShrinkBudget)
		}
		sum.Counts[o.Verdict]++
	}
	sum.Total = len(sum.Outcomes)
	return sum, ctx.Err()
}
