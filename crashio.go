package asap

import (
	"encoding/gob"
	"fmt"
	"io"

	"asap/internal/arch"
	"asap/internal/core"
)

// Save serializes the crash state (the persisted image plus the
// persistence-domain metadata recovery needs) so it can be stored and
// recovered later, possibly in another process — the moral equivalent of
// the machine sitting powered off.
func (c *CrashState) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(c.cs); err != nil {
		return fmt.Errorf("asap: saving crash state: %w", err)
	}
	return nil
}

// LoadCrashState reads a crash state previously written by Save. The
// result supports Recover and the image readers exactly like a live one.
// A truncated, corrupt, or structurally malformed input yields an error —
// never a panic — so untrusted crash files are safe to load.
func LoadCrashState(r io.Reader) (cs *CrashState, err error) {
	defer func() {
		if p := recover(); p != nil {
			cs, err = nil, fmt.Errorf("asap: loading crash state: malformed input: %v", p)
		}
	}()
	raw := &core.CrashState{}
	if derr := gob.NewDecoder(r).Decode(raw); derr != nil {
		return nil, fmt.Errorf("asap: loading crash state: %w", derr)
	}
	if verr := raw.Validate(); verr != nil {
		return nil, fmt.Errorf("asap: loading crash state: %w", verr)
	}
	return &CrashState{cs: raw}, nil
}

// NewSystemFromCrash builds a fresh system — the machine after the power
// was restored — whose persistent memory holds exactly the recovered
// image. Call Recover on the crash state first; volatile state (caches,
// DRAM, thread registers) starts empty, as §5.5's recovery leaves it.
// The allocator resumes above every recovered line, so existing structures
// are never re-allocated over.
func NewSystemFromCrash(cfg Config, c *CrashState) (*System, error) {
	sys, err := NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	heap := sys.m.Heap
	pm := sys.m.Fabric.PM()
	c.cs.Image.Lines(func(line arch.LineAddr, payload []byte) {
		// The architectural memory and the device contents both carry the
		// recovered bytes: it is the same physical module, power-cycled.
		heap.Write(uint64(line), payload)
		pm.Write(line, payload)
		heap.Reserve(uint64(line) + arch.LineSize - 1)
	})
	return sys, nil
}
