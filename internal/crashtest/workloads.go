package crashtest

import (
	"fmt"

	"asap"
	"asap/internal/sim"
	"asap/internal/workload"
)

// workloadRun binds one case's benchmark instance to the invariant checks
// that run against its recovered state. The same instance must serve all
// three phases — pre-crash execution, image verification, post-recovery
// reboot — because the structure's cell addresses live in it.
type workloadRun interface {
	// bench returns the Benchmark driven before the crash.
	bench() workload.Benchmark
	// verify walks the recovered image through read and returns a problem
	// description, or "" when every invariant holds.
	verify(read func(addr uint64) uint64) string
	// post reboots onto the recovered image: it runs fresh operations on
	// sys (a NewSystemFromCrash machine) and re-checks the live structure.
	post(sys *asap.System, seed int64) string
}

// Workloads lists the crash-consistency workloads by name.
func Workloads() []string { return []string{"counter", "bigcounter", "queue"} }

// newWorkloadRun builds a fresh instance of the named workload.
func newWorkloadRun(name string) (workloadRun, error) {
	switch name {
	case "counter":
		return &stripeCounter{name: "counter", lanes: 1}, nil
	case "bigcounter":
		// Nine first-writes per region (8 lanes + the total) guarantee
		// every region closes a 7-entry log record, exercising the
		// checked-header path that open records never reach.
		return &stripeCounter{name: "bigcounter", lanes: 8}, nil
	case "queue":
		return &queueRun{q: workload.NewQueue()}, nil
	default:
		return nil, fmt.Errorf("crashtest: unknown workload %q (have %v)", name, Workloads())
	}
}

// stripeCounter is a striped counter with a reconciliation total: each
// operation picks a slot, writes value+1 to every lane line of the slot,
// and increments the grand total. Two invariants must survive any crash:
// all lanes of a slot agree (regions are atomic), and the slot values sum
// to the total (recovery lands on a happens-before-consistent prefix).
type stripeCounter struct {
	name  string
	lanes int

	mu    sim.Mutex
	slots []uint64 // lane-0 address of each slot; lane i at +64*i
	total uint64
}

func (sc *stripeCounter) bench() workload.Benchmark { return sc }

// Name implements workload.Benchmark.
func (sc *stripeCounter) Name() string { return sc.name }

// Setup implements workload.Benchmark.
func (sc *stripeCounter) Setup(c *Ctx, cfg workload.Config) {
	slots := cfg.InitialItems
	if slots <= 0 {
		slots = 8
	}
	sc.slots = make([]uint64, slots)
	for i := range sc.slots {
		sc.slots[i] = c.Alloc(64 * sc.lanes)
		for l := 0; l < sc.lanes; l++ {
			c.StoreU64(sc.slots[i]+64*uint64(l), 0)
		}
	}
	sc.total = c.Alloc(64)
	c.StoreU64(sc.total, 0)
}

// Op implements workload.Benchmark.
func (sc *stripeCounter) Op(c *Ctx, i int) {
	sc.mu.Lock(c.T)
	c.Begin()
	slot := sc.slots[c.Key(uint64(len(sc.slots)))]
	v := c.LoadU64(slot) + 1
	for l := 0; l < sc.lanes; l++ {
		c.StoreU64(slot+64*uint64(l), v)
	}
	c.StoreU64(sc.total, c.LoadU64(sc.total)+1)
	c.End()
	sc.mu.Unlock(c.T)
}

// Check implements workload.Benchmark.
func (sc *stripeCounter) Check(c *Ctx) string {
	return sc.check(c.LoadU64)
}

func (sc *stripeCounter) verify(read func(uint64) uint64) string {
	return sc.check(read)
}

func (sc *stripeCounter) check(read func(uint64) uint64) string {
	sum := uint64(0)
	for i, slot := range sc.slots {
		v := read(slot)
		for l := 1; l < sc.lanes; l++ {
			if got := read(slot + 64*uint64(l)); got != v {
				return fmt.Sprintf("%s: slot %d lane %d = %d, lane 0 = %d (torn region)", sc.name, i, l, got, v)
			}
		}
		sum += v
	}
	if total := read(sc.total); sum != total {
		return fmt.Sprintf("%s: slot sum %d != total %d (non-prefix state)", sc.name, sum, total)
	}
	return ""
}

func (sc *stripeCounter) post(sys *asap.System, seed int64) string {
	// A value copy with a fresh mutex: the crashed run may have died
	// holding sc.mu, and the new machine's threads must not inherit that.
	reborn := &stripeCounter{name: sc.name, lanes: sc.lanes, slots: sc.slots, total: sc.total}
	return runPost(sys, seed, func(c *Ctx) string {
		for i := 0; i < 6; i++ {
			reborn.Op(c, i)
		}
		return reborn.Check(c)
	})
}

// queueRun adapts the paper's Q benchmark (the highest cross-region
// dependence rate of Table 3) to the checker.
type queueRun struct {
	q *workload.Queue
}

func (qr *queueRun) bench() workload.Benchmark { return qr.q }

func (qr *queueRun) verify(read func(uint64) uint64) string {
	head := read(qr.q.HeadCellAddr())
	count := read(qr.q.CountCellAddr())
	enq := read(qr.q.EnqCellAddr())
	deq := read(qr.q.DeqCellAddr())
	tail := read(qr.q.TailCellAddr())

	n := uint64(0)
	last := uint64(0)
	for cur := head; cur != 0; cur = read(cur) {
		last = cur
		n++
		if n > 1<<20 {
			return "queue: cycle in persisted chain"
		}
	}
	if n != count {
		return fmt.Sprintf("queue: chain length %d != count cell %d", n, count)
	}
	if tail != last {
		return fmt.Sprintf("queue: tail %#x != last node %#x", tail, last)
	}
	if enq-deq != n {
		return fmt.Sprintf("queue: enq %d - deq %d != length %d", enq, deq, n)
	}
	return ""
}

func (qr *queueRun) post(sys *asap.System, seed int64) string {
	// Q's own mutex may be stuck from the crashed run, so reboot checks
	// are read-only: Check takes no locks.
	return runPost(sys, seed, qr.q.Check)
}

// Ctx aliases the workload context so the benchmark implementations above
// read naturally.
type Ctx = workload.Ctx

// runPost spawns one thread on the rebooted system, lets body operate on
// the recovered structures, and returns its verdict. A panic anywhere in
// the rebooted machine is itself a finding, not a harness crash.
func runPost(sys *asap.System, seed int64, body func(c *Ctx) string) (problem string) {
	defer func() {
		if p := recover(); p != nil {
			problem = fmt.Sprintf("post-recovery run panicked: %v", p)
		}
	}()
	m := sys.Machine()
	scheme := sys.SchemeImpl()
	env := &workload.Env{M: m, S: scheme}
	m.K.Spawn("post", func(t *sim.Thread) {
		scheme.InitThread(t)
		c := workload.NewCtx(env, t, seed)
		if msg := body(c); msg != "" {
			problem = msg
			return
		}
		scheme.DrainBarrier(t)
	})
	m.K.Run()
	return problem
}
