package crashtest

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"asap/internal/faults"
)

// TestNoFaultCasesAreClean: without injected faults every workload must
// recover to a state satisfying all invariants, at several crash points.
func TestNoFaultCasesAreClean(t *testing.T) {
	for _, w := range Workloads() {
		for _, at := range []uint64{1_200, 6_000, 30_000} {
			o := RunCase(Case{Workload: w, CrashAt: at, Seed: int64(at)})
			if o.Verdict != VerdictClean {
				t.Errorf("%s crash@%d: want clean, got %s: %s", w, at, o.Verdict, o.Detail)
			}
			if len(o.Faults) != 0 {
				t.Errorf("%s crash@%d: zero mix injected %d faults", w, at, len(o.Faults))
			}
		}
	}
}

// TestFaultyCasesNeverViolate is the checker's core claim: with validation
// on, every fault either gets repaired (recovered) or refused (detected) —
// never a silently broken image.
func TestFaultyCasesNeverViolate(t *testing.T) {
	mix := faults.Mix{TornPct: 0.2, DropPct: 0.2, ReorderPct: 0.3, BitFlips: 1}
	counts := map[Verdict]int{}
	for _, w := range Workloads() {
		for i := int64(0); i < 8; i++ {
			c := Case{Workload: w, CrashAt: 2_000 + uint64(i)*900, Seed: i, Mix: mix}
			o := RunCase(c)
			counts[o.Verdict]++
			if o.Verdict == VerdictViolation || o.Verdict == VerdictError {
				t.Errorf("%s: %s: %s (faults: %v)", c, o.Verdict, o.Detail, o.Faults)
			}
		}
	}
	t.Logf("verdicts: %v", counts)
	if counts[VerdictDetected] == 0 {
		t.Error("mix fired no detectable damage; the sweep exercises nothing")
	}
}

// TestBrokenRecoveryIsCaught is the negative control the acceptance
// criteria demand: disable the recovery validation pass and the checker
// must observe invariant violations — proof it can see real corruption.
func TestBrokenRecoveryIsCaught(t *testing.T) {
	mix := faults.Mix{TornPct: 0.6, DropPct: 0.3}
	violations := 0
	for i := int64(0); i < 10; i++ {
		o := RunCase(Case{
			Workload: "bigcounter", CrashAt: 2_500 + uint64(i)*700, Seed: 100 + i,
			Mix: mix, SkipValidation: true,
		})
		if o.Verdict == VerdictViolation {
			violations++
		}
		if o.Verdict == VerdictError {
			t.Errorf("seed %d: harness error: %s", 100+i, o.Detail)
		}
	}
	if violations == 0 {
		t.Fatal("validation disabled yet zero violations: the checker is blind")
	}
	t.Logf("%d/10 unvalidated recoveries caught violating invariants", violations)
}

// TestDroppedLogHeaderIsDetected is the LH-WPQ fault regression test: when
// the crash snapshot loses a resident log header (Mix.LHDropPct), recovery
// faces a live record slot with no usable header and must refuse with a
// missing-header corruption error — never report success, never violate.
// Drops that hit already-persisted (closing) headers are harmless and may
// still recover; the test demands at least one consequential drop.
func TestDroppedLogHeaderIsDetected(t *testing.T) {
	mix := faults.Mix{LHDropPct: 1.0}
	detected, fired := 0, 0
	sawMissingHeader := false
	for i := int64(0); i < 8; i++ {
		c := Case{Workload: "bigcounter", CrashAt: 1_500 + uint64(i)*1_100, Seed: 40 + i, Mix: mix}
		o := RunCase(c)
		if o.Verdict == VerdictViolation || o.Verdict == VerdictError {
			t.Errorf("%s: %s: %s (faults: %v)", c, o.Verdict, o.Detail, o.Faults)
		}
		headerDrops := 0
		for _, ev := range o.Faults {
			if ev.Class == faults.HeaderDrop {
				headerDrops++
			}
		}
		if headerDrops > 0 {
			fired++
		}
		if o.Verdict == VerdictDetected {
			detected++
			if headerDrops == 0 {
				t.Errorf("%s: detected without a header drop: %s", c, o.Detail)
			}
			if strings.Contains(o.Detail, "missing-header") {
				sawMissingHeader = true
			}
		}
	}
	if fired == 0 {
		t.Fatal("no crash point had a resident LH-WPQ header; the mix exercises nothing")
	}
	if detected == 0 {
		t.Fatal("dropped live log headers were never detected by recovery")
	}
	if !sawMissingHeader {
		t.Error("no detection was classified missing-header")
	}
	t.Logf("%d/8 cases dropped headers, %d detected", fired, detected)
}

// TestReplayReproducesOutcome: the same case with Replay of the recorded
// events must land on the same verdict — the property shrinking needs.
func TestReplayReproducesOutcome(t *testing.T) {
	c := Case{
		Workload: "queue", CrashAt: 4_000, Seed: 7,
		Mix: faults.Mix{TornPct: 0.3, DropPct: 0.3},
	}
	first := RunCase(c)
	if len(first.Faults) == 0 {
		t.Skip("no faults fired at this point; nothing to replay")
	}
	c.Replay = first.Faults
	second := RunCase(c)
	if second.Verdict != first.Verdict {
		t.Fatalf("replay verdict %s != original %s", second.Verdict, first.Verdict)
	}
}

// TestShrinkFindsMinimalFaultSet shrinks a known violation (under
// SkipValidation) and checks the reduced set still reproduces it.
func TestShrinkFindsMinimalFaultSet(t *testing.T) {
	c := Case{
		Workload: "bigcounter", CrashAt: 3_200, Seed: 101,
		Mix: faults.Mix{TornPct: 0.6, DropPct: 0.3}, SkipValidation: true,
	}
	o := RunCase(c)
	if o.Verdict != VerdictViolation {
		t.Skipf("case no longer violates (verdict %s); pick another seed", o.Verdict)
	}
	shrunk := Shrink(c, o.Faults, 64)
	if len(shrunk) == 0 || len(shrunk) > len(o.Faults) {
		t.Fatalf("shrink returned %d events from %d", len(shrunk), len(o.Faults))
	}
	c.Replay = shrunk
	if v := RunCase(c).Verdict; v != VerdictViolation {
		t.Fatalf("shrunk fault set does not reproduce the violation: %s", v)
	}
	t.Logf("shrunk %d faults to %d: %v", len(o.Faults), len(shrunk), shrunk)
}

// TestSweepDeterministicCases: the case list is a pure function of the
// config, so CI reruns sweep identical cases.
func TestSweepDeterministicCases(t *testing.T) {
	cfg := SweepConfig{Seed: 9, Points: 3}
	a, err := cfg.Cases()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := cfg.Cases()
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatal("case list not deterministic")
	}
	want := len(Workloads()) * len(DefaultMixes()) * 3
	if len(a) != want {
		t.Fatalf("got %d cases, want %d", len(a), want)
	}
}

// TestSweepSmall runs a bounded sweep in-process and requires zero bad
// outcomes, exercising the runner fan-out path end to end.
func TestSweepSmall(t *testing.T) {
	sum, err := Sweep(SweepConfig{
		Workloads: []string{"counter", "queue"},
		Mixes:     []faults.Mix{{}, {TornPct: 0.3, DropPct: 0.2}},
		Seed:      3, Points: 3, CrashLo: 1_500, CrashHi: 40_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Total != 12 {
		t.Fatalf("total %d, want 12", sum.Total)
	}
	if sum.Bad() != 0 {
		for _, v := range sum.Violations() {
			t.Errorf("violation: %s: %s", v.Case, v.Detail)
		}
		t.Fatalf("%d bad outcomes", sum.Bad())
	}
	t.Logf("verdicts: %v", sum.Counts)
}

// TestUnknownWorkloadErrors keeps the CLI's error path honest.
func TestUnknownWorkloadErrors(t *testing.T) {
	o := RunCase(Case{Workload: "nope"})
	if o.Verdict != VerdictError {
		t.Fatalf("want error verdict, got %s", o.Verdict)
	}
	if _, err := (SweepConfig{Workloads: []string{"nope"}}).Cases(); err == nil {
		t.Fatal("Cases accepted an unknown workload")
	}
}

// TestOutcomeJSONRoundTrips: the CLI report is JSON; outcomes must encode
// and decode without loss of the verdict and fault events.
func TestOutcomeJSONRoundTrips(t *testing.T) {
	o := RunCase(Case{
		Workload: "queue", CrashAt: 4_000, Seed: 7,
		Mix: faults.Mix{TornPct: 0.3, DropPct: 0.3},
	})
	blob, err := json.Marshal(o)
	if err != nil {
		t.Fatal(err)
	}
	var back Outcome
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Verdict != o.Verdict || len(back.Faults) != len(o.Faults) {
		t.Fatalf("round trip lost data: %+v vs %+v", back, o)
	}
}

// TestSweepCancelledReturnsPartialSummary exercises the SIGINT path:
// a pre-cancelled context must yield a (possibly empty) partial summary
// plus the context's error, never a nil summary.
func TestSweepCancelledReturnsPartialSummary(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sum, err := Sweep(SweepConfig{
		Workloads: []string{"counter"},
		Mixes:     []faults.Mix{{}},
		Seed:      3, Points: 4,
		Workers: 1,
		Context: ctx,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if sum == nil {
		t.Fatal("cancelled sweep returned nil summary")
	}
	if sum.Total != len(sum.Outcomes) {
		t.Fatalf("Total %d != %d outcomes", sum.Total, len(sum.Outcomes))
	}
	// Only ran cases appear; skipped zero-value outcomes are filtered.
	for _, o := range sum.Outcomes {
		if o.Verdict == "" {
			t.Fatal("zero-value outcome leaked into partial summary")
		}
	}
	if sum.Total >= 4 {
		t.Fatalf("cancelled sweep still ran all %d cases", sum.Total)
	}
}

// TestSnapshotBoundaryKillsAreConsistent is the boundary-kill family:
// crashes landing exactly on checkpoint boundaries (the instant a
// checkpointer publishes a snapshot) must be as recoverable as any other
// instant — clean without faults, never a violation with them.
func TestSnapshotBoundaryKillsAreConsistent(t *testing.T) {
	for _, w := range Workloads() {
		o := RunCase(Case{Workload: w, CrashAt: 3_000, Seed: 11, SnapshotEvery: 2_000})
		if o.Verdict != VerdictClean {
			t.Errorf("%s boundary kill without faults: want clean, got %s: %s", w, o.Verdict, o.Detail)
		}
	}
	mix := faults.Mix{TornPct: 0.2, DropPct: 0.2, BitFlips: 1}
	for i := int64(0); i < 4; i++ {
		c := Case{Workload: "queue", CrashAt: 2_500 + uint64(i)*1_700, Seed: i, Mix: mix, SnapshotEvery: 1_000}
		o := RunCase(c)
		if o.Verdict == VerdictViolation || o.Verdict == VerdictError {
			t.Errorf("%s: %s: %s (faults: %v)", c, o.Verdict, o.Detail, o.Faults)
		}
	}
}
