package trace

import (
	"testing"

	"asap/internal/arch"
)

// TestRegionsFirstAppearance: Regions returns distinct RIDs in first-
// appearance order, counting a dependence target (DepAdd aux) as an
// appearance and skipping NoRID.
func TestRegionsFirstAppearance(t *testing.T) {
	r1 := arch.MakeRID(0, 1)
	r2 := arch.MakeRID(1, 1)
	r3 := arch.MakeRID(2, 1)
	b := NewBuffer(16)
	b.Emit(Event{At: 1, Kind: RegionBegin, RID: r1})
	b.Emit(Event{At: 2, Kind: RegionBegin, RID: r2})
	b.Emit(Event{At: 3, Kind: DepAdd, RID: r2, Aux: uint64(r3)}) // r3 first seen as aux
	b.Emit(Event{At: 4, Kind: RegionBegin, RID: r3})
	b.Emit(Event{At: 5, Kind: Migrate, RID: arch.NoRID, Aux: 2})
	b.Emit(Event{At: 6, Kind: RegionEnd, RID: r1})

	got := b.Regions()
	want := []arch.RID{r1, r2, r3}
	if len(got) != len(want) {
		t.Fatalf("Regions() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Regions()[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestByRegionOrdering: each region's extracted stream preserves emission
// order, and a DepAdd shows up under both endpoints.
func TestByRegionOrdering(t *testing.T) {
	r1 := arch.MakeRID(0, 1)
	r2 := arch.MakeRID(1, 1)
	b := NewBuffer(16)
	b.Emit(Event{At: 1, Kind: RegionBegin, RID: r1})
	b.Emit(Event{At: 2, Kind: RegionBegin, RID: r2})
	b.Emit(Event{At: 3, Kind: LPOIssue, RID: r1, Line: 64})
	b.Emit(Event{At: 4, Kind: DepAdd, RID: r2, Aux: uint64(r1)})
	b.Emit(Event{At: 5, Kind: RegionEnd, RID: r1})
	b.Emit(Event{At: 6, Kind: RegionEnd, RID: r2})

	rids, events := b.ByRegion()
	if len(rids) != 2 || rids[0] != r1 || rids[1] != r2 {
		t.Fatalf("rids = %v, want [%v %v]", rids, r1, r2)
	}
	wantAt := map[arch.RID][]uint64{
		r1: {1, 3, 4, 5}, // DepAdd at 4 referenced r1 via aux
		r2: {2, 4, 6},
	}
	for rid, want := range wantAt {
		got := events[rid]
		if len(got) != len(want) {
			t.Fatalf("%v: %d events, want %d", rid, len(got), len(want))
		}
		for i, e := range got {
			if e.At != want[i] {
				t.Fatalf("%v event %d at cycle %d, want %d (order broken)", rid, i, e.At, want[i])
			}
		}
	}
}

// TestEventsOldestFirstAcrossWrap: after the ring wraps, Events (and
// everything layered on it: Filter, OfRegion, Regions) still returns the
// retained window oldest-first.
func TestEventsOldestFirstAcrossWrap(t *testing.T) {
	r := arch.MakeRID(0, 1)
	b := NewBuffer(4)
	for at := uint64(1); at <= 6; at++ {
		b.Emit(Event{At: at, Kind: LPOIssue, RID: r})
	}
	got := b.Events()
	if len(got) != 4 || b.Total() != 6 {
		t.Fatalf("retained %d of %d, want 4 of 6", len(got), b.Total())
	}
	for i, e := range got {
		if e.At != uint64(3+i) {
			t.Fatalf("Events()[%d].At = %d, want %d (oldest-first)", i, e.At, 3+i)
		}
	}
	if f := b.Filter(LPOIssue); len(f) != 4 || f[0].At != 3 {
		t.Fatalf("Filter after wrap = %v", f)
	}
}

// TestRegionsAfterWrap: a region whose every event was evicted no longer
// appears.
func TestRegionsAfterWrap(t *testing.T) {
	old := arch.MakeRID(0, 1)
	cur := arch.MakeRID(1, 1)
	b := NewBuffer(2)
	b.Emit(Event{At: 1, Kind: RegionBegin, RID: old})
	b.Emit(Event{At: 2, Kind: RegionBegin, RID: cur})
	b.Emit(Event{At: 3, Kind: RegionEnd, RID: cur})
	got := b.Regions()
	if len(got) != 1 || got[0] != cur {
		t.Fatalf("Regions after wrap = %v, want [%v]", got, cur)
	}
}
