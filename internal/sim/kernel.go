// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel multiplexes simulated threads (each backed by a goroutine, but
// with exactly one ever running at a time) over a shared virtual clock, and
// fires scheduled hardware events at exact cycles. Scheduling is
// lowest-virtual-clock-first with a monotone sequence number as tiebreaker,
// so a simulation is fully reproducible.
//
// The inner loop is built for wall-clock speed without changing a single
// scheduling decision (DESIGN.md §10): threads that remain the unique
// earliest entity resume directly from their own yield (no goroutine
// handoff), runnable threads wait in an indexed run queue instead of being
// rescanned, blocked threads live in a separate waiter set so predicates
// are polled only over the blocked subset, and fired events are pooled so
// Schedule allocates nothing steady-state.
package sim

// Kernel is the simulation scheduler. The zero value is not usable; create
// one with NewKernel.
//
// Scheduling state invariant: between steps, every live thread is in
// exactly one place — the run queue (runnable, waiting for dispatch), the
// waiter set (blocked on a predicate), or running (at most one, currently
// executing between the kernel's resume and the thread's next park).
// Finished threads are dropped at park time.
type Kernel struct {
	threads []*Thread
	runq    runQueue
	waiters []*Thread // blocked threads, ascending spawn order
	events  eventQueue
	now     uint64
	seq     uint64
	parked  chan *Thread
	running bool
	halted  bool
	obs     Observer

	// Forward-progress watchdog (stall.go). wdAt is the kernel time the
	// current no-progress window opened; wdProgress the progress counter
	// sampled then.
	wd         *Watchdog
	wdAt       uint64
	wdProgress uint64
}

// Halt makes Run return at the next scheduling decision without running
// further threads or events. It models a power failure: whatever state the
// hardware holds at this instant is what a crash snapshot sees. Halt is
// called from thread or event context.
func (k *Kernel) Halt() { k.halted = true }

// Halted reports whether Halt was called.
func (k *Kernel) Halted() bool { return k.halted }

// NewKernel returns an empty kernel at cycle 0.
func NewKernel() *Kernel {
	return &Kernel{parked: make(chan *Thread)}
}

// Now returns the kernel's current virtual time in cycles: the time of the
// most recent event fired or thread step begun.
func (k *Kernel) Now() uint64 { return k.now }

// Spawn registers a simulated thread that will execute fn when Run is
// called. The thread's virtual clock starts at the kernel's current time.
// Spawn may also be called from inside a running thread to fork workers.
func (k *Kernel) Spawn(name string, fn func(t *Thread)) *Thread {
	t := &Thread{
		k:      k,
		id:     len(k.threads),
		name:   name,
		now:    k.now,
		state:  stateRunnable,
		resume: make(chan struct{}),
	}
	k.threads = append(k.threads, t)
	k.runq.push(t)
	if k.obs != nil {
		k.obs.ThreadStart(t)
	}
	go func() {
		<-t.resume
		fn(t)
		t.state = stateDone
		k.parked <- t
	}()
	return t
}

// Schedule registers fn to run at absolute cycle at. Events scheduled for a
// time earlier than the kernel clock fire as soon as possible. fn runs in
// kernel context: no simulated thread is executing concurrently, so it may
// mutate shared hardware state freely.
func (k *Kernel) Schedule(at uint64, fn func()) {
	k.seq++
	k.events.push(k.events.get(at, k.seq, fn))
}

// ScheduleAfter registers fn to run delay cycles from now.
func (k *Kernel) ScheduleAfter(delay uint64, fn func()) {
	k.Schedule(k.now+delay, fn)
}

// Run drives the simulation until every spawned thread has finished and the
// event queue is drained, then returns nil. If all remaining threads are
// blocked and no event can unblock them (simulated deadlock), or an
// attached Watchdog diagnoses a livelock, Run returns a *StallError
// carrying the blocked report, structure gauges, and protocol snapshot.
// Callers that treat any stall as fatal can use MustRun.
func (k *Kernel) Run() error {
	if k.running {
		panic("sim: Run called re-entrantly")
	}
	k.running = true
	defer func() { k.running = false }()

	for {
		if k.halted {
			return nil
		}
		if err := k.checkWatchdog(); err != nil {
			return err
		}
		t, tEff := k.pickThread()
		ev := k.events.peek()

		switch {
		case ev != nil && (t == nil || ev.at <= tEff):
			k.events.pop()
			if ev.at > k.now {
				k.now = ev.at
				if k.obs != nil {
					k.obs.Tick(k.now)
				}
			}
			fn := ev.fn
			k.events.put(ev)
			fn()
		case t != nil:
			if t.state == stateBlocked {
				// Claim the wakeup now so no sibling waiter can also slip
				// past its predicate before this thread reacts.
				t.pred = nil
				t.state = stateRunnable
				k.removeWaiter(t)
			} else {
				k.runq.pop() // t is the run-queue minimum
			}
			if k.now > t.now {
				delta := k.now - t.now
				t.now = k.now
				if k.obs != nil {
					k.obs.ClockAdvance(t, delta)
				}
			}
			if t.now > k.now {
				k.now = t.now
				if k.obs != nil {
					k.obs.Tick(k.now)
				}
			}
			t.resume <- struct{}{}
			k.park(<-k.parked)
		default:
			if len(k.waiters) == 0 {
				return nil // run queue empty, no waiters: every thread is done
			}
			return k.stallError(StallDeadlock)
		}
	}
}

// park files a thread that just yielded into the structure matching its
// state. Finished threads are dropped; they never re-enter scheduling.
func (k *Kernel) park(t *Thread) {
	switch t.state {
	case stateRunnable:
		k.runq.push(t)
	case stateBlocked:
		k.insertWaiter(t)
	}
}

// pickThread returns the thread that should run next and its effective
// time: among run-queue threads and blocked threads whose predicate
// currently holds, the one with the smallest effective clock, breaking
// ties by spawn order. Predicates are evaluated here, at scheduling time,
// so exactly one waiter can win a just-freed resource — and only waiters
// that could actually beat the run-queue minimum are polled, which is
// safe because predicates are read-only.
func (k *Kernel) pickThread() (*Thread, uint64) {
	best := k.runq.peek()
	var bestEff uint64
	if best != nil {
		bestEff = best.now // runnable: effective time is its own clock
	}
	for _, w := range k.waiters {
		eff := w.now
		if k.now > eff {
			// Blocked threads lag: they can only resume at the instant the
			// kernel unblocks them.
			eff = k.now
		}
		if best != nil && (eff > bestEff || (eff == bestEff && w.id > best.id)) {
			continue // cannot win regardless of its predicate
		}
		if !w.pred() {
			continue
		}
		best, bestEff = w, eff
	}
	return best, bestEff
}

// insertWaiter files t into the waiter set, keeping ascending spawn order
// so pickThread's scan preserves the original tie-break.
func (k *Kernel) insertWaiter(t *Thread) {
	i := len(k.waiters)
	for i > 0 && k.waiters[i-1].id > t.id {
		i--
	}
	k.waiters = append(k.waiters, nil)
	copy(k.waiters[i+1:], k.waiters[i:])
	k.waiters[i] = t
}

// removeWaiter unfiles a claimed waiter.
func (k *Kernel) removeWaiter(t *Thread) {
	for i, w := range k.waiters {
		if w == t {
			k.waiters = append(k.waiters[:i], k.waiters[i+1:]...)
			return
		}
	}
	panic("sim: blocked thread missing from waiter set: " + t.name)
}

// fastResume is the direct-dispatch fast path, called from a runnable
// thread's own yield. It reports whether t is still the unique next
// scheduling choice — no pending event at or before t's clock, no
// runnable thread and no satisfied waiter that would be picked instead —
// and if so performs the dispatch bookkeeping (kernel clock advance and
// observer Tick) inline, so control returns straight to t without the
// park/resume goroutine round-trip. The decision procedure mirrors
// pickThread exactly; only the handoff is elided.
func (k *Kernel) fastResume(t *Thread) bool {
	if k.halted {
		return false // Run must regain control to stop the simulation
	}
	if k.wdDue(t.now) {
		return false // watchdog window expired: Run must perform the check
	}
	if ev := k.events.peek(); ev != nil && ev.at <= t.now {
		return false // an event fires first (events win ties)
	}
	if r := k.runq.peek(); r != nil && (r.now < t.now || (r.now == t.now && r.id < t.id)) {
		return false // another runnable thread is earlier
	}
	for _, w := range k.waiters {
		eff := w.now
		if k.now > eff {
			eff = k.now
		}
		if eff > t.now || (eff == t.now && w.id > t.id) {
			continue // loses the tie-break to t even if unblocked
		}
		if w.pred() {
			return false // an earlier waiter just became runnable
		}
	}
	if t.now > k.now {
		k.now = t.now
		if k.obs != nil {
			k.obs.Tick(k.now)
		}
	}
	return true
}
