package schemes

import (
	"asap/internal/arch"
	"asap/internal/cache"
	"asap/internal/machine"
	"asap/internal/memdev"
	"asap/internal/obs"
	"asap/internal/sim"
	"asap/internal/wal"
)

// redoThread is one thread's hardware-redo-logging state.
type redoThread struct {
	log     *wal.ThreadLog
	nest    int
	beginAt uint64
	local   uint64
	rid     arch.RID

	dirty       map[arch.LineAddr]bool
	words       int // redo words buffered toward the next log-line write
	pendingLogs int
	rec         arch.LineAddr
	recUsed     int
	logEnd      uint64
}

// HWRedo is the state-of-the-art hardware redo-logging baseline (§6.3,
// after Jeong et al.): stores are logged at word granularity into packed
// redo log lines, the region commits synchronously once all its LPOs (log
// line writes) and its commit record have persisted, and the DPOs — the
// in-place data writes — happen after commit, asynchronously, with stale
// queued DPOs filtered out when a newer DPO for the same line is issued.
//
// Data lines modified by an uncommitted region must not reach PM in place;
// if one is evicted, later reads are redirected to the log at a penalty.
type HWRedo struct {
	m       *machine.Machine
	threads map[int]*redoThread

	// owned maps a line to the uncommitted region that modified it, for
	// eviction suppression and read redirection.
	owned map[arch.LineAddr]arch.RID
	// redirect holds evicted-while-uncommitted lines whose reads must go
	// to the log.
	redirect map[arch.LineAddr]bool

	// RedirectPenalty is the extra latency of a log-redirected read.
	RedirectPenalty uint64
	// Window bounds the outstanding log writes per thread (§6.3: on-chip
	// resources of similar size to ASAP's).
	Window int

	prof *obs.Profiler
}

// SetProfiler attaches a stall-attribution profiler (nil detaches).
func (s *HWRedo) SetProfiler(p *obs.Profiler) {
	s.prof = p
	s.m.Caches.SetProfiler(p)
}

var _ machine.Scheme = (*HWRedo)(nil)

// NewHWRedo builds the hardware redo-logging baseline on m.
func NewHWRedo(m *machine.Machine) *HWRedo {
	s := &HWRedo{
		m:               m,
		threads:         make(map[int]*redoThread),
		owned:           make(map[arch.LineAddr]arch.RID),
		redirect:        make(map[arch.LineAddr]bool),
		RedirectPenalty: 30,
		Window:          64,
	}
	m.Caches.SetEvictHook(s.onEvict)
	return s
}

// Name implements machine.Scheme.
func (s *HWRedo) Name() string { return "HWRedo" }

// InitThread implements machine.Scheme.
func (s *HWRedo) InitThread(t *sim.Thread) {
	s.threads[t.ID()] = &redoThread{
		log:   wal.NewThreadLog(s.m.Heap, 256<<10),
		dirty: make(map[arch.LineAddr]bool),
	}
	t.Advance(200)
}

func (s *HWRedo) state(t *sim.Thread) *redoThread { return s.threads[t.ID()] }

// Begin implements machine.Scheme.
func (s *HWRedo) Begin(t *sim.Thread) {
	ts := s.state(t)
	ts.nest++
	if ts.nest > 1 {
		t.Advance(1)
		return
	}
	ts.beginAt = t.Now()
	ts.local++
	ts.rid = arch.MakeRID(t.ID(), ts.local)
	ts.dirty = make(map[arch.LineAddr]bool)
	ts.words = 0
	*s.m.Cells.RegionsBegun++
	t.Advance(4)
}

// End implements machine.Scheme: synchronous commit on the log side. The
// partial log line flushes, every log write must be accepted, and the
// commit record persists — only then may execution proceed. The DPOs
// follow asynchronously.
func (s *HWRedo) End(t *sim.Thread) {
	ts := s.state(t)
	ts.nest--
	if ts.nest > 0 {
		t.Advance(1)
		return
	}
	if ts.words > 0 {
		s.flushLogLine(t, ts)
	}
	s.prof.Enter(t, obs.FenceWait)
	t.WaitUntil(func() bool { return ts.pendingLogs == 0 })
	s.prof.Exit(t)

	if len(ts.dirty) > 0 {
		// Commit record: redo logging needs a durable commit marker before
		// the log may be replayed (and before execution proceeds).
		if ts.rec == 0 {
			s.allocRecord(t, ts)
		}
		ts.pendingLogs++
		hdr := s.m.Fabric.NewEntry(memdev.KindLogHeader, ts.rid, ts.rec, ts.rec)
		hdr.SetPayload(wal.EncodeHeader(ts.rid, firstLines(ts.dirty)))
		s.m.Fabric.SubmitPersist(hdr, func(uint64) { ts.pendingLogs-- })
		s.prof.Enter(t, obs.FenceWait)
		t.WaitUntil(func() bool { return ts.pendingLogs == 0 })
		s.prof.Exit(t)
	}

	// Committed. Issue the in-place DPOs asynchronously, superseding any
	// still-queued DPO to the same line from an earlier region — the
	// redo-side write filtering (§7.2).
	rid := ts.rid
	for _, line := range sortedLines(ts.dirty) {
		line := line
		s.m.Fabric.SupersedeDPO(line)
		*s.m.Cells.DPOsIssued++
		e := s.m.Fabric.NewEntry(memdev.KindDPO, rid, line, line)
		s.m.Heap.ReadLineInto(line, e.Payload)
		s.m.Fabric.SubmitPersist(e, func(uint64) { s.m.Caches.MarkClean(line) })
		if s.owned[line] == rid {
			delete(s.owned, line)
		}
		delete(s.redirect, line)
	}
	ts.log.FreeUpTo(ts.logEnd)
	ts.rec, ts.recUsed = 0, 0
	t.Advance(4)
	*s.m.Cells.RegionCycles += int64(t.Now() - ts.beginAt)
	s.m.Cells.RegionLatency.Observe(t.Now() - ts.beginAt)
	*s.m.Cells.RegionsCommitted++
}

func firstLines(m map[arch.LineAddr]bool) []arch.LineAddr {
	lines := sortedLines(m)
	if len(lines) > wal.RecordEntries {
		lines = lines[:wal.RecordEntries]
	}
	return lines
}

// Fence implements machine.Scheme: commit is synchronous at End.
func (s *HWRedo) Fence(t *sim.Thread) { *s.m.Cells.Fences++ }

// Load implements machine.Scheme, charging the log-redirection penalty for
// lines whose in-cache copy was evicted before commit (§2.3).
func (s *HWRedo) Load(t *sim.Thread, addr uint64, buf []byte) {
	machine.VisitLines(addr, len(buf), func(line arch.LineAddr) {
		lat, _ := s.m.Caches.AccessBlocking(t, s.m.CoreOf(t), line, false)
		if s.redirect[line] {
			lat += s.RedirectPenalty
		}
		t.Advance(lat)
	})
	s.m.Heap.Read(addr, buf)
}

// Store implements machine.Scheme: every persistent word written inside a
// region is appended to the packed redo log; a log line flushes (one LPO)
// per eight words.
func (s *HWRedo) Store(t *sim.Thread, addr uint64, data []byte) {
	ts := s.state(t)
	machine.VisitLines(addr, len(data), func(line arch.LineAddr) {
		lat, _ := s.m.Caches.AccessBlocking(t, s.m.CoreOf(t), line, true)
		t.Advance(lat)
		if !s.m.Heap.IsPersistentLine(line) || ts.nest == 0 {
			return
		}
		ts.dirty[line] = true
		s.owned[line] = ts.rid
	})
	if ts.nest > 0 && s.m.Heap.IsPersistentAddr(addr) {
		words := (len(data) + 7) / 8
		ts.words += words
		for ts.words >= 8 {
			ts.words -= 8
			s.prof.Enter(t, obs.WPQFull)
			t.WaitUntil(func() bool { return ts.pendingLogs < s.Window })
			s.prof.Exit(t)
			s.flushLogLine(t, ts)
		}
	}
	s.m.Heap.Write(addr, data)
}

// flushLogLine sends one packed redo log line toward the WPQ.
func (s *HWRedo) flushLogLine(t *sim.Thread, ts *redoThread) {
	if ts.recUsed == wal.RecordEntries || ts.rec == 0 {
		s.allocRecord(t, ts)
	}
	logLine := wal.EntryLine(ts.rec, ts.recUsed)
	ts.recUsed++
	ts.pendingLogs++
	*s.m.Cells.LPOsIssued++
	e := s.m.Fabric.NewEntry(memdev.KindLPO, ts.rid, logLine, logLine)
	e.SetPayload(nil) // packed new-value words, modeled as zeros
	s.m.Fabric.SubmitPersist(e, func(uint64) { ts.pendingLogs-- })
	ts.words = max(ts.words, 0)
}

func (s *HWRedo) allocRecord(t *sim.Thread, ts *redoThread) {
	rec, end, ok := ts.log.AllocRecord()
	if !ok {
		*s.m.Cells.LogOverflows++
		s.prof.Enter(t, obs.LogOverflow)
		t.Advance(2000)
		s.prof.Exit(t)
		ts.log.Grow()
		rec, end, _ = ts.log.AllocRecord()
	}
	ts.rec, ts.recUsed, ts.logEnd = rec, 0, end
}

// onEvict suppresses in-place writeback of lines modified by uncommitted
// regions: their new values exist only in the log until commit, so reads
// redirect there instead.
func (s *HWRedo) onEvict(info cache.EvictInfo) {
	if rid, ok := s.owned[info.Line]; ok && rid != arch.NoRID {
		s.redirect[info.Line] = true
		return
	}
	evictWriteback(s.m, info)
}

// DrainBarrier implements machine.Scheme.
func (s *HWRedo) DrainBarrier(t *sim.Thread) {
	s.prof.Enter(t, obs.Drain)
	t.WaitUntil(s.m.Fabric.Quiesced)
	s.prof.Exit(t)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
