// Package metrics is a small, dependency-free metrics registry for the
// experiment service: counters, gauges and fixed-bucket histograms, with
// optional labels, rendered in the Prometheus text exposition format.
// The simulator keeps its own observability layer (internal/obs samples
// *simulated* time); this package measures the *service* — wall-clock
// rates, depths and latencies of the daemon wrapped around the
// simulator — and exists so asapd can expose a /metrics endpoint
// without importing a client library the container does not have.
//
// Design constraints, in order:
//
//  1. Hot-path increments must be cheap and lock-free (one atomic add),
//     because the journal and queue bump counters inside their commit
//     paths.
//  2. Exposition must be deterministic: families sorted by name,
//     children sorted by label values, so scrape diffs and tests are
//     stable.
//  3. Instruments are create-once, use-forever: registering an existing
//     name returns the existing instrument, so wiring code can be
//     idempotent across daemon restarts in one process (tests).
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value.
type Counter struct {
	bits atomic.Uint64 // float64 bits
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by v (v must be >= 0; negative deltas are
// ignored rather than corrupting monotonicity).
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed cumulative buckets. Buckets
// are upper bounds in ascending order; every histogram gets an implicit
// +Inf bucket. Observation is one mutex-guarded pass (histograms sit on
// job-completion paths, not per-cycle paths, so a mutex is fine).
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1; last is +Inf
	sum    float64
	total  uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.total++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot returns cumulative bucket counts, sum and total.
func (h *Histogram) snapshot() (bounds []float64, cum []uint64, sum float64, total uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum = make([]uint64, len(h.counts))
	var acc uint64
	for i, c := range h.counts {
		acc += c
		cum[i] = acc
	}
	return h.bounds, cum, h.sum, h.total
}

// Pow2Buckets returns n upper bounds starting at base and doubling:
// base, 2*base, 4*base, ... The fixed power-of-two ladder keeps bucket
// boundaries identical across restarts and PRs, so dashboards and CI
// assertions never chase moving bucket edges.
func Pow2Buckets(base float64, n int) []float64 {
	if base <= 0 {
		base = 1
	}
	if n <= 0 {
		n = 1
	}
	out := make([]float64, n)
	v := base
	for i := range out {
		out[i] = v
		v *= 2
	}
	return out
}

// metricKind tags a family for TYPE rendering and re-registration checks.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// family is one named metric: help, type, label names, and children
// keyed by label values. Unlabelled instruments are the child with the
// empty key.
type family struct {
	name   string
	help   string
	kind   metricKind
	labels []string

	mu       sync.Mutex
	children map[string]any // label key -> *Counter | *Gauge | func() float64 | *Histogram
	order    []string
	bounds   []float64 // histogram families only
}

// child returns (creating if needed) the instrument for the label key.
func (f *family) child(key string, mk func() any) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = mk()
		f.children[key] = c
		f.order = append(f.order, key)
	}
	return c
}

// Registry holds metric families and renders them. The zero value is
// not usable; create with NewRegistry.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// validName is the conservative Prometheus metric/label name contract.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// register returns the family for name, creating it on first use and
// panicking on a kind or label-arity conflict — conflicting
// registrations are wiring bugs, not runtime conditions.
func (r *Registry) register(name, help string, kind metricKind, labels []string) *family {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{
			name: name, help: help, kind: kind,
			labels:   append([]string(nil), labels...),
			children: make(map[string]any),
		}
		r.fams[name] = f
		return f
	}
	if f.kind != kind || len(f.labels) != len(labels) {
		panic(fmt.Sprintf("metrics: %q re-registered as %s/%v (was %s/%v)",
			name, kind, labels, f.kind, f.labels))
	}
	for i := range labels {
		if f.labels[i] != labels[i] {
			panic(fmt.Sprintf("metrics: %q re-registered with labels %v (was %v)",
				name, labels, f.labels))
		}
	}
	return f
}

// Counter returns the unlabelled counter with the given name.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, kindCounter, nil)
	return f.child("", func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the unlabelled settable gauge with the given name.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, kindGauge, nil)
	return f.child("", func() any { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers a gauge whose value is read from fn at scrape
// time. fn must be safe to call from any goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindGauge, nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.children[""]; !ok {
		f.children[""] = fn
		f.order = append(f.order, "")
	}
}

// Histogram returns the unlabelled histogram with the given cumulative
// upper bounds (ascending; an implicit +Inf bucket is added).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, kindHistogram, nil)
	f.mu.Lock()
	if f.bounds == nil {
		f.bounds = append([]float64(nil), buckets...)
	}
	bounds := f.bounds
	f.mu.Unlock()
	return f.child("", func() any {
		return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
	}).(*Histogram)
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec returns the labelled counter family with the given name.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic("metrics: CounterVec needs at least one label")
	}
	return &CounterVec{f: r.register(name, help, kindCounter, labels)}
}

// With returns the counter for the given label values (arity-checked).
func (v *CounterVec) With(values ...string) *Counter {
	key := labelKey(v.f, values)
	return v.f.child(key, func() any { return &Counter{} }).(*Counter)
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec returns the labelled gauge family with the given name.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if len(labels) == 0 {
		panic("metrics: GaugeVec needs at least one label")
	}
	return &GaugeVec{f: r.register(name, help, kindGauge, labels)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	key := labelKey(v.f, values)
	return v.f.child(key, func() any { return &Gauge{} }).(*Gauge)
}

// WithFunc registers a scrape-time gauge function for the label values.
func (v *GaugeVec) WithFunc(fn func() float64, values ...string) {
	key := labelKey(v.f, values)
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	if _, ok := v.f.children[key]; !ok {
		v.f.children[key] = fn
		v.f.order = append(v.f.order, key)
	}
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec returns the labelled histogram family; all children
// share the same bucket bounds.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic("metrics: HistogramVec needs at least one label")
	}
	f := r.register(name, help, kindHistogram, labels)
	f.mu.Lock()
	if f.bounds == nil {
		f.bounds = append([]float64(nil), buckets...)
	}
	f.mu.Unlock()
	return &HistogramVec{f: f}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	key := labelKey(v.f, values)
	v.f.mu.Lock()
	bounds := v.f.bounds
	v.f.mu.Unlock()
	return v.f.child(key, func() any {
		return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
	}).(*Histogram)
}

// labelKey encodes label values into the child map key. Values are
// length-prefixed so no two value tuples collide.
func labelKey(f *family, values []string) string {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %q wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	var b strings.Builder
	for _, v := range values {
		fmt.Fprintf(&b, "%d:%s", len(v), v)
	}
	return b.String()
}

// decodeKey reverses labelKey.
func decodeKey(key string) []string {
	var out []string
	for len(key) > 0 {
		i := strings.IndexByte(key, ':')
		var n int
		fmt.Sscanf(key[:i], "%d", &n)
		out = append(out, key[i+1:i+1+n])
		key = key[i+1+n:]
	}
	return out
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// formatValue renders a sample value; integers print without exponent.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// renderLabels renders {a="x",b="y"} (or "" when empty). extra, when
// non-empty, is appended as a pre-rendered pair (histogram le).
func renderLabels(names, values []string, extra string) string {
	if len(names) == 0 && extra == "" {
		return ""
	}
	parts := make([]string, 0, len(names)+1)
	for i, n := range names {
		parts = append(parts, fmt.Sprintf(`%s="%s"`, n, escapeLabel(values[i])))
	}
	if extra != "" {
		parts = append(parts, extra)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WritePrometheus renders every family in the text exposition format,
// families sorted by name and children by label values, so output is
// deterministic for a given registry state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.fams[n])
	}
	r.mu.Unlock()

	for _, f := range fams {
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		children := make([]any, len(keys))
		for i, k := range keys {
			children[i] = f.children[k]
		}
		f.mu.Unlock()
		if len(keys) == 0 {
			continue
		}
		sort.Sort(&keyedChildren{keys, children})

		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " ")); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for i, key := range keys {
			values := decodeKey(key)
			switch c := children[i].(type) {
			case *Counter:
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name,
					renderLabels(f.labels, values, ""), formatValue(c.Value())); err != nil {
					return err
				}
			case *Gauge:
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name,
					renderLabels(f.labels, values, ""), formatValue(c.Value())); err != nil {
					return err
				}
			case func() float64:
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name,
					renderLabels(f.labels, values, ""), formatValue(c())); err != nil {
					return err
				}
			case *Histogram:
				bounds, cum, sum, total := c.snapshot()
				for bi, ub := range bounds {
					le := fmt.Sprintf(`le="%s"`, formatValue(ub))
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
						renderLabels(f.labels, values, le), cum[bi]); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
					renderLabels(f.labels, values, `le="+Inf"`), total); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name,
					renderLabels(f.labels, values, ""), formatValue(sum)); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name,
					renderLabels(f.labels, values, ""), total); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// keyedChildren sorts children by decoded label-value order.
type keyedChildren struct {
	keys     []string
	children []any
}

func (k *keyedChildren) Len() int           { return len(k.keys) }
func (k *keyedChildren) Less(i, j int) bool { return k.keys[i] < k.keys[j] }
func (k *keyedChildren) Swap(i, j int) {
	k.keys[i], k.keys[j] = k.keys[j], k.keys[i]
	k.children[i], k.children[j] = k.children[j], k.children[i]
}

// Handler returns an http.Handler serving the exposition format with
// the conventional content type.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
