package workload

// Read-only lookup paths for the keyed benchmarks, used by the ReadPct
// operation mix (read-only atomic regions commit without any persist
// operations) and by tests.

// lookup returns the node holding key in the binary search tree, or 0.
func (b *BinaryTree) lookupNode(c *Ctx, key uint64) uint64 {
	cur := c.LoadU64(b.rootCell)
	for cur != 0 {
		k := c.LoadU64(cur)
		switch {
		case key == k:
			return cur
		case key < k:
			cur = c.LoadU64(cur + 8)
		default:
			cur = c.LoadU64(cur + 16)
		}
	}
	return 0
}

// get returns the node holding key in the hash map, or 0. Callers must
// hold the key's stripe lock.
func (h *HashMap) get(c *Ctx, key uint64) uint64 {
	cur := c.LoadU64(h.buckets + 8*h.bucketOf(key))
	for cur != 0 {
		if c.LoadU64(cur) == key {
			return cur
		}
		cur = c.LoadU64(cur + 8)
	}
	return 0
}
