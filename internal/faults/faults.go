// Package faults is a deterministic, seeded fault-injection layer for the
// persistence domain. It plugs into the memory fabric's ADR crash flush
// (memdev.FaultInjector) to model the failure modes real PM studies treat
// as first class: torn cache-line persists (partial 64 B writes at power
// loss), accepted WPQ entries that never reach media, reordered flushes,
// and bit-flip media errors in the persisted image.
//
// Every decision is drawn from a private PRNG, and every injected fault is
// recorded as an Event tagged with the decision sequence number. Because
// injection only acts at crash time — never during the simulated execution
// leading up to it — re-running the same workload with Replay and a subset
// of the recorded events reproduces exactly that subset of damage, which
// is what lets the crash-consistency checker shrink a failing case to a
// minimal fault set.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"asap/internal/arch"
	"asap/internal/memdev"
)

// Class names one injected fault kind.
type Class string

// The fault classes.
const (
	Torn       Class = "torn"    // partial cache-line persist at flush
	Drop       Class = "drop"    // accepted entry never reaches media
	Reorder    Class = "reorder" // channel flush order permuted
	BitFlip    Class = "bitflip" // media error in a persisted line
	HeaderDrop Class = "lhdrop"  // LH-WPQ header lost from the crash snapshot
)

// Mix is the fault mixture: per-entry probabilities for torn and dropped
// persists, a per-channel probability for flush reordering, a bit-flip
// count over the candidate lines handed to FlipBits, and an optional
// restriction to specific persist-operation kinds.
type Mix struct {
	TornPct    float64
	DropPct    float64
	ReorderPct float64
	BitFlips   int
	// LHDropPct is the per-header probability that a resident LH-WPQ
	// header is lost from the crash snapshot (the memdev
	// HeaderFaultInjector path).
	LHDropPct float64
	// Kinds, when non-nil, limits torn/drop decisions to entries of these
	// kinds (e.g. only log headers). Reordering is kind-agnostic.
	Kinds map[memdev.Kind]bool
}

// Zero reports whether the mix injects nothing.
func (m Mix) Zero() bool {
	return m.TornPct == 0 && m.DropPct == 0 && m.ReorderPct == 0 && m.BitFlips == 0 && m.LHDropPct == 0
}

// String renders the mix in the form ParseMix accepts.
func (m Mix) String() string {
	if m.Zero() {
		return "none"
	}
	var parts []string
	add := func(k string, v float64) {
		if v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", k, v))
		}
	}
	add("torn", m.TornPct)
	add("drop", m.DropPct)
	add("reorder", m.ReorderPct)
	add("lhdrop", m.LHDropPct)
	if m.BitFlips > 0 {
		parts = append(parts, fmt.Sprintf("flip=%d", m.BitFlips))
	}
	if m.Kinds != nil {
		var ks []string
		for k, on := range m.Kinds {
			if on {
				ks = append(ks, k.String())
			}
		}
		sort.Strings(ks)
		parts = append(parts, "kinds="+strings.Join(ks, "+"))
	}
	return strings.Join(parts, ",")
}

// ParseMix parses "torn=0.2,drop=0.1,reorder=0.25,flip=2" style strings.
// The shorthands "none" (no faults) and "all" (a representative mixed
// load) are accepted, as is "kinds=LPO+LogHeader" to restrict targets.
func ParseMix(s string) (Mix, error) {
	var m Mix
	s = strings.TrimSpace(s)
	switch s {
	case "", "none":
		return m, nil
	case "all":
		return Mix{TornPct: 0.25, DropPct: 0.25, ReorderPct: 0.25, BitFlips: 1}, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return m, fmt.Errorf("faults: bad mix element %q (want key=value)", part)
		}
		key, val := strings.TrimSpace(kv[0]), strings.TrimSpace(kv[1])
		if key == "kinds" {
			m.Kinds = make(map[memdev.Kind]bool)
			for _, name := range strings.Split(val, "+") {
				k, err := kindByName(strings.TrimSpace(name))
				if err != nil {
					return m, err
				}
				m.Kinds[k] = true
			}
			continue
		}
		if key == "flip" {
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return m, fmt.Errorf("faults: bad flip count %q", val)
			}
			m.BitFlips = n
			continue
		}
		p, err := strconv.ParseFloat(val, 64)
		if err != nil || p < 0 || p > 1 {
			return m, fmt.Errorf("faults: bad probability %q for %q", val, key)
		}
		switch key {
		case "torn":
			m.TornPct = p
		case "drop":
			m.DropPct = p
		case "reorder":
			m.ReorderPct = p
		case "lhdrop":
			m.LHDropPct = p
		default:
			return m, fmt.Errorf("faults: unknown mix key %q", key)
		}
	}
	return m, nil
}

func kindByName(name string) (memdev.Kind, error) {
	for _, k := range []memdev.Kind{memdev.KindLPO, memdev.KindLogHeader, memdev.KindDPO, memdev.KindEvict} {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("faults: unknown persist kind %q", name)
}

// Event is one injected fault, identified by the decision sequence number
// at which it fired. A run's event list, fed back through Replay, inflicts
// exactly the same damage.
type Event struct {
	Seq     int           `json:"seq"`
	Class   Class         `json:"class"`
	Channel int           `json:"channel"`
	Kind    string        `json:"kind,omitempty"`
	RID     arch.RID      `json:"rid,omitempty"`
	Line    arch.LineAddr `json:"line,omitempty"`
	// TearAt is how many leading bytes of the new payload persisted
	// before the write tore (torn class).
	TearAt int `json:"tear_at,omitempty"`
	// Bit is the flipped bit's index within the 64 B line (bitflip class).
	Bit int `json:"bit,omitempty"`
}

func (ev Event) String() string {
	switch ev.Class {
	case Torn:
		return fmt.Sprintf("seq %d: torn %s %s line %#x at byte %d", ev.Seq, ev.Kind, ev.RID, uint64(ev.Line), ev.TearAt)
	case Drop:
		return fmt.Sprintf("seq %d: dropped %s %s line %#x", ev.Seq, ev.Kind, ev.RID, uint64(ev.Line))
	case Reorder:
		return fmt.Sprintf("seq %d: reordered channel %d flush", ev.Seq, ev.Channel)
	case BitFlip:
		return fmt.Sprintf("seq %d: bit %d flipped in line %#x", ev.Seq, ev.Bit, uint64(ev.Line))
	case HeaderDrop:
		return fmt.Sprintf("seq %d: LH-WPQ header of %s at line %#x lost", ev.Seq, ev.RID, uint64(ev.Line))
	}
	return fmt.Sprintf("seq %d: %s", ev.Seq, ev.Class)
}

// Injector implements memdev.FaultInjector with seeded deterministic
// decisions. In record mode (New) faults are drawn from the mix; in replay
// mode (Replay) exactly the supplied events fire and the PRNG is unused.
type Injector struct {
	mix    Mix
	rng    *rand.Rand
	scope  map[arch.RID]bool
	replay map[int]Event // nil = record mode
	seq    int
	events []Event
}

var _ memdev.FaultInjector = (*Injector)(nil)
var _ memdev.HeaderFaultInjector = (*Injector)(nil)

// New returns a recording injector drawing faults from mix.
func New(seed int64, mix Mix) *Injector {
	return &Injector{mix: mix, rng: rand.New(rand.NewSource(seed))}
}

// Replay returns an injector that inflicts exactly the given events (by
// decision sequence number) and nothing else.
func Replay(events []Event) *Injector {
	in := &Injector{replay: make(map[int]Event, len(events))}
	for _, ev := range events {
		in.replay[ev.Seq] = ev
	}
	return in
}

// SetScope restricts torn/drop/reorder decisions to entries belonging to
// the given regions. The crash harness passes the uncommitted set, so
// injected damage is confined to state recovery is responsible for —
// committed regions' durable data is covered by a different guarantee
// (media redundancy) than crash consistency.
func (in *Injector) SetScope(rids []arch.RID) {
	in.scope = make(map[arch.RID]bool, len(rids))
	for _, r := range rids {
		in.scope[r] = true
	}
}

// Events returns the faults injected so far, in decision order. Replay
// injectors record the events they actually applied, so a replayed run's
// Events mirrors the inflicted subset.
func (in *Injector) Events() []Event { return append([]Event(nil), in.events...) }

// eligible reports whether torn/drop may target e under scope and mix.
func (in *Injector) eligible(e *memdev.Entry) bool {
	if in.scope != nil && !in.scope[e.RID] {
		return false
	}
	if in.mix.Kinds != nil && !in.mix.Kinds[e.Kind] {
		return false
	}
	return true
}

// FlushOrder implements memdev.FaultInjector: with probability ReorderPct
// the relative flush order of in-scope entries on this channel reverses
// (maximal disorder), leaving out-of-scope entries in place.
func (in *Injector) FlushOrder(channel int, entries []*memdev.Entry) []int {
	seq := in.seq
	in.seq++
	fire := false
	if in.replay != nil {
		ev, ok := in.replay[seq]
		fire = ok && ev.Class == Reorder
	} else if in.mix.ReorderPct > 0 && len(entries) > 1 {
		fire = in.rng.Float64() < in.mix.ReorderPct
	}
	if !fire {
		return nil
	}
	order := make([]int, len(entries))
	var scoped []int
	for i, e := range entries {
		order[i] = i
		if in.scope == nil || in.scope[e.RID] {
			scoped = append(scoped, i)
		}
	}
	for i, j := 0, len(scoped)-1; i < j; i, j = i+1, j-1 {
		order[scoped[i]], order[scoped[j]] = order[scoped[j]], order[scoped[i]]
	}
	in.events = append(in.events, Event{Seq: seq, Class: Reorder, Channel: channel})
	return order
}

// FlushPayload implements memdev.FaultInjector: each in-scope entry may be
// dropped or torn. A torn write persists the first TearAt bytes of the new
// payload over the line's current media content — the partial-line model
// of in-cache-line-logging studies.
func (in *Injector) FlushPayload(channel int, e *memdev.Entry, current []byte) ([]byte, bool) {
	seq := in.seq
	in.seq++
	if in.replay != nil {
		ev, ok := in.replay[seq]
		if !ok {
			return e.Payload, true
		}
		switch ev.Class {
		case Drop:
			in.events = append(in.events, ev)
			return nil, false
		case Torn:
			in.events = append(in.events, ev)
			return tear(e.Payload, current, ev.TearAt), true
		}
		return e.Payload, true
	}
	if !in.eligible(e) {
		return e.Payload, true
	}
	roll := in.rng.Float64()
	ev := Event{Seq: seq, Channel: channel, Kind: e.Kind.String(), RID: e.RID, Line: e.Dst}
	switch {
	case roll < in.mix.DropPct:
		ev.Class = Drop
		in.events = append(in.events, ev)
		return nil, false
	case roll < in.mix.DropPct+in.mix.TornPct:
		ev.Class = Torn
		ev.TearAt = 1 + in.rng.Intn(int(arch.LineSize)-1)
		in.events = append(in.events, ev)
		return tear(e.Payload, current, ev.TearAt), true
	}
	return e.Payload, true
}

// CrashHeader implements memdev.HeaderFaultInjector: with probability
// LHDropPct an in-scope resident LH-WPQ header is lost from the crash
// snapshot. Recovery must notice the missing header (a live record slot
// with no usable header), never silently accept the state.
func (in *Injector) CrashHeader(channel int, h *memdev.LogHeader) bool {
	seq := in.seq
	in.seq++
	if in.replay != nil {
		ev, ok := in.replay[seq]
		if ok && ev.Class == HeaderDrop {
			in.events = append(in.events, ev)
			return false
		}
		return true
	}
	if in.mix.LHDropPct == 0 {
		return true
	}
	if in.scope != nil && !in.scope[h.RID] {
		return true
	}
	if in.rng.Float64() >= in.mix.LHDropPct {
		return true
	}
	in.events = append(in.events, Event{
		Seq: seq, Class: HeaderDrop, Channel: channel,
		Kind: "LogHeader", RID: h.RID, Line: h.HeaderAddr,
	})
	return false
}

// tear builds the media content of a write torn after n bytes: the new
// payload's prefix over the line's previous content.
func tear(payload, current []byte, n int) []byte {
	out := make([]byte, arch.LineSize)
	copy(out, current)
	if n > len(payload) {
		n = len(payload)
	}
	copy(out[:n], payload[:n])
	return out
}

// Range is a byte extent of persistent memory (a thread's log buffer).
type Range struct {
	Base, Size uint64
}

// Contains reports whether line falls inside the range.
func (r Range) Contains(line arch.LineAddr) bool {
	return uint64(line) >= r.Base && uint64(line) < r.Base+r.Size
}

// FlipBits injects the mix's bit-flip media errors into the crash image,
// choosing among persisted lines inside the given ranges (the harness
// passes the log extents, modelling media decay in the log region that
// checksums must catch). Candidate lines are visited in sorted order so
// the same seed always damages the same bits.
func (in *Injector) FlipBits(img *memdev.Image, ranges []Range) {
	if in.replay != nil {
		// Replay: apply exactly the recorded flips.
		seqs := make([]int, 0, len(in.replay))
		for seq, ev := range in.replay {
			if ev.Class == BitFlip {
				seqs = append(seqs, seq)
			}
		}
		sort.Ints(seqs)
		for _, seq := range seqs {
			flipBit(img, in.replay[seq].Line, in.replay[seq].Bit)
			in.events = append(in.events, in.replay[seq])
		}
		return
	}
	if in.mix.BitFlips == 0 {
		return
	}
	var candidates []arch.LineAddr
	img.Lines(func(line arch.LineAddr, _ []byte) {
		for _, r := range ranges {
			if r.Contains(line) {
				candidates = append(candidates, line)
				return
			}
		}
	})
	if len(candidates) == 0 {
		return
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
	for i := 0; i < in.mix.BitFlips; i++ {
		seq := in.seq
		in.seq++
		line := candidates[in.rng.Intn(len(candidates))]
		bit := in.rng.Intn(int(arch.LineSize) * 8)
		flipBit(img, line, bit)
		in.events = append(in.events, Event{Seq: seq, Class: BitFlip, Line: line, Bit: bit})
	}
}

func flipBit(img *memdev.Image, line arch.LineAddr, bit int) {
	buf := img.Read(line)
	buf[bit/8] ^= 1 << (bit % 8)
	img.Write(line, buf)
}
