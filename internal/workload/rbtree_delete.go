package workload

// Red-black deletion (CLRS RB-DELETE / RB-DELETE-FIXUP) for the RB
// benchmark. The tree uses address 0 as nil, so the fixup tracks the
// current node's parent explicitly where CLRS leans on a sentinel.

// find returns the node holding key, or 0.
func (r *RBTree) find(c *Ctx, key uint64) uint64 {
	cur := c.LoadU64(r.rootCell)
	for cur != 0 {
		k := c.LoadU64(cur + rbOffKey)
		switch {
		case key == k:
			return cur
		case key < k:
			cur = r.left(c, cur)
		default:
			cur = r.right(c, cur)
		}
	}
	return 0
}

// minimum returns the leftmost node under n.
func (r *RBTree) minimum(c *Ctx, n uint64) uint64 {
	for {
		l := r.left(c, n)
		if l == 0 {
			return n
		}
		n = l
	}
}

// transplant replaces subtree u with subtree v (v may be 0).
func (r *RBTree) transplant(c *Ctx, u, v uint64) {
	p := r.parent(c, u)
	switch {
	case p == 0:
		c.StoreU64(r.rootCell, v)
	case r.left(c, p) == u:
		r.setLeft(c, p, v)
	default:
		r.setRight(c, p, v)
	}
	if v != 0 {
		r.setParent(c, v, p)
	}
}

// delete removes key, returning whether it was present. The removed
// node's memory is released with the crash-safe deferred free.
func (r *RBTree) delete(c *Ctx, key uint64) bool {
	z := r.find(c, key)
	if z == 0 {
		return false
	}
	y := z
	yColor := r.color(c, y)
	var x, xParent uint64

	switch {
	case r.left(c, z) == 0:
		x = r.right(c, z)
		xParent = r.parent(c, z)
		r.transplant(c, z, x)
	case r.right(c, z) == 0:
		x = r.left(c, z)
		xParent = r.parent(c, z)
		r.transplant(c, z, x)
	default:
		y = r.minimum(c, r.right(c, z))
		yColor = r.color(c, y)
		x = r.right(c, y)
		if r.parent(c, y) == z {
			xParent = y
		} else {
			xParent = r.parent(c, y)
			r.transplant(c, y, x)
			r.setRight(c, y, r.right(c, z))
			r.setParent(c, r.right(c, y), y)
		}
		r.transplant(c, z, y)
		r.setLeft(c, y, r.left(c, z))
		r.setParent(c, r.left(c, y), y)
		r.setColor(c, y, r.color(c, z))
	}

	if yColor == rbBlack {
		r.deleteFixup(c, x, xParent)
	}
	c.StoreU64(r.cntCell, c.LoadU64(r.cntCell)-1)
	c.Free(z)
	return true
}

// deleteFixup restores the red-black invariants after removing a black
// node; x carries an extra black and may be 0 (its position is xParent).
func (r *RBTree) deleteFixup(c *Ctx, x, xParent uint64) {
	for x != c.LoadU64(r.rootCell) && r.color(c, x) == rbBlack {
		if xParent == 0 {
			break
		}
		if x == r.left(c, xParent) {
			w := r.right(c, xParent)
			if r.color(c, w) == rbRed {
				r.setColor(c, w, rbBlack)
				r.setColor(c, xParent, rbRed)
				r.rotateLeft(c, xParent)
				w = r.right(c, xParent)
			}
			if r.color(c, r.left(c, w)) == rbBlack && r.color(c, r.right(c, w)) == rbBlack {
				r.setColor(c, w, rbRed)
				x = xParent
				xParent = r.parent(c, x)
			} else {
				if r.color(c, r.right(c, w)) == rbBlack {
					r.setColor(c, r.left(c, w), rbBlack)
					r.setColor(c, w, rbRed)
					r.rotateRight(c, w)
					w = r.right(c, xParent)
				}
				r.setColor(c, w, r.color(c, xParent))
				r.setColor(c, xParent, rbBlack)
				r.setColor(c, r.right(c, w), rbBlack)
				r.rotateLeft(c, xParent)
				x = c.LoadU64(r.rootCell)
				xParent = 0
			}
		} else {
			w := r.left(c, xParent)
			if r.color(c, w) == rbRed {
				r.setColor(c, w, rbBlack)
				r.setColor(c, xParent, rbRed)
				r.rotateRight(c, xParent)
				w = r.left(c, xParent)
			}
			if r.color(c, r.right(c, w)) == rbBlack && r.color(c, r.left(c, w)) == rbBlack {
				r.setColor(c, w, rbRed)
				x = xParent
				xParent = r.parent(c, x)
			} else {
				if r.color(c, r.left(c, w)) == rbBlack {
					r.setColor(c, r.right(c, w), rbBlack)
					r.setColor(c, w, rbRed)
					r.rotateLeft(c, w)
					w = r.left(c, xParent)
				}
				r.setColor(c, w, r.color(c, xParent))
				r.setColor(c, xParent, rbBlack)
				r.setColor(c, r.left(c, w), rbBlack)
				r.rotateRight(c, xParent)
				x = c.LoadU64(r.rootCell)
				xParent = 0
			}
		}
	}
	r.setColor(c, x, rbBlack)
}
