package core

import (
	"testing"

	"asap/internal/arch"
	"asap/internal/machine"
	"asap/internal/memdev"
	"asap/internal/sim"
	"asap/internal/stats"
)

// testRig builds a small machine + engine for protocol tests.
func testRig(opt Options, mutate func(*machine.Config)) (*machine.Machine, *Engine) {
	cfg := machine.DefaultConfig()
	cfg.Cores = 4
	if mutate != nil {
		mutate(&cfg)
	}
	m := machine.New(cfg)
	return m, NewEngine(m, opt)
}

// run spawns fns as initialized threads, runs to completion with a final
// drain barrier per thread.
func run(m *machine.Machine, e *Engine, fns ...func(t *sim.Thread)) {
	for _, fn := range fns {
		fn := fn
		m.K.Spawn("w", func(t *sim.Thread) {
			e.InitThread(t)
			fn(t)
			e.DrainBarrier(t)
		})
	}
	m.K.Run()
}

func storeU64(e *Engine, t *sim.Thread, addr, v uint64) {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	e.Store(t, addr, b[:])
}

func loadU64(e *Engine, t *sim.Thread, addr uint64) uint64 {
	var b [8]byte
	e.Load(t, addr, b[:])
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func TestSingleRegionLifecycle(t *testing.T) {
	m, e := testRig(DefaultOptions(), nil)
	addr := m.Heap.Alloc(64, true)
	run(m, e, func(th *sim.Thread) {
		e.Begin(th)
		storeU64(e, th, addr, 42)
		e.End(th)
	})
	st := m.St
	if st.Get(stats.RegionsBegun) != 1 || st.Get(stats.RegionsCommitted) != 1 {
		t.Fatalf("regions begun/committed = %d/%d, want 1/1",
			st.Get(stats.RegionsBegun), st.Get(stats.RegionsCommitted))
	}
	if st.Get(stats.LPOsIssued) != 1 {
		t.Fatalf("LPOs = %d, want 1 (one line written once)", st.Get(stats.LPOsIssued))
	}
	if e.ActiveRegions() != 0 {
		t.Fatal("regions left uncommitted after drain")
	}
	if m.Heap.ReadU64(addr) != 42 {
		t.Fatal("store did not reach the heap")
	}
}

func TestAsyncCommitDoesNotStallEnd(t *testing.T) {
	// With a very slow PM, End must still return promptly: ASAP's whole
	// point. The region commits long after the thread moved on.
	slowOpt := DefaultOptions()
	m, e := testRig(slowOpt, func(c *machine.Config) {
		c.Mem.PMWriteCycles = 50_000
	})
	addr := m.Heap.Alloc(64, true)
	var endAt, doneAt uint64
	run(m, e, func(th *sim.Thread) {
		e.Begin(th)
		storeU64(e, th, addr, 1)
		e.End(th)
		endAt = th.Now()
		e.DrainBarrier(th)
		doneAt = th.Now()
	})
	if endAt > 2_000 {
		t.Fatalf("End stalled until %d cycles; asynchronous commit broken", endAt)
	}
	if doneAt < 50_000 {
		t.Fatalf("drain finished at %d, expected to wait for slow PM", doneAt)
	}
}

func TestControlDependenceOrdersCommits(t *testing.T) {
	m, e := testRig(DefaultOptions(), func(c *machine.Config) {
		c.Mem.PMWriteCycles = 3000 // keep persists slow enough to overlap
	})
	a := m.Heap.Alloc(64, true)
	b := m.Heap.Alloc(64, true)
	run(m, e, func(th *sim.Thread) {
		e.Begin(th)
		storeU64(e, th, a, 1)
		e.End(th)
		e.Begin(th)
		storeU64(e, th, b, 2)
		e.End(th)
	})
	r1 := arch.MakeRID(0, 1)
	r2 := arch.MakeRID(0, 2)
	c1, ok1 := e.CommittedAt[r1]
	c2, ok2 := e.CommittedAt[r2]
	if !ok1 || !ok2 {
		t.Fatal("regions did not commit")
	}
	if c2 < c1 {
		t.Fatalf("control dependence violated: R2 committed at %d before R1 at %d", c2, c1)
	}
	found := false
	for _, edge := range e.Edges {
		if edge[0] == r1 && edge[1] == r2 {
			found = true
		}
	}
	if !found {
		t.Fatal("control dependence edge R1->R2 not captured")
	}
}

func TestDataDependenceAcrossThreads(t *testing.T) {
	// A 1-entry WPQ with slow PM delays acceptance, keeping the producer
	// region uncommitted when the consumer arrives (the Figure 2 window).
	m, e := testRig(DefaultOptions(), func(c *machine.Config) {
		c.Mem.Controllers, c.Mem.ChannelsPerMC = 1, 1
		c.Mem.WPQEntries = 1
		c.Mem.PMWriteCycles = 3000
	})
	x := m.Heap.Alloc(64, true)
	var mu sim.Mutex
	var order []int

	producer := func(th *sim.Thread) {
		mu.Lock(th)
		e.Begin(th)
		storeU64(e, th, x, 7)
		e.End(th)
		order = append(order, th.ID())
		mu.Unlock(th)
	}
	consumer := func(th *sim.Thread) {
		th.Advance(500) // let the producer go first
		mu.Lock(th)
		e.Begin(th)
		v := loadU64(e, th, x)
		storeU64(e, th, x, v+1)
		e.End(th)
		order = append(order, th.ID())
		mu.Unlock(th)
	}
	run(m, e, producer, consumer)

	if m.Heap.ReadU64(x) != 8 {
		t.Fatalf("x = %d, want 8", m.Heap.ReadU64(x))
	}
	prod := arch.MakeRID(0, 1)
	cons := arch.MakeRID(1, 1)
	found := false
	for _, edge := range e.Edges {
		if edge[0] == prod && edge[1] == cons {
			found = true
		}
	}
	if !found {
		t.Fatalf("cross-thread data dependence not captured; edges = %v, order = %v", e.Edges, order)
	}
	if e.CommittedAt[cons] < e.CommittedAt[prod] {
		t.Fatal("consumer committed before producer")
	}
}

func TestCommitOrderRespectsAllEdges(t *testing.T) {
	m, e := testRig(DefaultOptions(), func(c *machine.Config) {
		c.Mem.Controllers, c.Mem.ChannelsPerMC = 1, 1
		c.Mem.WPQEntries = 2
		c.Mem.PMWriteCycles = 2000
	})
	shared := m.Heap.Alloc(64, true)
	var mu sim.Mutex
	worker := func(th *sim.Thread) {
		for i := 0; i < 10; i++ {
			mu.Lock(th)
			e.Begin(th)
			v := loadU64(e, th, shared)
			storeU64(e, th, shared, v+1)
			e.End(th)
			mu.Unlock(th)
			th.Advance(50)
		}
	}
	run(m, e, worker, worker, worker)
	if got := m.Heap.ReadU64(shared); got != 30 {
		t.Fatalf("counter = %d, want 30", got)
	}
	for _, edge := range e.Edges {
		from, to := edge[0], edge[1]
		cf, okF := e.CommittedAt[from]
		ct, okT := e.CommittedAt[to]
		if !okF || !okT {
			t.Fatalf("edge %v-%v missing commit stamps", from, to)
		}
		if ct < cf {
			t.Fatalf("dependence violated: %v committed at %d before its dependence %v at %d",
				to, ct, from, cf)
		}
	}
}

func TestFenceWaitsForCommit(t *testing.T) {
	// Persist completion is WPQ acceptance (§4.1): the WPQ sits in the
	// persistence domain. A fence therefore waits for commit (all accepts
	// plus dependence resolution), not for the PM device drain. Throttle
	// the WPQ to one entry with slow PM so acceptance itself is delayed,
	// and check the fence actually waited.
	m, e := testRig(DefaultOptions(), func(c *machine.Config) {
		c.Mem.WPQEntries = 1
		c.Mem.PMWriteCycles = 5_000
	})
	base := m.Heap.Alloc(64*4, true)
	var endAt, fenceDone uint64
	run(m, e, func(th *sim.Thread) {
		e.Begin(th)
		for i := 0; i < 4; i++ {
			storeU64(e, th, base+uint64(64*i), uint64(i))
		}
		e.End(th)
		endAt = th.Now()
		e.Fence(th)
		fenceDone = th.Now()
	})
	if fenceDone < 5_000 {
		t.Fatalf("fence returned at %d; with a 1-entry WPQ accepts need drains", fenceDone)
	}
	if endAt >= fenceDone {
		t.Fatalf("End (at %d) should not have waited like Fence (at %d)", endAt, fenceDone)
	}
	if m.St.Get(stats.Fences) != 1 {
		t.Fatal("fence not counted")
	}
}

func TestNestedRegionsFlatten(t *testing.T) {
	m, e := testRig(DefaultOptions(), nil)
	a := m.Heap.Alloc(64, true)
	b := m.Heap.Alloc(64, true)
	run(m, e, func(th *sim.Thread) {
		e.Begin(th)
		storeU64(e, th, a, 1)
		e.Begin(th) // nested: flattened
		storeU64(e, th, b, 2)
		e.End(th)
		storeU64(e, th, a, 3)
		e.End(th)
	})
	if m.St.Get(stats.RegionsBegun) != 1 {
		t.Fatalf("regions = %d, want 1 (nesting flattened)", m.St.Get(stats.RegionsBegun))
	}
	if m.St.Get(stats.RegionsCommitted) != 1 {
		t.Fatal("flattened region did not commit")
	}
}

func TestOneLPOPerLinePerRegion(t *testing.T) {
	m, e := testRig(DefaultOptions(), nil)
	addr := m.Heap.Alloc(64, true)
	run(m, e, func(th *sim.Thread) {
		e.Begin(th)
		for i := 0; i < 8; i++ {
			storeU64(e, th, addr+uint64(i*8)%64, uint64(i))
		}
		e.End(th)
	})
	if got := m.St.Get(stats.LPOsIssued); got != 1 {
		t.Fatalf("LPOs = %d, want 1 (same line, same region)", got)
	}
}

func TestNewRegionSameLineLogsAgain(t *testing.T) {
	m, e := testRig(DefaultOptions(), nil)
	addr := m.Heap.Alloc(64, true)
	run(m, e, func(th *sim.Thread) {
		for i := 0; i < 3; i++ {
			e.Begin(th)
			storeU64(e, th, addr, uint64(i))
			e.End(th)
		}
	})
	if got := m.St.Get(stats.LPOsIssued); got != 3 {
		t.Fatalf("LPOs = %d, want 3 (one per region)", got)
	}
}

func TestDPOCoalescingReducesDPOs(t *testing.T) {
	runOnce := func(coalesce bool) (dpos int64) {
		opt := DefaultOptions()
		opt.Coalescing = coalesce
		m, e := testRig(opt, nil)
		base := m.Heap.Alloc(64*16, true)
		run(m, e, func(th *sim.Thread) {
			e.Begin(th)
			// Hammer one line while occasionally touching others: the
			// coalescing window should absorb the repeats.
			for i := 0; i < 30; i++ {
				storeU64(e, th, base, uint64(i))
				storeU64(e, th, base+uint64(64*(1+i%3)), uint64(i))
			}
			e.End(th)
		})
		return m.St.Get(stats.DPOsIssued)
	}
	with := runOnce(true)
	without := runOnce(false)
	if with >= without {
		t.Fatalf("coalescing did not reduce DPOs: with=%d without=%d", with, without)
	}
}

func TestLPODroppingReducesTraffic(t *testing.T) {
	runOnce := func(drop bool) int64 {
		opt := DefaultOptions()
		opt.LPODropping = drop
		opt.DPODropping = false
		m, e := testRig(opt, func(c *machine.Config) {
			c.Mem.PMWriteCycles = 5000 // entries linger in the WPQ
		})
		base := m.Heap.Alloc(64*64, true)
		run(m, e, func(th *sim.Thread) {
			for i := 0; i < 20; i++ {
				e.Begin(th)
				storeU64(e, th, base+uint64(64*i), uint64(i))
				e.End(th)
			}
		})
		return m.St.Get(stats.PMWrites)
	}
	with := runOnce(true)
	without := runOnce(false)
	if with >= without {
		t.Fatalf("LPO dropping did not reduce PM writes: with=%d without=%d", with, without)
	}
}

func TestDPODroppingFires(t *testing.T) {
	opt := DefaultOptions()
	m, e := testRig(opt, func(c *machine.Config) {
		c.Mem.PMWriteCycles = 5000
	})
	addr := m.Heap.Alloc(64, true)
	run(m, e, func(th *sim.Thread) {
		// Back-to-back regions writing the same line: the second region's
		// LPO should catch the first region's DPO still queued.
		for i := 0; i < 10; i++ {
			e.Begin(th)
			storeU64(e, th, addr, uint64(i))
			e.End(th)
		}
	})
	if m.St.Get(stats.DPOsDropped) == 0 {
		t.Fatal("expected DPO dropping on back-to-back same-line regions")
	}
}

func TestLogRecordFillFlushesHeader(t *testing.T) {
	m, e := testRig(DefaultOptions(), nil)
	base := m.Heap.Alloc(64*16, true)
	run(m, e, func(th *sim.Thread) {
		e.Begin(th)
		for i := 0; i < 9; i++ { // > 7 distinct lines: at least one record fills
			storeU64(e, th, base+uint64(64*i), uint64(i))
		}
		e.End(th)
	})
	if got := m.St.Get(stats.LPOsIssued); got != 9 {
		t.Fatalf("LPOs = %d, want 9", got)
	}
	// The filled record's header must have been written (or dropped, but
	// with fast PM here it drains): look for its bytes in the PM image.
	if m.St.Get(stats.PMWrites) == 0 {
		t.Fatal("nothing drained to PM")
	}
}

func TestCLStallWhenSlotsExhausted(t *testing.T) {
	opt := DefaultOptions()
	opt.CLPtrSlots = 2
	m, e := testRig(opt, func(c *machine.Config) {
		c.Mem.PMWriteCycles = 2000
	})
	base := m.Heap.Alloc(64*16, true)
	run(m, e, func(th *sim.Thread) {
		e.Begin(th)
		for i := 0; i < 10; i++ {
			storeU64(e, th, base+uint64(64*i), uint64(i))
		}
		e.End(th)
	})
	if m.St.Get(stats.CLStalls) == 0 {
		t.Fatal("expected CLPtr stalls with 2 slots and 10 distinct lines")
	}
	if m.St.Get(stats.RegionsCommitted) != 1 {
		t.Fatal("region did not commit despite stalls")
	}
}

func TestBeginStallsWhenCLListFull(t *testing.T) {
	opt := DefaultOptions()
	opt.CLListEntries = 1
	m, e := testRig(opt, func(c *machine.Config) {
		c.Mem.PMWriteCycles = 4000
	})
	base := m.Heap.Alloc(64*8, true)
	run(m, e, func(th *sim.Thread) {
		for i := 0; i < 4; i++ {
			e.Begin(th)
			storeU64(e, th, base+uint64(64*i), uint64(i))
			e.End(th)
		}
	})
	if m.St.Get(stats.RegionsCommitted) != 4 {
		t.Fatalf("committed = %d, want 4", m.St.Get(stats.RegionsCommitted))
	}
}

func TestDepSlotStall(t *testing.T) {
	opt := DefaultOptions()
	opt.DepSlots = 1
	m, e := testRig(opt, func(c *machine.Config) {
		c.Mem.PMWriteCycles = 3000
	})
	lines := make([]uint64, 4)
	for i := range lines {
		lines[i] = m.Heap.Alloc(64, true)
	}
	var mu sim.Mutex
	writerA := func(th *sim.Thread) {
		mu.Lock(th)
		e.Begin(th)
		for _, l := range lines {
			storeU64(e, th, l, 1)
		}
		e.End(th)
		mu.Unlock(th)
	}
	// Thread B touches lines owned by A's several regions... with 1 dep
	// slot the single dependence suffices; make A produce two distinct
	// uncommitted regions first.
	writerA2 := func(th *sim.Thread) {
		mu.Lock(th)
		e.Begin(th)
		storeU64(e, th, lines[0], 2)
		e.End(th)
		e.Begin(th)
		storeU64(e, th, lines[1], 2)
		e.End(th)
		mu.Unlock(th)
	}
	reader := func(th *sim.Thread) {
		th.Advance(2000)
		mu.Lock(th)
		e.Begin(th)
		loadU64(e, th, lines[0])
		loadU64(e, th, lines[1])
		e.End(th)
		mu.Unlock(th)
	}
	_ = writerA
	run(m, e, writerA2, reader)
	if m.St.Get(stats.RegionsCommitted) != 3 {
		t.Fatalf("committed = %d, want 3", m.St.Get(stats.RegionsCommitted))
	}
}

func TestReadOnlyRegionCommitsImmediately(t *testing.T) {
	m, e := testRig(DefaultOptions(), nil)
	addr := m.Heap.Alloc(64, true)
	run(m, e, func(th *sim.Thread) {
		e.Begin(th)
		loadU64(e, th, addr)
		e.End(th)
	})
	if m.St.Get(stats.RegionsCommitted) != 1 {
		t.Fatal("read-only region did not commit")
	}
	if m.St.Get(stats.LPOsIssued) != 0 {
		t.Fatal("read-only region issued LPOs")
	}
}

func TestAccessOutsideRegionNotLogged(t *testing.T) {
	m, e := testRig(DefaultOptions(), nil)
	addr := m.Heap.Alloc(64, true)
	run(m, e, func(th *sim.Thread) {
		storeU64(e, th, addr, 5)
	})
	if m.St.Get(stats.LPOsIssued) != 0 {
		t.Fatal("non-region store issued an LPO")
	}
	if m.Heap.ReadU64(addr) != 5 {
		t.Fatal("non-region store lost")
	}
}

func TestVolatileStoresNotLogged(t *testing.T) {
	m, e := testRig(DefaultOptions(), nil)
	addr := m.Heap.Alloc(64, false)
	run(m, e, func(th *sim.Thread) {
		e.Begin(th)
		storeU64(e, th, addr, 5)
		e.End(th)
	})
	if m.St.Get(stats.LPOsIssued) != 0 {
		t.Fatal("volatile store issued an LPO")
	}
}

func TestCommitBroadcastCascades(t *testing.T) {
	// A chain R1 <- R2 <- R3 (control deps) where R1 finishes last must
	// commit all three in one cascade, in order.
	m, e := testRig(DefaultOptions(), func(c *machine.Config) {
		c.Mem.PMWriteCycles = 2000
	})
	base := m.Heap.Alloc(64*4, true)
	run(m, e, func(th *sim.Thread) {
		for i := 0; i < 3; i++ {
			e.Begin(th)
			storeU64(e, th, base+uint64(64*i), uint64(i))
			e.End(th)
		}
	})
	var prev uint64
	for i := 1; i <= 3; i++ {
		at, ok := e.CommittedAt[arch.MakeRID(0, uint64(i))]
		if !ok {
			t.Fatalf("R%d never committed", i)
		}
		if at < prev {
			t.Fatalf("R%d committed at %d, before predecessor at %d", i, at, prev)
		}
		prev = at
	}
}

func TestLogOverflowGrows(t *testing.T) {
	opt := DefaultOptions()
	opt.LogBufferBytes = 1024 // two records
	m, e := testRig(opt, func(c *machine.Config) {
		c.Mem.PMWriteCycles = 8000 // commits lag, log can't free fast
	})
	base := m.Heap.Alloc(64*128, true)
	run(m, e, func(th *sim.Thread) {
		e.Begin(th)
		for i := 0; i < 40; i++ {
			storeU64(e, th, base+uint64(64*i), uint64(i))
		}
		e.End(th)
	})
	if m.St.Get(stats.LogOverflows) == 0 {
		t.Fatal("expected a log overflow with a 2-record buffer and 40 lines")
	}
	if m.St.Get(stats.RegionsCommitted) != 1 {
		t.Fatal("region lost after log growth")
	}
}

func TestOwnerRIDSpillAndReload(t *testing.T) {
	// Force LLC evictions with a tiny hierarchy while a region is still
	// uncommitted, then touch the line again: the OwnerRID must survive
	// the round trip and produce a dependence.
	opt := DefaultOptions()
	m := machine.New(machine.Config{
		Cores: 2,
		Mem: func() memdev.Config {
			c := memdev.DefaultConfig()
			c.Controllers, c.ChannelsPerMC = 1, 1
			c.WPQEntries = 1         // acceptance throttled behind drains
			c.PMWriteCycles = 30_000 // regions stay uncommitted a long time
			return c
		}(),
		Caches: tinyCaches(),
	})
	e := NewEngine(m, opt)
	lines := make([]uint64, 40)
	for i := range lines {
		lines[i] = m.Heap.Alloc(64, true)
	}
	var mu sim.Mutex
	writer := func(th *sim.Thread) {
		mu.Lock(th)
		e.Begin(th)
		storeU64(e, th, lines[0], 1)
		e.End(th)
		mu.Unlock(th)
		// Thrash the cache so lines[0] leaves the LLC.
		for i := 1; i < len(lines); i++ {
			storeU64(e, th, lines[i], uint64(i))
		}
	}
	reader := func(th *sim.Thread) {
		th.Advance(20_000)
		mu.Lock(th)
		e.Begin(th)
		loadU64(e, th, lines[0])
		e.End(th)
		mu.Unlock(th)
	}
	for _, fn := range []func(*sim.Thread){writer, reader} {
		fn := fn
		m.K.Spawn("w", func(t *sim.Thread) {
			e.InitThread(t)
			fn(t)
			e.DrainBarrier(t)
		})
	}
	m.K.Run()
	if m.St.Get(stats.OwnerIDSpills) == 0 {
		t.Fatal("no OwnerRID spills despite cache thrash with uncommitted region")
	}
	if m.St.Get(stats.OwnerIDReloads) == 0 {
		t.Fatal("OwnerRID never reloaded")
	}
	found := false
	for _, edge := range e.Edges {
		if edge[0] == arch.MakeRID(0, 1) && edge[1] == arch.MakeRID(1, 1) {
			found = true
		}
	}
	if !found {
		t.Fatalf("dependence through evicted line not captured; edges=%v", e.Edges)
	}
}

func TestPersistedDataMatchesHeapAfterDrain(t *testing.T) {
	m, e := testRig(DefaultOptions(), nil)
	base := m.Heap.Alloc(64*8, true)
	run(m, e, func(th *sim.Thread) {
		for i := 0; i < 8; i++ {
			e.Begin(th)
			storeU64(e, th, base+uint64(64*i), uint64(1000+i))
			e.End(th)
		}
	})
	img := m.Fabric.PM()
	for i := 0; i < 8; i++ {
		line := arch.LineOf(base + uint64(64*i))
		if !img.Has(line) {
			t.Fatalf("line %d never persisted", i)
		}
		buf := img.Read(line)
		var v uint64
		for j := 0; j < 8; j++ {
			v |= uint64(buf[j]) << (8 * j)
		}
		if v != uint64(1000+i) {
			t.Fatalf("persisted value[%d] = %d, want %d", i, v, 1000+i)
		}
	}
}

func TestLHWPQStallLimitsOpenRecords(t *testing.T) {
	// A 1-entry LH-WPQ on a single channel admits one region's open log
	// record at a time: a second uncommitted region's first write must
	// stall until the first commits.
	opt := DefaultOptions()
	m, e := testRig(opt, func(c *machine.Config) {
		c.Mem.Controllers, c.Mem.ChannelsPerMC = 1, 1
		c.Mem.LHWPQEntries = 1
		c.Mem.WPQEntries = 1
		c.Mem.PMWriteCycles = 2000
	})
	a := m.Heap.Alloc(64, true)
	b := m.Heap.Alloc(64, true)
	run(m, e, func(th *sim.Thread) {
		e.Begin(th)
		storeU64(e, th, a, 1)
		e.End(th)
		e.Begin(th)
		storeU64(e, th, b, 2) // needs the LH-WPQ slot the first region holds
		e.End(th)
	})
	if m.St.Get(stats.LHWPQStalls) == 0 {
		t.Fatal("expected an LH-WPQ stall with capacity 1")
	}
	if m.St.Get(stats.RegionsCommitted) != 2 {
		t.Fatal("both regions must still commit")
	}
}

func TestBeginStallsWhenDepListFull(t *testing.T) {
	opt := DefaultOptions()
	opt.DepListEntries = 1
	m, e := testRig(opt, func(c *machine.Config) {
		c.Mem.Controllers, c.Mem.ChannelsPerMC = 1, 1
		c.Mem.WPQEntries = 1
		c.Mem.PMWriteCycles = 3000
	})
	base := m.Heap.Alloc(64*4, true)
	var secondBegin uint64
	run(m, e, func(th *sim.Thread) {
		e.Begin(th)
		storeU64(e, th, base, 1)
		e.End(th)
		e.Begin(th) // dep list (capacity 1, single channel) is full
		secondBegin = th.Now()
		storeU64(e, th, base+64, 2)
		e.End(th)
	})
	if secondBegin < 2000 {
		t.Fatalf("second Begin at %d: should have stalled for the first commit", secondBegin)
	}
	if m.St.Get(stats.RegionsCommitted) != 2 {
		t.Fatal("both regions must commit")
	}
}

func TestCommitLagMeasuresAsynchrony(t *testing.T) {
	// With a throttled memory system the End-to-commit window is long —
	// exactly the work ASAP overlaps. Synchronous schemes have no lag by
	// construction (they commit inside End).
	m, e := testRig(DefaultOptions(), func(c *machine.Config) {
		c.Mem.Controllers, c.Mem.ChannelsPerMC = 1, 1
		c.Mem.WPQEntries = 1
		c.Mem.PMWriteCycles = 2000
	})
	base := m.Heap.Alloc(64*4, true)
	run(m, e, func(th *sim.Thread) {
		for i := 0; i < 4; i++ {
			e.Begin(th)
			storeU64(e, th, base+uint64(64*i), uint64(i))
			e.End(th)
		}
	})
	h := m.St.Hist(stats.CommitLag)
	if h.Count() != 4 {
		t.Fatalf("commit lag observations = %d, want 4", h.Count())
	}
	if h.Quantile(0.99) < 1000 {
		t.Fatalf("p99 commit lag = %d; expected a long asynchrony window", h.Quantile(0.99))
	}
}
