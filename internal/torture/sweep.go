package torture

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"asap/internal/crashtest"
	"asap/internal/faults"
	"asap/internal/resultcache"
	"asap/internal/runner"
)

// SweepConfig shapes a torture sweep: for every (preset, seed) pair one
// drain-to-completion case plus CrashPoints crash cases, and a block of
// seeded negative controls that the invariant engine is required to catch.
type SweepConfig struct {
	// Presets to sweep; empty means all of Presets().
	Presets []string
	// SeedsPerPreset is the number of schedule seeds per preset (0 = 4).
	SeedsPerPreset int
	// Seed is the base seed; every case seed derives from it.
	Seed int64
	// Threads/Ops shape each generated schedule (0 = 3 threads, 0 = 40 ops).
	Threads, Ops int
	// CrashPoints is the number of crash cases per (preset, seed) pair
	// (0 = 2); crash cycles spread log-uniformly in [CrashLo, CrashHi].
	CrashPoints      int
	CrashLo, CrashHi uint64
	// Mix is the crash-time fault mixture.
	Mix faults.Mix
	// Stride overrides the invariant-check stride (0 = per-case default).
	Stride uint64
	// NegativeControls is the number of seeded commit-rule-breaking cases
	// (0 = 2; negative to disable). Each must come back as a violation.
	NegativeControls int
	// Workers sizes the runner pool (0 = GOMAXPROCS).
	Workers int
	// Reporter, when non-nil, receives per-case progress callbacks from
	// the pool (the CLIs wire a live progress line through this).
	Reporter runner.Reporter
	// ShrinkBudget, when > 0, bounds the replays spent minimizing each
	// violating schedule.
	ShrinkBudget int
	// Cache, when non-nil (and CodeVersion non-empty), memoizes case
	// outcomes across sweeps keyed by the case's canonical encoding and
	// the code version. Shrunk schedules are never cached — shrinking
	// reruns post-cache so the budget always applies to this sweep.
	Cache       *resultcache.Store
	CodeVersion string
	// Context, when non-nil, lets the caller cancel the sweep: cases
	// already dispatched finish, nothing further starts, and Sweep
	// returns the partial summary alongside the context's error. Signal
	// handlers use this to flush partial reports on SIGINT/SIGTERM.
	Context context.Context
}

func (cfg SweepConfig) defaults() SweepConfig {
	if len(cfg.Presets) == 0 {
		cfg.Presets = PresetNames()
	}
	if cfg.SeedsPerPreset <= 0 {
		cfg.SeedsPerPreset = 4
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 3
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 40
	}
	if cfg.CrashPoints == 0 {
		cfg.CrashPoints = 2
	}
	if cfg.CrashLo == 0 {
		cfg.CrashLo = 800
	}
	if cfg.CrashHi <= cfg.CrashLo {
		cfg.CrashHi = 120_000
	}
	if cfg.NegativeControls == 0 {
		cfg.NegativeControls = 2
	}
	return cfg
}

// Cases materializes the deterministic case list: same config, same cases,
// regardless of worker count.
func (cfg SweepConfig) Cases() ([]Case, error) {
	cfg = cfg.defaults()
	for _, p := range cfg.Presets {
		if _, err := presetByName(p); err != nil {
			return nil, err
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	span := float64(cfg.CrashHi) / float64(cfg.CrashLo)
	var cases []Case
	for _, p := range cfg.Presets {
		for s := 0; s < cfg.SeedsPerPreset; s++ {
			seed := cfg.Seed + int64(len(cases))*7919
			cases = append(cases, Case{
				Preset: p, Seed: seed, Threads: cfg.Threads, Ops: cfg.Ops, Stride: cfg.Stride,
			})
			for cp := 0; cp < cfg.CrashPoints; cp++ {
				at := uint64(float64(cfg.CrashLo) * math.Pow(span, rng.Float64()))
				cases = append(cases, Case{
					Preset: p, Seed: cfg.Seed + int64(len(cases))*7919,
					Threads: cfg.Threads, Ops: cfg.Ops, Stride: cfg.Stride,
					CrashAt: at, Mix: cfg.Mix,
				})
			}
		}
	}
	// The negative controls run under the issue's pressure config: a
	// 2-entry Dependence List with the commit rule deliberately weakened.
	for n := 0; n < cfg.NegativeControls; n++ {
		cases = append(cases, Case{
			Preset: "dep2", Seed: cfg.Seed + int64(len(cases))*7919,
			Threads: cfg.Threads, Ops: min(cfg.Ops, 12),
			NegativeControl: true,
		})
	}
	return cases, nil
}

// Summary aggregates a torture sweep.
type Summary struct {
	Total    int             `json:"total"`
	Counts   map[Verdict]int `json:"counts"`
	Outcomes []Outcome       `json:"outcomes"`
	// ControlsCaught/ControlsMissed track the seeded negative controls:
	// caught means the invariant engine returned a violation verdict.
	ControlsCaught int `json:"controls_caught"`
	ControlsMissed int `json:"controls_missed"`
}

// Bad counts the outcomes that must fail a CI gate: violations, stalls
// and harness errors on real cases, plus negative controls that were NOT
// caught (a blind invariant engine is the worst failure of all).
func (s *Summary) Bad() int {
	bad := s.ControlsMissed
	for _, o := range s.Outcomes {
		if o.Case.NegativeControl {
			continue
		}
		switch o.Verdict {
		case VerdictViolation, VerdictStall, VerdictError:
			bad++
		}
	}
	return bad
}

// Violations returns the non-control violation outcomes.
func (s *Summary) Violations() []Outcome {
	var out []Outcome
	for _, o := range s.Outcomes {
		if !o.Case.NegativeControl && o.Verdict == VerdictViolation {
			out = append(out, o)
		}
	}
	return out
}

// Sweep runs the case matrix on a worker pool, shrinking each violating
// schedule when a budget is given. Outcomes keep submission order. A
// cancelled cfg.Context stops dispatching: the summary covers only the
// cases that actually ran, and the context's error is returned alongside
// it so callers can flush the partial result and still report the
// interruption.
func Sweep(cfg SweepConfig) (*Summary, error) {
	cases, err := cfg.Cases()
	if err != nil {
		return nil, err
	}
	ctx := cfg.Context
	if ctx == nil {
		ctx = context.Background()
	}
	jobs := make([]runner.Job[Outcome], len(cases))
	for i, c := range cases {
		c := c
		jobs[i] = runner.Job[Outcome]{Label: c.String(), Run: func() Outcome { return RunCase(c) }}
		if cfg.Cache != nil && cfg.CodeVersion != "" {
			if key, err := resultcache.CaseKey("torturecase.v1", c, cfg.CodeVersion); err == nil {
				jobs[i].Cached, jobs[i].Store = resultcache.MemoJSON[Outcome](cfg.Cache, key)
			}
		}
	}
	pool := runner.New(cfg.Workers)
	if cfg.Reporter != nil {
		pool.SetReporter(cfg.Reporter)
	}
	outcomes, err := runner.CollectCtx(ctx, pool, jobs)
	if err != nil && ctx.Err() == nil {
		return nil, fmt.Errorf("torture: sweep: %w", err)
	}

	// Skipped cases hold zero outcomes (empty verdict); keep only what ran.
	sum := &Summary{Counts: make(map[Verdict]int)}
	for i := range outcomes {
		if outcomes[i].Verdict == "" {
			continue
		}
		sum.Outcomes = append(sum.Outcomes, outcomes[i])
		o := &sum.Outcomes[len(sum.Outcomes)-1]
		sum.Counts[o.Verdict]++
		if o.Case.NegativeControl {
			if o.Verdict == VerdictViolation {
				sum.ControlsCaught++
			} else {
				sum.ControlsMissed++
			}
		}
		if o.Verdict == VerdictViolation && cfg.ShrinkBudget > 0 {
			o.Shrunk = Shrink(o.Case, cfg.ShrinkBudget)
		}
	}
	sum.Total = len(sum.Outcomes)
	return sum, ctx.Err()
}

// Shrink minimizes the schedule behind a violating case by ddmin replay:
// it reruns deterministic subsequences of the schedule and returns the
// smallest one still producing a violation. budget bounds the reruns.
func Shrink(c Case, budget int) []Op {
	return crashtest.DDMin(c.schedule(), func(sub []Op) bool {
		if budget <= 0 {
			return false
		}
		budget--
		cc := c
		cc.Schedule = sub
		return RunCase(cc).Verdict == VerdictViolation
	})
}
