package cache

import (
	"testing"

	"asap/internal/arch"
	"asap/internal/memdev"
	"asap/internal/sim"
	"asap/internal/stats"
)

// tiny returns a small hierarchy so evictions are easy to force.
func tiny(cores int, persistent func(arch.LineAddr) bool) (*stats.Set, *Hierarchy) {
	st := stats.New()
	k := sim.NewKernel()
	f := memdev.NewFabric(k, st, memdev.DefaultConfig())
	cfg := Config{
		L1: LevelConfig{Sets: 2, Ways: 2, Latency: 4},
		L2: LevelConfig{Sets: 4, Ways: 2, Latency: 14},
		L3: LevelConfig{Sets: 8, Ways: 2, Latency: 42},
	}
	if persistent == nil {
		persistent = func(arch.LineAddr) bool { return true }
	}
	return st, NewHierarchy(st, f, cores, cfg, persistent)
}

func line(i int) arch.LineAddr { return arch.LineAddr(i * arch.LineSize) }

func mustAccess(t *testing.T, h *Hierarchy, core int, l arch.LineAddr, write bool) uint64 {
	t.Helper()
	lat, _, ok := h.Access(core, l, write)
	if !ok {
		t.Fatalf("Access(%d, %v) stalled unexpectedly", core, l)
	}
	return lat
}

func TestHitLatenciesPerLevel(t *testing.T) {
	_, h := tiny(1, nil)
	l := line(0)
	first := mustAccess(t, h, 0, l, false)
	if first <= 42 {
		t.Fatalf("cold miss latency = %d, want > L3 latency", first)
	}
	if lat := mustAccess(t, h, 0, l, false); lat != 4 {
		t.Fatalf("L1 hit latency = %d, want 4", lat)
	}
}

func TestL2AndL3HitLatencies(t *testing.T) {
	_, h := tiny(1, nil)
	// L1 has 2 sets x 2 ways; lines 0,2,4 map to set 0. Fill 0 then evict
	// it from L1 by touching 2 and 4 (same L1 set, different L2/L3 sets).
	mustAccess(t, h, 0, line(0), false)
	mustAccess(t, h, 0, line(2), false)
	mustAccess(t, h, 0, line(4), false)
	if lat := mustAccess(t, h, 0, line(0), false); lat != 14 {
		t.Fatalf("L2 hit latency = %d, want 14", lat)
	}
	// A second core hits the shared L3.
	_, h2 := tiny(2, nil)
	mustAccess(t, h2, 0, line(0), false)
	if lat := mustAccess(t, h2, 1, line(0), false); lat != 42 {
		t.Fatalf("remote L3 hit latency = %d, want 42", lat)
	}
}

func TestMissCountsPMRead(t *testing.T) {
	st, h := tiny(1, func(arch.LineAddr) bool { return true })
	mustAccess(t, h, 0, line(0), false)
	if st.Get(stats.PMReads) != 1 {
		t.Fatalf("PM reads = %d, want 1", st.Get(stats.PMReads))
	}
	_, hv := tiny(1, func(arch.LineAddr) bool { return false })
	mustAccess(t, hv, 0, line(0), false)
}

func TestPBitSeededFromPageTable(t *testing.T) {
	_, h := tiny(1, func(l arch.LineAddr) bool { return l >= 1024 })
	mustAccess(t, h, 0, 0, false)
	mustAccess(t, h, 0, 1024, false)
	if h.Table().Get(0).PBit {
		t.Fatal("volatile line has PBit set")
	}
	if !h.Table().Get(1024).PBit {
		t.Fatal("persistent line missing PBit")
	}
}

func TestLLCEvictHookFires(t *testing.T) {
	_, h := tiny(1, nil)
	var evicted []EvictInfo
	h.SetEvictHook(func(e EvictInfo) { evicted = append(evicted, e) })
	// L3 has 8 sets x 2 ways; lines 0,8,16 share L3 set 0.
	mustAccess(t, h, 0, line(0), true) // dirty
	mustAccess(t, h, 0, line(8), false)
	mustAccess(t, h, 0, line(16), false) // evicts line 0
	if len(evicted) != 1 {
		t.Fatalf("evict hook fired %d times, want 1", len(evicted))
	}
	if evicted[0].Line != line(0) || !evicted[0].Dirty {
		t.Fatalf("evicted %+v, want dirty line 0", evicted[0])
	}
	if h.Present(line(0)) {
		t.Fatal("evicted line still present")
	}
}

func TestVolatileDirtyEvictionGoesToDRAM(t *testing.T) {
	st, h := tiny(1, func(arch.LineAddr) bool { return false })
	mustAccess(t, h, 0, line(0), true)
	mustAccess(t, h, 0, line(8), false)
	mustAccess(t, h, 0, line(16), false)
	if st.Get(stats.DRAMWrites) != 1 {
		t.Fatalf("DRAM writes = %d, want 1", st.Get(stats.DRAMWrites))
	}
}

func TestLockBitPinsLine(t *testing.T) {
	_, h := tiny(1, nil)
	var evicted []EvictInfo
	h.SetEvictHook(func(e EvictInfo) { evicted = append(evicted, e) })
	mustAccess(t, h, 0, line(0), true)
	h.Table().Get(line(0)).Lock()
	mustAccess(t, h, 0, line(8), false)
	mustAccess(t, h, 0, line(16), false) // must evict line 8, not locked line 0
	for _, e := range evicted {
		if e.Line == line(0) {
			t.Fatal("locked line was evicted")
		}
	}
	if !h.Present(line(0)) {
		t.Fatal("locked line left the hierarchy")
	}
}

func TestFullyPinnedSetStalls(t *testing.T) {
	_, h := tiny(1, nil)
	mustAccess(t, h, 0, line(0), true)
	mustAccess(t, h, 0, line(8), true)
	h.Table().Get(line(0)).Lock()
	h.Table().Get(line(8)).Lock()
	if _, _, ok := h.Access(0, line(16), false); ok {
		t.Fatal("access should stall when the whole L3 set is pinned")
	}
	if h.CanAccess(0, line(16)) {
		t.Fatal("CanAccess should be false")
	}
	h.Table().Get(line(0)).Unlock()
	if _, _, ok := h.Access(0, line(16), false); !ok {
		t.Fatal("access should proceed after unlock")
	}
}

func TestAccessBlockingWaitsForUnlock(t *testing.T) {
	st := stats.New()
	k := sim.NewKernel()
	f := memdev.NewFabric(k, st, memdev.DefaultConfig())
	cfg := Config{
		L1: LevelConfig{Sets: 1, Ways: 1, Latency: 4},
		L2: LevelConfig{Sets: 1, Ways: 1, Latency: 14},
		L3: LevelConfig{Sets: 1, Ways: 1, Latency: 42},
	}
	h := NewHierarchy(st, f, 1, cfg, func(arch.LineAddr) bool { return true })
	var done uint64
	k.Spawn("t", func(th *sim.Thread) {
		lat0, _ := h.AccessBlocking(th, 0, line(0), true)
		th.Advance(lat0)
		h.Table().Get(line(0)).Lock()
		k.Schedule(500, func() { h.Table().Get(line(0)).Unlock() })
		lat1, _ := h.AccessBlocking(th, 0, line(1), false)
		th.Advance(lat1)
		done = th.Now()
	})
	k.Run()
	if done < 500 {
		t.Fatalf("blocked access finished at %d, want >= 500 (unlock time)", done)
	}
}

func TestWriteInvalidatesOtherCores(t *testing.T) {
	_, h := tiny(2, nil)
	mustAccess(t, h, 0, line(0), false)
	mustAccess(t, h, 1, line(0), false)
	m := h.Table().Get(line(0))
	if m.holders != 0b11 {
		t.Fatalf("holders = %b, want both cores", m.holders)
	}
	mustAccess(t, h, 0, line(0), true)
	if m.holders != 0b01 {
		t.Fatalf("holders after write = %b, want core 0 only", m.holders)
	}
	// Core 1 must now miss its L1 (L3 hit by inclusion).
	if lat := mustAccess(t, h, 1, line(0), false); lat != 42 {
		t.Fatalf("post-invalidate latency = %d, want 42", lat)
	}
}

func TestMarkClean(t *testing.T) {
	_, h := tiny(1, nil)
	var dirtyEvicts int
	h.SetEvictHook(func(e EvictInfo) {
		if e.Dirty {
			dirtyEvicts++
		}
	})
	mustAccess(t, h, 0, line(0), true)
	h.MarkClean(line(0))
	mustAccess(t, h, 0, line(8), false)
	mustAccess(t, h, 0, line(16), false) // evicts clean line 0
	if dirtyEvicts != 0 {
		t.Fatalf("clean line evicted dirty %d times", dirtyEvicts)
	}
}

func TestDirtinessMergesOnL1Eviction(t *testing.T) {
	_, h := tiny(1, nil)
	var evicted []EvictInfo
	h.SetEvictHook(func(e EvictInfo) { evicted = append(evicted, e) })
	// Dirty line 0 in L1, evict it from L1 only (lines 2,4 share L1 set 0
	// but not the L2/L3 sets), then force it out of the LLC: the dirtiness
	// must have survived the trip down.
	mustAccess(t, h, 0, line(0), true)
	mustAccess(t, h, 0, line(2), false)
	mustAccess(t, h, 0, line(4), false)
	mustAccess(t, h, 0, line(8), false)
	mustAccess(t, h, 0, line(16), false) // L3 set 0: 0,8,16 -> evict 0
	found := false
	for _, e := range evicted {
		if e.Line == line(0) {
			found = true
			if !e.Dirty {
				t.Fatal("dirtiness lost on the way down the hierarchy")
			}
		}
	}
	if !found {
		t.Fatal("line 0 never evicted from LLC")
	}
}

func TestLRUVictimSelection(t *testing.T) {
	// Note: L1 hits do not refresh L3 recency (inclusive hierarchy), so the
	// L3 touch comes from a second core whose access reaches the L3.
	_, h := tiny(2, nil)
	var evicted []EvictInfo
	h.SetEvictHook(func(e EvictInfo) { evicted = append(evicted, e) })
	mustAccess(t, h, 0, line(0), false)
	mustAccess(t, h, 0, line(8), false)
	mustAccess(t, h, 1, line(0), false) // L3 hit: 0 is now MRU in L3 set 0
	mustAccess(t, h, 0, line(16), false)
	if len(evicted) != 1 || evicted[0].Line != line(8) {
		t.Fatalf("evicted %+v, want LRU line 8", evicted)
	}
}

func TestLockedCount(t *testing.T) {
	_, h := tiny(1, nil)
	h.Table().Get(line(0)).Lock()
	h.Table().Get(line(1)).Lock()
	h.Table().Get(line(2))
	if got := h.Table().LockedCount(); got != 2 {
		t.Fatalf("LockedCount = %d, want 2", got)
	}
}

func TestFillHookFiresOnlyOnMemoryFills(t *testing.T) {
	_, h := tiny(1, nil)
	var fills []arch.LineAddr
	h.SetFillHook(func(l arch.LineAddr, m *Meta) { fills = append(fills, l) })
	mustAccess(t, h, 0, line(0), false) // memory fill
	mustAccess(t, h, 0, line(0), false) // L1 hit
	mustAccess(t, h, 0, line(2), false) // second memory fill
	if len(fills) != 2 || fills[0] != line(0) || fills[1] != line(2) {
		t.Fatalf("fill hook fired for %v, want [0, 2]", fills)
	}
}

func TestFillHookSkipsVolatileLines(t *testing.T) {
	_, h := tiny(1, func(arch.LineAddr) bool { return false })
	fired := 0
	h.SetFillHook(func(arch.LineAddr, *Meta) { fired++ })
	mustAccess(t, h, 0, line(0), false)
	if fired != 0 {
		t.Fatal("fill hook must only fire for persistent lines")
	}
}
