package workload

import (
	"fmt"

	"asap/internal/sim"
)

// RBTree (RB) inserts and updates entries in a red-black tree with full
// CLRS insert fixup: recolorings and rotations ripple through several
// nodes per insert, producing the multi-line atomic regions that make RB
// a staple of persistent-memory benchmarking. Node layout:
//
//	key(8) | left(8) | right(8) | parent(8) | color(8) | value[ValueBytes]
type RBTree struct {
	mu       sim.Mutex
	rootCell uint64
	cntCell  uint64
	vbytes   int
	keyspace uint64
	delEvery int
	readPct  int
}

// NewRBTree returns an empty RB benchmark.
func NewRBTree() *RBTree { return &RBTree{} }

// Name implements Benchmark.
func (r *RBTree) Name() string { return "RB" }

const (
	rbOffKey    = 0
	rbOffLeft   = 8
	rbOffRight  = 16
	rbOffParent = 24
	rbOffColor  = 32
	rbNodeHdr   = 40

	rbRed   = 1
	rbBlack = 0
)

func (r *RBTree) left(c *Ctx, n uint64) uint64   { return c.LoadU64(n + rbOffLeft) }
func (r *RBTree) right(c *Ctx, n uint64) uint64  { return c.LoadU64(n + rbOffRight) }
func (r *RBTree) parent(c *Ctx, n uint64) uint64 { return c.LoadU64(n + rbOffParent) }
func (r *RBTree) color(c *Ctx, n uint64) uint64 {
	if n == 0 {
		return rbBlack // nil leaves are black
	}
	return c.LoadU64(n + rbOffColor)
}
func (r *RBTree) setLeft(c *Ctx, n, v uint64)   { c.StoreU64(n+rbOffLeft, v) }
func (r *RBTree) setRight(c *Ctx, n, v uint64)  { c.StoreU64(n+rbOffRight, v) }
func (r *RBTree) setParent(c *Ctx, n, v uint64) { c.StoreU64(n+rbOffParent, v) }
func (r *RBTree) setColor(c *Ctx, n, v uint64) {
	if n != 0 {
		c.StoreU64(n+rbOffColor, v)
	}
}

// Setup implements Benchmark.
func (r *RBTree) Setup(c *Ctx, cfg Config) {
	r.vbytes = cfg.ValueBytes
	r.delEvery = cfg.DeleteEvery
	r.readPct = cfg.ReadPct
	r.keyspace = uint64(cfg.InitialItems) * 2
	r.rootCell = c.Alloc(8)
	r.cntCell = c.Alloc(8)
	for i := 0; i < cfg.InitialItems; i++ {
		r.insert(c, c.Rng.Uint64()%r.keyspace, uint64(i))
	}
}

func (r *RBTree) rotateLeft(c *Ctx, x uint64) {
	y := r.right(c, x)
	yl := r.left(c, y)
	r.setRight(c, x, yl)
	if yl != 0 {
		r.setParent(c, yl, x)
	}
	p := r.parent(c, x)
	r.setParent(c, y, p)
	switch {
	case p == 0:
		c.StoreU64(r.rootCell, y)
	case r.left(c, p) == x:
		r.setLeft(c, p, y)
	default:
		r.setRight(c, p, y)
	}
	r.setLeft(c, y, x)
	r.setParent(c, x, y)
}

func (r *RBTree) rotateRight(c *Ctx, x uint64) {
	y := r.left(c, x)
	yr := r.right(c, y)
	r.setLeft(c, x, yr)
	if yr != 0 {
		r.setParent(c, yr, x)
	}
	p := r.parent(c, x)
	r.setParent(c, y, p)
	switch {
	case p == 0:
		c.StoreU64(r.rootCell, y)
	case r.right(c, p) == x:
		r.setRight(c, p, y)
	default:
		r.setLeft(c, p, y)
	}
	r.setRight(c, y, x)
	r.setParent(c, x, y)
}

// insert adds or updates key (CLRS RB-INSERT).
func (r *RBTree) insert(c *Ctx, key, tag uint64) {
	var parent uint64
	cur := c.LoadU64(r.rootCell)
	for cur != 0 {
		k := c.LoadU64(cur + rbOffKey)
		if k == key {
			c.FillValue(cur+rbNodeHdr, r.vbytes, tag)
			return
		}
		parent = cur
		if key < k {
			cur = r.left(c, cur)
		} else {
			cur = r.right(c, cur)
		}
	}
	z := c.Alloc(rbNodeHdr + r.vbytes)
	c.StoreU64(z+rbOffKey, key)
	r.setLeft(c, z, 0)
	r.setRight(c, z, 0)
	r.setParent(c, z, parent)
	r.setColor(c, z, rbRed)
	c.FillValue(z+rbNodeHdr, r.vbytes, tag)
	switch {
	case parent == 0:
		c.StoreU64(r.rootCell, z)
	case key < c.LoadU64(parent+rbOffKey):
		r.setLeft(c, parent, z)
	default:
		r.setRight(c, parent, z)
	}
	c.StoreU64(r.cntCell, c.LoadU64(r.cntCell)+1)
	r.fixup(c, z)
}

// fixup restores the red-black invariants after inserting z (CLRS
// RB-INSERT-FIXUP).
func (r *RBTree) fixup(c *Ctx, z uint64) {
	for {
		p := r.parent(c, z)
		if p == 0 || r.color(c, p) != rbRed {
			break
		}
		g := r.parent(c, p)
		if r.left(c, g) == p {
			u := r.right(c, g)
			if r.color(c, u) == rbRed {
				r.setColor(c, p, rbBlack)
				r.setColor(c, u, rbBlack)
				r.setColor(c, g, rbRed)
				z = g
				continue
			}
			if r.right(c, p) == z {
				z = p
				r.rotateLeft(c, z)
				p = r.parent(c, z)
				g = r.parent(c, p)
			}
			r.setColor(c, p, rbBlack)
			r.setColor(c, g, rbRed)
			r.rotateRight(c, g)
		} else {
			u := r.left(c, g)
			if r.color(c, u) == rbRed {
				r.setColor(c, p, rbBlack)
				r.setColor(c, u, rbBlack)
				r.setColor(c, g, rbRed)
				z = g
				continue
			}
			if r.left(c, p) == z {
				z = p
				r.rotateRight(c, z)
				p = r.parent(c, z)
				g = r.parent(c, p)
			}
			r.setColor(c, p, rbBlack)
			r.setColor(c, g, rbRed)
			r.rotateLeft(c, g)
		}
	}
	r.setColor(c, c.LoadU64(r.rootCell), rbBlack)
}

// Op implements Benchmark: insert/update, or a deletion every
// DeleteEvery-th operation.
func (r *RBTree) Op(c *Ctx, i int) {
	key := c.Key(r.keyspace)
	r.mu.Lock(c.T)
	c.Begin()
	switch {
	case r.readPct > 0 && c.Rng.Intn(100) < r.readPct:
		r.find(c, key)
	case r.delEvery > 0 && (i+1)%r.delEvery == 0:
		r.delete(c, key)
	default:
		r.insert(c, key, uint64(i))
	}
	c.End()
	r.mu.Unlock(c.T)
}

// Check implements Benchmark: BST order, no red node with a red child,
// equal black height on every path, parent pointers consistent, count
// matches.
func (r *RBTree) Check(c *Ctx) string {
	count := 0
	var walk func(n, parent uint64, lo, hi uint64) (int, string)
	walk = func(n, parent uint64, lo, hi uint64) (int, string) {
		if n == 0 {
			return 1, ""
		}
		count++
		if got := r.parent(c, n); got != parent {
			return 0, fmt.Sprintf("RB: parent pointer %#x != %#x", got, parent)
		}
		k := c.LoadU64(n + rbOffKey)
		if k < lo || k >= hi {
			return 0, fmt.Sprintf("RB: key %d out of [%d,%d)", k, lo, hi)
		}
		if r.color(c, n) == rbRed {
			if r.color(c, r.left(c, n)) == rbRed || r.color(c, r.right(c, n)) == rbRed {
				return 0, fmt.Sprintf("RB: red node %d has red child", k)
			}
		}
		lb, msg := walk(r.left(c, n), n, lo, k)
		if msg != "" {
			return 0, msg
		}
		rb, msg := walk(r.right(c, n), n, k+1, hi)
		if msg != "" {
			return 0, msg
		}
		if lb != rb {
			return 0, fmt.Sprintf("RB: black height mismatch at key %d (%d vs %d)", k, lb, rb)
		}
		if r.color(c, n) == rbBlack {
			lb++
		}
		return lb, ""
	}
	root := c.LoadU64(r.rootCell)
	if root != 0 && r.color(c, root) != rbBlack {
		return "RB: red root"
	}
	if _, msg := walk(root, 0, 0, ^uint64(0)); msg != "" {
		return msg
	}
	if got := c.LoadU64(r.cntCell); got != uint64(count) {
		return fmt.Sprintf("RB: count cell %d != nodes %d", got, count)
	}
	return ""
}
