package core

// Options sizes ASAP's hardware structures and toggles the §5.1 traffic
// optimizations (the Figure 9a ablation knobs). Defaults follow Table 2.
type Options struct {
	// CLListEntries is the Modified Cache Line List capacity per core.
	CLListEntries int
	// CLPtrSlots is the number of CLPtr slots per CL List entry.
	CLPtrSlots int
	// DepListEntries is the Dependence List capacity per memory channel.
	DepListEntries int
	// DepSlots is the number of Dep slots per Dependence List entry.
	DepSlots int
	// CoalesceDistance is how many updates to other lines are awaited
	// before a line's DPO is initiated (§4.6.2; empirically 4).
	CoalesceDistance int
	// Coalescing enables DPO coalescing (§5.1).
	Coalescing bool
	// LPODropping enables dropping a committed region's queued LPOs.
	LPODropping bool
	// DPODropping enables dropping a queued DPO when a later region's LPO
	// for the same line arrives.
	DPODropping bool
	// LogBufferBytes is the initial per-thread log buffer size.
	LogBufferBytes uint64
	// BloomBits sizes the per-engine Bloom filter (Table 2: 1 KB/channel).
	BloomBits int
	// BeginCost/EndCost are the core-visible costs of asap_begin/asap_end
	// bookkeeping, in cycles.
	BeginCost, EndCost uint64
	// OverflowPenalty is the log-overflow exception cost in cycles.
	OverflowPenalty uint64
	// UnsafeEarlyLogFree deliberately breaks the §4.7 commit rule by
	// freeing a region's undo log at asap_end instead of at commit. It
	// exists solely as the torture harness's seeded negative control: the
	// invariant engine must catch the violation (DESIGN.md §11). Never
	// enable it in a real configuration.
	UnsafeEarlyLogFree bool
}

// DefaultOptions returns the paper's configuration with all three traffic
// optimizations enabled.
func DefaultOptions() Options {
	return Options{
		CLListEntries:    4,
		CLPtrSlots:       8,
		DepListEntries:   128,
		DepSlots:         4,
		CoalesceDistance: 4,
		Coalescing:       true,
		LPODropping:      true,
		DPODropping:      true,
		LogBufferBytes:   256 << 10,
		BloomBits:        4 * 8192, // 1 KB/channel x 4 channels
		BeginCost:        4,
		EndCost:          4,
		OverflowPenalty:  2000,
	}
}
