// kvstore builds a persistent hash-table key-value store on the public
// API — the Echo-style scenario from the paper's motivation — and shows
// the §5.2 pattern: batches of updates run with asynchronous commits, and
// a single asap_fence makes everything durable before the confirmation
// "I/O".
package main

import (
	"fmt"

	"asap"
)

const (
	buckets   = 256
	nodeKey   = 0  // key(8)
	nodeNext  = 8  // next(8)
	nodeValue = 16 // value(48)
	nodeSize  = 64
)

// kv is a persistent chained hash table. All state lives in simulated
// persistent memory; the Go struct holds only addresses.
type kv struct {
	dir uint64 // bucket head array
	mu  [16]asap.Mutex
}

func newKV(sys *asap.System) *kv {
	return &kv{dir: sys.Malloc(buckets * 8)}
}

func (s *kv) bucket(key uint64) uint64 { return key % buckets }

// Put inserts or updates key atomically.
func (s *kv) Put(t *asap.Thread, key, value uint64) {
	mu := &s.mu[s.bucket(key)%16]
	mu.Lock(t)
	t.Begin()
	head := s.dir + 8*s.bucket(key)
	for cur := t.LoadUint64(head); cur != 0; cur = t.LoadUint64(cur + nodeNext) {
		if t.LoadUint64(cur+nodeKey) == key {
			t.StoreUint64(cur+nodeValue, value)
			t.End()
			mu.Unlock(t)
			return
		}
	}
	n := t.Malloc(nodeSize)
	t.StoreUint64(n+nodeKey, key)
	t.StoreUint64(n+nodeNext, t.LoadUint64(head))
	t.StoreUint64(n+nodeValue, value)
	t.StoreUint64(head, n)
	t.End()
	mu.Unlock(t)
}

// Get returns the value for key and whether it exists.
func (s *kv) Get(t *asap.Thread, key uint64) (uint64, bool) {
	mu := &s.mu[s.bucket(key)%16]
	mu.Lock(t)
	defer mu.Unlock(t)
	head := s.dir + 8*s.bucket(key)
	for cur := t.LoadUint64(head); cur != 0; cur = t.LoadUint64(cur + nodeNext) {
		if t.LoadUint64(cur+nodeKey) == key {
			return t.LoadUint64(cur + nodeValue), true
		}
	}
	return 0, false
}

func main() {
	sys, err := asap.NewSystem(asap.DefaultConfig())
	if err != nil {
		panic(err)
	}
	store := newKV(sys)

	// Four writers stream updates; each confirms its batch with one fence.
	for w := 0; w < 4; w++ {
		w := w
		sys.Spawn("writer", func(t *asap.Thread) {
			for i := 0; i < 100; i++ {
				key := uint64(w*100 + i)
				store.Put(t, key, key*10)
			}
			// One fence per batch, not per update: the asynchronous
			// commits overlap the whole batch, and only the confirmation
			// waits (§5.2).
			t.Fence()
			fmt.Printf("writer %d: batch of 100 durable at cycle %d\n", w, t.Now())
			t.Drain()
		})
	}
	sys.Run()

	// Reopen the store through a crash image to prove durability.
	cs, err := sys.Crash()
	if err != nil {
		panic(err)
	}
	if _, err := cs.Recover(); err != nil {
		panic(err)
	}
	missing := 0
	// Walk the persisted directory directly.
	for key := uint64(0); key < 400; key++ {
		found := false
		for cur := cs.ReadUint64(store.dir + 8*(key%buckets)); cur != 0; cur = cs.ReadUint64(cur + nodeNext) {
			if cs.ReadUint64(cur+nodeKey) == key {
				if cs.ReadUint64(cur+nodeValue) != key*10 {
					panic("wrong persisted value")
				}
				found = true
				break
			}
		}
		if !found {
			missing++
		}
	}
	fmt.Printf("persisted image: %d/400 keys present after fences\n", 400-missing)
	st := sys.Stats()
	fmt.Printf("PM writes: %d, LPOs dropped: %d, DPOs dropped: %d\n",
		st["pm.writes"], st["lpo.dropped"], st["dpo.dropped"])
}
