package crashtest

// DDMin minimizes a failing input by delta debugging (Zeller's ddmin): it
// returns the smallest subsequence of items it can find for which fails
// still returns true. fails must be deterministic; it is the caller's job
// to bound the number of replays (return false once a budget runs out —
// DDMin then stops reducing and returns the best subset so far). items is
// assumed failing; the result keeps the original relative order, which is
// what makes the algorithm sound for schedules and event logs alike.
func DDMin[T any](items []T, fails func([]T) bool) []T {
	cur := append([]T(nil), items...)
	n := 2
	for len(cur) > 1 && n <= len(cur) {
		chunk := (len(cur) + n - 1) / n
		reduced := false
		for lo := 0; lo < len(cur); lo += chunk {
			hi := min(lo+chunk, len(cur))
			complement := append(append([]T(nil), cur[:lo]...), cur[hi:]...)
			if len(complement) > 0 && fails(complement) {
				cur, n, reduced = complement, max(n-1, 2), true
				break
			}
			if fails(cur[lo:hi]) {
				cur, n, reduced = append([]T(nil), cur[lo:hi]...), 2, true
				break
			}
		}
		if !reduced {
			if n == len(cur) {
				break
			}
			n = min(n*2, len(cur))
		}
	}
	return cur
}
