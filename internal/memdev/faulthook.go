package memdev

// FaultInjector intercepts the ADR crash flush, modelling failure modes a
// real power loss can expose: torn 64 B persists (a partial cache-line
// write when the capacitors run out), entries that never reach media, and
// flush reordering. A nil injector (the default) gives the ideal ADR of
// the paper: every accepted entry reaches the PM image intact, in order.
//
// Injectors act only at crash time, so installing one never perturbs the
// simulated execution leading up to the crash — a property the
// crash-consistency checker relies on for deterministic fault replay.
type FaultInjector interface {
	// FlushOrder may permute the order in which a channel's accepted
	// entries (head first) are flushed to the image. It returns a
	// permutation of [0, len(entries)); nil keeps drain order.
	FlushOrder(channel int, entries []*Entry) []int
	// FlushPayload returns the bytes that actually reach the image for
	// entry e, given the line's current image content (for torn-write
	// modelling), and whether the write happens at all. Returning
	// (nil, false) drops the entry.
	FlushPayload(channel int, e *Entry, current []byte) (payload []byte, persist bool)
}

// HeaderFaultInjector extends FaultInjector to the LH-WPQ path: the
// persistence-domain SRAM holding in-flight log headers can also lose
// state at a power failure (a controller bug, a marginal cell — the
// conservative fault model assumes it can happen). An injector
// implementing it is consulted for every resident header when the crash
// snapshot is taken; recovery must *detect* a dropped header, never
// silently accept the crash state as clean.
type HeaderFaultInjector interface {
	FaultInjector
	// CrashHeader reports whether header h of the given channel survives
	// the crash. Returning false drops it from the snapshot.
	CrashHeader(channel int, h *LogHeader) bool
}

// SetFaultInjector installs fi on every channel's crash-flush path (nil
// restores ideal ADR behavior). If fi also implements
// HeaderFaultInjector, it additionally intercepts the LH-WPQ snapshot.
func (f *Fabric) SetFaultInjector(fi FaultInjector) {
	for _, ch := range f.channels {
		ch.fi = fi
	}
}

// crashHeaders returns the channel's LH-WPQ headers surviving a crash:
// Snapshot order (deterministic), filtered by the installed
// HeaderFaultInjector, if any.
func (c *Channel) crashHeaders() []*LogHeader {
	headers := c.lh.Snapshot()
	hfi, ok := c.fi.(HeaderFaultInjector)
	if !ok {
		return headers
	}
	kept := headers[:0]
	for _, h := range headers {
		if hfi.CrashHeader(c.id, h) {
			kept = append(kept, h)
		}
	}
	return kept
}
