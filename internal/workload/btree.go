package workload

import (
	"fmt"

	"asap/internal/sim"
)

// BTree (BT) inserts and updates entries in a B-tree of minimum degree 4
// (up to 7 keys and 8 children per node), the CLRS formulation with
// preemptive splitting on descent. Node layout (all nodes 192 B):
//
//	leaf(8) | n(8) | keys[7](56) | vals[7](56) | children[8](64)
//
// Values are separate ValueBytes allocations referenced from vals[i].
type BTree struct {
	mu       sim.Mutex
	rootCell uint64
	cntCell  uint64
	vbytes   int
	keyspace uint64
	delEvery int
	readPct  int
}

// NewBTree returns an empty BT benchmark.
func NewBTree() *BTree { return &BTree{} }

// Name implements Benchmark.
func (b *BTree) Name() string { return "BT" }

const (
	btDegree  = 4 // minimum degree t
	btMaxKeys = 2*btDegree - 1

	btOffLeaf = 0
	btOffN    = 8
	btOffKeys = 16
	btOffVals = btOffKeys + 8*btMaxKeys
	btOffKids = btOffVals + 8*btMaxKeys
	btNodeLen = btOffKids + 8*(btMaxKeys+1)
)

func (b *BTree) key(c *Ctx, n uint64, i int) uint64       { return c.LoadU64(n + btOffKeys + 8*uint64(i)) }
func (b *BTree) val(c *Ctx, n uint64, i int) uint64       { return c.LoadU64(n + btOffVals + 8*uint64(i)) }
func (b *BTree) kid(c *Ctx, n uint64, i int) uint64       { return c.LoadU64(n + btOffKids + 8*uint64(i)) }
func (b *BTree) setKey(c *Ctx, n uint64, i int, v uint64) { c.StoreU64(n+btOffKeys+8*uint64(i), v) }
func (b *BTree) setVal(c *Ctx, n uint64, i int, v uint64) { c.StoreU64(n+btOffVals+8*uint64(i), v) }
func (b *BTree) setKid(c *Ctx, n uint64, i int, v uint64) { c.StoreU64(n+btOffKids+8*uint64(i), v) }
func (b *BTree) count(c *Ctx, n uint64) int               { return int(c.LoadU64(n + btOffN)) }
func (b *BTree) setCount(c *Ctx, n uint64, v int)         { c.StoreU64(n+btOffN, uint64(v)) }
func (b *BTree) isLeaf(c *Ctx, n uint64) bool             { return c.LoadU64(n+btOffLeaf) != 0 }

func (b *BTree) newNode(c *Ctx, leaf bool) uint64 {
	n := c.Alloc(btNodeLen)
	if leaf {
		c.StoreU64(n+btOffLeaf, 1)
	} else {
		c.StoreU64(n+btOffLeaf, 0)
	}
	c.StoreU64(n+btOffN, 0)
	return n
}

// Setup implements Benchmark.
func (b *BTree) Setup(c *Ctx, cfg Config) {
	b.vbytes = cfg.ValueBytes
	b.delEvery = cfg.DeleteEvery
	b.readPct = cfg.ReadPct
	b.keyspace = uint64(cfg.InitialItems) * 2
	b.rootCell = c.Alloc(8)
	b.cntCell = c.Alloc(8)
	c.StoreU64(b.rootCell, b.newNode(c, true))
	for i := 0; i < cfg.InitialItems; i++ {
		b.insert(c, c.Rng.Uint64()%b.keyspace, uint64(i))
	}
}

// splitChild splits the full i-th child of x (CLRS B-TREE-SPLIT-CHILD).
func (b *BTree) splitChild(c *Ctx, x uint64, i int) {
	y := b.kid(c, x, i)
	z := b.newNode(c, b.isLeaf(c, y))
	t := btDegree
	b.setCount(c, z, t-1)
	for j := 0; j < t-1; j++ {
		b.setKey(c, z, j, b.key(c, y, j+t))
		b.setVal(c, z, j, b.val(c, y, j+t))
	}
	if !b.isLeaf(c, y) {
		for j := 0; j < t; j++ {
			b.setKid(c, z, j, b.kid(c, y, j+t))
		}
	}
	b.setCount(c, y, t-1)
	for j := b.count(c, x); j >= i+1; j-- {
		b.setKid(c, x, j+1, b.kid(c, x, j))
	}
	b.setKid(c, x, i+1, z)
	for j := b.count(c, x) - 1; j >= i; j-- {
		b.setKey(c, x, j+1, b.key(c, x, j))
		b.setVal(c, x, j+1, b.val(c, x, j))
	}
	b.setKey(c, x, i, b.key(c, y, t-1))
	b.setVal(c, x, i, b.val(c, y, t-1))
	b.setCount(c, x, b.count(c, x)+1)
}

// insert adds or updates key with a fresh value allocation.
func (b *BTree) insert(c *Ctx, key, tag uint64) {
	root := c.LoadU64(b.rootCell)
	if b.count(c, root) == btMaxKeys {
		s := b.newNode(c, false)
		b.setKid(c, s, 0, root)
		b.splitChild(c, s, 0)
		c.StoreU64(b.rootCell, s)
		root = s
	}
	b.insertNonFull(c, root, key, tag)
}

func (b *BTree) insertNonFull(c *Ctx, x uint64, key, tag uint64) {
	for {
		n := b.count(c, x)
		// Update in place if the key exists in this node.
		for i := 0; i < n; i++ {
			if b.key(c, x, i) == key {
				c.FillValue(b.val(c, x, i), b.vbytes, tag)
				return
			}
		}
		if b.isLeaf(c, x) {
			i := n - 1
			for i >= 0 && key < b.key(c, x, i) {
				b.setKey(c, x, i+1, b.key(c, x, i))
				b.setVal(c, x, i+1, b.val(c, x, i))
				i--
			}
			v := c.Alloc(b.vbytes)
			c.FillValue(v, b.vbytes, tag)
			b.setKey(c, x, i+1, key)
			b.setVal(c, x, i+1, v)
			b.setCount(c, x, n+1)
			c.StoreU64(b.cntCell, c.LoadU64(b.cntCell)+1)
			return
		}
		i := 0
		for i < n && key > b.key(c, x, i) {
			i++
		}
		if i < n && b.key(c, x, i) == key {
			c.FillValue(b.val(c, x, i), b.vbytes, tag)
			return
		}
		child := b.kid(c, x, i)
		if b.count(c, child) == btMaxKeys {
			b.splitChild(c, x, i)
			k := b.key(c, x, i)
			if key == k {
				c.FillValue(b.val(c, x, i), b.vbytes, tag)
				return
			}
			if key > k {
				i++
			}
			child = b.kid(c, x, i)
		}
		x = child
	}
}

// Op implements Benchmark: insert/update, or a deletion every
// DeleteEvery-th operation.
func (b *BTree) Op(c *Ctx, i int) {
	key := c.Key(b.keyspace)
	b.mu.Lock(c.T)
	c.Begin()
	switch {
	case b.readPct > 0 && c.Rng.Intn(100) < b.readPct:
		b.lookup(c, key)
	case b.delEvery > 0 && (i+1)%b.delEvery == 0:
		b.delete(c, key)
	default:
		b.insert(c, key, uint64(i))
	}
	c.End()
	b.mu.Unlock(c.T)
}

// Check implements Benchmark: key count, ordering and node-fill invariants.
func (b *BTree) Check(c *Ctx) string {
	total := 0
	var walk func(n uint64, lo, hi uint64, root bool) string
	walk = func(n uint64, lo, hi uint64, root bool) string {
		cnt := b.count(c, n)
		if !root && cnt < btDegree-1 {
			return fmt.Sprintf("BT: underfull node (%d keys)", cnt)
		}
		if cnt > btMaxKeys {
			return fmt.Sprintf("BT: overfull node (%d keys)", cnt)
		}
		total += cnt
		prev := lo
		for i := 0; i < cnt; i++ {
			k := b.key(c, n, i)
			if k < prev || k >= hi {
				return fmt.Sprintf("BT: key %d violates order in [%d,%d)", k, lo, hi)
			}
			prev = k + 1
		}
		if b.isLeaf(c, n) {
			return ""
		}
		lows := lo
		for i := 0; i <= cnt; i++ {
			high := hi
			if i < cnt {
				high = b.key(c, n, i)
			}
			if msg := walk(b.kid(c, n, i), lows, high, false); msg != "" {
				return msg
			}
			if i < cnt {
				lows = b.key(c, n, i) + 1
			}
		}
		return ""
	}
	if msg := walk(c.LoadU64(b.rootCell), 0, ^uint64(0), true); msg != "" {
		return msg
	}
	if got := c.LoadU64(b.cntCell); got != uint64(total) {
		return fmt.Sprintf("BT: count cell %d != keys %d", got, total)
	}
	return ""
}
