package core

import (
	"sort"

	"asap/internal/arch"
	"asap/internal/snapshot"
)

// AppendState digests the persistence engine's scheme-visible state
// through the read-only inspect surface: live region bookkeeping, the
// dependence graph, LPOs in flight, and the spilled OwnerRID buffer.
// Everything here is already exposed in deterministic order (RID order,
// sorted dep lists, ascending spill lines), so the digest is stable by
// the same argument the invariant engine relies on.
//
// This file is the audit-digest side of checkpointing; the gob-based
// crash-state serialization in snapshot.go is a different mechanism with
// different consumers (crash recovery) and stays separate.
func (e *Engine) AppendState(enc *snapshot.Enc) {
	enc.Section("scheme")
	regions := e.LiveRegions()
	enc.I64(int64(len(regions)))
	for _, r := range regions {
		enc.U64(uint64(r.RID))
		enc.I64(int64(r.Thread))
		enc.Bool(r.Ended)
		enc.Bool(r.CLResident)
		enc.I64(int64(r.CLSlots))
		enc.Bool(r.OpenRecord)
		enc.U64(uint64(r.OpenHeaderAddr))
		enc.U64(r.LogEnd)
		enc.I64(int64(r.LogEpoch))
	}

	g := e.DepGraphLive()
	rids := make([]arch.RID, 0, len(g))
	for rid := range g {
		rids = append(rids, rid)
	}
	sort.Slice(rids, func(i, j int) bool { return rids[i] < rids[j] })
	enc.I64(int64(len(rids)))
	for _, rid := range rids {
		enc.U64(uint64(rid))
		deps := g[rid]
		enc.I64(int64(len(deps)))
		for _, d := range deps {
			enc.U64(uint64(d))
		}
	}

	enc.I64(int64(e.LPOsInFlight()))
	spills := 0
	e.OwnerSpills(func(arch.LineAddr, arch.RID) { spills++ })
	enc.I64(int64(spills))
	e.OwnerSpills(func(line arch.LineAddr, owner arch.RID) {
		enc.U64(uint64(line))
		enc.U64(uint64(owner))
	})
}
