package sim

// Mutex is a lock between simulated threads. Workloads use it to provide
// the isolation that the paper's atomic regions do not (§2.1): conflicting
// atomic regions are nested inside critical sections guarded by locks.
//
// Acquisition models a cache-resident atomic operation: a fixed cost is
// charged on every acquire, and contended acquires additionally wait in
// simulated time until the holder releases.
type Mutex struct {
	holder *Thread
	// AcquireCost is charged on every Lock; defaults to 4 cycles
	// (an L1-hit compare-and-swap) when zero.
	AcquireCost uint64
	// freePred is the reusable contended-wait predicate, created on the
	// first contended Lock so waits allocate no per-call closure.
	freePred func() bool
}

func (m *Mutex) cost() uint64 {
	if m.AcquireCost == 0 {
		return 4
	}
	return m.AcquireCost
}

// Lock blocks t until the mutex is free, then takes it. A contended wait
// is reported to the kernel's observer as lock time.
func (m *Mutex) Lock(t *Thread) {
	if m.holder != nil {
		if m.freePred == nil {
			m.freePred = func() bool { return m.holder == nil }
		}
		if o := t.k.obs; o != nil {
			o.LockBegin(t)
			t.WaitUntil(m.freePred)
			o.LockEnd(t)
		} else {
			t.WaitUntil(m.freePred)
		}
	}
	m.holder = t
	t.Advance(m.cost())
}

// Unlock releases the mutex. It panics if t is not the holder, which in a
// simulation always indicates a workload bug worth crashing on.
func (m *Mutex) Unlock(t *Thread) {
	if m.holder != t {
		panic("sim: Unlock by non-holder " + t.name)
	}
	m.holder = nil
	t.Advance(m.cost())
}

// TryLock takes the mutex if free and reports whether it did. The acquire
// cost is charged either way.
func (m *Mutex) TryLock(t *Thread) bool {
	ok := m.holder == nil
	if ok {
		m.holder = t
	}
	t.Advance(m.cost())
	return ok
}

// Holder returns the thread currently holding the mutex, or nil.
func (m *Mutex) Holder() *Thread { return m.holder }
