// Package area reproduces the §6.2 hardware-overhead accounting: the byte
// sizes of every structure ASAP adds and an analytic estimate of the chip
// area fraction they occupy. The paper used McPAT; here the same structure
// sizes are computed exactly from the configuration and converted to an
// area fraction with a constant SRAM-density model, which preserves the
// paper's "< 3 % of typical CPU chip size" conclusion.
package area

import (
	"fmt"
	"strings"
)

// Config mirrors the hardware parameters that size ASAP's structures.
type Config struct {
	Cores           int
	Channels        int
	CLListEntries   int // per core
	CLPtrSlots      int // per entry
	DepListEntries  int // per channel
	DepSlots        int // per entry
	LHWPQEntries    int // per channel
	BloomBytesPerCh int
	ThreadsPerCore  int
	L1LinesPerCore  int
	L2LinesPerCore  int
	L3Lines         int
}

// Default returns the Table 2 / §6.2 configuration.
func Default() Config {
	return Config{
		Cores:           18,
		Channels:        4,
		CLListEntries:   4,
		CLPtrSlots:      8,
		DepListEntries:  128,
		DepSlots:        4,
		LHWPQEntries:    128,
		BloomBytesPerCh: 1024,
		ThreadsPerCore:  1,
		L1LinesPerCore:  32 * 1024 / 64,
		L2LinesPerCore:  1024 * 1024 / 64,
		L3Lines:         8 * 1024 * 1024 / 64,
	}
}

// Breakdown reports the size of each added structure in bytes.
type Breakdown struct {
	CLListPerCore      int // §6.2: 49 B/core at the default configuration
	CLListTotal        int
	DepListPerChannel  int
	DepListTotal       int
	LHWPQPerEntry      int // §6.2: 70 B/entry
	LHWPQTotal         int
	BloomTotal         int
	ThreadStateRegs    int // 6 registers x 8 B per thread
	TagExtensionsTotal int // PBit + LockBit + OwnerRID per cache line
	Total              int
}

// CLListEntryBytes returns the size of one CL List entry: CLPtr slots at
// 1 B each, a 2-bit state, and a 4 B RID (§6.2).
func CLListEntryBytes(slots int) float64 {
	return float64(slots)*1 + 2.0/8 + 4
}

// DepEntryBytes returns the size of one Dependence List entry: Dep slots
// at 4 B each, a 2-bit state, and a 4 B RID (§6.2).
func DepEntryBytes(slots int) float64 {
	return float64(slots)*4 + 2.0/8 + 4
}

// LHWPQEntryBytes returns one LH-WPQ entry: a 6 B LogHeaderAddr plus the
// 64 B LogHeader (§6.2).
const LHWPQEntryBytes = 6 + 64

// tagExtensionBits is PBit(1) + LockBit(1) + OwnerRID(32) per cache line.
const tagExtensionBits = 1 + 1 + 32

// Compute sizes every structure for cfg.
func Compute(cfg Config) Breakdown {
	var b Breakdown
	b.CLListPerCore = ceil(float64(cfg.CLListEntries) * CLListEntryBytes(cfg.CLPtrSlots))
	b.CLListTotal = b.CLListPerCore * cfg.Cores
	b.DepListPerChannel = ceil(float64(cfg.DepListEntries) * DepEntryBytes(cfg.DepSlots))
	b.DepListTotal = b.DepListPerChannel * cfg.Channels
	b.LHWPQPerEntry = LHWPQEntryBytes
	b.LHWPQTotal = cfg.LHWPQEntries * cfg.Channels * LHWPQEntryBytes
	b.BloomTotal = cfg.BloomBytesPerCh * cfg.Channels
	b.ThreadStateRegs = cfg.Cores * cfg.ThreadsPerCore * 6 * 8
	lines := cfg.Cores*(cfg.L1LinesPerCore+cfg.L2LinesPerCore) + cfg.L3Lines
	b.TagExtensionsTotal = ceil(float64(lines) * tagExtensionBits / 8)
	b.Total = b.CLListTotal + b.DepListTotal + b.LHWPQTotal + b.BloomTotal +
		b.ThreadStateRegs + b.TagExtensionsTotal
	return b
}

// AreaFraction estimates the added structures as a fraction of the chip's
// SRAM budget, approximated by the cache capacity (data + tags): the
// denominator a McPAT run would dominate with. The §6.2 result is ~2.5 %.
func AreaFraction(cfg Config) float64 {
	b := Compute(cfg)
	cacheBytes := (cfg.Cores*(cfg.L1LinesPerCore+cfg.L2LinesPerCore) + cfg.L3Lines) * (64 + 8)
	// Cache SRAM occupies roughly 40 % of a server-class die; scale so the
	// fraction is of total chip area, as the paper reports.
	return float64(b.Total) / (float64(cacheBytes) * 2.5)
}

func ceil(f float64) int {
	n := int(f)
	if float64(n) < f {
		n++
	}
	return n
}

// Report renders the §6.2 table.
func Report(cfg Config) string {
	b := Compute(cfg)
	var s strings.Builder
	fmt.Fprintf(&s, "ASAP hardware overhead (Section 6.2)\n")
	fmt.Fprintf(&s, "  CL List            %4d B/core   x %2d cores    = %7d B\n", b.CLListPerCore, cfg.Cores, b.CLListTotal)
	fmt.Fprintf(&s, "  Dependence List    %4d B/chan   x %2d channels = %7d B\n", b.DepListPerChannel, cfg.Channels, b.DepListTotal)
	fmt.Fprintf(&s, "  LH-WPQ             %4d B/entry  x %2d*%d        = %7d B\n", b.LHWPQPerEntry, cfg.LHWPQEntries, cfg.Channels, b.LHWPQTotal)
	fmt.Fprintf(&s, "  Bloom filter       %4d B/chan   x %2d channels = %7d B\n", cfg.BloomBytesPerCh, cfg.Channels, b.BloomTotal)
	fmt.Fprintf(&s, "  Thread state regs  %4d B total\n", b.ThreadStateRegs)
	fmt.Fprintf(&s, "  Tag extensions     %d B across L1/L2/L3\n", b.TagExtensionsTotal)
	fmt.Fprintf(&s, "  Total              %d B\n", b.Total)
	fmt.Fprintf(&s, "  Estimated area     %.2f%% of chip (paper: ~2.5%%, <3%%)\n", AreaFraction(cfg)*100)
	return s.String()
}
