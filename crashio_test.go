package asap

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"

	"asap/internal/core"
	"asap/internal/wal"
)

// savedCrashBytes produces one serialized crash state to mutilate: a tiny
// system with a couple of regions in flight at the crash.
func savedCrashBytes(t *testing.T) []byte {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Cores = 2
	cfg.MemoryControllers, cfg.ChannelsPerMC = 1, 1
	cfg.WPQEntries = 1
	cfg.PMLatencyMultiplier = 16
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := sys.Malloc(64)
	var crash *CrashState
	sys.Spawn("w", func(th *Thread) {
		th.Begin()
		th.StoreUint64(a, 7)
		th.End()
		th.Begin()
		th.StoreUint64(a, 8)
		crash, _ = sys.Crash()
	})
	sys.Run()
	var buf bytes.Buffer
	if err := crash.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLoadCrashStateTruncated feeds every interesting prefix of a valid
// crash file to LoadCrashState: all must error, none may panic.
func TestLoadCrashStateTruncated(t *testing.T) {
	full := savedCrashBytes(t)
	cuts := []int{0, 1, 2, 16, len(full) / 4, len(full) / 2, len(full) - 1}
	for _, n := range cuts {
		if _, err := LoadCrashState(bytes.NewReader(full[:n])); err == nil {
			t.Errorf("truncation to %d/%d bytes loaded without error", n, len(full))
		}
	}
}

// TestLoadCrashStateGarbage feeds deterministic random bytes — nothing
// resembling a gob stream — and expects a clean error.
func TestLoadCrashStateGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 64, 4096} {
		junk := make([]byte, n)
		rng.Read(junk)
		if _, err := LoadCrashState(bytes.NewReader(junk)); err == nil {
			t.Errorf("%d bytes of garbage loaded without error", n)
		}
	}
}

// TestLoadCrashStateBitFlips flips single bytes throughout a valid crash
// file. Whatever the flip hits — gob framing, type descriptors, image
// payload — loading must either fail with an error or yield a state whose
// Recover completes without panicking.
func TestLoadCrashStateBitFlips(t *testing.T) {
	full := savedCrashBytes(t)
	step := len(full)/97 + 1
	for off := 0; off < len(full); off += step {
		mut := append([]byte(nil), full...)
		mut[off] ^= 0x41
		cs, err := LoadCrashState(bytes.NewReader(mut))
		if err != nil {
			continue
		}
		// Flip landed somewhere content-only (e.g. an image line): the
		// state is loadable, and recovery must degrade to an error at
		// worst.
		if _, rerr := cs.Recover(); rerr != nil {
			t.Logf("flip at %d: recovery rejected damaged state: %v", off, rerr)
		}
	}
}

// TestLoadCrashStateMalformedStructure gob-encodes structurally invalid
// crash states directly — the shapes Validate guards against — and checks
// the load path rejects each one.
func TestLoadCrashStateMalformedStructure(t *testing.T) {
	cases := map[string]*core.CrashState{
		"no image": {},
		"log size not record-aligned": {
			Logs: []core.LogExtent{{Thread: 0, Base: 0, Size: wal.RecordBytes + 1}},
		},
		"log tail before head": {
			Logs: []core.LogExtent{{Thread: 0, Base: 0, Size: wal.RecordBytes, Head: 1024, Tail: 0}},
		},
		"log window larger than buffer": {
			Logs: []core.LogExtent{{Thread: 0, Base: 0, Size: wal.RecordBytes, Head: 0, Tail: 10 * wal.RecordBytes}},
		},
	}
	for name, cs := range cases {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(cs); err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		if _, err := LoadCrashState(&buf); err == nil {
			t.Errorf("%s: loaded without error", name)
		}
	}
}
