package stats

import (
	"strings"
	"testing"
)

func TestAddGet(t *testing.T) {
	s := New()
	s.Add(PMWrites, 5)
	s.Inc(PMWrites)
	if got := s.Get(PMWrites); got != 6 {
		t.Fatalf("Get = %d, want 6", got)
	}
	if got := s.Get("untouched"); got != 0 {
		t.Fatalf("untouched counter = %d, want 0", got)
	}
}

func TestNamesSorted(t *testing.T) {
	s := New()
	s.Inc("zeta")
	s.Inc("alpha")
	s.Inc("mid")
	names := s.Names()
	want := []string{"alpha", "mid", "zeta"}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	s := New()
	s.Add("x", 1)
	snap := s.Snapshot()
	s.Add("x", 10)
	if snap["x"] != 1 {
		t.Fatalf("snapshot mutated: %d", snap["x"])
	}
}

func TestReset(t *testing.T) {
	s := New()
	s.Add("x", 3)
	s.Reset()
	if s.Get("x") != 0 || len(s.Names()) != 0 {
		t.Fatal("Reset did not clear counters")
	}
}

func TestStringContainsCounters(t *testing.T) {
	s := New()
	s.Add("pm.writes", 42)
	out := s.String()
	if !strings.Contains(out, "pm.writes") || !strings.Contains(out, "42") {
		t.Fatalf("String output missing counter: %q", out)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	for i := uint64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	p50 := h.Quantile(0.5)
	p99 := h.Quantile(0.99)
	// Log-linear buckets give ~12% resolution: p50 of 1..1000 is ~500,
	// p99 is ~990.
	if p50 < 450 || p50 > 600 {
		t.Fatalf("p50 = %d, want near 500", p50)
	}
	if p99 < 900 || p99 > 1150 {
		t.Fatalf("p99 = %d, want near 990", p99)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.99) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
}

func TestHistogramZeroValues(t *testing.T) {
	h := &Histogram{}
	h.Observe(0)
	if h.Quantile(1.0) != 0 {
		t.Fatal("all-zero histogram quantile should be 0")
	}
}

func TestSetHist(t *testing.T) {
	s := New()
	s.Hist("x").Observe(5)
	s.Hist("x").Observe(7)
	if s.Hist("x").Count() != 2 {
		t.Fatal("histogram not shared by name")
	}
	if s.Hist("y").Count() != 0 {
		t.Fatal("fresh histogram not empty")
	}
}
