package cache

import "asap/internal/snapshot"

// appendLevel digests one cache array slot-by-slot: packed tags, dirty
// bits, LRU stamps and clock, and each slot's metadata identity. Slot
// order is structural (set*ways+way), so the encoding is deterministic
// by construction.
func appendLevel(e *snapshot.Enc, l *level) {
	e.U64(l.clock)
	e.I64(int64(len(l.tags)))
	for _, t := range l.tags {
		e.U64(t)
	}
	for _, d := range l.dirty {
		e.Bool(d)
	}
	for _, u := range l.lastUse {
		e.U64(u)
	}
	for _, m := range l.meta {
		if m == nil {
			e.U64(^uint64(0))
		} else {
			e.U64(uint64(m.line))
		}
	}
}

// AppendState digests the whole cache system: every private L1/L2, the
// shared L3, and the tag-extension table in allocation (handle) order —
// which is deterministic because handle assignment follows first-touch
// order, itself a scheduling outcome.
func (h *Hierarchy) AppendState(e *snapshot.Enc) {
	e.Section("cache")
	e.I64(int64(h.cores))
	for _, l := range h.l1 {
		appendLevel(e, l)
	}
	for _, l := range h.l2 {
		appendLevel(e, l)
	}
	appendLevel(e, h.l3)

	e.Section("cache.table")
	e.I64(int64(h.table.n))
	h.table.visit(func(m *Meta) {
		e.U64(uint64(m.line))
		e.Bool(m.PBit)
		e.I64(int64(m.Locks))
		e.U64(uint64(m.Owner))
		e.U64(m.holders)
	})
}
