package wal

import (
	"encoding/binary"

	"asap/internal/arch"
)

// Header line layout (one 64 B cache line, Figure 5a):
//
//	bytes 0..7   RID (little endian)
//	byte  8      magic (0xA5) — lets recovery skip never-written lines
//	byte  9      entry count (1..7)
//	bytes 10..15 reserved
//	bytes 16+6i  data line address >> LineShift, 6 bytes little endian,
//	             for i in [0, count)
//
// The record's data-entry lines are contiguous after the header
// (EntryLine), so log entry addresses need not be stored.
const headerMagic = 0xA5

// EncodeHeader serializes a header line for region rid covering the given
// data lines (at most RecordEntries).
func EncodeHeader(rid arch.RID, dataLines []arch.LineAddr) []byte {
	if len(dataLines) > RecordEntries {
		panic("wal: too many entries for one record")
	}
	buf := make([]byte, arch.LineSize)
	binary.LittleEndian.PutUint64(buf[0:8], uint64(rid))
	buf[8] = headerMagic
	buf[9] = byte(len(dataLines))
	for i, dl := range dataLines {
		putUint48(buf[16+6*i:], uint64(dl)>>arch.LineShift)
	}
	return buf
}

// DecodeHeader parses a persisted header line. ok is false if the line is
// not a valid header.
func DecodeHeader(line []byte) (rid arch.RID, dataLines []arch.LineAddr, ok bool) {
	if len(line) < arch.LineSize || line[8] != headerMagic {
		return 0, nil, false
	}
	count := int(line[9])
	if count < 1 || count > RecordEntries {
		return 0, nil, false
	}
	rid = arch.RID(binary.LittleEndian.Uint64(line[0:8]))
	if rid == arch.NoRID {
		return 0, nil, false
	}
	for i := 0; i < count; i++ {
		dataLines = append(dataLines, arch.LineAddr(getUint48(line[16+6*i:])<<arch.LineShift))
	}
	return rid, dataLines, true
}

func putUint48(b []byte, v uint64) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
}

func getUint48(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 |
		uint64(b[3])<<24 | uint64(b[4])<<32 | uint64(b[5])<<40
}
