package core

import (
	"fmt"
	"sort"

	"asap/internal/arch"
	"asap/internal/memdev"
	"asap/internal/wal"
)

// DepSnapshot is one persisted Dependence List entry as recovery sees it
// after the crash flush (§5.5).
type DepSnapshot struct {
	RID  arch.RID
	Done bool
	Deps []arch.RID
}

// LogExtent describes one thread's log buffer so recovery can scan it for
// persisted record headers. Head and Tail are the absolute LogHead/LogTail
// offsets at the crash: together they bound the live (allocated, not yet
// freed) records, which recovery uses to tell lost undo material from
// stale bytes of already-committed regions.
type LogExtent struct {
	Thread int
	Base   uint64
	Size   uint64
	Head   uint64
	Tail   uint64
}

// CrashState is everything that survives a power failure: the flushed PM
// image, the flushed LH-WPQ headers, the persistence-domain Dependence
// List entries, and the log directory.
type CrashState struct {
	Image   *memdev.Image
	Headers []*memdev.LogHeader
	Deps    []DepSnapshot
	Logs    []LogExtent
}

// Crash models a power failure at the current instant: ADR flushes the
// WPQs to the PM image, the LH-WPQ and Dependence List contents are
// captured, and the simulation halts. The returned state is what recovery
// gets to work with — caches, arrival queues and thread registers are
// gone.
func (e *Engine) Crash() *CrashState {
	cs := &CrashState{
		Image:   e.m.Fabric.FlushAll().Clone(),
		Headers: e.m.Fabric.LHSnapshot(),
	}
	for _, dl := range e.dep {
		for _, entry := range dl.Entries() {
			snap := DepSnapshot{RID: entry.RID, Done: entry.Done}
			for d := range entry.Deps {
				snap.Deps = append(snap.Deps, d)
			}
			sort.Slice(snap.Deps, func(i, j int) bool { return snap.Deps[i] < snap.Deps[j] })
			cs.Deps = append(cs.Deps, snap)
		}
	}
	sort.Slice(cs.Deps, func(i, j int) bool { return cs.Deps[i].RID < cs.Deps[j].RID })
	for tid, ts := range e.threads {
		cs.Logs = append(cs.Logs, LogExtent{
			Thread: tid,
			Base:   ts.log.Base(),
			Size:   ts.log.Size(),
			Head:   ts.log.Head(),
			Tail:   ts.log.Tail(),
		})
	}
	sort.Slice(cs.Logs, func(i, j int) bool { return cs.Logs[i].Thread < cs.Logs[j].Thread })
	e.m.K.Halt()
	return cs
}

// UncommittedRIDs returns the regions still uncommitted right now, in RID
// order. The crash-consistency harness uses it to scope fault injection to
// state recovery is responsible for.
func (e *Engine) UncommittedRIDs() []arch.RID {
	out := make([]arch.RID, 0, len(e.regions))
	for rid := range e.regions {
		out = append(out, rid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Validate checks the crash state's structural integrity before recovery
// reads it: a CrashState deserialized from a damaged or hostile file must
// fail here with an error, never panic deeper in. It checks only shape —
// content corruption (torn headers, damaged log entries) is the recovery
// validation pass's job.
func (cs *CrashState) Validate() error {
	if cs == nil {
		return fmt.Errorf("core: nil crash state")
	}
	if cs.Image == nil {
		return fmt.Errorf("core: crash state has no persisted image")
	}
	for i, h := range cs.Headers {
		if h == nil {
			return fmt.Errorf("core: LH-WPQ header %d is nil", i)
		}
		if len(h.DataLines) != len(h.LogLines) {
			return fmt.Errorf("core: LH-WPQ header %d for %s: %d data lines vs %d log lines",
				i, h.RID, len(h.DataLines), len(h.LogLines))
		}
		if len(h.DataLines) > memdev.RecordEntries {
			return fmt.Errorf("core: LH-WPQ header %d for %s holds %d entries (max %d)",
				i, h.RID, len(h.DataLines), memdev.RecordEntries)
		}
		if len(h.EntryCRCs) != 0 && len(h.EntryCRCs) != len(h.DataLines) {
			return fmt.Errorf("core: LH-WPQ header %d for %s: %d entry CRCs vs %d entries",
				i, h.RID, len(h.EntryCRCs), len(h.DataLines))
		}
	}
	for _, ext := range cs.Logs {
		if ext.Size == 0 || ext.Size%wal.RecordBytes != 0 {
			return fmt.Errorf("core: thread %d log size %d is not a whole number of records", ext.Thread, ext.Size)
		}
		if ext.Base+ext.Size < ext.Base {
			return fmt.Errorf("core: thread %d log extent overflows the address space", ext.Thread)
		}
		if ext.Tail < ext.Head || ext.Tail-ext.Head > ext.Size {
			return fmt.Errorf("core: thread %d log offsets head %d / tail %d inconsistent with size %d",
				ext.Thread, ext.Head, ext.Tail, ext.Size)
		}
	}
	return nil
}
