package machine

import (
	"asap/internal/snapshot"
)

// StateAppender is anything that can contribute sections to a snapshot
// digest. Persistence schemes implement it to have their bookkeeping
// audited at checkpoint boundaries; schemes that don't are simply not
// digested (their effects still show up through cache/mem/stats state).
type StateAppender interface {
	AppendState(*snapshot.Enc)
}

// AppendState digests every machine component in a fixed order: kernel,
// caches, memory system, heap, stats. Must be called from kernel context
// (an event callback), when no simulated thread is mid-step.
func (m *Machine) AppendState(e *snapshot.Enc) {
	m.K.AppendState(e)
	m.Caches.AppendState(e)
	m.Fabric.AppendState(e)
	m.Heap.AppendState(e)
	m.St.AppendState(e)
}

// Checkpointer takes periodic consistent cuts of a running machine. It
// schedules a boundary event every Every cycles; each boundary digests the
// machine (and the scheme, if it implements StateAppender) into a
// snapshot.Snap and hands it to OnBoundary. OnBoundary returning false
// halts the kernel at the boundary — that is how resume-by-replay stops a
// replayed run exactly at its checkpoint cycle, and how crash injection
// kills a run at a snapshot boundary.
//
// Boundary events are scheduling-neutral: an event at cycle B fires only
// once every runnable candidate's effective time is ≥ B, so advancing the
// kernel clock to B changes no subsequent scheduling comparison (the PR4
// boundary-neutrality argument). The one hazard is termination: events
// keep Run alive even with no threads, so the checkpointer stops
// rescheduling once the kernel has no live threads.
type Checkpointer struct {
	M      *Machine
	Scheme StateAppender // optional scheme digest
	// Identity names the run (canonical config encoding); Seed is the
	// workload seed. Both are stamped into every Snap so snapshots from
	// different runs can never be confused for one another.
	Identity string
	Seed     int64
	// Every is the boundary period in cycles; zero disables Arm.
	Every uint64
	// OnBoundary receives each snapshot; returning false halts the run.
	// A nil OnBoundary records snapshots without intervening.
	OnBoundary func(snapshot.Snap) bool

	// Snaps accumulates every boundary snapshot taken, in cycle order.
	Snaps []snapshot.Snap
}

// Arm schedules the first boundary at the next multiple of Every strictly
// after the kernel's current time. Call before Kernel.Run.
func (c *Checkpointer) Arm() {
	if c == nil || c.Every == 0 {
		return
	}
	c.schedule(c.next(c.M.K.Now()))
}

// next returns the first multiple of Every strictly after now.
func (c *Checkpointer) next(now uint64) uint64 {
	return (now/c.Every + 1) * c.Every
}

func (c *Checkpointer) schedule(at uint64) {
	c.M.K.Schedule(at, func() {
		snap := c.take()
		c.Snaps = append(c.Snaps, snap)
		if c.OnBoundary != nil && !c.OnBoundary(snap) {
			c.M.K.Halt()
			return
		}
		// Stop once the workload has wound down: with no live threads a
		// pending event would keep Run spinning forever.
		if c.M.K.LiveThreads() == 0 {
			return
		}
		c.schedule(c.next(c.M.K.Now()))
	})
}

// take digests the machine right now. Must run in kernel context; the
// boundary event guarantees that for scheduled checkpoints.
func (c *Checkpointer) take() snapshot.Snap {
	e := snapshot.NewEnc()
	c.M.AppendState(e)
	if c.Scheme != nil {
		c.Scheme.AppendState(e)
	}
	return snapshot.Snap{
		Version:  snapshot.FormatVersion,
		Identity: c.Identity,
		Seed:     c.Seed,
		Cycle:    c.M.K.Now(),
		Sections: e.Sections(),
	}
}
