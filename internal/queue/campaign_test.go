package queue

import (
	"testing"
)

// TestCampaign is the headline robustness claim: hundreds of seeded
// cases of daemon kill -9 (torn journal tails included) and injected
// worker crashes, every one converging with zero lost jobs, zero double
// completions, and artifacts byte-identical to serial runs of the same
// specs.
func TestCampaign(t *testing.T) {
	cases := 200
	if testing.Short() {
		cases = 40
	}
	sum, err := RunCampaign(CampaignConfig{
		Cases: cases,
		Seed:  20260808,
		Dir:   t.TempDir(),
	})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	for i, f := range sum.Failures {
		if i >= 20 {
			t.Errorf("... and %d more failures", len(sum.Failures)-i)
			break
		}
		t.Error(f)
	}
	if sum.Lost != 0 || sum.Doubled != 0 || sum.Mismatched != 0 {
		t.Fatalf("campaign verdict: lost=%d doubled=%d mismatched=%d", sum.Lost, sum.Doubled, sum.Mismatched)
	}
	if sum.DaemonKills == 0 {
		t.Fatal("campaign exercised zero daemon kills; the seed schedule is broken")
	}
	if sum.WorkerPanics == 0 {
		t.Fatal("campaign exercised zero worker panics; the seed schedule is broken")
	}
	if sum.Redelivered == 0 {
		t.Fatal("campaign saw zero redeliveries; crashes are not being recovered through the lease path")
	}
	t.Logf("campaign: %d cases, %d daemon kills, %d worker panics, %d redeliveries",
		sum.Cases, sum.DaemonKills, sum.WorkerPanics, sum.Redelivered)
}

// TestCampaignNoJournalControl is the negative control: the identical
// campaign with the journal disabled must observably lose jobs across a
// kill. A checker that cannot see this loss would also rubber-stamp a
// broken journal.
func TestCampaignNoJournalControl(t *testing.T) {
	cases := 20
	if testing.Short() {
		cases = 8
	}
	sum, err := RunCampaign(CampaignConfig{
		Cases:    cases,
		Seed:     20260808,
		Volatile: true,
		Dir:      t.TempDir(),
	})
	if err != nil {
		t.Fatalf("control campaign: %v", err)
	}
	if sum.Bad() {
		t.Fatalf("control campaign hit non-loss failures: %v", sum.Failures)
	}
	if sum.LossDetectedCases == 0 {
		t.Fatal("no-journal control lost nothing: the checker cannot detect the failure the journal prevents")
	}
	t.Logf("control: %d/%d cases observably lost jobs without the journal (%d jobs total)",
		sum.LossDetectedCases, sum.Cases, sum.Lost)
}
