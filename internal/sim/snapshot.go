package sim

import "asap/internal/snapshot"

// AppendState digests the kernel's scheduling state: the clock, the
// sequence counter, every thread's (id, name, clock, state), the waiter
// set, and the pending event queue's (at, seq) pairs. Event callbacks are
// closures and cannot be digested; their schedule is, which is what the
// equivalence argument needs — two runs with identical (at, seq) queues
// and identical thread states make identical scheduling decisions
// (DESIGN.md §10, §15).
//
// AppendState must be called from kernel context (an event callback or
// between Run steps): no simulated thread is mid-step, so every thread is
// parked in exactly one scheduling structure.
func (k *Kernel) AppendState(e *snapshot.Enc) {
	e.Section("kernel")
	e.U64(k.now)
	e.U64(k.seq)
	e.Bool(k.halted)
	e.I64(int64(len(k.threads)))
	for _, t := range k.threads {
		e.I64(int64(t.id))
		e.Str(t.name)
		e.U64(t.now)
		e.U64(uint64(t.state))
	}
	e.I64(int64(len(k.waiters)))
	for _, w := range k.waiters {
		e.I64(int64(w.id))
	}
	e.I64(int64(k.events.len()))
	for _, ev := range k.events.heap {
		e.U64(ev.at)
		e.U64(ev.seq)
	}
}

// LiveThreads returns the number of threads still participating in
// scheduling (runnable or blocked). Checkpointers use it to stop
// rescheduling boundary events once the simulation is winding down.
func (k *Kernel) LiveThreads() int {
	return k.runq.len() + len(k.waiters)
}
