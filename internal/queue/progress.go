package queue

import (
	"context"
	"sync"

	"asap/internal/report"
)

// ProgressEvent is one per-job progress update, served both as the
// /progress poll body and as SSE event data. Running updates carry the
// executor's case counters (a report.Snapshot — the same sliding-window
// rate/ETA implementation the CLI progress lines use); the terminal
// event carries the job's verdict.
type ProgressEvent struct {
	JobID    uint64  `json:"job_id"`
	Seq      uint64  `json:"seq"`
	State    string  `json:"state"` // running | done | failed | dead | released
	Done     int     `json:"done"`
	Total    int     `json:"total"`
	Failed   int     `json:"failed"`
	Current  string  `json:"current,omitempty"`
	Rate     float64 `json:"rate"`
	ETASec   float64 `json:"eta_sec"`
	Terminal bool    `json:"terminal"`
	Hash     string  `json:"hash,omitempty"`
	Manifest string  `json:"manifest,omitempty"`
	Error    string  `json:"error,omitempty"`
}

// progressKey carries the per-job progress publisher into executor
// contexts, exactly like the heartbeat and artifact-sink plumbing.
type progressKey struct{}

// WithProgressPublisher attaches a progress publisher to ctx.
func WithProgressPublisher(ctx context.Context, fn func(report.Snapshot)) context.Context {
	return context.WithValue(ctx, progressKey{}, fn)
}

// PublishProgress forwards a case-counter snapshot to the daemon
// running this job. Outside a daemon it is a no-op.
func PublishProgress(ctx context.Context, s report.Snapshot) {
	if fn, ok := ctx.Value(progressKey{}).(func(report.Snapshot)); ok {
		fn(s)
	}
}

// subscriberBuf is each subscriber's channel depth. Slow consumers lose
// intermediate updates (drop-oldest), never the terminal event.
const subscriberBuf = 16

// progressHub fans per-job progress events out to HTTP subscribers and
// retains the latest event per job for poll-style readers.
type progressHub struct {
	mu   sync.Mutex
	subs map[uint64]map[chan ProgressEvent]struct{}
	last map[uint64]ProgressEvent
	seq  map[uint64]uint64
}

func newProgressHub() *progressHub {
	return &progressHub{
		subs: make(map[uint64]map[chan ProgressEvent]struct{}),
		last: make(map[uint64]ProgressEvent),
		seq:  make(map[uint64]uint64),
	}
}

// publish stamps the sequence number, retains the event as the job's
// latest, and offers it to every subscriber. Full subscriber buffers
// drop their oldest pending event to make room, so a stalled SSE client
// always converges on the newest state and cannot miss the terminal.
func (h *progressHub) publish(ev ProgressEvent) {
	h.mu.Lock()
	h.seq[ev.JobID]++
	ev.Seq = h.seq[ev.JobID]
	h.last[ev.JobID] = ev
	for ch := range h.subs[ev.JobID] {
		for {
			select {
			case ch <- ev:
			default:
				select {
				case <-ch: // drop oldest, retry
					continue
				default:
				}
			}
			break
		}
	}
	h.mu.Unlock()
}

// latest returns the most recent event for a job, if any.
func (h *progressHub) latest(id uint64) (ProgressEvent, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	ev, ok := h.last[id]
	return ev, ok
}

// subscribe registers a listener for one job's events. The latest known
// event (if any) is pre-queued so late subscribers — including ones
// arriving after the job finished — immediately see current state.
// The returned cancel must be called exactly once.
func (h *progressHub) subscribe(id uint64) (<-chan ProgressEvent, func()) {
	ch := make(chan ProgressEvent, subscriberBuf)
	h.mu.Lock()
	if h.subs[id] == nil {
		h.subs[id] = make(map[chan ProgressEvent]struct{})
	}
	h.subs[id][ch] = struct{}{}
	if ev, ok := h.last[id]; ok {
		ch <- ev
	}
	h.mu.Unlock()
	return ch, func() {
		h.mu.Lock()
		delete(h.subs[id], ch)
		if len(h.subs[id]) == 0 {
			delete(h.subs, id)
		}
		h.mu.Unlock()
	}
}
