package cache

import (
	"sort"

	"asap/internal/arch"
)

// Meta is the tag-extension state of one cache line (§4.6, Figure 3 ❷).
// Hardware replicates these bits next to every cached copy and keeps them
// coherent; the simulator keeps the single post-coherence value per line.
type Meta struct {
	line arch.LineAddr

	// PBit marks the line as persistent-memory data; set from the page
	// table bit when the line is brought into the cache.
	PBit bool
	// Locks counts LPOs in flight for the line. The paper describes a
	// single LockBit set between initiating a line's LPO and the LPO's
	// completion (§4.6.1), which suffices when one region at a time logs
	// a line; with regions on different threads first-writing the same
	// line concurrently, each in-flight LPO must keep the line pinned —
	// otherwise the first acceptance would unlock the line and let a
	// newer region's DPO persist a value whose undo entry is still in
	// flight (and lost at a crash). The hardware analogue is a small
	// saturating counter in place of the bit. While Locks > 0 the line
	// may be neither written back (DPO) nor evicted.
	Locks int
	// Owner is the atomic region that last wrote the line, or NoRID.
	Owner arch.RID

	// holders is a bitmask of cores whose private (L1/L2) caches hold the
	// line; used for write invalidations.
	holders uint64
}

// Line returns the line address this metadata describes.
func (m *Meta) Line() arch.LineAddr { return m.line }

// Locked reports whether any LPO for the line is still in flight.
func (m *Meta) Locked() bool { return m.Locks > 0 }

// Lock pins the line for one more in-flight LPO.
func (m *Meta) Lock() { m.Locks++ }

// Unlock releases one in-flight LPO's pin.
func (m *Meta) Unlock() {
	if m.Locks <= 0 {
		panic("cache: unlock of a line with no LPO in flight")
	}
	m.Locks--
}

// Handle is the compact name of one line's Meta slot in the flat store:
// an index into the table's chunked arena. It is what a hardware tag
// extension would carry instead of a full line address.
type Handle int32

// NoHandle marks "no metadata allocated for this line".
const NoHandle Handle = -1

// Meta slots are allocated from fixed-size chunks so that *Meta pointers
// stay valid forever (the engine, the schemes, and the cache slots all
// hold them) while the bulk storage stays contiguous and map-free.
const (
	metaChunkShift = 12 // 4096 lines per chunk
	metaChunkSize  = 1 << metaChunkShift
	metaChunkMask  = metaChunkSize - 1
)

// Table is the line-metadata registry for the whole hierarchy. Metadata
// lives in a flat chunked arena indexed by Handle; the map exists only to
// translate a line address to its handle on the cold first-touch/miss
// path. Hot paths (cache hits, victim scans, DPO eligibility) never touch
// the map: they reach the Meta through a pointer cached in the cache slot
// or in the engine's per-line structures.
type Table struct {
	chunks       [][]Meta
	n            int
	byLine       map[arch.LineAddr]Handle
	isPersistent func(arch.LineAddr) bool
}

// NewTable builds a metadata table. isPersistent is the page-table lookup
// that seeds the PBit on first touch.
func NewTable(isPersistent func(arch.LineAddr) bool) *Table {
	return &Table{byLine: make(map[arch.LineAddr]Handle), isPersistent: isPersistent}
}

// At returns the metadata named by handle h. The pointer is stable for the
// lifetime of the table.
func (t *Table) At(h Handle) *Meta {
	return &t.chunks[h>>metaChunkShift][h&metaChunkMask]
}

// HandleOf returns the handle for line, or NoHandle if the line has never
// been touched.
func (t *Table) HandleOf(line arch.LineAddr) Handle {
	if h, ok := t.byLine[line]; ok {
		return h
	}
	return NoHandle
}

// Len returns the number of lines with allocated metadata.
func (t *Table) Len() int { return t.n }

// GetH returns the handle and metadata for line, allocating a slot (with
// the PBit seeded from the page table) on first touch.
func (t *Table) GetH(line arch.LineAddr) (Handle, *Meta) {
	if h, ok := t.byLine[line]; ok {
		return h, t.At(h)
	}
	if t.n>>metaChunkShift == len(t.chunks) {
		t.chunks = append(t.chunks, make([]Meta, metaChunkSize))
	}
	h := Handle(t.n)
	t.n++
	m := t.At(h)
	m.line = line
	m.PBit = t.isPersistent(line)
	t.byLine[line] = h
	return h, m
}

// Get returns the metadata for line, creating it (with the PBit seeded from
// the page table) on first touch.
func (t *Table) Get(line arch.LineAddr) *Meta {
	_, m := t.GetH(line)
	return m
}

// Peek returns the metadata for line without creating it.
func (t *Table) Peek(line arch.LineAddr) *Meta {
	if h, ok := t.byLine[line]; ok {
		return t.At(h)
	}
	return nil
}

// visit calls fn for every allocated Meta in allocation (handle) order.
func (t *Table) visit(fn func(m *Meta)) {
	left := t.n
	for _, chunk := range t.chunks {
		n := len(chunk)
		if left < n {
			n = left
		}
		for i := 0; i < n; i++ {
			fn(&chunk[i])
		}
		left -= n
	}
}

// LockedCount returns how many lines are currently pinned by in-flight
// LPOs (diagnostics and invariant tests).
func (t *Table) LockedCount() int {
	n := 0
	t.visit(func(m *Meta) {
		if m.Locked() {
			n++
		}
	})
	return n
}

// LocksTotal returns the sum of in-flight-LPO pins across all lines. The
// invariant engine checks it against the engine's own in-flight counter.
func (t *Table) LocksTotal() int {
	n := 0
	t.visit(func(m *Meta) { n += m.Locks })
	return n
}

// VisitLocked calls fn for every line currently pinned by an in-flight
// LPO, in ascending line order (deterministic violation reports).
func (t *Table) VisitLocked(fn func(m *Meta)) {
	locked := make([]*Meta, 0, 8)
	t.visit(func(m *Meta) {
		if m.Locked() {
			locked = append(locked, m)
		}
	})
	sort.Slice(locked, func(i, j int) bool { return locked[i].line < locked[j].line })
	for _, m := range locked {
		fn(m)
	}
}
