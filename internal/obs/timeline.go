package obs

import (
	"encoding/json"
	"io"
	"sort"

	"asap/internal/arch"
	"asap/internal/trace"
)

// TimelineEvent is one entry of the Chrome/Perfetto trace-event format
// (ph "X" slices, "i" instants, "b"/"e" async pairs, "C" counters, "M"
// metadata). Timestamps are simulated cycles passed through the format's
// microsecond field, so 1 "us" on the Perfetto axis is 1 cycle.
type TimelineEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    uint64         `json:"ts"`
	Dur   uint64         `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	ID    uint64         `json:"id,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// Timeline is the top-level trace.json document.
type Timeline struct {
	TraceEvents     []TimelineEvent `json:"traceEvents"`
	DisplayTimeUnit string          `json:"displayTimeUnit"`
}

// regionTimes collects one region's lifecycle instants from the ring.
type regionTimes struct {
	rid                arch.RID
	begin, end, commit uint64
	hasBegin, hasEnd   bool
	hasCommit          bool
}

// BuildTimeline assembles a Perfetto timeline out of the protocol events
// retained in the trace ring, the profiler's wait spans, and the
// recorder's gauge samples. Any of the three sources may be nil/empty.
//
// Track layout: pid 0 holds one track per simulated thread carrying the
// region slices (begin→end) and stall spans, async "commit-lag" arrows
// from asap_end to commit, instant marks for persist-operation events,
// and one counter track per recorder gauge.
func BuildTimeline(events []trace.Event, prof *Profiler, rec *Recorder) *Timeline {
	tl := &Timeline{DisplayTimeUnit: "ms", TraceEvents: []TimelineEvent{}}
	add := func(e TimelineEvent) { tl.TraceEvents = append(tl.TraceEvents, e) }

	add(TimelineEvent{Name: "process_name", Ph: "M", Args: map[string]any{"name": "asap-sim"}})
	for _, tp := range prof.Threads() {
		add(TimelineEvent{Name: "thread_name", Ph: "M", Tid: tp.ID,
			Args: map[string]any{"name": tp.Name}})
	}

	// Region lifecycle slices. Regions whose begin was evicted from the
	// ring are skipped rather than drawn with a fabricated start.
	byRID := make(map[arch.RID]*regionTimes)
	order := []arch.RID{}
	get := func(rid arch.RID) *regionTimes {
		rt := byRID[rid]
		if rt == nil {
			rt = &regionTimes{rid: rid}
			byRID[rid] = rt
			order = append(order, rid)
		}
		return rt
	}
	for _, e := range events {
		switch e.Kind {
		case trace.RegionBegin:
			rt := get(e.RID)
			rt.begin, rt.hasBegin = e.At, true
		case trace.RegionEnd:
			rt := get(e.RID)
			rt.end, rt.hasEnd = e.At, true
		case trace.RegionCommit:
			rt := get(e.RID)
			rt.commit, rt.hasCommit = e.At, true
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		a, b := byRID[order[i]], byRID[order[j]]
		if a.begin != b.begin {
			return a.begin < b.begin
		}
		return a.rid < b.rid
	})
	for _, rid := range order {
		rt := byRID[rid]
		if rt.hasBegin && rt.hasEnd {
			add(TimelineEvent{Name: rid.String(), Cat: "region", Ph: "X",
				Ts: rt.begin, Dur: rt.end - rt.begin, Tid: rid.Thread()})
		}
		if rt.hasEnd && rt.hasCommit && rt.commit > rt.end {
			add(TimelineEvent{Name: "commit-lag", Cat: "commit", Ph: "b",
				Ts: rt.end, Tid: rid.Thread(), ID: uint64(rid)})
			add(TimelineEvent{Name: "commit-lag", Cat: "commit", Ph: "e",
				Ts: rt.commit, Tid: rid.Thread(), ID: uint64(rid)})
		}
	}

	// Stall spans on the thread tracks. Enter/Exit nests strictly, so
	// Perfetto renders inner waits inside outer ones.
	spans, _ := prof.Spans()
	for _, s := range spans {
		add(TimelineEvent{Name: s.Bucket.String(), Cat: "stall", Ph: "X",
			Ts: s.From, Dur: s.To - s.From, Tid: s.TID})
	}

	// Persist-operation and bookkeeping instants.
	for _, e := range events {
		switch e.Kind {
		case trace.RegionBegin, trace.RegionEnd, trace.RegionCommit:
			continue
		}
		args := map[string]any{"rid": e.RID.String()}
		if e.Line != 0 {
			args["line"] = uint64(e.Line)
		}
		if e.Aux != 0 {
			args["aux"] = e.Aux
		}
		add(TimelineEvent{Name: e.Kind.String(), Cat: "persist", Ph: "i",
			Ts: e.At, Tid: e.RID.Thread(), Scope: "t", Args: args})
	}

	// Gauge counter tracks.
	names := rec.Names()
	for _, s := range rec.Samples() {
		for i, v := range s.Values {
			add(TimelineEvent{Name: names[i], Cat: "gauge", Ph: "C", Ts: s.At,
				Args: map[string]any{"value": v}})
		}
	}
	return tl
}

// WriteTimeline writes BuildTimeline's output as JSON.
func WriteTimeline(w io.Writer, events []trace.Event, prof *Profiler, rec *Recorder) error {
	return json.NewEncoder(w).Encode(BuildTimeline(events, prof, rec))
}
