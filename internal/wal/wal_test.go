package wal

import (
	"encoding/binary"
	"errors"
	"reflect"
	"testing"
	"testing/quick"

	"asap/internal/arch"
	"asap/internal/heap"
)

func TestAllocRecordContiguity(t *testing.T) {
	h := heap.New()
	l := NewThreadLog(h, 4*RecordBytes)
	hdr, end, ok := l.AllocRecord()
	if !ok {
		t.Fatal("alloc failed on empty log")
	}
	if uint64(hdr) != l.Base() {
		t.Fatalf("first header at %#x, want base %#x", hdr, l.Base())
	}
	if end != RecordBytes {
		t.Fatalf("end = %d, want %d", end, RecordBytes)
	}
	for i := 0; i < RecordEntries; i++ {
		want := arch.LineAddr(uint64(hdr) + uint64((i+1)*arch.LineSize))
		if got := EntryLine(hdr, i); got != want {
			t.Fatalf("EntryLine(%d) = %#x, want %#x", i, got, want)
		}
	}
}

func TestAllocUntilFullThenFree(t *testing.T) {
	h := heap.New()
	l := NewThreadLog(h, 2*RecordBytes)
	var ends []uint64
	for i := 0; i < 2; i++ {
		_, end, ok := l.AllocRecord()
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		ends = append(ends, end)
	}
	if _, _, ok := l.AllocRecord(); ok {
		t.Fatal("alloc must fail when full")
	}
	l.FreeUpTo(ends[0])
	if _, _, ok := l.AllocRecord(); !ok {
		t.Fatal("alloc must succeed after freeing one record")
	}
}

func TestCircularReuseSameAddresses(t *testing.T) {
	h := heap.New()
	l := NewThreadLog(h, 2*RecordBytes)
	h1, e1, _ := l.AllocRecord()
	_, e2, _ := l.AllocRecord()
	l.FreeUpTo(e1)
	l.FreeUpTo(e2)
	h3, _, ok := l.AllocRecord()
	if !ok || h3 != h1 {
		t.Fatalf("wrapped alloc = %#x, want reuse of %#x", h3, h1)
	}
}

func TestGrowAfterOverflow(t *testing.T) {
	h := heap.New()
	l := NewThreadLog(h, RecordBytes)
	l.AllocRecord()
	if _, _, ok := l.AllocRecord(); ok {
		t.Fatal("expected overflow")
	}
	oldBase := l.Base()
	l.Grow()
	if l.Size() != 2*RecordBytes {
		t.Fatalf("grown size = %d", l.Size())
	}
	if l.Base() == oldBase {
		t.Fatal("grow must allocate a fresh buffer")
	}
	if l.Overflows() != 1 {
		t.Fatalf("overflows = %d", l.Overflows())
	}
	if _, _, ok := l.AllocRecord(); !ok {
		t.Fatal("alloc must work after grow")
	}
}

func TestFreeIdempotentAndMonotone(t *testing.T) {
	h := heap.New()
	l := NewThreadLog(h, 4*RecordBytes)
	_, e1, _ := l.AllocRecord()
	_, e2, _ := l.AllocRecord()
	l.FreeUpTo(e2)
	l.FreeUpTo(e1) // going backwards must be a no-op
	if l.Head() != e2 {
		t.Fatalf("head = %d, want %d", l.Head(), e2)
	}
	l.FreeUpTo(e2 + 100*RecordBytes) // cannot free past tail
	if l.Head() != l.Tail() {
		t.Fatal("head clamped to tail")
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	f := func(tid uint8, local uint32, rawLines []uint32) bool {
		if local == 0 {
			local = 1
		}
		if len(rawLines) > RecordEntries {
			rawLines = rawLines[:RecordEntries]
		}
		if len(rawLines) == 0 {
			rawLines = []uint32{1}
		}
		rid := arch.MakeRID(int(tid), uint64(local))
		var lines []arch.LineAddr
		for _, r := range rawLines {
			lines = append(lines, arch.LineAddr(uint64(r)*arch.LineSize))
		}
		buf := EncodeHeader(rid, lines)
		gotRID, gotLines, ok := DecodeHeader(buf)
		return ok && gotRID == rid && reflect.DeepEqual(gotLines, lines)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeRejectsMalformedHeaders is the table of malformed header
// lines DecodeHeader must reject — and, via ParseHeader, classify. Before
// the checksum was added, any garbage line with 0xA5 at byte 8 and a
// plausible count parsed as a valid header.
func TestDecodeRejectsMalformedHeaders(t *testing.T) {
	valid := func() []byte {
		return EncodeHeaderChecked(arch.MakeRID(2, 9), []arch.LineAddr{64, 128, 192}, 0xDEADBEEF)
	}
	cases := []struct {
		name    string
		line    func() []byte
		wantErr error
	}{
		{"zero line", func() []byte { return make([]byte, arch.LineSize) }, ErrNotHeader},
		{"short line", func() []byte { return []byte{1, 2, 3} }, ErrShortLine},
		{"magic only, garbage elsewhere", func() []byte {
			b := make([]byte, arch.LineSize)
			b[8] = 0xA5
			b[0] = 7 // plausible RID
			b[9] = 2 // plausible count
			return b
		}, ErrChecksum},
		{"count zero", func() []byte {
			b := valid()
			b[9] = 0
			crcPatch(b)
			return b
		}, ErrBadCount},
		{"count too large", func() []byte {
			b := valid()
			b[9] = RecordEntries + 1
			crcPatch(b)
			return b
		}, ErrBadCount},
		{"no-region RID", func() []byte {
			b := valid()
			for i := 0; i < 8; i++ {
				b[i] = 0
			}
			crcPatch(b)
			return b
		}, ErrBadRID},
		{"reserved byte 14 set", func() []byte {
			b := valid()
			b[14] = 1
			crcPatch(b)
			return b
		}, ErrReserved},
		{"reserved byte 15 set", func() []byte {
			b := valid()
			b[15] = 0x55
			crcPatch(b)
			return b
		}, ErrReserved},
		{"unknown flag bits", func() []byte {
			b := valid()
			b[62] |= 0x80
			crcPatch(b)
			return b
		}, ErrReserved},
		{"reserved byte 63 set", func() []byte {
			b := valid()
			b[63] = 0xFF
			crcPatch(b)
			return b
		}, ErrReserved},
		{"flipped RID bit", func() []byte {
			b := valid()
			b[3] ^= 0x10
			return b
		}, ErrChecksum},
		{"flipped entry-address bit", func() []byte {
			b := valid()
			b[20] ^= 0x01
			return b
		}, ErrChecksum},
		{"torn mid-line (tail zeroed)", func() []byte {
			b := valid()
			for i := 24; i < arch.LineSize; i++ {
				b[i] = 0
			}
			return b
		}, ErrChecksum},
		{"flipped payload-CRC bit", func() []byte {
			b := valid()
			b[59] ^= 0x04
			return b
		}, ErrChecksum},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			line := tc.line()
			if _, _, ok := DecodeHeader(line); ok {
				t.Fatal("malformed header accepted")
			}
			if _, err := ParseHeader(line); !errors.Is(err, tc.wantErr) {
				t.Fatalf("ParseHeader error = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

// crcPatch recomputes the header CRC in place so a test can exercise the
// non-checksum validation rules in isolation.
func crcPatch(b []byte) {
	binary.LittleEndian.PutUint32(b[crcOff:], headerChecksum(b))
}

func TestPayloadCRCRoundTrip(t *testing.T) {
	crc := ChecksumUpdate(0, make([]byte, arch.LineSize))
	crc = ChecksumUpdate(crc, []byte{1, 2, 3})
	buf := EncodeHeaderChecked(arch.MakeRID(1, 4), []arch.LineAddr{256}, crc)
	h, err := ParseHeader(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !h.HasPayloadCRC || h.PayloadCRC != crc {
		t.Fatalf("payload CRC = (%v, %#x), want (true, %#x)", h.HasPayloadCRC, h.PayloadCRC, crc)
	}
	plain, err := ParseHeader(EncodeHeader(arch.MakeRID(1, 4), []arch.LineAddr{256}))
	if err != nil {
		t.Fatal(err)
	}
	if plain.HasPayloadCRC {
		t.Fatal("EncodeHeader must not claim a payload CRC")
	}
}

// TestLegacyDecodeAcceptsWhatStrictRejects pins the exact weakness the
// checksum closes: garbage with a magic byte and plausible count parses
// under the legacy decode but not the strict one.
func TestLegacyDecodeAcceptsWhatStrictRejects(t *testing.T) {
	b := make([]byte, arch.LineSize)
	b[0] = 9 // nonzero RID
	b[8] = 0xA5
	b[9] = 3
	if _, _, ok := DecodeHeaderLegacy(b); !ok {
		t.Fatal("legacy decode should accept the garbage line")
	}
	if _, _, ok := DecodeHeader(b); ok {
		t.Fatal("strict decode must reject the garbage line")
	}
}

func TestLiveRecordSlots(t *testing.T) {
	h := heap.New()
	l := NewThreadLog(h, 3*RecordBytes)
	var want []arch.LineAddr
	for i := 0; i < 3; i++ {
		hdr, _, ok := l.AllocRecord()
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		want = append(want, hdr)
	}
	got := LiveRecordSlots(l.Base(), l.Size(), l.Head(), l.Tail())
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("live slots = %v, want %v", got, want)
	}

	// Free the first record: its slot leaves the live set.
	l.FreeUpTo(uint64(RecordBytes))
	got = LiveRecordSlots(l.Base(), l.Size(), l.Head(), l.Tail())
	if !reflect.DeepEqual(got, want[1:]) {
		t.Fatalf("after free, live slots = %v, want %v", got, want[1:])
	}

	// Wrap: the freed slot is reused and appears again, after the others.
	hdr, _, ok := l.AllocRecord()
	if !ok || hdr != want[0] {
		t.Fatalf("wrapped alloc = %#x, want %#x", hdr, want[0])
	}
	got = LiveRecordSlots(l.Base(), l.Size(), l.Head(), l.Tail())
	if !reflect.DeepEqual(got, append(append([]arch.LineAddr(nil), want[1:]...), want[0])) {
		t.Fatalf("after wrap, live slots = %v", got)
	}

	// Malformed inputs must not scan unboundedly.
	if s := LiveRecordSlots(0, 0, 0, 1); s != nil {
		t.Fatalf("size 0 yielded slots %v", s)
	}
	if s := LiveRecordSlots(0, RecordBytes, 10, 5); s != nil {
		t.Fatalf("tail<head yielded slots %v", s)
	}
	if s := LiveRecordSlots(0, RecordBytes, 0, 10*RecordBytes); s != nil {
		t.Fatalf("live>size yielded slots %v", s)
	}
}

// TestLiveRecordSlotsMirrorsWrapSkip checks the wrap-skip rule: when the
// tail skips the remainder of the buffer, the skipped bytes host no slot.
func TestLiveRecordSlotsMirrorsWrapSkip(t *testing.T) {
	h := heap.New()
	l := NewThreadLog(h, 2*RecordBytes)
	_, e1, _ := l.AllocRecord()
	l.AllocRecord()
	l.FreeUpTo(e1)
	// One live record at slot 1; allocate again — wraps to slot 0.
	hdr, _, ok := l.AllocRecord()
	if !ok {
		t.Fatal("wrap alloc failed")
	}
	got := LiveRecordSlots(l.Base(), l.Size(), l.Head(), l.Tail())
	want := []arch.LineAddr{arch.LineAddr(l.Base() + RecordBytes), hdr}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("live slots = %v, want %v", got, want)
	}
}

func TestEncodeTooManyEntriesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	lines := make([]arch.LineAddr, RecordEntries+1)
	EncodeHeader(arch.MakeRID(0, 1), lines)
}

func TestHighAddressSurvives48BitPacking(t *testing.T) {
	rid := arch.MakeRID(7, 9)
	line := arch.LineAddr(uint64(1)<<45 + 64)
	buf := EncodeHeader(rid, []arch.LineAddr{line})
	_, lines, ok := DecodeHeader(buf)
	if !ok || lines[0] != line {
		t.Fatalf("got %#x, want %#x", lines[0], line)
	}
}
