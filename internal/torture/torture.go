// Package torture is the adversarial robustness harness: it drives
// randomized, seeded schedules of atomic-region operations on machines
// whose ASAP structures are squeezed to their minimum sizes (Dependence
// List of 2, CL List of 1, LH-WPQ depth 1, a saturating Bloom filter, a
// two-record log buffer), with the invariant engine attached at step
// granularity, the forward-progress watchdog armed, and — for crash cases
// — the fault injector installed and a power failure scheduled at an
// arbitrary cycle. Every case ends in an explicit verdict; a violation
// shrinks to a minimal schedule by ddmin replay.
//
// The schedules are data-race-free by construction (slots are guarded by
// striped mutexes, always acquired in stripe order), so a dependence cycle
// or stalled commit observed under them is a protocol bug, not a workload
// artifact. Transfers move value between slots inside one region, making
// "the slot values sum to the initial total" a crash-recoverable invariant
// any consistent state must satisfy.
package torture

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"

	"asap"
	"asap/internal/cache"
	"asap/internal/core"
	"asap/internal/faults"
	"asap/internal/invariant"
	"asap/internal/machine"
	"asap/internal/recovery"
	"asap/internal/sim"
	"asap/internal/stats"
)

// Schedule shape: fixed so cases serialize compactly.
const (
	// Slots is the shared persistent working set (one counter per slot).
	Slots = 24
	// Stripes is the lock-stripe count; slot i is guarded by stripe i%Stripes.
	Stripes = 4
	// InitialSlotValue funds each slot so the sum invariant is nontrivial.
	InitialSlotValue = 1000
)

// Op is one step of a torture schedule, executed by its owning thread in
// schedule order.
type Op struct {
	Thread int    `json:"t"`
	Kind   string `json:"k"`
	A      int    `json:"a,omitempty"`
	B      int    `json:"b,omitempty"`
	Arg    uint64 `json:"n,omitempty"`
}

// The op kinds.
const (
	// OpXfer moves one unit from slot A to slot B in a single region.
	OpXfer = "xfer"
	// OpRead loads slot A in a read-only region.
	OpRead = "read"
	// OpBlob writes Arg bytes to the thread's private scratch in one
	// region (multi-line records; Arg is capped at the scratch size).
	OpBlob = "blob"
	// OpSpin advances the thread clock Arg cycles outside any region.
	OpSpin = "spin"
	// OpFence executes asap_fence.
	OpFence = "fence"
)

func (o Op) String() string {
	switch o.Kind {
	case OpXfer:
		return fmt.Sprintf("t%d xfer %d->%d", o.Thread, o.A, o.B)
	case OpRead:
		return fmt.Sprintf("t%d read %d", o.Thread, o.A)
	case OpBlob:
		return fmt.Sprintf("t%d blob %dB", o.Thread, o.Arg)
	case OpSpin:
		return fmt.Sprintf("t%d spin %d", o.Thread, o.Arg)
	case OpFence:
		return fmt.Sprintf("t%d fence", o.Thread)
	}
	return fmt.Sprintf("t%d %s", o.Thread, o.Kind)
}

// Generate derives a schedule deterministically from (seed, threads, ops):
// ops operations per thread, flattened thread-major. Any subsequence of a
// generated schedule is itself a valid program (transfers preserve the slot
// sum modulo 2^64 regardless of which ops survive), which is what lets
// ddmin shrink schedules freely.
func Generate(seed int64, threads, ops int) []Op {
	rng := rand.New(rand.NewSource(seed))
	sched := make([]Op, 0, threads*ops)
	for th := 0; th < threads; th++ {
		for i := 0; i < ops; i++ {
			r := rng.Float64()
			switch {
			case r < 0.45:
				sched = append(sched, Op{Thread: th, Kind: OpXfer, A: rng.Intn(Slots), B: rng.Intn(Slots)})
			case r < 0.65:
				sched = append(sched, Op{Thread: th, Kind: OpRead, A: rng.Intn(Slots)})
			case r < 0.80:
				sched = append(sched, Op{Thread: th, Kind: OpBlob, Arg: uint64(64 * (1 + rng.Intn(7)))})
			case r < 0.92:
				sched = append(sched, Op{Thread: th, Kind: OpSpin, Arg: uint64(50 + rng.Intn(400))})
			default:
				sched = append(sched, Op{Thread: th, Kind: OpFence})
			}
		}
	}
	return sched
}

// Preset mutates a machine configuration and the engine options into one
// resource-exhaustion shape.
type Preset struct {
	Name string
	// Note explains what the preset starves.
	Note  string
	Apply func(*machine.Config, *core.Options)
}

// Presets returns the exhaustion configurations, baseline first.
func Presets() []Preset {
	return []Preset{
		{"baseline", "Table 2 sizes — the control", func(*machine.Config, *core.Options) {}},
		{"dep2", "Dependence List of 2 entries/channel: constant §5.4 stalls",
			func(_ *machine.Config, o *core.Options) { o.DepListEntries = 2 }},
		{"dep8", "Dependence List of 8: eviction pressure without total starvation",
			func(_ *machine.Config, o *core.Options) { o.DepListEntries = 8 }},
		{"cl1", "CL List of 1 entry (1 CLPtr slot): every region overflows to log-only tracking",
			func(_ *machine.Config, o *core.Options) { o.CLListEntries, o.CLPtrSlots = 1, 1 }},
		{"lhwpq1", "LH-WPQ depth 1: record open/close serializes per channel",
			func(m *machine.Config, _ *core.Options) { m.Mem.LHWPQEntries = 1 }},
		{"wpq1", "WPQ depth 1: acceptance backpressure on every persist",
			func(m *machine.Config, _ *core.Options) { m.Mem.WPQEntries = 1 }},
		{"tinybloom", "64-bit Bloom + tiny caches: owner spills, reloads, false positives",
			func(m *machine.Config, o *core.Options) {
				o.BloomBits = 64
				m.Caches = cache.Config{
					L1: cache.LevelConfig{Sets: 4, Ways: 2, Latency: 4},
					L2: cache.LevelConfig{Sets: 8, Ways: 2, Latency: 14},
					L3: cache.LevelConfig{Sets: 16, Ways: 2, Latency: 42},
				}
				m.Mem.Controllers, m.Mem.ChannelsPerMC = 1, 1
				m.Mem.WPQEntries = 4
				m.Mem.PMWriteCycles = 2_000
			}},
		{"tinylog", "two-record log buffer: overflow/Grow on nearly every region",
			func(_ *machine.Config, o *core.Options) { o.LogBufferBytes = 1024 }},
		{"squeeze", "every structure at its minimum simultaneously",
			func(m *machine.Config, o *core.Options) {
				o.DepListEntries = 2
				o.CLListEntries, o.CLPtrSlots = 1, 1
				o.BloomBits = 64
				o.LogBufferBytes = 1024
				m.Mem.LHWPQEntries = 1
				m.Mem.WPQEntries = 1
			}},
	}
}

// PresetNames returns the preset names in order.
func PresetNames() []string {
	var names []string
	for _, p := range Presets() {
		names = append(names, p.Name)
	}
	return names
}

func presetByName(name string) (Preset, error) {
	for _, p := range Presets() {
		if p.Name == name {
			return p, nil
		}
	}
	return Preset{}, fmt.Errorf("torture: unknown preset %q (have %v)", name, PresetNames())
}

// Case is one torture experiment.
type Case struct {
	// Preset names the exhaustion configuration (see Presets).
	Preset string `json:"preset"`
	// Seed derives the schedule and the fault decisions.
	Seed int64 `json:"seed"`
	// Threads and Ops shape the generated schedule (Ops per thread).
	Threads int `json:"threads"`
	Ops     int `json:"ops"`
	// CrashAt, when nonzero, schedules a power failure that many cycles
	// after setup drains; the case then goes through the public recovery
	// path and verifies the sum invariant on the recovered image.
	CrashAt uint64 `json:"crash_at,omitempty"`
	// Mix is the crash-time fault mixture (crash cases only).
	Mix faults.Mix `json:"mix,omitempty"`
	// NegativeControl enables core.Options.UnsafeEarlyLogFree: the seeded
	// protocol bug the invariant engine must catch (expected verdict:
	// violation, CheckCommitRule).
	NegativeControl bool `json:"negative_control,omitempty"`
	// Stride is the invariant-check stride in kernel steps (0 = 16).
	Stride uint64 `json:"stride,omitempty"`
	// Schedule, when non-nil, replaces the generated schedule: the replay
	// and shrinking mode.
	Schedule []Op `json:"schedule,omitempty"`
	// Replay, when non-nil, inflicts exactly these fault events.
	Replay []faults.Event `json:"replay,omitempty"`
}

func (c Case) String() string {
	s := fmt.Sprintf("%s seed %d %dx%d", c.Preset, c.Seed, c.Threads, c.Ops)
	if c.CrashAt > 0 {
		s += fmt.Sprintf(" crash@%d mix %s", c.CrashAt, c.Mix)
	}
	if c.NegativeControl {
		s += " [negative-control]"
	}
	return s
}

// schedule returns the case's effective op list.
func (c Case) schedule() []Op {
	if c.Schedule != nil {
		return c.Schedule
	}
	return Generate(c.Seed, c.Threads, c.Ops)
}

// Verdict classifies a torture outcome.
type Verdict string

// The verdicts.
const (
	// VerdictPass: the run drained (or recovered cleanly), every invariant
	// held at every checked step, and the sum invariant holds.
	VerdictPass Verdict = "pass"
	// VerdictRecovered: crash-time faults fired, recovery repaired them,
	// invariants hold.
	VerdictRecovered Verdict = "recovered"
	// VerdictDetected: crash-time faults fired and recovery refused with a
	// corruption error — the correct fail-stop outcome.
	VerdictDetected Verdict = "detected"
	// VerdictViolation: the invariant engine flagged a protocol violation,
	// or a recovered image failed the sum invariant.
	VerdictViolation Verdict = "violation"
	// VerdictStall: the kernel stopped without draining — deadlock or
	// watchdog-diagnosed livelock — with the structured diagnosis attached.
	VerdictStall Verdict = "stall"
	// VerdictError: the harness itself failed (a panic, unloadable state):
	// an undiagnosed failure, always a bug.
	VerdictError Verdict = "error"
)

// Outcome is the result of one torture case.
type Outcome struct {
	Case    Case    `json:"case"`
	Verdict Verdict `json:"verdict"`
	Detail  string  `json:"detail,omitempty"`
	// Violations holds the invariant engine's findings (bounded).
	Violations []string `json:"violations,omitempty"`
	// Stall carries the forward-progress diagnosis for stall verdicts.
	Stall string `json:"stall,omitempty"`
	// Faults is every injected crash-time event, in decision order.
	Faults []faults.Event `json:"faults,omitempty"`
	// Shrunk is the minimal schedule still reproducing a violation,
	// filled by Shrink.
	Shrunk []Op `json:"shrunk,omitempty"`
	// Cycles and Regions summarize how much work the case did.
	Cycles  uint64 `json:"cycles"`
	Regions int64  `json:"regions"`
	// Checks is the number of full invariant passes that ran.
	Checks uint64 `json:"checks"`
}

// WatchdogWindow is the no-progress budget for torture runs, sized far
// above any legitimate quiet period of the squeezed configurations.
const WatchdogWindow = 500_000

// RunCase executes one torture case end to end.
func RunCase(c Case) (out Outcome) {
	out = Outcome{Case: c}
	defer func() {
		if p := recover(); p != nil {
			out.Verdict, out.Detail = VerdictError, fmt.Sprintf("harness panic: %v", p)
		}
	}()

	preset, err := presetByName(c.Preset)
	if err != nil {
		out.Verdict, out.Detail = VerdictError, err.Error()
		return out
	}

	mc := machine.DefaultConfig()
	mc.Cores = max(c.Threads, 1)
	opt := core.DefaultOptions()
	preset.Apply(&mc, &opt)
	if c.NegativeControl {
		opt.UnsafeEarlyLogFree = true
		// The early free is only observable while its region is still
		// uncommitted: slow the PM far past region length so commit lags
		// asap_end, and check at every step.
		mc.Mem.PMWriteCycles = 20_000
		mc.Mem.IssueDelayCycles = 20_000
	}

	m := machine.New(mc)
	eng := core.NewEngine(m, opt)
	ie := invariant.Attach(m, eng, invariant.Config{Stride: strideOf(c)})

	m.K.SetWatchdog(&sim.Watchdog{
		Window: WatchdogWindow,
		Progress: func() uint64 {
			return uint64(m.St.Get(stats.RegionsCommitted) +
				m.St.Get(stats.LPOsIssued) + m.St.Get(stats.PMWrites))
		},
		Backlog: func() int {
			n := eng.LPOsInFlight() + len(eng.LiveRegions())
			for _, ch := range m.Fabric.Channels() {
				n += ch.Occupancy() + ch.Waiters() + ch.LH().Len()
			}
			return n
		},
		Gauges: func() map[string]int {
			g := map[string]int{
				"regions.live": len(eng.LiveRegions()),
				"lpo.inflight": eng.LPOsInFlight(),
			}
			for _, ch := range m.Fabric.Channels() {
				g[fmt.Sprintf("wpq%d", ch.ID())] = ch.Occupancy()
				g[fmt.Sprintf("wpq%d.waiting", ch.ID())] = ch.Waiters()
				g[fmt.Sprintf("lhwpq%d", ch.ID())] = ch.LH().Len()
			}
			return g
		},
		Snapshot: eng.DepGraphString,
	})

	var inj *faults.Injector
	if c.CrashAt > 0 {
		if c.Replay != nil {
			inj = faults.Replay(c.Replay)
		} else {
			inj = faults.New(c.Seed, c.Mix)
		}
		m.Fabric.SetFaultInjector(inj)
	}

	// Shared state: slot counters, striped locks, per-thread scratch.
	slots := make([]uint64, Slots)
	for i := range slots {
		slots[i] = m.Heap.Alloc(64, true)
	}
	stripes := make([]sim.Mutex, Stripes)
	scratch := make([]uint64, max(c.Threads, 1))
	const scratchBytes = 512
	for i := range scratch {
		scratch[i] = m.Heap.Alloc(scratchBytes, true)
	}
	sched := c.schedule()
	perThread := make([][]Op, max(c.Threads, 1))
	for _, op := range sched {
		if op.Thread >= 0 && op.Thread < len(perThread) {
			perThread[op.Thread] = append(perThread[op.Thread], op)
		}
	}

	var cs *core.CrashState
	crash := func() {
		if inj != nil {
			inj.SetScope(eng.UncommittedRIDs())
		}
		cs = eng.Crash()
	}

	m.K.Spawn("driver", func(t *sim.Thread) {
		eng.InitThread(t)
		for _, addr := range slots {
			eng.Begin(t)
			storeU64(eng, t, addr, InitialSlotValue)
			eng.End(t)
		}
		eng.DrainBarrier(t)

		start := t.Kernel().Now()
		if c.CrashAt > 0 {
			m.K.Schedule(start+c.CrashAt, crash)
		}
		done := 0
		for th := range perThread {
			th := th
			m.K.Spawn(fmt.Sprintf("w%d", th), func(wt *sim.Thread) {
				eng.InitThread(wt)
				runOps(eng, wt, perThread[th], slots, stripes, scratch[th], scratchBytes)
				eng.DrainBarrier(wt)
				done++
			})
		}
		t.WaitUntil(func() bool { return done == len(perThread) })
		eng.DrainBarrier(t)
	})
	runErr := m.K.Run()
	out.Cycles = m.K.Now()
	out.Regions = m.St.Get(stats.RegionsCommitted)

	// The invariant verdict comes first: a violation is the sharpest
	// finding regardless of how the run ended.
	ie.Final()
	out.Checks = ie.Passes()
	for _, v := range ie.Violations() {
		out.Violations = append(out.Violations, v.String())
	}
	if len(out.Violations) > 0 {
		out.Verdict = VerdictViolation
		out.Detail = fmt.Sprintf("%d invariant violations (%d recorded)", ie.Total(), len(out.Violations))
		if runErr != nil {
			out.Detail += "; run also stalled: " + runErr.Error()
		}
		return out
	}
	if runErr != nil {
		var se *sim.StallError
		if errors.As(runErr, &se) {
			out.Verdict, out.Stall = VerdictStall, se.Error()
			out.Detail = fmt.Sprintf("%s at cycle %d: %d threads blocked", se.Kind, se.At, len(se.Blocked))
			return out
		}
		out.Verdict, out.Detail = VerdictError, runErr.Error()
		return out
	}

	wantSum := uint64(Slots) * InitialSlotValue
	if cs == nil && c.CrashAt > 0 {
		// The run drained before the crash point: crash the idle machine.
		crash()
	}
	if cs == nil {
		// Clean run: the functional heap must satisfy the sum invariant.
		var sum uint64
		for _, addr := range slots {
			sum += m.Heap.ReadU64(addr)
		}
		if sum != wantSum {
			out.Verdict = VerdictViolation
			out.Detail = fmt.Sprintf("slot sum %d != initial %d after clean run", sum, wantSum)
			return out
		}
		out.Verdict = VerdictPass
		return out
	}
	return recoverAndVerify(&out, cs, inj, slots, wantSum)
}

// recoverAndVerify pushes a crash state through the public recovery path
// and checks the sum invariant on the recovered image.
func recoverAndVerify(out *Outcome, cs *core.CrashState, inj *faults.Injector, slots []uint64, wantSum uint64) Outcome {
	var ranges []faults.Range
	for _, ext := range cs.Logs {
		ranges = append(ranges, faults.Range{Base: ext.Base, Size: ext.Size})
	}
	inj.FlipBits(cs.Image, ranges)
	out.Faults = inj.Events()

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(cs); err != nil {
		out.Verdict, out.Detail = VerdictError, "encoding crash state: "+err.Error()
		return *out
	}
	pub, err := asap.LoadCrashState(&buf)
	if err != nil {
		out.Verdict, out.Detail = VerdictError, err.Error()
		return *out
	}
	if _, err := pub.Recover(); err != nil {
		var ce *recovery.CorruptionError
		if errors.As(err, &ce) {
			if len(out.Faults) > 0 {
				out.Verdict, out.Detail = VerdictDetected, err.Error()
			} else {
				out.Verdict, out.Detail = VerdictViolation, "corruption reported without any injected fault: "+err.Error()
			}
			return *out
		}
		out.Verdict, out.Detail = VerdictError, err.Error()
		return *out
	}
	var sum uint64
	for _, addr := range slots {
		sum += pub.ReadUint64(addr)
	}
	if sum != wantSum {
		out.Verdict = VerdictViolation
		out.Detail = fmt.Sprintf("recovered slot sum %d != initial %d (non-atomic state)", sum, wantSum)
		return *out
	}
	if len(out.Faults) > 0 {
		out.Verdict = VerdictRecovered
	} else {
		out.Verdict = VerdictPass
	}
	return *out
}

func strideOf(c Case) uint64 {
	if c.Stride > 0 {
		return c.Stride
	}
	if c.NegativeControl {
		return 1 // never miss the seeded bug between checks
	}
	return 16
}

// runOps executes one thread's schedule slice.
func runOps(eng *core.Engine, t *sim.Thread, ops []Op, slots []uint64, stripes []sim.Mutex, scratch uint64, scratchBytes int) {
	blob := make([]byte, scratchBytes)
	for _, op := range ops {
		switch op.Kind {
		case OpXfer:
			a, b := op.A%Slots, op.B%Slots
			lockSlots(t, stripes, a, b)
			eng.Begin(t)
			va := loadU64(eng, t, slots[a])
			vb := loadU64(eng, t, slots[b])
			storeU64(eng, t, slots[a], va-1)
			if b != a {
				storeU64(eng, t, slots[b], vb+1)
			} else {
				storeU64(eng, t, slots[b], vb) // self-transfer: net zero
			}
			eng.End(t)
			unlockSlots(t, stripes, a, b)
		case OpRead:
			a := op.A % Slots
			stripes[a%Stripes].Lock(t)
			eng.Begin(t)
			_ = loadU64(eng, t, slots[a])
			eng.End(t)
			stripes[a%Stripes].Unlock(t)
		case OpBlob:
			n := int(op.Arg)
			if n <= 0 || n > scratchBytes {
				n = scratchBytes
			}
			for i := range blob[:n] {
				blob[i] = byte(op.Arg + uint64(i))
			}
			eng.Begin(t)
			eng.Store(t, scratch, blob[:n])
			eng.End(t)
		case OpSpin:
			t.Advance(op.Arg)
		case OpFence:
			eng.Fence(t)
		}
	}
}

// lockSlots acquires the stripes guarding slots a and b in stripe order —
// the global order that keeps schedules deadlock-free by construction.
func lockSlots(t *sim.Thread, stripes []sim.Mutex, a, b int) {
	sa, sb := a%Stripes, b%Stripes
	if sa > sb {
		sa, sb = sb, sa
	}
	stripes[sa].Lock(t)
	if sb != sa {
		stripes[sb].Lock(t)
	}
}

func unlockSlots(t *sim.Thread, stripes []sim.Mutex, a, b int) {
	sa, sb := a%Stripes, b%Stripes
	if sa > sb {
		sa, sb = sb, sa
	}
	if sb != sa {
		stripes[sb].Unlock(t)
	}
	stripes[sa].Unlock(t)
}

func storeU64(e *core.Engine, t *sim.Thread, addr, v uint64) {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	e.Store(t, addr, b[:])
}

func loadU64(e *core.Engine, t *sim.Thread, addr uint64) uint64 {
	var b [8]byte
	e.Load(t, addr, b[:])
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}
