package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// TestCleanRecoveryExitsZero: the demo's happy path — crash, recover,
// verify the consistent prefix — exits 0.
func TestCleanRecoveryExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-crash", "8000"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "atomic durability held") {
		t.Fatalf("verification line missing from output:\n%s", out.String())
	}
}

// TestCorruptImageClassifiedAndNonZero: with undo material destroyed at
// the crash flush, recovery must refuse, the CLI must print the
// structured *recovery.CorruptionError classification (class, severity,
// damaged line), and the exit code must be the dedicated 3.
func TestCorruptImageClassifiedAndNonZero(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-crash", "8000", "-mix", "drop=1,lhdrop=1"}, &out, &errb)
	if code != 3 {
		t.Fatalf("exit %d, want 3\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	diag := errb.String()
	for _, want := range []string{"recovery refused", "fatal", "line 0x"} {
		if !strings.Contains(diag, want) {
			t.Errorf("classification lacks %q:\n%s", want, diag)
		}
	}
	if !strings.Contains(diag, "missing-header") && !strings.Contains(diag, "missing-entry") &&
		!strings.Contains(diag, "torn-entry") && !strings.Contains(diag, "torn-header") {
		t.Errorf("no corruption class named in the diagnosis:\n%s", diag)
	}
}

// TestSaveLoadRoundTrip: a faulted crash image saved with -save must
// yield the same classified refusal when recovered by a fresh -load
// invocation, exactly like a post-power-failure process would see it.
func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crash.state")

	var out, errb bytes.Buffer
	if code := run([]string{"-crash", "8000", "-save", path}, &out, &errb); code != 0 {
		t.Fatalf("save: exit %d, stderr: %s", code, errb.String())
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-load", path}, &out, &errb); code != 0 {
		t.Fatalf("load: exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "recovered from") {
		t.Fatalf("load output:\n%s", out.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-crash", "8000", "-mix", "drop=1,lhdrop=1", "-save", path}, &out, &errb); code != 0 {
		t.Fatalf("faulted save: exit %d, stderr: %s", code, errb.String())
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-load", path}, &out, &errb); code != 3 {
		t.Fatalf("faulted load: exit %d, want 3\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "recovery refused") {
		t.Fatalf("faulted load diagnosis:\n%s", errb.String())
	}
}

// TestBadFlagsExitTwo keeps usage errors on the conventional exit code.
func TestBadFlagsExitTwo(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-mix", "nonsense"}, &out, &errb); code != 2 {
		t.Fatalf("bad mix: exit %d, want 2", code)
	}
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}
