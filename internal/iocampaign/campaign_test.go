package iocampaign

import "testing"

// TestSafeCampaignSurvives is a scaled-down version of the CI sweep: a
// full pass over the target × class matrix with protections on must
// find zero audit violations, and the faults must actually fire (a
// campaign that never injects proves nothing).
func TestSafeCampaignSurvives(t *testing.T) {
	sum, err := Run(Config{Cases: 60, Seed: 7, WorkDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Bad() {
		t.Fatalf("safe campaign found %d violations:\n%s", len(sum.Failures), joinLines(sum.Failures))
	}
	if sum.Injected == 0 {
		t.Fatal("no case injected a fault; the campaign is not exercising anything")
	}
	for _, target := range targets {
		if sum.ByTarget[target] != 60/len(targets) {
			t.Errorf("target %s scheduled %d cases, want %d", target, sum.ByTarget[target], 60/len(targets))
		}
		if sum.InjectedByTarget[target] == 0 {
			t.Errorf("target %s never saw a fired fault", target)
		}
	}
	for _, class := range classes {
		if sum.ByClass[class] == 0 {
			t.Errorf("class %s never scheduled", class)
		}
	}
	if sum.CleanRefusals == 0 {
		t.Error("no operation was ever refused; injected faults are being swallowed silently")
	}
	if sum.Survivals == 0 {
		t.Error("no operation ever survived; the campaign setup is broken")
	}
}

// TestUnsafeCampaignFails is the negative control: with the journal's
// append rollback disabled, the same sweep MUST surface corruption. If
// it stays green, the auditors are blind and every safe pass is
// meaningless.
func TestUnsafeCampaignFails(t *testing.T) {
	sum, err := Run(Config{Cases: 60, Seed: 7, Unsafe: true, WorkDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Bad() {
		t.Fatal("unsafe campaign reported zero failures; the corruption auditors detect nothing")
	}
}

// TestCampaignDeterminism: identical config, identical verdict — the
// summary (including the exact failure text) is a pure function of the
// seed.
func TestCampaignDeterminism(t *testing.T) {
	a, err := Run(Config{Cases: 20, Seed: 99, WorkDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Cases: 20, Seed: 99, WorkDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if a.Injected != b.Injected || a.CleanRefusals != b.CleanRefusals || a.Survivals != b.Survivals {
		t.Fatalf("reruns diverged: %+v vs %+v", a, b)
	}
}

func joinLines(lines []string) string {
	out := ""
	for _, l := range lines {
		out += l + "\n"
	}
	return out
}
