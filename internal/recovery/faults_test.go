package recovery

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"asap/internal/arch"
	"asap/internal/core"
	"asap/internal/memdev"
	"asap/internal/wal"
)

// Synthetic crash states, one per fault class, so the classification rules
// can be pinned precisely: which damage is fatal (undo material for an
// uncommitted region lost) and which is discardable (provably stale).

const (
	synBase = uint64(0x40000) // log buffer base
	synSize = uint64(4 * wal.RecordBytes)
	synData = uint64(0x80000) // data lines the region wrote
)

var synRID = arch.MakeRID(0, 7)

// synClosed builds a crash state holding one uncommitted region whose full
// (closed) record persisted: a checked header at the first record slot and
// seven entry lines of old values. Data lines carry the region's new
// (uncommitted) values. mutate edits the image before the state is sealed.
func synClosed(mutate func(img *memdev.Image)) *core.CrashState {
	img := memdev.NewImage()
	var dataLines []arch.LineAddr
	crc := uint32(0)
	for i := 0; i < wal.RecordEntries; i++ {
		dl := arch.LineAddr(synData + uint64(i)*arch.LineSize)
		dataLines = append(dataLines, dl)
		old := bytes.Repeat([]byte{byte(0x10 + i)}, arch.LineSize)
		img.Write(wal.EntryLine(arch.LineAddr(synBase), i), old)
		crc = wal.ChecksumUpdate(crc, old)
		img.Write(dl, bytes.Repeat([]byte{0xEE}, arch.LineSize)) // new value
	}
	img.Write(arch.LineAddr(synBase), wal.EncodeHeaderChecked(synRID, dataLines, crc))
	cs := &core.CrashState{
		Image: img,
		Deps:  []core.DepSnapshot{{RID: synRID}},
		Logs:  []core.LogExtent{{Thread: 0, Base: synBase, Size: synSize, Head: 0, Tail: wal.RecordBytes}},
	}
	if mutate != nil {
		mutate(img)
	}
	return cs
}

// synOpen builds a crash state where the region's record is still open:
// undo material lives in the flushed LH-WPQ header, the header slot was
// never written. n entries were accepted.
func synOpen(n int, mutate func(cs *core.CrashState)) *core.CrashState {
	img := memdev.NewImage()
	h := &memdev.LogHeader{RID: synRID, HeaderAddr: arch.LineAddr(synBase)}
	for i := 0; i < n; i++ {
		dl := arch.LineAddr(synData + uint64(i)*arch.LineSize)
		old := bytes.Repeat([]byte{byte(0x10 + i)}, arch.LineSize)
		ll := wal.EntryLine(arch.LineAddr(synBase), i)
		img.Write(ll, old)
		img.Write(dl, bytes.Repeat([]byte{0xEE}, arch.LineSize))
		h.DataLines = append(h.DataLines, dl)
		h.LogLines = append(h.LogLines, ll)
		h.EntryCRCs = append(h.EntryCRCs, wal.Checksum(old))
		h.PayloadCRC = wal.ChecksumUpdate(h.PayloadCRC, old)
	}
	cs := &core.CrashState{
		Image:   img,
		Headers: []*memdev.LogHeader{h},
		Deps:    []core.DepSnapshot{{RID: synRID}},
		Logs:    []core.LogExtent{{Thread: 0, Base: synBase, Size: synSize, Head: 0, Tail: wal.RecordBytes}},
	}
	if mutate != nil {
		mutate(cs)
	}
	return cs
}

// corrupt flips one byte of a persisted line.
func corrupt(img *memdev.Image, line arch.LineAddr, off int) {
	buf := img.Read(line)
	buf[off] ^= 0xFF
	img.Write(line, buf)
}

func wantFatal(t *testing.T, cs *core.CrashState, class Class) *CorruptionError {
	t.Helper()
	_, err := Recover(cs)
	var cerr *CorruptionError
	if !errors.As(err, &cerr) {
		t.Fatalf("want *CorruptionError, got %v", err)
	}
	for _, c := range cerr.Fatal {
		if c.Severity != SeverityFatal {
			t.Errorf("non-fatal finding in CorruptionError: %v", c)
		}
	}
	if got := cerr.Fatal[0].Class; got != class {
		t.Fatalf("classified as %s, want %s (error: %v)", got, class, err)
	}
	return cerr
}

func TestTornHeaderIsFatal(t *testing.T) {
	cs := synClosed(func(img *memdev.Image) {
		corrupt(img, arch.LineAddr(synBase), 20) // entry address bytes; CRC now stale
	})
	wantFatal(t, cs, ClassTornHeader)
}

func TestTornHeaderMagicDestroyedIsFatal(t *testing.T) {
	// A tear short enough to destroy the magic byte leaves a line that no
	// longer even looks like a header; the live-slot rule must still call
	// it fatal rather than silently skipping the record.
	cs := synClosed(func(img *memdev.Image) {
		corrupt(img, arch.LineAddr(synBase), 8)
	})
	wantFatal(t, cs, ClassTornHeader)
}

func TestMissingHeaderIsFatal(t *testing.T) {
	// The header write was dropped and the slot was never used before:
	// the live slot reads as never-written.
	img := memdev.NewImage()
	cs := synClosed(nil)
	cs.Image.Lines(func(line arch.LineAddr, payload []byte) {
		if line != arch.LineAddr(synBase) {
			img.Write(line, payload)
		}
	})
	cs.Image = img
	wantFatal(t, cs, ClassMissingHeader)
}

func TestStaleHeaderAtLiveSlotIsFatal(t *testing.T) {
	// The header write was dropped over a freed slot still holding a
	// committed region's valid header: recovery must notice the RID is
	// not uncommitted and refuse.
	staleRID := arch.MakeRID(0, 3)
	cs := synClosed(func(img *memdev.Image) {
		img.Write(arch.LineAddr(synBase), wal.EncodeHeader(staleRID, []arch.LineAddr{arch.LineAddr(synData)}))
	})
	cerr := wantFatal(t, cs, ClassMissingHeader)
	if cerr.Fatal[0].RID != staleRID {
		t.Errorf("finding names %s, want the stale header's %s", cerr.Fatal[0].RID, staleRID)
	}
}

func TestTornDataEntryIsFatal(t *testing.T) {
	cs := synClosed(func(img *memdev.Image) {
		corrupt(img, wal.EntryLine(arch.LineAddr(synBase), 4), 11)
	})
	wantFatal(t, cs, ClassTornEntry)
}

func TestDroppedLPOClosedRecordIsFatal(t *testing.T) {
	cs := synClosed(nil)
	img := memdev.NewImage()
	gone := wal.EntryLine(arch.LineAddr(synBase), 3)
	cs.Image.Lines(func(line arch.LineAddr, payload []byte) {
		if line != gone {
			img.Write(line, payload)
		}
	})
	cs.Image = img
	cerr := wantFatal(t, cs, ClassMissingEntry)
	if cerr.Fatal[0].Line != gone {
		t.Errorf("finding at %#x, want %#x", uint64(cerr.Fatal[0].Line), uint64(gone))
	}
}

func TestDroppedLPOOpenRecordIsFatal(t *testing.T) {
	cs := synOpen(3, func(cs *core.CrashState) {
		img := memdev.NewImage()
		gone := wal.EntryLine(arch.LineAddr(synBase), 1)
		cs.Image.Lines(func(line arch.LineAddr, payload []byte) {
			if line != gone {
				img.Write(line, payload)
			}
		})
		cs.Image = img
	})
	wantFatal(t, cs, ClassMissingEntry)
}

func TestTornLPOOpenRecordIsFatal(t *testing.T) {
	cs := synOpen(3, func(cs *core.CrashState) {
		corrupt(cs.Image, wal.EntryLine(arch.LineAddr(synBase), 2), 33)
	})
	wantFatal(t, cs, ClassTornEntry)
}

func TestDroppedDPOIsAbsorbed(t *testing.T) {
	// The region's data-line write never persisted — recovery restores
	// the logged old value anyway, so a dropped DPO is not even visible.
	cs := synClosed(nil)
	img := memdev.NewImage()
	gone := arch.LineAddr(synData) // first data line
	cs.Image.Lines(func(line arch.LineAddr, payload []byte) {
		if line != gone {
			img.Write(line, payload)
		}
	})
	cs.Image = img
	rep, err := Recover(cs)
	if err != nil {
		t.Fatalf("dropped DPO must be recoverable: %v", err)
	}
	if rep.EntriesRestored != wal.RecordEntries {
		t.Fatalf("restored %d entries, want %d", rep.EntriesRestored, wal.RecordEntries)
	}
	want := bytes.Repeat([]byte{0x10}, arch.LineSize)
	if !bytes.Equal(cs.Image.Read(gone), want) {
		t.Fatal("data line not rolled back to the logged old value")
	}
}

func TestReorderedPersistsAreAbsorbed(t *testing.T) {
	// A reordered flush can leave a data line with any interleaving of
	// old and new bytes; rollback overwrites it with the logged value
	// regardless.
	cs := synClosed(func(img *memdev.Image) {
		img.Write(arch.LineAddr(synData+2*arch.LineSize), bytes.Repeat([]byte{0x77}, arch.LineSize))
	})
	rep, err := Recover(cs)
	if err != nil {
		t.Fatalf("reordered persists must be recoverable: %v", err)
	}
	if rep.LiveRecords != 1 || rep.RecordsScanned != 1 {
		t.Fatalf("report: %+v", rep)
	}
	want := bytes.Repeat([]byte{0x12}, arch.LineSize)
	if !bytes.Equal(cs.Image.Read(arch.LineAddr(synData+2*arch.LineSize)), want) {
		t.Fatal("data line not rolled back to the logged old value")
	}
}

func TestStaleCorruptionIsDiscardable(t *testing.T) {
	// Corrupt header-like bytes in freed log space (behind LogHead) are
	// provably stale: noted, discarded, and recovery proceeds.
	staleSlot := arch.LineAddr(synBase + 2*wal.RecordBytes)
	cs := synClosed(func(img *memdev.Image) {
		garbage := wal.EncodeHeader(arch.MakeRID(0, 2), []arch.LineAddr{arch.LineAddr(synData)})
		garbage[30] ^= 0xFF // break the CRC, keep the magic
		img.Write(staleSlot, garbage)
	})
	rep, err := Recover(cs)
	if err != nil {
		t.Fatalf("stale corruption must not block recovery: %v", err)
	}
	if len(rep.Discarded) != 1 {
		t.Fatalf("want 1 discarded finding, got %+v", rep.Discarded)
	}
	d := rep.Discarded[0]
	if d.Class != ClassStaleCorrupt || d.Severity != SeverityDiscardable || d.Line != staleSlot {
		t.Fatalf("bad discardable finding: %v", d)
	}
}

func TestSkipValidationResurrectsSilentSkips(t *testing.T) {
	// The same torn header that strict mode rejects is silently ignored
	// with validation off — the unhardened behavior the checker exists to
	// catch (the region's writes stay un-rolled-back).
	mutate := func(img *memdev.Image) { corrupt(img, arch.LineAddr(synBase), 8) }
	if _, err := Recover(synClosed(mutate)); err == nil {
		t.Fatal("strict mode accepted a torn header")
	}
	cs := synClosed(mutate)
	rep, err := RecoverWithOptions(cs, Options{SkipValidation: true})
	if err != nil {
		t.Fatalf("legacy mode errored: %v", err)
	}
	if rep.EntriesRestored != 0 {
		t.Fatalf("legacy mode restored %d entries from a record it cannot see", rep.EntriesRestored)
	}
	if !bytes.Equal(cs.Image.Read(arch.LineAddr(synData)), bytes.Repeat([]byte{0xEE}, arch.LineSize)) {
		t.Fatal("expected the uncommitted value to survive (the silent failure)")
	}
}

func TestImageUntouchedOnFatalCorruption(t *testing.T) {
	cs := synClosed(func(img *memdev.Image) {
		corrupt(img, wal.EntryLine(arch.LineAddr(synBase), 0), 5)
	})
	before := make(map[arch.LineAddr][]byte)
	cs.Image.Lines(func(line arch.LineAddr, payload []byte) {
		before[line] = append([]byte(nil), payload...)
	})
	if _, err := Recover(cs); err == nil {
		t.Fatal("want fatal corruption")
	}
	n := 0
	cs.Image.Lines(func(line arch.LineAddr, payload []byte) {
		n++
		if !bytes.Equal(before[line], payload) {
			t.Errorf("line %#x modified despite fatal corruption", uint64(line))
		}
	})
	if n != len(before) {
		t.Errorf("image line count changed: %d -> %d", len(before), n)
	}
}

func TestMalformedCrashStateErrorsNotPanics(t *testing.T) {
	cases := []struct {
		name string
		cs   *core.CrashState
	}{
		{"nil image", &core.CrashState{}},
		{"nil header", &core.CrashState{Image: memdev.NewImage(), Headers: []*memdev.LogHeader{nil}}},
		{"header len mismatch", &core.CrashState{Image: memdev.NewImage(), Headers: []*memdev.LogHeader{
			{RID: synRID, DataLines: make([]arch.LineAddr, 2), LogLines: make([]arch.LineAddr, 1)}}}},
		{"oversized header", &core.CrashState{Image: memdev.NewImage(), Headers: []*memdev.LogHeader{
			{RID: synRID, DataLines: make([]arch.LineAddr, 9), LogLines: make([]arch.LineAddr, 9)}}}},
		{"crc len mismatch", &core.CrashState{Image: memdev.NewImage(), Headers: []*memdev.LogHeader{
			{RID: synRID, DataLines: make([]arch.LineAddr, 2), LogLines: make([]arch.LineAddr, 2), EntryCRCs: make([]uint32, 1)}}}},
		{"zero log size", &core.CrashState{Image: memdev.NewImage(), Logs: []core.LogExtent{{Size: 0}}}},
		{"ragged log size", &core.CrashState{Image: memdev.NewImage(), Logs: []core.LogExtent{{Size: 100}}}},
		{"tail before head", &core.CrashState{Image: memdev.NewImage(), Logs: []core.LogExtent{
			{Size: synSize, Head: 10 * wal.RecordBytes, Tail: wal.RecordBytes}}}},
		{"live beyond capacity", &core.CrashState{Image: memdev.NewImage(), Logs: []core.LogExtent{
			{Size: synSize, Head: 0, Tail: 9 * wal.RecordBytes}}}},
		{"extent wraps address space", &core.CrashState{Image: memdev.NewImage(), Logs: []core.LogExtent{
			{Base: ^uint64(0) - wal.RecordBytes, Size: synSize}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("Recover panicked: %v", p)
				}
			}()
			if _, err := Recover(tc.cs); err == nil {
				t.Fatal("malformed crash state accepted")
			}
		})
	}
	// nil state
	if _, err := Recover(nil); err == nil {
		t.Fatal("nil crash state accepted")
	}
}

func TestCorruptionErrorMessage(t *testing.T) {
	cs := synClosed(func(img *memdev.Image) {
		corrupt(img, arch.LineAddr(synBase), 20)
	})
	_, err := Recover(cs)
	if err == nil {
		t.Fatal("want error")
	}
	msg := err.Error()
	for _, want := range []string{"torn-header", "fatal", fmt.Sprintf("%#x", synBase)} {
		if !bytes.Contains([]byte(msg), []byte(want)) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}
