// Package invariant is the runtime protocol-invariant engine (DESIGN.md
// §11): it promotes the one-shot assertions of internal/core's invariant
// tests into step-granularity validators that run while a simulation
// executes, wired through the kernel's sim.Observer hook. Each check
// cross-references the paper section whose rule it enforces. The engine is
// a pure observer — attaching it changes no scheduling decision, counter,
// or byte of output, only whether protocol violations are caught the
// moment they happen instead of (at best) at the end of the run.
//
// Zero cost when detached: nothing in this package is referenced by the
// default experiment paths.
package invariant

import (
	"fmt"
	"sort"
	"strings"

	"asap/internal/arch"
	"asap/internal/cache"
	"asap/internal/core"
	"asap/internal/machine"
	"asap/internal/memdev"
	"asap/internal/sim"
	"asap/internal/wal"
)

// Violation is one invariant failure, timestamped in simulated cycles.
type Violation struct {
	At     uint64 `json:"at"`
	Check  string `json:"check"`
	Detail string `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("[%d] %s: %s", v.At, v.Check, v.Detail)
}

// The check names, used in Violation.Check and the DESIGN.md §11 catalog.
const (
	CheckDepAcyclic    = "dep-acyclic"    // §4.6.3: dependence graph has no cycle
	CheckCommitRule    = "commit-rule"    // §4.7/§5.5: log freed only at commit
	CheckOwnerBloom    = "owner-bloom"    // §5.3: no false negatives over spills
	CheckLocks         = "locks"          // §4.6.1: lock pins == LPOs in flight
	CheckCLConserve    = "cl-conserve"    // §4.6.2: CL List ↔ live regions
	CheckDepConserve   = "dep-conserve"   // §4.6.3: Dep List ↔ live regions
	CheckLHWPQConserve = "lhwpq-conserve" // §5.5: LH-WPQ ↔ open records
	CheckWPQBound      = "wpq-bound"      // §4.1: WPQ occupancy within capacity
	CheckWALMonotone   = "wal-monotone"   // §4.4: head/tail monotone per epoch
	CheckCommitOrder   = "commit-order"   // §4.8: commits respect dependences
)

// Config tunes the engine.
type Config struct {
	// Stride is the minimum simulated-cycle gap between full check passes
	// (sampled on kernel Ticks). 0 means the 64-cycle default; 1 checks at
	// every clock movement.
	Stride uint64
	// MaxViolations bounds the retained violation list (0 -> 64). The
	// total count keeps incrementing past the bound.
	MaxViolations int
	// Next, when non-nil, receives every Observer callback after the
	// engine — so a profiler or recorder session can stay attached.
	Next sim.Observer
}

// Engine validates one ASAP engine's protocol state. It implements
// sim.Observer; attach it with machine.K.SetObserver (or invariant.Attach,
// which preserves an already-attached observer by chaining it).
type Engine struct {
	m    *machine.Machine
	eng  *core.Engine
	next sim.Observer

	stride uint64
	lastAt uint64
	armed  bool // first Tick seen, lastAt valid

	maxViol    int
	violations []Violation
	total      int
	passes     uint64

	// logSeen is the per-thread WAL monotonicity history.
	logSeen map[int]logMark
}

type logMark struct {
	base       uint64
	epoch      int
	head, tail uint64
}

// New builds an invariant engine for eng running on m. It does not attach
// itself; see Attach.
func New(m *machine.Machine, eng *core.Engine, cfg Config) *Engine {
	if cfg.Stride == 0 {
		cfg.Stride = 64
	}
	if cfg.MaxViolations == 0 {
		cfg.MaxViolations = 64
	}
	return &Engine{
		m:       m,
		eng:     eng,
		next:    cfg.Next,
		stride:  cfg.Stride,
		maxViol: cfg.MaxViolations,
		logSeen: make(map[int]logMark),
	}
}

// Attach builds an engine and installs it as m's kernel observer, chaining
// any observer already attached (profiler/recorder sessions keep working).
// Call before Run.
func Attach(m *machine.Machine, eng *core.Engine, cfg Config) *Engine {
	if cfg.Next == nil {
		cfg.Next = m.K.Observer()
	}
	ie := New(m, eng, cfg)
	m.K.SetObserver(ie)
	return ie
}

// Violations returns the retained violations (bounded by MaxViolations).
func (e *Engine) Violations() []Violation { return e.violations }

// Total returns the total violation count, including dropped ones.
func (e *Engine) Total() int { return e.total }

// Passes returns how many full check passes have run.
func (e *Engine) Passes() uint64 { return e.passes }

// Err returns nil when no invariant has been violated, else an error
// summarizing the first retained violation and the total count.
func (e *Engine) Err() error {
	if e.total == 0 {
		return nil
	}
	return fmt.Errorf("invariant: %d violation(s), first: %s", e.total, e.violations[0])
}

func (e *Engine) report(at uint64, check, format string, args ...interface{}) {
	e.total++
	if len(e.violations) < e.maxViol {
		e.violations = append(e.violations, Violation{At: at, Check: check, Detail: fmt.Sprintf(format, args...)})
	}
}

// sim.Observer: the engine piggybacks on kernel Ticks and forwards every
// callback to the chained observer.

// ThreadStart implements sim.Observer.
func (e *Engine) ThreadStart(t *sim.Thread) {
	if e.next != nil {
		e.next.ThreadStart(t)
	}
}

// ClockAdvance implements sim.Observer.
func (e *Engine) ClockAdvance(t *sim.Thread, delta uint64) {
	if e.next != nil {
		e.next.ClockAdvance(t, delta)
	}
}

// LockBegin implements sim.Observer.
func (e *Engine) LockBegin(t *sim.Thread) {
	if e.next != nil {
		e.next.LockBegin(t)
	}
}

// LockEnd implements sim.Observer.
func (e *Engine) LockEnd(t *sim.Thread) {
	if e.next != nil {
		e.next.LockEnd(t)
	}
}

// Tick implements sim.Observer: at most one full check pass per Stride
// cycles of kernel-clock movement.
func (e *Engine) Tick(now uint64) {
	if e.next != nil {
		e.next.Tick(now)
	}
	if !e.armed {
		e.armed = true
		e.lastAt = now
		return
	}
	if now-e.lastAt >= e.stride {
		e.lastAt = now
		e.CheckNow(now)
	}
}

// CheckNow runs one full validation pass against the engine's current
// state, recording any violations at time now.
func (e *Engine) CheckNow(now uint64) {
	e.passes++
	live := e.eng.LiveRegions()
	liveSet := make(map[arch.RID]*core.RegionInspect, len(live))
	for i := range live {
		liveSet[live[i].RID] = &live[i]
	}
	e.checkDepAcyclic(now)
	e.checkCommitRule(now, live)
	e.checkOwnerBloom(now)
	e.checkLocks(now)
	e.checkCLConserve(now, liveSet)
	e.checkDepConserve(now, liveSet)
	e.checkLHWPQConserve(now, liveSet)
	e.checkWPQBound(now)
	e.checkWALMonotone(now)
}

// Final runs the end-of-run checks: one last full pass plus the global
// commit-ordering audit over the engine's recorded dependence edges. Call
// it after the simulation finishes (or stalls).
func (e *Engine) Final() {
	now := e.m.K.Now()
	e.CheckNow(now)
	e.checkCommitOrder(now)
}

// checkDepAcyclic (§4.6.3): the live dependence graph must be a DAG —
// dependence capture only ever points at an *earlier* uncommitted region,
// and a cycle would deadlock commit forever.
func (e *Engine) checkDepAcyclic(now uint64) {
	g := e.eng.DepGraphLive()
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[arch.RID]int, len(g))
	rids := make([]arch.RID, 0, len(g))
	for rid := range g {
		rids = append(rids, rid)
	}
	sort.Slice(rids, func(i, j int) bool { return rids[i] < rids[j] })

	var stack []arch.RID
	var visit func(rid arch.RID) bool // true when a cycle was found
	visit = func(rid arch.RID) bool {
		color[rid] = gray
		stack = append(stack, rid)
		for _, d := range g[rid] {
			switch color[d] {
			case gray:
				// Render the cycle from d's position on the stack.
				i := 0
				for j, s := range stack {
					if s == d {
						i = j
						break
					}
				}
				parts := make([]string, 0, len(stack)-i+1)
				for _, s := range stack[i:] {
					parts = append(parts, s.String())
				}
				parts = append(parts, d.String())
				e.report(now, CheckDepAcyclic, "dependence cycle: %s", strings.Join(parts, " -> "))
				return true
			case white:
				if _, inGraph := g[d]; inGraph && visit(d) {
					return true
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[rid] = black
		return false
	}
	for _, rid := range rids {
		if color[rid] == white {
			if visit(rid) {
				return // one cycle per pass is diagnosis enough
			}
		}
	}
}

// checkCommitRule (§4.7, §5.5 "Freeing the Log on Commit"): a live
// region's undo records must still be live in its thread's log — the log
// head may not have advanced past the start of the region's last record
// before the region commits. This is the check the UnsafeEarlyLogFree
// negative control must trip.
func (e *Engine) checkCommitRule(now uint64, live []core.RegionInspect) {
	for _, r := range live {
		if r.LogEnd == 0 {
			continue // region never logged
		}
		if r.LogEpoch != e.eng.LogEpoch(r.Thread) {
			continue // offsets predate a Grow; not comparable to the live head
		}
		ext, ok := e.eng.LogExtentOf(r.Thread)
		if !ok {
			continue
		}
		if start := r.LogEnd - wal.RecordBytes; ext.Head > start {
			e.report(now, CheckCommitRule,
				"region %s uncommitted but thread %d log head %d passed its record start %d (log freed before dependence closure)",
				r.RID, r.Thread, ext.Head, start)
		}
	}
}

// checkOwnerBloom (§5.3): the Bloom filter may give false positives,
// never false negatives — every line with a spilled OwnerRID in the DRAM
// buffer must answer "maybe" on a fill probe, or a dependence would be
// silently missed.
func (e *Engine) checkOwnerBloom(now uint64) {
	e.eng.OwnerSpills(func(line arch.LineAddr, owner arch.RID) {
		if !e.eng.BloomMayContain(line) {
			e.report(now, CheckOwnerBloom,
				"line %#x has spilled owner %s but the bloom filter answers 'definitely not' (missed-dependence hazard)",
				uint64(line), owner)
		}
	})
}

// checkLocks (§4.6.1): the per-line lock pins must account exactly for
// the LPOs in flight, and a pinned line must be persistent-memory data
// still resident in the hierarchy (pinned lines are never evicted).
func (e *Engine) checkLocks(now uint64) {
	table := e.m.Caches.Table()
	if got, want := table.LocksTotal(), e.eng.LPOsInFlight(); got != want {
		e.report(now, CheckLocks,
			"sum of cache lock pins %d != LPOs in flight %d", got, want)
	}
	table.VisitLocked(func(m *cache.Meta) {
		if !m.PBit {
			e.report(now, CheckLocks, "line %#x pinned by an in-flight LPO but not marked persistent", uint64(m.Line()))
		}
		if !e.m.Caches.Present(m.Line()) {
			e.report(now, CheckLocks, "line %#x pinned by an in-flight LPO but evicted from the hierarchy", uint64(m.Line()))
		}
	})
}

// checkCLConserve (§4.6.2): CL List occupancy must stay within capacity
// and correspond one-to-one with the live regions that still have
// uncompleted DPOs.
func (e *Engine) checkCLConserve(now uint64, live map[arch.RID]*core.RegionInspect) {
	seen := make(map[arch.RID]bool)
	for coreID, cl := range e.eng.CLLists() {
		if cl.Len() > cl.Cap() {
			e.report(now, CheckCLConserve, "core %d CL List holds %d entries, capacity %d", coreID, cl.Len(), cl.Cap())
		}
		for _, entry := range cl.Entries() {
			if len(entry.Slots) > cl.SlotCap() {
				e.report(now, CheckCLConserve, "region %s holds %d CLPtr slots, capacity %d", entry.RID, len(entry.Slots), cl.SlotCap())
			}
			r := live[entry.RID]
			if r == nil || !r.CLResident {
				e.report(now, CheckCLConserve, "CL List entry for %s has no matching live region", entry.RID)
				continue
			}
			seen[entry.RID] = true
		}
	}
	for rid, r := range live {
		if r.CLResident && !seen[rid] {
			e.report(now, CheckCLConserve, "live region %s expects a CL List entry but none exists", rid)
		}
	}
}

// checkDepConserve (§4.6.3, §4.8): the Dependence Lists must hold exactly
// the uncommitted regions, every recorded dependence must target a region
// that is still live (commit broadcasts clear resolved deps), and slot
// occupancy must respect the Dep-slot capacity.
func (e *Engine) checkDepConserve(now uint64, live map[arch.RID]*core.RegionInspect) {
	seen := make(map[arch.RID]bool)
	for ch, dl := range e.eng.DepLists() {
		if dl.Len() > dl.Cap() {
			e.report(now, CheckDepConserve, "channel %d Dependence List holds %d entries, capacity %d", ch, dl.Len(), dl.Cap())
		}
		for _, entry := range dl.Entries() {
			if live[entry.RID] == nil {
				e.report(now, CheckDepConserve, "Dependence List entry for %s has no matching live region (stale entry)", entry.RID)
				continue
			}
			if seen[entry.RID] {
				e.report(now, CheckDepConserve, "region %s appears in more than one Dependence List", entry.RID)
			}
			seen[entry.RID] = true
			if len(entry.Deps) > dl.SlotCap() {
				e.report(now, CheckDepConserve, "region %s holds %d Dep slots, capacity %d", entry.RID, len(entry.Deps), dl.SlotCap())
			}
			deps := make([]arch.RID, 0, len(entry.Deps))
			for d := range entry.Deps {
				deps = append(deps, d)
			}
			sort.Slice(deps, func(i, j int) bool { return deps[i] < deps[j] })
			for _, d := range deps {
				if live[d] == nil {
					e.report(now, CheckDepConserve, "region %s depends on %s, which is not live (unresolved stale dependence)", entry.RID, d)
				}
			}
		}
	}
	for rid := range live {
		if !seen[rid] {
			e.report(now, CheckDepConserve, "live region %s missing from every Dependence List", rid)
		}
	}
}

// checkLHWPQConserve (§5.5): LH-WPQ occupancy must stay within capacity;
// every open header must belong to a live region with a matching open
// record (and vice versa); every header's entry lists must be consistent.
func (e *Engine) checkLHWPQConserve(now uint64, live map[arch.RID]*core.RegionInspect) {
	openSeen := make(map[arch.RID]bool)
	for _, ch := range e.m.Fabric.Channels() {
		lh := ch.LH()
		if lh.Len() > lh.Cap() {
			e.report(now, CheckLHWPQConserve, "channel %d LH-WPQ holds %d entries, capacity %d", ch.ID(), lh.Len(), lh.Cap())
		}
		chID := ch.ID()
		lh.VisitResident(func(h *memdev.LogHeader, closing bool) {
			if len(h.DataLines) != len(h.LogLines) {
				e.report(now, CheckLHWPQConserve, "header %s@%#x: %d data lines vs %d log lines",
					h.RID, uint64(h.HeaderAddr), len(h.DataLines), len(h.LogLines))
			}
			if len(h.EntryCRCs) != len(h.DataLines) {
				e.report(now, CheckLHWPQConserve, "header %s@%#x: %d entry CRCs vs %d entries",
					h.RID, uint64(h.HeaderAddr), len(h.EntryCRCs), len(h.DataLines))
			}
			if len(h.DataLines) > wal.RecordEntries {
				e.report(now, CheckLHWPQConserve, "header %s@%#x holds %d entries, record capacity %d",
					h.RID, uint64(h.HeaderAddr), len(h.DataLines), wal.RecordEntries)
			}
			if closing {
				return // closing headers may outlive their (committed) region
			}
			r := live[h.RID]
			if r == nil || !r.OpenRecord {
				e.report(now, CheckLHWPQConserve, "channel %d open header for %s has no live region with an open record", chID, h.RID)
				return
			}
			if r.OpenHeaderAddr != h.HeaderAddr {
				e.report(now, CheckLHWPQConserve, "region %s open record header %#x != LH-WPQ header %#x",
					h.RID, uint64(r.OpenHeaderAddr), uint64(h.HeaderAddr))
			}
			openSeen[h.RID] = true
		})
	}
	for rid, r := range live {
		if r.OpenRecord && !openSeen[rid] {
			e.report(now, CheckLHWPQConserve, "region %s has an open record but no open LH-WPQ header", rid)
		}
	}
}

// checkWPQBound (§4.1): a channel's WPQ occupancy can never exceed its
// configured capacity — acceptance is gated on free slots.
func (e *Engine) checkWPQBound(now uint64) {
	capacity := e.m.Fabric.Config().WPQEntries
	for _, ch := range e.m.Fabric.Channels() {
		if occ := ch.Occupancy(); occ > capacity {
			e.report(now, CheckWPQBound, "channel %d WPQ occupancy %d exceeds capacity %d", ch.ID(), occ, capacity)
		}
	}
}

// checkWALMonotone (§4.4): within one buffer epoch, LogHead and LogTail
// only grow, head never passes tail, and the live extent fits the buffer.
// A Grow (new base, reset offsets) starts a fresh epoch.
func (e *Engine) checkWALMonotone(now uint64) {
	for _, tid := range e.eng.ThreadIDs() {
		ext, ok := e.eng.LogExtentOf(tid)
		if !ok {
			continue
		}
		epoch := e.eng.LogEpoch(tid)
		if ext.Head > ext.Tail {
			e.report(now, CheckWALMonotone, "thread %d log head %d passed tail %d", tid, ext.Head, ext.Tail)
		}
		if ext.Tail-ext.Head > ext.Size {
			e.report(now, CheckWALMonotone, "thread %d live log bytes %d exceed buffer size %d", tid, ext.Tail-ext.Head, ext.Size)
		}
		prev, seen := e.logSeen[tid]
		if seen && prev.base == ext.Base && prev.epoch == epoch {
			if ext.Head < prev.head {
				e.report(now, CheckWALMonotone, "thread %d log head went backwards: %d -> %d", tid, prev.head, ext.Head)
			}
			if ext.Tail < prev.tail {
				e.report(now, CheckWALMonotone, "thread %d log tail went backwards: %d -> %d", tid, prev.tail, ext.Tail)
			}
		}
		e.logSeen[tid] = logMark{base: ext.Base, epoch: epoch, head: ext.Head, tail: ext.Tail}
	}
}

// checkCommitOrder (§4.8): for every captured dependence edge (dep ->
// region), a committed region implies its dependence committed no later.
// Runs at Final over the engine's full edge history.
func (e *Engine) checkCommitOrder(now uint64) {
	for _, edge := range e.eng.Edges {
		dep, rid := edge[0], edge[1]
		rAt, rDone := e.eng.CommittedAt[rid]
		if !rDone {
			continue
		}
		dAt, dDone := e.eng.CommittedAt[dep]
		if !dDone {
			e.report(now, CheckCommitOrder, "region %s committed but its dependence %s never did", rid, dep)
			continue
		}
		if dAt > rAt {
			e.report(now, CheckCommitOrder, "region %s committed at %d before its dependence %s at %d", rid, rAt, dep, dAt)
		}
	}
}
