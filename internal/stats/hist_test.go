package stats

import (
	"math/bits"
	"testing"
)

// oldLeadingZeros64 is the hand-rolled shift loop histIndex used before
// switching to math/bits.LeadingZeros64, kept as the cross-check
// reference. Like the original, it must only be called with v >= 1 (it
// never terminates on zero — one reason it was replaced).
func oldLeadingZeros64(v uint64) int {
	n := 0
	for v&(1<<63) == 0 {
		v <<= 1
		n++
	}
	return n
}

// histIndexSweep is the value set the cross-check tests walk: the dense
// low range plus every power-of-two boundary and its neighbours.
func histIndexSweep() []uint64 {
	vals := []uint64{}
	for v := uint64(1); v <= 4096; v++ {
		vals = append(vals, v)
	}
	for shift := uint(12); shift < 64; shift++ {
		p := uint64(1) << shift
		vals = append(vals, p-1, p, p+1)
	}
	return append(vals, ^uint64(0))
}

// TestLeadingZerosMatchesHandRolled cross-checks the math/bits
// replacement against the original loop across the sweep.
func TestLeadingZerosMatchesHandRolled(t *testing.T) {
	for _, v := range histIndexSweep() {
		if got, want := bits.LeadingZeros64(v), oldLeadingZeros64(v); got != want {
			t.Fatalf("LeadingZeros64(%#x) = %d, hand-rolled = %d", v, got, want)
		}
	}
}

// TestHistIndexMatchesHandRolled re-derives the bucket index with the old
// octave computation and compares against histIndex over the sweep.
func TestHistIndexMatchesHandRolled(t *testing.T) {
	oldIndex := func(v uint64) int {
		if v < histSub {
			return int(v)
		}
		octave := 63 - oldLeadingZeros64(v)
		sub := int(v>>(uint(octave)-3)) & (histSub - 1)
		return octave*histSub + sub
	}
	for _, v := range histIndexSweep() {
		if got, want := histIndex(v), oldIndex(v); got != want {
			t.Fatalf("histIndex(%#x) = %d, hand-rolled = %d", v, got, want)
		}
	}
}

// TestHistUpperBoundsValue: every value falls at or below its bucket's
// upper bound, and the bound is within the advertised ~12% resolution.
func TestHistUpperBoundsValue(t *testing.T) {
	for _, v := range histIndexSweep() {
		u := histUpper(histIndex(v))
		if u < v {
			t.Fatalf("histUpper(histIndex(%d)) = %d < value", v, u)
		}
		if v < histSub {
			if u != v {
				t.Fatalf("sub-octave value %d not exact: upper %d", v, u)
			}
			continue
		}
		// Bucket width is 2^(octave-3) <= v/8, so the bound overshoots by
		// less than 12.5%. (Compare the difference: v+v/8 overflows at the
		// top of the range.)
		if u-v > v/8 {
			t.Fatalf("histUpper(histIndex(%d)) = %d overshoots resolution", v, u)
		}
	}
}

// TestQuantileSingleObservation: with one sample every quantile returns
// that sample's bucket bound.
func TestQuantileSingleObservation(t *testing.T) {
	h := &Histogram{}
	h.Observe(42)
	for _, q := range []float64{0.01, 0.5, 0.99, 1.0} {
		got := h.Quantile(q)
		if got < 42 || got > 47 {
			t.Fatalf("Quantile(%g) = %d, want 42's bucket bound", q, got)
		}
	}
}

// TestQuantileExactBelowOctave: values under histSub live in exact
// single-value buckets, so q=1.0 returns them unrounded.
func TestQuantileExactBelowOctave(t *testing.T) {
	for v := uint64(0); v < histSub; v++ {
		h := &Histogram{}
		h.Observe(v)
		if got := h.Quantile(1.0); got != v {
			t.Fatalf("Quantile(1.0) = %d, want exact %d", got, v)
		}
	}
}

// TestQuantileFull: q=1.0 over 1..100 returns the top bucket's bound —
// at least the max, within resolution of it.
func TestQuantileFull(t *testing.T) {
	h := &Histogram{}
	for v := uint64(1); v <= 100; v++ {
		h.Observe(v)
	}
	got := h.Quantile(1.0)
	if got < 100 || got > 112 {
		t.Fatalf("Quantile(1.0) = %d, want max's bucket bound", got)
	}
	if min := h.Quantile(0.001); min != 1 {
		t.Fatalf("Quantile(0.001) = %d, want first observation", min)
	}
}

// TestQuantileEmptyIsZero: no observations means no estimate.
func TestQuantileEmptyIsZero(t *testing.T) {
	h := &Histogram{}
	for _, q := range []float64{0.5, 1.0} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%g) = %d", q, got)
		}
	}
}

// TestSetHistReuse: Hist returns the same histogram for the same name —
// callers can re-fetch by name instead of holding the pointer.
func TestSetHistReuse(t *testing.T) {
	s := New()
	h1 := s.Hist("lat")
	h1.Observe(10)
	h2 := s.Hist("lat")
	if h1 != h2 {
		t.Fatal("Hist returned a different histogram for the same name")
	}
	if h2.Count() != 1 {
		t.Fatalf("count = %d through re-fetched handle", h2.Count())
	}
}

// TestResetKeepsHists pins the current contract: Reset zeroes counters
// but leaves histograms alone. Callers that want a fresh distribution
// use a fresh Set.
func TestResetKeepsHists(t *testing.T) {
	s := New()
	s.Inc("c")
	s.Hist("lat").Observe(5)
	s.Reset()
	if s.Get("c") != 0 {
		t.Fatal("Reset left counters")
	}
	if s.Hist("lat").Count() != 1 {
		t.Fatal("Reset cleared histograms; counter-only reset expected")
	}
}
