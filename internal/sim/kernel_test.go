package sim

import (
	"reflect"
	"testing"
)

func TestSingleThreadAdvances(t *testing.T) {
	k := NewKernel()
	var end uint64
	k.Spawn("a", func(th *Thread) {
		th.Advance(10)
		th.Advance(5)
		end = th.Now()
	})
	k.Run()
	if end != 15 {
		t.Fatalf("thread clock = %d, want 15", end)
	}
	if k.Now() != 15 {
		t.Fatalf("kernel clock = %d, want 15", k.Now())
	}
}

func TestThreadsInterleaveByClock(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Spawn("slow", func(th *Thread) {
		for i := 0; i < 3; i++ {
			th.Advance(10)
			order = append(order, "slow")
		}
	})
	k.Spawn("fast", func(th *Thread) {
		for i := 0; i < 3; i++ {
			th.Advance(4)
			order = append(order, "fast")
		}
	})
	k.Run()
	want := []string{"fast", "fast", "slow", "fast", "slow", "slow"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	k := NewKernel()
	var fired []uint64
	k.Schedule(30, func() { fired = append(fired, 30) })
	k.Schedule(10, func() { fired = append(fired, 10) })
	k.Schedule(20, func() { fired = append(fired, 20) })
	k.Spawn("t", func(th *Thread) { th.Advance(100) })
	k.Run()
	want := []uint64{10, 20, 30}
	if !reflect.DeepEqual(fired, want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
}

func TestEventBeforeThreadAtSameInstant(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Schedule(10, func() { order = append(order, "event") })
	k.Spawn("t", func(th *Thread) {
		th.Advance(10)
		order = append(order, "thread")
	})
	k.Run()
	// An event at cycle 10 must be visible to a thread step beginning at 10.
	want := []string{"event", "thread"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestEventTieBreakIsInsertionOrder(t *testing.T) {
	k := NewKernel()
	var fired []int
	for i := 0; i < 5; i++ {
		i := i
		k.Schedule(7, func() { fired = append(fired, i) })
	}
	k.Spawn("t", func(th *Thread) { th.Advance(8) })
	k.Run()
	if !reflect.DeepEqual(fired, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("fired = %v, want insertion order", fired)
	}
}

func TestWaitUntilUnblocksOnEvent(t *testing.T) {
	k := NewKernel()
	ready := false
	var woke uint64
	k.Schedule(50, func() { ready = true })
	k.Spawn("waiter", func(th *Thread) {
		th.Advance(1)
		th.WaitUntil(func() bool { return ready })
		woke = th.Now()
	})
	k.Run()
	if woke != 50 {
		t.Fatalf("woke at %d, want 50", woke)
	}
}

func TestWaitUntilImmediateWhenTrue(t *testing.T) {
	k := NewKernel()
	var woke uint64
	k.Spawn("w", func(th *Thread) {
		th.Advance(3)
		th.WaitUntil(func() bool { return true })
		woke = th.Now()
	})
	k.Run()
	if woke != 3 {
		t.Fatalf("woke at %d, want 3 (no block)", woke)
	}
}

func TestSleepUntil(t *testing.T) {
	k := NewKernel()
	var woke uint64
	k.Spawn("s", func(th *Thread) {
		th.SleepUntil(123)
		woke = th.Now()
	})
	k.Run()
	if woke != 123 {
		t.Fatalf("woke at %d, want 123", woke)
	}
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	k := NewKernel()
	k.Spawn("stuck", func(th *Thread) {
		th.WaitUntil(func() bool { return false })
	})
	k.Run()
}

func TestScheduleAfter(t *testing.T) {
	k := NewKernel()
	var at uint64
	k.Spawn("t", func(th *Thread) {
		th.Advance(10)
		th.Kernel().ScheduleAfter(5, func() { at = th.Kernel().Now() })
		th.Advance(100)
	})
	k.Run()
	if at != 15 {
		t.Fatalf("event fired at %d, want 15", at)
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	k := NewKernel()
	var m Mutex
	inside := 0
	maxInside := 0
	for i := 0; i < 4; i++ {
		k.Spawn("worker", func(th *Thread) {
			for j := 0; j < 10; j++ {
				m.Lock(th)
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				th.Advance(7)
				inside--
				m.Unlock(th)
				th.Advance(3)
			}
		})
	}
	k.Run()
	if maxInside != 1 {
		t.Fatalf("max threads inside critical section = %d, want 1", maxInside)
	}
}

func TestMutexContentionCostsTime(t *testing.T) {
	k := NewKernel()
	var m Mutex
	var second uint64
	k.Spawn("first", func(th *Thread) {
		m.Lock(th)
		th.Advance(100)
		m.Unlock(th)
	})
	k.Spawn("second", func(th *Thread) {
		th.Advance(1) // ensure first grabs the lock
		m.Lock(th)
		second = th.Now()
		m.Unlock(th)
	})
	k.Run()
	if second < 104 {
		t.Fatalf("contended acquire completed at %d, want >= 104", second)
	}
}

func TestMutexUnlockByNonHolderPanics(t *testing.T) {
	k := NewKernel()
	var m Mutex
	k.Spawn("a", func(th *Thread) { m.Lock(th) })
	k.Spawn("b", func(th *Thread) {
		th.Advance(10)
		defer func() {
			if recover() == nil {
				t.Error("expected panic on foreign unlock")
			}
		}()
		m.Unlock(th)
	})
	k.Run()
}

func TestTryLock(t *testing.T) {
	k := NewKernel()
	var m Mutex
	k.Spawn("a", func(th *Thread) {
		if !m.TryLock(th) {
			t.Error("first TryLock should succeed")
		}
		if m.TryLock(th) {
			t.Error("second TryLock should fail while held")
		}
	})
	k.Run()
}

func TestDeterminism(t *testing.T) {
	run := func() []string {
		k := NewKernel()
		var trace []string
		var m Mutex
		for i, d := range []uint64{3, 5, 7} {
			name := string(rune('a' + i))
			d := d
			k.Spawn(name, func(th *Thread) {
				for j := 0; j < 5; j++ {
					m.Lock(th)
					th.Advance(d)
					trace = append(trace, name)
					m.Unlock(th)
				}
			})
		}
		return append(trace[:0:0], trace...)
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical runs diverged:\n%v\n%v", a, b)
	}
}

func TestSpawnFromRunningThread(t *testing.T) {
	k := NewKernel()
	var childEnd uint64
	k.Spawn("parent", func(th *Thread) {
		th.Advance(10)
		k.Spawn("child", func(c *Thread) {
			c.Advance(5)
			childEnd = c.Now()
		})
		th.Advance(1)
	})
	k.Run()
	if childEnd != 15 {
		t.Fatalf("child finished at %d, want 15 (spawned at 10, ran 5)", childEnd)
	}
}

func TestKernelClockMonotone(t *testing.T) {
	k := NewKernel()
	var samples []uint64
	k.Schedule(5, func() { samples = append(samples, k.Now()) })
	k.Spawn("a", func(th *Thread) {
		th.Advance(3)
		samples = append(samples, k.Now())
		th.Advance(10)
		samples = append(samples, k.Now())
	})
	k.Run()
	for i := 1; i < len(samples); i++ {
		if samples[i] < samples[i-1] {
			t.Fatalf("kernel clock went backwards: %v", samples)
		}
	}
}

func TestHaltStopsRun(t *testing.T) {
	k := NewKernel()
	steps := 0
	k.Schedule(50, func() { k.Halt() })
	k.Spawn("w", func(th *Thread) {
		for i := 0; i < 1000; i++ {
			th.Advance(10)
			steps++
		}
	})
	k.Run()
	if !k.Halted() {
		t.Fatal("kernel not halted")
	}
	if steps >= 1000 {
		t.Fatal("thread ran to completion despite halt")
	}
	if k.Now() > 100 {
		t.Fatalf("kernel advanced to %d after halt at 50", k.Now())
	}
}

func TestHaltFromThread(t *testing.T) {
	k := NewKernel()
	var after bool
	k.Spawn("a", func(th *Thread) {
		th.Advance(10)
		k.Halt()
		th.Advance(10) // still runs to its next yield...
	})
	k.Spawn("b", func(th *Thread) {
		th.Advance(1000)
		after = true // ...but no one else is scheduled afterwards
	})
	k.Run()
	if after {
		t.Fatal("another thread ran after Halt")
	}
}
