package obs

import "asap/internal/sim"

// Session bundles a profiler and a recorder into one sim.Observer, so a
// run can attach either or both with a single kernel hook. Nil members
// are skipped (both Profiler and Recorder are nil-safe).
type Session struct {
	Prof *Profiler
	Rec  *Recorder
}

var _ sim.Observer = (*Session)(nil)

// ThreadStart implements sim.Observer.
func (s *Session) ThreadStart(t *sim.Thread) { s.Prof.ThreadStart(t) }

// ClockAdvance implements sim.Observer.
func (s *Session) ClockAdvance(t *sim.Thread, delta uint64) { s.Prof.ClockAdvance(t, delta) }

// LockBegin implements sim.Observer.
func (s *Session) LockBegin(t *sim.Thread) { s.Prof.LockBegin(t) }

// LockEnd implements sim.Observer.
func (s *Session) LockEnd(t *sim.Thread) { s.Prof.LockEnd(t) }

// Tick implements sim.Observer.
func (s *Session) Tick(now uint64) { s.Rec.Tick(now) }
