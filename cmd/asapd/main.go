// Command asapd is the experiment service: a long-lived daemon that
// accepts sweep specs over HTTP, journals them durably before
// acknowledging, fans execution across a worker pool, and serves results
// from a content-addressed store. Jobs run the same internal/sweep code
// path as cmd/asapbench, so a sweep submitted here — even one the daemon
// was kill -9ed in the middle of — completes with output byte-identical
// to the one-shot CLI.
//
// Usage:
//
//	asapd -addr :8372 -dir /var/lib/asapd       # serve
//	asapd -campaign 200 -seed 7                 # run the fault campaign
//
// Submit and fetch a sweep:
//
//	curl -d '{"experiments":["fig7"],"scale":"quick"}' localhost:8372/api/v1/jobs
//	curl localhost:8372/api/v1/jobs/1
//	curl localhost:8372/api/v1/jobs/1/result
//
// Crash safety: every queue transition is journaled (CRC-framed,
// fsynced) before it is applied. Restarting after any kind of death
// replays the journal, expires the orphaned leases, and resumes the
// queue; completed work is never re-run and never lost. SIGINT/SIGTERM
// drain gracefully: intake stops with 503, in-flight sweeps get
// -drain-grace to finish, then are checkpointed back to pending
// (uncharged) for the next start.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"asap/internal/queue"
	"asap/internal/sweep"
)

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", ":8372", "HTTP listen address")
	dir := flag.String("dir", "asapd-data", "data directory (journal + artifact store)")
	workers := flag.Int("workers", 2, "concurrent job executors")
	lease := flag.Duration("lease", 5*time.Minute, "lease timeout before a stalled job is redelivered")
	maxDeliveries := flag.Int("max-deliveries", 5, "deliveries before a job is dead-lettered")
	backoffBase := flag.Duration("backoff-base", 250*time.Millisecond, "retry backoff after the first failure")
	backoffCap := flag.Duration("backoff-cap", 30*time.Second, "retry backoff ceiling")
	drainGrace := flag.Duration("drain-grace", time.Minute, "how long a drain waits for in-flight jobs before checkpointing them")
	volatileFlag := flag.Bool("volatile", false, "disable the journal (no crash safety; for the fault campaign's negative control)")
	campaign := flag.Int("campaign", 0, "run N seeded kill/restart fault-campaign cases instead of serving")
	seed := flag.Int64("seed", 1, "fault campaign seed")
	flag.Parse()

	if *campaign > 0 {
		return runCampaign(*campaign, *seed, *volatileFlag)
	}

	cfg := queue.Config{
		Dir:     *dir,
		Workers: *workers,
		Policy: queue.Policy{
			MaxDeliveries: *maxDeliveries,
			LeaseTimeout:  *lease,
			BackoffBase:   *backoffBase,
			BackoffCap:    *backoffCap,
		},
		Exec:     sweepExec,
		Validate: validateSpec,
		Volatile: *volatileFlag,
	}
	d, err := queue.Open(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "asapd: %v\n", err)
		return 1
	}
	if d.Recovered.Jobs > 0 || d.JournalRep.TornBytes > 0 {
		fmt.Fprintf(os.Stderr,
			"asapd: recovered %d jobs (%d pending, %d done, %d dead, %d orphaned leases requeued; %d torn journal bytes discarded)\n",
			d.Recovered.Jobs, d.Recovered.Pending, d.Recovered.Done, d.Recovered.Dead,
			d.Recovered.Orphaned, d.JournalRep.TornBytes)
	}
	d.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "asapd: %v\n", err)
		return 1
	}
	srv := &http.Server{Handler: d.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "asapd: serving on %s (data in %s, %d workers)\n",
		ln.Addr(), *dir, *workers)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "asapd: serve: %v\n", err)
		return 1
	}

	// Graceful drain: stop intake (new submissions already 503 once the
	// drain flag is up), give in-flight sweeps the grace period, then
	// checkpoint whatever is still running and flush the journal.
	fmt.Fprintf(os.Stderr, "asapd: signal received, draining (grace %s)\n", *drainGrace)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	drainErr := d.Drain(drainCtx)
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	srv.Shutdown(shutCtx)
	if drainErr != nil {
		fmt.Fprintf(os.Stderr, "asapd: drain: %v\n", drainErr)
		return 1
	}
	fmt.Fprintln(os.Stderr, "asapd: drained cleanly")
	return 0
}

// validateSpec gates intake: a spec that does not parse and validate as
// a sweep never reaches the journal.
func validateSpec(raw json.RawMessage) error {
	var spec sweep.Spec
	if err := json.Unmarshal(raw, &spec); err != nil {
		return fmt.Errorf("parsing sweep spec: %w", err)
	}
	return spec.Validate()
}

// sweepExec runs one journaled job through the same renderer the CLI
// uses. Each finished experiment heartbeats the lease, so a long sweep
// making real progress outlives the lease timeout while a stalled one is
// still redelivered.
func sweepExec(ctx context.Context, raw json.RawMessage) ([]byte, error) {
	var spec sweep.Spec
	if err := json.Unmarshal(raw, &spec); err != nil {
		return nil, err
	}
	var out bytes.Buffer
	results, err := sweep.Execute(ctx, spec, &out, sweep.Options{
		OnExperiment: func(string, time.Duration, error) { queue.Heartbeat(ctx) },
	})
	if err != nil {
		return nil, err
	}
	var failed []string
	for _, r := range results {
		if r.Error != "" {
			failed = append(failed, fmt.Sprintf("%s: %s", r.Name, r.Error))
		}
	}
	if len(failed) > 0 {
		return nil, fmt.Errorf("%d experiments failed: %v", len(failed), failed)
	}
	return out.Bytes(), nil
}

// runCampaign executes the seeded fault campaign (asapd -campaign N) and
// prints its summary as JSON.
func runCampaign(cases int, seed int64, volatile bool) int {
	sum, err := queue.RunCampaign(queue.CampaignConfig{
		Cases:    cases,
		Seed:     seed,
		Volatile: volatile,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "asapd: campaign: %v\n", err)
		return 1
	}
	buf, _ := json.MarshalIndent(sum, "", "  ")
	fmt.Println(string(buf))
	if sum.Bad() {
		fmt.Fprintf(os.Stderr, "asapd: campaign FAILED with %d audit failures\n", len(sum.Failures))
		return 1
	}
	if volatile && sum.LossDetectedCases == 0 {
		fmt.Fprintln(os.Stderr, "asapd: volatile control detected no loss; the checker is blind")
		return 1
	}
	if volatile {
		fmt.Fprintf(os.Stderr, "asapd: negative control: %d/%d cases lost jobs without the journal (expected)\n",
			sum.LossDetectedCases, sum.Cases)
		return 0
	}
	fmt.Fprintf(os.Stderr, "asapd: campaign passed: %d cases, %d daemon kills, %d worker panics, 0 lost, 0 doubled\n",
		sum.Cases, sum.DaemonKills, sum.WorkerPanics)
	return 0
}
