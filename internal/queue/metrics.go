package queue

import (
	"asap/internal/metrics"
)

// transitionLabel maps the queue's internal counter names
// ("queue.enqueued", ...) to the asapd_queue_transitions_total type
// label. Keeping one table here means /api/v1/stats counters and
// /metrics transitions can never disagree on taxonomy.
var transitionLabel = map[string]string{
	CtrEnqueued:    "enqueued",
	CtrLeased:      "leased",
	CtrAcked:       "acked",
	CtrFailed:      "failed",
	CtrRedelivered: "redelivered",
	CtrExpired:     "expired",
	CtrReleased:    "released",
	CtrDead:        "dead",
	CtrOrphaned:    "orphaned",
	CtrLeaseLost:   "lease_lost",
}

// svcMetrics is every instrument the daemon maintains, registered once
// against one registry. All pointers are used nil-safely (a daemon
// always builds this, but subsystem hooks tolerate absence so the
// queue/journal/store stay usable standalone).
type svcMetrics struct {
	reg *metrics.Registry

	journalAppends     *metrics.Counter
	journalAppendBytes *metrics.Counter
	journalSyncs       *metrics.Counter
	journalCompactions *metrics.Counter

	ioErrors *metrics.CounterVec
	degraded *metrics.Gauge

	transitions *metrics.CounterVec

	storePuts     *metrics.Counter
	storeDedup    *metrics.Counter
	storePutBytes *metrics.Counter

	execBusy       *metrics.Gauge
	execJobSeconds *metrics.Histogram
	heartbeats     *metrics.Counter

	httpRequests *metrics.CounterVec
	httpSeconds  *metrics.HistogramVec
}

// newSvcMetrics registers the daemon's metric families on reg. Naming
// follows DESIGN.md §14: asapd_<subsystem>_<what>_<unit>, counters end
// in _total, histograms use fixed pow2 bucket ladders so boundaries
// never move between versions.
func newSvcMetrics(reg *metrics.Registry) *svcMetrics {
	return &svcMetrics{
		reg: reg,

		journalAppends: reg.Counter("asapd_journal_appends_total",
			"Journal records appended (each is synced before the transition applies)."),
		journalAppendBytes: reg.Counter("asapd_journal_append_bytes_total",
			"Bytes appended to the journal, frames and CRCs included."),
		journalSyncs: reg.Counter("asapd_journal_syncs_total",
			"Journal medium syncs (one per append: write-ahead discipline)."),
		journalCompactions: reg.Counter("asapd_journal_compactions_total",
			"Journal rotations: checkpoint written into a fresh segment, old segments deleted."),

		ioErrors: reg.CounterVec("asapd_io_errors_total",
			"I/O failures on durable paths, by path (journal/store/resultcache/snapshot) and fault class.",
			"path", "class"),
		degraded: reg.Gauge("asapd_degraded",
			"Disk-budget degraded level: 0 healthy, 1 soft (cache shed), 2 hard (intake refused)."),

		transitions: reg.CounterVec("asapd_queue_transitions_total",
			"Lease state-machine transitions by type.", "type"),

		storePuts: reg.Counter("asapd_store_puts_total",
			"Artifact store puts, dedup hits included."),
		storeDedup: reg.Counter("asapd_store_put_dedup_total",
			"Puts that hit an existing object (content address already present)."),
		storePutBytes: reg.Counter("asapd_store_put_bytes_total",
			"Bytes handed to Put (logical, before dedup)."),

		execBusy: reg.Gauge("asapd_exec_busy_workers",
			"Workers currently executing a leased job."),
		execJobSeconds: reg.Histogram("asapd_exec_job_seconds",
			"Job executor wall time.", metrics.Pow2Buckets(0.25, 12)),
		heartbeats: reg.Counter("asapd_exec_heartbeats_total",
			"Executor progress heartbeats (each extends the job's lease)."),

		httpRequests: reg.CounterVec("asapd_http_requests_total",
			"HTTP requests by route pattern and status code.", "route", "code"),
		httpSeconds: reg.HistogramVec("asapd_http_request_seconds",
			"HTTP request latency by route pattern.", metrics.Pow2Buckets(0.001, 13), "route"),
	}
}

// wire attaches the instruments to the daemon's subsystems and
// registers the scrape-time gauges. Called once from Open, after the
// journal/queue/store exist — counters already bumped during recovery
// (orphan expiry, replay) are synced in, so post-restart scrapes agree
// with the recovery report.
func (m *svcMetrics) wire(d *Daemon) {
	reg := m.reg

	if j := d.Q.Journal(); j != nil {
		j.setMetrics(m.journalAppends, m.journalAppendBytes, m.journalSyncs,
			m.journalCompactions, m.ioErrors)
		reg.GaugeFunc("asapd_journal_size_bytes",
			"Current journal size (header + all good records).",
			func() float64 { return float64(j.Size()) })
		reg.GaugeFunc("asapd_journal_segments",
			"Live journal segment files (1 after a completed compaction).",
			func() float64 { return float64(j.Segments()) })
	}
	reg.Gauge("asapd_journal_replay_records",
		"Records recovered by the last journal replay.").Set(float64(d.JournalRep.Records))
	reg.Gauge("asapd_journal_replay_torn_bytes",
		"Trailing bytes discarded as a torn append by the last replay.").Set(float64(d.JournalRep.TornBytes))
	if d.JournalRep.TornBytes > 0 {
		reg.Counter("asapd_journal_torn_truncations_total",
			"Journal opens that truncated a torn tail.").Inc()
	} else {
		reg.Counter("asapd_journal_torn_truncations_total",
			"Journal opens that truncated a torn tail.")
	}

	d.Q.setMetrics(m.transitions)
	d.St.setMetrics(m.storePuts, m.storeDedup, m.storePutBytes, m.ioErrors)

	depth := reg.GaugeVec("asapd_queue_depth", "Jobs by state (eligible = pending and past backoff gate).", "state")
	depth.WithFunc(func() float64 { return float64(d.Q.Depths().Pending) }, "pending")
	depth.WithFunc(func() float64 { return float64(d.Q.Depths().Eligible) }, "eligible")
	depth.WithFunc(func() float64 { return float64(d.Q.Depths().Leased) }, "leased")
	depth.WithFunc(func() float64 { return float64(d.Q.Depths().Done) }, "done")
	depth.WithFunc(func() float64 { return float64(d.Q.Depths().Dead) }, "dead")

	storeBytes := reg.GaugeVec("asapd_store_bytes",
		"On-disk footprint by store (journal = active segment; artifacts/resultcache = committed files).",
		"store")
	if j := d.Q.Journal(); j != nil {
		storeBytes.WithFunc(func() float64 { return float64(j.Size()) }, "journal")
	}
	storeBytes.WithFunc(func() float64 { return float64(d.St.Bytes()) }, "artifacts")
	if usage := d.cfg.CacheUsage; usage != nil {
		storeBytes.WithFunc(func() float64 { return float64(usage()) }, "resultcache")
	}

	reg.Gauge("asapd_exec_workers", "Configured worker pool size.").Set(float64(d.cfg.Workers))
	reg.GaugeFunc("asapd_uptime_seconds", "Seconds since daemon start.",
		func() float64 { return d.cfg.Clock().Sub(d.start).Seconds() })
	reg.GaugeFunc("asapd_draining", "1 while a drain is in progress.",
		func() float64 {
			if d.isDraining() {
				return 1
			}
			return 0
		})
}
