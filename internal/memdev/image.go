package memdev

import (
	"bytes"
	"encoding/gob"

	"asap/internal/arch"
)

// Image is the byte content of persistent memory as actually persisted:
// only WPQ-accepted writes that drained (or were flushed by ADR on a crash)
// appear here. Crash recovery reads and repairs this image.
type Image struct {
	lines map[arch.LineAddr][]byte
}

// NewImage returns an empty persisted image.
func NewImage() *Image {
	return &Image{lines: make(map[arch.LineAddr][]byte)}
}

// Write stores a 64 B payload at line. The payload is copied.
func (im *Image) Write(line arch.LineAddr, payload []byte) {
	buf := im.lines[line]
	if buf == nil {
		buf = make([]byte, arch.LineSize)
		im.lines[line] = buf
	}
	copy(buf, payload)
}

// Read returns the 64 B content of line. Never-written lines read as zero.
// The returned slice is a copy.
func (im *Image) Read(line arch.LineAddr) []byte {
	out := make([]byte, arch.LineSize)
	copy(out, im.lines[line])
	return out
}

// Has reports whether line has ever been written.
func (im *Image) Has(line arch.LineAddr) bool {
	_, ok := im.lines[line]
	return ok
}

// Len returns the number of distinct lines ever persisted.
func (im *Image) Len() int { return len(im.lines) }

// Clone returns a deep copy of the image.
func (im *Image) Clone() *Image {
	out := NewImage()
	for line, buf := range im.lines {
		cp := make([]byte, arch.LineSize)
		copy(cp, buf)
		out.lines[line] = cp
	}
	return out
}

// GobEncode implements gob.GobEncoder so crash images can be saved to disk
// and recovered in another process.
func (im *Image) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(im.lines); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (im *Image) GobDecode(data []byte) error {
	im.lines = make(map[arch.LineAddr][]byte)
	return gob.NewDecoder(bytes.NewReader(data)).Decode(&im.lines)
}

// Lines iterates the persisted lines in unspecified order.
func (im *Image) Lines(fn func(line arch.LineAddr, payload []byte)) {
	for line, buf := range im.lines {
		fn(line, buf)
	}
}
