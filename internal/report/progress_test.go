package report

import (
	"strings"
	"testing"
	"time"
)

func TestProgressCountsAndSlowest(t *testing.T) {
	var b strings.Builder
	p := NewProgress(&b)
	p.Start(3)
	p.Done("fig1/Q/NP", 2*time.Millisecond, true)
	p.Done("fig1/Q/SW", 9*time.Millisecond, true)
	p.Start(2) // batches accumulate
	p.Done("fig7/Q/NP", 1*time.Millisecond, false)
	out := b.String()
	if !strings.Contains(out, "[3/5]") {
		t.Fatalf("running totals missing from %q", out)
	}
	if !strings.Contains(out, "slowest fig1/Q/SW") {
		t.Fatalf("slowest job missing from %q", out)
	}
	if !strings.Contains(out, "failed 1") {
		t.Fatalf("failure count missing from %q", out)
	}
	if !strings.Contains(out, "eta") {
		t.Fatalf("eta missing from %q", out)
	}
	p.Finish()
	if !strings.HasSuffix(b.String(), "\n") {
		t.Fatalf("Finish must terminate the line")
	}
}

func TestProgressFinishWithoutJobsIsSilent(t *testing.T) {
	var b strings.Builder
	p := NewProgress(&b)
	p.Finish()
	if b.Len() != 0 {
		t.Fatalf("idle Finish wrote %q", b.String())
	}
}
