package queue

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// Handler returns the daemon's HTTP API:
//
//	POST /api/v1/jobs            submit a spec (body = spec JSON) -> {id}
//	GET  /api/v1/jobs            list jobs
//	GET  /api/v1/jobs/{id}       one job's status
//	GET  /api/v1/jobs/{id}/result the job's artifact bytes (404 until done)
//	GET  /api/v1/artifacts/{hash} artifact by content address
//	GET  /api/v1/stats           depth gauges, counters, recovery report
//	GET  /api/v1/series          queue-depth time series (CSV)
//	GET  /healthz                liveness
//
// Submissions are rejected with 503 once a drain has begun, and with 400
// when the configured validator refuses the spec — invalid work never
// reaches the journal.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", d.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", d.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", d.handleJob)
	mux.HandleFunc("GET /api/v1/jobs/{id}/result", d.handleJobResult)
	mux.HandleFunc("GET /api/v1/artifacts/{hash}", d.handleArtifact)
	mux.HandleFunc("GET /api/v1/stats", d.handleStats)
	mux.HandleFunc("GET /api/v1/series", d.handleSeries)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// maxSpecBytes bounds one submitted spec.
const maxSpecBytes = 1 << 20

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (d *Daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(body) > maxSpecBytes {
		writeError(w, http.StatusRequestEntityTooLarge, errors.New("spec exceeds 1 MiB"))
		return
	}
	if !json.Valid(body) {
		writeError(w, http.StatusBadRequest, errors.New("spec is not valid JSON"))
		return
	}
	id, err := d.Submit(json.RawMessage(body))
	switch {
	case err == nil:
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	default:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"id":     id,
		"state":  StatePending,
		"status": fmt.Sprintf("/api/v1/jobs/%d", id),
	})
}

func (d *Daemon) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, d.Q.List())
}

func (d *Daemon) jobFromPath(w http.ResponseWriter, r *http.Request) (JobInfo, bool) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, errors.New("job id must be an integer"))
		return JobInfo{}, false
	}
	info, ok := d.Q.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %d", id))
		return JobInfo{}, false
	}
	return info, true
}

func (d *Daemon) handleJob(w http.ResponseWriter, r *http.Request) {
	info, ok := d.jobFromPath(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (d *Daemon) handleJobResult(w http.ResponseWriter, r *http.Request) {
	info, ok := d.jobFromPath(w, r)
	if !ok {
		return
	}
	if info.State != StateDone {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("job %d is %s, no result yet", info.ID, info.State))
		return
	}
	d.serveArtifact(w, r, info.Hash)
}

func (d *Daemon) handleArtifact(w http.ResponseWriter, r *http.Request) {
	d.serveArtifact(w, r, r.PathValue("hash"))
}

func (d *Daemon) serveArtifact(w http.ResponseWriter, r *http.Request, hash string) {
	path, err := d.St.Path(hash)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if !d.St.Has(hash) {
		writeError(w, http.StatusNotFound, fmt.Errorf("no artifact %s", hash))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Content-Address", hash)
	http.ServeFile(w, r, path)
}

func (d *Daemon) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, d.Stats())
}

func (d *Daemon) handleSeries(w http.ResponseWriter, r *http.Request) {
	if d.Rec == nil {
		writeError(w, http.StatusNotFound, errors.New("series recording disabled"))
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	d.Rec.WriteCSV(w)
}
