package wal

import (
	"reflect"
	"testing"
	"testing/quick"

	"asap/internal/arch"
	"asap/internal/heap"
)

func TestAllocRecordContiguity(t *testing.T) {
	h := heap.New()
	l := NewThreadLog(h, 4*RecordBytes)
	hdr, end, ok := l.AllocRecord()
	if !ok {
		t.Fatal("alloc failed on empty log")
	}
	if uint64(hdr) != l.Base() {
		t.Fatalf("first header at %#x, want base %#x", hdr, l.Base())
	}
	if end != RecordBytes {
		t.Fatalf("end = %d, want %d", end, RecordBytes)
	}
	for i := 0; i < RecordEntries; i++ {
		want := arch.LineAddr(uint64(hdr) + uint64((i+1)*arch.LineSize))
		if got := EntryLine(hdr, i); got != want {
			t.Fatalf("EntryLine(%d) = %#x, want %#x", i, got, want)
		}
	}
}

func TestAllocUntilFullThenFree(t *testing.T) {
	h := heap.New()
	l := NewThreadLog(h, 2*RecordBytes)
	var ends []uint64
	for i := 0; i < 2; i++ {
		_, end, ok := l.AllocRecord()
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		ends = append(ends, end)
	}
	if _, _, ok := l.AllocRecord(); ok {
		t.Fatal("alloc must fail when full")
	}
	l.FreeUpTo(ends[0])
	if _, _, ok := l.AllocRecord(); !ok {
		t.Fatal("alloc must succeed after freeing one record")
	}
}

func TestCircularReuseSameAddresses(t *testing.T) {
	h := heap.New()
	l := NewThreadLog(h, 2*RecordBytes)
	h1, e1, _ := l.AllocRecord()
	_, e2, _ := l.AllocRecord()
	l.FreeUpTo(e1)
	l.FreeUpTo(e2)
	h3, _, ok := l.AllocRecord()
	if !ok || h3 != h1 {
		t.Fatalf("wrapped alloc = %#x, want reuse of %#x", h3, h1)
	}
}

func TestGrowAfterOverflow(t *testing.T) {
	h := heap.New()
	l := NewThreadLog(h, RecordBytes)
	l.AllocRecord()
	if _, _, ok := l.AllocRecord(); ok {
		t.Fatal("expected overflow")
	}
	oldBase := l.Base()
	l.Grow()
	if l.Size() != 2*RecordBytes {
		t.Fatalf("grown size = %d", l.Size())
	}
	if l.Base() == oldBase {
		t.Fatal("grow must allocate a fresh buffer")
	}
	if l.Overflows() != 1 {
		t.Fatalf("overflows = %d", l.Overflows())
	}
	if _, _, ok := l.AllocRecord(); !ok {
		t.Fatal("alloc must work after grow")
	}
}

func TestFreeIdempotentAndMonotone(t *testing.T) {
	h := heap.New()
	l := NewThreadLog(h, 4*RecordBytes)
	_, e1, _ := l.AllocRecord()
	_, e2, _ := l.AllocRecord()
	l.FreeUpTo(e2)
	l.FreeUpTo(e1) // going backwards must be a no-op
	if l.Head() != e2 {
		t.Fatalf("head = %d, want %d", l.Head(), e2)
	}
	l.FreeUpTo(e2 + 100*RecordBytes) // cannot free past tail
	if l.Head() != l.Tail() {
		t.Fatal("head clamped to tail")
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	f := func(tid uint8, local uint32, rawLines []uint32) bool {
		if local == 0 {
			local = 1
		}
		if len(rawLines) > RecordEntries {
			rawLines = rawLines[:RecordEntries]
		}
		if len(rawLines) == 0 {
			rawLines = []uint32{1}
		}
		rid := arch.MakeRID(int(tid), uint64(local))
		var lines []arch.LineAddr
		for _, r := range rawLines {
			lines = append(lines, arch.LineAddr(uint64(r)*arch.LineSize))
		}
		buf := EncodeHeader(rid, lines)
		gotRID, gotLines, ok := DecodeHeader(buf)
		return ok && gotRID == rid && reflect.DeepEqual(gotLines, lines)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, _, ok := DecodeHeader(make([]byte, arch.LineSize)); ok {
		t.Fatal("zero line decoded as header")
	}
	bad := EncodeHeader(arch.MakeRID(0, 1), []arch.LineAddr{64})
	bad[9] = 200 // invalid count
	if _, _, ok := DecodeHeader(bad); ok {
		t.Fatal("invalid count accepted")
	}
	short := []byte{1, 2, 3}
	if _, _, ok := DecodeHeader(short); ok {
		t.Fatal("short line accepted")
	}
}

func TestEncodeTooManyEntriesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	lines := make([]arch.LineAddr, RecordEntries+1)
	EncodeHeader(arch.MakeRID(0, 1), lines)
}

func TestHighAddressSurvives48BitPacking(t *testing.T) {
	rid := arch.MakeRID(7, 9)
	line := arch.LineAddr(uint64(1)<<45 + 64)
	buf := EncodeHeader(rid, []arch.LineAddr{line})
	_, lines, ok := DecodeHeader(buf)
	if !ok || lines[0] != line {
		t.Fatalf("got %#x, want %#x", lines[0], line)
	}
}
