// protocoltrace makes the ASAP protocol visible: it runs two dependent
// atomic regions with an artificially slow persistent memory and prints
// the hardware event stream — LPO/DPO issue and accept, dependence
// capture, and the asynchronous commits happening long after asap_end.
package main

import (
	"fmt"

	"asap"
	"asap/internal/core"
	"asap/internal/machine"
	"asap/internal/sim"
	"asap/internal/trace"
)

func main() {
	// Build at the machine layer so the trace buffer can be attached.
	mc := machine.DefaultConfig()
	mc.Cores = 2
	mc.Mem.Controllers, mc.Mem.ChannelsPerMC = 1, 1
	mc.Mem.WPQEntries = 1
	mc.Mem.PMWriteCycles = 2000 // slow device: events spread out visibly
	m := machine.New(mc)
	e := core.NewEngine(m, core.DefaultOptions())
	buf := trace.NewBuffer(256)
	e.SetTrace(buf)

	x := m.Heap.Alloc(64, true)
	y := m.Heap.Alloc(64, true)
	var mu sim.Mutex

	producer := func(t *sim.Thread) {
		mu.Lock(t)
		e.Begin(t)
		var b [8]byte
		b[0] = 7
		e.Store(t, x, b[:])
		e.End(t)
		mu.Unlock(t)
		fmt.Printf("[%6d] producer past asap_end (commit still pending)\n", t.Now())
	}
	consumer := func(t *sim.Thread) {
		t.Advance(300)
		mu.Lock(t)
		e.Begin(t)
		var b [8]byte
		e.Load(t, x, b[:])
		b[0]++
		e.Store(t, y, b[:])
		e.End(t)
		mu.Unlock(t)
		fmt.Printf("[%6d] consumer past asap_end (depends on producer)\n", t.Now())
	}
	for _, fn := range []func(*sim.Thread){producer, consumer} {
		fn := fn
		m.K.Spawn("t", func(t *sim.Thread) {
			e.InitThread(t)
			fn(t)
			e.DrainBarrier(t)
		})
	}
	m.K.Run()

	fmt.Println("\nprotocol event stream:")
	fmt.Print(buf.String())
	fmt.Println("\nreading the stream: both region.end events appear well before")
	fmt.Println("their region.commit events (asynchronous commit), the consumer's")
	fmt.Println("dep.add names the producer, and the commits occur in dependence")
	fmt.Println("order even though all persists ran in the background.")

	// The same machinery is reachable from the public API via the engine.
	_ = asap.SchemeASAP
}
