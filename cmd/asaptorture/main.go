// Command asaptorture sweeps the adversarial robustness harness: seeded
// random schedules on resource-exhausted machines (tiny Dependence List,
// CL List, LH-WPQ, WPQ, Bloom filter, log buffer) with the protocol
// invariant engine attached at step granularity, the forward-progress
// watchdog armed, and crash-at-any-cycle fault cases mixed in. Seeded
// negative controls (a deliberately weakened commit rule) must be caught
// by the invariant engine and are shrunk to a minimal schedule by ddmin.
// Exits nonzero on any violation, undiagnosed stall, harness error, or
// missed control, so CI can gate on it.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"

	"asap/internal/faults"
	"asap/internal/report"
	"asap/internal/resultcache"
	"asap/internal/torture"
)

// isTerminal reports whether f is a character device, gating the default
// progress line so piped/CI output stays clean.
func isTerminal(f *os.File) bool {
	fi, err := f.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

func main() {
	seed := flag.Int64("seed", 0, "base seed (0: use ASAP_FUZZ_SEED, else 1)")
	seeds := flag.Int("seeds", 4, "schedule seeds per preset")
	presets := flag.String("configs", "", "comma-separated exhaustion configs (default: all of "+strings.Join(torture.PresetNames(), ",")+")")
	threads := flag.Int("threads", 3, "worker threads per case")
	ops := flag.Int("ops", 40, "operations per thread")
	crashPoints := flag.Int("crash-points", 2, "crash cases per (config, seed) pair (-1 = none)")
	mix := flag.String("mix", "torn=0.2,drop=0.2,reorder=0.3,lhdrop=0.3,flip=1", "crash-time fault mix")
	stride := flag.Uint64("stride", 0, "invariant-check stride in kernel steps (0 = per-case default)")
	controls := flag.Int("negative-controls", 2, "seeded commit-rule-breaking cases that must be caught (-1 = none)")
	shrink := flag.Int("shrink", 200, "replay budget for minimizing each violating schedule (0 = off)")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	jsonPath := flag.String("json", "", "write the full JSON report to this file")
	verbose := flag.Bool("v", false, "print every non-pass outcome")
	progress := flag.Bool("progress", isTerminal(os.Stderr), "print a live progress line to stderr")
	cacheDir := flag.String("cache-dir", "", "result-cache directory: case outcomes keyed by (case, code version) are reused across sweeps")
	noCache := flag.Bool("no-cache", false, "bypass the result cache even when -cache-dir is set")
	flag.Parse()

	baseSeed := *seed
	if baseSeed == 0 {
		baseSeed = 1
		if env := os.Getenv("ASAP_FUZZ_SEED"); env != "" {
			v, err := strconv.ParseInt(env, 10, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ASAP_FUZZ_SEED=%q is not an integer: %v\n", env, err)
				os.Exit(2)
			}
			baseSeed = v
		}
	}
	fmt.Printf("asaptorture: seed %d (override with -seed or ASAP_FUZZ_SEED)\n", baseSeed)

	cfg := torture.SweepConfig{
		Seed:             baseSeed,
		SeedsPerPreset:   *seeds,
		Threads:          *threads,
		Ops:              *ops,
		CrashPoints:      *crashPoints,
		Stride:           *stride,
		NegativeControls: *controls,
		Workers:          *workers,
		ShrinkBudget:     *shrink,
	}
	if *presets != "" {
		cfg.Presets = strings.Split(*presets, ",")
	}
	cache, codeVersion, err := resultcache.OpenCLI(os.Stderr, "asaptorture", *cacheDir, *noCache)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg.Cache, cfg.CodeVersion = cache, codeVersion
	if *mix != "" {
		m, err := faults.ParseMix(*mix)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg.Mix = m
	}

	// SIGINT/SIGTERM cancel the sweep: cases already dispatched finish,
	// the partial report is still written, and the exit status is 130.
	ctx, stopSignals := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stopSignals()
	cfg.Context = ctx

	var prog *report.Progress
	if *progress {
		prog = report.NewProgress(os.Stderr)
		cfg.Reporter = prog
	}

	sum, err := torture.Sweep(cfg)
	if prog != nil {
		prog.Finish()
	}
	if cache != nil {
		hits, misses, _ := cache.Stats()
		fmt.Fprintf(os.Stderr, "asaptorture: result cache: %d hits, %d misses (%s)\n", hits, misses, *cacheDir)
	}
	if sum == nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	interrupted := err != nil

	fmt.Printf("asaptorture: %d cases\n", sum.Total)
	verdicts := make([]string, 0, len(sum.Counts))
	for v := range sum.Counts {
		verdicts = append(verdicts, string(v))
	}
	sort.Strings(verdicts)
	for _, v := range verdicts {
		fmt.Printf("  %-10s %d\n", v, sum.Counts[torture.Verdict(v)])
	}
	fmt.Printf("  controls: %d caught, %d missed\n", sum.ControlsCaught, sum.ControlsMissed)

	for _, o := range sum.Outcomes {
		bad := !o.Case.NegativeControl &&
			(o.Verdict == torture.VerdictViolation || o.Verdict == torture.VerdictStall || o.Verdict == torture.VerdictError)
		missedControl := o.Case.NegativeControl && o.Verdict != torture.VerdictViolation
		if !bad && !missedControl && !(*verbose && o.Verdict != torture.VerdictPass) {
			continue
		}
		fmt.Printf("%s: %s", o.Verdict, o.Case)
		if o.Detail != "" {
			fmt.Printf(": %s", o.Detail)
		}
		fmt.Println()
		for _, v := range o.Violations {
			fmt.Printf("    %s\n", v)
		}
		if o.Stall != "" {
			fmt.Printf("    %s\n", o.Stall)
		}
		if len(o.Shrunk) > 0 {
			fmt.Printf("    minimal schedule (%d ops):\n", len(o.Shrunk))
			for _, op := range o.Shrunk {
				fmt.Printf("      %s\n", op)
			}
		}
	}

	if *jsonPath != "" {
		blob, err := json.MarshalIndent(sum, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, blob, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "writing report:", err)
			os.Exit(2)
		}
		fmt.Println("report:", *jsonPath)
	}

	if interrupted {
		fmt.Fprintf(os.Stderr, "asaptorture: interrupted after %d case(s); partial report flushed\n", sum.Total)
		os.Exit(130)
	}
	if bad := sum.Bad(); bad > 0 {
		fmt.Printf("FAIL: %d bad case(s)\n", bad)
		os.Exit(1)
	}
	fmt.Println("OK: zero invariant violations, zero undiagnosed stalls")
}
