package sim

type threadState uint8

const (
	stateRunnable threadState = iota
	stateBlocked
	stateDone
)

// Thread is a simulated hardware thread with its own virtual clock. All
// methods must be called from within the thread's own function; the kernel
// guarantees that only one thread executes at any instant, so code between
// yields observes and mutates shared state atomically in simulated time.
type Thread struct {
	k      *Kernel
	id     int
	name   string
	now    uint64
	state  threadState
	pred   func() bool
	resume chan struct{}

	// sleepPred is the reusable SleepUntil predicate: it reads sleepAt so
	// timed sleeps allocate no per-call closure. Created on first use.
	sleepAt   uint64
	sleepPred func() bool
}

// ID returns the thread's spawn index, used by hardware as the ThreadID part
// of region IDs.
func (t *Thread) ID() int { return t.id }

// Name returns the name given at Spawn.
func (t *Thread) Name() string { return t.name }

// Now returns the thread's virtual clock in cycles.
func (t *Thread) Now() uint64 { return t.now }

// Kernel returns the kernel this thread runs on.
func (t *Thread) Kernel() *Kernel { return t.k }

// Advance moves the thread's clock forward by cycles and yields to the
// kernel so other threads and events at earlier times can run.
func (t *Thread) Advance(cycles uint64) {
	t.now += cycles
	if t.k.obs != nil && cycles > 0 {
		t.k.obs.ClockAdvance(t, cycles)
	}
	t.yield()
}

// Yield hands control to the kernel without advancing the clock. It gives
// same-time events and threads a chance to run between two operations.
func (t *Thread) Yield() { t.yield() }

// WaitUntil blocks the thread until pred returns true. The predicate is
// evaluated in kernel context (no other thread running) after every event
// and thread step, and the thread resumes immediately once it holds, with
// its clock advanced to the unblocking time. Between WaitUntil returning and
// the thread's next yield no other thread can run, so a resource guarded by
// the predicate can be claimed race-free right after return. Predicates
// must be read-only: the kernel polls them at scheduling decisions and may
// poll a given predicate more or fewer times than simulated time suggests.
func (t *Thread) WaitUntil(pred func() bool) {
	if pred() {
		return
	}
	t.pred = pred
	t.state = stateBlocked
	t.yield()
}

// SleepUntil blocks the thread until the kernel clock reaches cycle at.
// Steady-state it allocates nothing: the anchor event comes from the
// kernel's event pool and the predicate is reused across calls.
func (t *Thread) SleepUntil(at uint64) {
	if t.now >= at {
		return
	}
	if t.sleepPred == nil {
		t.sleepPred = func() bool { return t.k.now >= t.sleepAt }
	}
	t.sleepAt = at
	// Anchor the wakeup with an empty event so the kernel clock is
	// guaranteed to reach it even if nothing else is scheduled.
	t.k.Schedule(at, noopEvent)
	t.WaitUntil(t.sleepPred)
}

// noopEvent anchors timed wakeups; being a named function it captures
// nothing and costs no allocation to schedule.
func noopEvent() {}

// yield returns control to the scheduler. Fast path: if this thread is
// still the unique earliest runnable entity, the kernel's dispatch
// decision is computed inline and control returns immediately — same
// scheduling outcome, no goroutine handoff. Otherwise the thread parks
// and the kernel loop takes over.
func (t *Thread) yield() {
	if t.state == stateRunnable && t.k.fastResume(t) {
		return
	}
	t.k.parked <- t
	<-t.resume
}
