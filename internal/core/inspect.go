package core

import (
	"fmt"
	"sort"
	"strings"

	"asap/internal/arch"
)

// This file is the engine's read-only inspection surface: everything the
// invariant engine (internal/invariant) and the forward-progress watchdog
// need to validate protocol state at step granularity, without reaching
// into unexported fields or perturbing the simulation. Every accessor is a
// pure read of current state.

// RegionInspect is a read-only view of one live (uncommitted) region.
type RegionInspect struct {
	RID    arch.RID
	Thread int
	// Ended reports that asap_end ran: the region is in the asynchronous
	// commit window.
	Ended bool
	// CLResident reports the region still holds a CL List entry (not all
	// DPOs have completed); CLSlots is its current CLPtr occupancy.
	CLResident bool
	CLSlots    int
	// OpenRecord reports a log record is still filling; OpenHeaderAddr is
	// that record's header line (the LH-WPQ open-entry key).
	OpenRecord     bool
	OpenHeaderAddr arch.LineAddr
	// LogEnd is the absolute log offset after the region's last allocated
	// record; zero if the region never logged. LogEpoch is the thread
	// log's Grow count when LogEnd was recorded: offsets are only
	// comparable against the live head/tail while the epoch matches.
	LogEnd   uint64
	LogEpoch int
}

// LiveRegions returns a snapshot view of every uncommitted region, in RID
// order.
func (e *Engine) LiveRegions() []RegionInspect {
	out := make([]RegionInspect, 0, len(e.regions))
	for _, rid := range e.UncommittedRIDs() {
		r := e.regions[rid]
		ri := RegionInspect{
			RID:        rid,
			Thread:     r.ts.tid,
			Ended:      r.endedAt > 0,
			CLResident: r.cl != nil,
			LogEnd:     r.logEnd,
			LogEpoch:   r.logEpoch,
		}
		if r.cl != nil {
			ri.CLSlots = len(r.cl.Slots)
		}
		if r.rec != nil {
			ri.OpenRecord = true
			ri.OpenHeaderAddr = r.rec.header
		}
		out = append(out, ri)
	}
	return out
}

// DepGraphLive returns the live dependence graph: for every uncommitted
// region with a Dependence List entry, the regions it still depends on
// (sorted). Regions with no outstanding dependencies map to an empty
// slice, so the key set is exactly the live Dependence List population.
func (e *Engine) DepGraphLive() map[arch.RID][]arch.RID {
	g := make(map[arch.RID][]arch.RID)
	for _, dl := range e.dep {
		for _, entry := range dl.Entries() {
			deps := make([]arch.RID, 0, len(entry.Deps))
			for d := range entry.Deps {
				deps = append(deps, d)
			}
			sort.Slice(deps, func(i, j int) bool { return deps[i] < deps[j] })
			g[entry.RID] = deps
		}
	}
	return g
}

// DepGraphString renders the live dependence graph one region per line in
// RID order — the watchdog's stall-snapshot payload.
func (e *Engine) DepGraphString() string {
	g := e.DepGraphLive()
	rids := make([]arch.RID, 0, len(g))
	for rid := range g {
		rids = append(rids, rid)
	}
	sort.Slice(rids, func(i, j int) bool { return rids[i] < rids[j] })
	var b strings.Builder
	for _, rid := range rids {
		state := "open"
		if r := e.regions[rid]; r != nil && r.endedAt > 0 {
			state = "ended"
		}
		fmt.Fprintf(&b, "%s [%s]", rid, state)
		if deps := g[rid]; len(deps) > 0 {
			parts := make([]string, len(deps))
			for i, d := range deps {
				parts[i] = d.String()
			}
			fmt.Fprintf(&b, " <- %s", strings.Join(parts, " "))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// LPOsInFlight returns the number of LPOs between initiation and WPQ
// acceptance: the value the sum of per-line lock pins must equal.
func (e *Engine) LPOsInFlight() int { return e.lpoInFlight }

// OwnerSpills calls fn for every (line, owner) pair in the DRAM OwnerRID
// buffer, in ascending line order.
func (e *Engine) OwnerSpills(fn func(line arch.LineAddr, owner arch.RID)) {
	lines := make([]arch.LineAddr, 0, len(e.ownerBuf))
	for line := range e.ownerBuf {
		lines = append(lines, line)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, line := range lines {
		fn(line, e.ownerBuf[line])
	}
}

// BloomMayContain exposes the §5.3 filter's answer for line: false means
// the filter guarantees no spilled OwnerRID exists (a false negative here
// would be a missed dependence — the bug the invariant engine hunts).
func (e *Engine) BloomMayContain(line arch.LineAddr) bool {
	return e.bloom.MayContain(line)
}

// CLLists returns the per-core Modified Cache Line Lists (read-only).
func (e *Engine) CLLists() []*CLList { return e.cl }

// DepLists returns the per-channel Dependence Lists (read-only).
func (e *Engine) DepLists() []*DependenceList { return e.dep }

// ThreadIDs returns the asap_init'ed thread IDs, ascending.
func (e *Engine) ThreadIDs() []int {
	out := make([]int, 0, len(e.threads))
	for tid := range e.threads {
		out = append(out, tid)
	}
	sort.Ints(out)
	return out
}

// LogExtentOf returns thread tid's current log geometry (the same shape a
// crash snapshot records); ok is false for unknown threads.
func (e *Engine) LogExtentOf(tid int) (ext LogExtent, ok bool) {
	ts := e.threads[tid]
	if ts == nil {
		return LogExtent{}, false
	}
	return LogExtent{
		Thread: tid,
		Base:   ts.log.Base(),
		Size:   ts.log.Size(),
		Head:   ts.log.Head(),
		Tail:   ts.log.Tail(),
	}, true
}

// LogEpoch returns thread tid's log Grow count: RegionInspect.LogEpoch
// values match the current buffer's offsets only while equal to this.
func (e *Engine) LogEpoch(tid int) int {
	if ts := e.threads[tid]; ts != nil {
		return ts.log.Overflows()
	}
	return 0
}
