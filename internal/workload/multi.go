package workload

import (
	"errors"

	"asap/internal/sim"
	"asap/internal/stats"
)

// MultiResult summarizes a co-running execution: several benchmarks share
// one machine, contending for the memory system — the scenario the paper
// gives for why traffic reduction matters even though persists are
// asynchronous ("throughput of multiple co-running memory-intensive
// applications", §1).
type MultiResult struct {
	Scheme string
	// Cycles is the wall-clock of the measured phase (all workloads).
	Cycles uint64
	// TotalOps across all co-running workloads.
	TotalOps int64
	// Stats holds measurement-phase counter deltas.
	Stats map[string]int64
	// CheckErrs holds any per-benchmark consistency failures.
	CheckErrs []string
	// Stall is non-nil when the co-run never drained (see Result.Stall).
	Stall *sim.StallError
}

// Throughput returns combined operations per kilocycle.
func (r MultiResult) Throughput() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.TotalOps) / float64(r.Cycles) * 1000
}

// SimCycles implements the runner package's Measurable contract.
func (r MultiResult) SimCycles() uint64 { return r.Cycles }

// SimOps implements the runner package's Measurable contract.
func (r MultiResult) SimOps() int64 { return r.TotalOps }

// RunMulti runs every benchmark in benches concurrently on one machine:
// each gets its own worker threads, all sharing the caches, WPQs and PM
// bandwidth.
func RunMulti(env *Env, benches []Benchmark, cfg Config) MultiResult {
	res := MultiResult{Scheme: env.S.Name()}
	env.M.K.Spawn("driver", func(t *sim.Thread) {
		env.S.InitThread(t)
		ctx := NewCtx(env, t, cfg.Seed)
		for _, b := range benches {
			b.Setup(ctx, cfg)
		}
		env.S.DrainBarrier(t)

		before := env.M.St.Snapshot()
		start := t.Kernel().Now()
		done := 0
		total := 0
		for bi, b := range benches {
			for w := 0; w < cfg.Threads; w++ {
				b, bi, w := b, bi, w
				total++
				env.M.K.Spawn("worker", func(wt *sim.Thread) {
					env.S.InitThread(wt)
					wctx := NewCtx(env, wt, cfg.Seed+int64(bi*1000+w)*7919+1)
					for i := 0; i < cfg.OpsPerThread; i++ {
						b.Op(wctx, i)
						env.M.St.Inc(stats.Ops)
					}
					env.S.DrainBarrier(wt)
					done++
				})
			}
		}
		t.WaitUntil(func() bool { return done == total })
		env.S.DrainBarrier(t)

		res.Cycles = t.Kernel().Now() - start
		res.TotalOps = int64(total * cfg.OpsPerThread)
		res.Stats = make(map[string]int64)
		for k, v := range env.M.St.Snapshot() {
			res.Stats[k] = v - before[k]
		}
		for _, b := range benches {
			if msg := b.Check(ctx); msg != "" {
				res.CheckErrs = append(res.CheckErrs, msg)
			}
		}
	})
	if err := env.M.K.Run(); err != nil {
		var se *sim.StallError
		if errors.As(err, &se) {
			res.Stall = se
		} else {
			res.CheckErrs = append(res.CheckErrs, err.Error())
		}
	}
	return res
}
