package queue

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"asap/internal/iofault"
)

// TestDegradedModeLifecycle walks the full disk-budget state machine
// through its cache-budget lens, which the test controls exactly:
// healthy -> soft breach (cache shed, intake still open) -> hard breach
// (intake 503s, status/metrics/results keep serving) -> hysteresis
// (small dips do not clear a level) -> recovery.
func TestDegradedModeLifecycle(t *testing.T) {
	var cacheBytes atomic.Int64
	var shedCalls atomic.Int64
	cfg := testDaemonConfig(t.TempDir(), CampaignExec)
	cfg.Budget = BudgetConfig{Cache: StoreBudget{Soft: 1000, Hard: 2000}}
	cfg.CacheUsage = func() int64 { return cacheBytes.Load() }
	cfg.CacheShed = func() (int64, error) {
		shedCalls.Add(1)
		return 100, nil
	}
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	defer d.Kill()
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	submit := func() (int, error) {
		spec, _ := json.Marshal(campaignSpec{Work: 1, Spin: 2})
		resp, err := http.Post(srv.URL+"/api/v1/jobs", "application/json", bytes.NewReader(spec))
		if err != nil {
			return 0, err
		}
		resp.Body.Close()
		return resp.StatusCode, nil
	}
	get := func(path string) int {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	step := func(usage int64, wantLevel int) {
		t.Helper()
		cacheBytes.Store(usage)
		d.checkBudgets()
		if got := d.DegradedLevel(); got != wantLevel {
			t.Fatalf("usage %d: degraded level %d, want %d", usage, got, wantLevel)
		}
		if d.Stats().Degraded != wantLevel {
			t.Fatalf("usage %d: Stats().Degraded = %d, want %d", usage, d.Stats().Degraded, wantLevel)
		}
	}

	// Healthy: everything serves.
	step(0, 0)
	if code, _ := submit(); code != http.StatusAccepted {
		t.Fatalf("healthy submit: %d", code)
	}
	waitIdle(t, d)

	// Soft breach: cache shed once, intake still open.
	step(1200, 1)
	if shedCalls.Load() != 1 {
		t.Fatalf("soft breach shed the cache %d times, want 1", shedCalls.Load())
	}
	if code, _ := submit(); code != http.StatusAccepted {
		t.Fatalf("submit at soft breach: %d, want 202", code)
	}
	waitIdle(t, d)

	// Hard breach: new intake 503s, everything else keeps serving.
	step(2500, 2)
	if shedCalls.Load() != 2 {
		t.Fatalf("hard breach: %d shed calls, want 2 (every upward move sheds)", shedCalls.Load())
	}
	if code, _ := submit(); code != http.StatusServiceUnavailable {
		t.Fatalf("submit at hard breach: %d, want 503", code)
	}
	if _, err := d.Submit(json.RawMessage(`{}`)); err != ErrDegraded {
		t.Fatalf("Submit at hard breach: %v, want ErrDegraded", err)
	}
	if ok, reason := d.Ready(); ok || reason == "" {
		t.Fatalf("Ready at hard breach: %v %q, want not-ready with reason", ok, reason)
	}
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz at hard breach: %d, want 503", code)
	}
	for _, path := range []string{"/healthz", "/api/v1/jobs", "/api/v1/stats", "/metrics"} {
		if code := get(path); code != http.StatusOK {
			t.Fatalf("%s at hard breach: %d, want 200 (degraded must not black out reads)", path, code)
		}
	}
	samples, _ := scrapeMetrics(t, srv.URL)
	foundGauge := false
	for _, s := range samples {
		if s.name == "asapd_degraded" {
			foundGauge = true
			if s.value != 2 {
				t.Fatalf("asapd_degraded = %v at hard breach, want 2", s.value)
			}
		}
	}
	if !foundGauge {
		t.Fatal("asapd_degraded missing from exposition")
	}

	// Hysteresis: dipping just below a watermark does not clear the
	// level — it takes a 1/8 drop below the line that raised it.
	step(1900, 2) // hard 2000, hysteresis floor 1750: still hard
	step(1700, 1) // below 1750: down to soft
	step(950, 1)  // soft 1000, hysteresis floor 875: still soft
	if code, _ := submit(); code != http.StatusAccepted {
		t.Fatalf("submit after hard cleared: %d, want 202", code)
	}
	waitIdle(t, d)

	// Recovery: well below every watermark, intake and readiness return.
	step(100, 0)
	if ok, reason := d.Ready(); !ok {
		t.Fatalf("Ready after recovery: %q", reason)
	}
	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz after recovery: %d", code)
	}
	// Downward transitions must not shed again.
	if shedCalls.Load() != 2 {
		t.Fatalf("%d shed calls after recovery, want 2", shedCalls.Load())
	}
}

// TestDegradedModeStoreBudget: the artifact store's own footprint
// (seeded by walking at open, advanced by Put) drives the same
// machinery — no hooks involved.
func TestDegradedModeStoreBudget(t *testing.T) {
	cfg := testDaemonConfig(t.TempDir(), CampaignExec)
	cfg.Budget = BudgetConfig{Store: StoreBudget{Hard: 1 << 10}}
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Kill()

	d.checkBudgets()
	if d.DegradedLevel() != 0 {
		t.Fatalf("empty store degraded level %d", d.DegradedLevel())
	}
	if _, err := d.St.Put(make([]byte, 2<<10)); err != nil {
		t.Fatal(err)
	}
	d.checkBudgets()
	if d.DegradedLevel() != 2 {
		t.Fatalf("level %d after blowing the store hard budget, want 2", d.DegradedLevel())
	}
	if _, err := d.Submit(json.RawMessage(`{}`)); err != ErrDegraded {
		t.Fatalf("Submit: %v, want ErrDegraded", err)
	}
}

// TestIOErrorCounterPopulates: injected faults on the journal and the
// artifact store surface as asapd_io_errors_total{path,class} samples.
func TestIOErrorCounterPopulates(t *testing.T) {
	ffs := iofault.NewFaultFS(iofault.OS{}, 3)
	cfg := testDaemonConfig(t.TempDir(), CampaignExec)
	cfg.FS = ffs
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Kill()
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	ffs.Arm(iofault.Trip{Op: iofault.OpWrite, Class: iofault.ClassENOSPC, N: 1, Substr: segName(1)})
	if _, err := d.Q.Enqueue(json.RawMessage(`{"k":1}`)); err == nil {
		t.Fatal("enqueue under journal ENOSPC succeeded")
	}
	ffs.Arm(iofault.Trip{Op: iofault.OpSync, Class: iofault.ClassEIO, N: 1, Substr: "objects"})
	if _, err := d.St.Put([]byte("doomed artifact")); err == nil {
		t.Fatal("store put under EIO sync succeeded")
	}

	samples, _ := scrapeMetrics(t, srv.URL)
	want := map[string]bool{
		`asapd_io_errors_total{path="journal",class="enospc"}`: false,
		`asapd_io_errors_total{path="store",class="eio"}`:      false,
	}
	for _, s := range samples {
		if _, ok := want[s.name]; ok {
			want[s.name] = s.value >= 1
		}
	}
	for series, ok := range want {
		if !ok {
			t.Errorf("missing or zero sample %s", series)
		}
	}

	// The injections left no damage behind: the journal rolled back and
	// the store's temp file never renamed into place. A clean reopen
	// proves it.
	d.Kill()
	d2, err := Open(testDaemonConfig(cfg.Dir, CampaignExec))
	if err != nil {
		t.Fatalf("reopen after injected faults: %v", err)
	}
	defer d2.Kill()
	if d2.JournalRep.TornBytes != 0 {
		t.Fatalf("torn bytes %d after rolled-back append", d2.JournalRep.TornBytes)
	}
	if d2.St.Bytes() != 0 {
		t.Fatalf("store holds %d bytes after a failed put", d2.St.Bytes())
	}
}
