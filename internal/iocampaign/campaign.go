// Package iocampaign is the hostile-I/O campaign: a seeded sweep that
// aims iofault.FaultFS at every durable writer in the service layer —
// the queue journal, the content-addressed artifact store, the result
// cache, and snapshot files — across every fault class the injector
// speaks (ENOSPC, EIO, short writes, torn syncs, failed renames), then
// audits the survivors. The contract it enforces is the one DESIGN.md
// §16 states: every injected fault ends in either full survival (the
// write landed and a clean reopen proves it) or a clean refusal (the
// write visibly failed and left no trace under its final name). The
// three disasters — silent corruption, a lost acked job, a poisoned
// cache hit — are audit failures, and a single one fails the campaign.
//
// Each case runs three phases on a throwaway directory:
//
//	A  seed state through the real filesystem (no faults),
//	B  keep working through a FaultFS with one seeded trip armed,
//	C  reopen through the real filesystem and audit: phase-B state must
//	   be provable from disk alone.
//
// Config.Unsafe is the negative control: it reopens the journal with
// rollback protection disabled (queue.JournalOptions.NoRollback), so a
// failed append leaves a partial frame mid-file for later appends to
// bury. A campaign run that way MUST report failures — if it does not,
// the auditors are blind and the green "safe" run proves nothing.
package iocampaign

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"asap/internal/iofault"
	"asap/internal/queue"
	"asap/internal/resultcache"
	"asap/internal/snapshot"
)

// Targets and classes, in the order the case index cycles them. Every
// (target, class) pair is exercised every 20 cases, so the default 300
// cases cover the full matrix 15 times under different seeds.
var (
	targets = []string{"journal", "store", "resultcache", "snapshot"}
	classes = []string{
		iofault.ClassENOSPC,
		iofault.ClassEIO,
		iofault.ClassShortWrite,
		iofault.ClassTornSync,
		iofault.ClassRenameFail,
	}
)

// Config shapes one campaign run.
type Config struct {
	// Cases is the number of seeded cases (default 300 — the acceptance
	// floor for the full matrix).
	Cases int
	// Seed roots every case's RNG; the same (Seed, Cases, Unsafe) run
	// injects identically.
	Seed int64
	// Unsafe disables the journal's append rollback — the negative
	// control. A run with Unsafe set must produce failures.
	Unsafe bool
	// WorkDir hosts the per-case throwaway directories (default: the
	// system temp directory).
	WorkDir string
}

// Summary is the campaign verdict.
type Summary struct {
	Cases  int   `json:"cases"`
	Unsafe bool  `json:"unsafe,omitempty"`
	Seed   int64 `json:"seed"`
	// Injected counts cases where at least one armed fault actually
	// fired (a trip aimed past the case's operation count never fires;
	// those cases still audit as fault-free survivals).
	Injected int `json:"injected"`
	// CleanRefusals counts phase-B operations that failed visibly under
	// an injected fault — the acceptable outcome.
	CleanRefusals int `json:"clean_refusals"`
	// Survivals counts phase-B operations that succeeded; each is held
	// to the durability audit in phase C.
	Survivals int            `json:"survivals"`
	ByTarget  map[string]int `json:"by_target"`
	ByClass   map[string]int `json:"by_class"`
	// InjectedByTarget counts fired faults per target, proving the
	// matrix was actually exercised, not just scheduled.
	InjectedByTarget map[string]int `json:"injected_by_target"`
	// Failures are audit violations: silent corruption, a lost acked
	// job, a poisoned cache hit, or a torn snapshot. Empty on a passing
	// safe run; MUST be non-empty on an unsafe run.
	Failures []string `json:"failures,omitempty"`
}

// Bad reports whether the campaign found audit violations.
func (s Summary) Bad() bool { return len(s.Failures) > 0 }

// Run executes the campaign.
func Run(cfg Config) (Summary, error) {
	if cfg.Cases <= 0 {
		cfg.Cases = 300
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	sum := Summary{
		Cases:            cfg.Cases,
		Unsafe:           cfg.Unsafe,
		Seed:             cfg.Seed,
		ByTarget:         make(map[string]int),
		ByClass:          make(map[string]int),
		InjectedByTarget: make(map[string]int),
	}
	for i := 0; i < cfg.Cases; i++ {
		target := targets[i%len(targets)]
		class := classes[(i/len(targets))%len(classes)]
		rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(i)))
		dir, err := os.MkdirTemp(cfg.WorkDir, "iocampaign-*")
		if err != nil {
			return sum, err
		}
		c := &caseRun{
			idx: i, target: target, class: class,
			rng: rng, dir: dir, unsafe: cfg.Unsafe,
			faultSeed: cfg.Seed ^ int64(i)<<16,
		}
		switch target {
		case "journal":
			c.runJournal()
		case "store":
			c.runStore()
		case "resultcache":
			c.runResultCache()
		case "snapshot":
			c.runSnapshot()
		}
		sum.ByTarget[target]++
		sum.ByClass[class]++
		if c.injected {
			sum.Injected++
			sum.InjectedByTarget[target]++
		}
		sum.CleanRefusals += c.refusals
		sum.Survivals += c.survivals
		sum.Failures = append(sum.Failures, c.failures...)
		os.RemoveAll(dir)
	}
	return sum, nil
}

// caseRun carries one case's state and verdicts.
type caseRun struct {
	idx       int
	target    string
	class     string
	rng       *rand.Rand
	dir       string
	unsafe    bool
	faultSeed int64

	injected  bool
	refusals  int
	survivals int
	failures  []string
}

func (c *caseRun) failf(format string, args ...any) {
	c.failures = append(c.failures,
		fmt.Sprintf("case %d [%s/%s]: %s", c.idx, c.target, c.class, fmt.Sprintf(format, args...)))
}

// note records one phase-B operation outcome.
func (c *caseRun) note(err error) {
	if err != nil {
		c.refusals++
	} else {
		c.survivals++
	}
}

// trip builds the case's one-shot fault, mapping the class to the
// operation it makes sense on. Substr confines the trip to the target's
// own files so open-time bookkeeping paths stay clean.
func (c *caseRun) trip(substr string) iofault.Trip {
	op := iofault.OpWrite
	switch c.class {
	case iofault.ClassEIO, iofault.ClassTornSync:
		op = iofault.OpSync
	case iofault.ClassRenameFail:
		op = iofault.OpRename
	}
	return iofault.Trip{Op: op, Class: c.class, N: 1 + c.rng.Intn(8), Substr: substr}
}

func (c *caseRun) faultFS(substr string) *iofault.FaultFS {
	ffs := iofault.NewFaultFS(iofault.OS{}, c.faultSeed)
	ffs.Arm(c.trip(substr))
	return ffs
}

// --- journal ---

var campaignPolicy = queue.Policy{
	MaxDeliveries: 3,
	LeaseTimeout:  time.Minute,
	BackoffBase:   time.Second,
	BackoffCap:    4 * time.Second,
}

type ackedJob struct {
	id   uint64
	hash string
}

// pumpJobs runs n enqueue/lease/ack cycles, tolerating refusals (a
// failed transition is a clean refusal; the queue state must simply not
// run ahead of the journal). Returns the jobs whose acks SUCCEEDED.
func (c *caseRun) pumpJobs(q *queue.Queue, n int) []ackedJob {
	var acked []ackedJob
	for i := 0; i < n; i++ {
		spec, _ := json.Marshal(map[string]any{"case": c.idx, "i": i, "pad": string(make([]byte, c.rng.Intn(150)))})
		_, err := q.Enqueue(spec)
		c.note(err)
		if err != nil {
			continue
		}
		// TryLease hands out the OLDEST eligible job — after a refused ack
		// leaves one pending, that is not the job just enqueued — so the
		// acked bookkeeping keys off the lease, never the enqueue.
		l, _, err := q.TryLease("w0")
		c.note(err)
		if err != nil || l == nil {
			continue
		}
		hash := fmt.Sprintf("sha256-%064d", l.ID)
		err = q.Ack(l, hash, "")
		c.note(err)
		if err == nil {
			acked = append(acked, ackedJob{id: l.ID, hash: hash})
		}
	}
	return acked
}

func (c *caseRun) runJournal() {
	jdir := filepath.Join(c.dir, "journal")
	clock := func() time.Time { return time.Unix(1_700_000_000, 0) }
	opts := queue.JournalOptions{SegmentBytes: 2 << 10, NoRollback: c.unsafe}
	if c.unsafe {
		// The negative control must keep the evidence: with rotation on,
		// a later compaction would checkpoint into a fresh segment and
		// delete the one holding the planted partial frame, curing the
		// corruption before the phase-C audit ever reads it.
		opts.SegmentBytes = -1
	}

	// The rename-fail class exercises the one rename on the journal
	// path: legacy single-file migration. Seed phase A as a PR-7 layout.
	legacyStart := c.class == iofault.ClassRenameFail
	var acked []ackedJob
	if legacyStart {
		j, _, _, err := queue.OpenFileJournal(filepath.Join(jdir, "journal.asapq"))
		if err != nil {
			c.failf("phase A legacy open: %v", err)
			return
		}
		q, _, err := queue.Restore(campaignPolicy, queue.Options{Journal: j, Clock: clock}, nil)
		if err != nil {
			c.failf("phase A restore: %v", err)
			return
		}
		acked = c.pumpJobs(q, 5+c.rng.Intn(10))
		q.Close()
	} else {
		j, recs, _, err := queue.OpenDirJournal(iofault.OS{}, jdir, opts)
		if err != nil {
			c.failf("phase A open: %v", err)
			return
		}
		q, _, err := queue.Restore(campaignPolicy, queue.Options{Journal: j, Clock: clock}, recs)
		if err != nil {
			c.failf("phase A restore: %v", err)
			return
		}
		acked = c.pumpJobs(q, 5+c.rng.Intn(10))
		q.Close()
	}

	// Phase B: same journal through the adversary.
	ffs := c.faultFS("journal")
	var live []queue.JobInfo
	j, recs, _, err := queue.OpenDirJournal(ffs, jdir, opts)
	if err != nil {
		// The open itself was refused (e.g. the migration rename died).
		// Acceptable iff nothing was half-moved: phase C must recover.
		c.refusals++
	} else {
		q, _, rerr := queue.Restore(campaignPolicy, queue.Options{Journal: j, Clock: clock}, recs)
		if rerr != nil {
			c.refusals++
			j.Close()
		} else {
			acked = append(acked, c.pumpJobs(q, 8+c.rng.Intn(12))...)
			live = q.List()
			q.Close()
		}
	}
	c.injected = len(ffs.Log()) > 0

	// Phase C: clean reopen; disk alone must prove phase-B state.
	j2, recs2, _, err := queue.OpenDirJournal(iofault.OS{}, jdir, queue.JournalOptions{SegmentBytes: 2 << 10})
	if err != nil {
		c.failf("corruption: clean reopen refused: %v", err)
		return
	}
	q2, _, err := queue.Restore(campaignPolicy, queue.Options{Journal: j2, Clock: clock}, recs2)
	if err != nil {
		c.failf("corruption: replayed history does not apply: %v", err)
		j2.Close()
		return
	}
	defer q2.Close()

	for _, a := range acked {
		info, ok := q2.Get(a.id)
		if !ok {
			c.failf("lost acked job %d: absent after reopen", a.id)
			continue
		}
		if info.State != queue.StateDone || info.Hash != a.hash {
			c.failf("lost acked job %d: state %s hash %q after reopen, want done/%q",
				a.id, info.State, info.Hash, a.hash)
		}
	}
	if live != nil {
		c.auditTableMatches(live, q2)
	}
}

// auditTableMatches checks the recovered table against the live one
// from phase B. Jobs leased at close legitimately move (orphan expiry
// charges the delivery: pending-with-backoff or dead); everything else
// must match exactly, and no phantom jobs may appear.
func (c *caseRun) auditTableMatches(live []queue.JobInfo, q2 *queue.Queue) {
	recovered := make(map[uint64]queue.JobInfo)
	for _, info := range q2.List() {
		recovered[info.ID] = info
	}
	for _, want := range live {
		got, ok := recovered[want.ID]
		if !ok {
			c.failf("job %d vanished across reopen (was %s)", want.ID, want.State)
			continue
		}
		delete(recovered, want.ID)
		switch want.State {
		case queue.StateLeased:
			if got.State != queue.StatePending && got.State != queue.StateDead {
				c.failf("job %d: leased at close, %s after reopen (want orphan-expired)", want.ID, got.State)
			}
			if got.Deliveries != want.Deliveries {
				c.failf("job %d: deliveries %d after orphan expiry, want %d (charged, not re-run)",
					want.ID, got.Deliveries, want.Deliveries)
			}
		default:
			if got.State != want.State || got.Deliveries != want.Deliveries ||
				got.Hash != want.Hash || !bytes.Equal(got.Spec, want.Spec) {
				c.failf("job %d diverged across reopen: %s/%d/%q, want %s/%d/%q",
					want.ID, got.State, got.Deliveries, got.Hash,
					want.State, want.Deliveries, want.Hash)
			}
		}
	}
	for id, info := range recovered {
		c.failf("phantom job %d (%s) appeared after reopen", id, info.State)
	}
}

// --- artifact store ---

func (c *caseRun) runStore() {
	sdir := filepath.Join(c.dir, "store")
	put := func(st *queue.Store, n int, record map[string][]byte) {
		for i := 0; i < n; i++ {
			body := make([]byte, 50+c.rng.Intn(400))
			c.rng.Read(body)
			hash, err := st.Put(body)
			c.note(err)
			if err == nil {
				record[hash] = body
			}
		}
	}
	committed := make(map[string][]byte)
	attempted := make(map[string][]byte)

	st, err := queue.OpenStoreFS(iofault.OS{}, sdir)
	if err != nil {
		c.failf("phase A open: %v", err)
		return
	}
	put(st, 3+c.rng.Intn(4), committed)

	ffs := c.faultFS("objects")
	st2, err := queue.OpenStoreFS(ffs, sdir)
	if err != nil {
		c.refusals++
	} else {
		for i := 0; i < 5+c.rng.Intn(6); i++ {
			body := make([]byte, 50+c.rng.Intn(400))
			c.rng.Read(body)
			attempted[queue.HashBytes(body)] = body
			hash, err := st2.Put(body)
			c.note(err)
			if err == nil {
				committed[hash] = body
			}
		}
	}
	c.injected = len(ffs.Log()) > 0

	st3, err := queue.OpenStoreFS(iofault.OS{}, sdir)
	if err != nil {
		c.failf("corruption: clean reopen refused: %v", err)
		return
	}
	// Every committed put is durable and byte-exact under its address.
	for hash, body := range committed {
		got, err := st3.Get(hash)
		if err != nil {
			c.failf("lost committed object %s: %v", hash, err)
			continue
		}
		if !bytes.Equal(got, body) {
			c.failf("corrupt object %s: %d bytes differ from committed content", hash, len(got))
		}
	}
	// Every refused put left nothing half-visible under its address.
	for hash := range attempted {
		if _, ok := committed[hash]; ok {
			continue
		}
		if st3.Has(hash) {
			got, err := st3.Get(hash)
			if err != nil || !bytes.Equal(got, attempted[hash]) {
				c.failf("refused put left torn object visible at %s", hash)
			}
		}
	}
	// The reopen swept all temp debris.
	if n, _ := iofault.SweepTmp(iofault.OS{}, sdir); n != 0 {
		c.failf("%d temp files survived the reopen sweep", n)
	}
}

// --- result cache ---

func (c *caseRun) runResultCache() {
	cdir := filepath.Join(c.dir, "cache")
	newKey := func() string {
		var b [32]byte
		c.rng.Read(b[:])
		d := sha256.Sum256(b[:])
		return hex.EncodeToString(d[:])
	}
	// lastGood is each key's last successfully-put payload: the only
	// content a later hit is allowed to serve.
	lastGood := make(map[string][]byte)
	var keys []string

	s, err := resultcache.OpenFS(iofault.OS{}, cdir)
	if err != nil {
		c.failf("phase A open: %v", err)
		return
	}
	for i := 0; i < 4+c.rng.Intn(4); i++ {
		k := newKey()
		payload := []byte(fmt.Sprintf("cells-%d-%d-%x", c.idx, i, c.rng.Int63()))
		if err := s.Put(k, payload); err != nil {
			c.failf("phase A put: %v", err)
			return
		}
		lastGood[k] = payload
		keys = append(keys, k)
	}

	ffs := c.faultFS("cells")
	s2, err := resultcache.OpenFS(ffs, cdir)
	if err != nil {
		c.refusals++
	} else {
		for i := 0; i < 6+c.rng.Intn(6); i++ {
			// Half the puts overwrite existing keys: a refused overwrite
			// must leave the OLD payload intact, not a mix.
			var k string
			if len(keys) > 0 && c.rng.Intn(2) == 0 {
				k = keys[c.rng.Intn(len(keys))]
			} else {
				k = newKey()
				keys = append(keys, k)
			}
			payload := []byte(fmt.Sprintf("cells-B-%d-%d-%x", c.idx, i, c.rng.Int63()))
			err := s2.Put(k, payload)
			c.note(err)
			if err == nil {
				lastGood[k] = payload
			}
		}
	}
	c.injected = len(ffs.Log()) > 0

	s3, err := resultcache.OpenFS(iofault.OS{}, cdir)
	if err != nil {
		c.failf("corruption: clean reopen refused: %v", err)
		return
	}
	for _, k := range keys {
		got, hit := s3.Get(k)
		want, committed := lastGood[k]
		switch {
		case hit && !committed:
			c.failf("poisoned hit: key %s serves %d bytes that were never committed", k, len(got))
		case hit && !bytes.Equal(got, want):
			c.failf("poisoned hit: key %s serves bytes differing from last committed put", k)
		case !hit && committed:
			c.failf("lost durable entry: key %s committed but misses after reopen", k)
		}
	}
}

// --- snapshot ---

func (c *caseRun) mkSnap(cycle uint64) snapshot.Snap {
	var b [16]byte
	c.rng.Read(b[:])
	return snapshot.Snap{
		Version:  snapshot.FormatVersion,
		Identity: fmt.Sprintf("iocampaign-case-%d", c.idx),
		Seed:     c.rng.Int63(),
		Cycle:    cycle,
		Sections: []snapshot.Section{{Name: "state", SHA256: hex.EncodeToString(b[:])}},
	}
}

func (c *caseRun) runSnapshot() {
	path := filepath.Join(c.dir, "snaps", "run.assn")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		c.failf("mkdir: %v", err)
		return
	}
	v1 := c.mkSnap(1000)
	if err := snapshot.WriteFileFS(iofault.OS{}, path, v1); err != nil {
		c.failf("phase A write: %v", err)
		return
	}
	ffs := c.faultFS("snaps")
	v2 := c.mkSnap(2000)
	werr := snapshot.WriteFileFS(ffs, path, v2)
	c.note(werr)
	c.injected = len(ffs.Log()) > 0

	got, err := snapshot.ReadFileFS(iofault.OS{}, path)
	if err != nil {
		c.failf("corruption: snapshot unreadable after faulted overwrite: %v", err)
		return
	}
	switch {
	case werr == nil && got.Digest() != v2.Digest():
		c.failf("snapshot write reported success but disk holds a different image")
	case werr != nil && got.Digest() != v1.Digest() && got.Digest() != v2.Digest():
		c.failf("torn snapshot: disk holds neither the old nor the new image")
	}
}
