package core

import (
	"asap/internal/arch"
	"asap/internal/cache"
)

// CLSlot is one CLPtr slot in a CL List entry (§4.6.2): a modified line
// whose DPO has not yet completed.
type CLSlot struct {
	Line arch.LineAddr
	// Meta is the line's tag-extension metadata, cached when the slot is
	// (re)armed by a write so DPO-eligibility checks (lock count) are a
	// field read, not a table probe. Hardware keeps the CLPtr next to the
	// L1 controller for the same reason.
	Meta *cache.Meta
	// NeedIssue is set when the line has unpersisted writes requiring a
	// DPO; cleared when the DPO is submitted.
	NeedIssue bool
	// Outstanding counts DPOs in flight for the line (at most 1).
	Outstanding int
	// Age is how many updates to other lines have happened since this
	// line's last write; a DPO is initiated at Age >= coalesce distance.
	Age int
	// Forced marks a slot whose DPO must issue as soon as its LPO
	// completes, ignoring the coalescing distance: set when the region
	// stalls for a free slot, to guarantee forward progress.
	Forced bool
}

// idle reports whether the slot holds no pending work and can be cleared.
func (s *CLSlot) idle() bool { return !s.NeedIssue && s.Outstanding == 0 }

// CLEntry is one Modified Cache Line List entry (Figure 3 ❸): the slots of
// one in-flight atomic region plus its StateL1 (Done once asap_end ran and
// no more writes are coming).
type CLEntry struct {
	RID   arch.RID
	Done  bool
	Slots []*CLSlot
}

// Slot returns the slot for line, or nil.
func (e *CLEntry) Slot(line arch.LineAddr) *CLSlot {
	for _, s := range e.Slots {
		if s.Line == line {
			return s
		}
	}
	return nil
}

// removeSlot clears the slot for line.
func (e *CLEntry) removeSlot(line arch.LineAddr) {
	for i, s := range e.Slots {
		if s.Line == line {
			e.Slots = append(e.Slots[:i], e.Slots[i+1:]...)
			return
		}
	}
}

// CLList is one core's Modified Cache Line List (Table 2: 4 entries/core,
// 8 CLPtr slots each). It lives in the L1 cache controller.
type CLList struct {
	cap     int
	slotCap int
	entries []*CLEntry
}

// NewCLList builds a list with the given region entries and slots each.
func NewCLList(capacity, slots int) *CLList {
	return &CLList{cap: capacity, slotCap: slots}
}

// HasSpace reports whether a new region entry fits.
func (l *CLList) HasSpace() bool { return len(l.entries) < l.cap }

// Add creates the entry for region r (asap_begin ①).
func (l *CLList) Add(r arch.RID) *CLEntry {
	if !l.HasSpace() {
		panic("core: CL List overflow")
	}
	e := &CLEntry{RID: r}
	l.entries = append(l.entries, e)
	return e
}

// Remove frees region r's entry (all DPOs complete, ③).
func (l *CLList) Remove(r arch.RID) {
	for i, e := range l.entries {
		if e.RID == r {
			l.entries = append(l.entries[:i], l.entries[i+1:]...)
			return
		}
	}
}

// SlotCap returns the CLPtr slots per entry.
func (l *CLList) SlotCap() int { return l.slotCap }

// Cap returns the entry capacity.
func (l *CLList) Cap() int { return l.cap }

// Len returns the number of occupied entries.
func (l *CLList) Len() int { return len(l.entries) }

// Entries returns the occupied entries in insertion order. The slice is
// the list's own backing store: callers must treat it as read-only.
func (l *CLList) Entries() []*CLEntry { return l.entries }

// CanAddSlot reports whether entry e can track line right now.
func (l *CLList) CanAddSlot(e *CLEntry, line arch.LineAddr) bool {
	if e.Slot(line) != nil {
		return true
	}
	return len(e.Slots) < l.slotCap
}

// AddSlot returns the slot tracking line, creating it if needed. Panics
// when the slots are full (callers gate on CanAddSlot).
func (l *CLList) AddSlot(e *CLEntry, line arch.LineAddr) *CLSlot {
	if s := e.Slot(line); s != nil {
		return s
	}
	if len(e.Slots) >= l.slotCap {
		panic("core: CLPtr slots overflow for " + e.RID.String())
	}
	s := &CLSlot{Line: line}
	e.Slots = append(e.Slots, s)
	return s
}
