package queue

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func testRecords() []Record {
	return []Record{
		{Type: RecEnqueue, ID: 1, Spec: json.RawMessage(`{"k":1}`)},
		{Type: RecLease, ID: 1, Delivery: 1, Worker: "w0", Deadline: 42},
		{Type: RecAck, ID: 1, Delivery: 1, Hash: "sha256-abc"},
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.asapq")
	j, recs, rep, err := OpenFileJournal(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if len(recs) != 0 || rep.Records != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	want := testRecords()
	for _, rec := range want {
		if err := j.Append(rec); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	_, got, rep, err := OpenFileJournal(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if rep.TornBytes != 0 {
		t.Fatalf("clean journal reported %d torn bytes", rep.TornBytes)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Type != want[i].Type || got[i].ID != want[i].ID ||
			got[i].Delivery != want[i].Delivery || got[i].Hash != want[i].Hash {
			t.Errorf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.asapq")
	j, _, _, err := OpenFileJournal(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for _, rec := range testRecords() {
		if err := j.Append(rec); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	j.Close()

	// Append garbage plus a prefix of a valid frame: a torn record.
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	frame, _ := encodeRecord(Record{Type: RecEnqueue, ID: 9, Spec: json.RawMessage(`{"x":9}`)})
	torn := append(append([]byte(nil), whole...), frame[:len(frame)-3]...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	_, recs, rep, err := OpenFileJournal(path)
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("replayed %d records over torn tail, want 3", len(recs))
	}
	if rep.TornBytes != int64(len(frame)-3) {
		t.Fatalf("torn bytes %d, want %d", rep.TornBytes, len(frame)-3)
	}
	// The open truncated the file back to a record boundary.
	fixed, _ := os.ReadFile(path)
	if !bytes.Equal(fixed, whole) {
		t.Fatalf("torn tail not truncated: %d bytes, want %d", len(fixed), len(whole))
	}
}

func TestJournalMidFileCorruptionStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.asapq")
	j, _, _, err := OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range testRecords() {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	data, _ := os.ReadFile(path)
	data[fileHdrSize+8] ^= 0xFF // flip a byte inside the first record
	recs, rep, err := Replay(data)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("replay recovered %d records past corruption, want 0", len(recs))
	}
	if rep.TornBytes == 0 {
		t.Fatal("corruption not reported as torn bytes")
	}
}

func TestJournalBadHeaderFatal(t *testing.T) {
	data := encodeFileHeader()
	data[0] = 'X'
	if _, _, err := Replay(data); !errors.Is(err, ErrBadFileHeader) {
		t.Fatalf("bad magic: got %v, want ErrBadFileHeader", err)
	}
	short := []byte{1, 2, 3}
	if _, _, err := Replay(short); !errors.Is(err, ErrBadFileHeader) {
		t.Fatalf("short header: got %v, want ErrBadFileHeader", err)
	}
}

func TestJournalAppendAfterCloseFails(t *testing.T) {
	j, _, _, err := OpenMediumJournal(newMemMedium(nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if err := j.Append(Record{Type: RecEnqueue, ID: 1}); !errors.Is(err, ErrJournalClosed) {
		t.Fatalf("append after close: %v", err)
	}
}
