package invariant

import (
	"strings"
	"testing"

	"asap/internal/cache"
	"asap/internal/core"
	"asap/internal/machine"
	"asap/internal/sim"
	"asap/internal/stats"
)

// rig builds a small machine + ASAP engine with the invariant engine
// attached at the given stride.
func rig(opt core.Options, stride uint64, mutate func(*machine.Config)) (*machine.Machine, *core.Engine, *Engine) {
	cfg := machine.DefaultConfig()
	cfg.Cores = 4
	if mutate != nil {
		mutate(&cfg)
	}
	m := machine.New(cfg)
	eng := core.NewEngine(m, opt)
	ie := Attach(m, eng, Config{Stride: stride})
	return m, eng, ie
}

// run spawns fns as initialized threads and drives the run to completion.
func run(t *testing.T, m *machine.Machine, e *core.Engine, fns ...func(th *sim.Thread)) {
	t.Helper()
	for _, fn := range fns {
		fn := fn
		m.K.Spawn("w", func(th *sim.Thread) {
			e.InitThread(th)
			fn(th)
			e.DrainBarrier(th)
		})
	}
	if err := m.K.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func storeU64(e *core.Engine, th *sim.Thread, addr, v uint64) {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	e.Store(th, addr, b[:])
}

func loadU64(e *core.Engine, th *sim.Thread, addr uint64) uint64 {
	var b [8]byte
	e.Load(th, addr, b[:])
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func TestCleanRunHasNoViolations(t *testing.T) {
	m, eng, ie := rig(core.DefaultOptions(), 1, nil)
	const slots = 8
	addrs := make([]uint64, slots)
	for i := range addrs {
		addrs[i] = m.Heap.Alloc(64, true)
	}
	// Shared-slot updates go through one mutex, as a data-race-free program
	// would: dependences then follow lock order and stay acyclic.
	var mu sim.Mutex
	worker := func(base int) func(th *sim.Thread) {
		return func(th *sim.Thread) {
			for i := 0; i < 12; i++ {
				eng.Begin(th)
				mu.Lock(th)
				a := addrs[(base+i)%slots]
				storeU64(eng, th, a, loadU64(eng, th, a)+1)
				storeU64(eng, th, addrs[(base+i+1)%slots], uint64(i))
				mu.Unlock(th)
				eng.End(th)
			}
		}
	}
	run(t, m, eng, worker(0), worker(3), worker(5))
	ie.Final()
	if err := ie.Err(); err != nil {
		t.Fatalf("clean run violated invariants: %v\nall: %v", err, ie.Violations())
	}
	if ie.Passes() == 0 {
		t.Fatal("invariant engine never ran a check pass")
	}
}

func TestEarlyLogFreeCaughtByCommitRule(t *testing.T) {
	opt := core.DefaultOptions()
	opt.UnsafeEarlyLogFree = true
	opt.DepListEntries = 2 // the issue's negative-control pressure config
	// Slow PM keeps LPO acceptance (and with it commit) far behind
	// asap_end, so the early-freed region is observed while still live.
	m, eng, ie := rig(opt, 1, func(c *machine.Config) {
		c.Mem.PMWriteCycles = 20_000
		c.Mem.IssueDelayCycles = 20_000
	})
	addr := m.Heap.Alloc(64, true)
	run(t, m, eng, func(th *sim.Thread) {
		eng.Begin(th)
		storeU64(eng, th, addr, 7)
		eng.End(th)
	})
	ie.Final()
	err := ie.Err()
	if err == nil {
		t.Fatal("UnsafeEarlyLogFree ran undetected: the commit-rule check is broken")
	}
	found := false
	for _, v := range ie.Violations() {
		if v.Check == CheckCommitRule {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations %v do not include %s", ie.Violations(), CheckCommitRule)
	}
}

// TestBloomSaturationIsConservative is the satellite-3 test: a deliberately
// saturated Bloom filter (64 bits for a working set of hundreds of lines,
// with an LLC small enough to force eviction/spill/reload traffic) must
// produce conservative false positives — extra DRAM-buffer probes, extra
// dependence edges — but never a missed dependence. The owner-bloom
// invariant checks the no-false-negative direction at every step.
func TestBloomSaturationIsConservative(t *testing.T) {
	opt := core.DefaultOptions()
	opt.BloomBits = 64
	m, eng, ie := rig(opt, 1, func(c *machine.Config) {
		c.Cores = 2
		c.Caches = cache.Config{
			L1: cache.LevelConfig{Sets: 4, Ways: 2, Latency: 4},
			L2: cache.LevelConfig{Sets: 8, Ways: 2, Latency: 14},
			L3: cache.LevelConfig{Sets: 16, Ways: 2, Latency: 42},
		}
		// One shallow channel with a slow device: WPQ acceptance backs up
		// immediately, so writer regions stay uncommitted (and their
		// spilled OwnerRIDs live) while the reader probes the filter.
		c.Mem.Controllers = 1
		c.Mem.ChannelsPerMC = 1
		c.Mem.WPQEntries = 4
		c.Mem.PMWriteCycles = 2_000
	})
	const lines = 256
	addrs := make([]uint64, lines)
	for i := range addrs {
		addrs[i] = m.Heap.Alloc(64, true)
	}
	run(t, m, eng,
		func(th *sim.Thread) { // writer: blankets the working set in regions
			for i := 0; i < lines; i++ {
				eng.Begin(th)
				storeU64(eng, th, addrs[i], uint64(i))
				eng.End(th)
			}
		},
		func(th *sim.Thread) { // reader: touches everything, reloading owners
			th.SleepUntil(10_000)
			for round := 0; round < 2; round++ {
				for i := 0; i < lines; i++ {
					eng.Begin(th)
					_ = loadU64(eng, th, addrs[i])
					eng.End(th)
				}
			}
		})
	ie.Final()
	if err := ie.Err(); err != nil {
		t.Fatalf("saturated bloom filter caused an invariant violation (missed dependence?): %v", err)
	}
	hits := m.St.Get(stats.BloomHits)
	spills := m.St.Get(stats.OwnerIDSpills)
	reloads := m.St.Get(stats.OwnerIDReloads)
	if spills == 0 || hits == 0 {
		t.Fatalf("workload did not exercise the spill path: spills=%d hits=%d", spills, hits)
	}
	if hits < reloads {
		t.Fatalf("bloom hits %d < owner reloads %d: filter reported a false negative", hits, reloads)
	}
}

func TestAttachChainsExistingObserver(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Cores = 2
	m := machine.New(cfg)
	eng := core.NewEngine(m, core.DefaultOptions())
	probe := &countingObserver{}
	m.K.SetObserver(probe)
	ie := Attach(m, eng, Config{Stride: 1})
	if m.K.Observer() != ie {
		t.Fatal("Attach did not install the invariant engine")
	}
	addr := m.Heap.Alloc(64, true)
	run(t, m, eng, func(th *sim.Thread) {
		eng.Begin(th)
		storeU64(eng, th, addr, 1)
		eng.End(th)
	})
	if probe.ticks == 0 || probe.advances == 0 || probe.starts == 0 {
		t.Fatalf("chained observer starved: %+v", *probe)
	}
}

type countingObserver struct {
	starts, advances, locks, ticks int
}

func (c *countingObserver) ThreadStart(*sim.Thread)          { c.starts++ }
func (c *countingObserver) ClockAdvance(*sim.Thread, uint64) { c.advances++ }
func (c *countingObserver) LockBegin(*sim.Thread)            { c.locks++ }
func (c *countingObserver) LockEnd(*sim.Thread)              {}
func (c *countingObserver) Tick(uint64)                      { c.ticks++ }

// TestAttachedEngineChangesNoOutcome is the byte-identity gate at unit
// granularity: the same workload on two fresh machines — one bare, one
// with the invariant engine attached at stride 1 — must end at the same
// cycle with identical protocol counters and heap contents.
func TestAttachedEngineChangesNoOutcome(t *testing.T) {
	exec := func(attach bool) (uint64, map[string]int64, uint64) {
		cfg := machine.DefaultConfig()
		cfg.Cores = 4
		m := machine.New(cfg)
		eng := core.NewEngine(m, core.DefaultOptions())
		if attach {
			Attach(m, eng, Config{Stride: 1})
		}
		addr := m.Heap.Alloc(64, true)
		for w := 0; w < 3; w++ {
			w := w
			m.K.Spawn("w", func(th *sim.Thread) {
				eng.InitThread(th)
				for i := 0; i < 10; i++ {
					eng.Begin(th)
					storeU64(eng, th, addr, uint64(w*100+i))
					eng.End(th)
				}
				eng.Fence(th)
				eng.DrainBarrier(th)
			})
		}
		if err := m.K.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		counters := map[string]int64{}
		for _, key := range []string{
			stats.RegionsBegun, stats.RegionsCommitted, stats.LPOsIssued,
			stats.DPOsIssued, stats.PMWrites, stats.DepEdges, stats.Fences,
		} {
			counters[key] = m.St.Get(key)
		}
		return m.K.Now(), counters, m.Heap.ReadU64(addr)
	}
	bareCycles, bareCounters, bareVal := exec(false)
	obsCycles, obsCounters, obsVal := exec(true)
	if bareCycles != obsCycles {
		t.Fatalf("final cycle diverged: bare %d vs attached %d", bareCycles, obsCycles)
	}
	if bareVal != obsVal {
		t.Fatalf("heap contents diverged: %d vs %d", bareVal, obsVal)
	}
	for k, v := range bareCounters {
		if obsCounters[k] != v {
			t.Fatalf("counter %s diverged: bare %d vs attached %d", k, v, obsCounters[k])
		}
	}
}

func TestViolationStringAndBound(t *testing.T) {
	cfg := machine.DefaultConfig()
	m := machine.New(cfg)
	eng := core.NewEngine(m, core.DefaultOptions())
	ie := New(m, eng, Config{MaxViolations: 2})
	for i := 0; i < 5; i++ {
		ie.report(uint64(i), CheckLocks, "synthetic %d", i)
	}
	if ie.Total() != 5 {
		t.Fatalf("Total = %d, want 5", ie.Total())
	}
	if len(ie.Violations()) != 2 {
		t.Fatalf("retained %d violations, want bound 2", len(ie.Violations()))
	}
	if s := ie.Violations()[0].String(); !strings.Contains(s, CheckLocks) || !strings.Contains(s, "synthetic 0") {
		t.Fatalf("Violation.String() = %q", s)
	}
	if ie.Err() == nil {
		t.Fatal("Err() = nil with violations recorded")
	}
}
