package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"asap/internal/arch"
	"asap/internal/trace"
)

// buildTestTimeline assembles a timeline from one committed region, one
// region whose begin was evicted from the ring, a persist instant, one
// stall span and one gauge series.
func buildTestTimeline() *Timeline {
	r1 := arch.MakeRID(1, 1)
	r2 := arch.MakeRID(2, 9)
	events := []trace.Event{
		{At: 10, Kind: trace.RegionBegin, RID: r1},
		{At: 15, Kind: trace.LPOIssue, RID: r1, Line: 64},
		{At: 30, Kind: trace.RegionEnd, RID: r1},
		{At: 80, Kind: trace.RegionCommit, RID: r1},
		{At: 5, Kind: trace.RegionEnd, RID: r2}, // begin evicted: no slice
	}

	p := NewProfiler()
	p.byID[1] = &ThreadProfile{ID: 1, Name: "w1", End: 100}
	p.order = []int{1}
	p.spanCap = 8
	p.spans = []Span{{TID: 1, Name: "w1", Bucket: FenceWait, From: 20, To: 28}}

	rec := NewRecorder(10, 0)
	rec.AddGauge("wpq0", func() float64 { return 3 })
	rec.Tick(0)
	rec.Tick(10)

	return BuildTimeline(events, p, rec)
}

func find(tl *Timeline, ph, name string) []TimelineEvent {
	var out []TimelineEvent
	for _, e := range tl.TraceEvents {
		if e.Ph == ph && e.Name == name {
			out = append(out, e)
		}
	}
	return out
}

// TestTimelineRegionSlices: a region with both begin and end in the ring
// becomes one complete slice on its thread's track; a region missing its
// begin is skipped rather than drawn with a fabricated start.
func TestTimelineRegionSlices(t *testing.T) {
	tl := buildTestTimeline()
	var regions []TimelineEvent
	for _, e := range tl.TraceEvents {
		if e.Cat == "region" {
			regions = append(regions, e)
		}
	}
	if len(regions) != 1 {
		t.Fatalf("got %d region slices, want 1 (evicted begin skipped)", len(regions))
	}
	r := regions[0]
	if r.Ph != "X" || r.Ts != 10 || r.Dur != 20 || r.Tid != 1 {
		t.Fatalf("region slice = %+v, want X at 10 dur 20 on tid 1", r)
	}
}

// TestTimelineCommitLag: an end-to-commit gap becomes a matched b/e async
// pair sharing the region's id.
func TestTimelineCommitLag(t *testing.T) {
	tl := buildTestTimeline()
	b := find(tl, "b", "commit-lag")
	e := find(tl, "e", "commit-lag")
	if len(b) != 1 || len(e) != 1 {
		t.Fatalf("commit-lag pairs: %d begins, %d ends, want 1/1", len(b), len(e))
	}
	if b[0].Ts != 30 || e[0].Ts != 80 || b[0].ID != e[0].ID || b[0].ID == 0 {
		t.Fatalf("pair = %+v / %+v, want matching id spanning 30..80", b[0], e[0])
	}
}

// TestTimelineStallsInstantsCounters: stall spans, persist instants and
// gauge counters all land in the document with the right phases.
func TestTimelineStallsInstantsCounters(t *testing.T) {
	tl := buildTestTimeline()

	stalls := find(tl, "X", "fence-wait")
	if len(stalls) != 1 || stalls[0].Cat != "stall" || stalls[0].Dur != 8 {
		t.Fatalf("stall spans = %+v, want one 8-cycle fence-wait", stalls)
	}

	inst := find(tl, "i", "lpo.issue")
	if len(inst) != 1 || inst[0].Scope != "t" || inst[0].Args["rid"] == nil {
		t.Fatalf("instants = %+v, want one scoped lpo.issue with rid arg", inst)
	}

	ctr := find(tl, "C", "wpq0")
	if len(ctr) != 2 {
		t.Fatalf("got %d counter events, want 2", len(ctr))
	}
	if v, ok := ctr[0].Args["value"].(float64); !ok || v != 3 {
		t.Fatalf("counter args = %v, want value 3", ctr[0].Args)
	}

	if len(find(tl, "M", "process_name")) != 1 || len(find(tl, "M", "thread_name")) != 1 {
		t.Fatal("metadata events missing")
	}
}

// TestTimelineRoundTrips: the document marshals and re-parses, and keeps
// the displayTimeUnit Perfetto expects.
func TestTimelineRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	tl := buildTestTimeline()
	if err := json.NewEncoder(&buf).Encode(tl); err != nil {
		t.Fatal(err)
	}
	var back Timeline
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("timeline does not re-parse: %v", err)
	}
	if len(back.TraceEvents) != len(tl.TraceEvents) {
		t.Fatalf("round trip lost events: %d -> %d", len(tl.TraceEvents), len(back.TraceEvents))
	}
	if back.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", back.DisplayTimeUnit)
	}
}

// TestTimelineAllSourcesNil: every source is optional; a timeline built
// from nothing is still a valid document.
func TestTimelineAllSourcesNil(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTimeline(&buf, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	var back Timeline
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.TraceEvents) != 1 || back.TraceEvents[0].Name != "process_name" {
		t.Fatalf("empty timeline = %+v, want just process metadata", back.TraceEvents)
	}
}
