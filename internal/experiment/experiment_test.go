package experiment

import (
	"math"
	"strings"
	"testing"
)

// tinyScale keeps experiment tests fast while preserving shapes.
func tinyScale(benches ...string) Scale {
	if len(benches) == 0 {
		benches = []string{"BN", "Q", "HM"}
	}
	return Scale{Threads: 3, OpsPerThread: 80, InitialItems: 96, Benchmarks: benches}
}

func TestFig1Shape(t *testing.T) {
	tab := Fig1(tinyScale("BN", "HM", "Q"))
	for _, r := range tab.Rows {
		np, dpo, sw := r.Values[0], r.Values[1], r.Values[2]
		if np != 1 {
			t.Fatalf("%s: NP column must be 1, got %v", r.Name, np)
		}
		if !(dpo < 1 && sw < dpo) {
			t.Fatalf("%s: Figure 1 ordering NP > DPO-only > LPO&DPO violated: %v", r.Name, r.Values)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	tab := Fig7(tinyScale(), 64)
	g := func(col string) float64 { return tab.Col("GeoMean", col) }
	if !(g("ASAP") > g("HWUndo") && g("ASAP") > g("HWRedo")) {
		t.Fatalf("ASAP must beat both HW baselines:\n%s", tab)
	}
	if !(g("HWUndo") > 1 && g("HWRedo") > 1) {
		t.Fatalf("HW baselines must beat SW:\n%s", tab)
	}
	if g("NP") < g("ASAP") {
		t.Fatalf("NP is the upper bound:\n%s", tab)
	}
	// ASAP close to NP (paper 0.96x of NP).
	if g("ASAP")/g("NP") < 0.80 {
		t.Fatalf("ASAP should be close to NP:\n%s", tab)
	}
}

func TestFig8Shape(t *testing.T) {
	tab := Fig8(tinyScale(), 64)
	g := func(col string) float64 { return tab.Col("GeoMean", col) }
	if !(g("ASAP") < g("HWUndo") && g("ASAP") < g("HWRedo") && g("ASAP") < g("SW")) {
		t.Fatalf("ASAP must have the lowest region latency overhead:\n%s", tab)
	}
	if g("ASAP") > 1.3 {
		t.Fatalf("ASAP cycles/region should be near NP (paper 1.08x):\n%s", tab)
	}
}

func TestFig9aMonotone(t *testing.T) {
	tab := Fig9a(tinyScale("BN", "Q"))
	for _, r := range tab.Rows {
		for i := 1; i < len(r.Values); i++ {
			if r.Values[i] > r.Values[i-1]+1e-9 {
				t.Fatalf("%s: optimization ladder must not increase traffic: %v", r.Name, r.Values)
			}
		}
		if r.Values[len(r.Values)-1] != 1 {
			t.Fatalf("%s: full-ASAP column must normalize to 1: %v", r.Name, r.Values)
		}
	}
}

func TestFig9bShape(t *testing.T) {
	tab := Fig9b(tinyScale("BN", "Q", "HM"))
	g := func(col string) float64 { return tab.Col("GeoMean", col) }
	if !(g("SW") > g("HWUndo") && g("SW") > g("HWRedo")) {
		t.Fatalf("SW must generate the most traffic:\n%s", tab)
	}
	if !(g("HWUndo") > 1 && g("HWRedo") > 1) {
		t.Fatalf("ASAP must generate the least traffic:\n%s", tab)
	}
}

func TestFig10Shape(t *testing.T) {
	tabs := Fig10(tinyScale("Q"))
	if len(tabs) != 1 {
		t.Fatalf("tables = %d", len(tabs))
	}
	tab := tabs[0]
	asap16 := tab.Col("ASAP", "16x")
	undo16 := tab.Col("HWUndo", "16x")
	if asap16 < undo16 {
		t.Fatalf("at 16x latency ASAP must stay closer to NP than HWUndo:\n%s", tab)
	}
	asap1 := tab.Col("ASAP", "1x")
	if asap16 < asap1*0.5 {
		t.Fatalf("ASAP should be robust to latency (paper Figure 10):\n%s", tab)
	}
}

func TestSec74Shape(t *testing.T) {
	tab := Sec74(tinyScale("BN", "Q"))
	g := func(col string) float64 { return tab.Col("GeoMean", col) }
	if g("ASAP@16") > g("ASAP@128")+1e-9 {
		t.Fatalf("shrinking the LH-WPQ cannot speed ASAP up:\n%s", tab)
	}
	if !(g("ASAP@16") > g("HWRedo@128")*0.9 && g("ASAP@16") > g("HWUndo@128")*0.9) {
		t.Fatalf("ASAP@16 should remain competitive with the baselines (paper: 1.18x/1.10x):\n%s", tab)
	}
}

func TestTableHelpers(t *testing.T) {
	tab := &Table{Title: "t", Columns: []string{"a", "b"}}
	tab.AddRow("x", 2, 8)
	tab.AddRow("y", 8, 2)
	tab.AddGeoMean()
	if got := tab.Col("GeoMean", "a"); math.Abs(got-4) > 1e-9 {
		t.Fatalf("geomean = %v, want 4", got)
	}
	if !math.IsNaN(tab.Col("nope", "a")) || !math.IsNaN(tab.Col("x", "nope")) {
		t.Fatal("missing lookups must return NaN")
	}
	out := tab.String()
	if !strings.Contains(out, "GeoMean") || !strings.Contains(out, "t") {
		t.Fatalf("render missing pieces:\n%s", out)
	}
}

func TestRunPanicsOnUnknowns(t *testing.T) {
	for _, fn := range []func(){
		func() { Run(Variant{Scheme: "bogus"}, "BN", tinyScale(), 64) },
		func() { Run(Variant{Scheme: "NP"}, "bogus", tinyScale(), 64) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}
