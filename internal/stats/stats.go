// Package stats is a lightweight counter registry shared by every simulator
// component. Counters are plain int64s keyed by name; higher layers derive
// throughput, traffic and latency metrics from them after a run.
package stats

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Well-known counter names used across the simulator. Components add to
// these; experiments read them.
const (
	// Persistent-memory traffic, counted in 64 B line writes when a WPQ
	// entry actually drains to the PM device (dropped entries never count).
	PMWrites = "pm.writes"
	PMReads  = "pm.reads"
	// DRAM device traffic.
	DRAMWrites = "dram.writes"
	DRAMReads  = "dram.reads"

	// Persist operations by kind.
	LPOsIssued   = "lpo.issued"
	LPOsDropped  = "lpo.dropped"
	DPOsIssued   = "dpo.issued"
	DPOsDropped  = "dpo.dropped"
	DPOsCoalesce = "dpo.coalesced"

	// Region lifecycle.
	RegionsBegun     = "region.begun"
	RegionsCommitted = "region.committed"
	RegionCycles     = "region.cycles" // summed core-visible latency
	DepEdges         = "dep.edges"
	DepStalls        = "stall.depslots"
	CLStalls         = "stall.clptr"
	WPQStalls        = "stall.wpq"
	LHWPQStalls      = "stall.lhwpq"
	LogOverflows     = "log.overflow"

	// Cache behaviour.
	L1Hits         = "l1.hits"
	L1Misses       = "l1.misses"
	L2Hits         = "l2.hits"
	L2Misses       = "l2.misses"
	L3Hits         = "l3.hits"
	L3Misses       = "l3.misses"
	Evictions      = "cache.evictions"
	OwnerIDSpills  = "ownerid.spills"
	OwnerIDReloads = "ownerid.reloads"
	BloomHits      = "bloom.hits"
	BloomClears    = "bloom.clears"

	// Workload progress.
	Ops    = "workload.ops"
	Fences = "workload.fences"
	// FenceCycles accumulates the time threads spend blocked inside
	// asap_fence waiting for commits.
	FenceCycles = "workload.fencecycles"
)

// Set is a named-counter collection. The zero value is not usable; create
// one with New. Set is not safe for concurrent use, which is fine: the
// simulation kernel runs one thread at a time.
type Set struct {
	counters map[string]int64
	hists    map[string]*Histogram
}

// New returns an empty counter set.
func New() *Set {
	return &Set{counters: make(map[string]int64)}
}

// Add increments counter name by delta.
func (s *Set) Add(name string, delta int64) {
	s.counters[name] += delta
}

// Inc increments counter name by one.
func (s *Set) Inc(name string) { s.Add(name, 1) }

// Get returns the value of counter name (zero if never touched).
func (s *Set) Get(name string) int64 { return s.counters[name] }

// Names returns every touched counter name in sorted order.
func (s *Set) Names() []string {
	names := make([]string, 0, len(s.counters))
	for name := range s.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns a copy of the counters map.
func (s *Set) Snapshot() map[string]int64 {
	out := make(map[string]int64, len(s.counters))
	for k, v := range s.counters {
		out[k] = v
	}
	return out
}

// Reset zeroes every counter.
func (s *Set) Reset() {
	s.counters = make(map[string]int64)
}

// String formats the set one counter per line, sorted by name.
func (s *Set) String() string {
	var b strings.Builder
	for _, name := range s.Names() {
		fmt.Fprintf(&b, "%-24s %12d\n", name, s.counters[name])
	}
	return b.String()
}

// Histogram collects a distribution in log-linear (HDR-style) buckets:
// eight sub-buckets per octave give ~12 % resolution at every magnitude,
// cheap enough to run always-on and precise enough for tail-latency
// percentiles.
type Histogram struct {
	buckets map[int]int64
	count   int64
}

// histSub is the number of sub-buckets per power-of-two octave.
const histSub = 8

// histIndex maps a value to its log-linear bucket.
func histIndex(v uint64) int {
	if v < histSub {
		return int(v) // exact below one octave of sub-buckets
	}
	octave := 63 - bits.LeadingZeros64(v)
	sub := int(v>>(uint(octave)-3)) & (histSub - 1)
	return octave*histSub + sub
}

// histUpper returns the inclusive upper bound of bucket idx.
func histUpper(idx int) uint64 {
	if idx < histSub {
		return uint64(idx)
	}
	octave := idx / histSub
	sub := idx % histSub
	return (uint64(histSub+sub+1) << (uint(octave) - 3)) - 1
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h.buckets == nil {
		h.buckets = make(map[int]int64)
	}
	h.buckets[histIndex(v)]++
	h.count++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Quantile returns an upper bound on the q-quantile (0 < q <= 1): the top
// of the log-linear bucket containing it (within ~12 % of the true value).
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	target := int64(q * float64(h.count))
	if target < 1 {
		target = 1
	}
	idxs := make([]int, 0, len(h.buckets))
	for idx := range h.buckets {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	var seen int64
	for _, idx := range idxs {
		seen += h.buckets[idx]
		if seen >= target {
			return histUpper(idx)
		}
	}
	return histUpper(idxs[len(idxs)-1])
}

// Hist returns the named histogram, creating it on first use.
func (s *Set) Hist(name string) *Histogram {
	if s.hists == nil {
		s.hists = make(map[string]*Histogram)
	}
	h, ok := s.hists[name]
	if !ok {
		h = &Histogram{}
		s.hists[name] = h
	}
	return h
}

// RegionLatency is the histogram of core-visible atomic-region latencies,
// the distribution behind the paper's tail-latency motivation (§1).
const RegionLatency = "region.latency"

// CommitLag is the histogram of asap_end-to-commit distances: the
// asynchrony window that ASAP overlaps with execution. Synchronous
// schemes have a zero lag by construction.
const CommitLag = "region.commitlag"

// WPQDepth is the histogram of per-channel WPQ occupancy, observed at
// every accept.
const WPQDepth = "wpq.depth"

// LHWPQDepth is the histogram of per-channel LH-WPQ live entries,
// observed at every accept on that channel.
const LHWPQDepth = "lhwpq.depth"
