package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"

	"asap/internal/arch"
)

// Header line layout (one 64 B cache line, Figure 5a, extended with the
// integrity fields crash recovery validates):
//
//	bytes 0..7   RID (little endian)
//	byte  8      magic (0xA5) — lets recovery skip never-written lines
//	byte  9      entry count (1..7)
//	bytes 10..13 header CRC-32 (IEEE, little endian) over the whole line
//	             with these four bytes zeroed
//	bytes 14..15 reserved, must be zero
//	bytes 16+6i  data line address >> LineShift, 6 bytes little endian,
//	             for i in [0, count); the rest zero
//	bytes 58..61 payload CRC-32 over the record's data-entry lines in
//	             order, when flagPayloadCRC is set
//	byte  62     flags (bit 0: payload CRC present; others must be zero)
//	byte  63     reserved, must be zero
//
// The record's data-entry lines are contiguous after the header
// (EntryLine), so log entry addresses need not be stored.
const headerMagic = 0xA5

const (
	crcOff         = 10 // header CRC-32, bytes 10..13
	payloadCRCOff  = 58 // payload CRC-32, bytes 58..61
	flagsOff       = 62
	flagPayloadCRC = 1 << 0
)

// Validation failures ParseHeader distinguishes so recovery can classify a
// corrupt line. ErrNotHeader means the line is not header material at all
// (never written, or a data entry); every other error means the line
// carries the header magic but fails validation — a torn write, a media
// error, or garbage that happens to contain 0xA5 at byte 8.
var (
	ErrShortLine = errors.New("wal: line shorter than a header")
	ErrNotHeader = errors.New("wal: header magic absent")
	ErrBadCount  = errors.New("wal: header entry count out of range")
	ErrBadRID    = errors.New("wal: header RID is the reserved no-region value")
	ErrReserved  = errors.New("wal: reserved header bytes nonzero")
	ErrChecksum  = errors.New("wal: header checksum mismatch")
)

// Header is a fully parsed, validated log record header.
type Header struct {
	RID       arch.RID
	DataLines []arch.LineAddr
	// PayloadCRC is the CRC-32 over the record's data-entry lines in
	// order; only meaningful when HasPayloadCRC is set (the ASAP engine
	// always sets it; baseline schemes write headers without it).
	PayloadCRC    uint32
	HasPayloadCRC bool
}

// Checksum is the CRC-32 (IEEE) both the header line and record payloads
// are protected with.
func Checksum(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

// ChecksumUpdate extends a running payload checksum with the next entry's
// bytes.
func ChecksumUpdate(crc uint32, b []byte) uint32 {
	return crc32.Update(crc, crc32.IEEETable, b)
}

// EncodeHeader serializes a header line for region rid covering the given
// data lines (at most RecordEntries). The header CRC is always present;
// use EncodeHeaderChecked to also protect the record's payload bytes.
func EncodeHeader(rid arch.RID, dataLines []arch.LineAddr) []byte {
	return encodeHeader(rid, dataLines, 0, false)
}

// EncodeHeaderChecked is EncodeHeader plus the payload CRC over the
// record's data-entry lines (in allocation order), letting recovery detect
// torn or bit-flipped log entries.
func EncodeHeaderChecked(rid arch.RID, dataLines []arch.LineAddr, payloadCRC uint32) []byte {
	return encodeHeader(rid, dataLines, payloadCRC, true)
}

func encodeHeader(rid arch.RID, dataLines []arch.LineAddr, payloadCRC uint32, hasPayload bool) []byte {
	if len(dataLines) > RecordEntries {
		panic("wal: too many entries for one record")
	}
	buf := make([]byte, arch.LineSize)
	binary.LittleEndian.PutUint64(buf[0:8], uint64(rid))
	buf[8] = headerMagic
	buf[9] = byte(len(dataLines))
	for i, dl := range dataLines {
		putUint48(buf[16+6*i:], uint64(dl)>>arch.LineShift)
	}
	if hasPayload {
		binary.LittleEndian.PutUint32(buf[payloadCRCOff:], payloadCRC)
		buf[flagsOff] = flagPayloadCRC
	}
	binary.LittleEndian.PutUint32(buf[crcOff:], headerChecksum(buf))
	return buf
}

// headerChecksum computes the header CRC over the line with the CRC field
// itself zeroed.
func headerChecksum(line []byte) uint32 {
	var scratch [arch.LineSize]byte
	copy(scratch[:], line[:arch.LineSize])
	scratch[crcOff], scratch[crcOff+1], scratch[crcOff+2], scratch[crcOff+3] = 0, 0, 0, 0
	return crc32.ChecksumIEEE(scratch[:])
}

// ParseHeader validates and decodes a persisted header line. A line
// without the magic byte returns ErrNotHeader (it is simply not a header);
// any other error means the line claims to be a header but is corrupt.
func ParseHeader(line []byte) (*Header, error) {
	if len(line) < arch.LineSize {
		return nil, ErrShortLine
	}
	if line[8] != headerMagic {
		return nil, ErrNotHeader
	}
	if line[14] != 0 || line[15] != 0 || line[flagsOff]&^flagPayloadCRC != 0 || line[63] != 0 {
		return nil, ErrReserved
	}
	if got, want := binary.LittleEndian.Uint32(line[crcOff:]), headerChecksum(line); got != want {
		return nil, ErrChecksum
	}
	count := int(line[9])
	if count < 1 || count > RecordEntries {
		return nil, ErrBadCount
	}
	rid := arch.RID(binary.LittleEndian.Uint64(line[0:8]))
	if rid == arch.NoRID {
		return nil, ErrBadRID
	}
	h := &Header{RID: rid}
	for i := 0; i < count; i++ {
		h.DataLines = append(h.DataLines, arch.LineAddr(getUint48(line[16+6*i:])<<arch.LineShift))
	}
	if line[flagsOff]&flagPayloadCRC != 0 {
		h.HasPayloadCRC = true
		h.PayloadCRC = binary.LittleEndian.Uint32(line[payloadCRCOff:])
	}
	return h, nil
}

// DecodeHeader parses a persisted header line. ok is false if the line is
// not a valid header (including checksum failures).
func DecodeHeader(line []byte) (rid arch.RID, dataLines []arch.LineAddr, ok bool) {
	h, err := ParseHeader(line)
	if err != nil {
		return 0, nil, false
	}
	return h.RID, h.DataLines, true
}

// DecodeHeaderLegacy is the pre-checksum decode — magic and count checks
// only. It exists so the crash-consistency checker can run recovery with
// validation deliberately disabled and demonstrate that the checker
// catches the corruption the checksums would have rejected.
func DecodeHeaderLegacy(line []byte) (rid arch.RID, dataLines []arch.LineAddr, ok bool) {
	if len(line) < arch.LineSize || line[8] != headerMagic {
		return 0, nil, false
	}
	count := int(line[9])
	if count < 1 || count > RecordEntries {
		return 0, nil, false
	}
	rid = arch.RID(binary.LittleEndian.Uint64(line[0:8]))
	if rid == arch.NoRID {
		return 0, nil, false
	}
	for i := 0; i < count; i++ {
		dataLines = append(dataLines, arch.LineAddr(getUint48(line[16+6*i:])<<arch.LineShift))
	}
	return rid, dataLines, true
}

// LiveRecordSlots enumerates the header line addresses of every record
// slot allocated but not yet freed in a log buffer, mirroring
// AllocRecord's wrap-skip rule. Recovery uses it to know which slots must
// hold (or be covered by) valid undo material: head and tail are the
// absolute LogHead/LogTail offsets captured at the crash. Malformed
// inputs yield nil rather than a runaway scan.
func LiveRecordSlots(base, size, head, tail uint64) []arch.LineAddr {
	if size == 0 || tail < head || tail-head > size {
		return nil
	}
	var out []arch.LineAddr
	for off := head; off < tail; {
		pos := off % size
		if rem := size - pos; rem < RecordBytes {
			off += rem // AllocRecord skipped the wrap remainder
			continue
		}
		out = append(out, arch.LineAddr(base+pos))
		off += RecordBytes
	}
	return out
}

func putUint48(b []byte, v uint64) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
}

func getUint48(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 |
		uint64(b[3])<<24 | uint64(b[4])<<32 | uint64(b[5])<<40
}
