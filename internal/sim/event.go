package sim

// event is one scheduled callback in the kernel's time-ordered queue.
// Fired events are recycled through the queue's free list, so steady-state
// scheduling allocates nothing (see DESIGN.md §10).
type event struct {
	at  uint64
	seq uint64 // insertion order, breaks ties deterministically
	fn  func()
}

// eventQueue is a min-heap of events ordered by (at, seq), with a free
// list of fired events. It is hand-rolled rather than container/heap so
// pushes and pops stay free of interface conversions and indirect calls.
type eventQueue struct {
	heap []*event
	free []*event
}

// eventBefore is the queue's strict weak order: earlier cycle first,
// insertion order as the tiebreak.
func eventBefore(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// get returns a recycled or fresh event initialized to (at, seq, fn).
func (q *eventQueue) get(at, seq uint64, fn func()) *event {
	if n := len(q.free); n > 0 {
		ev := q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		ev.at, ev.seq, ev.fn = at, seq, fn
		return ev
	}
	return &event{at: at, seq: seq, fn: fn}
}

// put recycles a fired event. The callback is dropped immediately so the
// free list never keeps closure captures alive.
func (q *eventQueue) put(ev *event) {
	ev.fn = nil
	q.free = append(q.free, ev)
}

func (q *eventQueue) len() int { return len(q.heap) }

// peek returns the earliest event without removing it, or nil.
func (q *eventQueue) peek() *event {
	if len(q.heap) == 0 {
		return nil
	}
	return q.heap[0]
}

func (q *eventQueue) push(ev *event) {
	q.heap = append(q.heap, ev)
	// Sift up.
	h := q.heap
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventBefore(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// pop removes and returns the earliest event. The caller must recycle it
// with put once the callback has run.
func (q *eventQueue) pop() *event {
	h := q.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	q.heap = h[:n]
	// Sift down.
	h = q.heap
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && eventBefore(h[l], h[min]) {
			min = l
		}
		if r < n && eventBefore(h[r], h[min]) {
			min = r
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return top
}
