package core

import (
	"asap/internal/arch"
	"asap/internal/obs"
	"asap/internal/sim"
	"asap/internal/trace"
)

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Migrate context-switches thread t onto another core (§5.7): the Thread
// State Registers travel with the process, and the suspended thread's CL
// List entry is cleared after the persist operations of each CLPtr slot
// complete — the entry belongs to the old core's L1. Once rescheduled, the
// thread safely continues any remaining operations of its InProgress
// region from a fresh CL List entry on the new core.
func (e *Engine) Migrate(t *sim.Thread, core int) {
	ts := e.state(t)
	if core == ts.core {
		return
	}

	r := ts.cur
	if r != nil && r.cl != nil {
		// Drain the old core's CL List entry: force the pending DPOs out
		// and wait for the slots to clear.
		for _, s := range append([]*CLSlot(nil), r.cl.Slots...) {
			s.Forced = true
			e.maybeIssueDPO(r, s)
		}
		e.prof.Enter(t, obs.CLPtr)
		t.WaitUntil(func() bool { return r.cl == nil || len(r.cl.Slots) == 0 })
		e.prof.Exit(t)
		if r.cl != nil {
			r.clList.Remove(r.rid)
			r.cl = nil
		}
	}

	// OS context-switch cost plus the register save/restore.
	t.Advance(1000)
	e.m.SetCore(t, core)
	ts.core = core
	e.emit(trace.Migrate, arch.MakeRID(ts.tid, maxU64(ts.local, 1)), 0, uint64(core))

	if r != nil && !r.committed {
		// Re-home the InProgress region on the new core's CL List.
		newList := e.cl[core]
		e.prof.Enter(t, obs.BeginWait)
		t.WaitUntil(newList.HasSpace)
		e.prof.Exit(t)
		r.clList = newList
		r.cl = newList.Add(r.rid)
		r.cl.Done = false
	}
}
