package schemes

import (
	"sort"

	"asap/internal/arch"
	"asap/internal/cache"
	"asap/internal/machine"
	"asap/internal/memdev"
	"asap/internal/obs"
	"asap/internal/sim"
	"asap/internal/wal"
)

// redoARegion is one atomic region's state under asynchronous-commit redo
// logging (the Figure 2c design).
type redoARegion struct {
	rid arch.RID
	ts  *redoAThread

	dirty map[arch.LineAddr]bool
	deps  map[arch.RID]struct{}

	pendingLogs int  // log-line writes not yet accepted
	ended       bool // asap_end ran
	markerSent  bool
	logDone     bool // all LPOs + commit marker accepted
	committed   bool

	pendingDPOs int
	rec         arch.LineAddr
	recUsed     int
	logEnd      uint64
	words       int
}

// redoAThread is one thread's state.
type redoAThread struct {
	log   *wal.ThreadLog
	nest  int
	local uint64

	cur     *redoARegion
	last    *redoARegion
	beginAt uint64
}

// ASAPRedo is the paper's suggested alternative design (§3): asynchronous
// commit applied to redo logging. Stores append new values to a packed
// redo log and update data in place in the cache; asap_end returns
// immediately. A region commits in the background once all its log writes
// and its commit marker have been accepted AND every region it depends on
// has committed — the Figure 2c rule, mirrored from ASAP's Dependence
// List. Only then do its DPOs (in-place data writes) go out, and the log
// is freed once they complete.
//
// Compared to undo-based ASAP, DPOs are less eager (they wait for commit)
// and evicted-dirty reads redirect to the log — exactly the §3 trade-off
// that made the authors choose undo logging.
type ASAPRedo struct {
	m       *machine.Machine
	threads map[int]*redoAThread
	regions map[arch.RID]*redoARegion

	redirect map[arch.LineAddr]bool

	// Window bounds outstanding log writes per region.
	Window int
	// RedirectPenalty is the extra latency of a log-redirected read.
	RedirectPenalty uint64

	prof *obs.Profiler
}

// SetProfiler attaches a stall-attribution profiler (nil detaches).
func (s *ASAPRedo) SetProfiler(p *obs.Profiler) {
	s.prof = p
	s.m.Caches.SetProfiler(p)
}

var _ machine.Scheme = (*ASAPRedo)(nil)

// NewASAPRedo builds the asynchronous-commit redo engine on m.
func NewASAPRedo(m *machine.Machine) *ASAPRedo {
	s := &ASAPRedo{
		m:               m,
		threads:         make(map[int]*redoAThread),
		regions:         make(map[arch.RID]*redoARegion),
		redirect:        make(map[arch.LineAddr]bool),
		Window:          64,
		RedirectPenalty: 30,
	}
	m.Caches.SetEvictHook(s.onEvict)
	return s
}

// Name implements machine.Scheme.
func (s *ASAPRedo) Name() string { return "ASAP-Redo" }

// InitThread implements machine.Scheme.
func (s *ASAPRedo) InitThread(t *sim.Thread) {
	s.threads[t.ID()] = &redoAThread{log: wal.NewThreadLog(s.m.Heap, 256<<10)}
	t.Advance(200)
}

func (s *ASAPRedo) state(t *sim.Thread) *redoAThread { return s.threads[t.ID()] }

// Begin implements machine.Scheme: open a region, capturing the control
// dependence on the thread's previous region if it is still uncommitted.
func (s *ASAPRedo) Begin(t *sim.Thread) {
	ts := s.state(t)
	ts.nest++
	if ts.nest > 1 {
		t.Advance(1)
		return
	}
	ts.beginAt = t.Now()
	ts.local++
	r := &redoARegion{
		rid:   arch.MakeRID(t.ID(), ts.local),
		ts:    ts,
		dirty: make(map[arch.LineAddr]bool),
		deps:  make(map[arch.RID]struct{}),
	}
	if prev := ts.last; prev != nil && !prev.committed {
		r.deps[prev.rid] = struct{}{}
	}
	s.regions[r.rid] = r
	ts.cur = r
	ts.last = r
	*s.m.Cells.RegionsBegun++
	t.Advance(4)
}

// End implements machine.Scheme: flush the partial log line and return —
// the commit marker, the commit itself and the DPOs all happen in the
// background (asynchronous commit).
func (s *ASAPRedo) End(t *sim.Thread) {
	ts := s.state(t)
	ts.nest--
	if ts.nest > 0 {
		t.Advance(1)
		return
	}
	r := ts.cur
	ts.cur = nil
	if r.words > 0 {
		r.words = 0
		s.flushLogLine(t, r)
	}
	r.ended = true
	s.maybeSendMarker(r)
	t.Advance(4)
	*s.m.Cells.RegionCycles += int64(t.Now() - ts.beginAt)
	s.m.Cells.RegionLatency.Observe(t.Now() - ts.beginAt)
}

// maybeSendMarker persists the commit marker once every log write has
// been accepted and the region has ended.
func (s *ASAPRedo) maybeSendMarker(r *redoARegion) {
	if !r.ended || r.markerSent || r.pendingLogs > 0 {
		return
	}
	r.markerSent = true
	if len(r.dirty) == 0 {
		// Read-only region: nothing to replay, commit directly.
		r.logDone = true
		s.maybeCommit(r)
		return
	}
	if r.rec == 0 {
		s.allocRecord(nil, r)
	}
	hdr := s.m.Fabric.NewEntry(memdev.KindLogHeader, r.rid, r.rec, r.rec)
	hdr.SetPayload(wal.EncodeHeader(r.rid, firstLines(r.dirty)))
	s.m.Fabric.SubmitPersist(hdr, func(uint64) {
		r.logDone = true
		s.maybeCommit(r)
	})
}

// maybeCommit applies the Figure 2c rule: the region commits once its log
// (including the marker) is durable and every dependence has committed;
// only then do the in-place DPOs go out.
func (s *ASAPRedo) maybeCommit(r *redoARegion) {
	if r.committed || !r.logDone || len(r.deps) > 0 {
		return
	}
	r.committed = true
	*s.m.Cells.RegionsCommitted++

	for _, line := range sortedLines(r.dirty) {
		line := line
		s.m.Fabric.SupersedeDPO(line)
		r.pendingDPOs++
		*s.m.Cells.DPOsIssued++
		e := s.m.Fabric.NewEntry(memdev.KindDPO, r.rid, line, line)
		s.m.Heap.ReadLineInto(line, e.Payload)
		s.m.Fabric.SubmitPersist(e, func(uint64) {
			r.pendingDPOs--
			s.m.Caches.MarkClean(line)
			if r.pendingDPOs == 0 {
				// Data in place: the redo log may be reclaimed.
				r.ts.log.FreeUpTo(r.logEnd)
			}
		})
		delete(s.redirect, line)
		meta := s.m.Caches.Table().Peek(line)
		if meta != nil && meta.Owner == r.rid {
			meta.Owner = arch.NoRID
		}
	}
	delete(s.regions, r.rid)

	// Broadcast to dependents, in RID order for determinism.
	var rids []arch.RID
	for rid, other := range s.regions {
		if _, ok := other.deps[r.rid]; ok {
			rids = append(rids, rid)
		}
	}
	sort.Slice(rids, func(i, j int) bool { return rids[i] < rids[j] })
	for _, rid := range rids {
		if other := s.regions[rid]; other != nil {
			delete(other.deps, r.rid)
			s.maybeCommit(other)
		}
	}
}

// Fence implements machine.Scheme (§5.2): wait for the thread's latest
// region to commit.
func (s *ASAPRedo) Fence(t *sim.Thread) {
	ts := s.state(t)
	*s.m.Cells.Fences++
	last := ts.last
	if last == nil {
		return
	}
	s.prof.Enter(t, obs.FenceWait)
	t.WaitUntil(func() bool { return last.committed })
	s.prof.Exit(t)
}

// DrainBarrier implements machine.Scheme.
func (s *ASAPRedo) DrainBarrier(t *sim.Thread) {
	s.prof.Enter(t, obs.Drain)
	t.WaitUntil(func() bool {
		if len(s.regions) != 0 {
			return false
		}
		return s.m.Fabric.Quiesced()
	})
	s.prof.Exit(t)
}

// Load implements machine.Scheme with dependence capture and redirect
// penalties.
func (s *ASAPRedo) Load(t *sim.Thread, addr uint64, buf []byte) {
	ts := s.state(t)
	machine.VisitLines(addr, len(buf), func(line arch.LineAddr) {
		lat, meta := s.m.Caches.AccessBlocking(t, s.m.CoreOf(t), line, false)
		if s.redirect[line] {
			lat += s.RedirectPenalty
		}
		t.Advance(lat)
		if s.m.Heap.IsPersistentLine(line) && ts.cur != nil {
			s.captureDep(ts.cur, meta, false)
		}
	})
	s.m.Heap.Read(addr, buf)
}

// Store implements machine.Scheme: direct update in cache, word-packed
// redo logging, dependence capture and ownership transfer.
func (s *ASAPRedo) Store(t *sim.Thread, addr uint64, data []byte) {
	ts := s.state(t)
	machine.VisitLines(addr, len(data), func(line arch.LineAddr) {
		lat, meta := s.m.Caches.AccessBlocking(t, s.m.CoreOf(t), line, true)
		t.Advance(lat)
		if !s.m.Heap.IsPersistentLine(line) || ts.cur == nil {
			return
		}
		s.captureDep(ts.cur, meta, true)
		ts.cur.dirty[line] = true
	})
	if ts.cur != nil && s.m.Heap.IsPersistentAddr(addr) {
		r := ts.cur
		r.words += (len(data) + 7) / 8
		for r.words >= 8 {
			r.words -= 8
			s.prof.Enter(t, obs.WPQFull)
			t.WaitUntil(func() bool { return r.pendingLogs < s.Window })
			s.prof.Exit(t)
			s.flushLogLine(t, r)
		}
	}
	s.m.Heap.Write(addr, data)
}

// captureDep records a data dependence through the line's OwnerRID tag,
// handed to it by the access that just touched the line.
func (s *ASAPRedo) captureDep(r *redoARegion, meta *cache.Meta, isWrite bool) {
	if owner := meta.Owner; owner != arch.NoRID && owner != r.rid {
		if _, active := s.regions[owner]; active {
			r.deps[owner] = struct{}{}
			*s.m.Cells.DepEdges++
		} else {
			meta.Owner = arch.NoRID
		}
	}
	if isWrite {
		meta.Owner = r.rid
	}
}

// flushLogLine sends one packed redo log line toward the WPQ. t may be
// nil when called from event context (marker path record allocation).
func (s *ASAPRedo) flushLogLine(t *sim.Thread, r *redoARegion) {
	if r.recUsed == wal.RecordEntries || r.rec == 0 {
		s.allocRecord(t, r)
	}
	logLine := wal.EntryLine(r.rec, r.recUsed)
	r.recUsed++
	r.pendingLogs++
	*s.m.Cells.LPOsIssued++
	e := s.m.Fabric.NewEntry(memdev.KindLPO, r.rid, logLine, logLine)
	e.SetPayload(nil) // packed new-value words, modeled as zeros
	s.m.Fabric.SubmitPersist(e, func(uint64) {
		r.pendingLogs--
		s.maybeSendMarker(r)
	})
}

func (s *ASAPRedo) allocRecord(t *sim.Thread, r *redoARegion) {
	rec, end, ok := r.ts.log.AllocRecord()
	if !ok {
		*s.m.Cells.LogOverflows++
		if t != nil {
			s.prof.Enter(t, obs.LogOverflow)
			t.Advance(2000)
			s.prof.Exit(t)
		}
		r.ts.log.Grow()
		rec, end, _ = r.ts.log.AllocRecord()
	}
	r.rec, r.recUsed, r.logEnd = rec, 0, end
}

// onEvict suppresses in-place writeback of lines owned by uncommitted
// regions (their durable new values live only in the log).
func (s *ASAPRedo) onEvict(info cache.EvictInfo) {
	if owner := info.Meta.Owner; owner != arch.NoRID {
		if _, active := s.regions[owner]; active {
			s.redirect[info.Line] = true
			info.Meta.Owner = arch.NoRID
			return
		}
		info.Meta.Owner = arch.NoRID
	}
	evictWriteback(s.m, info)
}
