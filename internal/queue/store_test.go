package queue

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestStorePutGetIdempotent(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	body := []byte("artifact bytes\n")
	h1, err := st.Put(body)
	if err != nil {
		t.Fatalf("put: %v", err)
	}
	if h1 != HashBytes(body) {
		t.Fatalf("hash %s != HashBytes %s", h1, HashBytes(body))
	}
	// The redelivered-job case: a second Put of the same bytes lands on
	// the same address without error.
	h2, err := st.Put(body)
	if err != nil || h2 != h1 {
		t.Fatalf("second put: %s, %v", h2, err)
	}
	got, err := st.Get(h1)
	if err != nil || !bytes.Equal(got, body) {
		t.Fatalf("get: %q, %v", got, err)
	}
	if !st.Has(h1) {
		t.Fatal("Has = false for stored object")
	}
	if st.Has(HashBytes([]byte("absent"))) {
		t.Fatal("Has = true for absent object")
	}
}

func TestStoreRejectsMalformedHashes(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []string{
		"",
		"md5-abcd",
		"sha256-short",
		"sha256-../../../../etc/passwd0000000000000000000000000000000000000000",
		"sha256-zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz",
	} {
		if _, err := st.Get(h); !errors.Is(err, ErrBadHash) {
			t.Errorf("Get(%q): %v, want ErrBadHash", h, err)
		}
		if _, err := st.Path(h); !errors.Is(err, ErrBadHash) {
			t.Errorf("Path(%q): %v, want ErrBadHash", h, err)
		}
		if st.Has(h) {
			t.Errorf("Has(%q) = true", h)
		}
	}
}

func TestStoreNoTempLitterAfterPut(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put([]byte("x")); err != nil {
		t.Fatal(err)
	}
	var litter []string
	err = walkFiles(dir, func(path string, name string) {
		if len(name) >= 5 && name[:5] == ".tmp-" {
			litter = append(litter, path)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(litter) != 0 {
		t.Fatalf("temp files left behind: %v", litter)
	}
}

// TestOpenStoreSweepsOrphanTmpFiles: temp files stranded by a kill -9
// between CreateTemp and Rename are removed by the next OpenStore, and
// real objects survive the sweep.
func TestOpenStoreSweepsOrphanTmpFiles(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	hash, err := st.Put([]byte("real artifact"))
	if err != nil {
		t.Fatal(err)
	}
	objPath, err := st.Path(hash)
	if err != nil {
		t.Fatal(err)
	}
	orphans := []string{
		filepath.Join(dir, "objects", ".tmp-1234"),
		filepath.Join(filepath.Dir(objPath), ".tmp-5678"),
		// Debris at the store root (outside objects/) is reaped too.
		filepath.Join(dir, ".tmp-9abc"),
	}
	for _, p := range orphans {
		if err := os.WriteFile(p, []byte("half-written"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range orphans {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("orphan %s survived reopen (stat err %v)", p, err)
		}
	}
	if got, err := st2.Get(hash); err != nil || string(got) != "real artifact" {
		t.Fatalf("real object lost in sweep: %q, %v", got, err)
	}
}

// TestStoreBytesAccounting: the footprint counter tracks committed
// objects, survives reopen (re-seeded by walking), and ignores orphaned
// temp debris (swept before counting).
func TestStoreBytesAccounting(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Bytes() != 0 {
		t.Fatalf("fresh store reports %d bytes", st.Bytes())
	}
	a, b := []byte("first object"), []byte("second, longer object")
	st.Put(a)
	st.Put(b)
	want := int64(len(a) + len(b))
	if st.Bytes() != want {
		t.Fatalf("after 2 puts: %d bytes, want %d", st.Bytes(), want)
	}
	// Dedup put: no growth.
	st.Put(a)
	if st.Bytes() != want {
		t.Fatalf("after dedup put: %d bytes, want %d", st.Bytes(), want)
	}
	// Plant debris; reopen must sweep it and re-derive the same total.
	if err := os.WriteFile(filepath.Join(dir, "objects", ".tmp-zzz"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Bytes() != want {
		t.Fatalf("after reopen: %d bytes, want %d", st2.Bytes(), want)
	}
}

// walkFiles visits every regular file under dir.
func walkFiles(dir string, visit func(path, name string)) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		p := dir + string(os.PathSeparator) + e.Name()
		if e.IsDir() {
			if err := walkFiles(p, visit); err != nil {
				return err
			}
			continue
		}
		visit(p, e.Name())
	}
	return nil
}
