package report

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// rateWindow is the sliding window over which the instantaneous
// completion rate is measured. Short enough to track phase changes
// inside a sweep (fig7 cases are ~100x slower than fig1 cases), long
// enough to smooth worker-count jitter.
const rateWindow = 5 * time.Second

// maxWindowSamples bounds the completion-timestamp ring so a
// multi-thousand-case campaign cannot grow the window slice without
// bound between prunes.
const maxWindowSamples = 512

// Snapshot is a point-in-time view of a Progress. It is the shared
// currency between the interactive -progress lines (asapbench,
// asapcrash, asaptorture) and the daemon's per-job progress streaming:
// both sides read the same counters, rate, and ETA from the same
// sliding-window implementation.
type Snapshot struct {
	Done    int           `json:"done"`
	Total   int           `json:"total"`
	Failed  int           `json:"failed"`
	Cached  int           `json:"cached"`            // of Done, how many came from the result cache
	Current string        `json:"current,omitempty"` // most recently finished label
	Rate    float64       `json:"rate"`              // cases/s over the sliding window
	ETA     time.Duration `json:"-"`
	ETASec  float64       `json:"eta_sec"`
	Elapsed time.Duration `json:"-"`
}

// Progress is a single-line textual progress reporter for pooled
// experiment sweeps: jobs done/total, elapsed, sliding-window rate,
// ETA, and the slowest job seen so far. It implements the runner
// package's Reporter contract structurally (Start/Done), so report
// does not import runner. Batches accumulate: each Start call raises
// the total, letting one Progress span every figure of an asapbench
// run. With a nil writer (NewTracker) it draws nothing and serves
// purely as a thread-safe counter + rate tracker for Snapshot readers.
type Progress struct {
	mu        sync.Mutex
	w         io.Writer
	now       func() time.Time
	start     time.Time
	total     int
	done      int
	failed    int
	cached    int
	current   string
	slowLabel string
	slowWall  time.Duration
	window    []time.Time // completion times within rateWindow, ascending
	onUpdate  func(Snapshot)
}

// NewProgress returns a Progress writing to w (typically stderr).
func NewProgress(w io.Writer) *Progress {
	return &Progress{w: w, now: time.Now}
}

// NewTracker returns a Progress that never draws: counters, rate and
// ETA only, read via Snapshot or pushed via SetOnUpdate.
func NewTracker() *Progress {
	return &Progress{now: time.Now}
}

// SetOnUpdate installs a callback invoked (outside p's lock) after
// every Start and Done with a fresh snapshot. Used by the daemon to
// forward executor progress into its per-job event hub. Call before
// handing p to a pool; replacing mid-flight is racy.
func (p *Progress) SetOnUpdate(fn func(Snapshot)) {
	p.mu.Lock()
	p.onUpdate = fn
	p.mu.Unlock()
}

// Start announces a batch of jobs; totals accumulate across batches.
func (p *Progress) Start(total int) {
	p.mu.Lock()
	if p.start.IsZero() {
		p.start = p.now()
	}
	p.total += total
	snap, fn := p.snapshotLocked(), p.onUpdate
	p.mu.Unlock()
	if fn != nil {
		fn(snap)
	}
}

// Done reports one finished job and redraws the progress line.
func (p *Progress) Done(label string, wall time.Duration, ok bool) {
	p.finish(label, wall, ok, false)
}

// CachedDone reports one job satisfied from the result cache (the
// runner package's CacheReporter extension): it counts toward done and
// the rate like any completion, and separately toward the cached tally
// so warm sweeps read "done (cached/ran)".
func (p *Progress) CachedDone(label string) {
	p.finish(label, 0, true, true)
}

func (p *Progress) finish(label string, wall time.Duration, ok, cached bool) {
	p.mu.Lock()
	p.done++
	if !ok {
		p.failed++
	}
	if cached {
		p.cached++
	}
	p.current = label
	if wall > p.slowWall {
		p.slowWall, p.slowLabel = wall, label
	}
	t := p.now()
	p.window = append(p.window, t)
	p.pruneLocked(t)
	if p.w != nil {
		p.draw()
	}
	snap, fn := p.snapshotLocked(), p.onUpdate
	p.mu.Unlock()
	if fn != nil {
		fn(snap)
	}
}

// pruneLocked drops window samples older than rateWindow and clamps
// the ring size; callers hold p.mu.
func (p *Progress) pruneLocked(now time.Time) {
	cut := now.Add(-rateWindow)
	i := 0
	for i < len(p.window) && p.window[i].Before(cut) {
		i++
	}
	if i > 0 {
		p.window = append(p.window[:0], p.window[i:]...)
	}
	if n := len(p.window); n > maxWindowSamples {
		copy(p.window, p.window[n-maxWindowSamples:])
		p.window = p.window[:maxWindowSamples]
	}
}

// rateLocked returns cases/s. Inside the sliding window it is
// sample-count over window span; with too few recent samples it falls
// back to the lifetime average so ETAs stay sane on slow cases.
func (p *Progress) rateLocked(now time.Time) float64 {
	if n := len(p.window); n >= 2 {
		span := now.Sub(p.window[0])
		if span > 0 {
			return float64(n) / span.Seconds()
		}
	}
	if elapsed := now.Sub(p.start); elapsed > 0 && p.done > 0 {
		return float64(p.done) / elapsed.Seconds()
	}
	return 0
}

// snapshotLocked builds a Snapshot; callers hold p.mu.
func (p *Progress) snapshotLocked() Snapshot {
	now := p.now()
	s := Snapshot{
		Done:    p.done,
		Total:   p.total,
		Failed:  p.failed,
		Cached:  p.cached,
		Current: p.current,
		Rate:    p.rateLocked(now),
	}
	if !p.start.IsZero() {
		s.Elapsed = now.Sub(p.start)
	}
	if s.Rate > 0 && p.total > p.done {
		s.ETA = time.Duration(float64(p.total-p.done) / s.Rate * float64(time.Second))
		s.ETASec = s.ETA.Seconds()
	}
	return s
}

// Snapshot returns a point-in-time view of the progress counters.
func (p *Progress) Snapshot() Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.snapshotLocked()
}

// draw repaints the line; callers hold p.mu and have checked p.w.
func (p *Progress) draw() {
	now := p.now()
	elapsed := now.Sub(p.start)
	rate := p.rateLocked(now)
	var eta time.Duration
	if rate > 0 && p.total > p.done {
		eta = time.Duration(float64(p.total-p.done) / rate * float64(time.Second))
	}
	pct := 0.0
	if p.total > 0 {
		pct = 100 * float64(p.done) / float64(p.total)
	}
	counts := fmt.Sprintf("%d/%d", p.done, p.total)
	if p.cached > 0 {
		counts = fmt.Sprintf("%d/%d (%d cached/%d ran)", p.done, p.total, p.cached, p.done-p.cached)
	}
	line := fmt.Sprintf("[%s] %3.0f%% elapsed %s eta %s",
		counts, pct,
		elapsed.Round(100*time.Millisecond), eta.Round(100*time.Millisecond))
	if rate > 0 {
		line += fmt.Sprintf(" %.1f/s", rate)
	}
	if p.failed > 0 {
		line += fmt.Sprintf(" failed %d", p.failed)
	}
	if p.slowLabel != "" {
		line += fmt.Sprintf(" slowest %s (%s)", p.slowLabel, p.slowWall.Round(time.Millisecond))
	}
	fmt.Fprintf(p.w, "\r\x1b[K%s", line)
}

// Finish terminates the progress line with a summary and a newline.
func (p *Progress) Finish() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.total == 0 || p.w == nil {
		return
	}
	p.draw()
	fmt.Fprintln(p.w)
}
