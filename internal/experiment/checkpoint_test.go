package experiment

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"asap/internal/snapshot"
)

// smallScale keeps checkpoint tests fast while still crossing many
// thousands of cycles (enough for several boundaries).
func smallScale() Scale {
	return Scale{Threads: 2, OpsPerThread: 40, InitialItems: 32}
}

// TestCheckpointingIsOutputNeutral is the boundary-neutrality guarantee:
// a run with audit checkpoints enabled produces a byte-identical Result to
// the same run without them. Boundary events advance the kernel clock to
// the boundary but change no scheduling decision.
func TestCheckpointingIsOutputNeutral(t *testing.T) {
	for _, scheme := range []string{"ASAP", "SW", "HWUndo"} {
		v := Variant{Scheme: scheme}
		plain := Run(v, "HM", smallScale(), 64)

		SetCheckpointEvery(5000)
		checked := Run(v, "HM", smallScale(), 64)
		SetCheckpointEvery(0)

		if !reflect.DeepEqual(plain, checked) {
			t.Errorf("%s: checkpointing changed the result:\nplain:   %+v\nchecked: %+v", scheme, plain, checked)
		}
	}
}

// TestResumeMatchesStraightThrough is the resume equivalence guarantee,
// randomized over seeds: take checkpoints during a run, then resume from a
// middle checkpoint — the digest must verify at the boundary and the final
// Result must be bit-identical to the straight-through run.
func TestResumeMatchesStraightThrough(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const every = 5000
	for _, tc := range []struct {
		scheme, bench string
	}{
		{"ASAP", "HM"},
		{"ASAP", "Q"},
		{"SW", "BT"},
		{"HWRedo", "HM"},
	} {
		seed := rng.Int63n(1 << 30)
		v := Variant{Scheme: tc.scheme, Seed: seed}
		straight, snaps := RunCheckpointed(v, tc.bench, smallScale(), 64, every)
		if len(snaps) == 0 {
			t.Fatalf("%s/%s seed=%d: no checkpoints taken (run too short for every=%d?)", tc.scheme, tc.bench, seed, every)
		}
		from := snaps[len(snaps)/2]
		if from.Cycle == 0 || from.Cycle%every != 0 {
			t.Fatalf("%s/%s: checkpoint at cycle %d not on an every=%d boundary", tc.scheme, tc.bench, from.Cycle, every)
		}
		resumed, err := RunResumed(v, tc.bench, smallScale(), 64, every, from)
		if err != nil {
			t.Fatalf("%s/%s seed=%d: resume from cycle %d: %v", tc.scheme, tc.bench, seed, from.Cycle, err)
		}
		if !reflect.DeepEqual(straight, resumed) {
			t.Errorf("%s/%s seed=%d: resumed result diverged:\nstraight: %+v\nresumed:  %+v",
				tc.scheme, tc.bench, seed, straight, resumed)
		}
	}
}

// TestResumeDetectsTamperedSnapshot is the negative control: a snapshot
// with one flipped section digest must be rejected at the boundary with
// the diverging section named, never silently accepted.
func TestResumeDetectsTamperedSnapshot(t *testing.T) {
	v := Variant{Scheme: "ASAP", Seed: 7}
	const every = 5000
	_, snaps := RunCheckpointed(v, "HM", smallScale(), 64, every)
	if len(snaps) == 0 {
		t.Fatal("no checkpoints taken")
	}
	from := snaps[len(snaps)/2]
	tampered := from
	tampered.Sections = append([]snapshot.Section(nil), from.Sections...)
	for i, sec := range tampered.Sections {
		if sec.Name == "cache" {
			// Flip a hex digit of the cache section's digest.
			b := []byte(sec.SHA256)
			if b[0] == 'f' {
				b[0] = '0'
			} else {
				b[0] = 'f'
			}
			tampered.Sections[i].SHA256 = string(b)
		}
	}
	_, err := RunResumed(v, "HM", smallScale(), 64, every, tampered)
	var re *ResumeError
	if !errors.As(err, &re) {
		t.Fatalf("tampered snapshot accepted (err = %v)", err)
	}
	found := false
	for _, d := range re.Diffs {
		if strings.HasPrefix(d, `section "cache"`) {
			found = true
		}
	}
	if !found {
		t.Errorf("diff does not name the tampered section: %v", re.Diffs)
	}
}

// TestResumeRejectsOffBoundaryCycle covers the schedule-mismatch guard.
func TestResumeRejectsOffBoundaryCycle(t *testing.T) {
	if _, err := RunResumed(Variant{Scheme: "NP"}, "HM", smallScale(), 64, 5000, snapshot.Snap{Cycle: 5001}); err == nil {
		t.Fatal("off-boundary cycle accepted")
	}
	if _, err := RunResumed(Variant{Scheme: "NP"}, "HM", smallScale(), 64, 0, snapshot.Snap{Cycle: 5000}); err == nil {
		t.Fatal("every=0 accepted")
	}
}
