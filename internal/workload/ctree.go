package workload

import (
	"fmt"
	"math/bits"

	"asap/internal/sim"
)

// CTree (CT) inserts and updates entries in a crit-bit tree (a PATRICIA
// trie over 64-bit keys), following the c-tree workload of the WHISPER
// suite. Pointers are tagged: the low bit distinguishes leaves from
// internal nodes (all allocations are line-aligned, so low bits are free).
//
//	internal: bit(8) | left(8) | right(8)
//	leaf:     key(8) | valptr(8)
type CTree struct {
	mu       sim.Mutex
	rootCell uint64
	cntCell  uint64
	vbytes   int
	keyspace uint64
	delEvery int
	readPct  int
}

// NewCTree returns an empty CT benchmark.
func NewCTree() *CTree { return &CTree{} }

// Name implements Benchmark.
func (ct *CTree) Name() string { return "CT" }

const ctLeafTag = 1

func ctIsLeaf(p uint64) bool { return p&ctLeafTag != 0 }
func ctAddr(p uint64) uint64 { return p &^ ctLeafTag }

func (ct *CTree) newLeaf(c *Ctx, key, tag uint64) uint64 {
	l := c.Alloc(16)
	v := c.Alloc(ct.vbytes)
	c.FillValue(v, ct.vbytes, tag)
	c.StoreU64(l, key)
	c.StoreU64(l+8, v)
	return l | ctLeafTag
}

// Setup implements Benchmark.
func (ct *CTree) Setup(c *Ctx, cfg Config) {
	ct.vbytes = cfg.ValueBytes
	ct.delEvery = cfg.DeleteEvery
	ct.readPct = cfg.ReadPct
	ct.keyspace = uint64(cfg.InitialItems) * 2
	ct.rootCell = c.Alloc(8)
	ct.cntCell = c.Alloc(8)
	for i := 0; i < cfg.InitialItems; i++ {
		ct.insert(c, c.Rng.Uint64()%ct.keyspace, uint64(i))
	}
}

// dirOf returns which side key falls on for a node testing bit.
func dirOf(key uint64, bit uint) int {
	if key&(1<<bit) != 0 {
		return 1
	}
	return 0
}

// insert adds or updates key.
func (ct *CTree) insert(c *Ctx, key, tag uint64) {
	root := c.LoadU64(ct.rootCell)
	if root == 0 {
		c.StoreU64(ct.rootCell, ct.newLeaf(c, key, tag))
		c.StoreU64(ct.cntCell, c.LoadU64(ct.cntCell)+1)
		return
	}
	// Walk to the closest leaf.
	p := root
	for !ctIsLeaf(p) {
		bit := uint(c.LoadU64(ctAddr(p)))
		p = c.LoadU64(ctAddr(p) + 8 + 8*uint64(dirOf(key, bit)))
	}
	leafKey := c.LoadU64(ctAddr(p))
	if leafKey == key {
		c.FillValue(c.LoadU64(ctAddr(p)+8), ct.vbytes, tag)
		return
	}
	// First differing bit decides where the new internal node goes.
	critBit := uint(63 - bits.LeadingZeros64(leafKey^key))

	n := c.Alloc(24)
	c.StoreU64(n, uint64(critBit))
	newLeaf := ct.newLeaf(c, key, tag)

	// Descend again, stopping where the crit bit outranks the node bit.
	cellAddr := ct.rootCell
	p = c.LoadU64(cellAddr)
	for !ctIsLeaf(p) {
		bit := uint(c.LoadU64(ctAddr(p)))
		if bit < critBit {
			break
		}
		cellAddr = ctAddr(p) + 8 + 8*uint64(dirOf(key, bit))
		p = c.LoadU64(cellAddr)
	}
	c.StoreU64(n+8+8*uint64(dirOf(key, critBit)), newLeaf)
	c.StoreU64(n+8+8*uint64(1-dirOf(key, critBit)), p)
	c.StoreU64(cellAddr, n)
	c.StoreU64(ct.cntCell, c.LoadU64(ct.cntCell)+1)
}

// lookup returns the value pointer for key, or 0.
func (ct *CTree) lookup(c *Ctx, key uint64) uint64 {
	p := c.LoadU64(ct.rootCell)
	if p == 0 {
		return 0
	}
	for !ctIsLeaf(p) {
		bit := uint(c.LoadU64(ctAddr(p)))
		p = c.LoadU64(ctAddr(p) + 8 + 8*uint64(dirOf(key, bit)))
	}
	if c.LoadU64(ctAddr(p)) == key {
		return c.LoadU64(ctAddr(p) + 8)
	}
	return 0
}

// Op implements Benchmark: insert/update, lookup with ReadPct, deletion
// every DeleteEvery-th operation.
func (ct *CTree) Op(c *Ctx, i int) {
	key := c.Key(ct.keyspace)
	ct.mu.Lock(c.T)
	c.Begin()
	switch {
	case ct.readPct > 0 && c.Rng.Intn(100) < ct.readPct:
		ct.lookup(c, key)
	case ct.delEvery > 0 && (i+1)%ct.delEvery == 0:
		ct.delete(c, key)
	default:
		ct.insert(c, key, uint64(i))
	}
	c.End()
	ct.mu.Unlock(c.T)
}

// Check implements Benchmark: leaf count matches the counter, keys are
// unique, and every node's bit outranks its children's bits.
func (ct *CTree) Check(c *Ctx) string {
	count := 0
	seen := map[uint64]bool{}
	var walk func(p uint64, parentBit int) string
	walk = func(p uint64, parentBit int) string {
		if p == 0 {
			return ""
		}
		if ctIsLeaf(p) {
			key := c.LoadU64(ctAddr(p))
			if seen[key] {
				return fmt.Sprintf("CT: duplicate key %d", key)
			}
			seen[key] = true
			count++
			return ""
		}
		bit := int(c.LoadU64(ctAddr(p)))
		if parentBit >= 0 && bit >= parentBit {
			return fmt.Sprintf("CT: child bit %d >= parent bit %d", bit, parentBit)
		}
		if msg := walk(c.LoadU64(ctAddr(p)+8), bit); msg != "" {
			return msg
		}
		return walk(c.LoadU64(ctAddr(p)+16), bit)
	}
	if msg := walk(c.LoadU64(ct.rootCell), -1); msg != "" {
		return msg
	}
	if got := c.LoadU64(ct.cntCell); got != uint64(count) {
		return fmt.Sprintf("CT: count cell %d != leaves %d", got, count)
	}
	return ""
}

// delete removes key from the crit-bit tree, returning whether it was
// present: the leaf and its parent internal node unlink, the sibling
// taking the parent's place (the standard PATRICIA deletion).
func (ct *CTree) delete(c *Ctx, key uint64) bool {
	root := c.LoadU64(ct.rootCell)
	if root == 0 {
		return false
	}
	if ctIsLeaf(root) {
		if c.LoadU64(ctAddr(root)) != key {
			return false
		}
		c.StoreU64(ct.rootCell, 0)
		c.StoreU64(ct.cntCell, c.LoadU64(ct.cntCell)-1)
		c.Free(c.LoadU64(ctAddr(root) + 8))
		c.Free(ctAddr(root))
		return true
	}
	// Walk down tracking the pointer cell to the current internal node
	// and the cell inside it that leads to the leaf.
	parentCell := ct.rootCell // holds pointer to cur (internal)
	cur := root
	var leafCell uint64
	for {
		bit := uint(c.LoadU64(ctAddr(cur)))
		leafCell = ctAddr(cur) + 8 + 8*uint64(dirOf(key, bit))
		next := c.LoadU64(leafCell)
		if ctIsLeaf(next) {
			if c.LoadU64(ctAddr(next)) != key {
				return false
			}
			// Sibling replaces the parent internal node.
			sibCell := ctAddr(cur) + 8 + 8*uint64(1-dirOf(key, bit))
			sibling := c.LoadU64(sibCell)
			c.StoreU64(parentCell, sibling)
			c.StoreU64(ct.cntCell, c.LoadU64(ct.cntCell)-1)
			c.Free(c.LoadU64(ctAddr(next) + 8))
			c.Free(ctAddr(next))
			c.Free(ctAddr(cur))
			return true
		}
		parentCell = leafCell
		cur = next
	}
}
