package torture

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"asap/internal/faults"
)

// TestCleanCaseEveryPreset: a drain-to-completion schedule must pass on
// every exhaustion configuration with the invariant engine attached — the
// squeezed structures may stall and spill, but never break the protocol.
func TestCleanCaseEveryPreset(t *testing.T) {
	for _, p := range Presets() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			o := RunCase(Case{Preset: p.Name, Seed: 11, Threads: 3, Ops: 25, Stride: 1})
			if o.Verdict != VerdictPass {
				t.Fatalf("%s: want pass, got %s: %s\nviolations: %v\nstall: %s",
					p.Name, o.Verdict, o.Detail, o.Violations, o.Stall)
			}
			if o.Checks == 0 {
				t.Fatal("invariant engine never ran a pass")
			}
			if o.Regions == 0 {
				t.Fatal("schedule committed no regions")
			}
		})
	}
}

// TestNegativeControlCaughtAndShrunk is the acceptance criterion: the
// seeded commit-rule weakening under a 2-entry Dependence List must be
// caught as a violation, and ddmin must shrink the schedule to a smaller
// reproducer that still violates on replay.
func TestNegativeControlCaughtAndShrunk(t *testing.T) {
	c := Case{Preset: "dep2", Seed: 5, Threads: 3, Ops: 12, NegativeControl: true}
	o := RunCase(c)
	if o.Verdict != VerdictViolation {
		t.Fatalf("negative control not caught: verdict %s (%s)", o.Verdict, o.Detail)
	}
	full := c.schedule()
	shrunk := Shrink(c, 200)
	if len(shrunk) == 0 || len(shrunk) >= len(full) {
		t.Fatalf("shrink returned %d ops from %d", len(shrunk), len(full))
	}
	c.Schedule = shrunk
	if v := RunCase(c).Verdict; v != VerdictViolation {
		t.Fatalf("shrunk schedule does not reproduce the violation: %s", v)
	}
	t.Logf("shrunk %d ops to %d: %v", len(full), len(shrunk), shrunk)
}

// TestCrashCasesNeverViolate: crashes at arbitrary points under the full
// fault mixture (including LH-WPQ header drops) on squeezed machines must
// always land on recovered/detected/pass — never a silently broken image.
func TestCrashCasesNeverViolate(t *testing.T) {
	mix := faults.Mix{TornPct: 0.2, DropPct: 0.2, ReorderPct: 0.3, LHDropPct: 0.3, BitFlips: 1}
	counts := map[Verdict]int{}
	for i, preset := range []string{"baseline", "dep2", "lhwpq1", "squeeze"} {
		for _, at := range []uint64{1_000, 9_000, 60_000} {
			c := Case{
				Preset: preset, Seed: int64(100*i) + int64(at), Threads: 3, Ops: 40,
				CrashAt: at, Mix: mix,
			}
			o := RunCase(c)
			counts[o.Verdict]++
			if o.Verdict == VerdictViolation || o.Verdict == VerdictError || o.Verdict == VerdictStall {
				t.Errorf("%s: %s: %s\nviolations: %v", c, o.Verdict, o.Detail, o.Violations)
			}
		}
	}
	t.Logf("verdicts: %v", counts)
	if counts[VerdictDetected] == 0 && counts[VerdictRecovered] == 0 {
		t.Error("no crash case exercised the fault path")
	}
}

// TestScheduleDeterministic: the same seed always generates the same
// schedule, and different seeds differ — replay depends on this.
func TestScheduleDeterministic(t *testing.T) {
	a, b := Generate(7, 3, 20), Generate(7, 3, 20)
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatal("same seed generated different schedules")
	}
	cj, _ := json.Marshal(Generate(8, 3, 20))
	if string(aj) == string(cj) {
		t.Fatal("different seeds generated identical schedules")
	}
	if len(a) != 60 {
		t.Fatalf("schedule length %d, want 60", len(a))
	}
}

// TestSweepDeterministicCases: the case list is a pure function of the
// config, so CI reruns sweep identical cases.
func TestSweepDeterministicCases(t *testing.T) {
	cfg := SweepConfig{Seed: 3, SeedsPerPreset: 2, CrashPoints: 1}
	a, err := cfg.Cases()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := cfg.Cases()
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatal("case list not deterministic")
	}
	want := len(PresetNames())*2*(1+1) + 2 // (clean + crash) per seed + controls
	if len(a) != want {
		t.Fatalf("got %d cases, want %d", len(a), want)
	}
	if _, err := (SweepConfig{Presets: []string{"nope"}}).Cases(); err == nil {
		t.Fatal("Cases accepted an unknown preset")
	}
}

// TestSweepSmall runs a bounded sweep in-process: zero bad outcomes, and
// the negative controls are caught (and shrunk, proving the ddmin path).
func TestSweepSmall(t *testing.T) {
	sum, err := Sweep(SweepConfig{
		Presets: []string{"baseline", "dep2", "squeeze"}, SeedsPerPreset: 1,
		Seed: 9, Threads: 3, Ops: 25, CrashPoints: 1,
		Mix:              faults.Mix{DropPct: 0.3, LHDropPct: 0.3},
		NegativeControls: 1, ShrinkBudget: 120,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Bad() != 0 {
		for _, v := range sum.Violations() {
			t.Errorf("violation: %s: %s", v.Case, v.Detail)
		}
		t.Fatalf("%d bad outcomes (counts %v, controls missed %d)",
			sum.Bad(), sum.Counts, sum.ControlsMissed)
	}
	if sum.ControlsCaught != 1 || sum.ControlsMissed != 0 {
		t.Fatalf("controls: caught %d missed %d, want 1/0", sum.ControlsCaught, sum.ControlsMissed)
	}
	for _, o := range sum.Outcomes {
		if o.Case.NegativeControl && len(o.Shrunk) == 0 {
			t.Error("caught control was not shrunk")
		}
	}
	t.Logf("verdicts: %v", sum.Counts)
}

// TestUnknownPresetErrors keeps the CLI's error path honest.
func TestUnknownPresetErrors(t *testing.T) {
	if o := RunCase(Case{Preset: "nope", Threads: 1, Ops: 1}); o.Verdict != VerdictError {
		t.Fatalf("want error verdict, got %s", o.Verdict)
	}
}

// TestOutcomeJSONRoundTrips: the CLI report is JSON.
func TestOutcomeJSONRoundTrips(t *testing.T) {
	o := RunCase(Case{Preset: "lhwpq1", Seed: 3, Threads: 2, Ops: 10,
		CrashAt: 4_000, Mix: faults.Mix{LHDropPct: 1}})
	blob, err := json.Marshal(o)
	if err != nil {
		t.Fatal(err)
	}
	var back Outcome
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Verdict != o.Verdict || len(back.Faults) != len(o.Faults) {
		t.Fatalf("round trip lost data: %+v vs %+v", back, o)
	}
}

// TestSweepCancelledReturnsPartialSummary exercises the SIGINT path:
// a pre-cancelled context must yield a partial summary plus the
// context's error, never a nil summary — asaptorture relies on this to
// flush its report before exiting 130.
func TestSweepCancelledReturnsPartialSummary(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sum, err := Sweep(SweepConfig{
		Presets:        []string{"dep2"},
		SeedsPerPreset: 4,
		Seed:           5,
		Ops:            10,
		Workers:        1,
		Context:        ctx,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if sum == nil {
		t.Fatal("cancelled sweep returned nil summary")
	}
	if sum.Total != len(sum.Outcomes) {
		t.Fatalf("Total %d != %d outcomes", sum.Total, len(sum.Outcomes))
	}
	for _, o := range sum.Outcomes {
		if o.Verdict == "" {
			t.Fatal("zero-value outcome leaked into partial summary")
		}
	}
	all := 4*3 + 2 // (clean + 2 crash points) per seed, plus 2 controls
	if sum.Total >= all {
		t.Fatalf("cancelled sweep still ran all %d cases", sum.Total)
	}
}
