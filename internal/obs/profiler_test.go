package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"asap/internal/sim"
)

// TestBucketSumsExact drives the exactness invariant through both clock
// paths: Advance (thread moves its own clock) and the kernel's blocked-
// thread catch-up (an event unblocks a waiter whose clock lags). Every
// cycle must land in exactly one bucket.
func TestBucketSumsExact(t *testing.T) {
	k := sim.NewKernel()
	p := NewProfiler()
	k.SetObserver(&Session{Prof: p})

	ready := false
	k.Schedule(50, func() { ready = true })
	k.Spawn("waiter", func(th *sim.Thread) {
		th.Advance(10)
		p.Enter(th, FenceWait)
		th.WaitUntil(func() bool { return ready })
		p.Exit(th)
		th.Advance(5)
	})
	k.Spawn("worker", func(th *sim.Thread) {
		th.Advance(30)
	})
	k.Run()

	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
	tps := p.Threads()
	if len(tps) != 2 || tps[0].Name != "waiter" || tps[1].Name != "worker" {
		t.Fatalf("Threads() = %v, want [waiter worker]", tps)
	}
	w := tps[0]
	// 10 compute, then blocked 10->50 charged to FenceWait, then 5 compute.
	if w.Cycles[Compute] != 15 || w.Cycles[FenceWait] != 40 || w.Total() != 55 {
		t.Fatalf("waiter: compute=%d fence=%d total=%d, want 15/40/55",
			w.Cycles[Compute], w.Cycles[FenceWait], w.Total())
	}
	if tps[1].Cycles[Compute] != 30 || tps[1].Total() != 30 {
		t.Fatalf("worker: compute=%d total=%d, want 30/30",
			tps[1].Cycles[Compute], tps[1].Total())
	}
	per, total := p.Totals()
	var sum uint64
	for _, c := range per {
		sum += c
	}
	if sum != total || total != 85 {
		t.Fatalf("Totals: sum=%d total=%d, want 85/85", sum, total)
	}
}

// TestNestedBuckets: cycles inside a nested Enter are charged to the
// inner bucket, not the outer.
func TestNestedBuckets(t *testing.T) {
	k := sim.NewKernel()
	p := NewProfiler()
	k.SetObserver(&Session{Prof: p})
	k.Spawn("n", func(th *sim.Thread) {
		p.Enter(th, FenceWait)
		th.Advance(10)
		p.Enter(th, DepSlot)
		th.Advance(7)
		p.Exit(th)
		th.Advance(3)
		p.Exit(th)
		th.Advance(2)
	})
	k.Run()

	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
	tp := p.Threads()[0]
	if tp.Cycles[FenceWait] != 13 || tp.Cycles[DepSlot] != 7 || tp.Cycles[Compute] != 2 {
		t.Fatalf("fence=%d dep=%d compute=%d, want 13/7/2",
			tp.Cycles[FenceWait], tp.Cycles[DepSlot], tp.Cycles[Compute])
	}
}

// TestLockContentionChargedToLockWait: the kernel reports contended mutex
// waits through LockBegin/LockEnd, which must land in the LockWait bucket.
func TestLockContentionChargedToLockWait(t *testing.T) {
	k := sim.NewKernel()
	p := NewProfiler()
	k.SetObserver(&Session{Prof: p})
	var mu sim.Mutex
	k.Spawn("first", func(th *sim.Thread) {
		mu.Lock(th)
		th.Advance(20)
		mu.Unlock(th)
	})
	k.Spawn("second", func(th *sim.Thread) {
		mu.Lock(th)
		th.Advance(1)
		mu.Unlock(th)
	})
	k.Run()

	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
	second := p.Threads()[1]
	if second.Cycles[LockWait] == 0 {
		t.Fatalf("contended thread has no lock-wait cycles: %+v", second.Cycles)
	}
	if p.Threads()[0].Cycles[LockWait] != 0 {
		t.Fatal("uncontended holder charged lock-wait cycles")
	}
}

// TestNilProfilerSafe: every method must be a no-op on a nil receiver —
// that is the zero-cost-disabled contract components rely on.
func TestNilProfilerSafe(t *testing.T) {
	var p *Profiler
	p.ThreadStart(nil)
	p.ClockAdvance(nil, 5)
	p.Enter(nil, FenceWait)
	p.Exit(nil)
	p.LockBegin(nil)
	p.LockEnd(nil)
	p.Tick(7)
	p.EnableSpans(10)
	if p.Threads() != nil {
		t.Fatal("nil profiler Threads != nil")
	}
	if s, d := p.Spans(); s != nil || d != 0 {
		t.Fatal("nil profiler Spans != nil")
	}
	if _, total := p.Totals(); total != 0 {
		t.Fatal("nil profiler Totals != 0")
	}
	if p.Check() != nil {
		t.Fatal("nil profiler Check != nil")
	}
	if p.String() != "" {
		t.Fatal("nil profiler String != empty")
	}
}

// TestExitWithoutEnterPanics: an unbalanced Exit is a protocol-bracketing
// bug worth crashing on.
func TestExitWithoutEnterPanics(t *testing.T) {
	k := sim.NewKernel()
	p := NewProfiler()
	k.SetObserver(&Session{Prof: p})
	var captured *sim.Thread
	k.Spawn("x", func(th *sim.Thread) { captured = th; th.Advance(1) })
	k.Run()

	defer func() {
		if r := recover(); r == nil {
			t.Fatal("Exit without Enter did not panic")
		} else if !strings.Contains(r.(string), "Exit without Enter") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	p.Exit(captured)
}

// TestCheckCatchesViolations: Check must flag an unmatched Enter and a
// bucket sum that disagrees with the thread's lifetime.
func TestCheckCatchesViolations(t *testing.T) {
	k := sim.NewKernel()
	p := NewProfiler()
	k.SetObserver(&Session{Prof: p})
	var captured *sim.Thread
	k.Spawn("x", func(th *sim.Thread) { captured = th; th.Advance(4) })
	k.Run()
	if err := p.Check(); err != nil {
		t.Fatalf("clean run: %v", err)
	}

	p.Enter(captured, DepSlot)
	if err := p.Check(); err == nil || !strings.Contains(err.Error(), "unmatched") {
		t.Fatalf("unmatched Enter not flagged: %v", err)
	}
	p.Exit(captured)

	p.byID[captured.ID()].Cycles[Compute]++ // corrupt the accounting
	if err := p.Check(); err == nil || !strings.Contains(err.Error(), "lifetime") {
		t.Fatalf("sum/lifetime mismatch not flagged: %v", err)
	}
}

// TestSpanRecording: spans are recorded only when enabled, zero-duration
// waits are skipped, and the cap counts instead of stores.
func TestSpanRecording(t *testing.T) {
	k := sim.NewKernel()
	p := NewProfiler()
	p.EnableSpans(2)
	k.SetObserver(&Session{Prof: p})
	k.Spawn("s", func(th *sim.Thread) {
		p.Enter(th, FenceWait) // zero-duration: not recorded
		p.Exit(th)
		for i := 0; i < 3; i++ {
			p.Enter(th, DepSlot)
			th.Advance(5)
			p.Exit(th)
		}
	})
	k.Run()

	spans, dropped := p.Spans()
	if len(spans) != 2 || dropped != 1 {
		t.Fatalf("got %d spans, %d dropped; want 2 kept, 1 dropped", len(spans), dropped)
	}
	if spans[0].Bucket != DepSlot || spans[0].To-spans[0].From != 5 {
		t.Fatalf("span[0] = %+v, want 5-cycle dep-slot", spans[0])
	}
}

// TestWriteJSON: the dump round-trips, keeps only nonzero buckets, and
// each thread's bucket cycles sum to its total.
func TestWriteJSON(t *testing.T) {
	k := sim.NewKernel()
	p := NewProfiler()
	k.SetObserver(&Session{Prof: p})
	k.Spawn("j", func(th *sim.Thread) {
		th.Advance(9)
		p.Enter(th, Drain)
		th.Advance(4)
		p.Exit(th)
	})
	k.Run()

	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Threads []struct {
			Name   string            `json:"name"`
			Total  uint64            `json:"total"`
			Cycles map[string]uint64 `json:"cycles"`
		} `json:"threads"`
		Totals map[string]uint64 `json:"totals"`
		Total  uint64            `json:"total"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("WriteJSON output does not parse: %v", err)
	}
	if len(doc.Threads) != 1 || doc.Total != 13 {
		t.Fatalf("doc = %+v, want one thread, total 13", doc)
	}
	th := doc.Threads[0]
	var sum uint64
	for _, c := range th.Cycles {
		sum += c
	}
	if sum != th.Total {
		t.Fatalf("thread bucket cycles %d != total %d", sum, th.Total)
	}
	if th.Cycles["compute"] != 9 || th.Cycles["drain"] != 4 {
		t.Fatalf("cycles = %v, want compute:9 drain:4", th.Cycles)
	}
	if _, ok := th.Cycles["wpq-full"]; ok {
		t.Fatal("zero bucket serialized")
	}
}

// TestSortedBucketIdx orders descending with stable ties.
func TestSortedBucketIdx(t *testing.T) {
	var per [NumBuckets]uint64
	per[Compute] = 5
	per[FenceWait] = 100
	per[Drain] = 5
	idx := SortedBucketIdx(per)
	if idx[0] != int(FenceWait) {
		t.Fatalf("idx[0] = %d, want FenceWait", idx[0])
	}
	// Tie between Compute and Drain keeps index order.
	if idx[1] != int(Compute) || idx[2] != int(Drain) {
		t.Fatalf("tie order = %d,%d, want Compute,Drain", idx[1], idx[2])
	}
}

// TestBucketNames: every bucket has a distinct name and the exported list
// matches String().
func TestBucketNames(t *testing.T) {
	names := BucketNames()
	if len(names) != int(NumBuckets) {
		t.Fatalf("BucketNames len = %d", len(names))
	}
	seen := map[string]bool{}
	for b, n := range names {
		if n == "" || seen[n] {
			t.Fatalf("bucket %d name %q empty or duplicated", b, n)
		}
		seen[n] = true
		if Bucket(b).String() != n {
			t.Fatalf("Bucket(%d).String() = %q, want %q", b, Bucket(b).String(), n)
		}
	}
	if !strings.HasPrefix(Bucket(200).String(), "bucket(") {
		t.Fatal("out-of-range bucket should fall back")
	}
}
