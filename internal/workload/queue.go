package workload

import (
	"fmt"

	"asap/internal/sim"
)

// Queue (Q) enqueues and dequeues nodes of a persistent FIFO linked list.
// The head and tail pointers sit on separate lines and are touched by
// every operation, so consecutive atomic regions — across all threads —
// are data dependent on each other through them: the benchmark the paper
// singles out for the highest cross-region dependence rate (§7.2).
// Node layout:
//
//	next(8) | value[ValueBytes]
type Queue struct {
	mu       sim.Mutex
	headCell uint64
	tailCell uint64
	cntCell  uint64
	enqCell  uint64
	deqCell  uint64
	vbytes   int
}

// NewQueue returns an empty Q benchmark.
func NewQueue() *Queue { return &Queue{} }

// Name implements Benchmark.
func (q *Queue) Name() string { return "Q" }

const qNodeHdr = 8

// Setup implements Benchmark.
func (q *Queue) Setup(c *Ctx, cfg Config) {
	q.vbytes = cfg.ValueBytes
	q.headCell = c.Alloc(64)
	q.tailCell = c.Alloc(64)
	q.cntCell = c.Alloc(64)
	q.enqCell = c.Alloc(64)
	q.deqCell = c.Alloc(64)
	for i := 0; i < cfg.InitialItems; i++ {
		q.enqueue(c, uint64(i))
	}
}

func (q *Queue) enqueue(c *Ctx, tag uint64) {
	n := c.Alloc(qNodeHdr + q.vbytes)
	c.StoreU64(n, 0)
	c.FillValue(n+qNodeHdr, q.vbytes, tag)
	tail := c.LoadU64(q.tailCell)
	if tail == 0 {
		c.StoreU64(q.headCell, n)
	} else {
		c.StoreU64(tail, n)
	}
	c.StoreU64(q.tailCell, n)
	c.StoreU64(q.cntCell, c.LoadU64(q.cntCell)+1)
	c.StoreU64(q.enqCell, c.LoadU64(q.enqCell)+1)
}

func (q *Queue) dequeue(c *Ctx) bool {
	head := c.LoadU64(q.headCell)
	if head == 0 {
		return false
	}
	next := c.LoadU64(head)
	c.StoreU64(q.headCell, next)
	if next == 0 {
		c.StoreU64(q.tailCell, 0)
	}
	c.StoreU64(q.cntCell, c.LoadU64(q.cntCell)-1)
	c.StoreU64(q.deqCell, c.LoadU64(q.deqCell)+1)
	c.Free(head)
	return true
}

// Op implements Benchmark: alternating enqueue/dequeue pressure.
func (q *Queue) Op(c *Ctx, i int) {
	q.mu.Lock(c.T)
	c.Begin()
	if c.Rng.Intn(2) == 0 {
		q.enqueue(c, uint64(i))
	} else if !q.dequeue(c) {
		q.enqueue(c, uint64(i))
	}
	c.End()
	q.mu.Unlock(c.T)
}

// Check implements Benchmark: the chain length matches the counter and
// the enqueue/dequeue totals reconcile.
func (q *Queue) Check(c *Ctx) string {
	n := uint64(0)
	last := uint64(0)
	for cur := c.LoadU64(q.headCell); cur != 0; cur = c.LoadU64(cur) {
		last = cur
		n++
		if n > 1<<24 {
			return "Q: cycle in list"
		}
	}
	if got := c.LoadU64(q.cntCell); got != n {
		return fmt.Sprintf("Q: count cell %d != chain length %d", got, n)
	}
	if tail := c.LoadU64(q.tailCell); tail != last {
		return fmt.Sprintf("Q: tail cell %#x != last node %#x", tail, last)
	}
	enq, deq := c.LoadU64(q.enqCell), c.LoadU64(q.deqCell)
	if enq-deq != n {
		return fmt.Sprintf("Q: enq %d - deq %d != length %d", enq, deq, n)
	}
	return ""
}

// Persisted-image accessors: crash-recovery tests walk the queue directly
// in the PM image, so the cell addresses must be visible.

// HeadCellAddr returns the head pointer cell's address.
func (q *Queue) HeadCellAddr() uint64 { return q.headCell }

// TailCellAddr returns the tail pointer cell's address.
func (q *Queue) TailCellAddr() uint64 { return q.tailCell }

// CountCellAddr returns the length cell's address.
func (q *Queue) CountCellAddr() uint64 { return q.cntCell }

// EnqCellAddr returns the enqueue-total cell's address.
func (q *Queue) EnqCellAddr() uint64 { return q.enqCell }

// DeqCellAddr returns the dequeue-total cell's address.
func (q *Queue) DeqCellAddr() uint64 { return q.deqCell }
