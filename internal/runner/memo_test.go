package runner

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// memoReporter counts Done vs CachedDone calls.
type memoReporter struct {
	started, done, cached int
}

func (r *memoReporter) Start(total int)                                { r.started += total }
func (r *memoReporter) Done(label string, wall time.Duration, ok bool) { r.done++ }
func (r *memoReporter) CachedDone(label string)                        { r.cached++ }

// TestMemoHitsSkipRun: jobs with a hitting Cached probe never run, land
// their cached result at the right index, and report through CachedDone;
// misses run, call Store, and report through Done.
func TestMemoHitsSkipRun(t *testing.T) {
	var ran, stored atomic.Int64
	rep := &memoReporter{}
	p := New(4)
	p.SetReporter(rep)

	jobs := make([]Job[int], 10)
	for i := range jobs {
		i := i
		hit := i%2 == 0
		jobs[i] = Job[int]{
			Label: fmt.Sprintf("job%d", i),
			Run: func() int {
				ran.Add(1)
				return i * 100
			},
			Cached: func() (int, bool) {
				if hit {
					return i * 100, true
				}
				return 0, false
			},
			Store: func(r int) {
				if r != i*100 {
					t.Errorf("Store(%d) for job %d", r, i)
				}
				stored.Add(1)
			},
		}
	}
	out, err := Collect(p, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*100 {
			t.Errorf("out[%d] = %d, want %d", i, v, i*100)
		}
	}
	if ran.Load() != 5 {
		t.Errorf("ran = %d, want 5 (hits must not run)", ran.Load())
	}
	if stored.Load() != 5 {
		t.Errorf("stored = %d, want 5 (only misses store)", stored.Load())
	}
	if rep.cached != 5 || rep.done != 5 {
		t.Errorf("reporter saw cached=%d done=%d, want 5/5", rep.cached, rep.done)
	}
}

// TestMemoPlainReporterSeesHitsAsDone: a reporter without CachedDone
// still gets a Done call per hit, so totals always add up.
func TestMemoPlainReporterSeesHitsAsDone(t *testing.T) {
	rep := &plainReporter{}
	p := New(2)
	p.SetReporter(rep)
	jobs := []Job[int]{
		{Label: "hit", Run: func() int { return 0 }, Cached: func() (int, bool) { return 7, true }},
		{Label: "miss", Run: func() int { return 8 }, Cached: func() (int, bool) { return 0, false }},
	}
	out, err := Collect(p, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 7 || out[1] != 8 {
		t.Fatalf("out = %v", out)
	}
	if rep.done != 2 {
		t.Fatalf("done = %d, want 2", rep.done)
	}
}

type plainReporter struct{ done int }

func (r *plainReporter) Start(total int)                                {}
func (r *plainReporter) Done(label string, wall time.Duration, ok bool) { r.done++ }

// TestMemoPanickingProbeIsAMiss: a Cached probe that panics degrades to
// a miss; the job runs and the batch succeeds.
func TestMemoPanickingProbeIsAMiss(t *testing.T) {
	p := New(1)
	jobs := []Job[int]{{
		Label:  "probe-panics",
		Run:    func() int { return 42 },
		Cached: func() (int, bool) { panic("corrupt probe") },
	}}
	out, err := Collect(p, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 42 {
		t.Fatalf("out[0] = %d, want 42", out[0])
	}
}

// TestMemoStoreSkippedOnPanic: a job that panics never reaches Store.
func TestMemoStoreSkippedOnPanic(t *testing.T) {
	var stored atomic.Int64
	p := New(1)
	jobs := []Job[int]{{
		Label: "boom",
		Run:   func() int { panic("no") },
		Store: func(int) { stored.Add(1) },
	}}
	if _, err := Collect(p, jobs); err == nil {
		t.Fatal("expected panic error")
	}
	if stored.Load() != 0 {
		t.Fatalf("Store called %d times after panic", stored.Load())
	}
}
