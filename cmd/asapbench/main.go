// Command asapbench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	asapbench -experiment fig7                    # one figure, quick scale
//	asapbench -experiment all -full               # everything, paper scale
//	asapbench -experiment all -parallel 8         # fan runs across 8 workers
//	asapbench -experiment fig1 -json timings.json # machine-readable timings
//	asapbench -experiment all -cpuprofile cpu.pb.gz -memprofile mem.pb.gz
//
// Experiments: fig1 fig7 fig8 fig9a fig9b fig10 lhwpq area config all,
// plus "profile" (cycle accounting across schemes; not part of "all" so
// the default output stays byte-identical with observability off).
//
// Every experiment fans its (variant × benchmark) matrix across a worker
// pool and assembles results in submission order, so the emitted tables
// are byte-identical at any -parallel width. Exit status is non-zero if
// any requested experiment fails.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"asap/internal/area"
	"asap/internal/experiment"
	"asap/internal/machine"
	"asap/internal/report"
	"asap/internal/runner"
	"asap/internal/stats"
)

func main() { os.Exit(run()) }

// experimentTiming is one experiment's entry in the -json artifact.
type experimentTiming struct {
	Name   string `json:"name"`
	WallNS int64  `json:"wall_ns"`
	Error  string `json:"error,omitempty"`
}

// timingReport is the -json artifact: per-experiment and per-job wall
// times plus the simulated metrics, for CI trend tracking and speedup
// verification (TotalJobWallNS / WallNS ≈ achieved parallelism).
type timingReport struct {
	Parallel       int                `json:"parallel"`
	GOMAXPROCS     int                `json:"gomaxprocs"`
	Scale          string             `json:"scale"`
	WallNS         int64              `json:"wall_ns"`
	TotalJobWallNS int64              `json:"total_job_wall_ns"`
	Experiments    []experimentTiming `json:"experiments"`
	Jobs           []stats.JobMetrics `json:"jobs"`
}

func run() int {
	which := flag.String("experiment", "all", "fig1|fig7|fig8|fig9a|fig9b|fig10|lhwpq|area|config|ablation-coalesce|ablation-structs|corun|design|fences|lifetime|numa|profile|scaling|tail|all")
	profBench := flag.String("profile-bench", "Q", "benchmark for -experiment profile")
	full := flag.Bool("full", false, "paper-scale runs (slower)")
	chart := flag.Bool("chart", false, "render tables as ASCII bar charts")
	parallel := flag.Int("parallel", 0, "experiment worker pool size (0 = GOMAXPROCS, 1 = serial)")
	jsonPath := flag.String("json", "", "write per-experiment and per-job timings as JSON to this path")
	progress := flag.Bool("progress", isTerminal(os.Stderr), "print a live progress line to stderr")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile (runtime/pprof) to this path")
	memProfile := flag.String("memprofile", "", "write a heap profile taken at exit to this path")
	flag.Parse()

	if *cpuProfile != "" {
		stop, err := startCPUProfile(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "asapbench: %v\n", err)
			return 1
		}
		defer stop()
	}
	if *memProfile != "" {
		defer func() {
			if err := writeHeapProfile(*memProfile); err != nil {
				fmt.Fprintf(os.Stderr, "asapbench: %v\n", err)
			}
		}()
	}

	pool := runner.New(*parallel)
	jobLog := &stats.JobLog{}
	pool.SetMetrics(jobLog)
	var prog *report.Progress
	if *progress {
		prog = report.NewProgress(os.Stderr)
		pool.SetReporter(prog)
	}
	experiment.SetPool(pool)

	scale := experiment.QuickScale()
	scaleName := "quick"
	if *full {
		scale = experiment.FullScale()
		scaleName = "full"
	}
	show := func(t *experiment.Table) {
		if *chart {
			fmt.Println(report.Render(t, report.Options{Baseline: 1}))
			return
		}
		fmt.Println(t)
	}

	run := map[string]func(){
		"fig1": func() { show(experiment.Fig1(scale)) },
		"fig7": func() {
			show(experiment.Fig7(scale, 64))
			show(experiment.Fig7(scale, 2048))
		},
		"fig8":  func() { show(experiment.Fig8(scale, 64)) },
		"fig9a": func() { show(experiment.Fig9a(scale)) },
		"fig9b": func() { show(experiment.Fig9b(scale)) },
		"fig10": func() {
			for _, t := range experiment.Fig10(scale) {
				show(t)
			}
		},
		"lhwpq":  func() { show(experiment.Sec74(scale)) },
		"area":   func() { fmt.Println(area.Report(area.Default())) },
		"config": func() { printConfig() },
		"ablation-coalesce": func() {
			show(experiment.AblationCoalesce(scale, "Q"))
		},
		"ablation-structs": func() {
			show(experiment.AblationStructures(scale, "Q"))
		},
		"corun": func() { show(experiment.CoRunning(scale)) },
		// profile is intentionally not in "all": the -experiment all output
		// is gated byte-identical with observability off.
		"profile":  func() { fmt.Println(experiment.CycleAccounting(scale, *profBench, 64)) },
		"design":   func() { show(experiment.DesignChoice(scale)) },
		"fences":   func() { show(experiment.FenceSweep(scale)) },
		"lifetime": func() { show(experiment.Lifetime(scale)) },
		"numa":     func() { show(experiment.NUMA(scale)) },
		"tail":     func() { show(experiment.TailLatency(scale)) },
		"scaling":  func() { show(experiment.Scaling(scale)) },
	}

	var names []string
	if *which == "all" {
		names = []string{"config", "area", "fig1", "fig7", "fig8", "fig9a", "fig9b", "fig10", "lhwpq",
			"ablation-coalesce", "ablation-structs", "corun", "design", "fences", "lifetime", "numa", "tail", "scaling"}
	} else {
		if _, ok := run[*which]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *which)
			return 2
		}
		names = []string{*which}
	}

	rep := timingReport{
		Parallel:   pool.Workers(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      scaleName,
	}
	start := time.Now()
	failures := 0
	for _, name := range names {
		if *which == "all" {
			fmt.Printf("==== %s ====\n", name)
		}
		wall, err := runExperiment(run[name])
		et := experimentTiming{Name: name, WallNS: wall.Nanoseconds()}
		if err != nil {
			et.Error = err.Error()
			failures++
			fmt.Fprintf(os.Stderr, "asapbench: experiment %s failed: %v\n", name, err)
		}
		rep.Experiments = append(rep.Experiments, et)
	}
	rep.WallNS = time.Since(start).Nanoseconds()
	rep.TotalJobWallNS = jobLog.TotalWall().Nanoseconds()
	rep.Jobs = jobLog.Snapshot()
	if prog != nil {
		prog.Finish()
	}

	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, rep); err != nil {
			fmt.Fprintf(os.Stderr, "asapbench: %v\n", err)
			return 1
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "asapbench: %d of %d experiments failed\n", failures, len(names))
		return 1
	}
	return 0
}

// runExperiment times one experiment, converting a panic (e.g. a
// consistency-check failure propagated by the pool) into an error so the
// remaining experiments still run and the process can exit non-zero.
func runExperiment(fn func()) (wall time.Duration, err error) {
	start := time.Now()
	defer func() {
		wall = time.Since(start)
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	fn()
	return time.Since(start), nil
}

// writeJSON writes the timing artifact with a trailing newline.
func writeJSON(path string, rep timingReport) error {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// startCPUProfile begins CPU profiling into path and returns the stop
// function that also closes the file.
func startCPUProfile(path string) (func(), error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// writeHeapProfile snapshots the heap (after a GC, so the profile shows
// live objects plus accurate allocation totals) into path.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// isTerminal reports whether f is a character device, gating the default
// progress line so piped/CI output stays clean.
func isTerminal(f *os.File) bool {
	fi, err := f.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

func printConfig() {
	cfg := machine.DefaultConfig()
	fmt.Println("Table 2: system configuration")
	fmt.Printf("  Cores                 %d\n", cfg.Cores)
	fmt.Printf("  L1                    %d sets x %d ways, %d cycles\n", cfg.Caches.L1.Sets, cfg.Caches.L1.Ways, cfg.Caches.L1.Latency)
	fmt.Printf("  L2                    %d sets x %d ways, %d cycles\n", cfg.Caches.L2.Sets, cfg.Caches.L2.Ways, cfg.Caches.L2.Latency)
	fmt.Printf("  L3                    %d sets x %d ways, %d cycles\n", cfg.Caches.L3.Sets, cfg.Caches.L3.Ways, cfg.Caches.L3.Latency)
	fmt.Printf("  Memory controllers    %d x %d channels\n", cfg.Mem.Controllers, cfg.Mem.ChannelsPerMC)
	fmt.Printf("  WPQ                   %d entries/channel\n", cfg.Mem.WPQEntries)
	fmt.Printf("  LH-WPQ                %d entries/channel\n", cfg.Mem.LHWPQEntries)
	fmt.Printf("  DRAM read/write       %d/%d cycles\n", cfg.Mem.DRAMReadCycles, cfg.Mem.DRAMWriteCycles)
	fmt.Printf("  PM read/write         %d/%d cycles (battery-backed DRAM) x %d\n", cfg.Mem.PMReadCycles, cfg.Mem.PMWriteCycles, cfg.Mem.PMLatencyMult)
	fmt.Println()
}
