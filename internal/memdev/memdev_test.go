package memdev

import (
	"bytes"
	"testing"

	"asap/internal/arch"
	"asap/internal/sim"
	"asap/internal/stats"
)

func payload(b byte) []byte {
	p := make([]byte, arch.LineSize)
	for i := range p {
		p[i] = b
	}
	return p
}

func testFabric(cfg Config) (*sim.Kernel, *stats.Set, *Fabric) {
	k := sim.NewKernel()
	st := stats.New()
	return k, st, NewFabric(k, st, cfg)
}

func TestSubmitPersistAcceptAndDrain(t *testing.T) {
	cfg := DefaultConfig()
	k, st, f := testFabric(cfg)
	var acceptedAt uint64
	k.Spawn("t", func(th *sim.Thread) {
		f.SubmitPersist(&Entry{Kind: KindDPO, Dst: 0, Subject: 0, Payload: payload(0xaa)}, func(at uint64) {
			acceptedAt = at
		})
		th.Advance(10000)
	})
	k.Run()
	if acceptedAt != cfg.TransferCycles {
		t.Fatalf("accepted at %d, want transfer latency %d", acceptedAt, cfg.TransferCycles)
	}
	if got := st.Get(stats.PMWrites); got != 1 {
		t.Fatalf("PM writes = %d, want 1", got)
	}
	if !bytes.Equal(f.PM().Read(0), payload(0xaa)) {
		t.Fatal("PM image missing drained payload")
	}
}

func TestChannelInterleaving(t *testing.T) {
	_, _, f := testFabric(DefaultConfig())
	n := len(f.Channels())
	if n != 4 {
		t.Fatalf("channels = %d, want 4 (2 MC x 2)", n)
	}
	seen := map[int]bool{}
	for i := 0; i < 16; i++ {
		line := arch.LineAddr(i * arch.LineSize)
		seen[f.ChannelFor(line).ID()] = true
	}
	if len(seen) != n {
		t.Fatalf("interleaving touched %d channels, want %d", len(seen), n)
	}
}

func TestHomeChannelByLocalRID(t *testing.T) {
	_, _, f := testFabric(DefaultConfig())
	r1 := arch.MakeRID(0, 1)
	r5 := arch.MakeRID(3, 5)
	if f.HomeChannel(r1).ID() != 1%4 {
		t.Fatalf("home of %v = %d", r1, f.HomeChannel(r1).ID())
	}
	if f.HomeChannel(r5).ID() != 5%4 {
		t.Fatalf("home of %v = %d", r5, f.HomeChannel(r5).ID())
	}
}

func TestWPQBackpressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Controllers, cfg.ChannelsPerMC = 1, 1
	cfg.WPQEntries = 2
	cfg.PMWriteCycles = 1000
	k, st, f := testFabric(cfg)
	accepts := 0
	k.Spawn("t", func(th *sim.Thread) {
		for i := 0; i < 5; i++ {
			f.SubmitPersist(&Entry{Kind: KindDPO, Dst: arch.LineAddr(i * 64), Payload: payload(byte(i))}, func(uint64) { accepts++ })
		}
		th.Advance(100000)
	})
	k.Run()
	if accepts != 5 {
		t.Fatalf("accepts = %d, want all 5 eventually", accepts)
	}
	if st.Get(stats.WPQStalls) == 0 {
		t.Fatal("expected WPQ stalls with capacity 2 and 5 writes")
	}
	if st.Get(stats.PMWrites) != 5 {
		t.Fatalf("PM writes = %d, want 5", st.Get(stats.PMWrites))
	}
}

func TestArrivalsAcceptedFIFO(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Controllers, cfg.ChannelsPerMC = 1, 1
	cfg.WPQEntries = 1
	cfg.PMWriteCycles = 100
	k, _, f := testFabric(cfg)
	var order []int
	k.Spawn("t", func(th *sim.Thread) {
		for i := 0; i < 4; i++ {
			i := i
			f.SubmitPersist(&Entry{Kind: KindDPO, Dst: arch.LineAddr(i * 64), Payload: payload(byte(i))}, func(uint64) {
				order = append(order, i)
			})
		}
		th.Advance(10000)
	})
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("accept order = %v, want FIFO", order)
		}
	}
}

func TestLPODropping(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Controllers, cfg.ChannelsPerMC = 1, 1
	cfg.PMWriteCycles = 10000 // keep entries queued
	k, st, f := testFabric(cfg)
	r := arch.MakeRID(0, 1)
	other := arch.MakeRID(0, 2)
	k.Spawn("t", func(th *sim.Thread) {
		f.SubmitPersist(&Entry{Kind: KindLPO, RID: r, Dst: 0, Subject: 64, Payload: payload(1)}, nil)
		f.SubmitPersist(&Entry{Kind: KindLogHeader, RID: r, Dst: 128, Payload: payload(2)}, nil)
		f.SubmitPersist(&Entry{Kind: KindLPO, RID: other, Dst: 192, Subject: 64, Payload: payload(3)}, nil)
		f.SubmitPersist(&Entry{Kind: KindDPO, RID: r, Dst: 256, Subject: 256, Payload: payload(4)}, nil)
		th.Advance(cfg.TransferCycles + 5)
		// The region's first LPO is scheduled at the device but still
		// WPQ-resident (§5.1: droppable until written), so both it and
		// the header drop; the other region's LPO and the DPO stay.
		dropped := f.DropRegionOps(r)
		if dropped != 2 {
			t.Errorf("dropped = %d, want 2 (in-flight LPO + queued header)", dropped)
		}
		th.Advance(100000)
	})
	k.Run()
	if st.Get(stats.LPOsDropped) != 2 {
		t.Fatalf("LPOsDropped = %d, want 2", st.Get(stats.LPOsDropped))
	}
	// 4 submitted, 2 dropped -> 2 PM writes.
	if st.Get(stats.PMWrites) != 2 {
		t.Fatalf("PM writes = %d, want 2", st.Get(stats.PMWrites))
	}
}

func TestDPODropping(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Controllers, cfg.ChannelsPerMC = 1, 1
	cfg.PMWriteCycles = 10000
	k, st, f := testFabric(cfg)
	line := arch.LineAddr(64)
	k.Spawn("t", func(th *sim.Thread) {
		f.SubmitPersist(&Entry{Kind: KindDPO, Dst: 0, Subject: 0, Payload: payload(9)}, nil) // drains first
		f.SubmitPersist(&Entry{Kind: KindDPO, Dst: line, Subject: line, Payload: payload(1)}, nil)
		th.Advance(cfg.TransferCycles + 5)
		if !f.DropDPOFor(line) {
			t.Error("expected queued DPO to drop")
		}
		if f.DropDPOFor(line) {
			t.Error("second drop should find nothing")
		}
		th.Advance(100000)
	})
	k.Run()
	if st.Get(stats.DPOsDropped) != 1 {
		t.Fatalf("DPOsDropped = %d, want 1", st.Get(stats.DPOsDropped))
	}
}

func TestFlushToImageOnCrash(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Controllers, cfg.ChannelsPerMC = 1, 1
	cfg.PMWriteCycles = 100000 // nothing drains before crash
	k, st, f := testFabric(cfg)
	k.Spawn("t", func(th *sim.Thread) {
		f.SubmitPersist(&Entry{Kind: KindDPO, Dst: 0, Payload: payload(7)}, nil)
		f.SubmitPersist(&Entry{Kind: KindLPO, Dst: 64, Subject: 0, Payload: payload(8)}, nil)
		th.Advance(cfg.TransferCycles + 10)
		// Crash now: accepted entries must be flushed by ADR.
		img := f.FlushAll()
		if !bytes.Equal(img.Read(0), payload(7)) || !bytes.Equal(img.Read(64), payload(8)) {
			t.Error("flush did not persist accepted WPQ entries")
		}
		th.Kernel().Halt() // power failure: nothing drains after the crash
	})
	k.Run()
	if st.Get(stats.PMWrites) != 0 {
		t.Fatalf("flush must not count as drain traffic, got %d", st.Get(stats.PMWrites))
	}
}

func TestUnacceptedArrivalsLostOnCrash(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Controllers, cfg.ChannelsPerMC = 1, 1
	cfg.WPQEntries = 1
	cfg.PMWriteCycles = 100000
	k, _, f := testFabric(cfg)
	k.Spawn("t", func(th *sim.Thread) {
		f.SubmitPersist(&Entry{Kind: KindDPO, Dst: 0, Payload: payload(1)}, nil)
		f.SubmitPersist(&Entry{Kind: KindDPO, Dst: 64, Payload: payload(2)}, nil) // waits for space
		th.Advance(cfg.TransferCycles + 10)
		img := f.FlushAll()
		if !img.Has(0) {
			t.Error("accepted entry must survive crash")
		}
		if img.Has(64) {
			t.Error("arrival-queue entry must NOT survive crash (never accepted)")
		}
	})
	k.Run()
}

func TestLHWPQLifecycle(t *testing.T) {
	q := newLHWPQ(2)
	r1 := arch.MakeRID(0, 1)
	r2 := arch.MakeRID(0, 2)
	r3 := arch.MakeRID(0, 3)
	if !q.HasSpaceFor(r1) {
		t.Fatal("empty queue must have space")
	}
	h := q.Open(r1, 1024)
	for i := 0; i < RecordEntries; i++ {
		h.DataLines = append(h.DataLines, arch.LineAddr(i*64))
		h.LogLines = append(h.LogLines, arch.LineAddr(4096+i*64))
	}
	if !h.Full() {
		t.Fatal("record with 7 entries must be full")
	}
	q.Open(r2, 2048)
	if q.HasSpaceFor(r3) {
		t.Fatal("queue of capacity 2 with 2 regions must be full for a third")
	}
	if !q.HasSpaceFor(r1) {
		t.Fatal("a region already holding an entry always has space")
	}
	closed := q.BeginClose(r1)
	if closed == nil || closed.HeaderAddr != 1024 {
		t.Fatal("BeginClose must return the header")
	}
	// A closing record still occupies its slot until the header write is
	// accepted by the WPQ (the entry never leaves the persistence domain).
	if q.HasSpaceFor(r3) {
		t.Fatal("closing record must still hold its slot")
	}
	if len(q.Snapshot()) != 2 {
		t.Fatal("closing record must appear in crash snapshots")
	}
	q.FinishClose(closed.HeaderAddr)
	if !q.HasSpaceFor(r3) {
		t.Fatal("finishing the close frees the slot")
	}
	q.Release(r2)
	if q.Len() != 0 {
		t.Fatalf("Len = %d after release, want 0", q.Len())
	}
}

func TestLHWPQSnapshotIsDeepCopy(t *testing.T) {
	q := newLHWPQ(4)
	r := arch.MakeRID(1, 1)
	h := q.Open(r, 512)
	h.DataLines = append(h.DataLines, 64)
	h.LogLines = append(h.LogLines, 4096)
	snap := q.Snapshot()
	h.DataLines[0] = 9999
	if snap[0].DataLines[0] != 64 {
		t.Fatal("snapshot must not alias live header")
	}
}

func TestReadLatencyScalesWithPMMultiplier(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PMLatencyMult = 4
	_, st, f := testFabric(cfg)
	pm := f.ReadLatency(0, true)
	dram := f.ReadLatency(0, false)
	if pm != cfg.TransferCycles+4*cfg.PMReadCycles {
		t.Fatalf("PM read latency = %d", pm)
	}
	if dram != cfg.TransferCycles+cfg.DRAMReadCycles {
		t.Fatalf("DRAM read latency = %d", dram)
	}
	if st.Get(stats.PMReads) != 1 || st.Get(stats.DRAMReads) != 1 {
		t.Fatal("read counters not incremented")
	}
}

func TestQuiesced(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PMWriteCycles = 50
	k, _, f := testFabric(cfg)
	k.Spawn("t", func(th *sim.Thread) {
		if !f.Quiesced() {
			t.Error("fresh fabric must be quiesced")
		}
		f.SubmitPersist(&Entry{Kind: KindDPO, Dst: 0, Payload: payload(1)}, nil)
		th.Advance(cfg.TransferCycles + 1)
		if f.Quiesced() {
			t.Error("fabric with queued work must not be quiesced")
		}
		th.Advance(10000)
		if !f.Quiesced() {
			t.Error("fabric must quiesce after drain")
		}
	})
	k.Run()
}

func TestImageCloneIndependent(t *testing.T) {
	im := NewImage()
	im.Write(0, payload(1))
	cl := im.Clone()
	im.Write(0, payload(2))
	if !bytes.Equal(cl.Read(0), payload(1)) {
		t.Fatal("clone mutated by original write")
	}
	if cl.Len() != 1 {
		t.Fatalf("clone Len = %d", cl.Len())
	}
}

func TestSupersedeDPO(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Controllers, cfg.ChannelsPerMC = 1, 1
	cfg.PMWriteCycles = 10000
	k, st, f := testFabric(cfg)
	line := arch.LineAddr(64)
	k.Spawn("t", func(th *sim.Thread) {
		f.SubmitPersist(&Entry{Kind: KindDPO, Dst: 0, Payload: payload(0)}, nil) // occupies drain
		f.SubmitPersist(&Entry{Kind: KindDPO, Dst: line, Payload: payload(1)}, nil)
		f.SubmitPersist(&Entry{Kind: KindDPO, Dst: line, Payload: payload(2)}, nil)
		th.Advance(cfg.TransferCycles + 5)
		if n := f.SupersedeDPO(line); n != 2 {
			t.Errorf("superseded %d, want 2", n)
		}
		th.Advance(100000)
	})
	k.Run()
	if st.Get(stats.DPOsDropped) != 2 {
		t.Fatalf("DPOsDropped = %d", st.Get(stats.DPOsDropped))
	}
}

func TestNUMARemotePenalty(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NUMARemotePenalty = 500
	_, _, f := testFabric(cfg)
	// Channels 0,1 local; 2,3 remote (4 channels total).
	localLine := arch.LineAddr(0)             // channel 0
	remoteLine := arch.LineAddr(2 * 64)       // channel 2
	local := f.ReadLatency(localLine, true)   // transfer + PM read
	remote := f.ReadLatency(remoteLine, true) // + penalty
	if remote != local+500 {
		t.Fatalf("remote read = %d, local = %d, want +500", remote, local)
	}
}

func TestNUMAPersistPenalty(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NUMARemotePenalty = 500
	k, _, f := testFabric(cfg)
	var localAt, remoteAt uint64
	k.Spawn("t", func(th *sim.Thread) {
		f.SubmitPersist(&Entry{Kind: KindDPO, Dst: 0, Payload: payload(1)}, func(at uint64) { localAt = at })
		f.SubmitPersist(&Entry{Kind: KindDPO, Dst: 2 * 64, Payload: payload(2)}, func(at uint64) { remoteAt = at })
		th.Advance(100000)
	})
	k.Run()
	if remoteAt != localAt+500 {
		t.Fatalf("remote accept at %d, local at %d, want +500", remoteAt, localAt)
	}
}

func TestNUMAOffByDefault(t *testing.T) {
	_, _, f := testFabric(DefaultConfig())
	if f.ReadLatency(0, true) != f.ReadLatency(2*64, true) {
		t.Fatal("channels must be symmetric without NUMA penalty")
	}
}
