package core

import (
	"fmt"
	"testing"

	"asap/internal/arch"
	"asap/internal/machine"
	"asap/internal/sim"
	"asap/internal/stats"
)

// TestRuntimeInvariants drives a dependence-heavy multi-threaded run and
// samples the hardware state every few hundred cycles, checking the
// DESIGN.md §6 invariants that must hold at every instant:
//
//  4. a line with LockBit set is never evicted from the hierarchy,
//  5. the Dependence Lists contain exactly the uncommitted regions,
//  1. no region's Dep slot ever names a committed region (stale deps
//     would stall commits forever; cleared deps must stay cleared).
func TestRuntimeInvariants(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Cores = 4
	cfg.Mem.Controllers, cfg.Mem.ChannelsPerMC = 1, 2
	cfg.Mem.WPQEntries = 8
	cfg.Mem.PMWriteCycles = 800
	m := machine.New(cfg)
	e := NewEngine(m, DefaultOptions())

	shared := m.Heap.Alloc(64*4, true)
	var mu sim.Mutex
	var violations []string

	check := func() {
		// Invariant 4: locked lines are pinned in the cache.
		for _, r := range e.regions {
			if r.cl == nil {
				continue
			}
			for _, s := range r.cl.Slots {
				meta := m.Caches.Table().Peek(s.Line)
				if meta != nil && meta.Locked() && !m.Caches.Present(s.Line) {
					violations = append(violations, fmt.Sprintf("locked line evicted: %#x", uint64(s.Line)))
				}
			}
		}
		// Invariant 5: dep lists <-> uncommitted regions, exactly.
		listed := map[arch.RID]bool{}
		for _, dl := range e.dep {
			for _, entry := range dl.Entries() {
				listed[entry.RID] = true
				if _, ok := e.regions[entry.RID]; !ok {
					violations = append(violations, "dep entry for unknown region "+entry.RID.String())
				}
				// Invariant 1: named dependencies are live regions.
				for d := range entry.Deps {
					if e.depOf(d) == nil {
						violations = append(violations, "stale dep on committed "+d.String())
					}
				}
			}
		}
		for rid := range e.regions {
			if !listed[rid] {
				violations = append(violations, "uncommitted region missing from dep lists: "+rid.String())
			}
		}
	}

	// Sample the invariants periodically through the whole run.
	var arm func(at uint64)
	arm = func(at uint64) {
		m.K.Schedule(at, func() {
			check()
			if at < 400_000 && !m.K.Halted() {
				arm(at + 300)
			}
		})
	}
	arm(300)

	for w := 0; w < 4; w++ {
		m.K.Spawn("w", func(th *sim.Thread) {
			e.InitThread(th)
			for i := 0; i < 60; i++ {
				mu.Lock(th)
				e.Begin(th)
				for j := uint64(0); j < 4; j++ {
					v := loadU64(e, th, shared+64*j)
					storeU64(e, th, shared+64*j, v+1)
				}
				e.End(th)
				mu.Unlock(th)
				th.Advance(30)
			}
			e.DrainBarrier(th)
		})
	}
	m.K.Run()

	if len(violations) > 0 {
		t.Fatalf("%d invariant violations, first: %s", len(violations), violations[0])
	}
	if m.St.Get(stats.RegionsCommitted) != 240 {
		t.Fatalf("committed = %d, want 240", m.St.Get(stats.RegionsCommitted))
	}
	if m.St.Get(stats.DepEdges) == 0 {
		t.Fatal("run produced no dependencies; invariant test too weak")
	}
}

// TestLogNotFreedBeforeDepsCommit pins invariant 1 directly: with a
// consumer region stuck behind a slow producer, the consumer's log space
// must remain allocated until the producer commits.
func TestLogNotFreedBeforeDepsCommit(t *testing.T) {
	m, e := testRig(DefaultOptions(), func(c *machine.Config) {
		c.Mem.Controllers, c.Mem.ChannelsPerMC = 1, 1
		c.Mem.WPQEntries = 1
		c.Mem.PMWriteCycles = 20_000
	})
	x := m.Heap.Alloc(64, true)
	var mu sim.Mutex
	var consumerLogHead func() uint64
	var sampled []uint64

	producer := func(th *sim.Thread) {
		mu.Lock(th)
		e.Begin(th)
		storeU64(e, th, x, 1)
		e.End(th)
		mu.Unlock(th)
	}
	consumer := func(th *sim.Thread) {
		th.Advance(500)
		mu.Lock(th)
		e.Begin(th)
		storeU64(e, th, x, 2)
		e.End(th)
		mu.Unlock(th)
		ts := e.threads[th.ID()]
		consumerLogHead = ts.log.Head
		// Sample the consumer's log head while the producer is still
		// uncommitted: it must not advance (log not freed).
		for i := 0; i < 5; i++ {
			prod := e.regions[arch.MakeRID(0, 1)]
			if prod != nil && !prod.committed {
				sampled = append(sampled, consumerLogHead())
			}
			th.Advance(2_000)
		}
	}
	run(m, e, producer, consumer)

	for _, h := range sampled {
		if h != 0 {
			t.Fatalf("consumer log freed (head=%d) while its dependence was uncommitted", h)
		}
	}
	if len(sampled) == 0 {
		t.Skip("producer committed too fast to observe the window")
	}
	if consumerLogHead() == 0 {
		t.Fatal("consumer log never freed even after everything committed")
	}
}
