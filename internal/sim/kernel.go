// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel multiplexes simulated threads (each backed by a goroutine, but
// with exactly one ever running at a time) over a shared virtual clock, and
// fires scheduled hardware events at exact cycles. Scheduling is
// lowest-virtual-clock-first with a monotone sequence number as tiebreaker,
// so a simulation is fully reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
)

// Kernel is the simulation scheduler. The zero value is not usable; create
// one with NewKernel.
type Kernel struct {
	threads []*Thread
	events  eventQueue
	now     uint64
	seq     uint64
	parked  chan *Thread
	running bool
	halted  bool
	obs     Observer
}

// Halt makes Run return at the next scheduling decision without running
// further threads or events. It models a power failure: whatever state the
// hardware holds at this instant is what a crash snapshot sees. Halt is
// called from thread or event context.
func (k *Kernel) Halt() { k.halted = true }

// Halted reports whether Halt was called.
func (k *Kernel) Halted() bool { return k.halted }

// NewKernel returns an empty kernel at cycle 0.
func NewKernel() *Kernel {
	return &Kernel{parked: make(chan *Thread)}
}

// Now returns the kernel's current virtual time in cycles: the time of the
// most recent event fired or thread step begun.
func (k *Kernel) Now() uint64 { return k.now }

// Spawn registers a simulated thread that will execute fn when Run is
// called. The thread's virtual clock starts at the kernel's current time.
// Spawn may also be called from inside a running thread to fork workers.
func (k *Kernel) Spawn(name string, fn func(t *Thread)) *Thread {
	t := &Thread{
		k:      k,
		id:     len(k.threads),
		name:   name,
		now:    k.now,
		state:  stateRunnable,
		resume: make(chan struct{}),
	}
	k.threads = append(k.threads, t)
	if k.obs != nil {
		k.obs.ThreadStart(t)
	}
	go func() {
		<-t.resume
		fn(t)
		t.state = stateDone
		k.parked <- t
	}()
	return t
}

// Schedule registers fn to run at absolute cycle at. Events scheduled for a
// time earlier than the kernel clock fire as soon as possible. fn runs in
// kernel context: no simulated thread is executing concurrently, so it may
// mutate shared hardware state freely.
func (k *Kernel) Schedule(at uint64, fn func()) {
	k.seq++
	heap.Push(&k.events, &event{at: at, seq: k.seq, fn: fn})
}

// ScheduleAfter registers fn to run delay cycles from now.
func (k *Kernel) ScheduleAfter(delay uint64, fn func()) {
	k.Schedule(k.now+delay, fn)
}

// Run drives the simulation until every spawned thread has finished and the
// event queue is drained. It panics with a diagnostic if all remaining
// threads are blocked and no event can unblock them (simulated deadlock).
func (k *Kernel) Run() {
	if k.running {
		panic("sim: Run called re-entrantly")
	}
	k.running = true
	defer func() { k.running = false }()

	for {
		if k.halted {
			return
		}
		t := k.nextRunnable()
		ev := k.peekEvent()

		switch {
		case ev != nil && (t == nil || ev.at <= k.effectiveTime(t)):
			heap.Pop(&k.events)
			if ev.at > k.now {
				k.now = ev.at
				if k.obs != nil {
					k.obs.Tick(k.now)
				}
			}
			ev.fn()
		case t != nil:
			if t.state == stateBlocked {
				// Re-checked by nextRunnable; claim the wakeup now so
				// no sibling waiter can also slip past its predicate.
				t.pred = nil
				t.state = stateRunnable
			}
			if k.now > t.now {
				delta := k.now - t.now
				t.now = k.now
				if k.obs != nil {
					k.obs.ClockAdvance(t, delta)
				}
			}
			if t.now > k.now {
				k.now = t.now
				if k.obs != nil {
					k.obs.Tick(k.now)
				}
			}
			t.resume <- struct{}{}
			<-k.parked
		default:
			if k.allDone() {
				return
			}
			panic("sim: deadlock: " + k.blockedReport())
		}
	}
}

// effectiveTime is the earliest cycle at which t could execute its next
// step: its own clock, or the kernel clock if it is blocked and must wait
// for the unblocking instant.
func (k *Kernel) effectiveTime(t *Thread) uint64 {
	if t.state == stateBlocked && k.now > t.now {
		return k.now
	}
	return t.now
}

// nextRunnable returns the thread that should run next: among runnable
// threads and blocked threads whose predicate currently holds, the one with
// the smallest effective clock, breaking ties by spawn order. Predicates are
// evaluated here, at scheduling time, so exactly one waiter can win a
// just-freed resource.
func (k *Kernel) nextRunnable() *Thread {
	var best *Thread
	for _, t := range k.threads {
		switch t.state {
		case stateRunnable:
		case stateBlocked:
			if !t.pred() {
				continue
			}
		default:
			continue
		}
		if best == nil || k.effectiveTime(t) < k.effectiveTime(best) {
			best = t
		}
	}
	return best
}

func (k *Kernel) peekEvent() *event {
	if len(k.events) == 0 {
		return nil
	}
	return k.events[0]
}

func (k *Kernel) allDone() bool {
	for _, t := range k.threads {
		if t.state != stateDone {
			return false
		}
	}
	return true
}

func (k *Kernel) blockedReport() string {
	var names []string
	for _, t := range k.threads {
		if t.state == stateBlocked {
			names = append(names, fmt.Sprintf("%s@%d", t.name, t.now))
		}
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
