package sim

// This file preserves the pre-optimization scheduler — goroutine handoff
// on every yield, O(threads) linear rescan per decision, heap allocation
// per Schedule — as a test-only reference implementation. The equivalence
// property test in equivalence_test.go replays identical randomized
// workloads on this kernel and the optimized one and requires bit-for-bit
// identical step traces: same dispatch order, same cycles, same kernel
// clock at every step. Any divergence means the fast path changed a
// scheduling decision, which is the one thing it must never do.

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
)

type refEvent struct {
	at  uint64
	seq uint64
	fn  func()
}

type refEventQueue []*refEvent

func (q refEventQueue) Len() int { return len(q) }

func (q refEventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q refEventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *refEventQueue) Push(x any) { *q = append(*q, x.(*refEvent)) }

func (q *refEventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// refKernel is the seed kernel, verbatim modulo renames.
type refKernel struct {
	threads []*refThread
	events  refEventQueue
	now     uint64
	seq     uint64
	parked  chan *refThread
	halted  bool
}

type refThread struct {
	k      *refKernel
	id     int
	name   string
	now    uint64
	state  threadState
	pred   func() bool
	resume chan struct{}
}

func newRefKernel() *refKernel {
	return &refKernel{parked: make(chan *refThread)}
}

func (k *refKernel) Halt() { k.halted = true }

func (k *refKernel) Now() uint64 { return k.now }

func (k *refKernel) Spawn(name string, fn func(t *refThread)) *refThread {
	t := &refThread{
		k:      k,
		id:     len(k.threads),
		name:   name,
		now:    k.now,
		state:  stateRunnable,
		resume: make(chan struct{}),
	}
	k.threads = append(k.threads, t)
	go func() {
		<-t.resume
		fn(t)
		t.state = stateDone
		k.parked <- t
	}()
	return t
}

func (k *refKernel) Schedule(at uint64, fn func()) {
	k.seq++
	heap.Push(&k.events, &refEvent{at: at, seq: k.seq, fn: fn})
}

func (k *refKernel) ScheduleAfter(delay uint64, fn func()) {
	k.Schedule(k.now+delay, fn)
}

func (k *refKernel) Run() {
	for {
		if k.halted {
			return
		}
		t := k.nextRunnable()
		ev := k.peekEvent()

		switch {
		case ev != nil && (t == nil || ev.at <= k.effectiveTime(t)):
			heap.Pop(&k.events)
			if ev.at > k.now {
				k.now = ev.at
			}
			ev.fn()
		case t != nil:
			if t.state == stateBlocked {
				t.pred = nil
				t.state = stateRunnable
			}
			if k.now > t.now {
				t.now = k.now
			}
			if t.now > k.now {
				k.now = t.now
			}
			t.resume <- struct{}{}
			<-k.parked
		default:
			if k.allDone() {
				return
			}
			panic("refsim: deadlock: " + k.blockedReport())
		}
	}
}

func (k *refKernel) effectiveTime(t *refThread) uint64 {
	if t.state == stateBlocked && k.now > t.now {
		return k.now
	}
	return t.now
}

func (k *refKernel) nextRunnable() *refThread {
	var best *refThread
	for _, t := range k.threads {
		switch t.state {
		case stateRunnable:
		case stateBlocked:
			if !t.pred() {
				continue
			}
		default:
			continue
		}
		if best == nil || k.effectiveTime(t) < k.effectiveTime(best) {
			best = t
		}
	}
	return best
}

func (k *refKernel) peekEvent() *refEvent {
	if len(k.events) == 0 {
		return nil
	}
	return k.events[0]
}

func (k *refKernel) allDone() bool {
	for _, t := range k.threads {
		if t.state != stateDone {
			return false
		}
	}
	return true
}

func (k *refKernel) blockedReport() string {
	var names []string
	for _, t := range k.threads {
		if t.state == stateBlocked {
			names = append(names, fmt.Sprintf("%s@%d", t.name, t.now))
		}
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

func (t *refThread) Advance(cycles uint64) {
	t.now += cycles
	t.yield()
}

func (t *refThread) Yield() { t.yield() }

func (t *refThread) WaitUntil(pred func() bool) {
	if pred() {
		return
	}
	t.pred = pred
	t.state = stateBlocked
	t.yield()
}

func (t *refThread) SleepUntil(at uint64) {
	if t.now >= at {
		return
	}
	t.k.Schedule(at, func() {})
	t.WaitUntil(func() bool { return t.k.now >= at })
}

func (t *refThread) yield() {
	t.k.parked <- t
	<-t.resume
}
