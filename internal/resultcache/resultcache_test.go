package resultcache

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestKeyOrderInsensitive: two keys with the same fields added in
// different orders canonicalize — and therefore hash — identically.
func TestKeyOrderInsensitive(t *testing.T) {
	a := NewKey().Field("scheme", "ASAP").Fieldf("pmmult", "%d", 4).Field("bench", "Q")
	b := NewKey().Field("bench", "Q").Field("scheme", "ASAP").Fieldf("pmmult", "%d", 4)
	if a.Canonical() != b.Canonical() {
		t.Fatalf("canonical forms differ:\n%q\n%q", a.Canonical(), b.Canonical())
	}
	if a.Sum() != b.Sum() {
		t.Fatalf("digests differ: %s vs %s", a.Sum(), b.Sum())
	}
}

// TestKeyFieldsChangeDigest: every field that should invalidate the
// cache — seed, code version, any config axis — actually does.
func TestKeyFieldsChangeDigest(t *testing.T) {
	base := func() *Key {
		return NewKey().Field("scheme", "ASAP").Field("seed", "42").Field("codeversion", "abc123")
	}
	ref := base().Sum()
	if got := base().Sum(); got != ref {
		t.Fatalf("same key hashed differently: %s vs %s", got, ref)
	}
	variants := map[string]*Key{
		"seed":        base().Field("seed2", "").Fieldf("x", "%d", 0),
		"seed change": NewKey().Field("scheme", "ASAP").Field("seed", "43").Field("codeversion", "abc123"),
		"code change": NewKey().Field("scheme", "ASAP").Field("seed", "42").Field("codeversion", "def456"),
		"new axis":    base().Field("valuebytes", "64"),
	}
	for name, k := range variants {
		if k.Sum() == ref {
			t.Errorf("%s: expected a different digest", name)
		}
	}
}

// TestKeyEscaping: a value containing newlines or separator-looking text
// cannot collide with a differently-structured key.
func TestKeyEscaping(t *testing.T) {
	a := NewKey().Field("a", "1\nb=2")
	b := NewKey().Field("a", "1").Field("b", "2")
	if a.Sum() == b.Sum() {
		t.Fatal("newline in value collided with a separate field")
	}
}

// TestCodeVersionEnvOverride: the env override wins and enables caching
// even where buildinfo would refuse (go test binaries are unstamped).
func TestCodeVersionEnvOverride(t *testing.T) {
	t.Setenv(CodeVersionEnv, "test-override-1")
	v, ok := CodeVersion()
	if !ok || v != "test-override-1" {
		t.Fatalf("CodeVersion() = %q, %v; want override", v, ok)
	}
}

func TestStoreRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := NewKey().Field("k", "v").Sum()
	if _, ok := s.Get(key); ok {
		t.Fatal("hit on empty store")
	}
	payload := []byte(`{"cycles":12345}`)
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want %q", got, ok, payload)
	}
	hits, misses, puts := s.Stats()
	if hits != 1 || misses != 1 || puts != 1 {
		t.Fatalf("stats = %d/%d/%d; want 1/1/1", hits, misses, puts)
	}
}

// TestStoreReopen: entries survive reopening (the CI cache restore path).
func TestStoreReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := NewKey().Field("k", "v").Sum()
	if err := s.Put(key, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.Get(key); !ok || string(got) != "payload" {
		t.Fatalf("reopened Get = %q, %v", got, ok)
	}
}

// TestStoreCorruptionDetected: truncation, payload bit flips, header bit
// flips, and wrong versions are all misses — and the bad entry is
// removed so the recomputed result can land cleanly.
func TestStoreCorruptionDetected(t *testing.T) {
	corruptions := map[string]func([]byte) []byte{
		"truncated":    func(b []byte) []byte { return b[:len(b)-3] },
		"header-only":  func(b []byte) []byte { return b[:8] },
		"payload-flip": func(b []byte) []byte { b[len(b)-1] ^= 0x40; return b },
		"crc-flip":     func(b []byte) []byte { b[9] ^= 0x01; return b },
		"bad-magic":    func(b []byte) []byte { b[0] = 'X'; return b },
		"bad-version":  func(b []byte) []byte { b[4] = 99; return b },
		"empty":        func(b []byte) []byte { return nil },
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			s, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			key := NewKey().Field("case", name).Sum()
			if err := s.Put(key, []byte("the true payload")); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(s.Dir(), "cells", key[:2], key[2:])
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(key); ok {
				t.Fatalf("corrupt entry trusted: %q", got)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("corrupt entry not removed (stat err %v)", err)
			}
			// The recompute path must be able to repopulate the slot.
			if err := s.Put(key, []byte("recomputed")); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(key); !ok || string(got) != "recomputed" {
				t.Fatalf("repopulated Get = %q, %v", got, ok)
			}
		})
	}
}

// TestOpenSweepsOrphanTmpFiles: .tmp-* files stranded by kill -9
// mid-Put are removed on the next Open; real entries survive.
func TestOpenSweepsOrphanTmpFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := NewKey().Field("k", "v").Sum()
	if err := s.Put(key, []byte("keep me")); err != nil {
		t.Fatal(err)
	}
	orphans := []string{
		filepath.Join(dir, "cells", ".tmp-123"),
		filepath.Join(dir, "cells", key[:2], ".tmp-456"),
	}
	for _, p := range orphans {
		if err := os.WriteFile(p, []byte("half-written"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range orphans {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("orphan %s survived reopen (stat err %v)", p, err)
		}
	}
	if got, ok := s2.Get(key); !ok || string(got) != "keep me" {
		t.Fatalf("real entry lost in sweep: %q, %v", got, ok)
	}
}

// TestStoreRejectsMalformedKeys: a key that is not a hex sha256 cannot
// address the filesystem (no path traversal through key strings).
func TestStoreRejectsMalformedKeys(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "abc", "../../../../etc/passwd", string(make([]byte, 64))} {
		if err := s.Put(key, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted a malformed key", key)
		}
		if _, ok := s.Get(key); ok {
			t.Errorf("Get(%q) hit on a malformed key", key)
		}
	}
}

// TestStoreBytesAndShed: the footprint counter tracks committed
// entries, survives reopen, and Shed empties the cache, returning the
// bytes it freed — the degraded-mode contract.
func TestStoreBytesAndShed(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Bytes() != 0 {
		t.Fatalf("fresh cache reports %d bytes", s.Bytes())
	}
	keys := []string{
		NewKey().Field("k", "1").Sum(),
		NewKey().Field("k", "2").Sum(),
		NewKey().Field("k", "3").Sum(),
	}
	var want int64
	for i, k := range keys {
		payload := bytes.Repeat([]byte{byte('a' + i)}, 100*(i+1))
		if err := s.Put(k, payload); err != nil {
			t.Fatal(err)
		}
		want += int64(headerLen + len(payload))
	}
	if s.Bytes() != want {
		t.Fatalf("after 3 puts: %d bytes, want %d", s.Bytes(), want)
	}
	// Overwrite put: footprint reflects the new size, not the sum.
	if err := s.Put(keys[0], []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	want += int64(headerLen+4) - int64(headerLen+100)
	if s.Bytes() != want {
		t.Fatalf("after overwrite: %d bytes, want %d", s.Bytes(), want)
	}
	// Reopen re-derives the same footprint by walking.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Bytes() != want {
		t.Fatalf("after reopen: %d bytes, want %d", s2.Bytes(), want)
	}

	freed, err := s2.Shed()
	if err != nil {
		t.Fatalf("shed: %v", err)
	}
	if freed != want {
		t.Fatalf("shed freed %d bytes, want %d", freed, want)
	}
	if s2.Bytes() != 0 {
		t.Fatalf("cache reports %d bytes after shed", s2.Bytes())
	}
	for _, k := range keys {
		if _, ok := s2.Get(k); ok {
			t.Fatalf("key %s survived shed", k)
		}
	}
	// The cache keeps working after a shed: recomputed entries land.
	if err := s2.Put(keys[0], []byte("recomputed")); err != nil {
		t.Fatalf("put after shed: %v", err)
	}
	if got, ok := s2.Get(keys[0]); !ok || string(got) != "recomputed" {
		t.Fatalf("get after shed: %q, %v", got, ok)
	}
}

// TestCorruptEntryRemovalAdjustsBytes: a corrupt cell is removed on Get
// and its size leaves the footprint.
func TestCorruptEntryRemovalAdjustsBytes(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := NewKey().Field("k", "v").Sum()
	if err := s.Put(key, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "cells", key[:2], key[2:])
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if s.Bytes() != 0 {
		t.Fatalf("footprint %d after corrupt-entry removal, want 0", s.Bytes())
	}
}
