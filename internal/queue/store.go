package queue

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"asap/internal/metrics"
	"asap/internal/resultcache"
)

// Store is a content-addressed artifact store: objects live at
// objects/<aa>/<rest-of-sha256>, written via temp-file + rename so a
// crash can never leave a half-written object under its final name.
// Puts are idempotent — re-running a redelivered job that produced the
// same bytes lands on the same address, which is what makes at-least-once
// execution look exactly-once to every reader.
type Store struct {
	dir string

	// Service instruments, attached by the daemon; nil-safe.
	metPuts     *metrics.Counter
	metDedup    *metrics.Counter
	metPutBytes *metrics.Counter
}

// setMetrics attaches put/dedup/byte counters.
func (s *Store) setMetrics(puts, dedup, bytes *metrics.Counter) {
	s.metPuts, s.metDedup, s.metPutBytes = puts, dedup, bytes
}

// ErrBadHash rejects malformed or path-escaping artifact addresses.
var ErrBadHash = errors.New("queue: malformed artifact hash")

// OpenStore creates (if needed) and opens the object store rooted at
// dir. Temp files orphaned by a kill -9 mid-Put (written but never
// renamed into place) are swept on open — they are invisible to every
// reader and would otherwise accumulate forever.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, err
	}
	if err := resultcache.SweepOrphans(filepath.Join(dir, "objects")); err != nil {
		return nil, err
	}
	return &Store{dir: dir}, nil
}

// HashBytes returns the store address of b: "sha256-" + hex digest.
func HashBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return "sha256-" + hex.EncodeToString(sum[:])
}

// parseHash validates an address and returns its hex digest.
func parseHash(hash string) (string, error) {
	hexpart, ok := strings.CutPrefix(hash, "sha256-")
	if !ok || len(hexpart) != 64 {
		return "", fmt.Errorf("%w: %q", ErrBadHash, hash)
	}
	if _, err := hex.DecodeString(hexpart); err != nil {
		return "", fmt.Errorf("%w: %q", ErrBadHash, hash)
	}
	return hexpart, nil
}

// objectPath maps a validated digest to its on-disk path.
func (s *Store) objectPath(hexpart string) string {
	return filepath.Join(s.dir, "objects", hexpart[:2], hexpart[2:])
}

// Put stores b and returns its address. Existing objects are trusted by
// name (content addressing makes overwrites pointless) and the write is
// durable — fsynced before rename — when Put returns.
func (s *Store) Put(b []byte) (string, error) {
	hash := HashBytes(b)
	hexpart, _ := parseHash(hash)
	final := s.objectPath(hexpart)
	s.metPuts.Inc()
	s.metPutBytes.Add(float64(len(b)))
	if _, err := os.Stat(final); err == nil {
		s.metDedup.Inc()
		return hash, nil
	}
	if err := os.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		return "", err
	}
	tmp, err := os.CreateTemp(filepath.Dir(final), ".tmp-*")
	if err != nil {
		return "", err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Close(); err != nil {
		return "", err
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return "", err
	}
	return hash, nil
}

// Get returns the object at hash.
func (s *Store) Get(hash string) ([]byte, error) {
	hexpart, err := parseHash(hash)
	if err != nil {
		return nil, err
	}
	return os.ReadFile(s.objectPath(hexpart))
}

// Has reports whether the object exists.
func (s *Store) Has(hash string) bool {
	hexpart, err := parseHash(hash)
	if err != nil {
		return false
	}
	_, serr := os.Stat(s.objectPath(hexpart))
	return serr == nil
}

// Path returns the validated on-disk path for hash (for http.ServeFile).
func (s *Store) Path(hash string) (string, error) {
	hexpart, err := parseHash(hash)
	if err != nil {
		return "", err
	}
	return s.objectPath(hexpart), nil
}
