package workload

import (
	"encoding/binary"
	"fmt"

	"asap/internal/sim"
)

// StringSwap (SS) performs random swaps in a persistent array of strings,
// after the WHISPER/persistency-for-SFR workload: each operation reads two
// slots and writes both back exchanged, all in one atomic region. Each
// slot is line-aligned and ValueBytes long; the first 8 bytes carry the
// string's original index so Check can verify the array remains a
// permutation.
type StringSwap struct {
	mu     sim.Mutex
	base   uint64
	slots  int
	vbytes int
}

// NewStringSwap returns an SS benchmark.
func NewStringSwap() *StringSwap { return &StringSwap{} }

// Name implements Benchmark.
func (s *StringSwap) Name() string { return "SS" }

func (s *StringSwap) slotAddr(i int) uint64 {
	stride := uint64((s.vbytes + 63) / 64 * 64)
	return s.base + uint64(i)*stride
}

// Setup implements Benchmark.
func (s *StringSwap) Setup(c *Ctx, cfg Config) {
	s.vbytes = cfg.ValueBytes
	if s.vbytes < 8 {
		s.vbytes = 8
	}
	s.slots = cfg.InitialItems
	if s.slots < 2 {
		s.slots = 2
	}
	stride := (s.vbytes + 63) / 64 * 64
	s.base = c.Alloc(stride * s.slots)
	buf := make([]byte, s.vbytes)
	for i := 0; i < s.slots; i++ {
		binary.LittleEndian.PutUint64(buf, uint64(i))
		for j := 8; j < len(buf); j++ {
			buf[j] = byte(i + j)
		}
		c.StoreBytes(s.slotAddr(i), buf)
	}
}

// Op implements Benchmark: swap two random strings atomically.
func (s *StringSwap) Op(c *Ctx, i int) {
	a := c.Rng.Intn(s.slots)
	b := c.Rng.Intn(s.slots)
	if a == b {
		b = (b + 1) % s.slots
	}
	s.mu.Lock(c.T)
	c.Begin()
	va := c.LoadBytes(s.slotAddr(a), s.vbytes)
	vb := c.LoadBytes(s.slotAddr(b), s.vbytes)
	c.StoreBytes(s.slotAddr(a), vb)
	c.StoreBytes(s.slotAddr(b), va)
	c.End()
	s.mu.Unlock(c.T)
}

// Check implements Benchmark: the slot tags must still form a permutation
// of 0..slots-1.
func (s *StringSwap) Check(c *Ctx) string {
	seen := make([]bool, s.slots)
	for i := 0; i < s.slots; i++ {
		tag := binary.LittleEndian.Uint64(c.LoadBytes(s.slotAddr(i), 8))
		if tag >= uint64(s.slots) {
			return fmt.Sprintf("SS: slot %d holds invalid tag %d", i, tag)
		}
		if seen[tag] {
			return fmt.Sprintf("SS: tag %d duplicated", tag)
		}
		seen[tag] = true
	}
	return ""
}
