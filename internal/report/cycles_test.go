package report

import (
	"strings"
	"testing"
)

func sampleCycleData() CycleData {
	return CycleData{
		Title:       "Cycle accounting: test",
		Cols:        []string{"SW", "ASAP"},
		Buckets:     []string{"compute", "fence-wait", "drain"},
		Share:       [][]float64{{0.8, 0.95}, {0.2, 0.05}, {0, 0}},
		TotalCycles: []uint64{1000, 900},
	}
}

// TestCycleAccountingRendersShares: each nonzero bucket becomes a percent
// row under its scheme column.
func TestCycleAccountingRendersShares(t *testing.T) {
	out := CycleAccounting(sampleCycleData())
	for _, want := range []string{
		"Cycle accounting: test",
		"SW", "ASAP",
		"compute", "80.0%", "95.0%",
		"fence-wait", "20.0%", "5.0%",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestCycleAccountingOmitsZeroBuckets: a bucket no column charged is
// noise and must not render.
func TestCycleAccountingOmitsZeroBuckets(t *testing.T) {
	out := CycleAccounting(sampleCycleData())
	if strings.Contains(out, "drain") {
		t.Fatalf("all-zero bucket rendered:\n%s", out)
	}
}

// TestCycleAccountingFooterTotals: the footer carries each column's
// absolute cycle total, so percentages stay auditable.
func TestCycleAccountingFooterTotals(t *testing.T) {
	out := CycleAccounting(sampleCycleData())
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	footer := lines[len(lines)-1]
	for _, want := range []string{"total cycles", "1000", "900"} {
		if !strings.Contains(footer, want) {
			t.Fatalf("footer %q missing %q", footer, want)
		}
	}
}
