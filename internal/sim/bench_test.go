// Kernel micro-benchmarks covering the scheduler's hot paths: the
// Advance/yield cycle (direct-dispatch fast path), cross-thread
// WaitUntil handoffs (slow path through the kernel loop), event
// scheduling and firing (event pool + queue), and one full quick-scale
// benchmark run as the end-to-end number. Run with
//
//	go test -bench=. -benchmem -run='^$' ./internal/sim
//
// and compare against the committed baseline with benchstat.
package sim_test

import (
	"testing"

	"asap/internal/experiment"
	"asap/internal/sim"
)

// BenchmarkAdvanceYield measures the single-runnable-thread step: one
// Advance per op, no competing thread or event. This is the case the
// direct-dispatch fast path collapses to a few comparisons; before it,
// every op paid two goroutine handoffs.
func BenchmarkAdvanceYield(b *testing.B) {
	b.ReportAllocs()
	k := sim.NewKernel()
	k.Spawn("w", func(t *sim.Thread) {
		for i := 0; i < b.N; i++ {
			t.Advance(1)
		}
	})
	b.ResetTimer()
	k.Run()
}

// BenchmarkAdvanceYieldContended measures the two-runnable-thread step:
// the threads alternate in simulated time, so every yield must hand off
// through the kernel loop. This bounds what the slow path costs.
func BenchmarkAdvanceYieldContended(b *testing.B) {
	b.ReportAllocs()
	k := sim.NewKernel()
	for w := 0; w < 2; w++ {
		k.Spawn("w", func(t *sim.Thread) {
			for i := 0; i < b.N; i++ {
				t.Advance(2)
			}
		})
	}
	b.ResetTimer()
	k.Run()
}

// BenchmarkWaitUntilHandoff measures a producer/consumer ping-pong
// through WaitUntil predicates: every iteration blocks each side once,
// so this is all kernel-loop dispatch and predicate polling.
func BenchmarkWaitUntilHandoff(b *testing.B) {
	b.ReportAllocs()
	k := sim.NewKernel()
	token := 0
	k.Spawn("producer", func(t *sim.Thread) {
		for i := 0; i < b.N; i++ {
			t.WaitUntil(func() bool { return token == 0 })
			token = 1
			t.Advance(1)
		}
	})
	k.Spawn("consumer", func(t *sim.Thread) {
		for i := 0; i < b.N; i++ {
			t.WaitUntil(func() bool { return token == 1 })
			token = 0
			t.Advance(1)
		}
	})
	b.ResetTimer()
	k.Run()
}

// BenchmarkScheduleFire measures event throughput: schedule-then-fire of
// a non-capturing callback, the shape memdev's channel pipeline uses.
// With the event free list this should be allocation-free steady-state.
func BenchmarkScheduleFire(b *testing.B) {
	b.ReportAllocs()
	k := sim.NewKernel()
	fired := 0
	fire := func() { fired++ } // hoisted: measure the kernel, not closure construction
	k.Spawn("driver", func(t *sim.Thread) {
		for i := 0; i < b.N; i++ {
			t.Kernel().ScheduleAfter(1, fire)
			t.Advance(2)
		}
	})
	b.ResetTimer()
	k.Run()
	if fired != b.N {
		b.Fatalf("fired %d events, want %d", fired, b.N)
	}
}

// BenchmarkSleepUntil measures the timed-sleep path: anchor event plus
// predicate wait, both allocation-free steady-state.
func BenchmarkSleepUntil(b *testing.B) {
	b.ReportAllocs()
	k := sim.NewKernel()
	k.Spawn("sleeper", func(t *sim.Thread) {
		for i := 0; i < b.N; i++ {
			t.SleepUntil(t.Now() + 3)
		}
	})
	b.ResetTimer()
	k.Run()
}

// BenchmarkMutexPingPong measures contended lock handoff between two
// threads, covering the Mutex predicate cache and the blocked-claim path.
func BenchmarkMutexPingPong(b *testing.B) {
	b.ReportAllocs()
	k := sim.NewKernel()
	var m sim.Mutex
	for w := 0; w < 2; w++ {
		k.Spawn("w", func(t *sim.Thread) {
			for i := 0; i < b.N; i++ {
				m.Lock(t)
				t.Advance(3)
				m.Unlock(t)
			}
		})
	}
	b.ResetTimer()
	k.Run()
}

// BenchmarkFullQuickScale runs one complete quick-scale benchmark (Q
// under ASAP) end to end: machine build, workload, consistency check.
// This is the number that tracks real sweep wall-clock.
func BenchmarkFullQuickScale(b *testing.B) {
	b.ReportAllocs()
	scale := experiment.QuickScale()
	for i := 0; i < b.N; i++ {
		res := experiment.Run(experiment.Variant{Scheme: "ASAP"}, "Q", scale, 64)
		if res.CheckErr != "" {
			b.Fatalf("consistency check failed: %s", res.CheckErr)
		}
	}
}
