package queue

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func startTestServer(t *testing.T) (*Daemon, *httptest.Server) {
	t.Helper()
	d, err := Open(testDaemonConfig(t.TempDir(), CampaignExec))
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(func() {
		srv.Close()
		d.Kill()
	})
	return d, srv
}

func TestServerSubmitPollFetch(t *testing.T) {
	d, srv := startTestServer(t)

	spec := `{"work":11,"spin":5}`
	resp, err := http.Post(srv.URL+"/api/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	var sub struct {
		ID     uint64 `json:"id"`
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Poll the status URL the submit response pointed at.
	deadline := time.Now().Add(10 * time.Second)
	var info JobInfo
	for {
		r, err := http.Get(srv.URL + sub.Status)
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode != http.StatusOK {
			t.Fatalf("status poll %d", r.StatusCode)
		}
		if err := json.NewDecoder(r.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if info.State == StateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %+v", info)
		}
		time.Sleep(time.Millisecond)
	}

	// The result endpoint serves the artifact bytes; so does the
	// content-addressed artifacts endpoint.
	want, _ := CampaignExec(context.Background(), json.RawMessage(spec))
	for _, path := range []string{
		fmt.Sprintf("/api/v1/jobs/%d/result", sub.ID),
		"/api/v1/artifacts/" + info.Hash,
	} {
		r, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK || !bytes.Equal(body, want) {
			t.Fatalf("%s: status %d, %d bytes", path, r.StatusCode, len(body))
		}
	}

	// Stats reflect the completed job.
	r, err := http.Get(srv.URL + "/api/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if st.Depths.Done != 1 || st.Counters[CtrAcked] != 1 {
		t.Fatalf("stats: %+v", st)
	}
	_ = d
}

func TestServerRejectsBadSubmissions(t *testing.T) {
	_, srv := startTestServer(t)
	cases := []struct {
		body string
		want int
	}{
		{"not json", http.StatusBadRequest},
		{strings.Repeat("x", maxSpecBytes+2), http.StatusRequestEntityTooLarge},
	}
	for _, c := range cases {
		resp, err := http.Post(srv.URL+"/api/v1/jobs", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("submit %q...: status %d, want %d", c.body[:7], resp.StatusCode, c.want)
		}
	}
}

func TestServerResultNotReadyIs404(t *testing.T) {
	// A daemon whose executor never finishes: the job stays leased.
	cfg := testDaemonConfig(t.TempDir(), func(ctx context.Context, spec json.RawMessage) ([]byte, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	defer d.Kill()
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	id, err := d.Submit(json.RawMessage(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("%s/api/v1/jobs/%d/result", srv.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("result of unfinished job: status %d, want 404", resp.StatusCode)
	}
}

func TestServerUnknownJobAndBadIDs(t *testing.T) {
	_, srv := startTestServer(t)
	for path, want := range map[string]int{
		"/api/v1/jobs/999":      http.StatusNotFound,
		"/api/v1/jobs/banana":   http.StatusBadRequest,
		"/api/v1/artifacts/bad": http.StatusBadRequest,
		"/api/v1/artifacts/sha256-" + strings.Repeat("0", 64): http.StatusNotFound,
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
}

func TestServerDrainingRejectsSubmitWith503(t *testing.T) {
	d, srv := startTestServer(t)
	if err := d.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/api/v1/jobs", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503", resp.StatusCode)
	}
	// Liveness still answers during drain.
	r, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("healthz during drain: %d", r.StatusCode)
	}
}
