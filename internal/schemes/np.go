// Package schemes implements the paper's four baselines behind the
// machine.Scheme interface: NP (no persistence), SW (software undo
// logging, §6.3), SWDPOOnly (the Figure 1 middle bar), HWUndo
// (Proteus-style synchronous-commit hardware undo logging) and HWRedo
// (redo logging with synchronous LPOs and asynchronous DPOs).
package schemes

import (
	"sort"

	"asap/internal/arch"
	"asap/internal/cache"
	"asap/internal/machine"
	"asap/internal/obs"
	"asap/internal/sim"
)

// sortedLines returns the map's keys in address order: flush loops iterate
// deterministically so queue admission order (and thus timing) is stable
// run to run.
func sortedLines(m map[arch.LineAddr]bool) []arch.LineAddr {
	out := make([]arch.LineAddr, 0, len(m))
	for l := range m {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NP is the no-persistency upper bound: data lives in persistent memory
// (reads and dirty evictions touch the PM device) but no LPOs or DPOs are
// ever performed and regions carry no commit semantics.
type NP struct {
	m *machine.Machine

	nest    map[int]int
	beginAt map[int]uint64

	prof *obs.Profiler
}

// SetProfiler attaches a stall-attribution profiler (nil detaches).
func (s *NP) SetProfiler(p *obs.Profiler) {
	s.prof = p
	s.m.Caches.SetProfiler(p)
}

var _ machine.Scheme = (*NP)(nil)

// NewNP builds the NP baseline on m.
func NewNP(m *machine.Machine) *NP {
	np := &NP{m: m, nest: make(map[int]int), beginAt: make(map[int]uint64)}
	m.Caches.SetEvictHook(np.onEvict)
	return np
}

// Name implements machine.Scheme.
func (s *NP) Name() string { return "NP" }

// InitThread implements machine.Scheme.
func (s *NP) InitThread(t *sim.Thread) { t.Advance(50) }

// Begin implements machine.Scheme (latency accounting only).
func (s *NP) Begin(t *sim.Thread) {
	s.nest[t.ID()]++
	if s.nest[t.ID()] == 1 {
		s.beginAt[t.ID()] = t.Now()
		*s.m.Cells.RegionsBegun++
	}
	t.Advance(1)
}

// End implements machine.Scheme.
func (s *NP) End(t *sim.Thread) {
	s.nest[t.ID()]--
	t.Advance(1)
	if s.nest[t.ID()] == 0 {
		*s.m.Cells.RegionCycles += int64(t.Now() - s.beginAt[t.ID()])
		s.m.Cells.RegionLatency.Observe(t.Now() - s.beginAt[t.ID()])
		*s.m.Cells.RegionsCommitted++
	}
}

// Fence implements machine.Scheme: nothing to wait for.
func (s *NP) Fence(t *sim.Thread) { *s.m.Cells.Fences++ }

// Load implements machine.Scheme.
func (s *NP) Load(t *sim.Thread, addr uint64, buf []byte) {
	s.m.Access(t, addr, len(buf), false, nil)
	s.m.Heap.Read(addr, buf)
}

// Store implements machine.Scheme.
func (s *NP) Store(t *sim.Thread, addr uint64, data []byte) {
	s.m.Access(t, addr, len(data), true, nil)
	s.m.Heap.Write(addr, data)
}

// DrainBarrier implements machine.Scheme.
func (s *NP) DrainBarrier(t *sim.Thread) {
	s.prof.Enter(t, obs.Drain)
	t.WaitUntil(s.m.Fabric.Quiesced)
	s.prof.Exit(t)
}

func (s *NP) onEvict(info cache.EvictInfo) {
	evictWriteback(s.m, info)
}
