// Command asapd is the experiment service: a long-lived daemon that
// accepts sweep specs over HTTP, journals them durably before
// acknowledging, fans execution across a worker pool, and serves results
// from a content-addressed store. Jobs run the same internal/sweep code
// path as cmd/asapbench, so a sweep submitted here — even one the daemon
// was kill -9ed in the middle of — completes with output byte-identical
// to the one-shot CLI.
//
// Usage:
//
//	asapd -addr :8372 -dir /var/lib/asapd       # serve
//	asapd -campaign 200 -seed 7                 # run the fault campaign
//
// Submit and fetch a sweep:
//
//	curl -d '{"experiments":["fig7"],"scale":"quick"}' localhost:8372/api/v1/jobs
//	curl localhost:8372/api/v1/jobs/1
//	curl localhost:8372/api/v1/jobs/1/result
//
// Crash safety: every queue transition is journaled (CRC-framed,
// fsynced) before it is applied. Restarting after any kind of death
// replays the journal, expires the orphaned leases, and resumes the
// queue; completed work is never re-run and never lost. SIGINT/SIGTERM
// drain gracefully: intake stops with 503, in-flight sweeps get
// -drain-grace to finish, then are checkpointed back to pending
// (uncharged) for the next start.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"asap/internal/iocampaign"
	"asap/internal/iofault"
	"asap/internal/queue"
	"asap/internal/report"
	"asap/internal/resultcache"
	"asap/internal/runner"
	"asap/internal/sweep"
)

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", ":8372", "HTTP listen address")
	dir := flag.String("dir", "asapd-data", "data directory (journal + artifact store)")
	workers := flag.Int("workers", 2, "concurrent job executors")
	lease := flag.Duration("lease", 5*time.Minute, "lease timeout before a stalled job is redelivered")
	maxDeliveries := flag.Int("max-deliveries", 5, "deliveries before a job is dead-lettered")
	backoffBase := flag.Duration("backoff-base", 250*time.Millisecond, "retry backoff after the first failure")
	backoffCap := flag.Duration("backoff-cap", 30*time.Second, "retry backoff ceiling")
	drainGrace := flag.Duration("drain-grace", time.Minute, "how long a drain waits for in-flight jobs before checkpointing them")
	volatileFlag := flag.Bool("volatile", false, "disable the journal (no crash safety; for the fault campaign's negative control)")
	cacheDir := flag.String("cache-dir", "", "result-cache directory (default: <dir>/resultcache)")
	noCache := flag.Bool("no-cache", false, "run sweeps without the result cache")
	campaign := flag.Int("campaign", 0, "run N seeded kill/restart fault-campaign cases instead of serving")
	ioCampaign := flag.Int("iocampaign", 0, "run N seeded hostile-I/O fault-injection cases instead of serving")
	ioUnsafe := flag.Bool("io-unsafe", false, "hostile-I/O negative control: disable append rollback (the campaign MUST then fail)")
	seed := flag.Int64("seed", 1, "fault campaign seed")
	journalSegment := flag.Int64("journal-segment", 0, "journal segment rotation threshold in bytes (0 = default, negative disables compaction)")
	budgetJournalSoft := flag.Int64("budget-journal-soft", 0, "journal soft disk budget in bytes (0 disables)")
	budgetJournalHard := flag.Int64("budget-journal-hard", 0, "journal hard disk budget in bytes (0 disables)")
	budgetStoreSoft := flag.Int64("budget-store-soft", 0, "artifact-store soft disk budget in bytes (0 disables)")
	budgetStoreHard := flag.Int64("budget-store-hard", 0, "artifact-store hard disk budget in bytes (0 disables)")
	budgetCacheSoft := flag.Int64("budget-cache-soft", 0, "result-cache soft disk budget in bytes (0 disables)")
	budgetCacheHard := flag.Int64("budget-cache-hard", 0, "result-cache hard disk budget in bytes (0 disables)")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	flag.Parse()

	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "asapd: %v\n", err)
		return 2
	}
	slog.SetDefault(logger)

	if *campaign > 0 {
		return runCampaign(*campaign, *seed, *volatileFlag)
	}
	if *ioCampaign > 0 {
		return runIOCampaign(*ioCampaign, *seed, *ioUnsafe)
	}

	// The result cache lives beside the artifact store by default: both
	// share the temp+fsync+rename discipline, and a redelivered or
	// resubmitted sweep re-renders from cached cells instead of
	// resimulating.
	if *cacheDir == "" {
		*cacheDir = filepath.Join(*dir, "resultcache")
	}
	cache, codeVersion, err := resultcache.OpenCLI(os.Stderr, "asapd", *cacheDir, *noCache)
	if err != nil {
		logger.Error("result cache open failed", "dir", *cacheDir, "error", err)
		return 1
	}

	cfg := queue.Config{
		Dir:     *dir,
		Workers: *workers,
		Policy: queue.Policy{
			MaxDeliveries: *maxDeliveries,
			LeaseTimeout:  *lease,
			BackoffBase:   *backoffBase,
			BackoffCap:    *backoffCap,
		},
		Exec:              newSweepExec(cache, codeVersion),
		Validate:          validateSpec,
		Volatile:          *volatileFlag,
		Logger:            logger,
		ResultContentType: "text/plain; charset=utf-8",

		JournalSegmentBytes: *journalSegment,
		Budget: queue.BudgetConfig{
			Journal: queue.StoreBudget{Soft: *budgetJournalSoft, Hard: *budgetJournalHard},
			Store:   queue.StoreBudget{Soft: *budgetStoreSoft, Hard: *budgetStoreHard},
			Cache:   queue.StoreBudget{Soft: *budgetCacheSoft, Hard: *budgetCacheHard},
		},
	}
	if cache != nil {
		// Degraded mode sheds the result cache first: it is the one store
		// whose contents are pure recompute cost, never lost results.
		cfg.CacheUsage = cache.Bytes
		cfg.CacheShed = cache.Shed
	}
	d, err := queue.Open(cfg)
	if err != nil {
		logger.Error("open failed", "error", err)
		return 1
	}
	if cache != nil {
		ioErrs := d.Metrics.CounterVec("asapd_io_errors_total",
			"I/O failures on durable paths, by path (journal/store/resultcache/snapshot) and fault class.",
			"path", "class")
		cache.SetErrorHook(func(err error) {
			ioErrs.With("resultcache", iofault.Classify(err)).Inc()
		})
		d.Metrics.GaugeFunc("asapd_resultcache_hits",
			"Result-cache hits (cells re-rendered without simulation) since start.",
			func() float64 { h, _, _ := cache.Stats(); return float64(h) })
		d.Metrics.GaugeFunc("asapd_resultcache_misses",
			"Result-cache misses (cells simulated) since start.",
			func() float64 { _, m, _ := cache.Stats(); return float64(m) })
		logger.Info("result cache open", "dir", *cacheDir, "code_version", codeVersion)
	}
	if d.Recovered.Jobs > 0 || d.JournalRep.TornBytes > 0 {
		logger.Info("recovered",
			"jobs", d.Recovered.Jobs, "pending", d.Recovered.Pending,
			"done", d.Recovered.Done, "dead", d.Recovered.Dead,
			"orphaned", d.Recovered.Orphaned, "torn_bytes", d.JournalRep.TornBytes)
	}
	d.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "error", err)
		return 1
	}
	srv := &http.Server{Handler: d.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	logger.Info("serving", "addr", ln.Addr().String(), "dir", *dir, "workers", *workers)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		logger.Error("serve failed", "error", err)
		return 1
	}

	// Graceful drain: stop intake (new submissions already 503 once the
	// drain flag is up), give in-flight sweeps the grace period, then
	// checkpoint whatever is still running and flush the journal.
	logger.Info("signal received, draining", "grace", *drainGrace)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	drainErr := d.Drain(drainCtx)
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	srv.Shutdown(shutCtx)
	if drainErr != nil {
		logger.Error("drain failed", "error", drainErr)
		return 1
	}
	logger.Info("drained cleanly")
	return 0
}

// newLogger builds the structured event logger from the CLI flags.
func newLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
}

// validateSpec gates intake: a spec that does not parse and validate as
// a sweep never reaches the journal.
func validateSpec(raw json.RawMessage) error {
	var spec sweep.Spec
	if err := json.Unmarshal(raw, &spec); err != nil {
		return fmt.Errorf("parsing sweep spec: %w", err)
	}
	return spec.Validate()
}

// newSweepExec builds the job executor: it runs one journaled job
// through the same renderer the CLI uses, consulting the shared result
// cache when one is open (cached cells re-render without simulating;
// output bytes are identical either way). Each finished experiment
// heartbeats the lease, so a long sweep making real progress outlives
// the lease timeout while a stalled one is still redelivered. Case
// completions — cached and computed counted separately — stream to the
// daemon's per-job progress hub, and — when a manifest collector is
// attached — an instrumented representative run contributes
// profile/timeline/series artifacts. None of these channels touch the
// result bytes: output neutrality is test-enforced against the direct
// sweep.Execute path.
func newSweepExec(cache *resultcache.Store, codeVersion string) queue.Executor {
	return func(ctx context.Context, raw json.RawMessage) ([]byte, error) {
		return sweepExec(ctx, raw, cache, codeVersion)
	}
}

func sweepExec(ctx context.Context, raw json.RawMessage, cache *resultcache.Store, codeVersion string) ([]byte, error) {
	var spec sweep.Spec
	if err := json.Unmarshal(raw, &spec); err != nil {
		return nil, err
	}
	tracker := report.NewTracker()
	tracker.SetOnUpdate(func(s report.Snapshot) { queue.PublishProgress(ctx, s) })
	pool := runner.New(spec.Parallel)
	pool.SetReporter(tracker)
	var out bytes.Buffer
	results, err := sweep.Execute(ctx, spec, &out, sweep.Options{
		Pool:         pool,
		Cache:        cache,
		CodeVersion:  codeVersion,
		OnExperiment: func(string, time.Duration, error) { queue.Heartbeat(ctx) },
	})
	if err != nil {
		return nil, err
	}
	var failed []string
	for _, r := range results {
		if r.Error != "" {
			failed = append(failed, fmt.Sprintf("%s: %s", r.Name, r.Error))
		}
	}
	if len(failed) > 0 {
		return nil, fmt.Errorf("%d experiments failed: %v", len(failed), failed)
	}
	if queue.WantsArtifacts(ctx) {
		arts, oerr := sweep.ObserveArtifacts(spec)
		if oerr != nil {
			// The result already rendered; a failed observer run costs the
			// manifest extras, not the job.
			slog.Warn("observe artifacts failed", "error", oerr)
		}
		for _, a := range arts {
			queue.AddArtifact(ctx, queue.RawArtifact{
				Name: a.Name, Kind: a.Kind, ContentType: a.ContentType, Data: a.Data,
			})
		}
		queue.Heartbeat(ctx)
	}
	return out.Bytes(), nil
}

// runIOCampaign executes the hostile-I/O campaign (asapd -iocampaign N):
// seeded fault injection against every durable writer, audited for
// corruption, lost acked jobs, and poisoned cache hits. With -io-unsafe
// the journal's rollback protection is off and the exit codes invert:
// a run that finds NO corruption means the auditors are blind, and the
// green safe run next to it proves nothing.
func runIOCampaign(cases int, seed int64, unsafe bool) int {
	sum, err := iocampaign.Run(iocampaign.Config{Cases: cases, Seed: seed, Unsafe: unsafe})
	if err != nil {
		fmt.Fprintf(os.Stderr, "asapd: iocampaign: %v\n", err)
		return 1
	}
	buf, _ := json.MarshalIndent(sum, "", "  ")
	fmt.Println(string(buf))
	if unsafe {
		if !sum.Bad() {
			fmt.Fprintln(os.Stderr, "asapd: unsafe control detected no corruption; the auditors are blind")
			return 1
		}
		fmt.Fprintf(os.Stderr, "asapd: negative control: %d audit failures without rollback protection (expected)\n",
			len(sum.Failures))
		return 0
	}
	if sum.Bad() {
		fmt.Fprintf(os.Stderr, "asapd: iocampaign FAILED with %d audit failures\n", len(sum.Failures))
		return 1
	}
	if sum.Injected == 0 {
		fmt.Fprintln(os.Stderr, "asapd: iocampaign injected no faults; nothing was exercised")
		return 1
	}
	fmt.Fprintf(os.Stderr, "asapd: iocampaign passed: %d cases, %d faults fired, %d clean refusals, 0 corruptions, 0 lost acked jobs, 0 poisoned hits\n",
		sum.Cases, sum.Injected, sum.CleanRefusals)
	return 0
}

// runCampaign executes the seeded fault campaign (asapd -campaign N) and
// prints its summary as JSON.
func runCampaign(cases int, seed int64, volatile bool) int {
	sum, err := queue.RunCampaign(queue.CampaignConfig{
		Cases:    cases,
		Seed:     seed,
		Volatile: volatile,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "asapd: campaign: %v\n", err)
		return 1
	}
	buf, _ := json.MarshalIndent(sum, "", "  ")
	fmt.Println(string(buf))
	if sum.Bad() {
		fmt.Fprintf(os.Stderr, "asapd: campaign FAILED with %d audit failures\n", len(sum.Failures))
		return 1
	}
	if volatile && sum.LossDetectedCases == 0 {
		fmt.Fprintln(os.Stderr, "asapd: volatile control detected no loss; the checker is blind")
		return 1
	}
	if volatile {
		fmt.Fprintf(os.Stderr, "asapd: negative control: %d/%d cases lost jobs without the journal (expected)\n",
			sum.LossDetectedCases, sum.Cases)
		return 0
	}
	fmt.Fprintf(os.Stderr, "asapd: campaign passed: %d cases, %d daemon kills, %d worker panics, 0 lost, 0 doubled\n",
		sum.Cases, sum.DaemonKills, sum.WorkerPanics)
	return 0
}
