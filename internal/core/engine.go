// Package core implements the paper's contribution: the ASAP engine. It
// executes the atomic-region protocol of §4 — hardware-initiated LPOs and
// DPOs, the Modified Cache Line List, the Dependence List, asynchronous
// commit with control- and data-dependence enforcement — plus the §5
// machinery: traffic optimizations, asap_fence, OwnerRID spill/reload
// across LLC evictions, and the log lifecycle through the LH-WPQ.
package core

import (
	"sort"

	"asap/internal/arch"
	"asap/internal/machine"
	"asap/internal/memdev"
	"asap/internal/obs"
	"asap/internal/sim"
	"asap/internal/trace"
	"asap/internal/wal"
)

// record tracks one in-flight log record (Figure 5a) while its entries are
// allocated and accepted. h is the record's LH-WPQ header, which
// accumulates the accepted entries.
type record struct {
	header    arch.LineAddr
	h         *memdev.LogHeader
	allocated int
	accepted  int
}

// regionState is the engine's view of one atomic region across the CL
// List, Dependence List and log.
type regionState struct {
	rid arch.RID
	ts  *threadState

	clList *CLList
	cl     *CLEntry // nil once all DPOs completed (Done@L1)
	dList  *DependenceList
	dep    *DepEntry

	rec      *record // open (still filling) log record, if any
	logEnd   uint64  // absolute log offset after the region's last record
	logEpoch int     // log Grow count when logEnd was recorded
	endedAt  uint64  // when asap_end ran, for the commit-lag histogram

	// frees holds asap_free requests made inside the region; the memory
	// recycles only at commit, when the free is durable.
	frees []uint64

	committed bool
}

// threadState is the per-thread hardware state: the Thread State Registers
// of §4.4 plus the engine's bookkeeping.
type threadState struct {
	tid  int
	core int
	log  *wal.ThreadLog

	local uint64 // CurRID counter
	nest  int    // NestDepth

	cur     *regionState // currently executing region
	last    *regionState // latest region (committed or not), for fences
	beginAt uint64       // region start time for latency accounting
}

// Engine is the ASAP hardware, one instance per machine.
type Engine struct {
	m   *machine.Machine
	opt Options

	cl      []*CLList         // per core
	dep     []*DependenceList // per channel
	threads map[int]*threadState
	regions map[arch.RID]*regionState

	ownerBuf map[arch.LineAddr]arch.RID // §5.3 DRAM OwnerRID buffer
	bloom    *bloom

	// lpoInFlight counts LPOs between initiation and WPQ acceptance; it
	// must equal the sum of cache.Meta.Locks at every step (the invariant
	// engine's lock-conservation check).
	lpoInFlight int

	// CommittedAt records each region's commit time; Edges records every
	// captured dependence (dep, region). Both feed the ordering-invariant
	// tests and the recovery DAG checks.
	CommittedAt map[arch.RID]uint64
	Edges       [][2]arch.RID

	// tr, when non-nil, receives every protocol event.
	tr *trace.Buffer

	// prof, when non-nil, attributes structure-wait cycles to buckets.
	prof *obs.Profiler
}

// SetTrace attaches an event buffer (nil detaches).
func (e *Engine) SetTrace(b *trace.Buffer) { e.tr = b }

// SetProfiler attaches a stall-attribution profiler (nil detaches). The
// machine's caches get the same profiler for pinned-set stalls.
func (e *Engine) SetProfiler(p *obs.Profiler) {
	e.prof = p
	e.m.Caches.SetProfiler(p)
}

// Trace returns the attached event buffer, if any.
func (e *Engine) Trace() *trace.Buffer { return e.tr }

// emit records a protocol event when tracing is on.
func (e *Engine) emit(kind trace.Kind, rid arch.RID, line arch.LineAddr, aux uint64) {
	if e.tr != nil {
		e.tr.Emit(trace.Event{At: e.m.K.Now(), Kind: kind, RID: rid, Line: line, Aux: aux})
	}
}

var _ machine.Scheme = (*Engine)(nil)

// NewEngine attaches an ASAP engine to m and wires the cache hooks.
func NewEngine(m *machine.Machine, opt Options) *Engine {
	e := &Engine{
		m:           m,
		opt:         opt,
		threads:     make(map[int]*threadState),
		regions:     make(map[arch.RID]*regionState),
		ownerBuf:    make(map[arch.LineAddr]arch.RID),
		bloom:       newBloom(opt.BloomBits),
		CommittedAt: make(map[arch.RID]uint64),
	}
	for i := 0; i < m.Cfg.Cores; i++ {
		e.cl = append(e.cl, NewCLList(opt.CLListEntries, opt.CLPtrSlots))
	}
	for range m.Fabric.Channels() {
		e.dep = append(e.dep, NewDependenceList(opt.DepListEntries, opt.DepSlots))
	}
	m.Caches.SetEvictHook(e.onLLCEvict)
	m.Caches.SetFillHook(e.onFill)
	return e
}

// Name implements machine.Scheme.
func (e *Engine) Name() string { return "ASAP" }

// Machine returns the underlying machine.
func (e *Engine) Machine() *machine.Machine { return e.m }

// Options returns the engine's options.
func (e *Engine) Options() Options { return e.opt }

// depListOf returns the Dependence List hosting region r (§5.6: selected
// by the LSBs of the LocalRID).
func (e *Engine) depListOf(r arch.RID) *DependenceList {
	return e.dep[e.m.Fabric.HomeChannel(r).ID()]
}

// depOf returns r's Dependence List entry, or nil once committed.
func (e *Engine) depOf(r arch.RID) *DepEntry { return e.depListOf(r).Get(r) }

// homeLH returns the LH-WPQ hosting region r's log headers.
func (e *Engine) homeLH(r arch.RID) *memdev.LHWPQ {
	return e.m.Fabric.HomeChannel(r).LH()
}

// InitThread implements asap_init: allocate the thread's log buffer and
// initialize its Thread State Registers.
func (e *Engine) InitThread(t *sim.Thread) {
	ts := &threadState{
		tid:  t.ID(),
		core: e.m.CoreOf(t),
		log:  wal.NewThreadLog(e.m.Heap, e.opt.LogBufferBytes),
	}
	e.threads[t.ID()] = ts
	t.Advance(200) // buffer allocation and register setup
}

func (e *Engine) state(t *sim.Thread) *threadState {
	ts := e.threads[t.ID()]
	if ts == nil {
		panic("core: thread used before InitThread: " + t.Name())
	}
	return ts
}

// Begin implements asap_begin (§4.5). Nested regions are flattened.
func (e *Engine) Begin(t *sim.Thread) {
	ts := e.state(t)
	ts.nest++
	if ts.nest > 1 {
		t.Advance(1)
		return
	}

	ts.local++
	rid := arch.MakeRID(ts.tid, ts.local)
	clList := e.cl[ts.core]
	dList := e.depListOf(rid)
	e.prof.Enter(t, obs.BeginWait)
	t.WaitUntil(func() bool { return clList.HasSpace() && dList.HasSpace() })
	e.prof.Exit(t)

	r := &regionState{rid: rid, ts: ts, clList: clList, dList: dList}
	r.cl = clList.Add(rid)
	r.dep = dList.Add(rid)
	e.regions[rid] = r

	// Control dependence on the thread's previous region, if it is still
	// in the Dependence List (uncommitted).
	if prev := ts.last; prev != nil && !prev.committed {
		e.addDep(t, r, prev.rid)
	}

	ts.cur = r
	ts.last = r
	ts.beginAt = t.Now()
	*e.m.Cells.RegionsBegun++
	e.emit(trace.RegionBegin, rid, 0, 0)
	t.Advance(e.opt.BeginCost)
}

// End implements asap_end (§4.7): mark the region Done at the L1 and let
// execution proceed; the commit happens asynchronously.
func (e *Engine) End(t *sim.Thread) {
	ts := e.state(t)
	if ts.nest == 0 {
		panic("core: End without Begin on " + t.Name())
	}
	ts.nest--
	if ts.nest > 0 {
		t.Advance(1)
		return
	}
	r := ts.cur
	ts.cur = nil
	r.cl.Done = true
	for _, s := range append([]*CLSlot(nil), r.cl.Slots...) {
		e.maybeIssueDPO(r, s)
	}
	if len(r.cl.Slots) == 0 {
		e.l1Done(r)
	}
	t.Advance(e.opt.EndCost)
	r.endedAt = t.Now()
	if e.opt.UnsafeEarlyLogFree {
		// Seeded negative control: frees the undo log before the region's
		// dependence closure has committed, violating the §4.7 commit rule.
		r.ts.log.FreeUpTo(r.logEnd)
	}
	e.emit(trace.RegionEnd, r.rid, 0, 0)
	*e.m.Cells.RegionCycles += int64(t.Now() - ts.beginAt)
	e.m.Cells.RegionLatency.Observe(t.Now() - ts.beginAt)
}

// Fence implements asap_fence (§5.2): block until the thread's latest
// region has committed — and with it, transitively, everything it depends
// on.
func (e *Engine) Fence(t *sim.Thread) {
	ts := e.state(t)
	*e.m.Cells.Fences++
	last := ts.last
	if last == nil {
		return
	}
	start := t.Now()
	e.prof.Enter(t, obs.FenceWait)
	t.WaitUntil(func() bool { return last.committed })
	e.prof.Exit(t)
	*e.m.Cells.FenceCycles += int64(t.Now() - start)
}

// DrainBarrier blocks until every region has committed and the memory
// fabric is idle: the end-of-run accounting point.
func (e *Engine) DrainBarrier(t *sim.Thread) {
	e.prof.Enter(t, obs.Drain)
	t.WaitUntil(func() bool {
		return len(e.regions) == 0 && e.m.Fabric.Quiesced()
	})
	e.prof.Exit(t)
}

// ActiveRegions returns the number of uncommitted regions.
func (e *Engine) ActiveRegions() int { return len(e.regions) }

// DepEntriesLive returns the total live Dependence List entries across all
// channels (occupancy gauge).
func (e *Engine) DepEntriesLive() int {
	n := 0
	for _, dl := range e.dep {
		n += dl.Len()
	}
	return n
}

// CLEntriesLive returns the total live CL List entries across all cores
// (occupancy gauge).
func (e *Engine) CLEntriesLive() int {
	n := 0
	for _, cl := range e.cl {
		n += cl.Len()
	}
	return n
}

// LogBytesLive returns the total live undo-log bytes across all threads
// (occupancy gauge).
func (e *Engine) LogBytesLive() uint64 {
	var n uint64
	for _, ts := range e.threads {
		n += ts.log.Live()
	}
	return n
}

// CommitBacklog returns how many regions have run asap_end but not yet
// committed: the asynchrony window's live population.
func (e *Engine) CommitBacklog() int {
	n := 0
	for _, r := range e.regions {
		if r.endedAt > 0 {
			n++
		}
	}
	return n
}

// addDep records that region r depends on dep (data or control), stalling
// the thread if r's Dep slots are full (§4.6.3).
func (e *Engine) addDep(t *sim.Thread, r *regionState, dep arch.RID) {
	if r.dep.HasDep(dep) {
		return
	}
	if e.depOf(dep) == nil {
		return // already committed
	}
	if !r.dList.CanAddDep(r.dep, dep) {
		*e.m.Cells.DepStalls++
		e.prof.Enter(t, obs.DepSlot)
		t.WaitUntil(func() bool {
			return e.depOf(dep) == nil || r.dList.CanAddDep(r.dep, dep)
		})
		e.prof.Exit(t)
		if e.depOf(dep) == nil {
			return
		}
	}
	r.dList.AddDep(r.dep, dep)
	e.Edges = append(e.Edges, [2]arch.RID{dep, r.rid})
	e.emit(trace.DepAdd, r.rid, 0, uint64(dep))
	*e.m.Cells.DepEdges++
}

// l1Done is transition ③ of Figure 4: all the region's DPOs completed and
// no more writes are coming, so the CL List entry is freed and the
// Dependence List entry marked Done.
func (e *Engine) l1Done(r *regionState) {
	r.clList.Remove(r.rid)
	r.cl = nil
	r.dep.Done = true
	e.maybeCommit(r)
}

// maybeCommit checks transition ④ of Figure 4 and commits r if every
// dependence has been met, cascading to dependents via the commit
// broadcast.
func (e *Engine) maybeCommit(r *regionState) {
	work := []*regionState{r}
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		if cur.committed || !cur.dep.Done || len(cur.dep.Deps) > 0 {
			continue
		}
		work = append(work, e.commit(cur)...)
	}
}

// DeferFree implements machine.DeferredFreer: a free inside an atomic
// region takes effect at commit; outside a region it is immediate.
func (e *Engine) DeferFree(t *sim.Thread, addr uint64) {
	ts := e.state(t)
	if ts.cur != nil {
		ts.cur.frees = append(ts.cur.frees, addr)
		return
	}
	e.m.Heap.Free(addr)
}

// commit performs the ④ actions for one region and returns the dependents
// that may now be able to commit.
func (e *Engine) commit(r *regionState) []*regionState {
	r.committed = true
	if r.logEpoch == r.ts.log.Overflows() {
		// Free only when the offsets still refer to the current buffer: a
		// Grow since the region's last allocation reset head/tail, so a
		// stale logEnd would alias into — and wrongly free — records that
		// later regions allocated in the new buffer. Records left in an
		// abandoned buffer need no freeing (the whole buffer is dead once
		// its live regions commit).
		r.ts.log.FreeUpTo(r.logEnd)
	}
	for _, addr := range r.frees {
		e.m.Heap.Free(addr)
	}
	r.frees = nil
	e.homeLH(r.rid).Release(r.rid)
	if e.opt.LPODropping {
		e.m.Fabric.DropRegionOps(r.rid)
	}
	r.dList.Remove(r.rid)
	delete(e.regions, r.rid)
	*e.m.Cells.RegionsCommitted++
	e.emit(trace.RegionCommit, r.rid, 0, 0)
	e.CommittedAt[r.rid] = e.m.K.Now()
	if now := e.m.K.Now(); r.endedAt > 0 && now >= r.endedAt {
		e.m.Cells.CommitLag.Observe(now - r.endedAt)
	}

	// Broadcast completion to every Dependence List (§4.8), visiting
	// dependents in RID order so cascaded commits are deterministic.
	var unblocked []*regionState
	for _, dl := range e.dep {
		for _, entry := range dl.Entries() {
			if entry.HasDep(r.rid) {
				entry.ClearDep(r.rid)
				if other := e.regions[entry.RID]; other != nil {
					unblocked = append(unblocked, other)
				}
			}
		}
	}
	sort.Slice(unblocked, func(i, j int) bool { return unblocked[i].rid < unblocked[j].rid })

	// With no uncommitted regions left anywhere, spilled OwnerRIDs are
	// dead and the non-counting Bloom filter can be reset (§5.3).
	if len(e.regions) == 0 {
		e.bloom.Clear()
		e.ownerBuf = make(map[arch.LineAddr]arch.RID)
		*e.m.Cells.BloomClears++
	}
	return unblocked
}
