package main

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"asap/internal/sweep"
)

// TestSweepExecMatchesCLIBytes is the byte-identity claim at the unit
// level: the daemon's executor produces exactly the bytes the CLI's
// renderer produces for the same spec, because they are the same code
// path.
func TestSweepExecMatchesCLIBytes(t *testing.T) {
	raw := json.RawMessage(`{"experiments":["config","area"],"scale":"quick"}`)

	got, err := sweepExec(context.Background(), raw)
	if err != nil {
		t.Fatalf("sweepExec: %v", err)
	}

	var spec sweep.Spec
	if err := json.Unmarshal(raw, &spec); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if _, err := sweep.Execute(context.Background(), spec, &want, sweep.Options{}); err != nil {
		t.Fatalf("sweep.Execute: %v", err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("daemon executor output (%d bytes) differs from CLI renderer (%d bytes)",
			len(got), want.Len())
	}
	if len(got) == 0 {
		t.Fatal("empty sweep output")
	}
}

// TestSweepExecDeterministic reruns the same spec and demands identical
// bytes — the property that makes redelivered jobs land on the same
// content address.
func TestSweepExecDeterministic(t *testing.T) {
	raw := json.RawMessage(`{"experiments":["config"],"scale":"quick"}`)
	a, err := sweepExec(context.Background(), raw)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sweepExec(context.Background(), raw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same spec produced different bytes across runs")
	}
}

func TestValidateSpec(t *testing.T) {
	for _, good := range []string{
		`{"experiments":["fig7"]}`,
		`{"experiments":["all"],"scale":"full","parallel":4}`,
	} {
		if err := validateSpec(json.RawMessage(good)); err != nil {
			t.Errorf("validateSpec(%s): %v", good, err)
		}
	}
	for _, bad := range []string{
		`{}`,
		`{"experiments":["nope"]}`,
		`{"experiments":["fig7"],"scale":"huge"}`,
		`{"experiments":["fig7"],"parallel":-1}`,
		`[1,2,3]`,
	} {
		if err := validateSpec(json.RawMessage(bad)); err == nil {
			t.Errorf("validateSpec(%s): accepted", bad)
		}
	}
}
