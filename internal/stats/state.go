package stats

import (
	"sort"

	"asap/internal/snapshot"
)

// AppendState digests every counter and histogram in sorted name order.
// Counters are the experiment-visible output, so any divergence here is a
// determinism bug the resume equivalence test must catch.
func (s *Set) AppendState(e *snapshot.Enc) {
	e.Section("stats")
	names := s.Names()
	e.I64(int64(len(names)))
	for _, n := range names {
		e.Str(n)
		e.I64(s.Get(n))
	}

	hnames := make([]string, 0, len(s.hists))
	for n := range s.hists {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	e.I64(int64(len(hnames)))
	for _, n := range hnames {
		h := s.hists[n]
		e.Str(n)
		e.I64(h.count)
		e.I64(int64(h.maxIdx))
		for i := 0; i <= h.maxIdx && i < len(h.buckets); i++ {
			e.I64(h.buckets[i])
		}
	}
}
