package stats

import (
	"sync"
	"testing"
	"time"
)

func TestJobLogOrderAndAggregates(t *testing.T) {
	l := &JobLog{}
	l.Record(JobMetrics{Label: "a", WallNS: int64(2 * time.Millisecond)})
	l.Record(JobMetrics{Label: "b", WallNS: int64(5 * time.Millisecond)})
	l.Record(JobMetrics{Label: "c", WallNS: int64(1 * time.Millisecond)})

	snap := l.Snapshot()
	if len(snap) != 3 || snap[0].Label != "a" || snap[2].Label != "c" {
		t.Fatalf("snapshot order wrong: %+v", snap)
	}
	if l.Len() != 3 {
		t.Fatalf("Len: got %d", l.Len())
	}
	if got := l.TotalWall(); got != 8*time.Millisecond {
		t.Fatalf("TotalWall: got %v", got)
	}
	slow, ok := l.Slowest()
	if !ok || slow.Label != "b" {
		t.Fatalf("Slowest: got %+v ok=%v", slow, ok)
	}
	// Snapshot must be a copy, not an alias.
	snap[0].Label = "mutated"
	if l.Snapshot()[0].Label != "a" {
		t.Fatalf("Snapshot aliases internal state")
	}
}

func TestJobLogEmpty(t *testing.T) {
	l := &JobLog{}
	if _, ok := l.Slowest(); ok {
		t.Fatalf("empty log must report no slowest job")
	}
	if l.TotalWall() != 0 || l.Len() != 0 || len(l.Snapshot()) != 0 {
		t.Fatalf("empty log aggregates must be zero")
	}
}

func TestJobLogConcurrentRecord(t *testing.T) {
	l := &JobLog{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Record(JobMetrics{Label: "x", WallNS: 1})
			}
		}()
	}
	wg.Wait()
	if l.Len() != 800 {
		t.Fatalf("lost records under concurrency: %d", l.Len())
	}
}
