package experiment

import (
	"context"
	"fmt"

	"asap/internal/resultcache"
	"asap/internal/runner"
	"asap/internal/workload"
)

// pool executes every figure's (variant × benchmark) matrix. The default
// is a serial pool, which preserves the seed behaviour exactly;
// cmd/asapbench swaps in a wider one via SetPool. Because each Run builds
// a fresh machine and the sim kernel is bit-deterministic, and because
// the pool assembles results in submission order, every table is
// byte-identical regardless of the pool width.
var pool = runner.New(1)

// SetPool installs the worker pool used by all figure runners. A nil
// pool restores the serial default. Not safe to call while figures run.
func SetPool(p *runner.Pool) {
	if p == nil {
		p = runner.New(1)
	}
	pool = p
}

// SetParallelism is SetPool(runner.New(n)) for callers that need neither
// a progress reporter nor a metrics log.
func SetParallelism(n int) { SetPool(runner.New(n)) }

// Pool returns the currently installed pool.
func Pool() *runner.Pool { return pool }

// runCtx gates figure fan-out: once it is cancelled, runAll stops
// dispatching further runs. Background by default, so figures behave
// exactly as before unless a caller opts in via SetContext.
var runCtx = context.Background()

// SetContext installs the context consulted by every figure runner. A
// cancelled context makes the current figure stop dispatching new runs
// and panic with the cancellation error (callers recover it the same way
// they recover consistency failures). nil restores the background
// context. Not safe to call while figures run; like SetPool it is
// package state, so callers running figures from several goroutines must
// serialize (cmd/asapbench and internal/sweep both do).
func SetContext(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	runCtx = ctx
}

// runSpec describes one benchmark run for pooled fan-out: either a
// standard Run invocation, or a custom closure for runs that build their
// own machine configuration.
type runSpec struct {
	v          Variant
	bench      string
	scale      Scale
	valueBytes int
	// label overrides the auto-built "figure/bench/scheme" job label.
	label string
	// custom, when non-nil, replaces the standard Run call.
	custom func() workload.Result
	// cacheKey makes a custom run cacheable: it must encode every input
	// the closure bakes in (machine config deltas, workload knobs, seed).
	// Standard runs derive their key automatically; a custom run with a
	// nil cacheKey always executes.
	cacheKey *resultcache.Key
}

// runAll fans specs across the pool and returns results in spec order.
// A panic inside any job (e.g. a consistency-check failure) is re-raised
// here, preserving Run's serial semantics for callers. One failing run —
// or a cancelled package context — stops the remaining dispatches
// instead of running out the matrix.
func runAll(figure string, specs []runSpec) []workload.Result {
	jobs := make([]runner.Job[workload.Result], len(specs))
	for i, s := range specs {
		s := s
		label := s.label
		if label == "" {
			label = fmt.Sprintf("%s/%s/%s", figure, s.bench, s.v.Scheme)
		} else {
			label = figure + "/" + label
		}
		run := s.custom
		if run == nil {
			run = func() workload.Result { return Run(s.v, s.bench, s.scale, s.valueBytes) }
		}
		jobs[i] = runner.Job[workload.Result]{Label: label, Run: run}
		if key, ok := s.cacheProbe(); ok {
			memoizeResult(key, &jobs[i].Cached, &jobs[i].Store)
		}
	}
	out, err := runner.CollectCtx(runCtx, pool, jobs)
	if err != nil {
		panic(err)
	}
	return out
}
