package memdev

import (
	"asap/internal/arch"
	"asap/internal/sim"
	"asap/internal/stats"
)

// Fabric is the full memory system: all channels across all controllers,
// the address-interleaving policy, device read latencies, and the persisted
// PM image. It is the single point through which every component touches
// memory.
type Fabric struct {
	cfg      Config
	k        *sim.Kernel
	st       *stats.Set
	channels []*Channel
	pm       *Image
	pool     entryPool
	cells    *stats.Cells
}

// NewFabric builds the memory system described by cfg.
func NewFabric(k *sim.Kernel, st *stats.Set, cfg Config) *Fabric {
	f := &Fabric{cfg: cfg, k: k, st: st, pm: NewImage(), cells: st.Cells()}
	n := cfg.Channels()
	if n <= 0 {
		n = 1
	}
	for i := 0; i < n; i++ {
		f.channels = append(f.channels, newChannel(i, &f.cfg, k, st, f.pm, &f.pool))
	}
	return f
}

// NewEntry returns a pooled persist entry with the given identity and a
// 64 B Payload aliasing the entry's inline buffer. The caller must fill
// all of Payload (SetPayload, or Heap.ReadLineInto) — a recycled buffer
// holds a previous operation's bytes. The channel recycles the entry once
// it drains to the device or is dropped, so callers must not retain it
// past submission; onAccept callbacks run before either can happen and
// may still read Payload.
func (f *Fabric) NewEntry(kind Kind, rid arch.RID, dst, subject arch.LineAddr) *Entry {
	return f.pool.get(kind, rid, dst, subject)
}

// Config returns the fabric's configuration.
func (f *Fabric) Config() Config { return f.cfg }

// PM returns the persisted image (live; clone before mutating externally).
func (f *Fabric) PM() *Image { return f.pm }

// Channels returns all channels.
func (f *Fabric) Channels() []*Channel { return f.channels }

// ChannelFor returns the channel owning a line, interleaved at line
// granularity across all channels.
func (f *Fabric) ChannelFor(line arch.LineAddr) *Channel {
	idx := int(uint64(line)>>arch.LineShift) % len(f.channels)
	return f.channels[idx]
}

// HomeChannel returns the channel hosting region r's Dependence List entry
// and LH-WPQ headers, selected by the LSBs of the LocalRID (§5.6).
func (f *Fabric) HomeChannel(r arch.RID) *Channel {
	return f.channels[int(r.Local())%len(f.channels)]
}

// remote reports whether ch belongs to the remote NUMA node (the upper
// half of the channels when NUMARemotePenalty is set).
func (f *Fabric) remote(ch *Channel) bool {
	return f.cfg.NUMARemotePenalty > 0 && ch.id >= len(f.channels)/2
}

// transferTo returns the on-chip (plus interconnect) latency to reach ch.
func (f *Fabric) transferTo(ch *Channel) uint64 {
	lat := f.cfg.TransferCycles
	if f.remote(ch) {
		lat += f.cfg.NUMARemotePenalty
	}
	return lat
}

// SubmitPersist sends e toward the WPQ of the channel owning e.Dst,
// arriving after the on-chip transfer latency. onAccept (may be nil) fires
// at WPQ acceptance — the §4.1 completion point.
func (f *Fabric) SubmitPersist(e *Entry, onAccept func(at uint64)) {
	ch := f.ChannelFor(e.Dst)
	f.k.ScheduleAfter(f.transferTo(ch), func() { ch.Arrive(e, onAccept) })
}

// SubmitPersistOn is SubmitPersist with an explicit channel: ASAP routes
// all of one log record's operations via the record's header line so their
// WPQ acceptances arrive in allocation order, keeping records contiguous.
func (f *Fabric) SubmitPersistOn(ch *Channel, e *Entry, onAccept func(at uint64)) {
	f.k.ScheduleAfter(f.transferTo(ch), func() { ch.Arrive(e, onAccept) })
}

// DropDPOFor searches the owning channel's WPQ for a queued DPO to line and
// drops it (DPO dropping). Reports whether one was dropped.
func (f *Fabric) DropDPOFor(line arch.LineAddr) bool {
	return f.ChannelFor(line).DropDPOFor(line)
}

// SupersedeDPO drops queued DPOs to line that a newer DPO makes stale.
func (f *Fabric) SupersedeDPO(line arch.LineAddr) int {
	return f.ChannelFor(line).SupersedeDPO(line)
}

// DropRegionOps applies LPO dropping for a committed region across every
// channel, returning the number of dropped entries.
func (f *Fabric) DropRegionOps(r arch.RID) int {
	n := 0
	for _, ch := range f.channels {
		n += ch.DropRegionOps(r)
	}
	return n
}

// ReadLatency returns the device portion of a miss to main memory for
// line and counts the access. persistent selects the PM device (scaled
// latency) over DRAM; remote NUMA channels add their penalty.
func (f *Fabric) ReadLatency(line arch.LineAddr, persistent bool) uint64 {
	base := f.transferTo(f.ChannelFor(line))
	if persistent {
		*f.cells.PMReads++
		return base + f.cfg.PMRead()
	}
	*f.cells.DRAMReads++
	return base + f.cfg.DRAMReadCycles
}

// WriteBackDRAM counts a dirty non-persistent line leaving the LLC.
func (f *Fabric) WriteBackDRAM() {
	*f.cells.DRAMWrites++
}

// FlushAll models ADR on power failure: every channel's accepted WPQ
// entries reach the PM image. Returns the image (live).
func (f *Fabric) FlushAll() *Image {
	for _, ch := range f.channels {
		ch.FlushToImage()
	}
	return f.pm
}

// LHSnapshot gathers the flushed LH-WPQ headers of every channel, as
// available to recovery after a crash. An installed HeaderFaultInjector
// may drop headers from the snapshot.
func (f *Fabric) LHSnapshot() []*LogHeader {
	var out []*LogHeader
	for _, ch := range f.channels {
		out = append(out, ch.crashHeaders()...)
	}
	return out
}

// Quiesced reports whether no persist work remains anywhere: used by tests
// and by the end-of-run barrier.
func (f *Fabric) Quiesced() bool {
	for _, ch := range f.channels {
		if ch.Occupancy() > 0 || len(ch.arrivals) > 0 {
			return false
		}
	}
	return true
}
