package schemes

import (
	"testing"

	"asap/internal/arch"
	"asap/internal/core"
	"asap/internal/machine"
	"asap/internal/sim"
	"asap/internal/stats"
	"asap/internal/workload"
)

// build constructs a machine plus the named scheme.
func build(name string, mutate func(*machine.Config)) (*machine.Machine, machine.Scheme) {
	cfg := machine.DefaultConfig()
	cfg.Cores = 4
	if mutate != nil {
		mutate(&cfg)
	}
	m := machine.New(cfg)
	var s machine.Scheme
	switch name {
	case "NP":
		s = NewNP(m)
	case "SW":
		s = NewSW(m)
	case "SW-DPOOnly":
		s = NewSWDPOOnly(m)
	case "HWUndo":
		s = NewHWUndo(m)
	case "HWRedo":
		s = NewHWRedo(m)
	case "ASAP":
		s = core.NewEngine(m, core.DefaultOptions())
	case "ASAP-Redo":
		s = NewASAPRedo(m)
	default:
		panic("unknown scheme " + name)
	}
	return m, s
}

var allSchemes = []string{"NP", "SW", "SW-DPOOnly", "HWUndo", "HWRedo", "ASAP", "ASAP-Redo"}

// miniWorkload runs regions regions, each updating span distinct lines of
// a shared array plus a counter line, and returns total cycles.
func miniWorkload(m *machine.Machine, s machine.Scheme, regions, span int) uint64 {
	base := m.Heap.Alloc(uint64(64*span*4), true)
	counter := m.Heap.Alloc(64, true)
	m.K.Spawn("w", func(t *sim.Thread) {
		s.InitThread(t)
		for i := 0; i < regions; i++ {
			s.Begin(t)
			for j := 0; j < span; j++ {
				addr := base + uint64(64*((i*span+j)%(span*4)))
				var b [8]byte
				b[0] = byte(i)
				s.Store(t, addr, b[:])
			}
			var c [8]byte
			s.Load(t, counter, c[:])
			c[0]++
			s.Store(t, counter, c[:])
			t.Advance(60) // region-local compute
			s.End(t)
			t.Advance(40) // inter-region work
		}
		s.DrainBarrier(t)
	})
	m.K.Run()
	return m.K.Now()
}

func TestEverySchemeRunsAndCommits(t *testing.T) {
	for _, name := range allSchemes {
		t.Run(name, func(t *testing.T) {
			m, s := build(name, nil)
			miniWorkload(m, s, 20, 3)
			if got := m.St.Get(stats.RegionsBegun); got != 20 {
				t.Fatalf("regions begun = %d, want 20", got)
			}
			if got := m.St.Get(stats.RegionsCommitted); got != 20 {
				t.Fatalf("regions committed = %d, want 20", got)
			}
		})
	}
}

func TestSchemesProduceIdenticalFinalData(t *testing.T) {
	// Invariant 8 (DESIGN.md): in crash-free runs every scheme leaves the
	// same architectural memory contents.
	var want []byte
	for _, name := range allSchemes {
		m, s := build(name, nil)
		base := m.Heap.Alloc(64*8, true)
		m.K.Spawn("w", func(t *sim.Thread) {
			s.InitThread(t)
			for i := 0; i < 16; i++ {
				s.Begin(t)
				var b [8]byte
				b[0] = byte(i * 3)
				s.Store(t, base+uint64(64*(i%8)), b[:])
				s.End(t)
			}
			s.DrainBarrier(t)
		})
		m.K.Run()
		got := make([]byte, 64*8)
		m.Heap.Read(base, got)
		if want == nil {
			want = got
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s diverged from NP at byte %d: %d != %d", name, i, got[i], want[i])
			}
		}
	}
}

func TestPerformanceOrdering(t *testing.T) {
	// The paper's Figure 7 shape: SW slowest, hardware synchronous-commit
	// schemes in between, ASAP close to NP.
	cycles := map[string]uint64{}
	for _, name := range allSchemes {
		m, s := build(name, nil)
		cycles[name] = miniWorkload(m, s, 200, 4)
	}
	if !(cycles["SW"] > cycles["HWUndo"] && cycles["SW"] > cycles["HWRedo"]) {
		t.Errorf("SW should be slowest: %v", cycles)
	}
	if !(cycles["HWUndo"] > cycles["ASAP"] && cycles["HWRedo"] > cycles["ASAP"]) {
		t.Errorf("synchronous HW schemes should be slower than ASAP: %v", cycles)
	}
	if cycles["ASAP"] < cycles["NP"] {
		t.Errorf("ASAP cannot beat NP: %v", cycles)
	}
	// ASAP within a modest factor of NP (paper: 0.96x).
	if float64(cycles["ASAP"]) > 1.30*float64(cycles["NP"]) {
		t.Errorf("ASAP too far from NP: ASAP=%d NP=%d", cycles["ASAP"], cycles["NP"])
	}
	// SW-DPOOnly sits between NP and full SW (Figure 1).
	if !(cycles["SW-DPOOnly"] > cycles["NP"] && cycles["SW-DPOOnly"] < cycles["SW"]) {
		t.Errorf("Figure 1 ordering violated: %v", cycles)
	}
}

func TestTrafficOrdering(t *testing.T) {
	// Figure 9b shape: ASAP generates the least PM write traffic, SW the
	// most, the HW baselines in between.
	traffic := map[string]int64{}
	for _, name := range []string{"SW", "HWUndo", "HWRedo", "ASAP"} {
		m, s := build(name, nil)
		miniWorkload(m, s, 300, 4)
		traffic[name] = m.St.Get(stats.PMWrites)
	}
	if !(traffic["ASAP"] < traffic["HWUndo"] && traffic["ASAP"] < traffic["HWRedo"] && traffic["ASAP"] < traffic["SW"]) {
		t.Errorf("ASAP should have least PM traffic: %v", traffic)
	}
	if !(traffic["SW"] > traffic["HWUndo"]) {
		t.Errorf("SW should out-write HWUndo: %v", traffic)
	}
}

func TestLatencySensitivityShape(t *testing.T) {
	// Figure 10 shape: scaling PM latency 16x hurts HWUndo far more than
	// ASAP (relative to each scheme's own 1x run).
	slowdown := func(name string) float64 {
		base, bs := build(name, nil)
		c1 := miniWorkload(base, bs, 120, 4)
		slow, ss := build(name, func(c *machine.Config) { c.Mem.PMLatencyMult = 16 })
		c16 := miniWorkload(slow, ss, 120, 4)
		return float64(c16) / float64(c1)
	}
	asap := slowdown("ASAP")
	undo := slowdown("HWUndo")
	if asap > undo {
		t.Errorf("ASAP (%.2fx) should be less latency-sensitive than HWUndo (%.2fx)", asap, undo)
	}
}

func TestHWUndoEndIsSynchronous(t *testing.T) {
	// With acceptance throttled, HWUndo's End must wait while ASAP's End
	// must not.
	endTime := func(name string) uint64 {
		m, s := build(name, func(c *machine.Config) {
			c.Mem.Controllers, c.Mem.ChannelsPerMC = 1, 1
			c.Mem.WPQEntries = 1
			c.Mem.PMWriteCycles = 3000
		})
		base := m.Heap.Alloc(64*4, true)
		var at uint64
		m.K.Spawn("w", func(t *sim.Thread) {
			s.InitThread(t)
			s.Begin(t)
			for j := 0; j < 3; j++ {
				var b [8]byte
				s.Store(t, base+uint64(64*j), b[:])
			}
			s.End(t)
			at = t.Now()
			s.DrainBarrier(t)
		})
		m.K.Run()
		return at
	}
	undo := endTime("HWUndo")
	asap := endTime("ASAP")
	if undo < 3000 {
		t.Errorf("HWUndo End returned at %d; should wait for throttled accepts", undo)
	}
	if asap > 3000 {
		t.Errorf("ASAP End returned at %d; should not wait", asap)
	}
}

func TestHWRedoRedirectPenalty(t *testing.T) {
	m, s := build("HWRedo", nil)
	redo := s.(*HWRedo)
	line := arch.LineAddr(m.Heap.Alloc(64, true))
	redo.redirect[line] = true
	var withPenalty, withoutPenalty uint64
	m.K.Spawn("w", func(t *sim.Thread) {
		s.InitThread(t)
		start := t.Now()
		var b [8]byte
		s.Load(t, uint64(line), b[:])
		withPenalty = t.Now() - start
		delete(redo.redirect, line)
		start = t.Now()
		s.Load(t, uint64(line), b[:])
		withoutPenalty = t.Now() - start
	})
	m.K.Run()
	if withPenalty <= withoutPenalty {
		t.Fatalf("redirected read (%d) should cost more than normal (%d)", withPenalty, withoutPenalty)
	}
}

func TestMultithreadedSchemesAgree(t *testing.T) {
	// Three threads increment a shared lock-protected counter under every
	// scheme; the final value must always be exact.
	for _, name := range allSchemes {
		m, s := build(name, nil)
		counter := m.Heap.Alloc(64, true)
		var mu sim.Mutex
		for w := 0; w < 3; w++ {
			m.K.Spawn("w", func(t *sim.Thread) {
				s.InitThread(t)
				for i := 0; i < 25; i++ {
					mu.Lock(t)
					s.Begin(t)
					var b [8]byte
					s.Load(t, counter, b[:])
					b[0]++
					s.Store(t, counter, b[:])
					s.End(t)
					mu.Unlock(t)
				}
				s.DrainBarrier(t)
			})
		}
		m.K.Run()
		got := make([]byte, 8)
		m.Heap.Read(counter, got)
		if got[0] != 75 {
			t.Fatalf("%s: counter = %d, want 75", name, got[0])
		}
	}
}

// envFor and runBench let scheme tests drive Table 3 benchmarks without
// importing the workload package's test helpers.
func envFor(m *machine.Machine, s machine.Scheme) *workload.Env {
	return &workload.Env{M: m, S: s}
}

func runBench(env *workload.Env, name string) string {
	b := workload.ByName(name)
	res := workload.Run(env, b, workload.Config{
		ValueBytes: 64, InitialItems: 64, Threads: 3, OpsPerThread: 40, Seed: 5,
	})
	return res.CheckErr
}
