package asap

import (
	"encoding/binary"

	"asap/internal/arch"
	"asap/internal/schemes"
	"asap/internal/sim"

	"asap/internal/machine"
)

// Thread is a simulated hardware thread bound to a System. All persistent
// data access goes through it so the active scheme can time and log every
// operation. Methods must only be called from within the thread's own
// function.
type Thread struct {
	sys *System
	t   *sim.Thread
}

// ID returns the thread's spawn index.
func (t *Thread) ID() int { return t.t.ID() }

// Now returns the thread's virtual clock in cycles.
func (t *Thread) Now() uint64 { return t.t.Now() }

// Begin opens an atomic region (asap_begin). Nested regions flatten.
func (t *Thread) Begin() { t.sys.scheme.Begin(t.t) }

// End closes the current atomic region (asap_end). Under ASAP execution
// proceeds immediately; synchronous schemes wait here.
func (t *Thread) End() { t.sys.scheme.End(t.t) }

// Fence blocks until the thread's latest region — and transitively all
// regions it depends on — has committed (asap_fence, §5.2). Call it
// before externally visible actions such as I/O.
func (t *Thread) Fence() { t.sys.scheme.Fence(t.t) }

// Drain blocks until every outstanding region in the system has committed
// and the memory fabric is idle.
func (t *Thread) Drain() { t.sys.scheme.DrainBarrier(t.t) }

// Malloc allocates persistent memory (asap_malloc).
func (t *Thread) Malloc(size int) uint64 {
	t.t.Advance(30)
	return t.sys.m.Heap.Alloc(uint64(size), true)
}

// Free releases persistent memory (asap_free). Inside an atomic region
// the memory recycles only once the region commits, keeping reuse safe
// against rollback.
func (t *Thread) Free(addr uint64) {
	t.t.Advance(15)
	if df, ok := t.sys.scheme.(machine.DeferredFreer); ok {
		df.DeferFree(t.t, addr)
		return
	}
	t.sys.m.Heap.Free(addr)
}

// Load reads len(buf) bytes at addr.
func (t *Thread) Load(addr uint64, buf []byte) { t.sys.scheme.Load(t.t, addr, buf) }

// Store writes data at addr.
func (t *Thread) Store(addr uint64, data []byte) { t.sys.scheme.Store(t.t, addr, data) }

// LoadUint64 reads a little-endian uint64.
func (t *Thread) LoadUint64(addr uint64) uint64 {
	var b [8]byte
	t.Load(addr, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// StoreUint64 writes a little-endian uint64.
func (t *Thread) StoreUint64(addr, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	t.Store(addr, b[:])
}

// Compute advances the thread's clock by register-only work.
func (t *Thread) Compute(cycles uint64) { t.t.Advance(cycles) }

// Spawn forks another simulated thread from inside this one.
func (t *Thread) Spawn(name string, fn func(t *Thread)) { t.sys.Spawn(name, fn) }

// Migrate context-switches the thread onto another core (§5.7). Under
// ASAP the hardware drains and re-homes the thread's CL List entry; other
// schemes just remap the core.
func (t *Thread) Migrate(core int) {
	if m, ok := t.sys.scheme.(machine.Migrator); ok {
		m.Migrate(t.t, core)
		return
	}
	t.t.Advance(1000)
	t.sys.m.SetCore(t.t, core)
}

// WaitUntil blocks the thread until pred holds; pred is evaluated with no
// other thread running.
func (t *Thread) WaitUntil(pred func() bool) { t.t.WaitUntil(pred) }

// Sim returns the underlying simulated thread, for integrations that work
// at the machine layer.
func (t *Thread) Sim() *sim.Thread { return t.t }

// Mutex is a lock between simulated threads: nest conflicting atomic
// regions inside critical sections guarded by one (§4.2).
type Mutex struct {
	mu sim.Mutex
}

// Lock blocks t until the mutex is free, then takes it.
func (m *Mutex) Lock(t *Thread) { m.mu.Lock(t.t) }

// Unlock releases the mutex; it panics if t is not the holder.
func (m *Mutex) Unlock(t *Thread) { m.mu.Unlock(t.t) }

// TryLock takes the mutex if free and reports whether it did.
func (m *Mutex) TryLock(t *Thread) bool { return m.mu.TryLock(t.t) }

// lineOf aliases the internal line mapping for the crash-image readers.
func lineOf(addr uint64) arch.LineAddr { return arch.LineOf(addr) }

// scheme constructors, aliased so asap.go stays free of internal imports
// in its construction switch.
func newNP(m *machine.Machine) machine.Scheme       { return schemes.NewNP(m) }
func newHWUndo(m *machine.Machine) machine.Scheme   { return schemes.NewHWUndo(m) }
func newASAPRedo(m *machine.Machine) machine.Scheme { return schemes.NewASAPRedo(m) }
func newHWRedo(m *machine.Machine) machine.Scheme   { return schemes.NewHWRedo(m) }
func newSW(m *machine.Machine, dpoOnly bool) machine.Scheme {
	if dpoOnly {
		return schemes.NewSWDPOOnly(m)
	}
	return schemes.NewSW(m)
}
