// Package queue is the durable work queue behind cmd/asapd: a
// CRC-checksummed append-only journal (the same header-magic +
// checksum-with-field-zeroed discipline as internal/wal), an in-memory
// job state machine rebuilt from the journal on every open, lease-based
// ack/redeliver semantics with capped exponential backoff and a
// max-deliveries dead-letter verdict, and a content-addressed artifact
// store. Every state transition is journaled before it is applied
// (write-ahead), so a daemon killed at any instant — including mid-append
// — restarts into a state the journal can prove: finished jobs stay
// finished exactly once, leased jobs are redelivered, and a torn tail
// record simply never happened.
package queue

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"asap/internal/metrics"
)

// Journal file layout:
//
//	file header (16 bytes):
//	  bytes 0..7   magic "ASAPQJ1\n"
//	  bytes 8..11  format version (little endian), currently 1
//	  bytes 12..15 CRC-32 (IEEE) over bytes 0..11
//
//	record frame (repeated to EOF):
//	  byte  0      record magic 0xA7
//	  byte  1      record type (RecType)
//	  bytes 2..5   payload length (little endian)
//	  bytes 6..5+n payload (JSON-encoded Record)
//	  last 4       CRC-32 (IEEE) over bytes 0..5+n
//
// Replay walks records until EOF or the first invalid frame. Broken
// bytes at the very tail are the expected signature of a crash mid-append
// (a torn record that never committed): they are counted, truncated, and
// replay succeeds. The journal refuses to open only when the file header
// itself is damaged, since then nothing downstream can be trusted.
const (
	fileMagic    = "ASAPQJ1\n"
	fileVersion  = 1
	fileHdrSize  = 16
	recMagic     = 0xA7
	recFrameSize = 6 // magic + type + length, before payload
	recCRCSize   = 4
	// maxPayload bounds one record, so a corrupt length field cannot make
	// replay attempt a multi-gigabyte read.
	maxPayload = 16 << 20
)

// RecType enumerates journal record kinds. The type byte lives in the
// frame, outside the JSON payload, so replay can classify records without
// parsing them first.
type RecType uint8

const (
	// RecEnqueue admits a job: ID and Spec are set.
	RecEnqueue RecType = 1
	// RecLease charges one delivery to a worker: ID, Delivery, Worker,
	// Deadline are set. A job whose last record is a lease is orphaned if
	// the daemon restarts — the worker holding it is gone.
	RecLease RecType = 2
	// RecAck completes a job: ID, Delivery, Hash are set. At most one ack
	// per job can ever be journaled (Ack validates the lease first).
	RecAck RecType = 3
	// RecFail charges a failed delivery: ID, Delivery, Reason are set,
	// plus NotBefore (retry gate) or Final (dead-letter verdict).
	RecFail RecType = 4
	// RecRelease returns a leased job to pending without charging the
	// delivery: ID, Delivery are set. Drain checkpoints use it.
	RecRelease RecType = 5
)

func (t RecType) String() string {
	switch t {
	case RecEnqueue:
		return "enqueue"
	case RecLease:
		return "lease"
	case RecAck:
		return "ack"
	case RecFail:
		return "fail"
	case RecRelease:
		return "release"
	}
	return fmt.Sprintf("rectype(%d)", uint8(t))
}

// Record is one journal entry. Which fields are meaningful depends on
// Type; unused fields are omitted from the encoding.
type Record struct {
	Type     RecType         `json:"-"`
	ID       uint64          `json:"id"`
	Spec     json.RawMessage `json:"spec,omitempty"`
	Delivery int             `json:"delivery,omitempty"`
	Worker   string          `json:"worker,omitempty"`
	// Deadline and NotBefore are Unix nanoseconds on the daemon's clock.
	Deadline  int64  `json:"deadline,omitempty"`
	NotBefore int64  `json:"not_before,omitempty"`
	Hash      string `json:"hash,omitempty"`
	// Manifest is the content address of the job's artifact manifest
	// (RecAck only; empty for manifest-less jobs and pre-manifest
	// journals, which replay unchanged).
	Manifest string `json:"manifest,omitempty"`
	Reason   string `json:"reason,omitempty"`
	Final    bool   `json:"final,omitempty"`
	// At is the wall time of the append, Unix nanoseconds; informational.
	At int64 `json:"at,omitempty"`
}

// Medium is the byte sink a journal appends to. *os.File satisfies it;
// the fault campaign substitutes a medium that dies at a seeded byte
// offset to emulate kill -9 at the storage layer.
type Medium interface {
	io.Writer
	Sync() error
}

// Journal errors.
var (
	ErrJournalClosed = errors.New("queue: journal closed")
	ErrBadFileHeader = errors.New("queue: journal file header invalid")
)

// ReplayReport summarizes one journal open: how much history was
// recovered and whether a torn tail was discarded.
type ReplayReport struct {
	Records int `json:"records"`
	// GoodBytes is the offset of the last valid record's end.
	GoodBytes int64 `json:"good_bytes"`
	// TornBytes counts trailing bytes dropped as a torn append.
	TornBytes int64 `json:"torn_bytes"`
}

// Journal is an append-only record log. Appends are serialized and
// synced to the medium before they return, which is the write-ahead
// guarantee every queue transition relies on.
type Journal struct {
	mu     sync.Mutex
	m      Medium
	f      *os.File // when file-backed; nil for raw-medium journals
	off    int64
	closed bool

	// Service instruments, attached by the daemon after Open; the
	// counters are nil-safe, so a standalone journal stays unmetered.
	metAppends *metrics.Counter
	metBytes   *metrics.Counter
	metSyncs   *metrics.Counter
}

// setMetrics attaches append/byte/sync counters. Call before sharing
// the journal (the daemon does this inside Open).
func (j *Journal) setMetrics(appends, bytes, syncs *metrics.Counter) {
	j.mu.Lock()
	j.metAppends, j.metBytes, j.metSyncs = appends, bytes, syncs
	j.mu.Unlock()
}

// encodeFileHeader builds the 16-byte journal file header.
func encodeFileHeader() []byte {
	buf := make([]byte, fileHdrSize)
	copy(buf, fileMagic)
	binary.LittleEndian.PutUint32(buf[8:], fileVersion)
	binary.LittleEndian.PutUint32(buf[12:], crc32.ChecksumIEEE(buf[:12]))
	return buf
}

// checkFileHeader validates the journal file header.
func checkFileHeader(b []byte) error {
	if len(b) < fileHdrSize {
		return fmt.Errorf("%w: %d header bytes", ErrBadFileHeader, len(b))
	}
	if string(b[:8]) != fileMagic {
		return fmt.Errorf("%w: bad magic", ErrBadFileHeader)
	}
	if v := binary.LittleEndian.Uint32(b[8:]); v != fileVersion {
		return fmt.Errorf("%w: version %d", ErrBadFileHeader, v)
	}
	if got, want := binary.LittleEndian.Uint32(b[12:]), crc32.ChecksumIEEE(b[:12]); got != want {
		return fmt.Errorf("%w: header checksum %08x != %08x", ErrBadFileHeader, got, want)
	}
	return nil
}

// encodeRecord frames one record: magic, type, length, payload, CRC.
func encodeRecord(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("queue: encoding %s record: %w", rec.Type, err)
	}
	buf := make([]byte, recFrameSize+len(payload)+recCRCSize)
	buf[0] = recMagic
	buf[1] = byte(rec.Type)
	binary.LittleEndian.PutUint32(buf[2:], uint32(len(payload)))
	copy(buf[recFrameSize:], payload)
	crc := crc32.ChecksumIEEE(buf[:recFrameSize+len(payload)])
	binary.LittleEndian.PutUint32(buf[recFrameSize+len(payload):], crc)
	return buf, nil
}

// Replay decodes every valid record after the file header. It stops at
// the first invalid frame; bytes from there on count as the torn tail.
// A damaged file header is the only fatal outcome.
func Replay(data []byte) ([]Record, ReplayReport, error) {
	if err := checkFileHeader(data); err != nil {
		return nil, ReplayReport{}, err
	}
	var recs []Record
	off := int64(fileHdrSize)
	total := int64(len(data))
	for off < total {
		rec, end, ok := decodeRecordAt(data, off)
		if !ok {
			break
		}
		recs = append(recs, rec)
		off = end
	}
	return recs, ReplayReport{Records: len(recs), GoodBytes: off, TornBytes: total - off}, nil
}

// decodeRecordAt parses one frame at off; ok is false on any damage.
func decodeRecordAt(data []byte, off int64) (Record, int64, bool) {
	rest := data[off:]
	if len(rest) < recFrameSize+recCRCSize || rest[0] != recMagic {
		return Record{}, 0, false
	}
	n := int64(binary.LittleEndian.Uint32(rest[2:]))
	if n > maxPayload || int64(len(rest)) < recFrameSize+n+recCRCSize {
		return Record{}, 0, false
	}
	body := rest[:recFrameSize+n]
	crc := binary.LittleEndian.Uint32(rest[recFrameSize+n:])
	if crc != crc32.ChecksumIEEE(body) {
		return Record{}, 0, false
	}
	var rec Record
	if err := json.Unmarshal(body[recFrameSize:], &rec); err != nil {
		return Record{}, 0, false
	}
	rec.Type = RecType(rest[1])
	return rec, off + recFrameSize + n + recCRCSize, true
}

// OpenFileJournal opens (or creates) the journal at path, replays its
// history, truncates any torn tail so the file ends on a record
// boundary, and returns the journal positioned for append.
func OpenFileJournal(path string) (*Journal, []Record, ReplayReport, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, ReplayReport{}, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, ReplayReport{}, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, ReplayReport{}, err
	}
	if len(data) == 0 {
		hdr := encodeFileHeader()
		if _, err := f.Write(hdr); err != nil {
			f.Close()
			return nil, nil, ReplayReport{}, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, ReplayReport{}, err
		}
		return &Journal{m: f, f: f, off: fileHdrSize}, nil, ReplayReport{GoodBytes: fileHdrSize}, nil
	}
	recs, rep, err := Replay(data)
	if err != nil {
		f.Close()
		return nil, nil, rep, err
	}
	if rep.TornBytes > 0 {
		if err := f.Truncate(rep.GoodBytes); err != nil {
			f.Close()
			return nil, nil, rep, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, rep, err
		}
	}
	if _, err := f.Seek(rep.GoodBytes, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, rep, err
	}
	return &Journal{m: f, f: f, off: rep.GoodBytes}, recs, rep, nil
}

// OpenMediumJournal replays existing bytes (which may be empty) and
// returns a journal appending to m. The campaign uses it with an
// in-memory medium whose durable prefix survives simulated kills; m
// receives a fresh file header when existing is empty, and nothing
// otherwise (the caller's medium already holds the replayed bytes).
func OpenMediumJournal(m Medium, existing []byte) (*Journal, []Record, ReplayReport, error) {
	if len(existing) == 0 {
		hdr := encodeFileHeader()
		if _, err := m.Write(hdr); err != nil {
			return nil, nil, ReplayReport{}, err
		}
		if err := m.Sync(); err != nil {
			return nil, nil, ReplayReport{}, err
		}
		return &Journal{m: m, off: fileHdrSize}, nil, ReplayReport{GoodBytes: fileHdrSize}, nil
	}
	recs, rep, err := Replay(existing)
	if err != nil {
		return nil, nil, rep, err
	}
	return &Journal{m: m, off: rep.GoodBytes}, recs, rep, nil
}

// Append journals one record: frame, write, sync. It returns only after
// the record is durable on the medium, or an error, in which case the
// caller must not apply the transition (write-ahead discipline). The
// record's At field is stamped by the caller, not here, so replay-driven
// re-appends stay byte-deterministic under a fake clock.
func (j *Journal) Append(rec Record) error {
	buf, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrJournalClosed
	}
	if _, err := j.m.Write(buf); err != nil {
		return fmt.Errorf("queue: journal append: %w", err)
	}
	if err := j.m.Sync(); err != nil {
		return fmt.Errorf("queue: journal sync: %w", err)
	}
	j.off += int64(len(buf))
	j.metAppends.Inc()
	j.metBytes.Add(float64(len(buf)))
	j.metSyncs.Inc()
	return nil
}

// Size returns the current journal size in bytes.
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.off
}

// Close syncs and closes the journal. Further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	err := j.m.Sync()
	if j.f != nil {
		if cerr := j.f.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
