// Package asap is a simulator and library for ASAP — Architecture Support
// for Asynchronous Persistence (ISCA 2022). It models a multi-core system
// with a three-level cache hierarchy and persistent memory behind
// ADR-protected write pending queues, and lets programs run atomically
// durable regions under one of several persistence schemes:
//
//   - ASAP: the paper's contribution — hardware undo logging with
//     asynchronous region commit and dependence tracking
//   - HWUndo / HWRedo: state-of-the-art synchronous-commit hardware
//     logging baselines
//   - SW / SWDPOOnly: software persistence with clwb+fence on the
//     critical path
//   - NP: no persistence enforcement (the performance upper bound)
//
// Programs execute as simulated threads: every Load and Store pays
// simulated time through the cache model and participates in the active
// scheme's logging protocol. Crash injection and recovery are first-class:
// Crash freezes the machine and returns the persistence-domain state, and
// Recover rolls uncommitted regions back in dependence order.
package asap

import (
	"fmt"

	"asap/internal/cache"
	"asap/internal/core"
	"asap/internal/machine"
	"asap/internal/memdev"
	"asap/internal/recovery"
	"asap/internal/sim"
)

// Scheme selects the persistence mechanism for a System.
type Scheme string

// The available persistence schemes.
const (
	SchemeASAP      Scheme = "ASAP"
	SchemeASAPRedo  Scheme = "ASAP-Redo"
	SchemeHWUndo    Scheme = "HWUndo"
	SchemeHWRedo    Scheme = "HWRedo"
	SchemeSW        Scheme = "SW"
	SchemeSWDPOOnly Scheme = "SW-DPOOnly"
	SchemeNP        Scheme = "NP"
)

// Schemes lists every available scheme in the paper's comparison order.
func Schemes() []Scheme {
	return []Scheme{SchemeSW, SchemeHWRedo, SchemeHWUndo, SchemeASAP, SchemeNP}
}

// Config describes the simulated system. The zero value is not valid; use
// DefaultConfig (Table 2) and adjust.
type Config struct {
	// Scheme is the persistence mechanism (default ASAP).
	Scheme Scheme
	// Cores is the number of cores (Table 2: 18).
	Cores int
	// PMLatencyMultiplier scales persistent-memory device latency from the
	// battery-backed-DRAM baseline: the Figure 10 knob (1, 2, 4, 16).
	PMLatencyMultiplier int
	// WPQEntries is the per-channel write pending queue capacity.
	WPQEntries int
	// LHWPQEntries is the per-channel log-header WPQ capacity (§7.4
	// evaluates 16 against the default 128).
	LHWPQEntries int
	// MemoryControllers and ChannelsPerMC shape the fabric.
	MemoryControllers int
	ChannelsPerMC     int

	// ASAP holds engine options (traffic-optimization toggles, structure
	// sizes); ignored by other schemes.
	ASAP core.Options
}

// DefaultConfig returns the paper's Table 2 system running ASAP.
func DefaultConfig() Config {
	mem := memdev.DefaultConfig()
	return Config{
		Scheme:              SchemeASAP,
		Cores:               18,
		PMLatencyMultiplier: 1,
		WPQEntries:          mem.WPQEntries,
		LHWPQEntries:        mem.LHWPQEntries,
		MemoryControllers:   mem.Controllers,
		ChannelsPerMC:       mem.ChannelsPerMC,
		ASAP:                core.DefaultOptions(),
	}
}

// System is one simulated machine plus its persistence scheme.
type System struct {
	cfg    Config
	m      *machine.Machine
	scheme machine.Scheme
	engine *core.Engine // non-nil when Scheme == SchemeASAP
}

// NewSystem builds a system from cfg.
func NewSystem(cfg Config) (*System, error) {
	if cfg.Cores <= 0 {
		cfg.Cores = 18
	}
	if cfg.Scheme == "" {
		cfg.Scheme = SchemeASAP
	}
	mem := memdev.DefaultConfig()
	if cfg.WPQEntries > 0 {
		mem.WPQEntries = cfg.WPQEntries
	}
	if cfg.LHWPQEntries > 0 {
		mem.LHWPQEntries = cfg.LHWPQEntries
	}
	if cfg.MemoryControllers > 0 {
		mem.Controllers = cfg.MemoryControllers
	}
	if cfg.ChannelsPerMC > 0 {
		mem.ChannelsPerMC = cfg.ChannelsPerMC
	}
	if cfg.PMLatencyMultiplier > 0 {
		mem.PMLatencyMult = cfg.PMLatencyMultiplier
	}
	m := machine.New(machine.Config{Cores: cfg.Cores, Mem: mem, Caches: cache.DefaultConfig()})

	sys := &System{cfg: cfg, m: m}
	scheme, engine, err := buildScheme(m, cfg)
	if err != nil {
		return nil, err
	}
	sys.scheme, sys.engine = scheme, engine
	return sys, nil
}

func buildScheme(m *machine.Machine, cfg Config) (machine.Scheme, *core.Engine, error) {
	switch cfg.Scheme {
	case SchemeASAP:
		opt := cfg.ASAP
		if opt.CLListEntries == 0 {
			opt = core.DefaultOptions()
		}
		e := core.NewEngine(m, opt)
		return e, e, nil
	case SchemeASAPRedo:
		return newASAPRedo(m), nil, nil
	case SchemeHWUndo:
		return newHWUndo(m), nil, nil
	case SchemeHWRedo:
		return newHWRedo(m), nil, nil
	case SchemeSW:
		return newSW(m, false), nil, nil
	case SchemeSWDPOOnly:
		return newSW(m, true), nil, nil
	case SchemeNP:
		return newNP(m), nil, nil
	default:
		return nil, nil, fmt.Errorf("asap: unknown scheme %q", cfg.Scheme)
	}
}

// Config returns the system's configuration.
func (s *System) Config() Config { return s.cfg }

// Spawn registers a simulated thread running fn. Call before Run (or from
// inside a running thread to fork workers). The thread is initialized for
// the active scheme (asap_init) before fn runs.
func (s *System) Spawn(name string, fn func(t *Thread)) {
	s.m.K.Spawn(name, func(st *sim.Thread) {
		s.scheme.InitThread(st)
		fn(&Thread{sys: s, t: st})
	})
}

// Run drives the simulation until every thread finishes. It returns a
// *sim.StallError when the machine cannot make forward progress — a
// deadlock among the spawned threads, or a livelock diagnosed by an
// installed watchdog — with the blocked-thread report and queue gauges
// attached. Existing call sites that ignore the result keep compiling;
// robust callers should check it.
func (s *System) Run() error { return s.m.K.Run() }

// Now returns the global simulated time in cycles.
func (s *System) Now() uint64 { return s.m.K.Now() }

// Stats returns a snapshot of every hardware counter (PM writes, LPOs,
// DPOs, drops, stalls, region counts, cache hits, ...).
func (s *System) Stats() map[string]int64 { return s.m.St.Snapshot() }

// Malloc allocates persistent memory outside any thread (setup).
func (s *System) Malloc(size int) uint64 { return s.m.Heap.Alloc(uint64(size), true) }

// MallocVolatile allocates DRAM-backed memory.
func (s *System) MallocVolatile(size int) uint64 { return s.m.Heap.Alloc(uint64(size), false) }

// Crash models a power failure at the current simulated instant (only
// meaningful from inside a running thread or event): ADR flushes the
// WPQs, the persistence-domain structures are captured, and the machine
// halts. Only valid under SchemeASAP, whose Dependence List makes
// recovery possible.
func (s *System) Crash() (*CrashState, error) {
	if s.engine == nil {
		return nil, fmt.Errorf("asap: crash recovery requires SchemeASAP, have %s", s.cfg.Scheme)
	}
	return &CrashState{cs: s.engine.Crash()}, nil
}

// Machine exposes the underlying machine for advanced integrations (the
// experiment harness and the workloads use it).
func (s *System) Machine() *machine.Machine { return s.m }

// SchemeImpl exposes the active scheme implementation.
func (s *System) SchemeImpl() machine.Scheme { return s.scheme }

// Engine returns the ASAP engine, or nil for baseline schemes.
func (s *System) Engine() *core.Engine { return s.engine }

// CrashState is the persistence-domain state surviving a power failure.
type CrashState struct {
	cs *core.CrashState
}

// RecoveryReport summarizes what Recover rolled back.
type RecoveryReport struct {
	// Uncommitted lists the rolled-back regions, newest first.
	Uncommitted int
	// EntriesRestored counts 64 B undo entries applied.
	EntriesRestored int
	// RecordsScanned counts valid log record headers found in the image.
	RecordsScanned int
	// LiveRecords counts log record slots allocated but not freed at the
	// crash — each one validated before the image was touched.
	LiveRecords int
	// Discarded counts corrupt lines classified as stale leftovers of
	// committed regions and ignored.
	Discarded int
}

// RecoverOptions tunes Recover.
type RecoverOptions struct {
	// SkipValidation disables the image integrity pass (checksums,
	// live-record accounting) and silently skips damaged material — the
	// unhardened recovery, kept only so the crash-consistency checker can
	// demonstrate what validation catches. Never set it in real use.
	SkipValidation bool
}

// Recover rolls every uncommitted region back in reverse happens-before
// order, repairing the persisted image in place (§5.5). Before modifying
// anything it validates the image: damaged undo material for an
// uncommitted region yields a *recovery.CorruptionError and the image is
// left untouched.
func (c *CrashState) Recover() (*RecoveryReport, error) {
	return c.RecoverWithOptions(RecoverOptions{})
}

// RecoverWithOptions is Recover with explicit options.
func (c *CrashState) RecoverWithOptions(opt RecoverOptions) (*RecoveryReport, error) {
	rep, err := recovery.RecoverWithOptions(c.cs, recovery.Options{SkipValidation: opt.SkipValidation})
	if err != nil {
		return nil, err
	}
	return &RecoveryReport{
		Uncommitted:     len(rep.Uncommitted),
		EntriesRestored: rep.EntriesRestored,
		RecordsScanned:  rep.RecordsScanned,
		LiveRecords:     rep.LiveRecords,
		Discarded:       len(rep.Discarded),
	}, nil
}

// ReadUint64 reads a little-endian uint64 from the persisted image.
func (c *CrashState) ReadUint64(addr uint64) uint64 {
	line := c.cs.Image.Read(lineOf(addr))
	off := addr % 64
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(line[off+uint64(i)]) << (8 * i)
	}
	return v
}

// ReadBytes reads n bytes from the persisted image.
func (c *CrashState) ReadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; {
		line := c.cs.Image.Read(lineOf(addr + uint64(i)))
		off := (addr + uint64(i)) % 64
		i += copy(out[i:], line[off:])
	}
	return out
}
