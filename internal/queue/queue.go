package queue

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"asap/internal/metrics"
)

// JobState is a job's position in the lease state machine:
//
//	pending --Lease--> leased --Ack-----------------> done
//	   ^                  |
//	   |                  +--Fail (retries left)--> pending (backoff gate)
//	   |                  +--Fail (final)---------> dead
//	   +---Release (uncharged, drain checkpoint)----+
//
// A daemon restart finds jobs still leased in the journal (their workers
// died with the process); recovery expires those orphaned leases as
// charged failures, so a job that keeps killing its worker still
// converges on the dead-letter verdict instead of looping forever.
type JobState string

const (
	StatePending JobState = "pending"
	StateLeased  JobState = "leased"
	StateDone    JobState = "done"
	StateDead    JobState = "dead"
)

// Policy shapes redelivery: lease length, capped exponential backoff,
// and the max-deliveries dead-letter bound.
type Policy struct {
	// MaxDeliveries dead-letters a job after this many charged deliveries
	// (leases that ended in failure or orphanhood). Default 5.
	MaxDeliveries int
	// LeaseTimeout is how long a worker may hold a job before the daemon
	// revokes the lease and redelivers. Default 2 minutes.
	LeaseTimeout time.Duration
	// BackoffBase is the retry gate after the first failed delivery; it
	// doubles per subsequent failure up to BackoffCap. Defaults 250ms/30s.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// RetainTerminal bounds how many terminal (done/dead) jobs a
	// compaction checkpoint carries forward: the newest N survive, older
	// ones are shed from both the journal and the job table (their
	// artifacts remain in the content-addressed store). 0 retains all —
	// compaction then only squashes transition history, never forgets a
	// job.
	RetainTerminal int
}

func (p Policy) withDefaults() Policy {
	if p.MaxDeliveries <= 0 {
		p.MaxDeliveries = 5
	}
	if p.LeaseTimeout <= 0 {
		p.LeaseTimeout = 2 * time.Minute
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = 250 * time.Millisecond
	}
	if p.BackoffCap <= 0 {
		p.BackoffCap = 30 * time.Second
	}
	return p
}

// Backoff returns the retry gate after the given number of charged
// deliveries: base doubled per extra failure, capped.
func (p Policy) Backoff(deliveries int) time.Duration {
	d := p.BackoffBase
	for i := 1; i < deliveries; i++ {
		d *= 2
		if d >= p.BackoffCap {
			return p.BackoffCap
		}
	}
	if d > p.BackoffCap {
		return p.BackoffCap
	}
	return d
}

// Lease is a worker's claim on one delivery of one job. Ack, Fail and
// Release validate (ID, Delivery) against the live lease, so a worker
// whose lease expired — and whose job was redelivered — cannot complete
// or fail the job a second time.
type Lease struct {
	ID       uint64
	Delivery int
	Spec     json.RawMessage
	Worker   string
	Deadline time.Time
}

// JobInfo is an API-facing job snapshot.
type JobInfo struct {
	ID         uint64          `json:"id"`
	State      JobState        `json:"state"`
	Spec       json.RawMessage `json:"spec,omitempty"`
	Deliveries int             `json:"deliveries"`
	Worker     string          `json:"worker,omitempty"`
	Hash       string          `json:"hash,omitempty"`
	Manifest   string          `json:"manifest,omitempty"`
	LastError  string          `json:"last_error,omitempty"`
	NotBefore  time.Time       `json:"not_before,omitempty"`
	Deadline   time.Time       `json:"deadline,omitempty"`
}

// Depths is the queue-depth gauge set.
type Depths struct {
	Pending  int `json:"pending"`
	Eligible int `json:"eligible"` // pending jobs past their backoff gate
	Leased   int `json:"leased"`
	Done     int `json:"done"`
	Dead     int `json:"dead"`
}

// Counter names the queue maintains in its stats set.
const (
	CtrEnqueued    = "queue.enqueued"
	CtrLeased      = "queue.leased"
	CtrAcked       = "queue.acked"
	CtrFailed      = "queue.failed"
	CtrRedelivered = "queue.redelivered"
	CtrExpired     = "queue.expired"
	CtrReleased    = "queue.released"
	CtrDead        = "queue.dead"
	CtrOrphaned    = "queue.orphaned"
	CtrLeaseLost   = "queue.lease_lost"
)

// Queue errors.
var (
	// ErrLeaseLost rejects an Ack/Fail/Release whose lease is no longer
	// live: it expired and the job was redelivered, or the job already
	// completed. This is the double-completion guard.
	ErrLeaseLost = errors.New("queue: lease no longer held")
	ErrClosed    = errors.New("queue: closed")
	// ErrCorrupt means the journal decoded but its record sequence is not
	// a legal state-machine history.
	ErrCorrupt = errors.New("queue: journal history corrupt")
)

// job is the internal mutable job record.
type job struct {
	id         uint64
	spec       json.RawMessage
	state      JobState
	deliveries int
	worker     string
	deadline   time.Time
	notBefore  time.Time
	hash       string
	manifest   string
	lastErr    string
}

// Queue is the journal-backed job table. All methods are safe for
// concurrent use. A nil journal (volatile mode) keeps the same semantics
// minus durability — the fault campaign's negative control, which must
// observably lose jobs across a simulated kill.
type Queue struct {
	mu     sync.Mutex
	j      *Journal // nil in volatile mode
	pol    Policy
	now    func() time.Time
	jobs   map[uint64]*job
	order  []uint64 // insertion order, for deterministic scans and listings
	nextID uint64
	closed bool
	shed   int64 // terminal jobs dropped by checkpoints, cumulative
	ctr    map[string]int64
	met    *metrics.CounterVec // transition counters; nil until attached
	notify chan struct{}
}

// Options configures New beyond the policy.
type Options struct {
	// Journal persists transitions; nil runs volatile (no durability).
	Journal *Journal
	// Clock overrides time.Now, letting tests and the campaign drive
	// lease expiry deterministically.
	Clock func() time.Time
}

// New builds an empty queue.
func New(pol Policy, opt Options) *Queue {
	now := opt.Clock
	if now == nil {
		now = time.Now
	}
	return &Queue{
		j:      opt.Journal,
		pol:    pol.withDefaults(),
		now:    now,
		jobs:   make(map[uint64]*job),
		nextID: 1,
		ctr:    make(map[string]int64),
		notify: make(chan struct{}, 1),
	}
}

// RecoverResult reports what Restore found.
type RecoverResult struct {
	Jobs     int `json:"jobs"`
	Pending  int `json:"pending"`
	Done     int `json:"done"`
	Dead     int `json:"dead"`
	Orphaned int `json:"orphaned"`
}

// Restore rebuilds a queue from replayed journal records and expires
// every orphaned lease (journaling the expiry through j, which must be
// the journal the records came from). It must be called before the
// queue is shared.
func Restore(pol Policy, opt Options, recs []Record) (*Queue, RecoverResult, error) {
	q := New(pol, opt)
	for i, rec := range recs {
		if err := q.apply(rec); err != nil {
			return nil, RecoverResult{}, fmt.Errorf("%w: record %d (%s id=%d): %v",
				ErrCorrupt, i, rec.Type, rec.ID, err)
		}
	}
	var res RecoverResult
	res.Jobs = len(q.order)
	// Orphaned leases: their workers died with the previous process.
	// Charge the delivery (the worker may have died *because* of the job)
	// and either gate a retry or dead-letter, write-ahead as usual.
	for _, id := range q.order {
		jb := q.jobs[id]
		if jb.state != StateLeased {
			continue
		}
		res.Orphaned++
		rec := q.failRecord(jb, "orphaned lease: daemon restart")
		if q.j != nil {
			if err := q.j.Append(rec); err != nil {
				return nil, res, err
			}
		}
		if err := q.apply(rec); err != nil {
			return nil, res, err
		}
		q.bump(CtrOrphaned)
	}
	for _, id := range q.order {
		switch q.jobs[id].state {
		case StatePending:
			res.Pending++
		case StateDone:
			res.Done++
		case StateDead:
			res.Dead++
		}
	}
	return q, res, nil
}

// failRecord builds the RecFail for one charged failed delivery of jb,
// deciding retry-with-backoff versus dead-letter. Callers hold q.mu or
// have exclusive access.
func (q *Queue) failRecord(jb *job, reason string) Record {
	rec := Record{
		Type:     RecFail,
		ID:       jb.id,
		Delivery: jb.deliveries,
		Reason:   reason,
		At:       q.now().UnixNano(),
	}
	if jb.deliveries >= q.pol.MaxDeliveries {
		rec.Final = true
	} else {
		rec.NotBefore = q.now().Add(q.pol.Backoff(jb.deliveries)).UnixNano()
	}
	return rec
}

// apply folds one record into the in-memory state, validating the
// transition. It is the single interpreter used both at replay and —
// after the write-ahead append — at run time, so the live state machine
// and the recovered one cannot drift apart.
func (q *Queue) apply(rec Record) error {
	switch rec.Type {
	case RecEnqueue:
		if _, dup := q.jobs[rec.ID]; dup {
			return fmt.Errorf("duplicate enqueue")
		}
		q.jobs[rec.ID] = &job{id: rec.ID, spec: rec.Spec, state: StatePending}
		q.order = append(q.order, rec.ID)
		if rec.ID >= q.nextID {
			q.nextID = rec.ID + 1
		}
	case RecLease:
		jb := q.jobs[rec.ID]
		if jb == nil || jb.state != StatePending {
			return fmt.Errorf("lease of non-pending job")
		}
		if rec.Delivery != jb.deliveries+1 {
			return fmt.Errorf("lease delivery %d after %d charged", rec.Delivery, jb.deliveries)
		}
		jb.state = StateLeased
		jb.deliveries = rec.Delivery
		jb.worker = rec.Worker
		jb.deadline = time.Unix(0, rec.Deadline)
		jb.notBefore = time.Time{}
	case RecAck:
		jb := q.jobs[rec.ID]
		if jb == nil || jb.state != StateLeased || jb.deliveries != rec.Delivery {
			return fmt.Errorf("ack without matching live lease")
		}
		jb.state = StateDone
		jb.hash = rec.Hash
		jb.manifest = rec.Manifest
		jb.worker = ""
	case RecFail:
		jb := q.jobs[rec.ID]
		if jb == nil || jb.state != StateLeased || jb.deliveries != rec.Delivery {
			return fmt.Errorf("fail without matching live lease")
		}
		jb.lastErr = rec.Reason
		jb.worker = ""
		if rec.Final {
			jb.state = StateDead
		} else {
			jb.state = StatePending
			jb.notBefore = time.Unix(0, rec.NotBefore)
		}
	case RecRelease:
		jb := q.jobs[rec.ID]
		if jb == nil || jb.state != StateLeased || jb.deliveries != rec.Delivery {
			return fmt.Errorf("release without matching live lease")
		}
		jb.state = StatePending
		jb.deliveries-- // uncharged: the delivery never really happened
		jb.worker = ""
		jb.notBefore = time.Time{}
	case RecCheckpoint:
		cp := rec.Checkpoint
		if cp == nil {
			return fmt.Errorf("checkpoint record without state")
		}
		// A checkpoint is a full image: replace the job table. At replay it
		// makes everything before it inert; at run time (applied right
		// after a successful rotation) it is an identity transform except
		// for the terminal jobs the checkpoint shed — dropping them from
		// memory too keeps the live table equal to what a restart rebuilds.
		jobs := make(map[uint64]*job, len(cp.Jobs))
		order := make([]uint64, 0, len(cp.Jobs))
		for _, cj := range cp.Jobs {
			if _, dup := jobs[cj.ID]; dup {
				return fmt.Errorf("duplicate job %d in checkpoint", cj.ID)
			}
			jb := &job{
				id:         cj.ID,
				spec:       cj.Spec,
				state:      cj.State,
				deliveries: cj.Deliveries,
				worker:     cj.Worker,
				hash:       cj.Hash,
				manifest:   cj.Manifest,
				lastErr:    cj.LastError,
			}
			switch cj.State {
			case StatePending, StateLeased, StateDone, StateDead:
			default:
				return fmt.Errorf("job %d in checkpoint has unknown state %q", cj.ID, cj.State)
			}
			if cj.Deadline != 0 {
				jb.deadline = time.Unix(0, cj.Deadline)
			}
			if cj.NotBefore != 0 {
				jb.notBefore = time.Unix(0, cj.NotBefore)
			}
			jobs[cj.ID] = jb
			order = append(order, cj.ID)
		}
		q.jobs, q.order = jobs, order
		if cp.NextID > q.nextID {
			q.nextID = cp.NextID
		}
		q.shed = cp.Shed
	default:
		return fmt.Errorf("unknown record type %d", rec.Type)
	}
	return nil
}

// commit write-aheads rec, then applies it. On journal failure the state
// is untouched and the error is returned — for a daemon whose journal
// medium died (the process is effectively gone) every transition from
// here on fails, which is exactly the semantics of being dead.
func (q *Queue) commit(rec Record) error {
	if q.j != nil {
		if err := q.j.Append(rec); err != nil {
			return err
		}
	}
	if err := q.apply(rec); err != nil {
		// The journal accepted a record the state machine rejects: a bug,
		// not an I/O condition. Surface loudly.
		panic(fmt.Sprintf("queue: committed record does not apply: %v", err))
	}
	q.maybeCompact()
	return nil
}

// maybeCompact rotates the journal when the active segment has crossed
// its size threshold, seeding the new segment with a checkpoint of the
// live state. Rotation failures are absorbed: the old segment keeps
// accepting appends (nothing is lost, the journal is just longer than
// intended) and the next threshold crossing retries. Callers hold q.mu
// — the journal's own lock nests inside it, never the other way.
func (q *Queue) maybeCompact() {
	if q.j == nil || !q.j.ShouldRotate() {
		return
	}
	cp := q.checkpointRecord()
	if err := q.j.Rotate(cp); err != nil {
		return
	}
	if err := q.apply(cp); err != nil {
		panic(fmt.Sprintf("queue: own checkpoint does not apply: %v", err))
	}
}

// checkpointRecord images the live queue into a RecCheckpoint. Under
// Policy.RetainTerminal, the oldest terminal jobs beyond the bound are
// shed (pending and leased jobs are always retained). Callers hold q.mu.
func (q *Queue) checkpointRecord() Record {
	cp := &CheckpointState{NextID: q.nextID, Shed: q.shed}
	shed := 0
	if retain := q.pol.RetainTerminal; retain > 0 {
		terminal := 0
		for _, id := range q.order {
			if st := q.jobs[id].state; st == StateDone || st == StateDead {
				terminal++
			}
		}
		if terminal > retain {
			shed = terminal - retain
		}
	}
	for _, id := range q.order {
		jb := q.jobs[id]
		if shed > 0 && (jb.state == StateDone || jb.state == StateDead) {
			shed--
			cp.Shed++
			continue
		}
		cj := CheckpointJob{
			ID:         jb.id,
			Spec:       jb.spec,
			State:      jb.state,
			Deliveries: jb.deliveries,
			Worker:     jb.worker,
			Hash:       jb.hash,
			Manifest:   jb.manifest,
			LastError:  jb.lastErr,
		}
		if !jb.deadline.IsZero() {
			cj.Deadline = jb.deadline.UnixNano()
		}
		if !jb.notBefore.IsZero() {
			cj.NotBefore = jb.notBefore.UnixNano()
		}
		cp.Jobs = append(cp.Jobs, cj)
	}
	return Record{Type: RecCheckpoint, Checkpoint: cp, At: q.now().UnixNano()}
}

// Shed returns the cumulative count of terminal jobs dropped by
// compaction checkpoints under Policy.RetainTerminal.
func (q *Queue) Shed() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.shed
}

// wake signals one waiting lessee without blocking.
func (q *Queue) wake() {
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// Notify returns the channel pulsed whenever a job may have become
// leasable (enqueue, requeue, expiry). Workers select on it.
func (q *Queue) Notify() <-chan struct{} { return q.notify }

// Journal exposes the backing journal (nil in volatile mode) so the
// daemon can attach instruments and report its size.
func (q *Queue) Journal() *Journal { return q.j }

// setMetrics mirrors the queue's transition counters into a labelled
// metric family. Values already accumulated — recovery bumps orphaned/
// failed/dead before the daemon can attach instruments — are synced in,
// so a post-restart scrape agrees with the recovery report.
func (q *Queue) setMetrics(vec *metrics.CounterVec) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.met = vec
	for name, v := range q.ctr {
		if lbl, ok := transitionLabel[name]; ok {
			vec.With(lbl).Add(float64(v))
		}
	}
}

// bump charges one lifetime counter and its metric mirror. Callers
// hold q.mu.
func (q *Queue) bump(name string) {
	q.ctr[name]++
	if q.met != nil {
		if lbl, ok := transitionLabel[name]; ok {
			q.met.With(lbl).Inc()
		}
	}
}

// Enqueue admits a job and returns its ID.
func (q *Queue) Enqueue(spec json.RawMessage) (uint64, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return 0, ErrClosed
	}
	id := q.nextID
	rec := Record{Type: RecEnqueue, ID: id, Spec: spec, At: q.now().UnixNano()}
	if err := q.commit(rec); err != nil {
		return 0, err
	}
	q.bump(CtrEnqueued)
	q.wake()
	return id, nil
}

// TryLease claims the oldest eligible pending job for worker. When
// nothing is eligible, ok is false and wait is the duration until the
// earliest backoff gate opens (zero when no pending job exists at all).
func (q *Queue) TryLease(worker string) (l *Lease, wait time.Duration, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, 0, ErrClosed
	}
	now := q.now()
	var pick *job
	for _, id := range q.order {
		jb := q.jobs[id]
		if jb.state != StatePending {
			continue
		}
		if jb.notBefore.After(now) {
			if gate := jb.notBefore.Sub(now); wait == 0 || gate < wait {
				wait = gate
			}
			continue
		}
		pick = jb
		break
	}
	if pick == nil {
		return nil, wait, nil
	}
	deadline := now.Add(q.pol.LeaseTimeout)
	rec := Record{
		Type:     RecLease,
		ID:       pick.id,
		Delivery: pick.deliveries + 1,
		Worker:   worker,
		Deadline: deadline.UnixNano(),
		At:       now.UnixNano(),
	}
	if err := q.commit(rec); err != nil {
		return nil, 0, err
	}
	q.bump(CtrLeased)
	if rec.Delivery > 1 {
		q.bump(CtrRedelivered)
	}
	return &Lease{
		ID:       pick.id,
		Delivery: rec.Delivery,
		Spec:     pick.spec,
		Worker:   worker,
		Deadline: deadline,
	}, 0, nil
}

// leaseLive reports whether l is still the live lease on its job.
// Callers hold q.mu.
func (q *Queue) leaseLive(l *Lease) *job {
	jb := q.jobs[l.ID]
	if jb == nil || jb.state != StateLeased || jb.deliveries != l.Delivery {
		return nil
	}
	return jb
}

// Ack completes l's job with the artifact hash and (optionally) the
// content address of its artifact manifest. ErrLeaseLost means the
// lease expired (the job was redelivered) or the job already finished;
// the caller's work must be discarded, never recorded twice.
func (q *Queue) Ack(l *Lease, hash, manifest string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if q.leaseLive(l) == nil {
		q.bump(CtrLeaseLost)
		return ErrLeaseLost
	}
	rec := Record{Type: RecAck, ID: l.ID, Delivery: l.Delivery, Hash: hash, Manifest: manifest, At: q.now().UnixNano()}
	if err := q.commit(rec); err != nil {
		return err
	}
	q.bump(CtrAcked)
	return nil
}

// Fail charges a failed delivery on l's job: retry with backoff while
// deliveries remain, dead-letter otherwise. dead reports the verdict.
func (q *Queue) Fail(l *Lease, reason string) (dead bool, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false, ErrClosed
	}
	jb := q.leaseLive(l)
	if jb == nil {
		q.bump(CtrLeaseLost)
		return false, ErrLeaseLost
	}
	rec := q.failRecord(jb, reason)
	if err := q.commit(rec); err != nil {
		return false, err
	}
	q.bump(CtrFailed)
	if rec.Final {
		q.bump(CtrDead)
	} else {
		q.wake()
	}
	return rec.Final, nil
}

// Release returns l's job to pending without charging the delivery —
// the drain checkpoint: the worker was asked to abandon a healthy job.
func (q *Queue) Release(l *Lease) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if q.leaseLive(l) == nil {
		q.bump(CtrLeaseLost)
		return ErrLeaseLost
	}
	rec := Record{Type: RecRelease, ID: l.ID, Delivery: l.Delivery, At: q.now().UnixNano()}
	if err := q.commit(rec); err != nil {
		return err
	}
	q.bump(CtrReleased)
	q.wake()
	return nil
}

// Extend pushes l's deadline out by one lease timeout — a progress
// heartbeat from a worker that just finished a unit of real work (e.g.
// one experiment of a long sweep). Deadlines are process-local (a
// restart orphans every lease regardless), so extension is memory-only
// and never journaled. ErrLeaseLost means the lease already expired.
func (q *Queue) Extend(l *Lease) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	jb := q.leaseLive(l)
	if jb == nil {
		return ErrLeaseLost
	}
	jb.deadline = q.now().Add(q.pol.LeaseTimeout)
	return nil
}

// ExpiredLease identifies one revoked lease.
type ExpiredLease struct {
	ID       uint64
	Delivery int
	Worker   string
	Dead     bool
}

// ExpireLeases revokes every lease past its deadline, charging the
// delivery (retry with backoff, or dead-letter at the bound). The daemon
// calls it on a ticker and cancels the named workers' job contexts.
func (q *Queue) ExpireLeases() ([]ExpiredLease, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, ErrClosed
	}
	now := q.now()
	var out []ExpiredLease
	for _, id := range q.order {
		jb := q.jobs[id]
		if jb.state != StateLeased || jb.deadline.After(now) {
			continue
		}
		ex := ExpiredLease{ID: jb.id, Delivery: jb.deliveries, Worker: jb.worker}
		rec := q.failRecord(jb, fmt.Sprintf("lease expired (worker %s stalled past deadline)", jb.worker))
		if err := q.commit(rec); err != nil {
			return out, err
		}
		ex.Dead = rec.Final
		q.bump(CtrExpired)
		if rec.Final {
			q.bump(CtrDead)
		}
		out = append(out, ex)
	}
	if len(out) > 0 {
		q.wake()
	}
	return out, nil
}

// Get returns a job snapshot.
func (q *Queue) Get(id uint64) (JobInfo, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	jb, ok := q.jobs[id]
	if !ok {
		return JobInfo{}, false
	}
	return q.info(jb), true
}

// List returns every job in enqueue order.
func (q *Queue) List() []JobInfo {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]JobInfo, 0, len(q.order))
	for _, id := range q.order {
		out = append(out, q.info(q.jobs[id]))
	}
	return out
}

func (q *Queue) info(jb *job) JobInfo {
	return JobInfo{
		ID:         jb.id,
		State:      jb.state,
		Spec:       jb.spec,
		Deliveries: jb.deliveries,
		Worker:     jb.worker,
		Hash:       jb.hash,
		Manifest:   jb.manifest,
		LastError:  jb.lastErr,
		NotBefore:  jb.notBefore,
		Deadline:   jb.deadline,
	}
}

// Depths returns the state-population gauges.
func (q *Queue) Depths() Depths {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	var d Depths
	for _, jb := range q.jobs {
		switch jb.state {
		case StatePending:
			d.Pending++
			if !jb.notBefore.After(now) {
				d.Eligible++
			}
		case StateLeased:
			d.Leased++
		case StateDone:
			d.Done++
		case StateDead:
			d.Dead++
		}
	}
	return d
}

// Counters snapshots the queue's lifetime counters, sorted by name in
// the returned slice order via Names.
func (q *Queue) Counters() map[string]int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[string]int64, len(q.ctr))
	for k, v := range q.ctr {
		out[k] = v
	}
	return out
}

// CounterNames returns the touched counter names, sorted.
func (q *Queue) CounterNames() []string {
	q.mu.Lock()
	defer q.mu.Unlock()
	names := make([]string, 0, len(q.ctr))
	for k := range q.ctr {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Idle reports whether no job is pending or leased — the queue has
// nothing left to do until another enqueue.
func (q *Queue) Idle() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, jb := range q.jobs {
		if jb.state == StatePending || jb.state == StateLeased {
			return false
		}
	}
	return true
}

// Close marks the queue closed (operations fail) and closes the journal.
func (q *Queue) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil
	}
	q.closed = true
	close(q.notify)
	if q.j != nil {
		return q.j.Close()
	}
	return nil
}
