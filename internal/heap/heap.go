// Package heap provides the simulated byte-addressable address space that
// workloads allocate from and the persistence engines snapshot line
// payloads from. It is the architectural memory: always-current values,
// independent of what has actually persisted (that is memdev.Image's job).
//
// The address space has two windows: a persistent window (asap_malloc) and
// a volatile window. A line's window determines the page-table persistence
// bit that seeds the cache PBit (§4.6).
package heap

import (
	"encoding/binary"
	"fmt"

	"asap/internal/arch"
)

const (
	// PersistentBase is the first byte of the persistent window.
	PersistentBase uint64 = 0x1000_0000
	// VolatileBase is the first byte of the volatile window (and the end
	// of the persistent window).
	VolatileBase uint64 = 0x8000_0000

	pageSize = 4096
)

// Heap is the simulated memory plus a simple allocator per window.
// Persistent allocations are 64 B aligned, matching PM allocators and
// keeping distinct objects off shared cache lines (the paper notes false
// sharing produces spurious dependences, §4.6.3).
type Heap struct {
	// Pages live in two dense per-window tables indexed by page number
	// (both windows are bump-allocated from their base, so the index
	// space is compact): a shift+index instead of a map probe on every
	// read and write. Entries allocate lazily on first touch; npages
	// counts allocated pages across both windows.
	persistentPages [][]byte
	volatilePages   [][]byte
	npages          int

	nextPersistent uint64
	nextVolatile   uint64
	sizes          map[uint64]uint64
	freeLists      map[uint64][]uint64 // size class -> addresses (persistent only)
}

// New returns an empty heap.
func New() *Heap {
	return &Heap{
		nextPersistent: PersistentBase,
		nextVolatile:   VolatileBase,
		sizes:          make(map[uint64]uint64),
		freeLists:      make(map[uint64][]uint64),
	}
}

// IsPersistentLine reports whether a line sits in the persistent window:
// the page-table bit of §4.6.
func (h *Heap) IsPersistentLine(line arch.LineAddr) bool {
	return uint64(line) >= PersistentBase && uint64(line) < VolatileBase
}

// IsPersistentAddr reports whether a byte address is persistent.
func (h *Heap) IsPersistentAddr(addr uint64) bool {
	return addr >= PersistentBase && addr < VolatileBase
}

func roundUp(n, to uint64) uint64 { return (n + to - 1) &^ (to - 1) }

// Alloc reserves size bytes in the requested window and returns the base
// address. Persistent allocations are line-aligned and recycled through
// size-class free lists (asap_malloc / asap_free).
func (h *Heap) Alloc(size uint64, persistent bool) uint64 {
	if size == 0 {
		size = 1
	}
	if persistent {
		class := roundUp(size, arch.LineSize)
		if fl := h.freeLists[class]; len(fl) > 0 {
			// Recycled memory keeps its previous contents (malloc
			// semantics): zeroing here would be an unlogged write to
			// persistent memory, invisible to WAL and fatal to recovery.
			addr := fl[len(fl)-1]
			h.freeLists[class] = fl[:len(fl)-1]
			h.sizes[addr] = class
			return addr
		}
		addr := h.nextPersistent
		h.nextPersistent += class
		if h.nextPersistent > VolatileBase {
			panic("heap: persistent window exhausted")
		}
		h.sizes[addr] = class
		return addr
	}
	class := roundUp(size, 8)
	addr := h.nextVolatile
	h.nextVolatile += class
	h.sizes[addr] = class
	return addr
}

// Free returns a persistent allocation to its size-class free list
// (asap_free). Freeing a volatile or unknown address is a no-op beyond
// forgetting its size.
func (h *Heap) Free(addr uint64) {
	size, ok := h.sizes[addr]
	if !ok {
		return
	}
	delete(h.sizes, addr)
	if h.IsPersistentAddr(addr) {
		h.freeLists[size] = append(h.freeLists[size], addr)
	}
}

// SizeOf returns the allocated size class of addr (0 if unknown).
func (h *Heap) SizeOf(addr uint64) uint64 { return h.sizes[addr] }

func (h *Heap) page(addr uint64) []byte {
	var table *[][]byte
	var idx uint64
	if addr >= VolatileBase {
		table, idx = &h.volatilePages, (addr-VolatileBase)/pageSize
	} else if addr >= PersistentBase {
		table, idx = &h.persistentPages, (addr-PersistentBase)/pageSize
	} else {
		panic(fmt.Sprintf("heap: access to unmapped address %#x below the persistent window", addr))
	}
	for idx >= uint64(len(*table)) {
		*table = append(*table, nil)
	}
	p := (*table)[idx]
	if p == nil {
		p = make([]byte, pageSize)
		(*table)[idx] = p
		h.npages++
	}
	return p
}

// Write stores data at addr.
func (h *Heap) Write(addr uint64, data []byte) {
	for len(data) > 0 {
		p := h.page(addr)
		off := addr % pageSize
		n := copy(p[off:], data)
		data = data[n:]
		addr += uint64(n)
	}
}

// Read fills buf from addr.
func (h *Heap) Read(addr uint64, buf []byte) {
	for len(buf) > 0 {
		p := h.page(addr)
		off := addr % pageSize
		n := copy(buf, p[off:])
		buf = buf[n:]
		addr += uint64(n)
	}
}

// ReadLine returns a copy of the 64 B line containing line's address:
// the payload source for LPOs, DPOs and evictions.
func (h *Heap) ReadLine(line arch.LineAddr) []byte {
	buf := make([]byte, arch.LineSize)
	h.Read(uint64(line), buf)
	return buf
}

// ReadLineInto copies the 64 B line at line's address into dst, the
// allocation-free form of ReadLine for callers that own a line buffer
// (pooled persist entries fill their payload in place).
func (h *Heap) ReadLineInto(line arch.LineAddr, dst []byte) {
	h.Read(uint64(line), dst[:arch.LineSize])
}

// WriteU64 stores a little-endian uint64 at addr.
func (h *Heap) WriteU64(addr uint64, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	h.Write(addr, b[:])
}

// ReadU64 loads a little-endian uint64 from addr.
func (h *Heap) ReadU64(addr uint64) uint64 {
	var b [8]byte
	h.Read(addr, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// String summarizes allocator state.
func (h *Heap) String() string {
	return fmt.Sprintf("heap{persistent %d B, volatile %d B, pages %d}",
		h.nextPersistent-PersistentBase, h.nextVolatile-VolatileBase, h.npages)
}

// Reserve advances the persistent bump pointer past addr, so a heap
// rebuilt from a recovered image never re-allocates live lines.
func (h *Heap) Reserve(addr uint64) {
	if addr >= h.nextPersistent && addr < VolatileBase {
		h.nextPersistent = roundUp(addr+1, arch.LineSize)
	}
}
