// Command asaprecover demonstrates ASAP's crash recovery (§5.5): it runs
// a multi-threaded counter-and-marker workload, injects a power failure at
// the requested cycle, recovers the persisted image, and verifies that the
// result is an exact prefix of the execution — every committed region's
// writes present, every uncommitted region's writes rolled back, in
// dependence order.
//
// With -mix, a seeded persistence-domain fault mixture fires during the
// crash flush (dropped WPQ entries, torn persists, lost LH-WPQ headers —
// the same injector the torture and crash-consistency harnesses use).
// When validation then refuses to repair the image, the command prints
// the structured corruption classification — class, severity, damaged
// line, owning region — and exits with code 3, so scripts can tell
// "recovery correctly refused" from an ordinary failure.
//
// Exit codes: 0 recovered and verified, 1 failure (broken invariant or
// harness error), 2 usage, 3 recovery refused on a corrupt image.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"asap"
	"asap/internal/arch"
	"asap/internal/faults"
	"asap/internal/recovery"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("asaprecover", flag.ContinueOnError)
	fs.SetOutput(stderr)
	crashAt := fs.Uint64("crash", 8000, "crash injection cycle")
	threads := fs.Int("threads", 3, "worker threads")
	incs := fs.Int("incs", 10, "increments per thread")
	save := fs.String("save", "", "write the crash state to this file instead of recovering")
	load := fs.String("load", "", "recover a crash state previously written with -save")
	mixStr := fs.String("mix", "", "crash-time fault mixture, e.g. drop=0.5,lhdrop=1 (asaptorture syntax)")
	faultSeed := fs.Int64("fault-seed", 1, "seed for the -mix fault decisions")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *load != "" {
		return recoverFromFile(*load, stdout, stderr)
	}

	var inj *faults.Injector
	if *mixStr != "" {
		mix, err := faults.ParseMix(*mixStr)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		inj = faults.New(*faultSeed, mix)
	}

	cfg := asap.DefaultConfig()
	cfg.Cores = 4
	cfg.MemoryControllers, cfg.ChannelsPerMC = 1, 2
	cfg.WPQEntries = 4
	cfg.PMLatencyMultiplier = 16 // slow PM keeps regions in flight
	sys, err := asap.NewSystem(cfg)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if inj != nil {
		sys.Machine().Fabric.SetFaultInjector(inj)
	}

	counter := sys.Malloc(64)
	maxInc := *threads * *incs
	markers := sys.Malloc(64 * (maxInc + 1))
	var mu asap.Mutex
	var crash *asap.CrashState

	doCrash := func() {
		// Scope the fault decisions to the uncommitted regions, exactly
		// like the crash-consistency harness: recovery owes nothing for
		// committed data the media lost.
		if inj != nil {
			inj.SetScope(sys.Engine().UncommittedRIDs())
		}
		crash, _ = sys.Crash()
	}

	for w := 0; w < *threads; w++ {
		sys.Spawn("worker", func(t *asap.Thread) {
			for i := 0; i < *incs; i++ {
				if crash != nil {
					return
				}
				mu.Lock(t)
				t.Begin()
				v := t.LoadUint64(counter) + 1
				t.StoreUint64(counter, v)
				t.StoreUint64(markers+64*v, v)
				t.End()
				mu.Unlock(t)
				t.Compute(25)
				if t.Now() >= *crashAt && crash == nil {
					doCrash()
					return
				}
			}
			t.Drain()
		})
	}
	sys.Run()

	if crash == nil {
		fmt.Fprintln(stdout, "run completed before the crash point; re-run with a smaller -crash")
		doCrash()
	}

	fmt.Fprintf(stdout, "crashed at cycle %d\n", sys.Now())
	if inj != nil {
		for _, ev := range inj.Events() {
			fmt.Fprintf(stdout, "  fault: %s\n", ev)
		}
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := crash.Save(f); err != nil {
			f.Close()
			fmt.Fprintln(stderr, err)
			return 1
		}
		f.Close()
		fmt.Fprintf(stdout, "crash state saved to %s; recover with -load %s\n", *save, *save)
		return 0
	}
	rep, err := crash.Recover()
	if err != nil {
		return reportRecoveryError(err, stderr)
	}
	fmt.Fprintf(stdout, "recovery: %d uncommitted regions rolled back, %d undo entries applied\n",
		rep.Uncommitted, rep.EntriesRestored)

	c := crash.ReadUint64(counter)
	fmt.Fprintf(stdout, "recovered counter = %d of %d increments\n", c, maxInc)
	ok := true
	for v := uint64(1); v <= uint64(maxInc); v++ {
		got := crash.ReadUint64(markers + 64*v)
		if v <= c && got != v {
			fmt.Fprintf(stdout, "  VIOLATION: marker[%d] = %d, want %d\n", v, got, v)
			ok = false
		}
		if v > c && got != 0 {
			fmt.Fprintf(stdout, "  VIOLATION: marker[%d] = %d should be rolled back\n", v, got)
			ok = false
		}
	}
	if !ok {
		return 1
	}
	fmt.Fprintln(stdout, "state is an exact consistent prefix: atomic durability held")
	return 0
}

// reportRecoveryError prints the structured corruption classification when
// recovery refused to repair the image, and maps the outcome to an exit
// code: 3 for a diagnosed refusal, 1 for anything else.
func reportRecoveryError(err error, stderr io.Writer) int {
	var ce *recovery.CorruptionError
	if !errors.As(err, &ce) {
		fmt.Fprintln(stderr, "recovery failed:", err)
		return 1
	}
	fmt.Fprintf(stderr, "recovery refused: %d unrecoverable finding(s); the image was left untouched\n", len(ce.Fatal))
	for _, c := range ce.Fatal {
		fmt.Fprintf(stderr, "  %-15s %-12s line %#x", c.Class, c.Severity, uint64(c.Line))
		if c.RID != arch.NoRID {
			fmt.Fprintf(stderr, " region %s", c.RID)
		}
		if c.Reason != "" {
			fmt.Fprintf(stderr, ": %s", c.Reason)
		}
		fmt.Fprintln(stderr)
	}
	return 3
}

// recoverFromFile loads a saved crash state — as a fresh process after the
// power failure would — and repairs it.
func recoverFromFile(path string, stdout, stderr io.Writer) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer f.Close()
	crash, err := asap.LoadCrashState(f)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	rep, err := crash.Recover()
	if err != nil {
		return reportRecoveryError(err, stderr)
	}
	fmt.Fprintf(stdout, "recovered from %s: %d uncommitted regions rolled back, %d undo entries applied\n",
		path, rep.Uncommitted, rep.EntriesRestored)
	return 0
}
