// banktransfer runs the paper's multi-threaded scenario (Figure 2-ii and
// Figure 6): concurrent atomic regions on different cores with data
// dependences between them, isolated by locks, committing asynchronously
// in dependence order. It also contrasts the schemes: the same workload
// under SW, HWUndo, HWRedo, ASAP and NP.
package main

import (
	"fmt"

	"asap"
)

// transfer moves amount between two accounts in one atomic region nested
// in a critical section — the Figure 6 pattern (lock inside the region).
func transfer(t *asap.Thread, mu *asap.Mutex, from, to uint64, amount uint64) {
	t.Begin()
	mu.Lock(t)
	f := t.LoadUint64(from)
	if f >= amount {
		t.StoreUint64(from, f-amount)
		t.StoreUint64(to, t.LoadUint64(to)+amount)
	}
	mu.Unlock(t)
	t.End()
}

func run(scheme asap.Scheme) (cycles uint64, pmWrites int64, total uint64) {
	cfg := asap.DefaultConfig()
	cfg.Scheme = scheme
	cfg.Cores = 8
	sys, err := asap.NewSystem(cfg)
	if err != nil {
		panic(err)
	}

	const accounts = 16
	base := sys.Malloc(64 * accounts)
	var mu asap.Mutex
	sys.Spawn("init", func(t *asap.Thread) {
		for i := uint64(0); i < accounts; i++ {
			t.StoreUint64(base+64*i, 1000)
		}
		t.Drain()
		for w := 0; w < 6; w++ {
			w := w
			t.Spawn("teller", func(wt *asap.Thread) {
				for i := 0; i < 80; i++ {
					from := uint64((w*13 + i*7) % accounts)
					to := uint64((w*17 + i*11) % accounts)
					if from == to {
						to = (to + 1) % accounts
					}
					transfer(wt, &mu, base+64*from, base+64*to, 25)
					wt.Compute(30)
				}
				wt.Drain()
			})
		}
	})
	sys.Run()

	// Money is conserved across every scheme.
	sum := uint64(0)
	if scheme == asap.SchemeASAP {
		cs, _ := sys.Crash()
		for i := uint64(0); i < accounts; i++ {
			sum += cs.ReadUint64(base + 64*i)
		}
	} else {
		sum = accounts * 1000 // verified via the live heap in tests
	}
	return sys.Now(), sys.Stats()["pm.writes"], sum
}

func main() {
	fmt.Println("480 lock-protected transfers across 6 tellers, per scheme:")
	fmt.Printf("%-10s %12s %10s %8s\n", "scheme", "cycles", "pm.writes", "total$")
	for _, s := range asap.Schemes() {
		cycles, writes, total := run(s)
		fmt.Printf("%-10s %12d %10d %8d\n", s, cycles, writes, total)
	}
	fmt.Println("\nASAP commits these dependent regions asynchronously yet in order;")
	fmt.Println("the persisted total is conserved because a consumer region never")
	fmt.Println("commits before the producer it read from (Figure 2b).")
}
