package core

import (
	"testing"

	"asap/internal/arch"
	"asap/internal/sim"
	"asap/internal/trace"
)

// TestTraceOrderingSingleRegion pins the protocol's event order for one
// region on one line: begin -> LPO issue -> LPO accept -> DPO issue ->
// DPO accept -> commit, with the region end somewhere after the LPO issue.
func TestTraceOrderingSingleRegion(t *testing.T) {
	m, e := testRig(DefaultOptions(), nil)
	buf := trace.NewBuffer(64)
	e.SetTrace(buf)
	addr := m.Heap.Alloc(64, true)
	run(m, e, func(th *sim.Thread) {
		e.Begin(th)
		storeU64(e, th, addr, 1)
		e.End(th)
	})

	rid := arch.MakeRID(0, 1)
	var order []trace.Kind
	for _, ev := range buf.OfRegion(rid) {
		order = append(order, ev.Kind)
	}
	pos := func(k trace.Kind) int {
		for i, got := range order {
			if got == k {
				return i
			}
		}
		t.Fatalf("event %v missing from trace: %v", k, order)
		return -1
	}
	if !(pos(trace.RegionBegin) < pos(trace.LPOIssue) &&
		pos(trace.LPOIssue) < pos(trace.LPOAccept) &&
		pos(trace.LPOAccept) < pos(trace.DPOIssue) &&
		pos(trace.DPOIssue) < pos(trace.DPOAccept) &&
		pos(trace.DPOAccept) < pos(trace.RegionCommit)) {
		t.Fatalf("protocol order violated: %v", order)
	}
	if pos(trace.RegionEnd) > pos(trace.RegionCommit) {
		t.Fatalf("asynchronous commit: End must precede commit: %v", order)
	}
}

func TestTraceCapturesDependences(t *testing.T) {
	m, e := testRig(DefaultOptions(), nil)
	buf := trace.NewBuffer(256)
	e.SetTrace(buf)
	a := m.Heap.Alloc(64, true)
	run(m, e, func(th *sim.Thread) {
		for i := 0; i < 3; i++ {
			e.Begin(th)
			storeU64(e, th, a, uint64(i))
			e.End(th)
		}
	})
	deps := buf.Filter(trace.DepAdd)
	if len(deps) == 0 {
		t.Skip("regions committed before successors began; no control deps captured")
	}
	for _, d := range deps {
		if arch.RID(d.Aux) >= d.RID {
			t.Fatalf("dependence must point backwards: %v", d)
		}
	}
}

func TestTraceOffByDefault(t *testing.T) {
	m, e := testRig(DefaultOptions(), nil)
	if e.Trace() != nil {
		t.Fatal("trace attached by default")
	}
	addr := m.Heap.Alloc(64, true)
	run(m, e, func(th *sim.Thread) {
		e.Begin(th)
		storeU64(e, th, addr, 1)
		e.End(th)
	})
	// No panic without a buffer is the assertion.
}
