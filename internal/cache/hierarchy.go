package cache

import (
	"asap/internal/arch"
	"asap/internal/memdev"
	"asap/internal/obs"
	"asap/internal/sim"
	"asap/internal/stats"
)

// EvictInfo describes a persistent line leaving the LLC, handed to the
// engine so it can issue the PM writeback and spill the OwnerRID (§5.3).
type EvictInfo struct {
	Line  arch.LineAddr
	Dirty bool
	Meta  *Meta
}

// Hierarchy is the full cache system: private L1/L2 per core, a shared
// inclusive L3, and the tag-extension table.
type Hierarchy struct {
	cfg    Config
	st     *stats.Set
	fabric *memdev.Fabric
	cores  int
	l1, l2 []*level
	l3     *level
	table  *Table

	// onLLCEvict is called for every persistent line evicted from the L3
	// (dirty or clean); nil-safe. Dirty non-persistent lines are written
	// back to DRAM internally.
	onLLCEvict func(EvictInfo)
	// onFill is called when a persistent line enters the L3 from memory,
	// letting the engine reload a spilled OwnerRID (§5.3); nil-safe.
	onFill func(arch.LineAddr, *Meta)

	// prof attributes pinned-set stalls; nil when profiling is off.
	prof *obs.Profiler
}

// NewHierarchy builds the hierarchy for the given core count. isPersistent
// is the page-table persistence bit.
func NewHierarchy(st *stats.Set, fabric *memdev.Fabric, cores int, cfg Config, isPersistent func(arch.LineAddr) bool) *Hierarchy {
	h := &Hierarchy{
		cfg:    cfg,
		st:     st,
		fabric: fabric,
		cores:  cores,
		l3:     newLevel(cfg.L3),
		table:  NewTable(isPersistent),
	}
	for i := 0; i < cores; i++ {
		h.l1 = append(h.l1, newLevel(cfg.L1))
		h.l2 = append(h.l2, newLevel(cfg.L2))
	}
	return h
}

// SetEvictHook installs the engine's LLC-eviction callback.
func (h *Hierarchy) SetEvictHook(fn func(EvictInfo)) { h.onLLCEvict = fn }

// SetFillHook installs the engine's memory-fill callback.
func (h *Hierarchy) SetFillHook(fn func(arch.LineAddr, *Meta)) { h.onFill = fn }

// SetProfiler attaches a stall-attribution profiler (nil to detach).
func (h *Hierarchy) SetProfiler(p *obs.Profiler) { h.prof = p }

// Table returns the tag-extension table.
func (h *Hierarchy) Table() *Table { return h.table }

func (h *Hierarchy) pinned(line arch.LineAddr) bool {
	m := h.table.Peek(line)
	return m != nil && m.Locked()
}

// CanAccess reports whether an access by core to line could allocate all
// the slots it needs right now (no set is fully pinned by LockBits).
func (h *Hierarchy) CanAccess(core int, line arch.LineAddr) bool {
	if h.l1[core].lookup(line) == nil && h.l1[core].victim(line, h.pinned) == nil {
		return false
	}
	if h.l2[core].lookup(line) == nil && h.l2[core].victim(line, h.pinned) == nil {
		return false
	}
	if h.l3.lookup(line) == nil && h.l3.victim(line, h.pinned) == nil {
		return false
	}
	return true
}

// Access performs one load or store by core to line and returns the hit
// latency in cycles. ok is false — with no state changed — when a needed
// set is fully pinned by LockBits; the caller stalls and retries.
func (h *Hierarchy) Access(core int, line arch.LineAddr, write bool) (latency uint64, ok bool) {
	if !h.CanAccess(core, line) {
		return 0, false
	}
	m := h.table.Get(line)

	latency = h.cfg.L1.Latency
	if s := h.l1[core].lookup(line); s != nil {
		h.st.Inc(stats.L1Hits)
		h.l1[core].touch(s)
		if write {
			s.dirty = true
			h.invalidateOthers(core, m)
		}
		return latency, true
	}
	h.st.Inc(stats.L1Misses)

	switch {
	case h.l2[core].lookup(line) != nil:
		h.st.Inc(stats.L2Hits)
		latency = h.cfg.L2.Latency
	case h.l3.lookup(line) != nil:
		h.st.Inc(stats.L2Misses)
		h.st.Inc(stats.L3Hits)
		h.l3.touch(h.l3.lookup(line))
		latency = h.cfg.L3.Latency
	default:
		h.st.Inc(stats.L2Misses)
		h.st.Inc(stats.L3Misses)
		latency = h.cfg.L3.Latency + h.fabric.ReadLatency(line, m.PBit)
		h.fillL3(line)
		if m.PBit && h.onFill != nil {
			h.onFill(line, m)
		}
	}
	h.fillL2(core, line)
	s := h.fillL1(core, line)
	if write {
		s.dirty = true
		h.invalidateOthers(core, m)
	}
	m.holders |= 1 << uint(core)
	return latency, true
}

// fillL1 installs line into core's L1 (evicting the victim down into L2)
// and returns its slot.
func (h *Hierarchy) fillL1(core int, line arch.LineAddr) *slot {
	l := h.l1[core]
	if s := l.lookup(line); s != nil {
		l.touch(s)
		return s
	}
	v := l.victim(line, h.pinned)
	if v.valid {
		// Inclusive hierarchy: the victim is in L2; merge dirtiness there.
		if s2 := h.l2[core].lookup(v.line); s2 != nil {
			s2.dirty = s2.dirty || v.dirty
		}
	}
	l.install(v, line, false)
	return v
}

func (h *Hierarchy) fillL2(core int, line arch.LineAddr) {
	l := h.l2[core]
	if s := l.lookup(line); s != nil {
		l.touch(s)
		return
	}
	v := l.victim(line, h.pinned)
	if v.valid {
		h.evictFromPrivate(core, v.line, v.dirty, 1) // drop L1 copy, merge into L3
	}
	l.install(v, line, false)
}

func (h *Hierarchy) fillL3(line arch.LineAddr) {
	if s := h.l3.lookup(line); s != nil {
		h.l3.touch(s)
		return
	}
	v := h.l3.victim(line, h.pinned)
	if v.valid {
		h.evictFromLLC(v.line, v.dirty)
	}
	h.l3.install(v, line, false)
}

// evictFromPrivate removes line from one core's private caches down to the
// given depth (1 = L1 only) merging dirtiness into L3, updating holders.
func (h *Hierarchy) evictFromPrivate(core int, line arch.LineAddr, dirty bool, depth int) {
	if p, d := h.l1[core].invalidate(line); p {
		dirty = dirty || d
	}
	if depth > 1 {
		if p, d := h.l2[core].invalidate(line); p {
			dirty = dirty || d
		}
	}
	if h.l2[core].lookup(line) == nil {
		if m := h.table.Peek(line); m != nil {
			m.holders &^= 1 << uint(core)
		}
	}
	if dirty {
		if s3 := h.l3.lookup(line); s3 != nil {
			s3.dirty = true
		}
	}
}

// evictFromLLC removes line from the whole hierarchy (back-invalidation)
// and hands it to memory: persistent lines go to the engine hook, dirty
// volatile lines to DRAM.
func (h *Hierarchy) evictFromLLC(line arch.LineAddr, dirty bool) {
	m := h.table.Get(line)
	for core := 0; core < h.cores; core++ {
		if m.holders&(1<<uint(core)) == 0 {
			continue
		}
		if p, d := h.l1[core].invalidate(line); p {
			dirty = dirty || d
		}
		if p, d := h.l2[core].invalidate(line); p {
			dirty = dirty || d
		}
	}
	m.holders = 0
	h.st.Inc(stats.Evictions)
	if m.PBit {
		if h.onLLCEvict != nil {
			h.onLLCEvict(EvictInfo{Line: line, Dirty: dirty, Meta: m})
		}
		return
	}
	if dirty {
		h.fabric.WriteBackDRAM()
	}
}

// invalidateOthers removes every other core's private copies of m's line
// when one core writes it (write-invalidate coherence), merging dirtiness
// into the L3.
func (h *Hierarchy) invalidateOthers(core int, m *Meta) {
	for other := 0; other < h.cores; other++ {
		if other == core || m.holders&(1<<uint(other)) == 0 {
			continue
		}
		dirty := false
		if p, d := h.l1[other].invalidate(m.line); p {
			dirty = dirty || d
		}
		if p, d := h.l2[other].invalidate(m.line); p {
			dirty = dirty || d
		}
		if dirty {
			if s3 := h.l3.lookup(m.line); s3 != nil {
				s3.dirty = true
			}
		}
		m.holders &^= 1 << uint(other)
	}
}

// MarkClean clears the dirty bit of line everywhere: called when a DPO has
// persisted the line's current content in place.
func (h *Hierarchy) MarkClean(line arch.LineAddr) {
	for core := 0; core < h.cores; core++ {
		if s := h.l1[core].lookup(line); s != nil {
			s.dirty = false
		}
		if s := h.l2[core].lookup(line); s != nil {
			s.dirty = false
		}
	}
	if s := h.l3.lookup(line); s != nil {
		s.dirty = false
	}
}

// Present reports whether line is anywhere in the hierarchy.
func (h *Hierarchy) Present(line arch.LineAddr) bool {
	return h.l3.lookup(line) != nil
}

// AccessBlocking is Access plus the stall path: if a needed set is fully
// pinned, the thread waits in simulated time until a LockBit clears.
func (h *Hierarchy) AccessBlocking(t *sim.Thread, core int, line arch.LineAddr, write bool) uint64 {
	for {
		lat, ok := h.Access(core, line, write)
		if ok {
			return lat
		}
		h.prof.Enter(t, obs.LockedSet)
		t.WaitUntil(func() bool { return h.CanAccess(core, line) })
		h.prof.Exit(t)
	}
}
