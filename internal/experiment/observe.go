package experiment

import (
	"fmt"

	"asap/internal/core"
	"asap/internal/machine"
	"asap/internal/obs"
	"asap/internal/report"
	"asap/internal/workload"
)

// WireGauges registers the standard occupancy gauges on rec: per-channel
// WPQ depth, arrival-queue backlog and LH-WPQ occupancy, plus — when s is
// the ASAP engine — the on-chip structure populations (live CL List and
// Dependence List entries, uncommitted regions, commit backlog) and the
// live undo-log bytes. Gauge closures only read state, so sampling never
// perturbs the run.
func WireGauges(rec *obs.Recorder, m *machine.Machine, s machine.Scheme) {
	for i, ch := range m.Fabric.Channels() {
		ch := ch
		rec.AddGauge(fmt.Sprintf("wpq%d", i), func() float64 { return float64(ch.Occupancy()) })
		rec.AddGauge(fmt.Sprintf("wpq%d.waiting", i), func() float64 { return float64(ch.Waiters()) })
		rec.AddGauge(fmt.Sprintf("lhwpq%d", i), func() float64 { return float64(ch.LH().Len()) })
	}
	if eng, ok := s.(*core.Engine); ok {
		rec.AddGauge("regions.active", func() float64 { return float64(eng.ActiveRegions()) })
		rec.AddGauge("deplist.live", func() float64 { return float64(eng.DepEntriesLive()) })
		rec.AddGauge("cllist.live", func() float64 { return float64(eng.CLEntriesLive()) })
		rec.AddGauge("log.bytes", func() float64 { return float64(eng.LogBytesLive()) })
		rec.AddGauge("commit.backlog", func() float64 { return float64(eng.CommitBacklog()) })
	}
}

// CycleAccounting runs bench once per Figure 7 scheme with a profiler
// attached and reduces the per-thread bucket charges to the percent-of-
// cycles table: where each scheme's simulated time actually goes. Every
// profiler is checked for the exactness invariant before reduction.
func CycleAccounting(scale Scale, bench string, valueBytes int) string {
	profs := make([]*obs.Profiler, len(fig7Schemes))
	specs := make([]runSpec, len(fig7Schemes))
	for i, sch := range fig7Schemes {
		i, sch := i, sch
		profs[i] = obs.NewProfiler()
		specs[i] = runSpec{
			label: fmt.Sprintf("%s/%s", bench, sch),
			custom: func() workload.Result {
				return Run(Variant{Scheme: sch, Obs: &obs.Session{Prof: profs[i]}}, bench, scale, valueBytes)
			},
		}
	}
	runAll("cycles", specs)

	d := report.CycleData{
		Title:       fmt.Sprintf("Cycle accounting: %s, %d B values (percent of all thread-cycles)", bench, valueBytes),
		Cols:        fig7Schemes,
		Buckets:     obs.BucketNames(),
		TotalCycles: make([]uint64, len(fig7Schemes)),
	}
	d.Share = make([][]float64, obs.NumBuckets)
	for b := range d.Share {
		d.Share[b] = make([]float64, len(fig7Schemes))
	}
	for c, p := range profs {
		if err := p.Check(); err != nil {
			panic(err)
		}
		per, total := p.Totals()
		d.TotalCycles[c] = total
		if total == 0 {
			continue
		}
		for b, cycles := range per {
			d.Share[b][c] = float64(cycles) / float64(total)
		}
	}
	return report.CycleAccounting(d)
}
