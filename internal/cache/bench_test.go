package cache

// Micro-benchmarks for the machine-model hot paths, mirroring the
// internal/sim suite: run with
//
//	go test -run '^$' -bench . -benchmem -count 8 ./internal/cache > new.txt
//	benchstat BENCH_cache_micro.txt new.txt
//
// BENCH_cache_micro.txt at the repo root is the committed baseline; CI's
// bench-regression job compares PR base and head with benchstat and fails
// on a >10% geomean regression.

import (
	"testing"

	"asap/internal/arch"
	"asap/internal/memdev"
	"asap/internal/sim"
	"asap/internal/stats"
)

func benchHierarchy(cores int) *Hierarchy {
	st := stats.New()
	f := memdev.NewFabric(sim.NewKernel(), st, memdev.DefaultConfig())
	return NewHierarchy(st, f, cores, DefaultConfig(), func(arch.LineAddr) bool { return true })
}

// BenchmarkL1Hit is the dominant machine-model operation: every load and
// store of every scheme starts with this probe.
func BenchmarkL1Hit(b *testing.B) {
	h := benchHierarchy(1)
	h.Access(0, line(0), false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(0, line(0), false)
	}
}

// BenchmarkL1HitSpread cycles through a working set that fits the L1, the
// realistic hit pattern (different sets, warm tags).
func BenchmarkL1HitSpread(b *testing.B) {
	h := benchHierarchy(1)
	const lines = 256 // half the 64-set x 8-way L1
	for i := 0; i < lines; i++ {
		h.Access(0, line(i), false)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(0, line(i%lines), false)
	}
}

// BenchmarkL2Hit measures the first miss level: an L1 conflict that the
// private L2 absorbs.
func BenchmarkL2Hit(b *testing.B) {
	h := benchHierarchy(1)
	// 9 lines mapping to one L1 set (64 sets): one more than its 8 ways,
	// so each access misses L1 and hits L2.
	for i := 0; i < 9; i++ {
		h.Access(0, line(i*64), false)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(0, line((i%9)*64), false)
	}
}

// BenchmarkMissFill exercises the full miss path including LLC victim
// selection and the eviction walk, the most expensive single access.
func BenchmarkMissFill(b *testing.B) {
	h := benchHierarchy(1)
	// More lines in one L3 set than its 16 ways: every access is a memory
	// fill plus an LLC eviction at steady state.
	const conflicting = 24
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(0, line((i%conflicting)*8192), false)
	}
}

// BenchmarkWriteInvalidate measures the coherence path: two cores
// alternately writing one line, each write invalidating the other's
// private copies.
func BenchmarkWriteInvalidate(b *testing.B) {
	h := benchHierarchy(2)
	h.Access(0, line(0), true)
	h.Access(1, line(0), true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(i&1, line(0), true)
	}
}

// BenchmarkTablePeek is the invariant engine's per-scan probe.
func BenchmarkTablePeek(b *testing.B) {
	h := benchHierarchy(1)
	for i := 0; i < 1024; i++ {
		h.Access(0, line(i), false)
	}
	t := h.Table()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Peek(line(i % 1024))
	}
}

// BenchmarkMetaByHandle is the flattened-store fast path: resolving a
// compact handle to its metadata is an array index, not a map probe.
func BenchmarkMetaByHandle(b *testing.B) {
	h := benchHierarchy(1)
	for i := 0; i < 1024; i++ {
		h.Access(0, line(i), false)
	}
	t := h.Table()
	handles := make([]Handle, 1024)
	for i := range handles {
		handles[i] = t.HandleOf(line(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = t.At(handles[i%1024])
	}
}

// BenchmarkPersistRoundTrip drives the memdev pooling: submit-accept-drain
// cycles reusing WPQ entries, measured end to end through the kernel.
func BenchmarkPersistRoundTrip(b *testing.B) {
	k := sim.NewKernel()
	st := stats.New()
	f := memdev.NewFabric(k, st, memdev.DefaultConfig())
	payload := make([]byte, arch.LineSize)
	b.ReportAllocs()
	b.ResetTimer()
	k.Spawn("bench", func(t *sim.Thread) {
		for i := 0; i < b.N; i++ {
			done := false
			e := f.NewEntry(memdev.KindDPO, arch.NoRID, line(i%64), line(i%64))
			e.SetPayload(payload)
			f.SubmitPersist(e, func(uint64) { done = true })
			t.WaitUntil(func() bool { return done && f.Quiesced() })
		}
	})
	k.Run()
}
